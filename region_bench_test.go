package ssam_test

// Benchmarks for the host-mode search path with the observability
// hooks compiled in. The untraced variant is the acceptance gate for
// the obs layer: with sampling off, every hook is a single nil check,
// and Region.Search must stay within a few percent of its pre-obs
// cost. The traced variant prices a fully sampled request (span
// allocation + monotonic clock reads) for the overhead budget in
// DESIGN.md §8.

import (
	"math/rand"
	"path/filepath"
	"testing"

	"ssam"
	"ssam/internal/obs"
)

func benchRegion(b *testing.B, rows, dims int) (*ssam.Region, []float32) {
	return benchRegionMode(b, rows, dims, ssam.Config{Mode: ssam.Linear, Execution: ssam.Host})
}

func benchRegionMode(b *testing.B, rows, dims int, cfg ssam.Config) (*ssam.Region, []float32) {
	b.Helper()
	r, err := ssam.New(dims, cfg)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	data := make([]float32, rows*dims)
	for i := range data {
		data[i] = rng.Float32()
	}
	if err := r.LoadFloat32(data); err != nil {
		b.Fatal(err)
	}
	if err := r.BuildIndex(); err != nil {
		b.Fatal(err)
	}
	q := make([]float32, dims)
	for i := range q {
		q[i] = rng.Float32()
	}
	return r, q
}

// BenchmarkRegionSearchHost is the untraced fast path: a nil span
// threads through SearchStatsSpan, so the obs hooks cost one nil
// check each.
func BenchmarkRegionSearchHost(b *testing.B) {
	r, q := benchRegion(b, 4096, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.Search(q, 10); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSearchPQ is the quantized scan on the exact shape of
// BenchmarkRegionSearchHost (4096 x 64, k=10), so the two are directly
// comparable: the ratio between their ns/op is the host-side ADC
// speedup ci.sh regression-checks.
func BenchmarkSearchPQ(b *testing.B) {
	r, q := benchRegionMode(b, 4096, 64, ssam.Config{
		Mode:  ssam.Quantized,
		Index: ssam.IndexParams{Rerank: 64, Seed: 3},
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.Search(q, 10); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRegionSearchTiered is the storage-backed linear scan on the
// exact shape of BenchmarkRegionSearchHost (4096 x 64, k=10) with an
// unlimited cache budget, so every page is resident after the first
// pass: the ratio between their ns/op is the pure overhead of serving
// through the tier store (page pins + merge) that ci.sh
// regression-checks against a 1.2x bar.
func BenchmarkRegionSearchTiered(b *testing.B) {
	r, q := benchRegionMode(b, 4096, 64, ssam.Config{
		Storage: &ssam.Storage{
			Path:     filepath.Join(b.TempDir(), "bench.tier"),
			Prefetch: true,
		},
	})
	if _, err := r.Search(q, 10); err != nil { // warm the cache
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.Search(q, 10); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRegionSearchHostTraced runs the same search under a live
// span tree, as a force-sampled request would. The per-query delta
// against BenchmarkRegionSearchHost is the full tracing overhead.
func BenchmarkRegionSearchHostTraced(b *testing.B) {
	r, q := benchRegion(b, 4096, 64)
	tracer := obs.NewTracer(0, 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr := tracer.Trace("bench", true)
		if _, _, err := r.SearchStatsSpan(q, 10, tr.Root()); err != nil {
			b.Fatal(err)
		}
		tracer.Finish(tr)
	}
}
