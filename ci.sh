#!/usr/bin/env bash
# ci.sh — the repo's tier-1 gate. Every PR must leave this green:
#   gofmt clean, vet clean, everything builds, all tests pass under
#   the race detector.
set -euo pipefail
cd "$(dirname "$0")"

unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed:" >&2
    echo "$unformatted" >&2
    exit 1
fi

go vet ./...
go build ./...
go test -race ./...

# Benchmark smoke: compile and run every benchmark once so a bench
# that rots (bad setup, panic, API drift) fails the gate, without
# paying for real measurement iterations.
go test -run=NONE -bench=. -benchtime=1x ./...

echo "ci.sh: all green"
