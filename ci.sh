#!/usr/bin/env bash
# ci.sh — the repo's tier-1 gate. Every PR must leave this green:
#   gofmt clean, vet clean, everything builds, all tests pass under
#   the race detector.
set -euo pipefail
cd "$(dirname "$0")"

unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed:" >&2
    echo "$unformatted" >&2
    exit 1
fi

go vet ./...
go build ./...
go test -race ./...

echo "ci.sh: all green"
