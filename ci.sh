#!/usr/bin/env bash
# ci.sh — the repo's tier-1 gate. Every PR must leave this green:
#   gofmt clean, vet clean, everything builds, all tests pass under
#   the race detector.
set -euo pipefail
cd "$(dirname "$0")"

unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed:" >&2
    echo "$unformatted" >&2
    exit 1
fi

go vet ./...
go build ./...
go test -race ./...

# Benchmark smoke: compile and run every benchmark once so a bench
# that rots (bad setup, panic, API drift) fails the gate, without
# paying for real measurement iterations.
go test -run=NONE -bench=. -benchtime=1x ./...

# Vault-sweep smoke: the perf-trajectory generator behind
# BENCH_05_vaults.json must keep running end to end (tiny scale: this
# checks the harness, not the numbers).
go run ./cmd/ssam-bench -exp vaults -format json -scale 0.001 -queries 2 > /dev/null

# Graph-sweep smoke: the recall/QPS frontier generator behind
# BENCH_06_graph.json must keep running end to end.
go run ./cmd/ssam-bench -exp graph -format json -scale 0.001 -queries 2 > /dev/null

# Fuzz-seed smoke: replay every committed seed corpus through its fuzz
# target (no fuzzing engine, just the corpus) so a decoder regression
# against a known-tricky input fails the gate deterministically.
go test -run='^Fuzz' -count=1 ./internal/server/wire

# Coverage floor on the serving stack and the scan kernels: these
# packages were hardened test-first; don't let coverage rot below 80%.
for pkg in ./internal/server ./internal/cluster ./internal/obs ./internal/knn ./internal/graph; do
    pct=$(go test -count=1 -cover "$pkg" | awk '/coverage:/ {gsub(/%/,"",$5); print $5}')
    if [ -z "$pct" ]; then
        echo "ci.sh: no coverage reported for $pkg" >&2
        exit 1
    fi
    if awk -v p="$pct" 'BEGIN { exit !(p < 80.0) }'; then
        echo "ci.sh: coverage for $pkg is ${pct}%, below the 80% floor" >&2
        exit 1
    fi
    echo "coverage $pkg: ${pct}%"
done

echo "ci.sh: all green"
