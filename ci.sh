#!/usr/bin/env bash
# ci.sh — the repo's tier-1 gate. Every PR must leave this green:
#   gofmt clean, vet clean, everything builds, all tests pass under
#   the race detector.
set -euo pipefail
cd "$(dirname "$0")"

unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed:" >&2
    echo "$unformatted" >&2
    exit 1
fi

go vet ./...
go build ./...
go test -race ./...

# Benchmark smoke: compile and run every benchmark once so a bench
# that rots (bad setup, panic, API drift) fails the gate, without
# paying for real measurement iterations.
go test -run=NONE -bench=. -benchtime=1x ./...

# Vault-sweep smoke: the perf-trajectory generator behind
# BENCH_05_vaults.json must keep running end to end (tiny scale: this
# checks the harness, not the numbers).
go run ./cmd/ssam-bench -exp vaults -format json -scale 0.001 -queries 2 > /dev/null

# Graph-sweep smoke: the recall/QPS frontier generator behind
# BENCH_06_graph.json must keep running end to end.
go run ./cmd/ssam-bench -exp graph -format json -scale 0.001 -queries 2 > /dev/null

# Mutation-sweep smoke: the read-QPS-under-write-load generator behind
# BENCH_07_mutate.json must keep running end to end.
go run ./cmd/ssam-bench -exp mutate -format json -scale 0.001 -queries 2 > /dev/null

# Replica-sweep smoke: the availability-under-kill generator behind
# BENCH_08_replicas.json must keep running end to end.
go run ./cmd/ssam-bench -exp replicas -format json -scale 0.001 -queries 2 > /dev/null

# Quantized-sweep smoke: the recall/QPS generator behind
# BENCH_09_pq.json must keep running end to end (reranks above the
# tiny row count are skipped by the sweep itself).
go run ./cmd/ssam-bench -exp pq -format json -scale 0.001 -queries 2 > /dev/null

# Tiered-sweep smoke: the out-of-core QPS-vs-cache-fraction generator
# behind BENCH_10_tiered.json must keep running end to end. The small
# fractions force real eviction traffic, and every point self-checks
# bit-exactness against the in-RAM scan, so this also exercises the
# store's evict/reload path under the gate.
go run ./cmd/ssam-bench -exp tiered -format json -scale 0.001 -queries 2 > /dev/null

# ADC regression check: the quantized scan must stay meaningfully
# faster than the float32 scan on the identical benchmark shape
# (4096 x 64, k=10). Measured headroom is ~3.5x on the growth box; the
# 1.5x floor only trips if the blocked ADC kernel genuinely rots.
pq_bench=$(go test -run=NONE -bench='BenchmarkRegionSearchHost$|BenchmarkSearchPQ$' -benchtime=20x .)
pq_ratio=$(echo "$pq_bench" | awk '
    /BenchmarkRegionSearchHost/ { host = $3 }
    /BenchmarkSearchPQ/         { pq = $3 }
    END {
        if (host == "" || pq == "") { print "missing"; exit }
        printf "%.2f", host / pq
    }')
if [ "$pq_ratio" = "missing" ]; then
    echo "ci.sh: PQ regression check could not parse benchmark output:" >&2
    echo "$pq_bench" >&2
    exit 1
fi
if awk -v r="$pq_ratio" 'BEGIN { exit !(r < 1.5) }'; then
    echo "ci.sh: quantized scan only ${pq_ratio}x the float32 scan, below the 1.5x floor" >&2
    echo "$pq_bench" >&2
    exit 1
fi
echo "quantized scan speedup vs float32 scan: ${pq_ratio}x (floor 1.5x)"

# Tiered regression check: a fully-cached storage-backed region must
# stay within 1.2x of the in-RAM host scan on the identical benchmark
# shape (4096 x 64, k=10). Past the first pass every page is resident,
# so the only extra work is page pins and the vault merge — if this
# trips, the tier store's hot path has rotted.
tier_bench=$(go test -run=NONE -bench='BenchmarkRegionSearchHost$|BenchmarkRegionSearchTiered$' -benchtime=20x .)
tier_ratio=$(echo "$tier_bench" | awk '
    /BenchmarkRegionSearchHost/   { host = $3 }
    /BenchmarkRegionSearchTiered/ { tier = $3 }
    END {
        if (host == "" || tier == "") { print "missing"; exit }
        printf "%.2f", tier / host
    }')
if [ "$tier_ratio" = "missing" ]; then
    echo "ci.sh: tiered regression check could not parse benchmark output:" >&2
    echo "$tier_bench" >&2
    exit 1
fi
if awk -v r="$tier_ratio" 'BEGIN { exit !(r > 1.2) }'; then
    echo "ci.sh: fully-cached tiered scan is ${tier_ratio}x the in-RAM scan, above the 1.2x ceiling" >&2
    echo "$tier_bench" >&2
    exit 1
fi
echo "fully-cached tiered scan vs in-RAM scan: ${tier_ratio}x (ceiling 1.2x)"

# Write-mix smoke: stand a server up, drive a brief mixed read/write
# load through ssam-loadgen (upserts and deletes against a live linear
# region), and tear it down — the whole wire write path in one shot.
smoke_port=18741
go build -o /tmp/ssam-serve-ci ./cmd/ssam-serve
/tmp/ssam-serve-ci -addr 127.0.0.1:$smoke_port &
serve_pid=$!
trap 'kill $serve_pid 2>/dev/null || true' EXIT
for _ in $(seq 1 100); do
    if (exec 3<>"/dev/tcp/127.0.0.1/$smoke_port") 2>/dev/null; then
        exec 3>&- || true
        break
    fi
    sleep 0.1
done
go run ./cmd/ssam-loadgen -addr "http://127.0.0.1:$smoke_port" -region mutsmoke \
    -n 400 -dims 12 -clusters 4 -k 3 -duration 1s -concurrency 4 \
    -upsert-frac 0.2 -delete-frac 0.1
kill $serve_pid
wait $serve_pid 2>/dev/null || true
trap - EXIT

# Replica smoke: serve a 3-replica region with a chaos timer that
# kills replica 1 two seconds in, then drive live load across both a
# zero-downtime reload (1s in) and the kill (2s in). -fail-on-degraded
# makes the driver exit non-zero if a single query came back degraded
# or failed — the acceptance bar for replicated serving.
replica_port=18742
/tmp/ssam-serve-ci -addr 127.0.0.1:$replica_port \
    -preload glove:0.001 -preload-replicas 3 \
    -chaos-kill-replica 1 -chaos-after 2s &
serve_pid=$!
trap 'kill $serve_pid 2>/dev/null || true' EXIT
for _ in $(seq 1 100); do
    if (exec 3<>"/dev/tcp/127.0.0.1/$replica_port") 2>/dev/null; then
        exec 3>&- || true
        break
    fi
    sleep 0.1
done
go run ./cmd/ssam-loadgen -addr "http://127.0.0.1:$replica_port" \
    -region glove -setup=false -dims 100 -k 5 \
    -duration 4s -concurrency 4 -reload-at 1s -fail-on-degraded
# Zipfian multi-tenant smoke on the same server: three small
# replicated tenants, skewed traffic, zero degraded tolerated.
go run ./cmd/ssam-loadgen -addr "http://127.0.0.1:$replica_port" \
    -region tensmoke -tenants 3 -zipf 1.3 -replicas 2 \
    -n 300 -dims 8 -clusters 4 -k 3 \
    -duration 1s -concurrency 4 -fail-on-degraded
kill $serve_pid
wait $serve_pid 2>/dev/null || true
trap - EXIT

# Fuzz-seed smoke: replay every committed seed corpus through its fuzz
# target (no fuzzing engine, just the corpus) so a decoder regression
# against a known-tricky input fails the gate deterministically.
go test -run='^Fuzz' -count=1 ./internal/server/wire

# Coverage floors on the serving stack and the scan kernels: these
# packages were hardened test-first; don't let coverage rot. The scan
# kernels (knn) hold a higher bar than the rest.
for spec in ./internal/server:80 ./internal/cluster:80 ./internal/obs:80 \
            ./internal/knn:90 ./internal/graph:80 ./internal/mutate:80 \
            ./internal/replica:80 ./internal/pq:85 ./internal/tier:80; do
    pkg=${spec%:*}
    floor=${spec#*:}
    pct=$(go test -count=1 -cover "$pkg" | awk '/coverage:/ {gsub(/%/,"",$5); print $5}')
    if [ -z "$pct" ]; then
        echo "ci.sh: no coverage reported for $pkg" >&2
        exit 1
    fi
    if awk -v p="$pct" -v f="$floor" 'BEGIN { exit !(p < f) }'; then
        echo "ci.sh: coverage for $pkg is ${pct}%, below the ${floor}% floor" >&2
        exit 1
    fi
    echo "coverage $pkg: ${pct}% (floor ${floor}%)"
done

echo "ci.sh: all green"
