package ssam_test

// End-to-end integration tests across the public API: host and device
// execution agree, indexed modes trade accuracy for work, and regions
// are safe under concurrent queries.

import (
	"sync"
	"testing"

	"ssam"
	"ssam/internal/dataset"
	"ssam/internal/vec"
)

func integrationDataset(t *testing.T) *dataset.Dataset {
	t.Helper()
	return dataset.Generate(dataset.Spec{
		Name: "integ", N: 2500, Dim: 24, NumQueries: 12, K: 6,
		Clusters: 10, ClusterStd: 0.25, Seed: 77,
	})
}

func build(t *testing.T, ds *dataset.Dataset, cfg ssam.Config) *ssam.Region {
	t.Helper()
	r, err := ssam.New(ds.Dim(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.LoadFloat32(ds.Data); err != nil {
		t.Fatal(err)
	}
	if err := r.BuildIndex(); err != nil {
		t.Fatal(err)
	}
	return r
}

func recallAgainst(t *testing.T, ref, probe *ssam.Region, qs [][]float32, k int) float64 {
	t.Helper()
	hits, total := 0, 0
	for _, q := range qs {
		exact, err := ref.Search(q, k)
		if err != nil {
			t.Fatal(err)
		}
		got, err := probe.Search(q, k)
		if err != nil {
			t.Fatal(err)
		}
		in := map[int]bool{}
		for _, r := range exact {
			in[r.ID] = true
		}
		for _, r := range got {
			total++
			if in[r.ID] {
				hits++
			}
		}
	}
	return float64(hits) / float64(total)
}

func TestHostDeviceAgreementAcrossMetrics(t *testing.T) {
	ds := integrationDataset(t)
	for _, metric := range []ssam.Metric{ssam.Euclidean, ssam.Manhattan} {
		host := build(t, ds, ssam.Config{Metric: metric})
		dev := build(t, ds, ssam.Config{Metric: metric, Execution: ssam.Device, VectorLength: 4})
		if r := recallAgainst(t, host, dev, ds.Queries, 6); r < 0.9 {
			t.Errorf("%v: device/host recall = %v", metric, r)
		}
		host.Free()
		dev.Free()
	}
}

func TestCosineDeviceRanking(t *testing.T) {
	// The device cosine fixup is reduced precision; demand majority
	// top-k agreement rather than exactness.
	ds := integrationDataset(t)
	host := build(t, ds, ssam.Config{Metric: ssam.Cosine})
	dev := build(t, ds, ssam.Config{Metric: ssam.Cosine, Execution: ssam.Device, VectorLength: 4})
	defer host.Free()
	defer dev.Free()
	if r := recallAgainst(t, host, dev, ds.Queries[:6], 6); r < 0.5 {
		t.Errorf("cosine device/host recall = %v", r)
	}
}

func TestIndexedAccuracyKnob(t *testing.T) {
	ds := integrationDataset(t)
	exact := build(t, ds, ssam.Config{})
	defer exact.Free()
	for _, mode := range []ssam.Mode{ssam.KDTree, ssam.KMeans} {
		r := build(t, ds, ssam.Config{Mode: mode, Index: ssam.IndexParams{Checks: 32}})
		low := recallAgainst(t, exact, r, ds.Queries, 6)
		if err := r.SetChecks(ds.N()); err != nil {
			t.Fatal(err)
		}
		high := recallAgainst(t, exact, r, ds.Queries, 6)
		if high < low-0.02 {
			t.Errorf("%v: recall fell when checks rose: %v -> %v", mode, low, high)
		}
		if high < 0.95 {
			t.Errorf("%v: exhaustive recall = %v", mode, high)
		}
		r.Free()
	}
}

func TestConcurrentSearches(t *testing.T) {
	ds := integrationDataset(t)
	for _, cfg := range []ssam.Config{
		{Mode: ssam.Linear},
		{Mode: ssam.KDTree},
		{Mode: ssam.MPLSH},
	} {
		r := build(t, ds, cfg)
		var wg sync.WaitGroup
		errs := make(chan error, len(ds.Queries))
		for _, q := range ds.Queries {
			wg.Add(1)
			go func(q []float32) {
				defer wg.Done()
				// Search via a fresh staging sequence per goroutine
				// would race on the region's staged query; the
				// supported concurrent pattern is independent regions
				// or external synchronization. Here we only verify
				// the read-only index structures tolerate parallel
				// traversal through separate regions sharing data.
				local, err := ssam.New(ds.Dim(), cfg)
				if err != nil {
					errs <- err
					return
				}
				defer local.Free()
				if err := local.LoadFloat32(ds.Data); err != nil {
					errs <- err
					return
				}
				if err := local.BuildIndex(); err != nil {
					errs <- err
					return
				}
				if _, err := local.Search(q, 4); err != nil {
					errs <- err
				}
			}(q)
		}
		wg.Wait()
		close(errs)
		for err := range errs {
			t.Fatal(err)
		}
		r.Free()
	}
}

func TestDeviceHammingEndToEnd(t *testing.T) {
	ds := integrationDataset(t)
	codes := ds.ToBinary()
	dev, err := ssam.New(ds.Dim(), ssam.Config{
		Metric: ssam.Hamming, Execution: ssam.Device, VectorLength: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer dev.Free()
	if err := dev.LoadBinary(codes); err != nil {
		t.Fatal(err)
	}
	if err := dev.BuildIndex(); err != nil {
		t.Fatal(err)
	}
	host, err := ssam.New(ds.Dim(), ssam.Config{Metric: ssam.Hamming})
	if err != nil {
		t.Fatal(err)
	}
	defer host.Free()
	if err := host.LoadBinary(codes); err != nil {
		t.Fatal(err)
	}
	if err := host.BuildIndex(); err != nil {
		t.Fatal(err)
	}
	for _, i := range []int{0, 1234, 2499} {
		a, err := host.SearchBinary(codes[i], 4)
		if err != nil {
			t.Fatal(err)
		}
		b, err := dev.SearchBinary(codes[i], 4)
		if err != nil {
			t.Fatal(err)
		}
		for j := range a {
			if a[j].Dist != b[j].Dist {
				t.Fatalf("query %d result %d: host %v device %v", i, j, a[j], b[j])
			}
		}
	}
}

func TestBinarizationPreservesNeighborhoods(t *testing.T) {
	// Section II-D: Hamming codes are an effective alternative — the
	// binarized nearest neighbors should overlap substantially with
	// the float nearest neighbors on clustered data. Sign binarization
	// keeps one bit per dimension, so this needs a reasonably
	// high-dimensional workload to have enough code entropy.
	ds := dataset.Generate(dataset.Spec{
		Name: "integ-bin", N: 2500, Dim: 96, NumQueries: 12, K: 10,
		Clusters: 10, ClusterStd: 0.25, Seed: 78,
	})
	host := build(t, ds, ssam.Config{})
	defer host.Free()
	codes := ds.ToBinary()
	ham, err := ssam.New(ds.Dim(), ssam.Config{Metric: ssam.Hamming})
	if err != nil {
		t.Fatal(err)
	}
	defer ham.Free()
	if err := ham.LoadBinary(codes); err != nil {
		t.Fatal(err)
	}
	if err := ham.BuildIndex(); err != nil {
		t.Fatal(err)
	}
	means := ds.Means()
	hits, total := 0, 0
	for _, q := range ds.Queries {
		exact, err := host.Search(q, 10)
		if err != nil {
			t.Fatal(err)
		}
		approx, err := ham.SearchBinary(vec.SignBinarize(q, means), 10)
		if err != nil {
			t.Fatal(err)
		}
		in := map[int]bool{}
		for _, r := range exact {
			in[r.ID] = true
		}
		for _, r := range approx {
			total++
			if in[r.ID] {
				hits++
			}
		}
	}
	// Sign binarization (one bit/dim, no learned rotation) resolves
	// cluster membership but not fine intra-cluster ranking, so the
	// bar is overlap far above chance (10/N ~ 0.4%), not high recall —
	// the paper's strong results use carefully constructed codes.
	chance := 10.0 / float64(ds.N())
	if frac := float64(hits) / float64(total); frac < 15*chance {
		t.Fatalf("binarized neighborhood overlap = %v, want >= %v (15x chance)", frac, 15*chance)
	}
}
