package ssam

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"
)

// TestDeviceSearchBatchPartialFailure pins the mid-batch error
// contract: a device batch that fails at query i returns a *BatchError
// carrying i, keeps the results already computed for queries before i,
// and commits the stats those queries accumulated.
func TestDeviceSearchBatchPartialFailure(t *testing.T) {
	const dims, n = 8, 64
	rng := rand.New(rand.NewSource(7))
	data := make([]float32, dims*n)
	for i := range data {
		data[i] = float32(rng.NormFloat64())
	}
	r, err := New(dims, Config{Execution: Device})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.LoadFloat32(data); err != nil {
		t.Fatal(err)
	}
	if err := r.BuildIndex(); err != nil {
		t.Fatal(err)
	}

	qs := [][]float32{data[:dims], data[dims : 2*dims], data[2*dims : 3*dims], data[3*dims : 4*dims]}
	const failAt = 2
	boom := fmt.Errorf("injected vault failure")
	r.batchFault = func(i int) error {
		if i == failAt {
			return boom
		}
		return nil
	}

	out, err := r.SearchBatch(qs, 3)
	var be *BatchError
	if !errors.As(err, &be) {
		t.Fatalf("SearchBatch error = %v, want *BatchError", err)
	}
	if be.Index != failAt {
		t.Fatalf("BatchError.Index = %d, want %d", be.Index, failAt)
	}
	if !errors.Is(err, boom) {
		t.Fatalf("BatchError does not unwrap to the injected error: %v", err)
	}
	for i := 0; i < failAt; i++ {
		if len(out[i]) == 0 {
			t.Fatalf("query %d results discarded on mid-batch error", i)
		}
		if out[i][0].ID != i {
			t.Fatalf("query %d: nearest = %d, want itself (%d)", i, out[i][0].ID, i)
		}
	}
	for i := failAt; i < len(qs); i++ {
		if out[i] != nil {
			t.Fatalf("query %d ran despite the batch failing at %d", i, failAt)
		}
	}
	st := r.LastStats()
	if st.Cycles == 0 || st.Instructions == 0 {
		t.Fatalf("stats for the completed prefix not committed: %+v", st)
	}

	// The same batch without the fault must finish and accumulate more
	// cycles than the failed prefix did.
	r.batchFault = nil
	if _, err := r.SearchBatch(qs, 3); err != nil {
		t.Fatalf("clean batch: %v", err)
	}
	if full := r.LastStats(); full.Cycles <= st.Cycles {
		t.Fatalf("full batch cycles %d not greater than failed prefix's %d", full.Cycles, st.Cycles)
	}
}
