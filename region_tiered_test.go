package ssam

// Region-level contract for storage-backed (out-of-core) regions: the
// tiered engines must answer bit-identically to the in-RAM region on
// the same dataset at every budget fraction, storage faults must
// surface as errors rather than wrong neighbors, the write path must
// refuse storage-backed regions, and the Device storage model must
// follow the pinned ann_in_ssd formula.

import (
	"errors"
	"path/filepath"
	"testing"

	"ssam/internal/dataset"
	"ssam/internal/tier"
)

func tieredTestDataset(t *testing.T) *dataset.Dataset {
	t.Helper()
	return dataset.Generate(dataset.Spec{
		Name: "region-tiered", N: 1200, Dim: 24, NumQueries: 24, K: 10,
		Clusters: 12, ClusterStd: 0.3, Seed: 17,
	})
}

func buildTieredRegion(t *testing.T, ds *dataset.Dataset, cfg Config) *Region {
	t.Helper()
	r, err := New(ds.Dim(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.LoadFloat32(ds.Data); err != nil {
		t.Fatal(err)
	}
	if err := r.BuildIndex(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(r.Free)
	return r
}

func TestTieredRegionMatchesInRAM(t *testing.T) {
	ds := tieredTestDataset(t)
	datasetBytes := int64(ds.N() * ds.Dim() * 4)
	for _, mode := range []Mode{Linear, Quantized} {
		for _, metric := range []Metric{Euclidean, Manhattan, Cosine} {
			ip := IndexParams{Seed: 5, M: 4, Sample: 1024, Rerank: 64}
			ram := buildTieredRegion(t, ds, Config{Mode: mode, Metric: metric, Vaults: 4, Index: ip})
			for _, frac := range []float64{0.1, 0.5, 1.0, 0} {
				cfg := Config{Mode: mode, Metric: metric, Vaults: 4, Index: ip, Storage: &Storage{
					Path:        filepath.Join(t.TempDir(), "region.tier"),
					BudgetBytes: int64(frac * float64(datasetBytes)),
					Prefetch:    true,
				}}
				tr := buildTieredRegion(t, ds, cfg)
				if n := tr.Len(); n != ds.N() {
					t.Fatalf("tiered region Len = %d, want %d", n, ds.N())
				}
				for qi := 0; qi < 8; qi++ {
					want, err := ram.Search(ds.Queries[qi], 10)
					if err != nil {
						t.Fatal(err)
					}
					got, err := tr.Search(ds.Queries[qi], 10)
					if err != nil {
						t.Fatalf("mode=%v metric=%v frac=%v q=%d: %v", mode, metric, frac, qi, err)
					}
					if len(got) != len(want) {
						t.Fatalf("mode=%v metric=%v frac=%v q=%d: %d results, want %d",
							mode, metric, frac, qi, len(got), len(want))
					}
					for i := range want {
						if got[i] != want[i] {
							t.Fatalf("mode=%v metric=%v frac=%v q=%d: result %d = %+v, want %+v",
								mode, metric, frac, qi, i, got[i], want[i])
						}
					}
				}
				if c, ok := tr.TieredStats(); !ok {
					t.Fatal("TieredStats reported no storage tier")
				} else if mode == Linear && c.Reads == 0 {
					t.Fatal("tiered linear region never read the backing file")
				}
				// The staged Fig. 4 sequence must route through the same
				// engines.
				if err := tr.WriteQuery(ds.Queries[0]); err != nil {
					t.Fatal(err)
				}
				if err := tr.Exec(10); err != nil {
					t.Fatal(err)
				}
				res, err := tr.ReadResult()
				if err != nil {
					t.Fatal(err)
				}
				want, _ := ram.Search(ds.Queries[0], 10)
				for i := range want {
					if res[i] != want[i] {
						t.Fatalf("Exec path diverged at %d: %+v != %+v", i, res[i], want[i])
					}
				}
			}
		}
	}
}

func TestTieredRegionBatchMatchesInRAM(t *testing.T) {
	ds := tieredTestDataset(t)
	for _, mode := range []Mode{Linear, Quantized} {
		ip := IndexParams{Seed: 5, M: 4, Sample: 1024, Rerank: 64}
		ram := buildTieredRegion(t, ds, Config{Mode: mode, Vaults: 4, Index: ip})
		tr := buildTieredRegion(t, ds, Config{Mode: mode, Vaults: 4, Index: ip, Storage: &Storage{
			Path:        filepath.Join(t.TempDir(), "region.tier"),
			BudgetBytes: int64(ds.N() * ds.Dim() * 4 / 10),
			Prefetch:    true,
		}})
		want, err := ram.SearchBatch(ds.Queries, 10)
		if err != nil {
			t.Fatal(err)
		}
		got, err := tr.SearchBatch(ds.Queries, 10)
		if err != nil {
			t.Fatal(err)
		}
		for qi := range want {
			for i := range want[qi] {
				if got[qi][i] != want[qi][i] {
					t.Fatalf("mode=%v batch q=%d result %d: %+v != %+v",
						mode, qi, i, got[qi][i], want[qi][i])
				}
			}
		}
	}
}

func TestTieredRegionSetChecksRetargetsRerank(t *testing.T) {
	ds := tieredTestDataset(t)
	ip := IndexParams{Seed: 5, M: 4, Sample: 1024, Rerank: 8}
	ram := buildTieredRegion(t, ds, Config{Mode: Quantized, Vaults: 4, Index: ip})
	tr := buildTieredRegion(t, ds, Config{Mode: Quantized, Vaults: 4, Index: ip, Storage: &Storage{
		Path: filepath.Join(t.TempDir(), "region.tier"), BudgetBytes: 4096,
	}})
	if err := ram.SetChecks(ds.N()); err != nil {
		t.Fatal(err)
	}
	if err := tr.SetChecks(ds.N()); err != nil {
		t.Fatal(err)
	}
	want, _ := ram.Search(ds.Queries[0], 10)
	got, err := tr.Search(ds.Queries[0], 10)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("after SetChecks, result %d: %+v != %+v", i, got[i], want[i])
		}
	}
}

func TestTieredRegionConfigValidation(t *testing.T) {
	good := &Storage{Path: "x.tier"}
	cases := []struct {
		name string
		cfg  Config
	}{
		{"graph mode", Config{Mode: Graph, Storage: good}},
		{"kdtree mode", Config{Mode: KDTree, Storage: good}},
		{"hamming", Config{Metric: Hamming, Storage: good}},
		{"negative budget", Config{Storage: &Storage{Path: "x", BudgetBytes: -1}}},
		{"host without path", Config{Storage: &Storage{}}},
	}
	for _, c := range cases {
		if _, err := New(8, c.cfg); err == nil {
			t.Errorf("%s: New accepted invalid storage config", c.name)
		}
	}
	// Device execution prices storage analytically; no path needed.
	if _, err := New(8, Config{Execution: Device, Storage: &Storage{BudgetBytes: 1 << 20}}); err != nil {
		t.Errorf("device without path: %v", err)
	}
}

func TestTieredRegionRejectsWrites(t *testing.T) {
	ds := tieredTestDataset(t)
	tr := buildTieredRegion(t, ds, Config{Storage: &Storage{
		Path: filepath.Join(t.TempDir(), "region.tier"),
	}})
	if _, err := tr.Upsert(0, ds.Queries[0]); !errors.Is(err, ErrImmutableEngine) {
		t.Fatalf("Upsert on storage-backed region = %v, want ErrImmutableEngine", err)
	}
	if _, _, err := tr.Delete(1); !errors.Is(err, ErrImmutableEngine) {
		t.Fatalf("Delete on storage-backed region = %v, want ErrImmutableEngine", err)
	}
}

func TestTieredRegionSurfacesStorageFaults(t *testing.T) {
	ds := tieredTestDataset(t)
	tr := buildTieredRegion(t, ds, Config{Vaults: 4, Storage: &Storage{
		Path:        filepath.Join(t.TempDir(), "region.tier"),
		BudgetBytes: 1, // below one page: every scan re-reads the file
	}})
	boom := errors.New("dead flash")
	tr.store.SetReadHook(func(int) error { return boom })
	if _, err := tr.Search(ds.Queries[0], 10); !errors.Is(err, boom) {
		t.Fatalf("Search over faulted storage = %v, want wrapped injected error", err)
	}
	var re *tier.ReadError
	if _, err := tr.Search(ds.Queries[0], 10); !errors.As(err, &re) {
		t.Fatalf("Search over faulted storage = %v, want *tier.ReadError", err)
	}
	// Mid-batch fault: a *BatchError naming query 0.
	var be *BatchError
	if _, err := tr.SearchBatch(ds.Queries[:4], 10); !errors.As(err, &be) || be.Index != 0 {
		t.Fatalf("SearchBatch over faulted storage = %v, want *BatchError at 0", err)
	}
	tr.store.SetReadHook(nil)
	if _, err := tr.Search(ds.Queries[0], 10); err != nil {
		t.Fatalf("Search after clearing fault: %v", err)
	}
}

func TestTieredRegionReloadRebuild(t *testing.T) {
	ds := tieredTestDataset(t)
	tr := buildTieredRegion(t, ds, Config{Storage: &Storage{
		Path: filepath.Join(t.TempDir(), "region.tier"),
	}})
	// Rebuild without reload: the backing file is the dataset.
	if err := tr.BuildIndex(); err != nil {
		t.Fatalf("rebuild over existing store: %v", err)
	}
	if _, err := tr.Search(ds.Queries[0], 5); err != nil {
		t.Fatal(err)
	}
	// Reload then rebuild: the file is rewritten from the new rows.
	if err := tr.LoadFloat32(ds.Data[:100*ds.Dim()]); err != nil {
		t.Fatal(err)
	}
	if err := tr.BuildIndex(); err != nil {
		t.Fatalf("rebuild after reload: %v", err)
	}
	if n := tr.Len(); n != 100 {
		t.Fatalf("Len after reload = %d, want 100", n)
	}
}

// TestDeviceStorageModelFormula pins the analytic ann_in_ssd storage
// model: miss traffic is the uncached fraction of the scan's DRAM
// bytes, fetched in page-granular waves across the channel array, each
// wave paying one read latency while the bytes stream at the internal
// bandwidth.
func TestDeviceStorageModelFormula(t *testing.T) {
	ds := tieredTestDataset(t)
	base := buildTieredRegion(t, ds, Config{Execution: Device, VectorLength: 4})
	datasetBytes := int64(ds.N() * ds.Dim() * 4)

	tr := buildTieredRegion(t, ds, Config{Execution: Device, VectorLength: 4, Storage: &Storage{
		BudgetBytes: datasetBytes / 4,
	}})
	bres, bst, err := base.SearchStats(ds.Queries[0], 10)
	if err != nil {
		t.Fatal(err)
	}
	res, st, err := tr.SearchStats(ds.Queries[0], 10)
	if err != nil {
		t.Fatal(err)
	}
	for i := range bres {
		if res[i] != bres[i] {
			t.Fatalf("storage changed neighbors: %+v != %+v", res[i], bres[i])
		}
	}

	// Expected values from the pinned formula, using the default
	// geometry (8 channels x QD 64, 60us, 6 GB/s, 16 KiB pages) and a
	// 1/4 cache fraction.
	missBytes := uint64(float64(bst.DRAMBytesRead) * 0.75)
	const pageB = 16 << 10
	totalPages := (bst.DRAMBytesRead + pageB - 1) / pageB
	missPages := (missBytes + pageB - 1) / pageB
	waves := (missPages + 8*64 - 1) / (8 * 64)
	if st.StorageBytesRead != missBytes {
		t.Errorf("StorageBytesRead = %d, want %d", st.StorageBytesRead, missBytes)
	}
	if st.StorageCacheHits != totalPages-missPages {
		t.Errorf("StorageCacheHits = %d, want %d", st.StorageCacheHits, totalPages-missPages)
	}
	if st.StorageStalls != waves {
		t.Errorf("StorageStalls = %d, want %d", st.StorageStalls, waves)
	}
	wantSec := bst.Seconds + float64(missBytes)/6e9 + float64(waves)*60e-6
	if diff := st.Seconds - wantSec; diff > 1e-12 || diff < -1e-12 {
		t.Errorf("Seconds = %v, want %v", st.Seconds, wantSec)
	}
	if st.Seconds <= bst.Seconds {
		t.Error("storage-backed query was not slower than all-DRAM")
	}

	// Unlimited budget: the dataset is resident, storage adds nothing.
	free := buildTieredRegion(t, ds, Config{Execution: Device, VectorLength: 4, Storage: &Storage{}})
	_, fst, err := free.SearchStats(ds.Queries[0], 10)
	if err != nil {
		t.Fatal(err)
	}
	if fst.StorageBytesRead != 0 || fst.StorageStalls != 0 {
		t.Errorf("resident storage reported misses: %+v", fst)
	}
	if fst.Seconds != bst.Seconds {
		t.Errorf("resident storage changed timing: %v != %v", fst.Seconds, bst.Seconds)
	}

	// Prefetch overlaps the transfer with compute: stall time can only
	// shrink, never below the pipeline-fill latency.
	pre := buildTieredRegion(t, ds, Config{Execution: Device, VectorLength: 4, Storage: &Storage{
		BudgetBytes: datasetBytes / 4, Prefetch: true,
	}})
	_, pst, err := pre.SearchStats(ds.Queries[0], 10)
	if err != nil {
		t.Fatal(err)
	}
	if pst.Seconds > st.Seconds {
		t.Errorf("prefetch slowed the query: %v > %v", pst.Seconds, st.Seconds)
	}
	if pst.Seconds < bst.Seconds+60e-6 {
		t.Errorf("prefetch hid even the pipeline-fill latency: %v", pst.Seconds)
	}
}
