// Wordsearch demonstrates approximate semantic search over word
// embeddings — the paper's GloVe workload — with hyperplane
// multi-probe LSH, sweeping the probe count to show the
// accuracy/throughput trade-off of Fig. 2.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"ssam"
)

const (
	vocab = 20000
	dim   = 100
	k     = 6
)

func main() {
	rng := rand.New(rand.NewSource(11))

	// Synthetic embedding space: topic clusters with named words.
	topics := []string{"sports", "music", "food", "science", "travel", "finance"}
	centers := make([][]float32, len(topics))
	for t := range centers {
		c := make([]float32, dim)
		for i := range c {
			c[i] = float32(rng.NormFloat64())
		}
		centers[t] = c
	}
	words := make([]string, vocab)
	embeddings := make([]float32, 0, vocab*dim)
	for w := 0; w < vocab; w++ {
		t := rng.Intn(len(topics))
		words[w] = fmt.Sprintf("%s_word%05d", topics[t], w)
		for i := 0; i < dim; i++ {
			embeddings = append(embeddings, centers[t][i]+float32(rng.NormFloat64())*0.45)
		}
	}

	// Exact baseline for recall measurement.
	exact, err := ssam.New(dim, ssam.Config{Mode: ssam.Linear})
	if err != nil {
		log.Fatal(err)
	}
	defer exact.Free()
	must(exact.LoadFloat32(embeddings))
	must(exact.BuildIndex())

	// MPLSH index with the paper's 20 hyperplane bits.
	approx, err := ssam.New(dim, ssam.Config{
		Mode:  ssam.MPLSH,
		Index: ssam.IndexParams{Tables: 4, Bits: 20, Seed: 5},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer approx.Free()
	must(approx.LoadFloat32(embeddings))
	must(approx.BuildIndex())

	// Query: a word vector near the "science" topic.
	query := make([]float32, dim)
	for i := range query {
		query[i] = centers[3][i] + float32(rng.NormFloat64())*0.45
	}
	exactRes, err := exact.Search(query, k)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("exact nearest words:")
	for _, r := range exactRes {
		fmt.Printf("  %-22s dist=%.3f\n", words[r.ID], r.Dist)
	}

	// Sweep probes: accuracy versus throughput.
	fmt.Printf("\n%-8s %-8s %-10s\n", "probes", "recall", "queries/s")
	for _, probes := range []int{1, 4, 16, 64} {
		must(approx.SetChecks(probes))
		const trials = 200
		hits := 0
		start := time.Now()
		var res []ssam.Result
		for i := 0; i < trials; i++ {
			res, err = approx.Search(query, k)
			if err != nil {
				log.Fatal(err)
			}
		}
		elapsed := time.Since(start).Seconds()
		in := map[int]bool{}
		for _, r := range exactRes {
			in[r.ID] = true
		}
		for _, r := range res {
			if in[r.ID] {
				hits++
			}
		}
		fmt.Printf("%-8d %-8.2f %-10.0f\n", probes,
			float64(hits)/float64(k), float64(trials)/elapsed)
	}
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
