// Bnn demonstrates the paper's Section VI-B observation that the
// SSAM's vectorized fused xor-popcount (FXP) unit serves workloads
// beyond kNN — here the binarized matrix-vector products of a binary
// neural network (XNOR-net style): the hidden layer's weight rows are
// loaded into a Hamming SSAM region, and one device query computes
// every unit's XNOR-popcount activation at once (an XNOR dot product
// is bits - 2*HammingDistance).
package main

import (
	"fmt"
	"log"
	"math/rand"

	"ssam"
	"ssam/internal/vec"
)

const (
	inputBits  = 512
	hiddenBits = 64
	classes    = 4
	perClass   = 100
)

func randomCode(rng *rand.Rand, bits int) vec.Binary {
	c := vec.NewBinary(bits)
	for i := 0; i < bits; i++ {
		c.Set(i, rng.Intn(2) == 1)
	}
	return c
}

func corrupt(rng *rand.Rand, c vec.Binary, flipFrac float64) vec.Binary {
	out := vec.NewBinary(c.Dim)
	copy(out.Words, c.Words)
	flips := int(flipFrac * float64(c.Dim))
	for f := 0; f < flips; f++ {
		i := rng.Intn(c.Dim)
		out.Set(i, !out.Bit(i))
	}
	return out
}

// hiddenLayer computes the binarized hidden activation of x on the
// SSAM device: every weight row's Hamming distance in one query, then
// sign(bits - 2*distance).
func hiddenLayer(region *ssam.Region, x vec.Binary) (vec.Binary, error) {
	res, err := region.SearchBinary(x, hiddenBits)
	if err != nil {
		return vec.Binary{}, err
	}
	h := vec.NewBinary(hiddenBits)
	for _, r := range res {
		// XNOR dot = inputBits - 2*hamming; activation fires when
		// positive, i.e. hamming < inputBits/2.
		if int(r.Dist) < inputBits/2 {
			h.Set(r.ID, true)
		}
	}
	return h, nil
}

func main() {
	rng := rand.New(rand.NewSource(5))

	// Hidden layer: 64 random binary weight rows (locality-sensitive
	// by construction, like binarized first-layer filters).
	weights := make([]vec.Binary, hiddenBits)
	for i := range weights {
		weights[i] = randomCode(rng, inputBits)
	}
	region, err := ssam.New(inputBits, ssam.Config{
		Mode:         ssam.Linear,
		Metric:       ssam.Hamming,
		Execution:    ssam.Device,
		VectorLength: 8,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer region.Free()
	must(region.LoadBinary(weights))
	must(region.BuildIndex())

	// Output layer: each class's reference hidden code, computed from
	// its prototype input (a trained BNN's output weights play this
	// role; nearest-hidden-code is its argmax).
	prototypes := make([]vec.Binary, classes)
	protoHidden := make([]vec.Binary, classes)
	for c := range prototypes {
		prototypes[c] = randomCode(rng, inputBits)
		h, err := hiddenLayer(region, prototypes[c])
		if err != nil {
			log.Fatal(err)
		}
		protoHidden[c] = h
	}

	// Classify noisy samples.
	correct, total := 0, 0
	var cycles uint64
	for c := 0; c < classes; c++ {
		for s := 0; s < perClass; s++ {
			x := corrupt(rng, prototypes[c], 0.12)
			h, err := hiddenLayer(region, x)
			if err != nil {
				log.Fatal(err)
			}
			cycles += region.LastStats().Cycles
			best, bestD := -1, 1<<30
			for cls, ph := range protoHidden {
				if d := vec.Hamming(h, ph); d < bestD {
					best, bestD = cls, d
				}
			}
			if best == c {
				correct++
			}
			total++
		}
	}
	fmt.Printf("binary neural network on SSAM (FXP hidden layer):\n")
	fmt.Printf("  input %d bits -> hidden %d units -> %d classes\n", inputBits, hiddenBits, classes)
	fmt.Printf("  accuracy: %d/%d (%.1f%%), chance = %.1f%%\n",
		correct, total, 100*float64(correct)/float64(total), 100.0/classes)
	fmt.Printf("  device cost: %.1f cycles/sample @1GHz\n", float64(cycles)/float64(total))
	if float64(correct)/float64(total) < 0.9 {
		log.Fatal("accuracy regression: expected >= 90%")
	}
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
