// Imagesearch walks the paper's Fig. 1 content-based search pipeline
// end to end: (a) feature extraction over a synthetic image corpus,
// (b) index construction, (c) query generation, (d) index traversal +
// (e) k-nearest-neighbor search, and (f) reverse lookup from neighbor
// ids back to the original media records.
//
// The "feature extractor" here is a deterministic stand-in (a fixed
// random projection of raw pixel statistics) for the GIST/CNN
// extractors the paper cites — feature extraction is offline and out
// of scope for SSAM itself.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"ssam"
)

// image is one record of the multimedia database.
type image struct {
	Name   string
	Pixels []float32 // raw "pixels" (synthetic)
}

const (
	numImages  = 4000
	pixelDim   = 256
	featureDim = 96
	k          = 10
)

// extractFeatures is the stage-(a) feature descriptor: a fixed random
// projection plus nonlinearity, shared by corpus and queries.
func extractFeatures(proj [][]float32, pixels []float32) []float32 {
	out := make([]float32, len(proj))
	for j, row := range proj {
		var acc float32
		for i, p := range row {
			acc += p * pixels[i]
		}
		if acc < 0 { // ReLU-style nonlinearity
			acc = 0
		}
		out[j] = acc
	}
	return out
}

func main() {
	rng := rand.New(rand.NewSource(7))

	// Shared projection weights for the descriptor.
	proj := make([][]float32, featureDim)
	for j := range proj {
		row := make([]float32, pixelDim)
		for i := range row {
			row[i] = float32(rng.NormFloat64()) / 16
		}
		proj[j] = row
	}

	// (a) Build the multimedia corpus: clusters of near-duplicate
	// "scenes" so similar content exists to find.
	scenes := make([][]float32, 64)
	for s := range scenes {
		base := make([]float32, pixelDim)
		for i := range base {
			base[i] = float32(rng.NormFloat64())
		}
		scenes[s] = base
	}
	corpus := make([]image, numImages)
	features := make([]float32, 0, numImages*featureDim)
	for i := range corpus {
		s := rng.Intn(len(scenes))
		px := make([]float32, pixelDim)
		for j, b := range scenes[s] {
			px[j] = b + float32(rng.NormFloat64())*0.2
		}
		corpus[i] = image{Name: fmt.Sprintf("scene%02d/img%04d.jpg", s, i), Pixels: px}
		features = append(features, extractFeatures(proj, px)...)
	}

	// (b) Index construction: a hierarchical k-means tree over the
	// feature vectors (offline).
	region, err := ssam.New(featureDim, ssam.Config{
		Mode:  ssam.KMeans,
		Index: ssam.IndexParams{Checks: 800, Seed: 3},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer region.Free()
	if err := region.LoadFloat32(features); err != nil {
		log.Fatal(err)
	}
	if err := region.BuildIndex(); err != nil {
		log.Fatal(err)
	}

	// (c) Query generation: a user uploads a new photo of a known
	// scene; it runs through the same extractor.
	scene := 17
	queryPixels := make([]float32, pixelDim)
	for j, b := range scenes[scene] {
		queryPixels[j] = b + float32(rng.NormFloat64())*0.2
	}
	query := extractFeatures(proj, queryPixels)

	// (d)+(e) Index traversal and kNN search.
	res, err := region.Search(query, k)
	if err != nil {
		log.Fatal(err)
	}

	// (f) Reverse lookup: map neighbor ids back to media records.
	fmt.Printf("query: new photo of scene%02d\ntop-%d similar images:\n", scene, k)
	correct := 0
	for _, r := range res {
		name := corpus[r.ID].Name
		fmt.Printf("  %-24s dist=%.3f\n", name, r.Dist)
		if name[:7] == fmt.Sprintf("scene%02d", scene) {
			correct++
		}
	}
	fmt.Printf("%d/%d results are from the query's scene\n", correct, k)
}
