// Quickstart: allocate an SSAM-enabled memory region, load a dataset,
// and run a k-nearest-neighbor query — first on the host CPU, then on
// the simulated SSAM device, mirroring the paper's Fig. 4 usage.
package main

import (
	"fmt"
	"log"

	"ssam"
	"ssam/internal/dataset"
)

func main() {
	// A small GloVe-like corpus: 100-dimensional synthetic embeddings.
	ds := dataset.Generate(dataset.Spec{
		Name: "quickstart", N: 5000, Dim: 100, NumQueries: 1, K: 6,
		Clusters: 32, ClusterStd: 0.3, Seed: 1,
	})
	query := ds.Queries[0]

	// Host execution: exact linear scan on the CPU.
	host, err := ssam.New(ds.Dim(), ssam.Config{Mode: ssam.Linear})
	if err != nil {
		log.Fatal(err)
	}
	defer host.Free()
	if err := host.LoadFloat32(ds.Data); err != nil {
		log.Fatal(err)
	}
	if err := host.BuildIndex(); err != nil {
		log.Fatal(err)
	}
	hostRes, err := host.Search(query, 6)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("host linear search, top-6:")
	for _, r := range hostRes {
		fmt.Printf("  id=%-6d dist=%.4f\n", r.ID, r.Dist)
	}

	// Device execution: the same search through the simulated SSAM-8
	// module — fixed-point kernels on the cycle simulator over HMC.
	dev, err := ssam.New(ds.Dim(), ssam.Config{
		Mode:      ssam.Linear,
		Execution: ssam.Device,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer dev.Free()
	if err := dev.LoadFloat32(ds.Data); err != nil {
		log.Fatal(err)
	}
	if err := dev.BuildIndex(); err != nil {
		log.Fatal(err)
	}
	devRes, err := dev.Search(query, 6)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nSSAM device search, top-6:")
	for _, r := range devRes {
		fmt.Printf("  id=%-6d dist=%.0f (device fixed-point units)\n", r.ID, r.Dist)
	}

	st := dev.LastStats()
	fmt.Printf("\ndevice execution: %d PUs, %d cycles, %.3f ms @1GHz, %.0f queries/s\n",
		st.ProcessingUnits, st.Cycles, st.Seconds*1e3, st.Throughput())

	// The two top-k id sets should agree (device quantization permits
	// occasional tail swaps).
	agree := 0
	in := map[int]bool{}
	for _, r := range hostRes {
		in[r.ID] = true
	}
	for _, r := range devRes {
		if in[r.ID] {
			agree++
		}
	}
	fmt.Printf("host/device agreement: %d/6\n", agree)
}
