// Dedup demonstrates Hamming-space similarity search (Section II-D's
// binarized representation) for near-duplicate detection: documents
// are sign-binarized into compact codes and searched on the simulated
// SSAM device with the fused xor-popcount (VFXP) kernel — the paper's
// data-deduplication use case.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"ssam"
	"ssam/internal/vec"
)

const (
	numDocs = 3000
	dim     = 256 // binarized code width in bits
)

func main() {
	rng := rand.New(rand.NewSource(21))

	// Corpus: originals plus injected near-duplicates (a few flipped
	// bits) and exact duplicates.
	type doc struct {
		Name  string
		DupOf int // -1 for originals
		Code  vec.Binary
	}
	docs := make([]doc, 0, numDocs)
	codes := make([]vec.Binary, 0, numDocs)
	newCode := func() vec.Binary {
		c := vec.NewBinary(dim)
		for i := 0; i < dim; i++ {
			c.Set(i, rng.Intn(2) == 1)
		}
		return c
	}
	mutate := func(c vec.Binary, flips int) vec.Binary {
		out := vec.NewBinary(dim)
		copy(out.Words, c.Words)
		for f := 0; f < flips; f++ {
			i := rng.Intn(dim)
			out.Set(i, !out.Bit(i))
		}
		return out
	}
	for i := 0; i < numDocs; i++ {
		switch {
		case i%10 == 9: // exact duplicate of an earlier doc
			src := rng.Intn(i)
			docs = append(docs, doc{fmt.Sprintf("doc%04d", i), src, docs[src].Code})
		case i%10 == 8: // near duplicate: ~2% of bits flipped
			src := rng.Intn(i)
			docs = append(docs, doc{fmt.Sprintf("doc%04d", i), src, mutate(docs[src].Code, dim/50)})
		default:
			docs = append(docs, doc{fmt.Sprintf("doc%04d", i), -1, newCode()})
		}
		codes = append(codes, docs[i].Code)
	}

	// Load the codes into a Hamming SSAM region on the simulated
	// device (SSAM-4, as in the paper's Table VI configuration).
	region, err := ssam.New(dim, ssam.Config{
		Mode:         ssam.Linear,
		Metric:       ssam.Hamming,
		Execution:    ssam.Device,
		VectorLength: 4,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer region.Free()
	must(region.LoadBinary(codes))
	must(region.BuildIndex())

	// Sweep the corpus for duplicates: for each doc, its nearest
	// non-self neighbor within a Hamming threshold is a duplicate.
	const threshold = dim / 20 // 5% differing bits
	found, correct := 0, 0
	var totalCycles uint64
	for i := 2400; i < 2500; i++ { // audit a window of the corpus
		res, err := region.SearchBinary(docs[i].Code, 2)
		if err != nil {
			log.Fatal(err)
		}
		totalCycles += region.LastStats().Cycles
		for _, r := range res {
			if r.ID == i {
				continue
			}
			if int(r.Dist) <= threshold {
				found++
				if docs[i].DupOf == r.ID || docs[r.ID].DupOf == i ||
					(docs[i].DupOf >= 0 && docs[i].DupOf == docs[r.ID].DupOf) {
					correct++
				}
				fmt.Printf("%s ~ %s (hamming %d)\n", docs[i].Name, docs[r.ID].Name, int(r.Dist))
			}
		}
	}
	fmt.Printf("\naudited 100 docs: %d duplicate pairs flagged, %d confirmed against ground truth\n",
		found, correct)
	fmt.Printf("device cost: %.2f M cycles total (%.1f us/doc @1GHz)\n",
		float64(totalCycles)/1e6, float64(totalCycles)/100/1e3)
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
