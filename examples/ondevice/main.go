// Ondevice demonstrates the full near-data stack through the public
// API: the same corpus served by the simulated SSAM in linear mode and
// with all three on-device indexes (kd-tree and hierarchical k-means
// trees traversed with the hardware stack unit, hyperplane LSH with
// hash weights in device memory), reporting recall against exact
// search and the simulated device cost of each.
package main

import (
	"fmt"
	"log"

	"ssam"
	"ssam/internal/dataset"
)

func main() {
	ds := dataset.Generate(dataset.Spec{
		Name: "ondevice", N: 20000, Dim: 64, NumQueries: 8, K: 10,
		Clusters: 24, ClusterStd: 0.3, Seed: 12,
	})

	// Exact host baseline for recall accounting.
	exact, err := ssam.New(ds.Dim(), ssam.Config{Mode: ssam.Linear})
	if err != nil {
		log.Fatal(err)
	}
	defer exact.Free()
	must(exact.LoadFloat32(ds.Data))
	must(exact.BuildIndex())

	configs := []struct {
		name string
		cfg  ssam.Config
	}{
		{"linear scan", ssam.Config{Mode: ssam.Linear, Execution: ssam.Device}},
		{"kd-tree (stack unit)", ssam.Config{
			Mode: ssam.KDTree, Execution: ssam.Device,
			Index: ssam.IndexParams{Checks: 24},
		}},
		{"k-means tree", ssam.Config{
			Mode: ssam.KMeans, Execution: ssam.Device,
			Index: ssam.IndexParams{Checks: 24, Branching: 4},
		}},
		{"multi-probe LSH", ssam.Config{
			Mode: ssam.MPLSH, Execution: ssam.Device,
			Index: ssam.IndexParams{Tables: 4, Bits: 6, Probes: 8},
		}},
	}

	fmt.Printf("%-22s %-8s %-12s %-12s %-8s\n",
		"engine", "recall", "cycles/query", "us @1GHz", "PUs")
	for _, c := range configs {
		r, err := ssam.New(ds.Dim(), c.cfg)
		if err != nil {
			log.Fatal(err)
		}
		must(r.LoadFloat32(ds.Data))
		must(r.BuildIndex())

		hits, total := 0, 0
		var cycles uint64
		var pus int
		for _, q := range ds.Queries {
			want, err := exact.Search(q, 10)
			if err != nil {
				log.Fatal(err)
			}
			got, err := r.Search(q, 10)
			if err != nil {
				log.Fatal(err)
			}
			st := r.LastStats()
			cycles += st.Cycles
			pus = st.ProcessingUnits
			in := map[int]bool{}
			for _, w := range want {
				in[w.ID] = true
			}
			for _, g := range got {
				total++
				if in[g.ID] {
					hits++
				}
			}
		}
		perQuery := float64(cycles) / float64(len(ds.Queries))
		fmt.Printf("%-22s %-8.3f %-12.0f %-12.3f %-8d\n",
			c.name, float64(hits)/float64(total), perQuery, perQuery/1e3, pus)
		r.Free()
	}
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
