// Command ssam-asm assembles SSAM kernel source (Table II assembly)
// into program binaries, disassembles binaries back to text, and can
// emit the built-in linear-scan kernels the paper's benchmarks use.
//
// Usage:
//
//	ssam-asm [-o prog.bin] kernel.s          assemble
//	ssam-asm -d prog.bin                     disassemble
//	ssam-asm -kernel euclidean -dims 100 -nvec 1000 -vlen 8   emit generated kernel source
package main

import (
	"flag"
	"fmt"
	"os"

	"ssam/internal/asm"
	"ssam/internal/isa"
	"ssam/internal/sim"
)

func main() {
	out := flag.String("o", "", "output file (default stdout for text, required for binaries)")
	disasm := flag.Bool("d", false, "disassemble a binary program")
	kernel := flag.String("kernel", "", "emit a generated kernel: euclidean, manhattan, cosine, hamming")
	dims := flag.Int("dims", 128, "kernel dimensions (bits for hamming)")
	nvec := flag.Int("nvec", 1024, "kernel database size")
	vlen := flag.Int("vlen", 8, "kernel vector length")
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintf(os.Stderr, "ssam-asm: %v\n", err)
		os.Exit(1)
	}

	if *kernel != "" {
		var src string
		switch *kernel {
		case "euclidean":
			src = sim.EuclideanKernel(*dims, *nvec, *vlen)
		case "manhattan":
			src = sim.ManhattanKernel(*dims, *nvec, *vlen)
		case "cosine":
			src = sim.CosineKernel(*dims, *nvec, *vlen)
		case "hamming":
			src = sim.HammingKernel(sim.HammingWords(*dims), *nvec, *vlen)
		default:
			fail(fmt.Errorf("unknown kernel %q", *kernel))
		}
		if err := emit(*out, []byte(src)); err != nil {
			fail(err)
		}
		return
	}

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: ssam-asm [-o out] [-d] file | -kernel name [-dims N -nvec N -vlen N]")
		os.Exit(2)
	}
	data, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fail(err)
	}

	if *disasm {
		prog, err := isa.DecodeProgram(data)
		if err != nil {
			fail(err)
		}
		if err := emit(*out, []byte(asm.Disassemble(prog))); err != nil {
			fail(err)
		}
		return
	}

	prog, err := asm.Assemble(string(data))
	if err != nil {
		fail(err)
	}
	bin := isa.EncodeProgram(prog)
	if *out == "" {
		fail(fmt.Errorf("assembling produces a binary; -o is required"))
	}
	if err := os.WriteFile(*out, bin, 0o644); err != nil {
		fail(err)
	}
	fmt.Printf("assembled %d instructions (%d bytes) -> %s\n", len(prog), len(bin), *out)
}

func emit(path string, data []byte) error {
	if path == "" {
		_, err := os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(path, data, 0o644)
}
