// Command ssam-sim runs an assembled SSAM kernel on the cycle-level
// processing-unit simulator and reports the priority-queue contents
// and execution statistics — the standalone counterpart of the
// paper's "assembler and simulator to ... benchmark assembly programs
// and validate the correctness of our design".
//
// The DRAM shard and scratchpad are loaded from binary files of
// little-endian int32 words.
//
// Usage:
//
//	ssam-sim [-vlen 8] [-dram data.bin] [-scratch query.bin] [-sw-queue] prog.s|prog.bin
package main

import (
	"encoding/binary"
	"flag"
	"fmt"
	"os"
	"strings"

	"ssam/internal/asm"
	"ssam/internal/isa"
	"ssam/internal/sim"
)

func main() {
	vlen := flag.Int("vlen", 8, "vector length (2, 4, 8, 16)")
	dramPath := flag.String("dram", "", "binary file of int32 words mapped at DRAM base")
	scratchPath := flag.String("scratch", "", "binary file of int32 words preloaded into the scratchpad")
	swQueue := flag.Bool("sw-queue", false, "model a software priority queue instead of the hardware unit")
	maxCycles := flag.Uint64("max-cycles", 0, "abort after this many cycles (0 = default)")
	trace := flag.Bool("trace", false, "print every retired instruction to stderr")
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintf(os.Stderr, "ssam-sim: %v\n", err)
		os.Exit(1)
	}
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: ssam-sim [flags] prog.s|prog.bin")
		os.Exit(2)
	}

	raw, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fail(err)
	}
	var prog []isa.Inst
	if strings.HasSuffix(flag.Arg(0), ".bin") {
		prog, err = isa.DecodeProgram(raw)
	} else {
		prog, err = asm.Assemble(string(raw))
	}
	if err != nil {
		fail(err)
	}

	cfg := sim.DefaultConfig(*vlen)
	cfg.SoftwareQueue = *swQueue
	if *maxCycles > 0 {
		cfg.MaxCycles = *maxCycles
	}

	var dram []int32
	if *dramPath != "" {
		if dram, err = readWords(*dramPath); err != nil {
			fail(err)
		}
	}
	pu := sim.New(cfg, dram)
	if *trace {
		pu.Trace = os.Stderr
	}
	if *scratchPath != "" {
		words, err := readWords(*scratchPath)
		if err != nil {
			fail(err)
		}
		if err := pu.WriteScratch(0, words); err != nil {
			fail(err)
		}
	}

	if err := pu.Run(prog); err != nil {
		fail(err)
	}

	st := pu.Stats()
	fmt.Printf("cycles:        %d\n", st.Cycles)
	fmt.Printf("instructions:  %d (%d vector, %d scalar)\n", st.Instructions, st.VectorInsts, st.ScalarInsts)
	fmt.Printf("mem stall:     %d cycles\n", st.MemStall)
	fmt.Printf("dram read:     %d bytes\n", st.DRAMBytesRead)
	fmt.Printf("pq inserts:    %d\n", st.PQInserts)
	fmt.Printf("time @1GHz:    %.6f ms\n", st.Seconds(1e9)*1e3)
	res := pu.Results()
	if len(res) > 0 {
		fmt.Println("priority queue (id, value):")
		for _, r := range res {
			fmt.Printf("  %8d  %12.0f\n", r.ID, r.Dist)
		}
	}
}

func readWords(path string) ([]int32, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(data)%4 != 0 {
		return nil, fmt.Errorf("%s: length %d not a multiple of 4", path, len(data))
	}
	words := make([]int32, len(data)/4)
	for i := range words {
		words[i] = int32(binary.LittleEndian.Uint32(data[i*4:]))
	}
	return words, nil
}
