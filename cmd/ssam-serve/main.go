// Command ssam-serve stands up the SSAM query server: named regions
// behind HTTP/JSON with micro-batching, admission control, /statsz
// and Prometheus /metrics, sampled request traces at /tracez, and
// optional pprof (see internal/server).
//
//	ssam-serve -addr :8080 -max-inflight 256 -batch-window 2ms
//	ssam-serve -preload glove:0.01            # serve a ready-built region
//	ssam-serve -preload glove:0.01 -preload-shards 4 -preload-allow-partial
//	ssam-serve -preload glove:0.01 -preload-replicas 3   # p2c-routed replica group
//	ssam-serve -preload glove:0.001 -preload-replicas 3 -chaos-kill-replica 1 -chaos-after 2s
//	ssam-serve -preload gist:0.01 -preload-mode graph -preload-ef 96
//	ssam-serve -preload gist:0.01 -preload-mode quantized -preload-rerank 100
//	ssam-serve -preload gist:0.05 -preload-storage /tmp/gist.tier -preload-storage-budget 33554432
//	ssam-serve -trace-sample 100 -pprof       # observe a running server
//
// Shutdown is graceful: on SIGINT/SIGTERM the server first sheds new
// search traffic with 503 (clients fail over), then drains in-flight
// batches before exiting.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"net/http/pprof"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"ssam"
	"ssam/internal/dataset"
	"ssam/internal/server"
	"ssam/internal/server/wire"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	maxInFlight := flag.Int("max-inflight", 256, "admitted search requests before shedding 503s")
	batchWindow := flag.Duration("batch-window", 2*time.Millisecond, "micro-batcher coalescing window")
	maxBatch := flag.Int("max-batch", 64, "micro-batcher size cap")
	retryAfter := flag.Duration("retry-after", time.Second, "Retry-After hint on shed load")
	preload := flag.String("preload", "", "serve a ready-built region: dataset[:scale], dataset in {glove,gist,alexnet}")
	preloadMode := flag.String("preload-mode", "linear", "indexing mode for the preloaded region")
	preloadVaults := flag.Int("preload-vaults", 0, "intra-query vault count for the preloaded region's linear scans (0 = min(32, GOMAXPROCS))")
	preloadM := flag.Int("preload-m", 0, "graph mode: per-layer degree bound M (0 = default 16)")
	preloadEfc := flag.Int("preload-efc", 0, "graph mode: efConstruction build beam (0 = default 100)")
	preloadEf := flag.Int("preload-ef", 0, "graph mode: efSearch query beam (0 = default 64)")
	preloadSample := flag.Int("preload-sample", 0, "quantized mode: codebook training sample size (0 = default 8192)")
	preloadRerank := flag.Int("preload-rerank", 0, "quantized mode: exact re-rank depth over the ADC top candidates (0 = ADC only)")
	preloadShards := flag.Int("preload-shards", 0, "partition the preloaded region across N scatter-gather shards (0 = unsharded)")
	preloadPartition := flag.String("preload-partition", "", "shard partitioner: roundrobin or hash (default roundrobin)")
	preloadDeadline := flag.Duration("preload-deadline", 0, "per-shard fan-out deadline for the preloaded region (0 = none)")
	preloadHedge := flag.Duration("preload-hedge", 0, "hedge a shard that has not answered within this delay (0 = off)")
	preloadAllowPartial := flag.Bool("preload-allow-partial", false, "serve degraded (partial) results when shards fail instead of erroring")
	preloadReplicas := flag.Int("preload-replicas", 0, "serve the preloaded region from N interchangeable replicas with p2c routing (0 = unreplicated)")
	preloadStorage := flag.String("preload-storage", "", "back the preloaded region's vectors with this file (out-of-core serving; linear/quantized modes)")
	preloadStorageBudget := flag.Int64("preload-storage-budget", 0, "resident page-cache byte budget for -preload-storage (0 = unlimited)")
	preloadStoragePrefetch := flag.Bool("preload-storage-prefetch", true, "overlap the next vault's read with the current scan for -preload-storage")
	preloadReplicaHedge := flag.Bool("preload-replica-hedge", true, "replicated regions: hedge to a second replica after the p99-derived delay")
	chaosKillReplica := flag.Int("chaos-kill-replica", -1, "inject a fault into this replica slot of the preloaded region (requires -preload-replicas)")
	chaosAfter := flag.Duration("chaos-after", 2*time.Second, "delay before the injected replica fault fires")
	drainTimeout := flag.Duration("drain-timeout", 15*time.Second, "shutdown drain budget")
	traceSample := flag.Int("trace-sample", 0, "head-sample 1 in N search requests into /tracez (0 = only X-SSAM-Trace requests)")
	traceRing := flag.Int("trace-ring", 128, "finished traces retained for /tracez")
	enablePprof := flag.Bool("pprof", false, "expose net/http/pprof under /debug/pprof/")
	flag.Parse()

	srv := server.New(server.Options{
		MaxInFlight:      *maxInFlight,
		BatchWindow:      *batchWindow,
		MaxBatch:         *maxBatch,
		RetryAfter:       *retryAfter,
		TraceSampleEvery: *traceSample,
		TraceRing:        *traceRing,
	})

	if *preload != "" {
		var sharding *wire.ShardingConfig
		if *preloadShards > 0 {
			sharding = &wire.ShardingConfig{
				Shards:       *preloadShards,
				Partition:    *preloadPartition,
				DeadlineMs:   float64(*preloadDeadline) / float64(time.Millisecond),
				HedgeMs:      float64(*preloadHedge) / float64(time.Millisecond),
				AllowPartial: *preloadAllowPartial,
			}
		}
		var replicas *wire.ReplicasConfig
		if *preloadReplicas > 0 {
			replicas = &wire.ReplicasConfig{
				Replicas: *preloadReplicas,
				Hedge:    *preloadReplicaHedge,
			}
		}
		var storage *wire.StorageConfig
		if *preloadStorage != "" {
			storage = &wire.StorageConfig{
				Path:        *preloadStorage,
				BudgetBytes: *preloadStorageBudget,
				Prefetch:    *preloadStoragePrefetch,
			}
		}
		index := wire.IndexParams{
			M: *preloadM, EfConstruction: *preloadEfc, EfSearch: *preloadEf,
			Sample: *preloadSample, Rerank: *preloadRerank,
		}
		if err := preloadRegion(srv, *preload, *preloadMode, *preloadVaults, index, sharding, replicas, storage); err != nil {
			log.Fatalf("preload %q: %v", *preload, err)
		}
		if *chaosKillReplica >= 0 {
			region := regionName(*preload)
			idx, after := *chaosKillReplica, *chaosAfter
			go func() {
				time.Sleep(after)
				if err := srv.FailReplica(region, idx); err != nil {
					log.Printf("chaos: %v", err)
					return
				}
				log.Printf("chaos: killed replica %d of region %q", idx, region)
			}()
		}
	}

	// The pprof handlers ride an outer mux so the server's own routing
	// (and admission control) stays untouched; profiling is opt-in
	// because it exposes stacks and heap contents.
	var handler http.Handler = srv
	if *enablePprof {
		outer := http.NewServeMux()
		outer.HandleFunc("/debug/pprof/", pprof.Index)
		outer.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		outer.HandleFunc("/debug/pprof/profile", pprof.Profile)
		outer.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		outer.HandleFunc("/debug/pprof/trace", pprof.Trace)
		outer.Handle("/", srv)
		handler = outer
		log.Printf("pprof enabled at /debug/pprof/")
	}

	httpSrv := &http.Server{Addr: *addr, Handler: handler}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	log.Printf("ssam-serve listening on %s (max-inflight=%d window=%v max-batch=%d)",
		*addr, *maxInFlight, *batchWindow, *maxBatch)

	select {
	case err := <-errc:
		log.Fatalf("serve: %v", err)
	case <-ctx.Done():
	}

	log.Printf("shutting down: shedding new traffic, draining in-flight batches")
	srv.StartDrain()
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		log.Printf("shutdown: %v", err)
	}
	srv.Close()
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Printf("serve: %v", err)
	}
	log.Printf("bye")
}

// preloadRegion builds a synthetic paper workload directly into the
// registry (via the server's own HTTP surface is wasteful for a
// million rows, so this goes through an in-process request cycle only
// for create, then loads and builds through the same handlers the
// wire uses — keeping one code path).
func preloadRegion(srv *server.Server, arg, mode string, vaults int, index wire.IndexParams, sharding *wire.ShardingConfig, replicas *wire.ReplicasConfig, storage *wire.StorageConfig) error {
	name, scale := regionName(arg), 0.01
	if i := strings.IndexByte(arg, ':'); i >= 0 {
		s, err := strconv.ParseFloat(arg[i+1:], 64)
		if err != nil {
			return fmt.Errorf("bad scale: %v", err)
		}
		scale = s
	}
	var spec dataset.Spec
	switch name {
	case "glove":
		spec = dataset.GloVeSpec(scale)
	case "gist":
		spec = dataset.GISTSpec(scale)
	case "alexnet":
		spec = dataset.AlexNetSpec(scale)
	default:
		return fmt.Errorf("unknown dataset %q (want glove, gist or alexnet)", name)
	}
	if _, err := ssam.ParseMode(mode); err != nil {
		return err
	}
	layout := ""
	if sharding != nil {
		layout += fmt.Sprintf(", %d shards", sharding.Shards)
	}
	if replicas != nil {
		layout += fmt.Sprintf(", %d replicas", replicas.Replicas)
	}
	if storage != nil {
		layout += fmt.Sprintf(", storage %s (budget %d)", storage.Path, storage.BudgetBytes)
	}
	log.Printf("preloading %s: %d x %d vectors (scale %v), mode %s%s",
		name, spec.N, spec.Dim, scale, mode, layout)
	ds := dataset.Generate(spec)

	rows := make([][]float32, ds.N())
	for i := range rows {
		rows[i] = ds.Row(i)
	}
	if err := roundTrip(srv, "POST", "/regions", wire.CreateRegionRequest{
		Name: name, Dims: ds.Dim(),
		Config: wire.RegionConfig{Mode: mode, Vaults: vaults, Index: index, Sharding: sharding, Replicas: replicas, Storage: storage},
	}); err != nil {
		return err
	}
	// Load in chunks so a full-scale preload doesn't marshal one giant
	// JSON body.
	const chunk = 50000
	for lo := 0; lo < len(rows); lo += chunk {
		hi := min(lo+chunk, len(rows))
		if err := roundTrip(srv, "POST", "/regions/"+name+"/load", wire.LoadRequest{
			Vectors: rows[lo:hi], Append: lo > 0,
		}); err != nil {
			return err
		}
	}
	if err := roundTrip(srv, "POST", "/regions/"+name+"/build", nil); err != nil {
		return err
	}
	log.Printf("preloaded region %q ready", name)
	return nil
}

// regionName strips the :scale suffix off a -preload argument.
func regionName(arg string) string {
	if i := strings.IndexByte(arg, ':'); i >= 0 {
		return arg[:i]
	}
	return arg
}

// roundTrip drives the server's handler in-process with a synthetic
// request, so preloading exercises the same validation as the wire.
func roundTrip(srv *server.Server, method, path string, body any) error {
	var rd io.Reader
	if body != nil {
		data, err := json.Marshal(body)
		if err != nil {
			return err
		}
		rd = bytes.NewReader(data)
	}
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest(method, path, rd))
	if rec.Code >= 300 {
		return fmt.Errorf("%s %s: status %d: %s", method, path, rec.Code, strings.TrimSpace(rec.Body.String()))
	}
	return nil
}
