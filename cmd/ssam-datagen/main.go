// Command ssam-datagen generates the synthetic evaluation datasets
// (GloVe-, GIST- and AlexNet-like Gaussian mixtures) in the formats
// the other tools consume: float32 or device fixed-point int32 words,
// little-endian, row-major, with the held-out queries in a sibling
// file.
//
// Usage:
//
//	ssam-datagen -dataset glove [-scale 0.01] [-fixed] [-vlen 8] -o glove
//
// writes glove.data.bin and glove.query.bin plus a glove.meta line on
// stdout.
package main

import (
	"encoding/binary"
	"flag"
	"fmt"
	"math"
	"os"

	"ssam/internal/dataset"
	"ssam/internal/sim"
)

func main() {
	name := flag.String("dataset", "glove", "glove, gist or alexnet")
	scale := flag.Float64("scale", 0.01, "scale relative to the paper's dataset size")
	fixed := flag.Bool("fixed", false, "emit device fixed-point int32 words (padded per -vlen) instead of float32")
	vlen := flag.Int("vlen", 8, "device vector length used for padding in -fixed mode")
	out := flag.String("o", "", "output prefix (required)")
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintf(os.Stderr, "ssam-datagen: %v\n", err)
		os.Exit(1)
	}
	if *out == "" {
		fail(fmt.Errorf("-o prefix is required"))
	}

	var spec dataset.Spec
	switch *name {
	case "glove":
		spec = dataset.GloVeSpec(*scale)
	case "gist":
		spec = dataset.GISTSpec(*scale)
	case "alexnet":
		spec = dataset.AlexNetSpec(*scale)
	default:
		fail(fmt.Errorf("unknown dataset %q", *name))
	}
	ds := dataset.Generate(spec)

	if *fixed {
		shift := sim.DeviceShift(ds.Dim())
		padded := sim.PadDims(ds.Dim(), *vlen)
		if err := writeFixed(*out+".data.bin", ds.Data, ds.Dim(), padded, shift); err != nil {
			fail(err)
		}
		flatQ := make([]float32, 0, len(ds.Queries)*ds.Dim())
		for _, q := range ds.Queries {
			flatQ = append(flatQ, q...)
		}
		if err := writeFixed(*out+".query.bin", flatQ, ds.Dim(), padded, shift); err != nil {
			fail(err)
		}
		fmt.Printf("%s: n=%d dim=%d padded=%d shift=%d k=%d queries=%d format=int32\n",
			spec.Name, ds.N(), ds.Dim(), padded, shift, spec.K, len(ds.Queries))
		return
	}

	if err := writeFloats(*out+".data.bin", ds.Data); err != nil {
		fail(err)
	}
	flatQ := make([]float32, 0, len(ds.Queries)*ds.Dim())
	for _, q := range ds.Queries {
		flatQ = append(flatQ, q...)
	}
	if err := writeFloats(*out+".query.bin", flatQ); err != nil {
		fail(err)
	}
	fmt.Printf("%s: n=%d dim=%d k=%d queries=%d format=float32\n",
		spec.Name, ds.N(), ds.Dim(), spec.K, len(ds.Queries))
}

func writeFloats(path string, vals []float32) error {
	buf := make([]byte, len(vals)*4)
	for i, v := range vals {
		binary.LittleEndian.PutUint32(buf[i*4:], math.Float32bits(v))
	}
	return os.WriteFile(path, buf, 0o644)
}

func writeFixed(path string, vals []float32, dim, padded, shift int) error {
	rows := len(vals) / dim
	buf := make([]byte, rows*padded*4)
	for r := 0; r < rows; r++ {
		q := sim.QuantizeDevice(vals[r*dim:(r+1)*dim], shift)
		for i, v := range q {
			binary.LittleEndian.PutUint32(buf[(r*padded+i)*4:], uint32(v))
		}
	}
	return os.WriteFile(path, buf, 0o644)
}
