// Command ssam-bench regenerates any table or figure of the SSAM
// paper's evaluation.
//
// Usage:
//
//	ssam-bench -exp table1|table2|table3|table4|table5|table6|fig2|fig6|fig7|pqueue|fixed|tco|all
//	           [-scale 0.004] [-queries 10] [-vlen 8]
//
// Scale shrinks the synthetic datasets relative to the paper's 1M+
// vectors; results the paper reports at full scale are extrapolated
// (see DESIGN.md).
package main

import (
	"flag"
	"fmt"
	"os"

	"ssam/internal/bench"
)

func main() {
	exp := flag.String("exp", "all", "experiment id (table1..table6, fig2, fig6, fig7, pqueue, fixed, tco, build, offload, energy, cluster, shards, vaults, graph, mutate, replicas, pq, tiered, all)")
	scale := flag.Float64("scale", 0.004, "dataset scale relative to the paper's sizes (0,1]")
	queries := flag.Int("queries", 10, "queries per measurement point")
	vlen := flag.Int("vlen", 8, "SSAM vector length (2, 4, 8, 16)")
	format := flag.String("format", "table", "output format: table, csv, or json (vaults and graph only)")
	flag.Parse()

	o := bench.Options{Scale: *scale, Queries: *queries, VectorLength: *vlen}

	// The vaults and graph sweeps have machine-readable trajectory
	// formats (BENCH_05_vaults.json, BENCH_06_graph.json); the tabular
	// experiments do not.
	if *format == "json" {
		var err error
		switch *exp {
		case "vaults":
			var t bench.VaultTrajectory
			if t, err = bench.VaultSweep(o); err == nil {
				err = bench.WriteVaultTrajectory(os.Stdout, t)
			}
		case "graph":
			var t bench.GraphTrajectory
			if t, err = bench.GraphSweep(o); err == nil {
				err = bench.WriteGraphTrajectory(os.Stdout, t)
			}
		case "mutate":
			var t bench.MutateTrajectory
			if t, err = bench.MutateSweep(o); err == nil {
				err = bench.WriteMutateTrajectory(os.Stdout, t)
			}
		case "replicas":
			var t bench.ReplicaTrajectory
			if t, err = bench.ReplicaSweep(o); err == nil {
				err = bench.WriteReplicaTrajectory(os.Stdout, t)
			}
		case "pq":
			var t bench.PQTrajectory
			if t, err = bench.PQSweep(o); err == nil {
				err = bench.WritePQTrajectory(os.Stdout, t)
			}
		case "tiered":
			var t bench.TieredTrajectory
			if t, err = bench.TieredSweep(o); err == nil {
				err = bench.WriteTieredTrajectory(os.Stdout, t)
			}
		default:
			fmt.Fprintf(os.Stderr, "ssam-bench: -format json is only supported for -exp vaults, -exp graph, -exp mutate, -exp replicas, -exp pq, and -exp tiered\n")
			os.Exit(2)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "ssam-bench: %s: %v\n", *exp, err)
			os.Exit(1)
		}
		return
	}

	runners := map[string]func() (bench.Report, error){
		"table1":   func() (bench.Report, error) { return bench.TableIReport(o), nil },
		"table2":   func() (bench.Report, error) { return bench.TableIIReport(), nil },
		"table3":   func() (bench.Report, error) { return bench.TableIIIReport(), nil },
		"table4":   func() (bench.Report, error) { return bench.TableIVReport(), nil },
		"table5":   func() (bench.Report, error) { return bench.TableVReport(o) },
		"table6":   func() (bench.Report, error) { return bench.TableVIReport(o) },
		"fig2":     func() (bench.Report, error) { return bench.Figure2Report(o), nil },
		"fig6":     func() (bench.Report, error) { return bench.Figure6Report(o) },
		"fig7":     func() (bench.Report, error) { return bench.Figure7Report(o) },
		"pqueue":   func() (bench.Report, error) { return bench.PQAblationReport(o) },
		"fixed":    func() (bench.Report, error) { return bench.FixedPointReport(o), nil },
		"tco":      func() (bench.Report, error) { return bench.TCOReport(o) },
		"build":    func() (bench.Report, error) { return bench.IndexConstructionReport(o), nil },
		"offload":  func() (bench.Report, error) { return bench.KMeansOffloadReport(o) },
		"energy":   func() (bench.Report, error) { return bench.EnergyPerQueryReport(o) },
		"cluster":  func() (bench.Report, error) { return bench.ClusterScalingReport(o) },
		"shards":   func() (bench.Report, error) { return bench.ShardSweepReport(o) },
		"vaults":   func() (bench.Report, error) { return bench.VaultSweepReport(o) },
		"graph":    func() (bench.Report, error) { return bench.GraphSweepReport(o) },
		"mutate":   func() (bench.Report, error) { return bench.MutateSweepReport(o) },
		"replicas": func() (bench.Report, error) { return bench.ReplicaSweepReport(o) },
		"pq":       func() (bench.Report, error) { return bench.PQSweepReport(o) },
		"tiered":   func() (bench.Report, error) { return bench.TieredSweepReport(o) },
		"devbuild": func() (bench.Report, error) { return bench.DeviceAssistedBuildReport(o) },
		"devindex": func() (bench.Report, error) { return bench.DeviceIndexSweepReport(o) },
		"devlsh":   func() (bench.Report, error) { return bench.DeviceLSHSweepReport(o) },
		"devmix":   func() (bench.Report, error) { return bench.DeviceInstructionMixReport(o) },
	}
	order := []string{"table1", "table2", "table3", "table4", "table5", "table6",
		"fig2", "fig6", "fig7", "pqueue", "fixed", "tco", "build", "offload",
		"devbuild", "devindex", "devlsh", "devmix", "energy", "cluster", "shards",
		"vaults", "graph", "mutate", "replicas", "pq", "tiered"}

	ids := []string{*exp}
	if *exp == "all" {
		ids = order
	}
	for _, id := range ids {
		run, ok := runners[id]
		if !ok {
			fmt.Fprintf(os.Stderr, "ssam-bench: unknown experiment %q\n", id)
			os.Exit(2)
		}
		r, err := run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "ssam-bench: %s: %v\n", id, err)
			os.Exit(1)
		}
		switch *format {
		case "csv":
			if err := r.WriteCSV(os.Stdout); err != nil {
				fmt.Fprintf(os.Stderr, "ssam-bench: %s: %v\n", id, err)
				os.Exit(1)
			}
		default:
			r.Print(os.Stdout)
		}
		fmt.Println()
	}
}
