// Command ssam-loadgen drives an ssam-serve instance with measurable
// load, the serving-side counterpart of the paper's throughput
// characterization: closed-loop (a fixed worker pool issuing
// back-to-back queries, measuring saturation throughput) or open-loop
// (Poisson arrivals at a target rate, measuring latency under load
// without coordinated omission).
//
//	ssam-loadgen -setup -n 20000 -dims 100 -duration 10s -concurrency 32
//	ssam-loadgen -loop open -rate 2000 -duration 30s -retries 0
//	ssam-loadgen -loop open -rate 500 -upsert-frac 0.05 -delete-frac 0.05
//	ssam-loadgen -replicas 3 -reload-at 3s -fail-on-degraded   # replica group under live reload
//	ssam-loadgen -tenants 16 -zipf 1.3 -slo 20ms               # skewed multi-tenant fleet
//
// -tenants N switches to the multi-tenant scenario: N named regions
// (<region>-0..N-1) driven by zipf-skewed traffic, reporting
// per-tenant p50/p99 and SLO-violation counts. -reload-at issues a
// live zero-downtime reload mid-run (replicated regions);
// -fail-on-degraded turns any degraded/failed response into exit
// code 2, which is what the CI replica smoke asserts on.
//
// With -retries 0, shed load (503) is reported as such instead of
// being retried, making the server's admission control visible.
//
// -upsert-frac/-delete-frac turn the stream into a mixed read/write
// workload against a mutable (unsharded linear) region: that fraction
// of operations become single-row upserts/deletes over a uniform id
// space, reported separately with write p50/p99 and the final
// committed sequence watermark.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"ssam/internal/client"
	"ssam/internal/dataset"
	"ssam/internal/obs"
	"ssam/internal/server/wire"
)

// stageNames orders the per-stage latency breakdown: admission wait,
// micro-batcher queue and shared execution (unsharded regions), shard
// fan-out and top-k merge (sharded regions).
var stageNames = []string{"admission", "queue", "exec", "fanout", "merge"}

func main() {
	addr := flag.String("addr", "http://localhost:8080", "server base URL")
	region := flag.String("region", "bench", "region name to query")
	setup := flag.Bool("setup", true, "create/load/build the region before driving load")
	n := flag.Int("n", 20000, "dataset rows for -setup")
	dims := flag.Int("dims", 100, "vector dimensionality for -setup")
	clusters := flag.Int("clusters", 64, "mixture components for -setup")
	mode := flag.String("mode", "linear", "indexing mode for -setup")
	shards := flag.Int("shards", 0, "partition the -setup region across N scatter-gather shards (0 = unsharded)")
	allowPartial := flag.Bool("allow-partial", true, "sharded setup: serve degraded results when shards fail")
	hedge := flag.Duration("hedge", 0, "sharded setup: hedge a shard unanswered after this delay (0 = off)")
	replicas := flag.Int("replicas", 0, "replicate the -setup region across N p2c-routed copies (0 = unreplicated)")
	replicaHedge := flag.Bool("replica-hedge", true, "replicated setup: hedge to a second replica after the p99-derived delay")
	k := flag.Int("k", 6, "neighbors per query")
	loop := flag.String("loop", "closed", "load model: closed (worker pool) or open (Poisson arrivals)")
	concurrency := flag.Int("concurrency", 16, "closed-loop workers / open-loop in-flight cap")
	rate := flag.Float64("rate", 1000, "open-loop target arrival rate (queries/sec)")
	duration := flag.Duration("duration", 10*time.Second, "measurement length")
	retries := flag.Int("retries", 0, "client retry budget on shed load")
	timeout := flag.Duration("timeout", 10*time.Second, "per-request timeout")
	seed := flag.Int64("seed", 1, "query-stream seed")
	traceEvery := flag.Int("trace-every", 0, "force-trace every Nth query (X-SSAM-Trace) and report per-stage latency (0 = off)")
	upsertFrac := flag.Float64("upsert-frac", 0, "fraction of operations issued as single-row upserts (0..1)")
	deleteFrac := flag.Float64("delete-frac", 0, "fraction of operations issued as single-row deletes (0..1)")
	reloadAt := flag.Duration("reload-at", 0, "issue a live POST .../reload this long into the run (0 = off; replicated regions only)")
	failOnDegraded := flag.Bool("fail-on-degraded", false, "exit 2 if any degraded or failed responses (or a failed -reload-at) were observed")
	tenants := flag.Int("tenants", 0, "multi-tenant mode: drive N named regions (<region>-0..N-1) with zipf-skewed traffic")
	zipfS := flag.Float64("zipf", 1.2, "multi-tenant mode: zipf skew exponent s (> 1; higher = more skew)")
	slo := flag.Duration("slo", 50*time.Millisecond, "multi-tenant mode: per-request latency SLO for the violation count")
	flag.Parse()

	if *upsertFrac < 0 || *deleteFrac < 0 || *upsertFrac+*deleteFrac > 1 {
		log.Fatalf("-upsert-frac and -delete-frac must be non-negative and sum to at most 1")
	}
	if *upsertFrac+*deleteFrac > 0 && (*shards > 0 || *mode != "linear") {
		log.Fatalf("write mix needs a mutable region: unsharded, -mode linear (got mode=%s shards=%d)", *mode, *shards)
	}

	c := client.New(*addr, client.WithTimeout(*timeout), client.WithRetries(*retries))
	ctx := context.Background()
	if err := c.Health(ctx); err != nil {
		log.Fatalf("server not reachable at %s: %v", *addr, err)
	}

	spec := dataset.Spec{
		Name: *region, N: *n, Dim: *dims, NumQueries: 2048, K: *k,
		Clusters: *clusters, ClusterStd: 0.3, Seed: *seed,
	}
	ds := dataset.Generate(spec)

	var sharding *wire.ShardingConfig
	if *shards > 0 {
		sharding = &wire.ShardingConfig{
			Shards:       *shards,
			HedgeMs:      float64(*hedge) / float64(time.Millisecond),
			AllowPartial: *allowPartial,
		}
	}
	var repCfg *wire.ReplicasConfig
	if *replicas > 0 {
		repCfg = &wire.ReplicasConfig{Replicas: *replicas, Hedge: *replicaHedge}
	}

	if *tenants > 0 {
		violations := multiTenant(ctx, c, tenantOptions{
			base: *region, tenants: *tenants, zipfS: *zipfS, slo: *slo,
			setup: *setup, mode: *mode, sharding: sharding, replicas: repCfg,
			k: *k, workers: *concurrency, duration: *duration, seed: *seed,
		}, ds)
		if *failOnDegraded && violations {
			os.Exit(2)
		}
		return
	}

	if *setup {
		if err := setupRegion(ctx, c, *region, ds, *mode, sharding, repCfg); err != nil {
			log.Fatalf("setup: %v", err)
		}
	}

	mix := writeMix{upsert: *upsertFrac, del: *deleteFrac, n: ds.N()}
	if mix.enabled() {
		mix.rows = make([][]float32, ds.N())
		for i := range mix.rows {
			mix.rows[i] = ds.Row(i)
		}
	}

	// A scheduled mid-run reload exercises the zero-downtime swap under
	// exactly the traffic this loadgen is generating.
	var reloadErr chan error
	if *reloadAt > 0 {
		reloadErr = make(chan error, 1)
		go func() {
			time.Sleep(*reloadAt)
			start := time.Now()
			rr, err := c.Reload(ctx, *region)
			if err != nil {
				log.Printf("reload: %v", err)
			} else {
				log.Printf("reload: gen %d live after %v (build %.1fms, drain %.1fms)",
					rr.Gen, time.Since(start).Round(time.Millisecond), rr.BuildMs, rr.DrainMs)
			}
			reloadErr <- err
		}()
	}

	log.Printf("%s-loop against %s/regions/%s: k=%d, %v", *loop, *addr, *region, *k, *duration)
	var res runResult
	switch *loop {
	case "closed":
		res = closedLoop(ctx, c, *region, ds.Queries, *k, *concurrency, *duration, *traceEvery, mix)
	case "open":
		res = openLoop(ctx, c, *region, ds.Queries, *k, *rate, *concurrency, *duration, *seed, *traceEvery, mix)
	default:
		log.Fatalf("unknown -loop %q (want closed or open)", *loop)
	}
	res.report(os.Stdout)

	reloadFailed := false
	if reloadErr != nil {
		if err := <-reloadErr; err != nil {
			reloadFailed = true
		}
	}

	if stats, err := c.Stats(ctx); err == nil {
		if rs, ok := stats.Regions[*region]; ok && rs.Batches > 0 {
			fmt.Printf("server: %d queries in %d batches (avg %.1f, max %d), queue depth %d, server p99 %.2fms\n",
				rs.Queries, rs.Batches, float64(rs.Queries)/float64(rs.Batches),
				rs.MaxBatchSeen, rs.QueueDepth, rs.LatencyP99Ms)
		}
		if rs, ok := stats.Regions[*region]; ok && rs.Mutation != nil {
			m := rs.Mutation
			fmt.Printf("server writes: seq %d, %d live / %d dead rows, %d upserts, %d deletes, %d compactions (%d rewrites, %d rebalances)\n",
				m.Seq, m.LiveRows, m.DeadRows, m.Upserts, m.Deletes,
				m.CompactPasses, m.VaultRewrites, m.Rebalances)
			if res.seqWater > m.Seq {
				fmt.Printf("WARNING: client saw seq %d but server reports %d\n", res.seqWater, m.Seq)
			}
		}
		if rs, ok := stats.Regions[*region]; ok && rs.Replication != nil {
			rep := rs.Replication
			fmt.Printf("server replication: gen %d, %d swaps, hedge delay %.2fms\n",
				rep.Gen, rep.Swaps, rep.HedgeDelayMs)
			for _, r := range rep.Replicas {
				fmt.Printf("  replica %d: %d queries, %d errors, %d hedges, %d failovers, ewma %.2fms\n",
					r.Replica, r.Queries, r.Errors, r.Hedges, r.Failovers, r.EwmaLatencyMs)
			}
		}
	}

	if *failOnDegraded && (res.degraded > 0 || res.failed > 0 || reloadFailed) {
		log.Printf("FAIL: degraded=%d failed=%d reload-failed=%v", res.degraded, res.failed, reloadFailed)
		os.Exit(2)
	}
}

func setupRegion(ctx context.Context, c *client.Client, name string, ds *dataset.Dataset, mode string, sharding *wire.ShardingConfig, replicas *wire.ReplicasConfig) error {
	_, err := c.CreateRegion(ctx, name, ds.Dim(), wire.RegionConfig{Mode: mode, Sharding: sharding, Replicas: replicas})
	var se *client.StatusError
	if errors.As(err, &se) && se.Code == 409 {
		log.Printf("region %q already exists; reloading", name)
	} else if err != nil {
		return err
	}
	rows := make([][]float32, ds.N())
	for i := range rows {
		rows[i] = ds.Row(i)
	}
	const chunk = 20000
	for lo := 0; lo < len(rows); lo += chunk {
		hi := min(lo+chunk, len(rows))
		var err error
		if lo == 0 {
			_, err = c.Load(ctx, name, rows[lo:hi])
		} else {
			_, err = c.LoadAppend(ctx, name, rows[lo:hi])
		}
		if err != nil {
			return err
		}
	}
	start := time.Now()
	if _, err := c.Build(ctx, name); err != nil {
		return err
	}
	log.Printf("built %q: %d x %d in %v", name, ds.N(), ds.Dim(), time.Since(start).Round(time.Millisecond))
	return nil
}

// writeMix configures the read/write operation mix: each operation
// becomes an upsert with probability upsert, a delete with probability
// del, and a search otherwise. Writes target a uniform id in [0, n)
// and upserts carry another dataset row as the replacement payload (a
// same-size steady-state write).
type writeMix struct {
	upsert, del float64
	n           int
	rows        [][]float32
}

func (m writeMix) enabled() bool { return m.upsert+m.del > 0 }

// runResult aggregates one measurement run.
type runResult struct {
	model     string
	elapsed   time.Duration
	attempted uint64
	ok        uint64
	shed      uint64 // ErrOverloaded after the retry budget
	failed    uint64 // any other error
	dropped   uint64 // open loop only: arrivals past the in-flight cap
	degraded  uint64 // 200s flagged Degraded (sharded regions with dead shards)
	latencies []time.Duration
	stages    map[string][]float64 // per-stage durations (us) from sampled traces

	// Write-path outcomes (zero unless a write mix was configured).
	writeOK     uint64
	writeShed   uint64
	writeFailed uint64
	writeLats   []time.Duration
	seqWater    uint64 // highest committed seq observed in responses
}

func (r *runResult) report(w *os.File) {
	fmt.Fprintf(w, "%s loop: %v elapsed\n", r.model, r.elapsed.Round(time.Millisecond))
	fmt.Fprintf(w, "  attempted %d, ok %d, shed(503) %d, failed %d", r.attempted, r.ok, r.shed, r.failed)
	if r.dropped > 0 {
		fmt.Fprintf(w, ", dropped-at-client %d", r.dropped)
	}
	if r.degraded > 0 {
		fmt.Fprintf(w, ", degraded %d", r.degraded)
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "  throughput %.1f ok-queries/sec\n", float64(r.ok)/r.elapsed.Seconds())
	if r.writeOK+r.writeShed+r.writeFailed > 0 {
		fmt.Fprintf(w, "  writes: ok %d, shed(503) %d, failed %d, %.1f ok-writes/sec, seq watermark %d\n",
			r.writeOK, r.writeShed, r.writeFailed,
			float64(r.writeOK)/r.elapsed.Seconds(), r.seqWater)
		if len(r.writeLats) > 0 {
			sort.Slice(r.writeLats, func(i, j int) bool { return r.writeLats[i] < r.writeLats[j] })
			wp := func(p float64) time.Duration {
				return r.writeLats[int(p*float64(len(r.writeLats)-1))]
			}
			fmt.Fprintf(w, "  write latency p50 %v  p99 %v  max %v\n",
				wp(0.50).Round(time.Microsecond), wp(0.99).Round(time.Microsecond),
				r.writeLats[len(r.writeLats)-1].Round(time.Microsecond))
		}
	}
	if len(r.latencies) == 0 {
		return
	}
	sort.Slice(r.latencies, func(i, j int) bool { return r.latencies[i] < r.latencies[j] })
	pct := func(p float64) time.Duration {
		i := int(p * float64(len(r.latencies)-1))
		return r.latencies[i]
	}
	fmt.Fprintf(w, "  latency p50 %v  p90 %v  p99 %v  max %v\n",
		pct(0.50).Round(time.Microsecond), pct(0.90).Round(time.Microsecond),
		pct(0.99).Round(time.Microsecond), r.latencies[len(r.latencies)-1].Round(time.Microsecond))
	if len(r.stages) > 0 {
		fmt.Fprintf(w, "  stage breakdown from sampled traces:\n")
		for _, stage := range stageNames {
			ds := r.stages[stage]
			if len(ds) == 0 {
				continue
			}
			sort.Float64s(ds)
			p50 := ds[len(ds)/2]
			p99 := ds[min(len(ds)-1, len(ds)*99/100)]
			fmt.Fprintf(w, "    %-9s n=%-5d p50 %8.1fus  p99 %8.1fus\n", stage, len(ds), p50, p99)
		}
	}
}

// collector accumulates outcomes from concurrent issuers.
type collector struct {
	mu        sync.Mutex
	latencies []time.Duration
	writeLats []time.Duration
	stages    map[string][]float64
	ok        atomic.Uint64
	shed      atomic.Uint64
	failed    atomic.Uint64
	degraded  atomic.Uint64
	wok       atomic.Uint64
	wshed     atomic.Uint64
	wfailed   atomic.Uint64
	seq       atomic.Uint64 // max committed seq seen in write responses
}

func (col *collector) observe(resp wire.SearchResponse, err error, lat time.Duration) {
	switch {
	case err == nil:
		col.ok.Add(1)
		if resp.Degraded {
			col.degraded.Add(1)
		}
		col.mu.Lock()
		col.latencies = append(col.latencies, lat)
		col.mu.Unlock()
		if resp.Trace != nil {
			col.observeTrace(resp.Trace)
		}
	case errors.Is(err, client.ErrOverloaded):
		col.shed.Add(1)
	default:
		col.failed.Add(1)
	}
}

// observeWrite accounts one upsert/delete outcome. The seq watermark
// keeps the highest committed sequence number any response reported —
// with all writes flowing through this loadgen, a store whose final
// /statsz seq matches the watermark lost none of them.
func (col *collector) observeWrite(resp wire.MutateResponse, err error, lat time.Duration) {
	switch {
	case err == nil:
		col.wok.Add(1)
		for {
			cur := col.seq.Load()
			if resp.Seq <= cur || col.seq.CompareAndSwap(cur, resp.Seq) {
				break
			}
		}
		col.mu.Lock()
		col.writeLats = append(col.writeLats, lat)
		col.mu.Unlock()
	case errors.Is(err, client.ErrOverloaded):
		col.wshed.Add(1)
	default:
		col.wfailed.Add(1)
	}
}

// issueWrite sends one write per the mix: an upsert of a random row's
// content under a random id, or a delete of a random id (misses are
// fine — they commit nothing and come back in Missing).
func issueWrite(ctx context.Context, c *client.Client, region string, mix writeMix, isUpsert bool, col *collector) {
	start := time.Now()
	var resp wire.MutateResponse
	var err error
	if isUpsert {
		id := rand.Intn(mix.n)
		resp, err = c.Upsert(ctx, region, []int{id}, [][]float32{mix.rows[rand.Intn(mix.n)]})
	} else {
		resp, err = c.Delete(ctx, region, []int{rand.Intn(mix.n)})
	}
	col.observeWrite(resp, err, time.Since(start))
}

// observeTrace harvests per-stage durations from one sampled span
// tree: the admission wait off the root, then the batch span's direct
// children — queue/exec on the micro-batched path, fanout/merge on
// the sharded bypass.
func (col *collector) observeTrace(td *obs.TraceData) {
	if td.Root == nil {
		return
	}
	col.mu.Lock()
	defer col.mu.Unlock()
	if col.stages == nil {
		col.stages = make(map[string][]float64)
	}
	if a := td.Root.Find("admission"); a != nil {
		col.stages["admission"] = append(col.stages["admission"], a.DurUs)
	}
	if b := td.Root.Find("batch"); b != nil {
		for _, ch := range b.Children {
			switch ch.Stage {
			case "queue", "exec", "fanout", "merge":
				col.stages[ch.Stage] = append(col.stages[ch.Stage], ch.DurUs)
			}
		}
	}
}

// closedLoop runs workers back to back: measures saturation
// throughput at a fixed multiprogramming level.
func closedLoop(ctx context.Context, c *client.Client, region string, queries [][]float32, k, workers int, d time.Duration, traceEvery int, mix writeMix) runResult {
	var col collector
	var attempted atomic.Uint64
	deadline := time.Now().Add(d)
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; time.Now().Before(deadline); i++ {
				attempted.Add(1)
				u := 0.0
				if mix.enabled() {
					u = rand.Float64()
				}
				if u < mix.upsert {
					issueWrite(ctx, c, region, mix, true, &col)
					continue
				}
				if u < mix.upsert+mix.del {
					issueWrite(ctx, c, region, mix, false, &col)
					continue
				}
				qStart := time.Now()
				q := queries[i%len(queries)]
				var resp wire.SearchResponse
				var err error
				if traceEvery > 0 && i%traceEvery == 0 {
					resp, err = c.SearchTraced(ctx, region, q, k)
				} else {
					resp, err = c.SearchFull(ctx, region, q, k)
				}
				col.observe(resp, err, time.Since(qStart))
			}
		}(w)
	}
	wg.Wait()
	return runResult{
		model: "closed", elapsed: time.Since(start),
		attempted: attempted.Load(), ok: col.ok.Load(), shed: col.shed.Load(),
		failed: col.failed.Load(), degraded: col.degraded.Load(),
		latencies: col.latencies, stages: col.stages,
		writeOK: col.wok.Load(), writeShed: col.wshed.Load(),
		writeFailed: col.wfailed.Load(), writeLats: col.writeLats,
		seqWater: col.seq.Load(),
	}
}

// openLoop issues arrivals on a Poisson process at the target rate,
// regardless of completions (no coordinated omission); a bounded
// in-flight cap keeps a melting server from exhausting the client.
func openLoop(ctx context.Context, c *client.Client, region string, queries [][]float32, k int, rate float64, maxInFlight int, d time.Duration, seed int64, traceEvery int, mix writeMix) runResult {
	var col collector
	var attempted, dropped atomic.Uint64
	rng := rand.New(rand.NewSource(seed))
	inflight := make(chan struct{}, maxInFlight)
	deadline := time.Now().Add(d)
	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; ; i++ {
		// Exponential inter-arrival → Poisson process.
		wait := time.Duration(rng.ExpFloat64() / rate * float64(time.Second))
		now := time.Now()
		if now.Add(wait).After(deadline) {
			break
		}
		time.Sleep(wait)
		select {
		case inflight <- struct{}{}:
		default:
			dropped.Add(1)
			continue
		}
		attempted.Add(1)
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			defer func() { <-inflight }()
			u := 0.0
			if mix.enabled() {
				u = rand.Float64()
			}
			if u < mix.upsert+mix.del {
				issueWrite(ctx, c, region, mix, u < mix.upsert, &col)
				return
			}
			qStart := time.Now()
			q := queries[i%len(queries)]
			var resp wire.SearchResponse
			var err error
			if traceEvery > 0 && i%traceEvery == 0 {
				resp, err = c.SearchTraced(ctx, region, q, k)
			} else {
				resp, err = c.SearchFull(ctx, region, q, k)
			}
			col.observe(resp, err, time.Since(qStart))
		}(i)
	}
	wg.Wait()
	return runResult{
		model: "open", elapsed: time.Since(start),
		attempted: attempted.Load(), ok: col.ok.Load(), shed: col.shed.Load(),
		failed: col.failed.Load(), dropped: dropped.Load(),
		degraded: col.degraded.Load(), latencies: col.latencies, stages: col.stages,
		writeOK: col.wok.Load(), writeShed: col.wshed.Load(),
		writeFailed: col.wfailed.Load(), writeLats: col.writeLats,
		seqWater: col.seq.Load(),
	}
}
