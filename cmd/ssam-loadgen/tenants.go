package main

// Multi-tenant zipfian load: the serving fleet's real shape is many
// named regions with heavily skewed popularity — a handful of hot
// tenants and a long cold tail. This driver stands up N tenant
// regions (<base>-0 .. <base>-N-1, each optionally sharded and/or
// replicated), draws the tenant of every query from a Zipf
// distribution, and reports per-tenant p50/p99 plus how many requests
// missed the SLO — the number an operator actually pages on.

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"ssam/internal/client"
	"ssam/internal/dataset"
	"ssam/internal/server/wire"
)

type tenantOptions struct {
	base     string
	tenants  int
	zipfS    float64 // Zipf skew exponent (> 1)
	slo      time.Duration
	setup    bool
	mode     string
	sharding *wire.ShardingConfig
	replicas *wire.ReplicasConfig
	k        int
	workers  int
	duration time.Duration
	seed     int64
}

// tenantStats accumulates one tenant's outcomes.
type tenantStats struct {
	ok, shed, failed, degraded atomic.Uint64

	mu   sync.Mutex
	lats []time.Duration
}

// multiTenant runs the zipfian multi-tenant scenario and reports per
// tenant. Returns true when any degraded or failed responses were
// observed (the -fail-on-degraded signal).
func multiTenant(ctx context.Context, c *client.Client, opts tenantOptions, ds *dataset.Dataset) bool {
	if opts.zipfS <= 1 {
		log.Fatalf("-zipf must be > 1, got %v", opts.zipfS)
	}
	names := make([]string, opts.tenants)
	for t := range names {
		names[t] = fmt.Sprintf("%s-%d", opts.base, t)
	}
	if opts.setup {
		for _, name := range names {
			if err := setupRegion(ctx, c, name, ds, opts.mode, opts.sharding, opts.replicas); err != nil {
				log.Fatalf("setup tenant %s: %v", name, err)
			}
		}
	}

	stats := make([]*tenantStats, opts.tenants)
	for t := range stats {
		stats[t] = &tenantStats{}
	}

	log.Printf("multi-tenant closed-loop: %d tenants, zipf s=%v, %d workers, slo %v, %v",
		opts.tenants, opts.zipfS, opts.workers, opts.slo, opts.duration)
	var attempted atomic.Uint64
	deadline := time.Now().Add(opts.duration)
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < opts.workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Each worker owns a Zipf sampler (rand.Zipf is not safe for
			// concurrent use) over tenant ranks 0..N-1.
			rng := rand.New(rand.NewSource(opts.seed + int64(w)))
			zipf := rand.NewZipf(rng, opts.zipfS, 1, uint64(opts.tenants-1))
			for i := w; time.Now().Before(deadline); i++ {
				attempted.Add(1)
				t := int(zipf.Uint64())
				st := stats[t]
				q := ds.Queries[i%len(ds.Queries)]
				qStart := time.Now()
				resp, err := c.SearchFull(ctx, names[t], q, opts.k)
				lat := time.Since(qStart)
				switch {
				case err == nil:
					st.ok.Add(1)
					if resp.Degraded {
						st.degraded.Add(1)
					}
					st.mu.Lock()
					st.lats = append(st.lats, lat)
					st.mu.Unlock()
				default:
					st.failed.Add(1)
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	var totalOK, totalDegraded, totalFailed, totalViol uint64
	fmt.Printf("multi-tenant run: %v elapsed, %d attempted, %.1f ok-queries/sec total\n",
		elapsed.Round(time.Millisecond), attempted.Load(), okTotal(stats)/elapsed.Seconds())
	fmt.Printf("%-14s %8s %8s %8s %10s %10s %8s\n",
		"tenant", "ok", "failed", "degraded", "p50", "p99", ">slo")
	for t, st := range stats {
		st.mu.Lock()
		lats := st.lats
		st.mu.Unlock()
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		var p50, p99 time.Duration
		var viol uint64
		if len(lats) > 0 {
			p50 = lats[len(lats)/2]
			p99 = lats[min(len(lats)-1, len(lats)*99/100)]
			for _, l := range lats {
				if l > opts.slo {
					viol++
				}
			}
		}
		totalOK += st.ok.Load()
		totalDegraded += st.degraded.Load()
		totalFailed += st.failed.Load()
		totalViol += viol
		fmt.Printf("%-14s %8d %8d %8d %10v %10v %8d\n",
			names[t], st.ok.Load(), st.failed.Load(), st.degraded.Load(),
			p50.Round(time.Microsecond), p99.Round(time.Microsecond), viol)
	}
	fmt.Printf("total: ok %d, failed %d, degraded %d, slo violations %d (%.2f%% of ok)\n",
		totalOK, totalFailed, totalDegraded, totalViol, pct(totalViol, totalOK))
	if totalDegraded > 0 || totalFailed > 0 {
		fmt.Fprintf(os.Stderr, "multi-tenant: observed %d degraded / %d failed responses\n",
			totalDegraded, totalFailed)
		return true
	}
	return false
}

func okTotal(stats []*tenantStats) float64 {
	var n uint64
	for _, st := range stats {
		n += st.ok.Load()
	}
	return float64(n)
}

func pct(part, whole uint64) float64 {
	if whole == 0 {
		return 0
	}
	return 100 * float64(part) / float64(whole)
}
