package ssam

import (
	"testing"

	"ssam/internal/dataset"
	"ssam/internal/vec"
)

func regionDataset(t *testing.T) *dataset.Dataset {
	t.Helper()
	return dataset.Generate(dataset.Spec{
		Name: "api", N: 1500, Dim: 20, NumQueries: 10, K: 5,
		Clusters: 12, ClusterStd: 0.3, Seed: 33,
	})
}

func TestHostLinearLifecycle(t *testing.T) {
	ds := regionDataset(t)
	r, err := New(ds.Dim(), Config{Mode: Linear, Metric: Euclidean})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Free()
	if err := r.LoadFloat32(ds.Data); err != nil {
		t.Fatal(err)
	}
	if err := r.BuildIndex(); err != nil {
		t.Fatal(err)
	}
	res, err := r.Search(ds.Row(7), 3)
	if err != nil {
		t.Fatal(err)
	}
	if res[0].ID != 7 || res[0].Dist != 0 {
		t.Fatalf("self query = %+v", res[0])
	}
	if r.Len() != ds.N() || r.Dims() != ds.Dim() {
		t.Fatalf("Len/Dims = %d/%d", r.Len(), r.Dims())
	}
}

func TestExplicitFigure4Sequence(t *testing.T) {
	ds := regionDataset(t)
	r, _ := New(ds.Dim(), Config{})
	defer r.Free()
	if err := r.LoadFloat32(ds.Data); err != nil {
		t.Fatal(err)
	}
	if err := r.BuildIndex(); err != nil {
		t.Fatal(err)
	}
	if err := r.WriteQuery(ds.Queries[0]); err != nil {
		t.Fatal(err)
	}
	if err := r.Exec(5); err != nil {
		t.Fatal(err)
	}
	res, err := r.ReadResult()
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 5 {
		t.Fatalf("got %d results", len(res))
	}
}

func TestIndexedModesAgreeWithLinear(t *testing.T) {
	ds := regionDataset(t)
	lin, _ := New(ds.Dim(), Config{Mode: Linear})
	if err := lin.LoadFloat32(ds.Data); err != nil {
		t.Fatal(err)
	}
	if err := lin.BuildIndex(); err != nil {
		t.Fatal(err)
	}
	for _, mode := range []Mode{KDTree, KMeans, MPLSH} {
		r, err := New(ds.Dim(), Config{
			Mode:  mode,
			Index: IndexParams{Checks: ds.N(), Probes: 512},
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := r.LoadFloat32(ds.Data); err != nil {
			t.Fatal(err)
		}
		if err := r.BuildIndex(); err != nil {
			t.Fatal(err)
		}
		hits, total := 0, 0
		for _, q := range ds.Queries {
			exact, err := lin.Search(q, 5)
			if err != nil {
				t.Fatal(err)
			}
			approx, err := r.Search(q, 5)
			if err != nil {
				t.Fatal(err)
			}
			in := map[int]bool{}
			for _, e := range exact {
				in[e.ID] = true
			}
			for _, a := range approx {
				total++
				if in[a.ID] {
					hits++
				}
			}
		}
		recall := float64(hits) / float64(total)
		if recall < 0.55 {
			t.Errorf("%v exhaustive-ish recall = %v", mode, recall)
		}
		r.Free()
	}
	lin.Free()
}

func TestDeviceExecution(t *testing.T) {
	ds := regionDataset(t)
	r, err := New(ds.Dim(), Config{Mode: Linear, Execution: Device, VectorLength: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Free()
	if err := r.LoadFloat32(ds.Data); err != nil {
		t.Fatal(err)
	}
	if err := r.BuildIndex(); err != nil {
		t.Fatal(err)
	}
	res, err := r.Search(ds.Row(42), 5)
	if err != nil {
		t.Fatal(err)
	}
	if res[0].ID != 42 {
		t.Fatalf("device self query = %+v", res[0])
	}
	st := r.LastStats()
	if st.Cycles == 0 || st.Throughput() <= 0 || st.ProcessingUnits <= 0 {
		t.Fatalf("device stats empty: %+v", st)
	}
	if r.Device() == nil {
		t.Fatal("Device() nil after device build")
	}
}

func TestHammingRegion(t *testing.T) {
	ds := regionDataset(t)
	codes := ds.ToBinary()
	r, err := New(ds.Dim(), Config{Mode: Linear, Metric: Hamming})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Free()
	if err := r.LoadBinary(codes); err != nil {
		t.Fatal(err)
	}
	if err := r.BuildIndex(); err != nil {
		t.Fatal(err)
	}
	res, err := r.SearchBinary(codes[9], 3)
	if err != nil {
		t.Fatal(err)
	}
	if res[0].ID != 9 || res[0].Dist != 0 {
		t.Fatalf("hamming self query = %+v", res[0])
	}
}

func TestSetChecks(t *testing.T) {
	ds := regionDataset(t)
	r, _ := New(ds.Dim(), Config{Mode: KDTree})
	defer r.Free()
	if err := r.LoadFloat32(ds.Data); err != nil {
		t.Fatal(err)
	}
	if err := r.BuildIndex(); err != nil {
		t.Fatal(err)
	}
	if err := r.SetChecks(64); err != nil {
		t.Fatal(err)
	}
	if err := r.SetChecks(0); err == nil {
		t.Fatal("SetChecks(0) should error")
	}
	lin, _ := New(ds.Dim(), Config{})
	_ = lin.LoadFloat32(ds.Data)
	_ = lin.BuildIndex()
	if err := lin.SetChecks(10); err == nil {
		t.Fatal("SetChecks on linear region should error")
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(0, Config{}); err == nil {
		t.Fatal("dims 0 accepted")
	}
	if _, err := New(8, Config{VectorLength: 5}); err == nil {
		t.Fatal("vector length 5 accepted")
	}
	if _, err := New(8, Config{Execution: Device, Mode: KDTree, Metric: Manhattan}); err == nil {
		t.Fatal("device Manhattan kd-tree accepted")
	}
	if _, err := New(8, Config{Metric: Hamming, Mode: MPLSH}); err == nil {
		t.Fatal("hamming MPLSH accepted")
	}
	if _, err := New(8, Config{Metric: Cosine, Mode: KMeans}); err == nil {
		t.Fatal("cosine k-means accepted")
	}
}

func TestUsageErrors(t *testing.T) {
	ds := regionDataset(t)
	r, _ := New(ds.Dim(), Config{})
	if err := r.BuildIndex(); err == nil {
		t.Fatal("BuildIndex before load accepted")
	}
	if err := r.LoadFloat32(ds.Data[:5]); err == nil {
		t.Fatal("ragged load accepted")
	}
	if _, err := r.ReadResult(); err == nil {
		t.Fatal("ReadResult before Exec accepted")
	}
	if err := r.LoadFloat32(ds.Data); err != nil {
		t.Fatal(err)
	}
	if err := r.Exec(5); err == nil {
		t.Fatal("Exec before BuildIndex accepted")
	}
	if err := r.BuildIndex(); err != nil {
		t.Fatal(err)
	}
	if err := r.Exec(5); err == nil {
		t.Fatal("Exec before WriteQuery accepted")
	}
	if err := r.WriteQuery(make([]float32, 3)); err == nil {
		t.Fatal("wrong-dim query accepted")
	}
	if err := r.WriteQuery(ds.Queries[0]); err != nil {
		t.Fatal(err)
	}
	if err := r.Exec(0); err == nil {
		t.Fatal("k=0 accepted")
	}
	if err := r.WriteQueryBinary(vec.NewBinary(ds.Dim())); err == nil {
		t.Fatal("binary query on float region accepted")
	}
}

func TestFreedRegion(t *testing.T) {
	ds := regionDataset(t)
	r, _ := New(ds.Dim(), Config{})
	_ = r.LoadFloat32(ds.Data)
	_ = r.BuildIndex()
	r.Free()
	if err := r.LoadFloat32(ds.Data); err != ErrFreed {
		t.Fatalf("LoadFloat32 after Free = %v", err)
	}
	if err := r.BuildIndex(); err != ErrFreed {
		t.Fatalf("BuildIndex after Free = %v", err)
	}
	if _, err := r.Search(ds.Queries[0], 3); err != ErrFreed {
		t.Fatalf("Search after Free = %v", err)
	}
	if _, err := r.ReadResult(); err != ErrFreed {
		t.Fatalf("ReadResult after Free = %v", err)
	}
}

func TestMetricAndModeStrings(t *testing.T) {
	if Euclidean.String() != "euclidean" || Hamming.String() != "hamming" {
		t.Fatal("metric strings wrong")
	}
	if Linear.String() != "linear" || MPLSH.String() != "mplsh" || Mode(99).String() != "unknown" {
		t.Fatal("mode strings wrong")
	}
}
