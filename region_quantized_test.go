package ssam

import (
	"strings"
	"testing"

	"ssam/internal/dataset"
	"ssam/internal/obs"
)

func quantizedDataset(t *testing.T) *dataset.Dataset {
	t.Helper()
	return dataset.Generate(dataset.Spec{
		Name: "region-pq", N: 1500, Dim: 24, NumQueries: 48, K: 10,
		Clusters: 16, ClusterStd: 0.3, Seed: 11,
	})
}

func buildQuantizedRegion(t *testing.T, ds *dataset.Dataset, cfg Config) *Region {
	t.Helper()
	cfg.Mode = Quantized
	r, err := New(ds.Dim(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.LoadFloat32(ds.Data); err != nil {
		t.Fatal(err)
	}
	if err := r.BuildIndex(); err != nil {
		t.Fatal(err)
	}
	return r
}

// TestQuantizedDeviceMatchesHost pins the one-build-serves-both
// contract: the codebook is trained on the host and attached to the
// device, so a Device quantized region returns bit-identical neighbors
// to a Host region with the same seed — only the modeled stats differ.
// The stats must also tell the §IV bandwidth story: the scan streams
// 8-bit codes, so vault traffic lands well under the float32 scan's
// n·dim·4 bytes.
func TestQuantizedDeviceMatchesHost(t *testing.T) {
	ds := quantizedDataset(t)
	ip := IndexParams{Seed: 5, M: 4, Sample: 1024, Rerank: 64}
	host := buildQuantizedRegion(t, ds, Config{Index: ip})
	defer host.Free()
	dev := buildQuantizedRegion(t, ds, Config{Execution: Device, VectorLength: 4, Index: ip})
	defer dev.Free()

	floatScanBytes := uint64(ds.N() * ds.Dim() * 4)
	for i := 0; i < 16; i++ {
		hres, err := host.Search(ds.Queries[i], 10)
		if err != nil {
			t.Fatal(err)
		}
		dres, dst, err := dev.SearchStats(ds.Queries[i], 10)
		if err != nil {
			t.Fatal(err)
		}
		if len(hres) != len(dres) {
			t.Fatalf("query %d: host %d results, device %d", i, len(hres), len(dres))
		}
		for j := range hres {
			if hres[j] != dres[j] {
				t.Fatalf("query %d rank %d: host %+v != device %+v", i, j, hres[j], dres[j])
			}
		}
		if dst.Cycles == 0 || dst.Seconds <= 0 || dst.DRAMBytesRead == 0 ||
			dst.VectorInstructions == 0 || dst.ProcessingUnits == 0 {
			t.Fatalf("query %d: implausible device stats %+v", i, dst)
		}
		if dst.DRAMBytesRead >= floatScanBytes {
			t.Fatalf("query %d: DRAM traffic %d not below the float scan's %d bytes",
				i, dst.DRAMBytesRead, floatScanBytes)
		}
		if dst.Throughput() <= 0 {
			t.Fatalf("query %d: throughput %v", i, dst.Throughput())
		}
	}
	if st := dev.LastStats(); st.Cycles == 0 {
		t.Fatal("LastStats empty after device quantized search")
	}
}

// TestQuantizedSetChecks verifies the accuracy knob: SetChecks
// retargets the re-rank depth of a built quantized region, recall can
// only improve with depth, and a depth covering the whole dataset
// reproduces the exact linear answers bit for bit.
func TestQuantizedSetChecks(t *testing.T) {
	ds := quantizedDataset(t)
	r := buildQuantizedRegion(t, ds, Config{Index: IndexParams{Seed: 2}})
	defer r.Free()
	lin, err := New(ds.Dim(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer lin.Free()
	if err := lin.LoadFloat32(ds.Data); err != nil {
		t.Fatal(err)
	}
	if err := lin.BuildIndex(); err != nil {
		t.Fatal(err)
	}

	recallAt := func(rerank int) float64 {
		if err := r.SetChecks(rerank); err != nil {
			t.Fatal(err)
		}
		sum := 0.0
		for _, q := range ds.Queries {
			exact, err := lin.Search(q, 10)
			if err != nil {
				t.Fatal(err)
			}
			approx, err := r.Search(q, 10)
			if err != nil {
				t.Fatal(err)
			}
			sum += dataset.Recall(exact, approx)
		}
		return sum / float64(len(ds.Queries))
	}
	shallow := recallAt(10)
	deep := recallAt(200)
	if deep < shallow {
		t.Fatalf("recall fell as rerank grew: rerank=10 %.3f, rerank=200 %.3f", shallow, deep)
	}
	if deep < 0.95 {
		t.Fatalf("recall %.3f at rerank=200 on a 1.5k set, want >= 0.95", deep)
	}

	// Full-depth re-rank equals the exact engine, neighbor for neighbor.
	if err := r.SetChecks(ds.N()); err != nil {
		t.Fatal(err)
	}
	for i, q := range ds.Queries {
		exact, err := lin.Search(q, 10)
		if err != nil {
			t.Fatal(err)
		}
		got, err := r.Search(q, 10)
		if err != nil {
			t.Fatal(err)
		}
		for j := range exact {
			if got[j] != exact[j] {
				t.Fatalf("query %d rank %d: full-depth %+v != exact %+v", i, j, got[j], exact[j])
			}
		}
	}
}

// TestQuantizedSearchSpans checks the scan trace: the exec span
// carries mode/m/rerank tags, the ADC work counters, and per-vault
// child spans from the vault-parallel scan.
func TestQuantizedSearchSpans(t *testing.T) {
	ds := quantizedDataset(t)
	r := buildQuantizedRegion(t, ds, Config{Vaults: 4, Index: IndexParams{Seed: 4, Rerank: 32}})
	defer r.Free()
	tracer := obs.NewTracer(0, 8)
	tr := tracer.Trace("search", true)
	if _, _, err := r.SearchStatsSpan(ds.Queries[0], 10, tr.Root()); err != nil {
		t.Fatal(err)
	}
	data := tracer.Finish(tr)
	exec := data.Root.Find("exec")
	if exec == nil {
		t.Fatal("no exec span")
	}
	if exec.Tags["mode"] != "quantized" || exec.Tags["execution"] != "host" {
		t.Fatalf("exec tags: %+v", exec.Tags)
	}
	if exec.Tags["rerank"] != 32 {
		t.Fatalf("rerank tag = %v, want 32", exec.Tags["rerank"])
	}
	if ce, ok := exec.Tags["code_evals"].(int); !ok || ce != ds.N() {
		t.Fatalf("code_evals tag = %v, want %d", exec.Tags["code_evals"], ds.N())
	}
	if re, ok := exec.Tags["rerank_evals"].(int); !ok || re != 32 {
		t.Fatalf("rerank_evals tag = %v, want 32", exec.Tags["rerank_evals"])
	}
}

// TestQuantizedStatsAccessor covers the cumulative counter surface the
// server's /metrics series scrape.
func TestQuantizedStatsAccessor(t *testing.T) {
	ds := quantizedDataset(t)
	r := buildQuantizedRegion(t, ds, Config{Index: IndexParams{Seed: 1, Rerank: 16}})
	defer r.Free()
	for i := 0; i < 3; i++ {
		if _, err := r.Search(ds.Queries[i], 5); err != nil {
			t.Fatal(err)
		}
	}
	qc, ok := r.QuantizedStats()
	if !ok {
		t.Fatal("QuantizedStats not ok on a built quantized region")
	}
	if qc.TableBuilds != 3 || qc.CodeEvals != uint64(3*ds.N()) || qc.RerankEvals != 48 {
		t.Fatalf("counters after 3 queries: %+v", qc)
	}

	lin, err := New(ds.Dim(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer lin.Free()
	if _, ok := lin.QuantizedStats(); ok {
		t.Fatal("QuantizedStats ok on a linear region")
	}
}

// TestQuantizedConfigValidation covers the quantized-specific paths
// through New and the staged query interface, including the non-
// Euclidean metrics the mode shares with Linear.
func TestQuantizedConfigValidation(t *testing.T) {
	if _, err := New(8, Config{Mode: Quantized, Metric: Hamming}); err == nil {
		t.Fatal("Hamming quantized config accepted")
	}
	if _, err := New(8, Config{Mode: Quantized, Index: IndexParams{Rerank: -1}}); err == nil ||
		!strings.Contains(err.Error(), "rerank") {
		t.Fatal("negative rerank accepted")
	}
	for _, m := range []Metric{Manhattan, Cosine} {
		if _, err := New(8, Config{Mode: Quantized, Metric: m}); err != nil {
			t.Fatalf("%v quantized config rejected: %v", m, err)
		}
	}

	// M wider than the dimensionality only surfaces at build, where the
	// codebook is trained.
	ds := quantizedDataset(t)
	r, err := New(ds.Dim(), Config{Mode: Quantized, Index: IndexParams{M: ds.Dim() + 1}})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Free()
	if err := r.LoadFloat32(ds.Data); err != nil {
		t.Fatal(err)
	}
	if err := r.BuildIndex(); err == nil {
		t.Fatal("M > dims accepted at build")
	}

	rq := buildQuantizedRegion(t, ds, Config{Index: IndexParams{Seed: 7}})
	defer rq.Free()
	if err := rq.WriteQuery(ds.Queries[0]); err != nil {
		t.Fatal(err)
	}
	if err := rq.Exec(5); err != nil {
		t.Fatal(err)
	}
	res, err := rq.ReadResult()
	if err != nil || len(res) != 5 {
		t.Fatalf("staged quantized query: %v, %d results", err, len(res))
	}
	batch, err := rq.SearchBatch(ds.Queries[:8], 3)
	if err != nil {
		t.Fatal(err)
	}
	for i, row := range batch {
		if len(row) != 3 {
			t.Fatalf("batch row %d: %d results", i, len(row))
		}
	}
}
