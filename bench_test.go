// Benchmarks regenerating every table and figure of the paper's
// evaluation (one testing.B benchmark per artifact — see DESIGN.md
// §3). Each iteration runs the full experiment at a small dataset
// scale; custom metrics surface the experiment's headline number so
// `go test -bench=. -benchmem` doubles as a results dashboard.
// cmd/ssam-bench runs the same experiments at arbitrary scale with
// full table output.
package ssam_test

import (
	"testing"

	"ssam/internal/bench"
)

func benchOpts() bench.Options {
	return bench.Options{Scale: 0.0012, Queries: 3, VectorLength: 8}
}

func BenchmarkTableI_InstructionMix(b *testing.B) {
	var linearVec float64
	for i := 0; i < b.N; i++ {
		rows := bench.TableI(benchOpts())
		linearVec = rows[0].VectorPct
	}
	b.ReportMetric(linearVec, "linear-vector-%")
}

func BenchmarkTableIII_Power(b *testing.B) {
	var total float64
	for i := 0; i < b.N; i++ {
		r := bench.TableIIIReport()
		total = float64(len(r.Rows))
	}
	b.ReportMetric(total, "design-points")
}

func BenchmarkTableIV_Area(b *testing.B) {
	var rows float64
	for i := 0; i < b.N; i++ {
		r := bench.TableIVReport()
		rows = float64(len(r.Rows))
	}
	b.ReportMetric(rows, "design-points")
}

func BenchmarkTableV_DistanceMetrics(b *testing.B) {
	var hamming float64
	for i := 0; i < b.N; i++ {
		rows, err := bench.TableV(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		hamming = rows[0].Hamming
	}
	b.ReportMetric(hamming, "glove-hamming-x")
}

func BenchmarkTableVI_AutomataProcessor(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		rows, err := bench.TableVI(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		ratio = rows[0].SSAM4 / rows[0].APGen2
	}
	b.ReportMetric(ratio, "glove-ssam/ap2-x")
}

func BenchmarkFigure2_AccuracySweep(b *testing.B) {
	var points float64
	for i := 0; i < b.N; i++ {
		pts := bench.Figure2(benchOpts())
		points = float64(len(pts))
	}
	b.ReportMetric(points, "curve-points")
}

func BenchmarkFigure6_CrossPlatform(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		rows, err := bench.Figure6(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		var cpu, ssam float64
		for _, r := range rows {
			if r.Dataset != "gist" {
				continue
			}
			switch r.Platform {
			case "cpu-xeon-e5-2620":
				cpu = r.AreaNormQPS
			case "ssam-8":
				ssam = r.AreaNormQPS
			}
		}
		ratio = ssam / cpu
	}
	b.ReportMetric(ratio, "gist-ssam/cpu-area-norm-x")
}

func BenchmarkFigure7_IndexedSSAM(b *testing.B) {
	var points float64
	for i := 0; i < b.N; i++ {
		pts, err := bench.Figure7(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		points = float64(len(pts))
	}
	b.ReportMetric(points, "curve-points")
}

func BenchmarkPQueueAblation(b *testing.B) {
	var speedup float64
	for i := 0; i < b.N; i++ {
		rows, err := bench.PQAblation(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		speedup = rows[len(rows)-1].SpeedupPct
	}
	b.ReportMetric(speedup, "ssam16-hwq-speedup-%")
}

func BenchmarkFixedPoint(b *testing.B) {
	var recall float64
	for i := 0; i < b.N; i++ {
		rows := bench.FixedPoint(benchOpts())
		recall = rows[0].Recall
	}
	b.ReportMetric(recall, "glove-fixed-recall")
}

func BenchmarkIndexConstruction(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		rows := bench.IndexConstruction(benchOpts())
		ratio = rows[0].Ratio
	}
	b.ReportMetric(ratio, "kdtree-build/query-x")
}

func BenchmarkKMeansOffload(b *testing.B) {
	var speedup float64
	for i := 0; i < b.N; i++ {
		rows, err := bench.KMeansOffload(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		speedup = rows[0].Speedup
	}
	b.ReportMetric(speedup, "k4-device-speedup-x")
}

func BenchmarkEnergyModel(b *testing.B) {
	var energy float64
	for i := 0; i < b.N; i++ {
		rows, err := bench.EnergyPerQuery(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		energy = rows[len(rows)-1].QueryEnergyJ
	}
	b.ReportMetric(energy*1e6, "ssam16-uJ/query")
}

func BenchmarkClusterScaling(b *testing.B) {
	var qps float64
	for i := 0; i < b.N; i++ {
		rows, err := bench.ClusterScaling(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		qps = rows[len(rows)-1].QPS
	}
	b.ReportMetric(qps, "4-module-qps")
}

func BenchmarkDeviceAssistedBuild(b *testing.B) {
	var recall float64
	for i := 0; i < b.N; i++ {
		rows, err := bench.DeviceAssistedBuild(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		recall = rows[1].Recall
	}
	b.ReportMetric(recall, "assisted-recall")
}

func BenchmarkDeviceIndexSweep(b *testing.B) {
	var speedup float64
	for i := 0; i < b.N; i++ {
		rows, err := bench.DeviceIndexSweep(bench.Options{Scale: 0.005, Queries: 2, VectorLength: 4})
		if err != nil {
			b.Fatal(err)
		}
		speedup = rows[0].DeviceQPS / rows[0].LinearQPS
	}
	b.ReportMetric(speedup, "tree-vs-linear-x")
}

func BenchmarkDeviceLSHSweep(b *testing.B) {
	var recall float64
	for i := 0; i < b.N; i++ {
		rows, err := bench.DeviceLSHSweep(bench.Options{Scale: 0.004, Queries: 2, VectorLength: 4})
		if err != nil {
			b.Fatal(err)
		}
		recall = rows[1].Recall
	}
	b.ReportMetric(recall, "4bit-recall")
}

func BenchmarkDeviceInstructionMix(b *testing.B) {
	var vecPct float64
	for i := 0; i < b.N; i++ {
		rows, err := bench.DeviceInstructionMix(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		vecPct = rows[0].VectorPct
	}
	b.ReportMetric(vecPct, "euclid-vector-%")
}

func BenchmarkTCO(b *testing.B) {
	var servers float64
	for i := 0; i < b.N; i++ {
		res, _, err := bench.TCO(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		servers = float64(res.CPUServers)
	}
	b.ReportMetric(servers, "cpu-servers")
}
