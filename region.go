package ssam

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"ssam/internal/graph"
	"ssam/internal/kdtree"
	"ssam/internal/kmeans"
	"ssam/internal/knn"
	"ssam/internal/lsh"
	"ssam/internal/obs"
	"ssam/internal/ssamdev"
	"ssam/internal/tier"
	"ssam/internal/topk"
	"ssam/internal/vec"
)

// ErrFreed is returned by operations on a freed region.
var ErrFreed = errors.New("ssam: region has been freed")

// BatchError reports a SearchBatch failure at a specific query. The
// batch's queries before Index completed normally and their results
// are returned alongside the error; queries from Index on were not
// answered.
type BatchError struct {
	Index int // offset of the failing query within the batch
	Err   error
}

func (e *BatchError) Error() string {
	return fmt.Sprintf("ssam: batch query %d: %v", e.Index, e.Err)
}

func (e *BatchError) Unwrap() error { return e.Err }

// Region is an SSAM-enabled memory region (the nbuf of Fig. 4). It is
// not safe for concurrent mutation (Load/BuildIndex/Free), and the
// staged WriteQuery/Exec/ReadResult sequence assumes one caller; but
// concurrent Search, SearchBinary and SearchBatch calls are safe once
// the index is built — Host execution queries read-only index
// structures lock-free, and Device execution serializes on the
// simulated module internally.
type Region struct {
	cfg  Config
	dims int

	// mu serializes device execution (the cycle simulator is stateful)
	// and guards lastStats, which Search updates concurrently.
	mu sync.Mutex

	data   []float32    // float datasets
	codes  []vec.Binary // Hamming datasets
	loaded bool
	built  bool
	freed  bool

	// Host engines/indexes (built lazily by BuildIndex).
	linear   *knn.Engine
	hamming  *knn.HammingEngine
	forest   *kdtree.Forest
	kmTree   *kmeans.Tree
	mplsh    *lsh.Index
	graphIdx *graph.Index
	pqEng    *knn.PQEngine

	// Out-of-core serving (cfg.Storage != nil): store is the backing
	// file's page cache, tiered/tieredPQ the engines scanning through
	// it. After BuildIndex the full-precision rows live only in the
	// store — r.data is released.
	store    *tier.Store
	tiered   *knn.TieredEngine
	tieredPQ *knn.TieredPQEngine

	// Simulated device (Device execution) and its on-device indexes.
	device    *ssamdev.Device
	devTree   *ssamdev.TreeIndex
	devKMTree *ssamdev.KMTreeIndex
	devLSH    *ssamdev.LSHIndex
	devGraph  *ssamdev.GraphIndex
	devPQ     *ssamdev.PQIndex
	devChecks int // per-PU scan budget for device tree indexes

	lastStats DeviceStats
	query     []float32
	queryBin  vec.Binary
	lastRes   []Result

	// batchFault, when non-nil, runs before each device-mode batch
	// query (test seam for mid-batch failure injection).
	batchFault func(i int) error

	// Mutable write path (mutable.go): mut is nil until the first
	// Upsert/Delete migrates a Linear region to the RCU store. Searches
	// read it lock-free; mutMu serializes migration, SetCompactHook, and
	// store teardown.
	mut       atomic.Pointer[regionStore]
	mutMu     sync.Mutex
	onCompact func(CompactResult)
}

// New allocates an SSAM-enabled region for vectors of the given
// dimensionality (nmalloc + nmode).
func New(dims int, cfg Config) (*Region, error) {
	if dims <= 0 {
		return nil, fmt.Errorf("ssam: dims must be positive, got %d", dims)
	}
	if !cfg.Metric.Valid() {
		return nil, fmt.Errorf("ssam: metric %d out of range [%v..%v]", int(cfg.Metric), Euclidean, Hamming)
	}
	if !cfg.Mode.Valid() {
		return nil, fmt.Errorf("ssam: mode %d out of range [%v..%v]", int(cfg.Mode), Linear, Quantized)
	}
	if !cfg.Execution.Valid() {
		return nil, fmt.Errorf("ssam: execution %d not in {%v, %v}", int(cfg.Execution), Host, Device)
	}
	if cfg.VectorLength == 0 {
		cfg.VectorLength = 8
	}
	switch cfg.VectorLength {
	case 2, 4, 8, 16:
	default:
		return nil, fmt.Errorf("ssam: vector length %d not in {2,4,8,16}", cfg.VectorLength)
	}
	if cfg.Vaults < 0 {
		return nil, fmt.Errorf("ssam: vaults must be non-negative, got %d", cfg.Vaults)
	}
	if cfg.Metric == Hamming && cfg.Mode != Linear {
		return nil, fmt.Errorf("ssam: Hamming regions support Linear mode only")
	}
	// Quantized joins Linear in supporting every float metric (ADC
	// tables are additive under Euclidean and Manhattan, and cosine is
	// served by normalize-at-encode); the tree, LSH and graph indexes
	// remain Euclidean-only.
	if cfg.Execution == Device && cfg.Mode != Linear && cfg.Mode != Quantized && cfg.Metric != Euclidean {
		return nil, fmt.Errorf("ssam: device %v indexing requires the Euclidean metric", cfg.Mode)
	}
	if cfg.Mode != Linear && cfg.Mode != Quantized && cfg.Metric != Euclidean {
		return nil, fmt.Errorf("ssam: %v indexing requires the Euclidean metric", cfg.Mode)
	}
	if cfg.Index.Rerank < 0 {
		return nil, fmt.Errorf("ssam: rerank must be non-negative, got %d", cfg.Index.Rerank)
	}
	if cfg.Storage != nil {
		if cfg.Mode != Linear && cfg.Mode != Quantized {
			return nil, fmt.Errorf("ssam: storage-backed regions support Linear and Quantized modes, not %v", cfg.Mode)
		}
		if cfg.Metric == Hamming {
			return nil, errors.New("ssam: storage-backed regions do not support the Hamming metric")
		}
		if cfg.Storage.BudgetBytes < 0 {
			return nil, fmt.Errorf("ssam: storage budget must be non-negative, got %d", cfg.Storage.BudgetBytes)
		}
		if cfg.Storage.Path == "" && cfg.Execution == Host {
			return nil, errors.New("ssam: storage path required for Host execution")
		}
	}
	return &Region{cfg: cfg, dims: dims}, nil
}

// Dims returns the region's vector dimensionality (bits for Hamming).
func (r *Region) Dims() int { return r.dims }

// Len returns the number of loaded vectors — live rows once the region
// has migrated to the mutable store.
func (r *Region) Len() int {
	if ms := r.mutable(); ms != nil {
		return ms.len()
	}
	if r.codes != nil {
		return len(r.codes)
	}
	if r.data == nil && r.store != nil {
		return r.store.Rows()
	}
	return len(r.data) / r.dims
}

// LoadFloat32 copies a flattened row-major dataset into the region
// (nmemcpy). Not valid for Hamming regions.
func (r *Region) LoadFloat32(data []float32) error {
	if r.freed {
		return ErrFreed
	}
	if r.cfg.Metric == Hamming {
		return errors.New("ssam: LoadFloat32 on a Hamming region; use LoadBinary")
	}
	if len(data) == 0 || len(data)%r.dims != 0 {
		return fmt.Errorf("ssam: data length %d not a positive multiple of dims %d", len(data), r.dims)
	}
	r.data = append([]float32(nil), data...)
	r.loaded, r.built = true, false
	// A reload replaces the logical dataset wholesale: any mutable store
	// from a previous generation is stale, so drop it (mutation history
	// restarts at seq 0 after the next write).
	r.dropStore()
	return nil
}

// LoadBinary copies bit-packed codes into a Hamming region.
func (r *Region) LoadBinary(codes []BinaryCode) error {
	if r.freed {
		return ErrFreed
	}
	if r.cfg.Metric != Hamming {
		return errors.New("ssam: LoadBinary on a non-Hamming region")
	}
	if len(codes) == 0 {
		return errors.New("ssam: empty code set")
	}
	for _, c := range codes {
		if c.Dim != r.dims {
			return fmt.Errorf("ssam: code width %d, want %d", c.Dim, r.dims)
		}
	}
	r.codes = append([]BinaryCode(nil), codes...)
	r.loaded, r.built = true, false
	r.dropStore() // see LoadFloat32
	return nil
}

// NewBinaryCode returns an empty code of the region's width, for
// assembling Hamming queries.
func NewBinaryCode(bits int) BinaryCode { return vec.NewBinary(bits) }

// BuildIndex constructs the region's search structures
// (nbuild_index). For Device execution it lays the dataset out across
// the simulated module's vaults and assembles the kernels.
func (r *Region) BuildIndex() error {
	if r.freed {
		return ErrFreed
	}
	if !r.loaded {
		return errors.New("ssam: BuildIndex before load")
	}
	workers := r.cfg.Workers
	ip := r.cfg.Index

	if r.cfg.Execution == Device {
		devCfg := ssamdev.DefaultConfig(r.cfg.VectorLength)
		var err error
		if r.cfg.Metric == Hamming {
			r.device, err = ssamdev.NewBinary(devCfg, r.codes)
		} else {
			r.device, err = ssamdev.NewFloat(devCfg, r.data, r.dims, r.cfg.Metric.toVec())
		}
		if err != nil {
			return err
		}
		if r.cfg.Storage != nil {
			// The device serves the dataset from modeled flash behind its
			// vault DRAM: the analytic storage tier prices cold reads with
			// the ann_in_ssd channel/latency/bandwidth parameters while the
			// budget sets the device-side cache fraction.
			scfg := ssamdev.DefaultStorageConfig()
			scfg.BudgetBytes = r.cfg.Storage.BudgetBytes
			scfg.Prefetch = r.cfg.Storage.Prefetch
			if err := r.device.AttachStorage(scfg); err != nil {
				return err
			}
		}
		leaf := ip.LeafSize
		if leaf <= 0 {
			leaf = 8
		}
		r.devChecks = ip.Checks
		if r.devChecks <= 0 {
			r.devChecks = 32
		}
		switch r.cfg.Mode {
		case Linear:
		case KDTree:
			r.devTree, err = r.device.BuildKDTreeIndex(leaf)
		case KMeans:
			branching := ip.Branching
			if branching <= 0 {
				branching = 4
			}
			r.devKMTree, err = r.device.BuildKMTreeIndex(branching, leaf, ip.Seed+1)
		case MPLSH:
			bits := ip.Bits
			if bits <= 0 || bits > 12 {
				bits = 6
			}
			tables := ip.Tables
			if tables <= 0 {
				tables = 4
			}
			r.devLSH, err = r.device.BuildLSHIndex(tables, bits, ip.Seed+1)
			if err == nil && ip.Probes > 1 {
				r.devLSH.MultiProbe = true
			}
		case Graph:
			// The graph is built on the host and attached: construction is
			// identical for both execution targets, so one build (and one
			// seed) yields the same adjacency — and therefore the same
			// neighbors — on Host and Device. The device contributes the
			// NDSEARCH-style execution model.
			r.graphIdx = graph.Build(r.data, r.dims, ip.graphParams())
			r.devGraph, err = r.device.AttachGraphIndex(r.graphIdx)
		case Quantized:
			// Like Graph, the codebook is trained on the host and attached,
			// so Host and Device answer bit-identically; the device model
			// prices the §IV bandwidth story — ADC tables resident in each
			// vault's scratchpad, code bytes streamed from vault DRAM.
			r.pqEng, err = knn.NewPQEngineVaults(r.data, r.dims, r.cfg.Metric.toVec(), ip.pqParams(), workers, r.cfg.Vaults)
			if err == nil {
				r.devPQ, err = r.device.AttachPQIndex(r.pqEng)
			}
		default:
			err = fmt.Errorf("ssam: unknown mode %v", r.cfg.Mode)
		}
		if err != nil {
			return err
		}
		r.built = true
		return nil
	}

	switch r.cfg.Mode {
	case Linear:
		if r.cfg.Metric == Hamming {
			r.hamming = knn.NewHammingEngine(r.codes, r.cfg.Vaults)
		} else if r.cfg.Storage != nil {
			if err := r.buildStore(); err != nil {
				return err
			}
			r.tiered = knn.NewTieredEngine(r.store, r.cfg.Metric.toVec())
			r.data = nil // rows live in the backing file now
		} else {
			r.linear = knn.NewEngineVaults(r.data, r.dims, r.cfg.Metric.toVec(), workers, r.cfg.Vaults)
		}
	case KDTree:
		p := kdtree.DefaultParams()
		if ip.Trees > 0 {
			p.NumTrees = ip.Trees
		}
		if ip.LeafSize > 0 {
			p.LeafSize = ip.LeafSize
		}
		if ip.Seed != 0 {
			p.Seed = ip.Seed
		}
		r.forest = kdtree.Build(r.data, r.dims, p)
		if ip.Checks > 0 {
			r.forest.Checks = ip.Checks
		}
	case KMeans:
		p := kmeans.DefaultParams()
		if ip.Branching > 0 {
			p.Branching = ip.Branching
		}
		if ip.LeafSize > 0 {
			p.LeafSize = ip.LeafSize
		}
		if ip.Seed != 0 {
			p.Seed = ip.Seed
		}
		r.kmTree = kmeans.Build(r.data, r.dims, p)
		if ip.Checks > 0 {
			r.kmTree.Checks = ip.Checks
		}
	case MPLSH:
		p := lsh.DefaultParams()
		if ip.Tables > 0 {
			p.Tables = ip.Tables
		}
		if ip.Bits > 0 {
			p.Bits = ip.Bits
		}
		if ip.Seed != 0 {
			p.Seed = ip.Seed
		}
		r.mplsh = lsh.Build(r.data, r.dims, p)
		if ip.Probes > 0 {
			r.mplsh.Probes = ip.Probes
		}
	case Graph:
		r.graphIdx = graph.Build(r.data, r.dims, ip.graphParams())
	case Quantized:
		var err error
		if r.cfg.Storage != nil {
			// Codebook training needs the float rows, so a rebuild after
			// they moved out of core requires a reload first.
			if r.data == nil {
				return errors.New("ssam: rebuilding a storage-backed quantized region requires a reload")
			}
			if err := r.buildStore(); err != nil {
				return err
			}
			r.tieredPQ, err = knn.NewTieredPQEngine(r.data, r.dims, r.cfg.Metric.toVec(), ip.pqParams(), workers, r.cfg.Vaults, r.store)
			if err != nil {
				return err
			}
			r.data = nil // codes stay resident; full-precision rows do not
		} else {
			r.pqEng, err = knn.NewPQEngineVaults(r.data, r.dims, r.cfg.Metric.toVec(), ip.pqParams(), workers, r.cfg.Vaults)
			if err != nil {
				return err
			}
		}
	default:
		return fmt.Errorf("ssam: unknown mode %v", r.cfg.Mode)
	}
	r.built = true
	return nil
}

// buildStore writes the backing file from the loaded rows and opens
// its budgeted page cache. A rebuild with the rows already released
// (r.data == nil) reuses the existing store: the file is the dataset.
func (r *Region) buildStore() error {
	if r.store != nil {
		if r.data == nil {
			return nil
		}
		// A reload preceded this rebuild: the file is stale, rewrite it.
		r.store.Close()
		r.store, r.tiered, r.tieredPQ = nil, nil, nil
	}
	st, err := tier.Create(r.cfg.Storage.Path, r.data, r.dims, knn.ResolveVaults(r.cfg.Vaults), tier.Options{
		BudgetBytes: r.cfg.Storage.BudgetBytes,
		Prefetch:    r.cfg.Storage.Prefetch,
	})
	if err != nil {
		return err
	}
	r.store = st
	return nil
}

// SetChecks adjusts the accuracy/throughput knob of a built index
// without rebuilding: Checks for tree indexes, Probes for MPLSH, the
// efSearch beam width for Graph regions, and the exact re-rank depth
// for Quantized regions (all on both execution targets).
func (r *Region) SetChecks(n int) error {
	if r.freed {
		return ErrFreed
	}
	if n <= 0 {
		return fmt.Errorf("ssam: checks must be positive")
	}
	switch {
	case r.forest != nil:
		r.forest.Checks = n
	case r.kmTree != nil:
		r.kmTree.Checks = n
	case r.mplsh != nil:
		r.mplsh.Probes = n
	case r.graphIdx != nil:
		r.graphIdx.EfSearch = n
	case r.pqEng != nil:
		// Host and Device share the engine, so one retarget covers both.
		r.pqEng.SetRerank(n)
	case r.tieredPQ != nil:
		r.tieredPQ.SetRerank(n)
	case r.devTree != nil || r.devKMTree != nil:
		r.devChecks = n
	default:
		return errors.New("ssam: SetChecks on a non-indexed region")
	}
	return nil
}

// WriteQuery stages a float query (nwrite_query).
func (r *Region) WriteQuery(q []float32) error {
	if r.freed {
		return ErrFreed
	}
	if r.cfg.Metric == Hamming {
		return errors.New("ssam: float query on a Hamming region")
	}
	if len(q) != r.dims {
		return fmt.Errorf("ssam: query dim %d, want %d", len(q), r.dims)
	}
	r.query = append(r.query[:0], q...)
	return nil
}

// WriteQueryBinary stages a Hamming query.
func (r *Region) WriteQueryBinary(q BinaryCode) error {
	if r.freed {
		return ErrFreed
	}
	if r.cfg.Metric != Hamming {
		return errors.New("ssam: binary query on a non-Hamming region")
	}
	if q.Dim != r.dims {
		return fmt.Errorf("ssam: query width %d, want %d", q.Dim, r.dims)
	}
	r.queryBin = q
	return nil
}

// Exec runs the staged query for the k nearest neighbors (nexec).
func (r *Region) Exec(k int) error {
	if r.freed {
		return ErrFreed
	}
	if !r.built {
		return errors.New("ssam: Exec before BuildIndex")
	}
	if k <= 0 {
		return fmt.Errorf("ssam: k must be positive")
	}
	if r.cfg.Metric == Hamming && r.queryBin.Words == nil {
		return errors.New("ssam: Exec before WriteQueryBinary")
	}
	if r.cfg.Metric != Hamming && r.query == nil {
		return errors.New("ssam: Exec before WriteQuery")
	}

	if ms := r.mutable(); ms != nil {
		var res []Result
		var st DeviceStats
		var err error
		if r.cfg.Metric == Hamming {
			res, st, err = r.searchMutableBinary(ms, r.queryBin, k, nil)
		} else {
			res, st, err = r.searchMutable(ms, r.query, k, nil)
		}
		if err != nil {
			return err
		}
		r.lastRes = res
		r.mu.Lock()
		r.lastStats = st
		r.mu.Unlock()
		return nil
	}

	if r.device != nil {
		r.mu.Lock()
		defer r.mu.Unlock()
		var res []topk.Result
		var st ssamdev.QueryStats
		var err error
		if r.cfg.Metric == Hamming {
			res, st, err = r.device.SearchBinary(r.queryBin, k)
		} else {
			res, st, err = r.deviceSearchRaw(r.query, k)
		}
		if err != nil {
			return err
		}
		r.lastRes = res
		r.lastStats = toDeviceStats(st)
		return nil
	}

	switch {
	case r.hamming != nil:
		r.lastRes = r.hamming.Search(r.queryBin, k)
	case r.tiered != nil || r.tieredPQ != nil:
		// Tiered engines can fail (backing reads), so Exec routes
		// through the error-returning search path.
		res, _, err := r.SearchStats(r.query, k)
		if err != nil {
			return err
		}
		r.lastRes = res
	case r.linear != nil:
		r.lastRes = r.linear.Search(r.query, k)
	case r.forest != nil:
		r.lastRes = r.forest.Search(r.query, k)
	case r.kmTree != nil:
		r.lastRes = r.kmTree.Search(r.query, k)
	case r.mplsh != nil:
		r.lastRes = r.mplsh.Search(r.query, k)
	case r.graphIdx != nil:
		r.lastRes = r.graphIdx.Search(r.query, k)
	case r.pqEng != nil:
		r.lastRes = r.pqEng.Search(r.query, k)
	default:
		return errors.New("ssam: no engine built")
	}
	r.mu.Lock()
	r.lastStats = DeviceStats{}
	r.mu.Unlock()
	return nil
}

// ReadResult returns the last Exec's neighbors (nread_result).
func (r *Region) ReadResult() ([]Result, error) {
	if r.freed {
		return nil, ErrFreed
	}
	if r.lastRes == nil {
		return nil, errors.New("ssam: ReadResult before Exec")
	}
	out := make([]Result, len(r.lastRes))
	copy(out, r.lastRes)
	return out, nil
}

// Search answers one query for the k nearest neighbors. Unlike the
// staged WriteQuery/Exec/ReadResult sequence it keeps no per-region
// query state, so it is safe to call from many goroutines once the
// index is built; Device execution serializes on the simulated module
// and updates LastStats per query.
func (r *Region) Search(q []float32, k int) ([]Result, error) {
	res, _, err := r.SearchStats(q, k)
	return res, err
}

// SearchStats is Search returning the query's simulated device stats
// alongside the results (zero DeviceStats for Host execution). Unlike
// Search followed by LastStats it cannot interleave with a concurrent
// query's stats, which the sharded cluster layer relies on when many
// scatter-gather queries share one shard region.
func (r *Region) SearchStats(q []float32, k int) ([]Result, DeviceStats, error) {
	return r.SearchStatsSpan(q, k, nil)
}

// SearchStatsSpan is SearchStats recording the engine execution as an
// "exec" child of sp (internal/obs tracing). A nil span is the
// untraced fast path — every obs hook degrades to a nil check, so
// callers without a sampled trace pay nothing measurable.
func (r *Region) SearchStatsSpan(q []float32, k int, sp *obs.Span) ([]Result, DeviceStats, error) {
	if r.freed {
		return nil, DeviceStats{}, ErrFreed
	}
	if r.cfg.Metric == Hamming {
		return nil, DeviceStats{}, errors.New("ssam: float query on a Hamming region")
	}
	if len(q) != r.dims {
		return nil, DeviceStats{}, fmt.Errorf("ssam: query dim %d, want %d", len(q), r.dims)
	}
	if !r.built {
		return nil, DeviceStats{}, errors.New("ssam: Search before BuildIndex")
	}
	if k <= 0 {
		return nil, DeviceStats{}, fmt.Errorf("ssam: k must be positive")
	}
	if ms := r.mutable(); ms != nil {
		// The region has taken writes: serve from the RCU store, which
		// answers bit-identically to the engine on the same logical
		// content (Device execution prices the scan analytically).
		return r.searchMutable(ms, q, k, sp)
	}
	if r.device != nil {
		// The exec span includes the module lock wait: on the simulated
		// device concurrent queries serialize, and that queueing is
		// exactly what a trace should show.
		esp := sp.Start("exec", obs.Tag{Key: "execution", Value: "device"})
		r.mu.Lock()
		defer r.mu.Unlock()
		res, st, err := r.deviceSearchRaw(q, k)
		esp.End()
		if err != nil {
			return nil, DeviceStats{}, err
		}
		r.lastStats = toDeviceStats(st)
		return res, r.lastStats, nil
	}
	if r.tiered != nil {
		// The tiered engine scans vault pages through the storage cache;
		// each page shows up as a "vault" child tagged tier_hit, so a
		// sampled trace distinguishes cached from cold scans.
		esp := sp.Start("exec",
			obs.Tag{Key: "execution", Value: "host"},
			obs.Tag{Key: "mode", Value: "tiered"},
			obs.Tag{Key: "vaults", Value: r.tiered.Vaults()})
		res, _, err := r.tiered.SearchStatsSpan(q, k, esp)
		esp.End()
		if err != nil {
			return nil, DeviceStats{}, err
		}
		return res, DeviceStats{}, nil
	}
	if r.tieredPQ != nil {
		// ADC scans the resident codes; only the exact re-rank touches
		// the storage cache, grouped by vault page.
		esp := sp.Start("exec",
			obs.Tag{Key: "execution", Value: "host"},
			obs.Tag{Key: "mode", Value: "tiered-quantized"},
			obs.Tag{Key: "m", Value: r.tieredPQ.M()},
			obs.Tag{Key: "rerank", Value: r.tieredPQ.Rerank()},
			obs.Tag{Key: "vaults", Value: r.tieredPQ.Vaults()})
		res, st, err := r.tieredPQ.SearchStatsSpan(q, k, esp)
		if esp != nil && err == nil {
			esp.SetTag("code_evals", st.CodeEvals)
			esp.SetTag("rerank_evals", st.DistEvals)
		}
		esp.End()
		if err != nil {
			return nil, DeviceStats{}, err
		}
		return res, DeviceStats{}, nil
	}
	if r.linear != nil {
		// The linear engine is vault-parallel: hand it the exec span so
		// each scanned slice shows up as a "vault" child and /tracez
		// exposes per-vault skew.
		esp := sp.Start("exec",
			obs.Tag{Key: "execution", Value: "host"},
			obs.Tag{Key: "vaults", Value: r.linear.Vaults()})
		res, _ := r.linear.SearchStatsSpan(q, k, esp)
		esp.End()
		return res, DeviceStats{}, nil
	}
	if r.graphIdx != nil {
		// Hand the graph engine the exec span so the traversal shows up
		// as "descend" (upper-layer hops) and "base" (layer-0 beam)
		// children, each tagged with its hop and distance-eval counts.
		esp := sp.Start("exec",
			obs.Tag{Key: "execution", Value: "host"},
			obs.Tag{Key: "mode", Value: "graph"},
			obs.Tag{Key: "ef", Value: r.graphIdx.EfSearch})
		res, st := r.graphIdx.SearchStatsSpan(q, k, esp)
		if esp != nil {
			kst := st.KNN()
			esp.SetTag("dist_evals", kst.DistEvals)
			esp.SetTag("dims", kst.Dims)
		}
		esp.End()
		return res, DeviceStats{}, nil
	}
	if r.pqEng != nil {
		// The quantized engine is vault-parallel like the linear one;
		// hand it the exec span so scanned slabs appear as "vault"
		// children, and tag the ADC work the scan did.
		esp := sp.Start("exec",
			obs.Tag{Key: "execution", Value: "host"},
			obs.Tag{Key: "mode", Value: "quantized"},
			obs.Tag{Key: "m", Value: r.pqEng.M()},
			obs.Tag{Key: "rerank", Value: r.pqEng.Rerank()},
			obs.Tag{Key: "vaults", Value: r.pqEng.Vaults()})
		res, st := r.pqEng.SearchStatsSpan(q, k, esp)
		if esp != nil {
			esp.SetTag("code_evals", st.CodeEvals)
			esp.SetTag("rerank_evals", st.DistEvals)
		}
		esp.End()
		return res, DeviceStats{}, nil
	}
	search := r.hostSearcher()
	if search == nil {
		return nil, DeviceStats{}, errors.New("ssam: no engine built")
	}
	esp := sp.Start("exec", obs.Tag{Key: "execution", Value: "host"})
	res := search(q, k)
	esp.End()
	return res, DeviceStats{}, nil
}

// SearchBinary is Search for Hamming regions.
func (r *Region) SearchBinary(q BinaryCode, k int) ([]Result, error) {
	res, _, err := r.SearchBinaryStatsSpan(q, k, nil)
	return res, err
}

// SearchBinaryStats is SearchBinary returning the query's simulated
// device stats alongside the results (zero DeviceStats for Host
// execution), with the same atomicity guarantee as SearchStats.
func (r *Region) SearchBinaryStats(q BinaryCode, k int) ([]Result, DeviceStats, error) {
	return r.SearchBinaryStatsSpan(q, k, nil)
}

// SearchBinaryStatsSpan is SearchBinaryStats recording the engine
// execution as an "exec" child of sp — the Hamming counterpart of
// SearchStatsSpan, so binary queries appear in /tracez like float ones.
// A nil span is the untraced fast path.
func (r *Region) SearchBinaryStatsSpan(q BinaryCode, k int, sp *obs.Span) ([]Result, DeviceStats, error) {
	if r.freed {
		return nil, DeviceStats{}, ErrFreed
	}
	if r.cfg.Metric != Hamming {
		return nil, DeviceStats{}, errors.New("ssam: binary query on a non-Hamming region")
	}
	if q.Dim != r.dims {
		return nil, DeviceStats{}, fmt.Errorf("ssam: query width %d, want %d", q.Dim, r.dims)
	}
	if !r.built {
		return nil, DeviceStats{}, errors.New("ssam: SearchBinary before BuildIndex")
	}
	if k <= 0 {
		return nil, DeviceStats{}, fmt.Errorf("ssam: k must be positive")
	}
	if ms := r.mutable(); ms != nil {
		return r.searchMutableBinary(ms, q, k, sp)
	}
	if r.device != nil {
		// As in SearchStatsSpan, the exec span includes the module lock
		// wait: concurrent queries serialize on the simulated device.
		esp := sp.Start("exec", obs.Tag{Key: "execution", Value: "device"})
		r.mu.Lock()
		defer r.mu.Unlock()
		res, st, err := r.device.SearchBinary(q, k)
		esp.End()
		if err != nil {
			return nil, DeviceStats{}, err
		}
		r.lastStats = toDeviceStats(st)
		return res, r.lastStats, nil
	}
	if r.hamming == nil {
		return nil, DeviceStats{}, errors.New("ssam: no engine built")
	}
	esp := sp.Start("exec",
		obs.Tag{Key: "execution", Value: "host"},
		obs.Tag{Key: "vaults", Value: r.hamming.Vaults()})
	res, _ := r.hamming.SearchStatsSpan(q, k, esp)
	esp.End()
	return res, DeviceStats{}, nil
}

// SearchBatch answers one query per element of qs. Host execution
// fans the batch out across worker goroutines (the index structures
// are read-only at query time); Device execution serves the batch
// sequentially — the module broadcasts one query at a time, and as the
// paper notes, batching buys little on a device that already saturates
// its internal bandwidth per query. After a Device batch, LastStats
// holds the accumulated execution. A mid-batch device failure is
// returned as a *BatchError naming the failing query; results for
// queries before it are kept in the returned slice and the stats they
// accumulated are committed.
func (r *Region) SearchBatch(qs [][]float32, k int) ([][]Result, error) {
	return r.SearchBatchSpan(qs, k, nil)
}

// SearchBatchSpan is SearchBatch recording the engine execution as an
// "exec" child of sp, tagged with the execution mode and batch size.
// A nil span is the untraced fast path.
func (r *Region) SearchBatchSpan(qs [][]float32, k int, sp *obs.Span) ([][]Result, error) {
	if r.freed {
		return nil, ErrFreed
	}
	if !r.built {
		return nil, errors.New("ssam: SearchBatch before BuildIndex")
	}
	if k <= 0 {
		return nil, fmt.Errorf("ssam: k must be positive")
	}
	for _, q := range qs {
		if len(q) != r.dims {
			return nil, fmt.Errorf("ssam: query dim %d, want %d", len(q), r.dims)
		}
	}
	out := make([][]Result, len(qs))

	if ms := r.mutable(); ms != nil && ms.f != nil {
		// The mutable store answers the whole batch against one snapshot
		// generation — batch-level consistency under concurrent writes.
		return r.searchMutableBatch(ms, qs, k, sp)
	}

	if r.device != nil {
		// As in SearchStatsSpan, the exec span includes the module lock
		// wait: the simulated device serializes concurrent batches.
		esp := sp.Start("exec",
			obs.Tag{Key: "execution", Value: "device"},
			obs.Tag{Key: "batch", Value: len(qs)})
		defer esp.End()
		r.mu.Lock()
		defer r.mu.Unlock()
		var agg DeviceStats
		for i, q := range qs {
			var res []Result
			var st ssamdev.QueryStats
			err := error(nil)
			if r.batchFault != nil {
				err = r.batchFault(i)
			}
			if err == nil {
				res, st, err = r.deviceSearch(q, k)
			}
			if err != nil {
				// Keep what the batch computed so far: results for
				// queries before i stand, and the stats they accumulated
				// are committed rather than discarded.
				r.lastStats = agg
				return out, &BatchError{Index: i, Err: err}
			}
			out[i] = res
			agg.Cycles += st.Cycles
			agg.Seconds += st.Seconds
			agg.Instructions += st.Instructions
			agg.VectorInstructions += st.VectorInsts
			agg.DRAMBytesRead += st.DRAMBytesRead
			agg.ProcessingUnits = st.PUs
			agg.StorageBytesRead += st.StorageBytesRead
			agg.StorageCacheHits += st.StorageCacheHits
			agg.StorageStalls += st.StorageStalls
		}
		r.lastStats = agg
		return out, nil
	}

	if r.tiered != nil || r.tieredPQ != nil {
		// Tiered engines serve batches sequentially — each query's scan
		// already overlaps storage reads with compute, and a failed
		// backing read aborts the batch as a *BatchError naming the
		// query, keeping the results computed before it.
		mode := "tiered"
		vaults := 0
		if r.tiered != nil {
			vaults = r.tiered.Vaults()
		} else {
			mode = "tiered-quantized"
			vaults = r.tieredPQ.Vaults()
		}
		esp := sp.Start("exec",
			obs.Tag{Key: "execution", Value: "host"},
			obs.Tag{Key: "mode", Value: mode},
			obs.Tag{Key: "batch", Value: len(qs)},
			obs.Tag{Key: "vaults", Value: vaults})
		defer esp.End()
		var failedAt int
		var err error
		if r.tiered != nil {
			out, failedAt, err = r.tiered.SearchBatchSpan(qs, k, esp)
		} else {
			out, failedAt, err = r.tieredPQ.SearchBatchSpan(qs, k, esp)
		}
		if err != nil {
			return out, &BatchError{Index: failedAt, Err: err}
		}
		return out, nil
	}
	if r.linear != nil {
		// The linear engine owns the batch policy: short batches run
		// queries in turn with vault-parallel scans, long ones fan out
		// across workers with serial scans — either way, results match
		// the serial path bit for bit.
		esp := sp.Start("exec",
			obs.Tag{Key: "execution", Value: "host"},
			obs.Tag{Key: "batch", Value: len(qs)},
			obs.Tag{Key: "vaults", Value: r.linear.Vaults()})
		defer esp.End()
		return r.linear.SearchBatchSpan(qs, k, esp), nil
	}
	if r.pqEng != nil {
		// Same batch policy as the linear engine: vault-parallel scans
		// for short batches, cross-query fan-out for long ones.
		esp := sp.Start("exec",
			obs.Tag{Key: "execution", Value: "host"},
			obs.Tag{Key: "mode", Value: "quantized"},
			obs.Tag{Key: "batch", Value: len(qs)},
			obs.Tag{Key: "vaults", Value: r.pqEng.Vaults()})
		defer esp.End()
		return r.pqEng.SearchBatchSpan(qs, k, esp), nil
	}
	search := r.hostSearcher()
	if search == nil {
		return nil, errors.New("ssam: no engine built")
	}
	esp := sp.Start("exec",
		obs.Tag{Key: "execution", Value: "host"},
		obs.Tag{Key: "batch", Value: len(qs)})
	defer esp.End()
	workers := r.cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	var wg sync.WaitGroup
	idx := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				out[i] = search(qs[i], k)
			}
		}()
	}
	for i := range qs {
		idx <- i
	}
	close(idx)
	wg.Wait()
	return out, nil
}

// deviceSearchRaw dispatches a float query to the device's built
// engine (linear scan or on-device index).
func (r *Region) deviceSearchRaw(q []float32, k int) ([]topk.Result, ssamdev.QueryStats, error) {
	switch {
	case r.devTree != nil:
		return r.devTree.Search(q, k, r.devChecks)
	case r.devKMTree != nil:
		return r.devKMTree.Search(q, k, r.devChecks)
	case r.devLSH != nil:
		return r.devLSH.Search(q, k)
	case r.devGraph != nil:
		return r.devGraph.Search(q, k)
	case r.devPQ != nil:
		return r.devPQ.Search(q, k)
	default:
		return r.device.Search(q, k)
	}
}

// deviceSearch is deviceSearchRaw with stats converted for batching.
func (r *Region) deviceSearch(q []float32, k int) ([]Result, ssamdev.QueryStats, error) {
	res, st, err := r.deviceSearchRaw(q, k)
	return res, st, err
}

func toDeviceStats(st ssamdev.QueryStats) DeviceStats {
	return DeviceStats{
		Cycles:             st.Cycles,
		Seconds:            st.Seconds,
		Instructions:       st.Instructions,
		VectorInstructions: st.VectorInsts,
		DRAMBytesRead:      st.DRAMBytesRead,
		ProcessingUnits:    st.PUs,
		StorageBytesRead:   st.StorageBytesRead,
		StorageCacheHits:   st.StorageCacheHits,
		StorageStalls:      st.StorageStalls,
	}
}

// hostSearcher returns the built host engine's query function, or nil.
func (r *Region) hostSearcher() func([]float32, int) []Result {
	switch {
	case r.linear != nil:
		return r.linear.Search
	case r.forest != nil:
		return r.forest.Search
	case r.kmTree != nil:
		return r.kmTree.Search
	case r.mplsh != nil:
		return r.mplsh.Search
	case r.graphIdx != nil:
		return r.graphIdx.Search
	case r.pqEng != nil:
		return r.pqEng.Search
	}
	return nil
}

// pqParams maps the region's index tuning onto quantized-engine
// construction; zero values select the pq package defaults.
func (ip IndexParams) pqParams() knn.PQParams {
	return knn.PQParams{M: ip.M, Sample: ip.Sample, Rerank: ip.Rerank, Seed: ip.Seed}
}

// QuantizedCounters is a point-in-time view of a quantized region's
// cumulative work counters, safe to read concurrently with searches.
type QuantizedCounters = knn.PQCounters

// QuantizedStats returns the quantized engine's cumulative work
// counters (table builds, code evals, re-rank evals) and whether the
// region has one. The counters back the server's /metrics series.
func (r *Region) QuantizedStats() (QuantizedCounters, bool) {
	if r.pqEng == nil {
		return QuantizedCounters{}, false
	}
	return r.pqEng.Counters(), true
}

// TieredCounters is a point-in-time view of a storage-backed region's
// cumulative cache counters, safe to read concurrently with searches.
type TieredCounters = tier.Counters

// TieredStats returns the storage tier's cumulative counters (reads,
// bytes read, cache hits/misses, evictions, prefetch hits, stalls,
// residency) and whether the region is storage-backed. The counters
// back the server's /metrics series.
func (r *Region) TieredStats() (TieredCounters, bool) {
	if r.store == nil {
		return TieredCounters{}, false
	}
	return r.store.Counters(), true
}

// graphParams maps the region's index tuning onto graph construction;
// zero values select the package defaults.
func (ip IndexParams) graphParams() graph.Params {
	p := graph.DefaultParams()
	if ip.M > 0 {
		p.M = ip.M
	}
	if ip.EfConstruction > 0 {
		p.EfConstruction = ip.EfConstruction
	}
	if ip.EfSearch > 0 {
		p.EfSearch = ip.EfSearch
	}
	if ip.Seed != 0 {
		p.Seed = ip.Seed
	}
	return p
}

// LastStats returns the simulated device stats of the last Exec,
// Search or SearchBatch (zero for Host execution).
func (r *Region) LastStats() DeviceStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.lastStats
}

// Device exposes the underlying simulated module (nil for Host
// execution) for benchmarking and model queries.
func (r *Region) Device() *ssamdev.Device { return r.device }

// Free releases the region (nfree). Further operations return
// ErrFreed.
func (r *Region) Free() {
	r.freed = true
	r.dropStore()
	if r.store != nil {
		r.store.Close()
	}
	r.store, r.tiered, r.tieredPQ = nil, nil, nil
	r.data, r.codes = nil, nil
	r.linear, r.hamming, r.forest, r.kmTree, r.mplsh, r.graphIdx, r.pqEng = nil, nil, nil, nil, nil, nil, nil
	r.device, r.devTree, r.devKMTree, r.devLSH, r.devGraph, r.devPQ = nil, nil, nil, nil, nil, nil
	r.lastRes, r.query = nil, nil
}
