package ssam

import (
	"strings"
	"sync"
	"testing"

	"ssam/internal/dataset"
	"ssam/internal/obs"
)

func graphDataset(t *testing.T) *dataset.Dataset {
	t.Helper()
	return dataset.Generate(dataset.Spec{
		Name: "region-graph", N: 1500, Dim: 24, NumQueries: 48, K: 10,
		Clusters: 16, ClusterStd: 0.3, Seed: 11,
	})
}

func buildGraphRegion(t *testing.T, ds *dataset.Dataset, cfg Config) *Region {
	t.Helper()
	cfg.Mode = Graph
	r, err := New(ds.Dim(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.LoadFloat32(ds.Data); err != nil {
		t.Fatal(err)
	}
	if err := r.BuildIndex(); err != nil {
		t.Fatal(err)
	}
	return r
}

// TestGraphSerialVsConcurrent pins the acceptance criterion: serial
// and concurrent searches of the same built graph region return
// identical results.
func TestGraphSerialVsConcurrent(t *testing.T) {
	ds := graphDataset(t)
	r := buildGraphRegion(t, ds, Config{Index: IndexParams{Seed: 3}})
	defer r.Free()

	serial := make([][]Result, len(ds.Queries))
	for i, q := range ds.Queries {
		res, err := r.Search(q, 10)
		if err != nil {
			t.Fatal(err)
		}
		serial[i] = res
	}
	conc := make([][]Result, len(ds.Queries))
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < len(ds.Queries); i += 8 {
				res, err := r.Search(ds.Queries[i], 10)
				if err != nil {
					t.Error(err)
					return
				}
				conc[i] = res
			}
		}(w)
	}
	wg.Wait()
	for i := range serial {
		if len(serial[i]) != len(conc[i]) {
			t.Fatalf("query %d: %d serial vs %d concurrent results", i, len(serial[i]), len(conc[i]))
		}
		for j := range serial[i] {
			if serial[i][j] != conc[i][j] {
				t.Fatalf("query %d rank %d: serial %+v != concurrent %+v",
					i, j, serial[i][j], conc[i][j])
			}
		}
	}
}

// TestGraphDeviceMatchesHost pins the one-build-serves-both contract:
// a Device graph region returns the same neighbors as a Host region
// with the same seed, plus modeled (nonzero) device stats.
func TestGraphDeviceMatchesHost(t *testing.T) {
	ds := graphDataset(t)
	ip := IndexParams{Seed: 5, M: 12, EfConstruction: 48, EfSearch: 40}
	host := buildGraphRegion(t, ds, Config{Index: ip})
	defer host.Free()
	dev := buildGraphRegion(t, ds, Config{Execution: Device, VectorLength: 4, Index: ip})
	defer dev.Free()

	for i := 0; i < 16; i++ {
		hres, err := host.Search(ds.Queries[i], 10)
		if err != nil {
			t.Fatal(err)
		}
		dres, dst, err := dev.SearchStats(ds.Queries[i], 10)
		if err != nil {
			t.Fatal(err)
		}
		if len(hres) != len(dres) {
			t.Fatalf("query %d: host %d results, device %d", i, len(hres), len(dres))
		}
		for j := range hres {
			if hres[j] != dres[j] {
				t.Fatalf("query %d rank %d: host %+v != device %+v", i, j, hres[j], dres[j])
			}
		}
		if dst.Cycles == 0 || dst.Seconds <= 0 || dst.DRAMBytesRead == 0 ||
			dst.VectorInstructions == 0 || dst.ProcessingUnits == 0 {
			t.Fatalf("query %d: implausible device stats %+v", i, dst)
		}
		if dst.Throughput() <= 0 {
			t.Fatalf("query %d: throughput %v", i, dst.Throughput())
		}
	}
	if st := dev.LastStats(); st.Cycles == 0 {
		t.Fatal("LastStats empty after device graph search")
	}
}

// TestGraphSetChecks verifies the EfSearch knob: SetChecks retunes a
// built graph region, and a wider beam can only improve recall.
func TestGraphSetChecks(t *testing.T) {
	ds := graphDataset(t)
	r := buildGraphRegion(t, ds, Config{Index: IndexParams{Seed: 2}})
	defer r.Free()
	lin, err := New(ds.Dim(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer lin.Free()
	if err := lin.LoadFloat32(ds.Data); err != nil {
		t.Fatal(err)
	}
	if err := lin.BuildIndex(); err != nil {
		t.Fatal(err)
	}

	recallAt := func(ef int) float64 {
		if err := r.SetChecks(ef); err != nil {
			t.Fatal(err)
		}
		sum := 0.0
		for _, q := range ds.Queries {
			exact, err := lin.Search(q, 10)
			if err != nil {
				t.Fatal(err)
			}
			approx, err := r.Search(q, 10)
			if err != nil {
				t.Fatal(err)
			}
			sum += dataset.Recall(exact, approx)
		}
		return sum / float64(len(ds.Queries))
	}
	narrow := recallAt(10)
	wide := recallAt(400)
	if wide < narrow {
		t.Fatalf("recall fell as ef grew: ef=10 %.3f, ef=400 %.3f", narrow, wide)
	}
	if wide < 0.95 {
		t.Fatalf("recall %.3f at ef=400 on a 1.5k set, want >= 0.95", wide)
	}
}

// TestGraphSearchSpans checks the traversal trace: the exec span
// carries mode/ef/dist_evals tags and descend/base children from the
// graph engine.
func TestGraphSearchSpans(t *testing.T) {
	ds := graphDataset(t)
	r := buildGraphRegion(t, ds, Config{Index: IndexParams{Seed: 4}})
	defer r.Free()
	tracer := obs.NewTracer(0, 8)
	tr := tracer.Trace("search", true)
	if _, _, err := r.SearchStatsSpan(ds.Queries[0], 10, tr.Root()); err != nil {
		t.Fatal(err)
	}
	data := tracer.Finish(tr)
	exec := data.Root.Find("exec")
	if exec == nil {
		t.Fatal("no exec span")
	}
	if exec.Tags["mode"] != "graph" || exec.Tags["execution"] != "host" {
		t.Fatalf("exec tags: %+v", exec.Tags)
	}
	if exec.Tags["ef"] != 64 {
		t.Fatalf("ef tag = %v, want default 64", exec.Tags["ef"])
	}
	de, ok := exec.Tags["dist_evals"].(int)
	if !ok || de <= 0 {
		t.Fatalf("dist_evals tag = %v", exec.Tags["dist_evals"])
	}
	if exec.Tags["dims"] != de*ds.Dim() {
		t.Fatalf("dims tag = %v, want %d", exec.Tags["dims"], de*ds.Dim())
	}
	if exec.Find("descend") == nil || exec.Find("base") == nil {
		t.Fatalf("missing traversal child spans: %+v", exec)
	}
}

// TestGraphConfigValidation covers the graph-specific paths through
// New and the staged query interface.
func TestGraphConfigValidation(t *testing.T) {
	if _, err := New(8, Config{Mode: Graph, Metric: Cosine}); err == nil ||
		!strings.Contains(err.Error(), "Euclidean") {
		t.Fatalf("non-Euclidean graph config: %v", err)
	}
	if _, err := New(8, Config{Mode: Graph, Metric: Hamming}); err == nil {
		t.Fatal("Hamming graph config accepted")
	}

	ds := graphDataset(t)
	r := buildGraphRegion(t, ds, Config{})
	defer r.Free()
	if err := r.WriteQuery(ds.Queries[0]); err != nil {
		t.Fatal(err)
	}
	if err := r.Exec(5); err != nil {
		t.Fatal(err)
	}
	res, err := r.ReadResult()
	if err != nil || len(res) != 5 {
		t.Fatalf("staged graph query: %v, %d results", err, len(res))
	}
	batch, err := r.SearchBatch(ds.Queries[:8], 3)
	if err != nil {
		t.Fatal(err)
	}
	for i, row := range batch {
		if len(row) != 3 {
			t.Fatalf("batch row %d: %d results", i, len(row))
		}
	}
}
