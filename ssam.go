// Package ssam is a Go reproduction of the Similarity Search
// Associative Memory (Lee et al., "Application Codesign of Near-Data
// Processing for Similarity Search", IPDPS 2018): a near-data kNN
// accelerator built on the Hybrid Memory Cube, together with the exact
// and approximate k-nearest-neighbor algorithm suite it is evaluated
// against.
//
// The public API mirrors the paper's SSAM-enabled memory-region driver
// interface (Fig. 4): allocate a region, set its indexing mode, copy a
// dataset in, build the index, then run queries — either on the host
// (real Go implementations of linear search, randomized kd-trees,
// hierarchical k-means trees, and hyperplane multi-probe LSH) or on
// the simulated SSAM device (handwritten Table II kernels executing on
// a cycle-level processing-unit simulator over an HMC 2.0 bandwidth
// model).
//
//	region, err := ssam.New(dims, ssam.Config{Mode: ssam.Linear, Execution: ssam.Device})
//	err = region.LoadFloat32(dataset)          // nmemcpy
//	err = region.BuildIndex()                  // nbuild_index
//	results, err := region.Search(query, k)    // nwrite_query + nexec + nread_result
//	stats := region.LastStats()                // simulated device timing
//	region.Free()                              // nfree
package ssam

import (
	"fmt"

	"ssam/internal/topk"
	"ssam/internal/vec"
)

// Result is one neighbor: database id and distance under the region's
// metric (smaller is closer; Euclidean reports squared distance).
type Result = topk.Result

// BinaryCode is a bit-packed Hamming-space vector for binary regions
// (Section II-D's binarized representation). Construct with
// NewBinaryCode and set bits with Set; vec-package helpers like
// SignBinarize also produce it.
type BinaryCode = vec.Binary

// Metric selects the distance function.
type Metric int

// Supported metrics (Section II-D of the paper).
const (
	Euclidean Metric = iota
	Manhattan
	Cosine
	Hamming
)

// String returns the metric name, or "unknown" for out-of-range
// values (which New rejects).
func (m Metric) String() string {
	switch m {
	case Euclidean, Manhattan, Cosine, Hamming:
		return m.toVec().String()
	}
	return "unknown"
}

// Valid reports whether m is one of the supported metrics.
func (m Metric) Valid() bool { return m >= Euclidean && m <= Hamming }

// ParseMetric parses a metric name as produced by Metric.String.
func ParseMetric(s string) (Metric, error) {
	for m := Euclidean; m <= Hamming; m++ {
		if s == m.String() {
			return m, nil
		}
	}
	return 0, fmt.Errorf("ssam: unknown metric %q", s)
}

func (m Metric) toVec() vec.Metric {
	switch m {
	case Euclidean:
		return vec.Euclidean
	case Manhattan:
		return vec.Manhattan
	case Cosine:
		return vec.Cosine
	case Hamming:
		return vec.HammingMetric
	}
	return vec.Euclidean
}

// Mode is the region's indexing mode (the nmode call of Fig. 4).
type Mode int

const (
	// Linear scans the whole region per query (exact search).
	Linear Mode = iota
	// KDTree builds a randomized kd-tree forest (FLANN-style).
	KDTree
	// KMeans builds a hierarchical k-means tree (FLANN-style).
	KMeans
	// MPLSH builds hyperplane multi-probe LSH tables (FALCONN-style).
	MPLSH
	// Graph builds an HNSW-style navigable small-world graph and
	// answers queries by best-first traversal (NDSEARCH-style when
	// executed on the device).
	Graph
	// Quantized trains a product-quantization codebook and scans 8-bit
	// codes with per-query ADC lookup tables (André-thesis style),
	// optionally re-ranking the top candidates against the retained
	// float32 vectors for exact distances. Supports the Euclidean,
	// Manhattan and Cosine metrics.
	Quantized
)

// String returns the mode name.
func (m Mode) String() string {
	switch m {
	case Linear:
		return "linear"
	case KDTree:
		return "kdtree"
	case KMeans:
		return "kmeans"
	case MPLSH:
		return "mplsh"
	case Graph:
		return "graph"
	case Quantized:
		return "quantized"
	}
	return "unknown"
}

// Valid reports whether m is one of the supported modes.
func (m Mode) Valid() bool { return m >= Linear && m <= Quantized }

// ParseMode parses a mode name as produced by Mode.String.
func ParseMode(s string) (Mode, error) {
	for m := Linear; m <= Quantized; m++ {
		if s == m.String() {
			return m, nil
		}
	}
	return 0, fmt.Errorf("ssam: unknown mode %q", s)
}

// Execution selects where queries run.
type Execution int

const (
	// Host runs queries on the local CPU with the Go implementations.
	Host Execution = iota
	// Device runs queries through the simulated SSAM module: data is
	// quantized to device fixed point, laid out across HMC vaults, and
	// served by assembled Table II kernels on the cycle simulator —
	// linear scans, or (for the Euclidean metric) the on-device
	// indexes: scratchpad-resident kd-trees and hierarchical k-means
	// trees traversed with the hardware stack unit, and hyperplane LSH
	// with hash weights in device memory. For device tree indexes,
	// IndexParams.Checks is the per-processing-unit scan budget.
	Device
)

// String returns the execution name.
func (e Execution) String() string {
	switch e {
	case Host:
		return "host"
	case Device:
		return "device"
	}
	return "unknown"
}

// Valid reports whether e is one of the supported execution targets.
func (e Execution) Valid() bool { return e == Host || e == Device }

// ParseExecution parses an execution name as produced by
// Execution.String.
func ParseExecution(s string) (Execution, error) {
	switch s {
	case "host":
		return Host, nil
	case "device":
		return Device, nil
	}
	return 0, fmt.Errorf("ssam: unknown execution %q", s)
}

// IndexParams tunes the approximate indexes. Zero values select
// defaults matching the paper's characterization setup.
type IndexParams struct {
	// Trees is the kd-forest size (default 4).
	Trees int
	// Branching is the k-means tree fanout (default 16).
	Branching int
	// LeafSize bounds bucket sizes for tree indexes.
	LeafSize int
	// Tables and Bits configure MPLSH (defaults 4 tables, 20 bits —
	// the paper's hyperplane count).
	Tables int
	Bits   int
	// Checks bounds vectors scored per tree query; Probes bounds
	// buckets probed per LSH table. Sweeping them trades accuracy for
	// throughput (Fig. 2).
	Checks int
	Probes int
	// M and EfConstruction shape the Graph mode's HNSW build: M bounds
	// per-layer out-degree (default 16), EfConstruction the insertion
	// beam (default 100). EfSearch is the query-time beam — the graph
	// analogue of Checks (default 64); sweeping it traces the
	// recall-vs-QPS frontier.
	M              int
	EfConstruction int
	EfSearch       int
	// Sample and Rerank shape the Quantized mode: M doubles as the
	// subquantizer count (code bytes per row, default 8), Sample is the
	// codebook-training sample size (default 8192), and Rerank re-scores
	// the top-Rerank ADC candidates against the retained float32
	// vectors for exact distances (0 = ADC only; >= the dataset size
	// makes results identical to the exact linear scan). Rerank is the
	// Quantized accuracy knob, retargeted by SetChecks.
	Sample int
	Rerank int
	// Seed makes index construction reproducible.
	Seed int64
}

// Storage backs a region's full-precision vectors with a file served
// through an admission-controlled page cache, so the region can serve
// datasets larger than the configured memory budget (the ann_in_ssd
// out-of-core arrangement). Pages are the region's vault chunks, which
// keeps out-of-core results bit-identical to in-RAM: the same bytes
// feed the same kernels in the same merge order. Supported for Linear
// and Quantized modes on float metrics; storage-backed regions are
// immutable (Upsert/Delete return an error).
type Storage struct {
	// Path is the backing file, written by BuildIndex. Required for
	// Host execution; optional for Device execution, where the storage
	// tier is priced analytically by the device model instead.
	Path string
	// BudgetBytes caps the bytes of vector pages resident in memory
	// (0 = unlimited). Budgets below one page degrade to streaming
	// reads: correct, every scan re-reads the file.
	BudgetBytes int64
	// Prefetch overlaps the next vault's read with the current vault's
	// scan.
	Prefetch bool
}

// Config configures a region at allocation time.
type Config struct {
	Metric    Metric
	Mode      Mode
	Execution Execution
	// VectorLength selects the SSAM-n device variant (2, 4, 8 or 16)
	// for Device execution; default 8.
	VectorLength int
	// Workers bounds host-side parallelism across queries; 0 uses all
	// cores.
	Workers int
	// Vaults sets the intra-query scan partition count for Host linear
	// execution, mirroring the paper's per-vault accelerators: the
	// dataset is split into Vaults contiguous slices scanned
	// concurrently and merged on the host. 0 selects min(32,
	// GOMAXPROCS); values above 32 (the HMC vault count) are clamped;
	// negative values are rejected by New. Results are bit-identical at
	// every vault count.
	Vaults int
	// Index tunes approximate modes.
	Index IndexParams
	// Storage, when non-nil, backs the region's vectors with a file
	// behind a budgeted page cache (out-of-core serving). See Storage.
	Storage *Storage
}

// DeviceStats reports the simulated execution of the last Device-mode
// query (zero for Host execution).
type DeviceStats struct {
	// Cycles is the slowest processing unit's cycle count (device
	// latency) and Seconds its wall-clock equivalent at the device
	// clock.
	Cycles  uint64
	Seconds float64
	// Instructions and VectorInstructions are summed over all
	// processing units.
	Instructions       uint64
	VectorInstructions uint64
	// DRAMBytesRead is the total vault traffic.
	DRAMBytesRead uint64
	// ProcessingUnits is the module's total PU count.
	ProcessingUnits int
	// StorageBytesRead, StorageCacheHits and StorageStalls report the
	// modeled storage tier of a device with attached storage
	// (ssam.Storage on a Device region): bytes fetched from the backing
	// device, page requests served from the device-side cache, and
	// whole-queue stall events where the scan waited on storage. Zero
	// when no storage is attached.
	StorageBytesRead uint64
	StorageCacheHits uint64
	StorageStalls    uint64
}

// Throughput returns queries/second implied by the device latency.
func (s DeviceStats) Throughput() float64 {
	if s.Seconds <= 0 {
		return 0
	}
	return 1 / s.Seconds
}
