package ssam_test

// Region-level vault-parallel tests: serial/parallel equivalence
// through the public API, concurrent hammering (ci.sh runs this file
// under -race), and trace presence for both the float and the
// previously untraced binary search path.

import (
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"ssam"
	"ssam/internal/obs"
)

// vaultRegion builds a Host linear region big enough to clear the
// engines' adaptive serial threshold, so vaults > 1 actually takes the
// parallel path.
func vaultRegion(t *testing.T, n, dim, vaults int) (*ssam.Region, [][]float32) {
	t.Helper()
	r, err := ssam.New(dim, ssam.Config{Mode: ssam.Linear, Execution: ssam.Host, Vaults: vaults})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(int64(7)))
	data := make([]float32, n*dim)
	for i := range data {
		// Quantized coordinates make duplicate distances (and boundary
		// ties across vault edges) common.
		data[i] = float32(rng.Intn(4))
	}
	if err := r.LoadFloat32(data); err != nil {
		t.Fatal(err)
	}
	if err := r.BuildIndex(); err != nil {
		t.Fatal(err)
	}
	qs := make([][]float32, 8)
	for i := range qs {
		q := make([]float32, dim)
		for d := range q {
			q[d] = float32(rng.Intn(4))
		}
		qs[i] = q
	}
	return r, qs
}

// TestRegionVaultsMatchSerial pins serial/parallel equivalence at the
// public API: a Vaults=8 region answers every query and batch
// bit-identically to a Vaults=1 region over the same data.
func TestRegionVaultsMatchSerial(t *testing.T) {
	const n, dim, k = 2400, 8, 10
	serial, qs := vaultRegion(t, n, dim, 1)
	defer serial.Free()
	par, _ := vaultRegion(t, n, dim, 8)
	defer par.Free()

	for i, q := range qs {
		want, err := serial.Search(q, k)
		if err != nil {
			t.Fatal(err)
		}
		got, err := par.Search(q, k)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("query %d: vault-parallel diverged from serial:\ngot  %v\nwant %v", i, got, want)
		}
	}
	want, err := serial.SearchBatch(qs, k)
	if err != nil {
		t.Fatal(err)
	}
	got, err := par.SearchBatch(qs, k)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("vault-parallel batch diverged from serial batch")
	}
}

// TestRegionVaultsConcurrentSearch drives Search and SearchBatch from
// many goroutines against one vault-parallel region; under -race this
// is the concurrency gate for the intra-query workers, and every
// answer must still match the serial region exactly.
func TestRegionVaultsConcurrentSearch(t *testing.T) {
	const n, dim, k, goroutines, iters = 2400, 8, 10, 8, 10
	serial, qs := vaultRegion(t, n, dim, 1)
	defer serial.Free()
	par, _ := vaultRegion(t, n, dim, 8)
	defer par.Free()

	wants := make([][]ssam.Result, len(qs))
	for i, q := range qs {
		w, err := serial.Search(q, k)
		if err != nil {
			t.Fatal(err)
		}
		wants[i] = w
	}
	wantBatch, err := serial.SearchBatch(qs, k)
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for it := 0; it < iters; it++ {
				if g%2 == 0 {
					qi := (g + it) % len(qs)
					got, err := par.Search(qs[qi], k)
					if err != nil {
						errs <- err
						return
					}
					if !reflect.DeepEqual(got, wants[qi]) {
						errs <- fmt.Errorf("goroutine %d iter %d: Search diverged", g, it)
						return
					}
				} else {
					got, err := par.SearchBatch(qs, k)
					if err != nil {
						errs <- err
						return
					}
					if !reflect.DeepEqual(got, wantBatch) {
						errs <- fmt.Errorf("goroutine %d iter %d: SearchBatch diverged", g, it)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestRegionVaultSpans checks that a traced vault-parallel query shows
// the paper's topology in /tracez terms: a host exec span carrying the
// vaults tag, with one vault child per slice.
func TestRegionVaultSpans(t *testing.T) {
	const n, dim, vaults = 2400, 8, 8
	r, qs := vaultRegion(t, n, dim, vaults)
	defer r.Free()

	tracer := obs.NewTracer(0, 4)
	tr := tracer.Trace("search", true)
	if _, _, err := r.SearchStatsSpan(qs[0], 10, tr.Root()); err != nil {
		t.Fatal(err)
	}
	data := tracer.Finish(tr)
	exec := data.Root.Find("exec")
	if exec == nil {
		t.Fatal("no exec span recorded")
	}
	if got := exec.Tags["vaults"]; got != vaults {
		t.Fatalf("exec span vaults tag = %v, want %d", got, vaults)
	}
	if spans := exec.FindAll("vault"); len(spans) != vaults {
		t.Fatalf("got %d vault spans under exec, want %d", len(spans), vaults)
	}
}

// hammingRegion builds a Hamming region with n duplicated-pool codes.
func hammingRegion(t *testing.T, n, bits int, exec ssam.Execution, vaults int) (*ssam.Region, ssam.BinaryCode) {
	t.Helper()
	r, err := ssam.New(bits, ssam.Config{
		Metric: ssam.Hamming, Mode: ssam.Linear, Execution: exec, Vaults: vaults,
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	pool := make([]ssam.BinaryCode, 4)
	for p := range pool {
		c := ssam.NewBinaryCode(bits)
		for b := 0; b < bits; b++ {
			c.Set(b, rng.Intn(2) == 1)
		}
		pool[p] = c
	}
	codes := make([]ssam.BinaryCode, n)
	for i := range codes {
		codes[i] = pool[rng.Intn(len(pool))]
	}
	if err := r.LoadBinary(codes); err != nil {
		t.Fatal(err)
	}
	if err := r.BuildIndex(); err != nil {
		t.Fatal(err)
	}
	return r, pool[0]
}

// TestSearchBinaryStatsSpanTrace pins the SearchBinary bugfix: binary
// queries now have a stats/span variant, so Hamming traffic shows up
// in traces like float traffic — host exec spans carry vault children,
// and the results match the plain SearchBinary path exactly.
func TestSearchBinaryStatsSpanTrace(t *testing.T) {
	const n, bits, k, vaults = 2400, 64, 10, 8
	r, q := hammingRegion(t, n, bits, ssam.Host, vaults)
	defer r.Free()

	want, err := r.SearchBinary(q, k)
	if err != nil {
		t.Fatal(err)
	}
	tracer := obs.NewTracer(0, 4)
	tr := tracer.Trace("binary", true)
	got, _, err := r.SearchBinaryStatsSpan(q, k, tr.Root())
	if err != nil {
		t.Fatal(err)
	}
	data := tracer.Finish(tr)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("traced binary search diverged from SearchBinary:\ngot  %v\nwant %v", got, want)
	}
	exec := data.Root.Find("exec")
	if exec == nil {
		t.Fatal("no exec span for a binary query")
	}
	if exec.Tags["execution"] != "host" {
		t.Fatalf("exec execution tag = %v, want host", exec.Tags["execution"])
	}
	if spans := exec.FindAll("vault"); len(spans) != vaults {
		t.Fatalf("got %d vault spans under binary exec, want %d", len(spans), vaults)
	}
}

// TestSearchBinaryStatsSpanDevice covers the device side of the
// bugfix: a traced binary query on the simulated module records an
// exec span and returns the query's device stats atomically.
func TestSearchBinaryStatsSpanDevice(t *testing.T) {
	const n, bits, k = 96, 64, 5
	r, q := hammingRegion(t, n, bits, ssam.Device, 0)
	defer r.Free()

	tracer := obs.NewTracer(0, 4)
	tr := tracer.Trace("binary-device", true)
	res, st, err := r.SearchBinaryStatsSpan(q, k, tr.Root())
	if err != nil {
		t.Fatal(err)
	}
	data := tracer.Finish(tr)
	if len(res) != k {
		t.Fatalf("got %d results, want %d", len(res), k)
	}
	if st.Cycles == 0 {
		t.Fatal("device stats not reported alongside traced binary results")
	}
	exec := data.Root.Find("exec")
	if exec == nil {
		t.Fatal("no exec span for a device binary query")
	}
	if exec.Tags["execution"] != "device" {
		t.Fatalf("exec execution tag = %v, want device", exec.Tags["execution"])
	}
}
