package ssam_test

import (
	"fmt"

	"ssam"
)

// Example walks the paper's Fig. 4 driver sequence on a small host
// region: allocate, copy the dataset in, build, stage a query,
// execute, read results, free.
func Example() {
	// Four 2-d points; the query sits nearest points 0 and 2.
	data := []float32{
		0, 0,
		10, 10,
		1, 1,
		-10, 4,
	}
	region, err := ssam.New(2, ssam.Config{Mode: ssam.Linear})
	if err != nil {
		panic(err)
	}
	defer region.Free()
	if err := region.LoadFloat32(data); err != nil {
		panic(err)
	}
	if err := region.BuildIndex(); err != nil { // nbuild_index
		panic(err)
	}
	if err := region.WriteQuery([]float32{0.4, 0.4}); err != nil { // nwrite_query
		panic(err)
	}
	if err := region.Exec(2); err != nil { // nexec
		panic(err)
	}
	results, err := region.ReadResult() // nread_result
	if err != nil {
		panic(err)
	}
	for _, r := range results {
		fmt.Printf("id=%d dist=%.2f\n", r.ID, r.Dist)
	}
	// Output:
	// id=0 dist=0.32
	// id=2 dist=0.72
}

// ExampleRegion_Search shows the convenience wrapper over the staged
// sequence.
func ExampleRegion_Search() {
	data := []float32{1, 2, 3, 100, 100, 100, 1.5, 2.5, 3.5}
	region, _ := ssam.New(3, ssam.Config{})
	defer region.Free()
	_ = region.LoadFloat32(data)
	_ = region.BuildIndex()
	res, _ := region.Search([]float32{1, 2, 3}, 1)
	fmt.Println(res[0].ID)
	// Output:
	// 0
}
