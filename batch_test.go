package ssam_test

import (
	"testing"

	"ssam"
	"ssam/internal/dataset"
)

func batchDataset(t *testing.T) *dataset.Dataset {
	t.Helper()
	return dataset.Generate(dataset.Spec{
		Name: "batch", N: 1200, Dim: 16, NumQueries: 16, K: 4,
		Clusters: 8, ClusterStd: 0.3, Seed: 55,
	})
}

func buildRegion(t *testing.T, ds *dataset.Dataset, cfg ssam.Config) *ssam.Region {
	t.Helper()
	r, err := ssam.New(ds.Dim(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.LoadFloat32(ds.Data); err != nil {
		t.Fatal(err)
	}
	if err := r.BuildIndex(); err != nil {
		t.Fatal(err)
	}
	return r
}

func TestSearchBatchMatchesSequential(t *testing.T) {
	ds := batchDataset(t)
	for _, cfg := range []ssam.Config{
		{Mode: ssam.Linear},
		{Mode: ssam.KDTree, Index: ssam.IndexParams{Checks: 300}},
		{Mode: ssam.KMeans, Index: ssam.IndexParams{Checks: 300}},
		{Mode: ssam.MPLSH, Index: ssam.IndexParams{Probes: 16}},
	} {
		r := buildRegion(t, ds, cfg)
		batch, err := r.SearchBatch(ds.Queries, 4)
		if err != nil {
			t.Fatal(err)
		}
		if len(batch) != len(ds.Queries) {
			t.Fatalf("%v: %d batch results", cfg.Mode, len(batch))
		}
		for i, q := range ds.Queries {
			seq, err := r.Search(q, 4)
			if err != nil {
				t.Fatal(err)
			}
			for j := range seq {
				if batch[i][j] != seq[j] {
					t.Fatalf("%v query %d result %d: batch %+v vs seq %+v",
						cfg.Mode, i, j, batch[i][j], seq[j])
				}
			}
		}
		r.Free()
	}
}

func TestSearchBatchDevice(t *testing.T) {
	ds := batchDataset(t)
	r := buildRegion(t, ds, ssam.Config{Execution: ssam.Device, VectorLength: 4})
	defer r.Free()
	batch, err := r.SearchBatch(ds.Queries[:4], 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(batch) != 4 {
		t.Fatalf("batch size %d", len(batch))
	}
	st := r.LastStats()
	if st.Cycles == 0 || st.Seconds <= 0 {
		t.Fatalf("no accumulated stats: %+v", st)
	}
	// Sequential service: batch cost is ~4x a single query.
	single, err := r.Search(ds.Queries[0], 3)
	if err != nil {
		t.Fatal(err)
	}
	_ = single
	one := r.LastStats()
	if st.Seconds < 3*one.Seconds {
		t.Fatalf("batch of 4 (%vs) should cost ~4 single queries (%vs each)", st.Seconds, one.Seconds)
	}
}

func TestSearchBatchErrors(t *testing.T) {
	ds := batchDataset(t)
	r := buildRegion(t, ds, ssam.Config{})
	defer r.Free()
	if _, err := r.SearchBatch([][]float32{make([]float32, 3)}, 4); err == nil {
		t.Fatal("wrong-dim batch accepted")
	}
	if _, err := r.SearchBatch(ds.Queries, 0); err == nil {
		t.Fatal("k=0 accepted")
	}
	fresh, err := ssam.New(ds.Dim(), ssam.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fresh.SearchBatch(ds.Queries, 4); err == nil {
		t.Fatal("batch before BuildIndex accepted")
	}
	r.Free()
	if _, err := r.SearchBatch(ds.Queries, 4); err != ssam.ErrFreed {
		t.Fatalf("batch after Free = %v", err)
	}
}
