package ssam

import (
	"fmt"
	"sync"
	"testing"

	"ssam/internal/dataset"
)

// raceDataset is a small clustered dataset shared by the concurrency
// tests (cheap enough to build all five host indexes under -race).
func raceDataset(t *testing.T) *dataset.Dataset {
	t.Helper()
	return dataset.Generate(dataset.Spec{
		Name: "race", N: 400, Dim: 24, NumQueries: 32, K: 5,
		Clusters: 8, ClusterStd: 0.3, Seed: 7,
	})
}

// TestConcurrentSearchAllModes exercises the documented claim that
// concurrent Search calls are safe once the index is built, across all
// six indexing modes. Run with -race to verify.
func TestConcurrentSearchAllModes(t *testing.T) {
	ds := raceDataset(t)
	for _, mode := range []Mode{Linear, KDTree, KMeans, MPLSH, Graph, Quantized} {
		mode := mode
		t.Run(mode.String(), func(t *testing.T) {
			t.Parallel()
			r, err := New(ds.Dim(), Config{Mode: mode, Index: IndexParams{Seed: 1}})
			if err != nil {
				t.Fatal(err)
			}
			defer r.Free()
			if err := r.LoadFloat32(ds.Data); err != nil {
				t.Fatal(err)
			}
			if err := r.BuildIndex(); err != nil {
				t.Fatal(err)
			}
			const goroutines = 8
			var wg sync.WaitGroup
			errs := make(chan error, goroutines)
			for g := 0; g < goroutines; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					for i := range ds.Queries {
						res, err := r.Search(ds.Queries[i], 5)
						if err != nil {
							errs <- err
							return
						}
						// Approximate modes may find fewer than k
						// candidates; the subject here is data races,
						// not recall.
						if len(res) == 0 || len(res) > 5 {
							errs <- fmt.Errorf("goroutine %d: got %d results, want 1..5", g, len(res))
							return
						}
					}
				}(g)
			}
			wg.Wait()
			close(errs)
			for err := range errs {
				t.Fatal(err)
			}
		})
	}
}

// TestConcurrentSearchDevice checks that Device execution, which
// shares a stateful cycle simulator, serializes concurrent Search and
// LastStats calls safely.
func TestConcurrentSearchDevice(t *testing.T) {
	ds := raceDataset(t)
	r, err := New(ds.Dim(), Config{Execution: Device, VectorLength: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Free()
	if err := r.LoadFloat32(ds.Data); err != nil {
		t.Fatal(err)
	}
	if err := r.BuildIndex(); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 4)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 4; i++ {
				if _, err := r.Search(ds.Queries[i], 3); err != nil {
					errs <- err
					return
				}
				if st := r.LastStats(); st.Cycles == 0 {
					errs <- fmt.Errorf("empty device stats after Search")
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestConcurrentSearchBatch fans SearchBatch out from several
// goroutines at once (the serving layer's batcher does exactly this
// for distinct k values).
func TestConcurrentSearchBatch(t *testing.T) {
	ds := raceDataset(t)
	r, err := New(ds.Dim(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Free()
	if err := r.LoadFloat32(ds.Data); err != nil {
		t.Fatal(err)
	}
	if err := r.BuildIndex(); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 6)
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			out, err := r.SearchBatch(ds.Queries, k)
			if err != nil {
				errs <- err
				return
			}
			for _, res := range out {
				if len(res) != k {
					errs <- fmt.Errorf("k=%d: got %d results", k, len(res))
					return
				}
			}
		}(g + 1)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
