module ssam

go 1.22
