package ssamdev

// Index construction on the device (Section VI-B): the SSAM is
// reprogrammed to run the data-intensive scans of index builds —
// k-means assignment passes and the kd-tree variance scan — while the
// host performs the short serialized phases (centroid updates, cut
// selection).

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"

	"ssam/internal/asm"
	"ssam/internal/sim"
	"ssam/internal/vec"
)

// AssignCentroids runs one k-means assignment pass on the device:
// every database vector is scored against the centroids (held in each
// processing unit's scratchpad) and the argmin index is written back
// to device memory. The returned slice maps database id to centroid
// index. Stats aggregate the simulated execution as for Search.
func (d *Device) AssignCentroids(centroids [][]float32) ([]int32, QueryStats, error) {
	if d.metric == vec.HammingMetric {
		return nil, QueryStats{}, fmt.Errorf("ssamdev: AssignCentroids on a Hamming device")
	}
	k := len(centroids)
	if k == 0 {
		return nil, QueryStats{}, fmt.Errorf("ssamdev: no centroids")
	}
	lay := sim.KMeansLayout(d.dim, d.cfg.PU.VectorLen, k)
	puCfg := d.puConfig(1)
	if err := lay.Fits(puCfg.ScratchWords); err != nil {
		return nil, QueryStats{}, err
	}
	// Quantize centroids into the scratch image once.
	scratch := make([]int32, lay.TotalWords)
	for c, row := range centroids {
		if len(row) != d.dim {
			return nil, QueryStats{}, fmt.Errorf("ssamdev: centroid %d has dim %d, want %d", c, len(row), d.dim)
		}
		copy(scratch[c*lay.Padded:], sim.QuantizeDevice(row, d.shift))
	}

	assign := make([]int32, d.n)
	stats, err := d.forEachPU(func(sl *puSlice) (sim.Stats, error) {
		nvec := len(sl.ids)
		src := sim.KMeansAssignKernel(d.dim, nvec, d.cfg.PU.VectorLen, k)
		prog, err := asm.Assemble(src)
		if err != nil {
			return sim.Stats{}, err
		}
		// Extend the shard with the assignment region.
		dram := make([]int32, len(sl.dram)+nvec)
		copy(dram, sl.dram)
		pu := sim.New(puCfg, dram)
		if err := pu.WriteScratch(0, scratch); err != nil {
			return sim.Stats{}, err
		}
		if err := pu.Run(prog); err != nil {
			return sim.Stats{}, err
		}
		out, err := pu.ReadDRAM(nvec*d.padded, nvec)
		if err != nil {
			return sim.Stats{}, err
		}
		for i, a := range out {
			if a < 0 || int(a) >= k {
				return sim.Stats{}, fmt.Errorf("ssamdev: assignment %d out of range", a)
			}
			assign[sl.ids[i]] = a
		}
		return pu.Stats(), nil
	})
	if err != nil {
		return nil, QueryStats{}, err
	}
	return assign, stats, nil
}

// DimensionStats runs the variance scan: per-dimension sums and sums
// of squares over the whole database, de-quantized to float64. The
// kd-tree builder uses these to pick the highest-variance cut
// dimensions on the host.
func (d *Device) DimensionStats() (sum, sumsq []float64, stats QueryStats, err error) {
	if d.metric == vec.HammingMetric {
		return nil, nil, QueryStats{}, fmt.Errorf("ssamdev: DimensionStats on a Hamming device")
	}
	puCfg := d.puConfig(1)
	if 2*d.padded > puCfg.ScratchWords {
		return nil, nil, QueryStats{}, fmt.Errorf("ssamdev: variance scan needs %d scratch words, have %d",
			2*d.padded, puCfg.ScratchWords)
	}
	sum = make([]float64, d.dim)
	sumsq = make([]float64, d.dim)
	var mu sync.Mutex

	stats, err = d.forEachPU(func(sl *puSlice) (sim.Stats, error) {
		nvec := len(sl.ids)
		sh := sim.VarianceShiftsFor(nvec, d.shift)
		src := sim.VarianceKernel(d.dim, nvec, d.cfg.PU.VectorLen, sh)
		prog, err := asm.Assemble(src)
		if err != nil {
			return sim.Stats{}, err
		}
		pu := sim.New(puCfg, sl.dram)
		if err := pu.WriteScratch(0, make([]int32, 2*d.padded)); err != nil {
			return sim.Stats{}, err
		}
		if err := pu.Run(prog); err != nil {
			return sim.Stats{}, err
		}
		raw, err := pu.ReadScratch(0, 2*d.padded)
		if err != nil {
			return sim.Stats{}, err
		}
		scaleSum := float64(int64(1)<<uint(sh.Sum)) / float64(int64(1)<<uint(d.shift))
		scaleSq := float64(int64(1)<<uint(sh.Sq)) / float64(int64(1)<<uint(2*d.shift))
		mu.Lock()
		for dim := 0; dim < d.dim; dim++ {
			sum[dim] += float64(raw[dim]) * scaleSum
			sumsq[dim] += float64(raw[d.padded+dim]) * scaleSq
		}
		mu.Unlock()
		return pu.Stats(), nil
	})
	if err != nil {
		return nil, nil, QueryStats{}, err
	}
	return sum, sumsq, stats, nil
}

// TopVarianceDims returns the count highest-variance dimensions using
// the device scan (the kd-tree construction offload).
func (d *Device) TopVarianceDims(count int) ([]int, QueryStats, error) {
	sum, sumsq, stats, err := d.DimensionStats()
	if err != nil {
		return nil, QueryStats{}, err
	}
	if count > d.dim {
		count = d.dim
	}
	type dv struct {
		d int
		v float64
	}
	vars := make([]dv, d.dim)
	n := float64(d.n)
	for i := range vars {
		mean := sum[i] / n
		vars[i] = dv{i, sumsq[i]/n - mean*mean}
	}
	// Partial selection sort for the top `count`.
	out := make([]int, 0, count)
	for len(out) < count {
		best := -1
		for i, c := range vars {
			if c.d < 0 {
				continue
			}
			if best < 0 || c.v > vars[best].v {
				best = i
			}
		}
		out = append(out, vars[best].d)
		vars[best].d = -1
	}
	return out, stats, nil
}

// TrainKMeans runs Lloyd's algorithm with device-offloaded assignment
// passes: the device scores every vector against the centroids each
// iteration, the host recomputes centroids from the assignments.
// Returns the trained centroids and the accumulated device stats.
func (d *Device) TrainKMeans(k, iters int, seed int64) ([][]float32, QueryStats, error) {
	if k <= 0 || k > d.n {
		return nil, QueryStats{}, fmt.Errorf("ssamdev: k=%d out of range for n=%d", k, d.n)
	}
	rng := rand.New(rand.NewSource(seed))
	centroids := make([][]float32, k)
	perm := rng.Perm(d.n)
	for c := 0; c < k; c++ {
		centroids[c] = d.dequantizeRow(perm[c])
	}
	var total QueryStats
	for it := 0; it < iters; it++ {
		assign, st, err := d.AssignCentroids(centroids)
		if err != nil {
			return nil, QueryStats{}, err
		}
		total.Cycles += st.Cycles
		total.Seconds += st.Seconds
		total.Instructions += st.Instructions
		total.VectorInsts += st.VectorInsts
		total.DRAMBytesRead += st.DRAMBytesRead
		total.PUs = st.PUs

		sums := make([][]float64, k)
		counts := make([]int, k)
		for c := range sums {
			sums[c] = make([]float64, d.dim)
		}
		for id, c := range assign {
			counts[c]++
			row := d.dequantizeRow(id)
			for j, v := range row {
				sums[c][j] += float64(v)
			}
		}
		for c := 0; c < k; c++ {
			if counts[c] == 0 {
				centroids[c] = d.dequantizeRow(rng.Intn(d.n))
				continue
			}
			for j := range centroids[c] {
				centroids[c][j] = float32(sums[c][j] / float64(counts[c]))
			}
		}
	}
	return centroids, total, nil
}

// dequantizeRow reconstructs database vector id from its on-device
// fixed-point image.
func (d *Device) dequantizeRow(id int) []float32 {
	for i := range d.slices {
		sl := &d.slices[i]
		if len(sl.ids) == 0 {
			continue
		}
		lo, hi := int(sl.ids[0]), int(sl.ids[len(sl.ids)-1])
		if id < lo || id > hi {
			continue
		}
		local := id - lo
		out := make([]float32, d.dim)
		scale := float32(int64(1) << uint(d.shift))
		for j := 0; j < d.dim; j++ {
			out[j] = float32(sl.dram[local*d.padded+j]) / scale
		}
		return out
	}
	panic(fmt.Sprintf("ssamdev: id %d not found in any slice", id))
}

// puConfig returns the per-PU simulator config with the vault
// bandwidth share for the current replication.
func (d *Device) puConfig(minQueueDepth int) sim.Config {
	cfg := d.cfg.PU
	cfg.MemBytesPerCycle = d.cfg.HMC.VaultBandwidth / cfg.ClockHz / float64(d.pusPerVault)
	if minQueueDepth > cfg.QueueDepth {
		cfg.QueueDepth = minQueueDepth
	}
	return cfg
}

// runParallel executes fn(0..n-1) across GOMAXPROCS workers.
func runParallel(n int, fn func(i int)) {
	workers := runtime.GOMAXPROCS(0)
	var wg sync.WaitGroup
	idx := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()
}

// forEachPU runs fn over every slice in parallel and reduces stats as
// for a query (max cycles, summed counters).
func (d *Device) forEachPU(fn func(sl *puSlice) (sim.Stats, error)) (QueryStats, error) {
	outs := make([]sim.Stats, len(d.slices))
	errs := make([]error, len(d.slices))
	runParallel(len(d.slices), func(i int) {
		outs[i], errs[i] = fn(&d.slices[i])
	})

	var st QueryStats
	st.PUs = len(d.slices)
	for i := range outs {
		if errs[i] != nil {
			return QueryStats{}, errs[i]
		}
		s := outs[i]
		if s.Cycles > st.Cycles {
			st.Cycles = s.Cycles
		}
		st.Instructions += s.Instructions
		st.VectorInsts += s.VectorInsts
		st.DRAMBytesRead += s.DRAMBytesRead
		st.PQInserts += s.PQInserts
	}
	st.Seconds = float64(st.Cycles) / d.cfg.PU.ClockHz
	return st, nil
}
