package ssamdev

import (
	"testing"

	"ssam/internal/dataset"
	"ssam/internal/knn"
	"ssam/internal/vec"
)

func TestKMTreeExhaustiveRecall(t *testing.T) {
	ds := smallDataset(900, 16)
	dev, err := NewFloat(DefaultConfig(4), ds.Data, ds.Dim(), vec.Euclidean)
	if err != nil {
		t.Fatal(err)
	}
	ti, err := dev.BuildKMTreeIndex(4, 8, 3)
	if err != nil {
		t.Fatal(err)
	}
	gt := knn.GroundTruth(ds.Data, ds.Dim(), ds.Queries, 5, 1)
	var recall float64
	for i, q := range ds.Queries {
		res, st, err := ti.Search(q, 5, ds.N())
		if err != nil {
			t.Fatal(err)
		}
		if st.Cycles == 0 {
			t.Fatal("no cycles")
		}
		recall += dataset.Recall(gt[i], res)
	}
	recall /= float64(len(ds.Queries))
	if recall < 0.9 {
		t.Fatalf("exhaustive on-device k-means tree recall = %v", recall)
	}
}

func TestKMTreeBudgetTradeoff(t *testing.T) {
	cfg := DefaultConfig(4)
	cfg.PUsPerVault = 1
	ds := smallDataset(4000, 16)
	dev, err := NewFloat(cfg, ds.Data, ds.Dim(), vec.Euclidean)
	if err != nil {
		t.Fatal(err)
	}
	ti, err := dev.BuildKMTreeIndex(4, 8, 3)
	if err != nil {
		t.Fatal(err)
	}
	gt := knn.GroundTruth(ds.Data, ds.Dim(), ds.Queries, 5, 1)
	eval := func(checks int) (float64, uint64) {
		var recall float64
		var cycles uint64
		for i, q := range ds.Queries {
			res, st, err := ti.Search(q, 5, checks)
			if err != nil {
				t.Fatal(err)
			}
			recall += dataset.Recall(gt[i], res)
			cycles += st.Cycles
		}
		return recall / float64(len(ds.Queries)), cycles
	}
	lowR, lowC := eval(8)
	highR, highC := eval(80)
	if highC <= lowC {
		t.Fatalf("budget knob did not increase work: %d vs %d", lowC, highC)
	}
	if highR < lowR-0.02 {
		t.Fatalf("recall fell with budget: %v -> %v", lowR, highR)
	}
	if highR < 0.75 {
		t.Fatalf("high-budget recall = %v", highR)
	}
	// Bounded search beats the linear scan on big shards.
	var linCycles uint64
	for _, q := range ds.Queries {
		_, st, err := dev.Search(q, 5)
		if err != nil {
			t.Fatal(err)
		}
		linCycles += st.Cycles
	}
	if lowC >= linCycles {
		t.Fatalf("bounded tree search (%d) not cheaper than linear (%d)", lowC, linCycles)
	}
}

func TestKMTreeSelfQuery(t *testing.T) {
	ds := smallDataset(700, 12)
	dev, err := NewFloat(DefaultConfig(2), ds.Data, ds.Dim(), vec.Euclidean)
	if err != nil {
		t.Fatal(err)
	}
	ti, err := dev.BuildKMTreeIndex(4, 8, 9)
	if err != nil {
		t.Fatal(err)
	}
	hits := 0
	for i := 0; i < 700; i += 70 {
		res, _, err := ti.Search(ds.Row(i), 1, 24)
		if err != nil {
			t.Fatal(err)
		}
		if len(res) > 0 && res[0].ID == i && res[0].Dist == 0 {
			hits++
		}
	}
	// Greedy descent can occasionally route a boundary point away from
	// its own bucket; the vast majority must land.
	if hits < 8 {
		t.Fatalf("self-query hits = %d/10", hits)
	}
}

func TestKMTreeErrors(t *testing.T) {
	ds := smallDataset(200, 8)
	dev, err := NewFloat(DefaultConfig(4), ds.Data, ds.Dim(), vec.Euclidean)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dev.BuildKMTreeIndex(1, 8, 1); err == nil {
		t.Fatal("branching=1 accepted")
	}
	mdev, err := NewFloat(DefaultConfig(4), ds.Data, ds.Dim(), vec.Manhattan)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mdev.BuildKMTreeIndex(4, 8, 1); err == nil {
		t.Fatal("k-means tree on Manhattan device accepted")
	}
	ti, err := dev.BuildKMTreeIndex(4, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := ti.Search(make([]float32, 2), 3, 8); err == nil {
		t.Fatal("wrong-dim query accepted")
	}
	if _, _, err := ti.Search(ds.Queries[0], 3, 0); err == nil {
		t.Fatal("zero budget accepted")
	}
}
