package ssamdev

import (
	"math"
	"testing"

	"ssam/internal/dataset"
	"ssam/internal/vec"
)

func TestAssignCentroidsMatchesHost(t *testing.T) {
	ds := smallDataset(400, 16)
	dev, err := NewFloat(DefaultConfig(4), ds.Data, ds.Dim(), vec.Euclidean)
	if err != nil {
		t.Fatal(err)
	}
	// Three well-separated centroids.
	centroids := [][]float32{ds.Queries[0], ds.Queries[1], ds.Queries[2]}
	assign, st, err := dev.AssignCentroids(centroids)
	if err != nil {
		t.Fatal(err)
	}
	if len(assign) != ds.N() {
		t.Fatalf("got %d assignments", len(assign))
	}
	if st.Cycles == 0 || st.PUs == 0 {
		t.Fatalf("no stats: %+v", st)
	}
	// Host reference with the same quantization.
	shift := dev.Shift()
	qc := make([][]int32, len(centroids))
	for c, row := range centroids {
		qc[c] = quantTest(row, shift)
	}
	mismatch := 0
	for id := 0; id < ds.N(); id++ {
		qrow := quantTest(ds.Row(id), shift)
		best, bestD := int32(0), int64(math.MaxInt64)
		for c := range qc {
			var acc int64
			for j := range qrow {
				d := int64(qrow[j]) - int64(qc[c][j])
				acc += d * d
			}
			// The kernel takes the last centroid on exact ties.
			if acc <= bestD {
				best, bestD = int32(c), acc
			}
		}
		if assign[id] != best {
			mismatch++
		}
	}
	if mismatch > ds.N()/100 {
		t.Fatalf("%d/%d assignments disagree with host reference", mismatch, ds.N())
	}
}

func quantTest(v []float32, shift int) []int32 {
	out := make([]int32, len(v))
	scale := float64(int64(1) << uint(shift))
	for i, x := range v {
		f := float64(x) * scale
		if f >= 0 {
			out[i] = int32(f + 0.5)
		} else {
			out[i] = int32(f - 0.5)
		}
	}
	return out
}

func TestAssignCentroidsErrors(t *testing.T) {
	ds := smallDataset(100, 8)
	dev, err := NewFloat(DefaultConfig(4), ds.Data, ds.Dim(), vec.Euclidean)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := dev.AssignCentroids(nil); err == nil {
		t.Fatal("no centroids accepted")
	}
	if _, _, err := dev.AssignCentroids([][]float32{make([]float32, 3)}); err == nil {
		t.Fatal("wrong-dim centroid accepted")
	}
	// Too many centroids for the scratchpad.
	big := make([][]float32, 2000)
	for i := range big {
		big[i] = make([]float32, 8)
	}
	if _, _, err := dev.AssignCentroids(big); err == nil {
		t.Fatal("scratch overflow not detected")
	}
}

func TestDimensionStatsMatchHost(t *testing.T) {
	ds := smallDataset(300, 16)
	dev, err := NewFloat(DefaultConfig(4), ds.Data, ds.Dim(), vec.Euclidean)
	if err != nil {
		t.Fatal(err)
	}
	sum, sumsq, st, err := dev.DimensionStats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Cycles == 0 {
		t.Fatal("no cycles")
	}
	for j := 0; j < ds.Dim(); j++ {
		var hs, hq float64
		for i := 0; i < ds.N(); i++ {
			v := float64(ds.Row(i)[j])
			hs += v
			hq += v * v
		}
		if math.Abs(sum[j]-hs) > 0.02*(1+math.Abs(hs)) {
			t.Fatalf("dim %d: device sum %v, host %v", j, sum[j], hs)
		}
		if math.Abs(sumsq[j]-hq) > 0.02*(1+hq) {
			t.Fatalf("dim %d: device sumsq %v, host %v", j, sumsq[j], hq)
		}
	}
}

func TestTopVarianceDims(t *testing.T) {
	// Construct data where dimension variance is known: dim j has
	// variance growing with j.
	n, dim := 500, 8
	data := make([]float32, n*dim)
	for i := 0; i < n; i++ {
		sign := float32(1)
		if i%2 == 0 {
			sign = -1
		}
		for j := 0; j < dim; j++ {
			data[i*dim+j] = sign * float32(j)
		}
	}
	dev, err := NewFloat(DefaultConfig(2), data, dim, vec.Euclidean)
	if err != nil {
		t.Fatal(err)
	}
	top, _, err := dev.TopVarianceDims(3)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{7, 6, 5}
	for i, w := range want {
		if top[i] != w {
			t.Fatalf("TopVarianceDims = %v, want %v", top, want)
		}
	}
}

func TestTrainKMeansConverges(t *testing.T) {
	ds := dataset.Generate(dataset.Spec{
		Name: "train", N: 600, Dim: 12, NumQueries: 1, K: 4,
		Clusters: 4, ClusterStd: 0.1, Seed: 91,
	})
	dev, err := NewFloat(DefaultConfig(4), ds.Data, ds.Dim(), vec.Euclidean)
	if err != nil {
		t.Fatal(err)
	}
	centroids, st, err := dev.TrainKMeans(4, 6, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(centroids) != 4 || st.Cycles == 0 {
		t.Fatalf("train output: %d centroids, %d cycles", len(centroids), st.Cycles)
	}
	// Quality check: mean distance of points to the nearest trained
	// centroid should be far below the mean pairwise distance.
	assignDist := 0.0
	for i := 0; i < ds.N(); i++ {
		best := math.MaxFloat64
		for _, c := range centroids {
			if d := vec.SquaredL2(ds.Row(i), c); d < best {
				best = d
			}
		}
		assignDist += best
	}
	assignDist /= float64(ds.N())
	spread := 0.0
	for i := 0; i < 100; i++ {
		spread += vec.SquaredL2(ds.Row(i), ds.Row((i+ds.N()/2)%ds.N()))
	}
	spread /= 100
	if assignDist > spread/4 {
		t.Fatalf("k-means quality poor: within-cluster %v vs spread %v", assignDist, spread)
	}
}

func TestTrainKMeansErrors(t *testing.T) {
	ds := smallDataset(50, 8)
	dev, err := NewFloat(DefaultConfig(4), ds.Data, ds.Dim(), vec.Euclidean)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := dev.TrainKMeans(0, 1, 1); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, _, err := dev.TrainKMeans(100, 1, 1); err == nil {
		t.Fatal("k>n accepted")
	}
}

func TestHammingDeviceRejectsBuildOps(t *testing.T) {
	ds := smallDataset(100, 64)
	dev, err := NewBinary(DefaultConfig(4), ds.ToBinary())
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := dev.AssignCentroids([][]float32{make([]float32, 2)}); err == nil {
		t.Fatal("AssignCentroids on Hamming device accepted")
	}
	if _, _, _, err := dev.DimensionStats(); err == nil {
		t.Fatal("DimensionStats on Hamming device accepted")
	}
}

func TestClusterMatchesSingleDevice(t *testing.T) {
	ds := smallDataset(600, 16)
	single, err := NewFloat(DefaultConfig(4), ds.Data, ds.Dim(), vec.Euclidean)
	if err != nil {
		t.Fatal(err)
	}
	cl, err := NewFloatCluster(DefaultConfig(4), ds.Data, ds.Dim(), vec.Euclidean, 3)
	if err != nil {
		t.Fatal(err)
	}
	if cl.Modules() != 3 {
		t.Fatalf("Modules = %d, want 3", cl.Modules())
	}
	if cl.N() != ds.N() {
		t.Fatalf("N = %d", cl.N())
	}
	for _, qi := range []int{0, 3} {
		a, _, err := single.Search(ds.Queries[qi], 6)
		if err != nil {
			t.Fatal(err)
		}
		b, st, err := cl.Search(ds.Queries[qi], 6)
		if err != nil {
			t.Fatal(err)
		}
		if st.Seconds <= 0 || st.PUs <= single.TotalPUs() {
			t.Fatalf("cluster stats implausible: %+v", st)
		}
		for i := range a {
			if a[i].ID != b[i].ID {
				t.Fatalf("query %d result %d: single %d, cluster %d", qi, i, a[i].ID, b[i].ID)
			}
		}
	}
}

func TestClusterCapacitySharding(t *testing.T) {
	cfg := DefaultConfig(4)
	cfg.HMC.CapacityBytes = 8 * 1024 // force multiple modules
	ds := smallDataset(300, 16)
	cl, err := NewFloatCluster(cfg, ds.Data, ds.Dim(), vec.Euclidean, 1)
	if err != nil {
		t.Fatal(err)
	}
	if cl.Modules() < 2 {
		t.Fatalf("expected capacity-driven sharding, got %d modules", cl.Modules())
	}
	res, _, err := cl.Search(ds.Row(250), 1)
	if err != nil {
		t.Fatal(err)
	}
	if res[0].ID != 250 {
		t.Fatalf("self query across shards = %+v", res[0])
	}
}

func TestClusterErrors(t *testing.T) {
	ds := smallDataset(100, 8)
	if _, err := NewFloatCluster(DefaultConfig(4), ds.Data, 7, vec.Euclidean, 1); err == nil {
		t.Fatal("ragged data accepted")
	}
	cl, err := NewFloatCluster(DefaultConfig(4), ds.Data, 8, vec.Euclidean, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := cl.Search(make([]float32, 3), 1); err == nil {
		t.Fatal("wrong-dim query accepted")
	}
}
