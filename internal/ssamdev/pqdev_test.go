package ssamdev

import (
	"testing"

	"ssam/internal/dataset"
	"ssam/internal/knn"
	"ssam/internal/pq"
	"ssam/internal/vec"
)

func pqTestData(t *testing.T) *dataset.Dataset {
	t.Helper()
	return dataset.Generate(dataset.Spec{
		Name: "pqdev", N: 1200, Dim: 16, NumQueries: 16, K: 10,
		Clusters: 12, ClusterStd: 0.3, Seed: 21,
	})
}

func pqTestEngine(t *testing.T, ds *dataset.Dataset, rerank int) *knn.PQEngine {
	t.Helper()
	e, err := knn.NewPQEngine(ds.Data, ds.Dim(), vec.Euclidean,
		knn.PQParams{M: 4, Sample: 1024, Rerank: rerank, Seed: 3}, 1)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestAttachPQIndex(t *testing.T) {
	ds := pqTestData(t)
	dev, err := NewFloat(DefaultConfig(4), ds.Data, ds.Dim(), vec.Euclidean)
	if err != nil {
		t.Fatal(err)
	}
	e := pqTestEngine(t, ds, 32)
	pi, err := dev.AttachPQIndex(e)
	if err != nil {
		t.Fatal(err)
	}
	if pi.Engine() != e {
		t.Fatal("Engine() does not return the attached engine")
	}

	// Shape mismatch: an engine over a different database is refused.
	other, err := knn.NewPQEngine(ds.Data[:ds.Dim()*300], ds.Dim(), vec.Euclidean,
		knn.PQParams{M: 4, Sample: 256, Seed: 3}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dev.AttachPQIndex(other); err == nil {
		t.Fatal("mismatched engine shape accepted")
	}
	// Metric mismatch.
	manh, err := NewFloat(DefaultConfig(4), ds.Data, ds.Dim(), vec.Manhattan)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := manh.AttachPQIndex(e); err == nil {
		t.Fatal("Manhattan device accepted a Euclidean engine")
	}
	// Binary devices have no float rows to re-rank against.
	codes := make([]vec.Binary, 64)
	for i := range codes {
		codes[i] = vec.NewBinary(64)
	}
	bin, err := NewBinary(DefaultConfig(4), codes)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := bin.AttachPQIndex(e); err == nil {
		t.Fatal("binary device accepted a pq index")
	}
}

// TestPQDeviceResultsAndModel pins that device execution returns the
// host engine's exact neighbors and that the modeled stats track the
// ADC work counters — in particular the §IV bandwidth story: the scan
// streams one code byte per subquantizer per row, so DRAM traffic is
// n·M plus the query broadcast plus the re-ranked rows, far below the
// float scan's n·dim·4.
func TestPQDeviceResultsAndModel(t *testing.T) {
	ds := pqTestData(t)
	dev, err := NewFloat(DefaultConfig(4), ds.Data, ds.Dim(), vec.Euclidean)
	if err != nil {
		t.Fatal(err)
	}
	e := pqTestEngine(t, ds, 32)
	pi, err := dev.AttachPQIndex(e)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range ds.Queries {
		hres, hst := e.SearchStats(q, 10)
		dres, dst, err := pi.Search(q, 10)
		if err != nil {
			t.Fatal(err)
		}
		if len(hres) != len(dres) {
			t.Fatalf("host %d results, device %d", len(hres), len(dres))
		}
		for j := range hres {
			if hres[j] != dres[j] {
				t.Fatalf("rank %d: host %+v != device %+v", j, hres[j], dres[j])
			}
		}
		wantDRAM := uint64(hst.CodeEvals)*uint64(e.M()) +
			uint64(dev.dim)*4 +
			uint64(hst.DistEvals)*uint64(dev.padded)*4
		if dst.DRAMBytesRead != wantDRAM {
			t.Fatalf("DRAMBytesRead = %d, want %d", dst.DRAMBytesRead, wantDRAM)
		}
		if floatScan := uint64(ds.N()*ds.Dim()) * 4; dst.DRAMBytesRead >= floatScan {
			t.Fatalf("code-stream traffic %d not below float-scan %d", dst.DRAMBytesRead, floatScan)
		}
		if dst.Cycles == 0 || dst.Seconds <= 0 || dst.VectorInsts == 0 ||
			dst.PUs != dev.TotalPUs() || dst.PQInserts != uint64(hst.PQInserts) {
			t.Fatalf("implausible model stats %+v for work %+v", dst, hst)
		}
		// The table build alone lower-bounds the cycle count.
		minCycles := uint64(float64(pq.Ks*dev.dim) / float64(dev.cfg.PU.VectorLen))
		if dst.Cycles < minCycles {
			t.Fatalf("cycles %d below table-build floor %d", dst.Cycles, minCycles)
		}
	}

	if _, _, err := pi.Search(ds.Queries[0][:4], 10); err == nil {
		t.Fatal("bad query dim accepted")
	}
	if _, _, err := pi.Search(ds.Queries[0], 0); err == nil {
		t.Fatal("k=0 accepted")
	}
}

// TestPQDeviceRerankScalesWork checks the knob feeds the model: a
// deeper re-rank fetches more full-precision rows and costs more
// device time and traffic.
func TestPQDeviceRerankScalesWork(t *testing.T) {
	ds := pqTestData(t)
	dev, err := NewFloat(DefaultConfig(4), ds.Data, ds.Dim(), vec.Euclidean)
	if err != nil {
		t.Fatal(err)
	}
	e := pqTestEngine(t, ds, 0)
	pi, err := dev.AttachPQIndex(e)
	if err != nil {
		t.Fatal(err)
	}
	var shallowCycles, shallowDRAM uint64
	for _, q := range ds.Queries {
		_, st, err := pi.Search(q, 10)
		if err != nil {
			t.Fatal(err)
		}
		shallowCycles += st.Cycles
		shallowDRAM += st.DRAMBytesRead
	}
	e.SetRerank(400)
	var deepCycles, deepDRAM uint64
	for _, q := range ds.Queries {
		_, st, err := pi.Search(q, 10)
		if err != nil {
			t.Fatal(err)
		}
		deepCycles += st.Cycles
		deepDRAM += st.DRAMBytesRead
	}
	if deepCycles <= shallowCycles {
		t.Fatalf("rerank=400 cost %d cycles <= rerank=0 cost %d", deepCycles, shallowCycles)
	}
	if deepDRAM <= shallowDRAM {
		t.Fatalf("rerank=400 traffic %d <= rerank=0 traffic %d", deepDRAM, shallowDRAM)
	}
}
