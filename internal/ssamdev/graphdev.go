package ssamdev

import (
	"fmt"

	"ssam/internal/graph"
	"ssam/internal/topk"
	"ssam/internal/vec"
)

// GraphIndex maps best-first graph traversal onto the SSAM module the
// way NDSEARCH (arXiv:2312.03141) does: the adjacency lives in vault
// DRAM, so each traversal hop is a dependent neighbor-list fetch
// charged at the vault access latency, while the hop's candidate batch
// of distance evaluations is dispatched to the vault-parallel distance
// kernel at the calibrated per-vector rate. Unlike the scratchpad tree
// indexes (tree.go), which execute on the cycle simulator, the graph
// mapping is analytic — the ApproxQuerySeconds style of model — because
// traversal is data-dependent pointer chasing the batch kernels cannot
// express. Results come from the same host-built graph.Index, so
// Device execution returns bit-identical neighbors to Host execution;
// only the reported QueryStats differ.
type GraphIndex struct {
	dev *Device
	g   *graph.Index
}

// Graph returns the attached host-built index (the EfSearch knob lives
// there, shared by both execution targets).
func (gi *GraphIndex) Graph() *graph.Index { return gi.g }

// AttachGraphIndex attaches a host-built graph to the device. The
// device must be a float Euclidean module over the same database shape
// (the graph traverses squared-L2 space, like the other approximate
// device indexes).
func (d *Device) AttachGraphIndex(g *graph.Index) (*GraphIndex, error) {
	if d.metric != vec.Euclidean {
		return nil, fmt.Errorf("ssamdev: graph index requires a Euclidean device, have %v", d.metric)
	}
	if g.N() != d.n || g.Dim() != d.dim {
		return nil, fmt.Errorf("ssamdev: graph shape %dx%d does not match device %dx%d",
			g.N(), g.Dim(), d.n, d.dim)
	}
	return &GraphIndex{dev: d, g: g}, nil
}

// Search runs one query through the graph at its current EfSearch beam
// and returns the neighbors with modeled device execution stats.
func (gi *GraphIndex) Search(q []float32, k int) ([]topk.Result, QueryStats, error) {
	return gi.SearchEf(q, k, gi.g.EfSearch)
}

// SearchEf is Search with an explicit beam width.
func (gi *GraphIndex) SearchEf(q []float32, k, ef int) ([]topk.Result, QueryStats, error) {
	if len(q) != gi.dev.dim {
		return nil, QueryStats{}, fmt.Errorf("ssamdev: query dim %d, want %d", len(q), gi.dev.dim)
	}
	if k <= 0 {
		return nil, QueryStats{}, fmt.Errorf("ssamdev: k must be positive")
	}
	res, st := gi.g.SearchEfStats(q, k, ef)
	return res, gi.model(st), nil
}

// model converts traversal work into device execution stats.
//
// Traversal is a serial dependence chain on one PU's scalar unit: each
// hop issues a neighbor-list read into vault DRAM (MemLatencyCycles —
// pointer chasing cannot be prefetched) plus the visit bookkeeping,
// and every candidate-heap operation pays the scalar heap charge. The
// hop's distance evaluations are batched to the module's PUs exactly
// like a bucket scan: parallelism is the average candidate batch per
// hop, capped by the module's PU count, at the calibrated
// cycles-per-vector rate. DRAM traffic counts the fetched vectors at
// device layout width plus one word per adjacency entry read.
func (gi *GraphIndex) model(st graph.Stats) QueryStats {
	d := gi.dev
	memLat := float64(d.cfg.PU.MemLatencyCycles)
	serial := float64(st.Hops)*(memLat+cyclesPerNodeVisit) +
		float64(st.HeapOps)*cyclesPerHeapOp

	par := 1.0
	if st.Hops > 0 {
		par = float64(st.DistEvals) / float64(st.Hops)
	}
	if par < 1 {
		par = 1
	}
	if max := float64(len(d.slices)); par > max {
		par = max
	}
	scan := float64(st.DistEvals) * d.cyclesPer / par

	cycles := uint64(serial + scan)
	chunks := uint64((d.padded + d.cfg.PU.VectorLen - 1) / d.cfg.PU.VectorLen)
	// Per distance: one load, one subtract, one multiply-accumulate per
	// vector chunk — the Table II Euclidean inner loop.
	vecInsts := uint64(st.DistEvals) * chunks * 3
	return QueryStats{
		Cycles:        cycles,
		Seconds:       float64(cycles) / d.cfg.PU.ClockHz,
		Instructions:  vecInsts + uint64(st.Hops) + uint64(st.HeapOps),
		VectorInsts:   vecInsts,
		DRAMBytesRead: uint64(st.DistEvals)*uint64(d.padded)*4 + uint64(st.NeighborFetches)*4,
		PQInserts:     uint64(st.HeapOps),
		PUs:           len(d.slices),
	}
}
