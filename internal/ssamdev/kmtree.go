package ssamdev

// On-device hierarchical k-means tree search: nodes in the scratchpad,
// centroids in SSAM memory (Section III-D), traversal on the scalar
// unit + hardware stack, centroid evaluation and leaf scans on the
// vector unit.

import (
	"fmt"

	"ssam/internal/asm"
	"ssam/internal/isa"
	"ssam/internal/sim"
	"ssam/internal/topk"
	"ssam/internal/vec"
)

// KMTreeIndex is a built on-device hierarchical k-means tree.
type KMTreeIndex struct {
	dev       *Device
	branching int
	slices    []kmSlice
	progs     map[progKey][]isa.Inst
}

type kmSlice struct {
	scratch []int32 // serialized nodes (at the layout's TreeBase)
	dram    []int32 // tree-order rows followed by the centroid array
	ids     []int32 // tree-order row -> global id
	lay     sim.KMTreeLayout
}

type progKey struct {
	checks   int
	centBase int
}

// BuildKMTreeIndex builds a per-PU k-means tree with the given
// branching factor and leaf size.
func (d *Device) BuildKMTreeIndex(branching, leafSize int, seed int64) (*KMTreeIndex, error) {
	if d.metric != vec.Euclidean {
		return nil, fmt.Errorf("ssamdev: k-means tree requires a Euclidean device")
	}
	if branching < 2 || branching > 16 {
		return nil, fmt.Errorf("ssamdev: branching %d out of range [2,16]", branching)
	}
	puCfg := d.puConfig(1)
	ti := &KMTreeIndex{dev: d, branching: branching, progs: map[progKey][]isa.Inst{}}
	for i := range d.slices {
		sl := &d.slices[i]
		n := len(sl.ids)
		lay := sim.NewKMTreeLayout(d.dim, d.cfg.PU.VectorLen, puCfg.ScratchWords, branching, n)
		if lay.MaxNodes < 3 {
			return nil, fmt.Errorf("ssamdev: dims %d leave no scratchpad room for a tree", d.dim)
		}
		tree, err := sim.BuildSerializedKMTree(sl.dram, n, d.dim, d.padded,
			branching, leafSize, lay.MaxNodes, seed+int64(i))
		if err != nil {
			return nil, fmt.Errorf("ssamdev: slice %d: %w", i, err)
		}
		ks := kmSlice{
			scratch: tree.Words,
			dram:    make([]int32, n*d.padded+len(tree.Cents)),
			ids:     make([]int32, n),
			lay:     lay,
		}
		for newRow, oldRow := range tree.Order {
			copy(ks.dram[newRow*d.padded:(newRow+1)*d.padded],
				sl.dram[int(oldRow)*d.padded:(int(oldRow)+1)*d.padded])
			ks.ids[newRow] = sl.ids[oldRow]
		}
		copy(ks.dram[lay.CentBase:], tree.Cents)
		ti.slices = append(ti.slices, ks)
	}
	return ti, nil
}

func (t *KMTreeIndex) program(checks, centBase int) ([]isa.Inst, error) {
	key := progKey{checks, centBase}
	if p, ok := t.progs[key]; ok {
		return p, nil
	}
	// The layout differs between slices only in CentBase (shard sizes
	// differ by one row), so kernels are cached per (checks, CentBase).
	lay := t.slices[0].lay
	lay.CentBase = centBase
	src := sim.KMTreeKernel(t.dev.dim, t.dev.cfg.PU.VectorLen, checks, lay)
	prog, err := asm.Assemble(src)
	if err != nil {
		return nil, err
	}
	t.progs[key] = prog
	return prog, nil
}

// Search runs the on-device approximate search with a per-PU scan
// budget.
func (t *KMTreeIndex) Search(q []float32, k, checksPerPU int) ([]topk.Result, QueryStats, error) {
	d := t.dev
	if len(q) != d.dim {
		return nil, QueryStats{}, fmt.Errorf("ssamdev: query dim %d, want %d", len(q), d.dim)
	}
	if checksPerPU <= 0 {
		return nil, QueryStats{}, fmt.Errorf("ssamdev: checks must be positive")
	}
	query := make([]int32, d.padded)
	copy(query, sim.QuantizeDevice(q, d.shift))
	puCfg := d.puConfig(((k + topk.QueueDepth - 1) / topk.QueueDepth) * topk.QueueDepth)

	results := make([][]topk.Result, len(t.slices))
	outs := make([]sim.Stats, len(t.slices))
	errs := make([]error, len(t.slices))
	runParallel(len(t.slices), func(i int) {
		ks := &t.slices[i]
		prog, err := t.program(checksPerPU, ks.lay.CentBase)
		if err != nil {
			errs[i] = err
			return
		}
		pu := sim.New(puCfg, ks.dram)
		if err := pu.WriteScratch(0, query); err != nil {
			errs[i] = err
			return
		}
		if err := pu.WriteScratch(ks.lay.TreeBase, ks.scratch); err != nil {
			errs[i] = err
			return
		}
		if err := pu.Run(prog); err != nil {
			errs[i] = err
			return
		}
		local := pu.Results()
		for j := range local {
			local[j].ID = int(ks.ids[local[j].ID])
		}
		results[i] = local
		outs[i] = pu.Stats()
	})

	var st QueryStats
	st.PUs = len(t.slices)
	lists := make([][]topk.Result, 0, len(t.slices))
	for i := range outs {
		if errs[i] != nil {
			return nil, QueryStats{}, errs[i]
		}
		lists = append(lists, results[i])
		s := outs[i]
		if s.Cycles > st.Cycles {
			st.Cycles = s.Cycles
		}
		st.Instructions += s.Instructions
		st.VectorInsts += s.VectorInsts
		st.DRAMBytesRead += s.DRAMBytesRead
		st.PQInserts += s.PQInserts
	}
	st.Seconds = float64(st.Cycles) / d.cfg.PU.ClockHz
	return topk.Merge(k, lists...), st, nil
}
