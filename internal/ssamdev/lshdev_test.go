package ssamdev

import (
	"math/rand"
	"testing"

	"ssam/internal/knn"
	"ssam/internal/vec"
)

func testUniform(n, dim int, seed int64) []float32 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]float32, n*dim)
	for i := range out {
		out[i] = float32(rng.NormFloat64())
	}
	return out
}

func TestLSHIndexSelfQuery(t *testing.T) {
	ds := smallDataset(800, 16)
	dev, err := NewFloat(DefaultConfig(4), ds.Data, ds.Dim(), vec.Euclidean)
	if err != nil {
		t.Fatal(err)
	}
	x, err := dev.BuildLSHIndex(2, 6, 3)
	if err != nil {
		t.Fatal(err)
	}
	// A database vector hashes to its own bucket in every table.
	for _, i := range []int{0, 250, 799} {
		res, st, err := x.Search(ds.Row(i), 3)
		if err != nil {
			t.Fatal(err)
		}
		if len(res) == 0 || res[0].ID != i || res[0].Dist != 0 {
			t.Fatalf("self query %d -> %+v", i, res)
		}
		if st.Cycles == 0 || st.PQInserts == 0 {
			t.Fatalf("no stats: %+v", st)
		}
	}
}

func TestLSHIndexRecallClustered(t *testing.T) {
	cfg := DefaultConfig(4)
	cfg.PUsPerVault = 1
	ds := smallDataset(4000, 16)
	dev, err := NewFloat(cfg, ds.Data, ds.Dim(), vec.Euclidean)
	if err != nil {
		t.Fatal(err)
	}
	x, err := dev.BuildLSHIndex(4, 5, 7)
	if err != nil {
		t.Fatal(err)
	}
	gt := knn.GroundTruth(ds.Data, ds.Dim(), ds.Queries, 5, 1)
	var hits, total int
	var scanned, n uint64
	for i, q := range ds.Queries {
		res, st, err := x.Search(q, 5)
		if err != nil {
			t.Fatal(err)
		}
		scanned += st.PQInserts
		n += uint64(ds.N())
		in := map[int]bool{}
		for _, r := range gt[i] {
			in[r.ID] = true
		}
		for _, r := range res {
			total++
			if in[r.ID] {
				hits++
			}
		}
	}
	recall := float64(hits) / float64(total)
	if recall < 0.3 {
		t.Fatalf("single-probe device LSH recall = %v, want well above chance", recall)
	}
	// The buckets must prune: far fewer candidates scored than a full
	// scan (hyperplanes through the origin keep clusters together, so
	// pruning is modest on clustered data — the paper uses 20 bits).
	if frac := float64(scanned) / float64(n); frac > 0.9 {
		t.Fatalf("scanned fraction = %v, buckets did not prune at all", frac)
	}
}

func TestLSHIndexCheaperOnUniform(t *testing.T) {
	// Uniform data splits into balanced orthants: hashing plus tiny
	// bucket scans must undercut the full linear scan.
	cfg := DefaultConfig(4)
	cfg.PUsPerVault = 1
	n, dim := 4000, 16
	data := testUniform(n, dim, 19)
	dev, err := NewFloat(cfg, data, dim, vec.Euclidean)
	if err != nil {
		t.Fatal(err)
	}
	x, err := dev.BuildLSHIndex(4, 7, 7)
	if err != nil {
		t.Fatal(err)
	}
	q := testUniform(1, dim, 20)
	_, lst, err := dev.Search(q, 5)
	if err != nil {
		t.Fatal(err)
	}
	_, xst, err := x.Search(q, 5)
	if err != nil {
		t.Fatal(err)
	}
	if xst.Cycles >= lst.Cycles {
		t.Fatalf("LSH (%d cycles) not cheaper than linear (%d) on uniform data",
			xst.Cycles, lst.Cycles)
	}
}

func TestLSHIndexMatchesHostHashing(t *testing.T) {
	// Bucket membership computed at build time (host integer dot) must
	// agree with the kernel's runtime hashing: querying with a database
	// row must scan a bucket containing that row in every table, so it
	// always reports itself at distance zero even with 1 bit tables.
	ds := smallDataset(300, 8)
	dev, err := NewFloat(DefaultConfig(2), ds.Data, ds.Dim(), vec.Euclidean)
	if err != nil {
		t.Fatal(err)
	}
	x, err := dev.BuildLSHIndex(1, 1, 11)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 300; i += 37 {
		res, _, err := x.Search(ds.Row(i), 1)
		if err != nil {
			t.Fatal(err)
		}
		if len(res) == 0 || res[0].Dist != 0 {
			t.Fatalf("row %d not found in its own bucket: %v", i, res)
		}
	}
}

func TestMultiProbeImprovesRecall(t *testing.T) {
	cfg := DefaultConfig(4)
	cfg.PUsPerVault = 1
	ds := smallDataset(3000, 16)
	dev, err := NewFloat(cfg, ds.Data, ds.Dim(), vec.Euclidean)
	if err != nil {
		t.Fatal(err)
	}
	x, err := dev.BuildLSHIndex(2, 7, 13)
	if err != nil {
		t.Fatal(err)
	}
	gt := knn.GroundTruth(ds.Data, ds.Dim(), ds.Queries, 5, 1)
	recallOf := func() (float64, uint64) {
		var hits, total int
		var scanned uint64
		for i, q := range ds.Queries {
			res, st, err := x.Search(q, 5)
			if err != nil {
				t.Fatal(err)
			}
			scanned += st.PQInserts
			in := map[int]bool{}
			for _, r := range gt[i] {
				in[r.ID] = true
			}
			for _, r := range res {
				total++
				if in[r.ID] {
					hits++
				}
			}
		}
		return float64(hits) / float64(total), scanned
	}
	single, singleScan := recallOf()
	x.MultiProbe = true
	multi, multiScan := recallOf()
	if multiScan <= singleScan {
		t.Fatalf("multi-probe scanned %d candidates, single %d", multiScan, singleScan)
	}
	if multi < single {
		t.Fatalf("multi-probe recall %v below single-probe %v", multi, single)
	}
	if multi < 0.5 {
		t.Fatalf("multi-probe recall = %v", multi)
	}
}

func TestLSHIndexErrors(t *testing.T) {
	ds := smallDataset(100, 8)
	dev, err := NewFloat(DefaultConfig(4), ds.Data, ds.Dim(), vec.Euclidean)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dev.BuildLSHIndex(0, 4, 1); err == nil {
		t.Fatal("tables=0 accepted")
	}
	if _, err := dev.BuildLSHIndex(2, 20, 1); err == nil {
		t.Fatal("bits=20 accepted (2^20 offsets per PU)")
	}
	mdev, err := NewFloat(DefaultConfig(4), ds.Data, ds.Dim(), vec.Manhattan)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mdev.BuildLSHIndex(2, 4, 1); err == nil {
		t.Fatal("LSH on Manhattan device accepted")
	}
	x, err := dev.BuildLSHIndex(2, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := x.Search(make([]float32, 3), 5); err == nil {
		t.Fatal("wrong-dim query accepted")
	}
}
