package ssamdev

import "fmt"

// Storage models a flash tier behind the module's vault DRAM — the
// ann_in_ssd arrangement, where the dataset lives on the SSD's NAND
// and only a budgeted fraction stays cached in device DRAM. The model
// is analytic, like the PQ and graph mappings: neighbors are
// unaffected (the same bytes are eventually delivered), only the
// reported QueryStats grow a storage component.
//
// Per query, the bytes the scan reads split by the cache fraction
// budget/dataset into DRAM hits and flash misses. Misses are fetched
// in PageBytes units across Channels independent channels, each
// sustaining QueueDepth outstanding reads: the channel array completes
// ceil(missPages / (Channels*QueueDepth)) "waves", each paying
// ReadLatency once (the ann_in_ssd channel-level parallelism model),
// while the data itself streams at Bandwidth. With Prefetch the
// transfer overlaps the compute the scan is doing anyway, so only the
// excess — plus one latency to fill the pipeline — stalls the query;
// without it the scan waits for the full storage time.
type StorageConfig struct {
	// Channels is the number of independent flash channels and
	// QueueDepth the outstanding reads each sustains.
	Channels   int
	QueueDepth int
	// ReadLatency is the per-read flash access latency in seconds and
	// Bandwidth the aggregate internal bandwidth in bytes/second.
	ReadLatency float64
	Bandwidth   float64
	// PageBytes is the flash read unit.
	PageBytes int
	// BudgetBytes caps the device-DRAM cache (0 = whole dataset
	// resident, storage only pays the compulsory fill, modeled as free
	// steady-state).
	BudgetBytes int64
	// Prefetch overlaps flash reads with the scan's compute.
	Prefetch bool
}

// DefaultStorageConfig returns the mid-grade ann_in_ssd device point:
// 8 channels at queue depth 64, 60us reads, 6 GB/s internal bandwidth,
// 16 KiB pages.
func DefaultStorageConfig() StorageConfig {
	return StorageConfig{
		Channels:    8,
		QueueDepth:  64,
		ReadLatency: 60e-6,
		Bandwidth:   6e9,
		PageBytes:   16 << 10,
	}
}

// AttachStorage puts the device's dataset behind a modeled storage
// tier. Zero-valued geometry fields take the DefaultStorageConfig
// values; negative values are rejected.
func (d *Device) AttachStorage(cfg StorageConfig) error {
	def := DefaultStorageConfig()
	if cfg.Channels == 0 {
		cfg.Channels = def.Channels
	}
	if cfg.QueueDepth == 0 {
		cfg.QueueDepth = def.QueueDepth
	}
	if cfg.ReadLatency == 0 {
		cfg.ReadLatency = def.ReadLatency
	}
	if cfg.Bandwidth == 0 {
		cfg.Bandwidth = def.Bandwidth
	}
	if cfg.PageBytes == 0 {
		cfg.PageBytes = def.PageBytes
	}
	if cfg.Channels < 0 || cfg.QueueDepth < 0 || cfg.ReadLatency < 0 ||
		cfg.Bandwidth < 0 || cfg.PageBytes < 0 {
		return fmt.Errorf("ssamdev: storage geometry must be non-negative: %+v", cfg)
	}
	if cfg.BudgetBytes < 0 {
		return fmt.Errorf("ssamdev: storage budget must be non-negative, got %d", cfg.BudgetBytes)
	}
	d.storage = &cfg
	return nil
}

// Storage returns the attached storage model, or nil.
func (d *Device) Storage() *StorageConfig { return d.storage }

// DatasetBytes is the logical dataset size the storage tier holds:
// full-precision rows for float devices, packed words for Hamming.
func (d *Device) DatasetBytes() uint64 {
	return uint64(d.n) * uint64(d.dim) * 4
}

// applyStorage folds the storage tier into one query's stats. The
// scan read st.DRAMBytesRead from vault DRAM; the cache fraction
// budget/dataset of those bytes were resident, the rest came off
// flash first. No-op without attached storage.
func (d *Device) applyStorage(st QueryStats) QueryStats {
	s := d.storage
	if s == nil {
		return st
	}
	total := st.DRAMBytesRead
	hitFrac := 1.0
	if ds := d.DatasetBytes(); s.BudgetBytes > 0 && uint64(s.BudgetBytes) < ds {
		hitFrac = float64(s.BudgetBytes) / float64(ds)
	}
	missBytes := uint64(float64(total) * (1 - hitFrac))
	pageB := uint64(s.PageBytes)
	totalPages := (total + pageB - 1) / pageB
	missPages := (missBytes + pageB - 1) / pageB
	st.StorageBytesRead = missBytes
	st.StorageCacheHits = totalPages - missPages
	if missPages == 0 {
		return st
	}

	waves := (missPages + uint64(s.Channels*s.QueueDepth) - 1) / uint64(s.Channels*s.QueueDepth)
	storageSec := float64(missBytes)/s.Bandwidth + float64(waves)*s.ReadLatency
	stallSec := storageSec
	if s.Prefetch {
		// The transfer hides behind the compute already accounted in
		// st.Seconds; only the excess plus the pipeline-fill latency
		// stalls the query. Prefetching never loses to blocking reads,
		// so the stall is capped at the blocking storage time.
		over := storageSec - st.Seconds
		if over < 0 {
			over = 0
		}
		if ps := over + s.ReadLatency; ps < stallSec {
			stallSec = ps
		}
	}
	st.StorageStalls = waves
	st.Seconds += stallSec
	st.Cycles += uint64(stallSec * d.cfg.PU.ClockHz)
	return st
}
