package ssamdev

import (
	"testing"

	"ssam/internal/dataset"
	"ssam/internal/knn"
	"ssam/internal/vec"
)

func TestTreeIndexExhaustiveRecall(t *testing.T) {
	ds := smallDataset(800, 16)
	dev, err := NewFloat(DefaultConfig(4), ds.Data, ds.Dim(), vec.Euclidean)
	if err != nil {
		t.Fatal(err)
	}
	ti, err := dev.BuildKDTreeIndex(8)
	if err != nil {
		t.Fatal(err)
	}
	gt := knn.GroundTruth(ds.Data, ds.Dim(), ds.Queries, 5, 1)
	// Budget large enough to scan every PU's whole subtree: exact.
	var recall float64
	for i, q := range ds.Queries {
		res, st, err := ti.Search(q, 5, ds.N())
		if err != nil {
			t.Fatal(err)
		}
		if st.Cycles == 0 || st.PUs == 0 {
			t.Fatalf("no stats: %+v", st)
		}
		recall += dataset.Recall(gt[i], res)
	}
	recall /= float64(len(ds.Queries))
	if recall < 0.9 {
		t.Fatalf("exhaustive on-device tree recall = %v", recall)
	}
}

func TestTreeIndexBudgetTradeoff(t *testing.T) {
	ds := smallDataset(1200, 16)
	dev, err := NewFloat(DefaultConfig(4), ds.Data, ds.Dim(), vec.Euclidean)
	if err != nil {
		t.Fatal(err)
	}
	ti, err := dev.BuildKDTreeIndex(8)
	if err != nil {
		t.Fatal(err)
	}
	gt := knn.GroundTruth(ds.Data, ds.Dim(), ds.Queries, 5, 1)

	eval := func(checks int) (recall float64, cycles uint64) {
		for i, q := range ds.Queries {
			res, st, err := ti.Search(q, 5, checks)
			if err != nil {
				t.Fatal(err)
			}
			recall += dataset.Recall(gt[i], res)
			cycles += st.Cycles
		}
		return recall / float64(len(ds.Queries)), cycles
	}
	lowR, lowC := eval(2)
	highR, highC := eval(64)
	if highC <= lowC {
		t.Fatalf("budget knob did not increase work: %d vs %d cycles", lowC, highC)
	}
	if highR < lowR-0.02 {
		t.Fatalf("recall fell with bigger budget: %v -> %v", lowR, highR)
	}
	if highR < 0.8 {
		t.Fatalf("high-budget recall = %v", highR)
	}
}

func TestTreeIndexSelfQuery(t *testing.T) {
	ds := smallDataset(600, 12)
	dev, err := NewFloat(DefaultConfig(2), ds.Data, ds.Dim(), vec.Euclidean)
	if err != nil {
		t.Fatal(err)
	}
	ti, err := dev.BuildKDTreeIndex(8)
	if err != nil {
		t.Fatal(err)
	}
	// A database vector descends to its own bucket: found with a tiny
	// budget.
	for _, i := range []int{5, 300, 599} {
		res, _, err := ti.Search(ds.Row(i), 1, 16)
		if err != nil {
			t.Fatal(err)
		}
		if len(res) == 0 || res[0].ID != i {
			t.Fatalf("self query %d -> %v", i, res)
		}
	}
}

func TestTreeIndexCheaperThanLinear(t *testing.T) {
	// Pin one PU per vault so each shard is big enough for pruning to
	// pay for the traversal overhead.
	cfg := DefaultConfig(4)
	cfg.PUsPerVault = 1
	ds := smallDataset(4000, 16)
	dev, err := NewFloat(cfg, ds.Data, ds.Dim(), vec.Euclidean)
	if err != nil {
		t.Fatal(err)
	}
	ti, err := dev.BuildKDTreeIndex(8)
	if err != nil {
		t.Fatal(err)
	}
	q := ds.Queries[0]
	_, linSt, err := dev.Search(q, 5)
	if err != nil {
		t.Fatal(err)
	}
	_, treeSt, err := ti.Search(q, 5, 8)
	if err != nil {
		t.Fatal(err)
	}
	if treeSt.Cycles >= linSt.Cycles {
		t.Fatalf("bounded tree search (%d cycles) not cheaper than linear scan (%d)",
			treeSt.Cycles, linSt.Cycles)
	}
}

func TestTreeIndexErrors(t *testing.T) {
	ds := smallDataset(200, 8)
	dev, err := NewFloat(DefaultConfig(4), ds.Data, ds.Dim(), vec.Euclidean)
	if err != nil {
		t.Fatal(err)
	}
	ti, err := dev.BuildKDTreeIndex(8)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := ti.Search(make([]float32, 3), 5, 10); err == nil {
		t.Fatal("wrong-dim query accepted")
	}
	if _, _, err := ti.Search(ds.Queries[0], 5, 0); err == nil {
		t.Fatal("zero budget accepted")
	}
	// Manhattan device cannot host the Euclidean traversal kernel.
	mdev, err := NewFloat(DefaultConfig(4), ds.Data, ds.Dim(), vec.Manhattan)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mdev.BuildKDTreeIndex(8); err == nil {
		t.Fatal("tree index on Manhattan device accepted")
	}
}

func TestTreeIndexStackDepthWithinHardware(t *testing.T) {
	// A deep tree (leaf size 1) must still traverse within the 64-deep
	// hardware stack on small shards.
	ds := smallDataset(700, 8)
	dev, err := NewFloat(DefaultConfig(2), ds.Data, ds.Dim(), vec.Euclidean)
	if err != nil {
		t.Fatal(err)
	}
	ti, err := dev.BuildKDTreeIndex(1)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := ti.Search(ds.Queries[0], 3, 4); err != nil {
		t.Fatalf("deep-tree traversal failed: %v", err)
	}
}
