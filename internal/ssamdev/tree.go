package ssamdev

// On-device kd-tree search: each processing unit holds a kd-tree over
// its own shard in the scratchpad (Section III-D: index structures
// live in the scratchpad) and traverses it with the scalar unit and
// hardware stack, scanning leaf buckets with the vector unit. The
// query is broadcast and every PU runs a bounded depth-first
// backtracking search over its subtree; the host merges the per-PU
// top-k lists. This is the fully simulated counterpart of the analytic
// ApproxQuerySeconds model.

import (
	"fmt"

	"ssam/internal/asm"
	"ssam/internal/isa"
	"ssam/internal/sim"
	"ssam/internal/topk"
	"ssam/internal/vec"
)

// treeSlice is one PU's tree-ordered shard image.
type treeSlice struct {
	scratch []int32 // serialized tree (placed at the layout's TreeBase)
	dram    []int32 // rows re-laid in tree order
	ids     []int32 // tree-order row -> global id
}

// TreeIndex is a built on-device kd-tree over a Device's dataset.
type TreeIndex struct {
	dev      *Device
	lay      sim.TreeScratchLayout
	slices   []treeSlice
	leafSize int
	progs    map[int][]isa.Inst // keyed by checks
}

// BuildKDTreeIndex builds a per-PU scratchpad-resident kd-tree with
// the given leaf bucket size. Errors if any PU's tree cannot fit in
// the scratchpad alongside the query.
func (d *Device) BuildKDTreeIndex(leafSize int) (*TreeIndex, error) {
	if d.metric != vec.Euclidean {
		return nil, fmt.Errorf("ssamdev: kd-tree index requires a Euclidean device")
	}
	puCfg := d.puConfig(1)
	lay := sim.TreeLayout(d.dim, d.cfg.PU.VectorLen, puCfg.ScratchWords)
	if lay.MaxNodes < 3 {
		return nil, fmt.Errorf("ssamdev: dims %d leave no scratchpad room for a tree", d.dim)
	}
	ti := &TreeIndex{dev: d, lay: lay, leafSize: leafSize, progs: map[int][]isa.Inst{}}
	for i := range d.slices {
		sl := &d.slices[i]
		n := len(sl.ids)
		tree, err := sim.BuildSerializedTree(sl.dram, n, d.dim, d.padded, leafSize, lay.MaxNodes)
		if err != nil {
			return nil, fmt.Errorf("ssamdev: slice %d: %w", i, err)
		}
		ts := treeSlice{
			scratch: tree.Words,
			dram:    make([]int32, len(sl.dram)),
			ids:     make([]int32, n),
		}
		for newRow, oldRow := range tree.Order {
			copy(ts.dram[newRow*d.padded:(newRow+1)*d.padded],
				sl.dram[int(oldRow)*d.padded:(int(oldRow)+1)*d.padded])
			ts.ids[newRow] = sl.ids[oldRow]
		}
		ti.slices = append(ti.slices, ts)
	}
	return ti, nil
}

// program returns the traversal kernel for a per-PU check budget.
func (t *TreeIndex) program(checks int) ([]isa.Inst, error) {
	if p, ok := t.progs[checks]; ok {
		return p, nil
	}
	src := sim.KDTreeKernel(t.dev.dim, t.dev.cfg.PU.VectorLen, checks, t.lay)
	prog, err := asm.Assemble(src)
	if err != nil {
		return nil, err
	}
	t.progs[checks] = prog
	return prog, nil
}

// Search runs the on-device approximate search: every PU scans at most
// checksPerPU vectors from its subtree's closest buckets.
func (t *TreeIndex) Search(q []float32, k, checksPerPU int) ([]topk.Result, QueryStats, error) {
	d := t.dev
	if len(q) != d.dim {
		return nil, QueryStats{}, fmt.Errorf("ssamdev: query dim %d, want %d", len(q), d.dim)
	}
	if checksPerPU <= 0 {
		return nil, QueryStats{}, fmt.Errorf("ssamdev: checks must be positive")
	}
	query := make([]int32, d.padded)
	copy(query, sim.QuantizeDevice(q, d.shift))
	prog, err := t.program(checksPerPU)
	if err != nil {
		return nil, QueryStats{}, err
	}
	puCfg := d.puConfig(((k + topk.QueueDepth - 1) / topk.QueueDepth) * topk.QueueDepth)

	results := make([][]topk.Result, len(t.slices))
	outs := make([]sim.Stats, len(t.slices))
	errs := make([]error, len(t.slices))
	runParallel(len(t.slices), func(idx int) {
		ts := &t.slices[idx]
		pu := sim.New(puCfg, ts.dram)
		if err := pu.WriteScratch(0, query); err != nil {
			errs[idx] = err
			return
		}
		if err := pu.WriteScratch(t.lay.TreeBase, ts.scratch); err != nil {
			errs[idx] = err
			return
		}
		if err := pu.Run(prog); err != nil {
			errs[idx] = err
			return
		}
		local := pu.Results()
		for j := range local {
			local[j].ID = int(ts.ids[local[j].ID])
		}
		results[idx] = local
		outs[idx] = pu.Stats()
	})

	var st QueryStats
	st.PUs = len(t.slices)
	lists := make([][]topk.Result, 0, len(t.slices))
	for idx := range outs {
		if errs[idx] != nil {
			return nil, QueryStats{}, errs[idx]
		}
		lists = append(lists, results[idx])
		s := outs[idx]
		if s.Cycles > st.Cycles {
			st.Cycles = s.Cycles
		}
		st.Instructions += s.Instructions
		st.VectorInsts += s.VectorInsts
		st.DRAMBytesRead += s.DRAMBytesRead
		st.PQInserts += s.PQInserts
	}
	st.Seconds = float64(st.Cycles) / d.cfg.PU.ClockHz
	return topk.Merge(k, lists...), st, nil
}
