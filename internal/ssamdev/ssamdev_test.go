package ssamdev

import (
	"testing"

	"ssam/internal/dataset"
	"ssam/internal/knn"
	"ssam/internal/sim"
	"ssam/internal/vec"
)

func smallDataset(n, dim int) *dataset.Dataset {
	return dataset.Generate(dataset.Spec{
		Name: "dev", N: n, Dim: dim, NumQueries: 5, K: 8,
		Clusters: 8, ClusterStd: 0.3, Seed: 17,
	})
}

func TestDeviceMatchesHostEuclidean(t *testing.T) {
	ds := smallDataset(600, 24)
	dev, err := NewFloat(DefaultConfig(4), ds.Data, ds.Dim(), vec.Euclidean)
	if err != nil {
		t.Fatal(err)
	}
	gt := knn.GroundTruth(ds.Data, ds.Dim(), ds.Queries, 8, 1)
	var recall float64
	for i, q := range ds.Queries {
		res, st, err := dev.Search(q, 8)
		if err != nil {
			t.Fatal(err)
		}
		if len(res) != 8 {
			t.Fatalf("got %d results", len(res))
		}
		if st.Cycles == 0 || st.Seconds <= 0 {
			t.Fatalf("no cycles charged: %+v", st)
		}
		recall += dataset.Recall(gt[i], res)
	}
	recall /= float64(len(ds.Queries))
	if recall < 0.9 {
		t.Fatalf("device recall vs float host = %v, want >= 0.9", recall)
	}
}

func TestDeviceCoversWholeDatabase(t *testing.T) {
	ds := smallDataset(333, 8) // odd size: uneven shards
	dev, err := NewFloat(DefaultConfig(2), ds.Data, ds.Dim(), vec.Euclidean)
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[int32]bool)
	total := 0
	for _, sl := range dev.slices {
		for _, id := range sl.ids {
			if seen[id] {
				t.Fatalf("id %d in two slices", id)
			}
			seen[id] = true
			total++
		}
	}
	if total != ds.N() {
		t.Fatalf("slices cover %d of %d vectors", total, ds.N())
	}
}

func TestDeviceSelfQuery(t *testing.T) {
	ds := smallDataset(400, 16)
	dev, err := NewFloat(DefaultConfig(8), ds.Data, ds.Dim(), vec.Euclidean)
	if err != nil {
		t.Fatal(err)
	}
	for _, i := range []int{0, 199, 399} {
		res, _, err := dev.Search(ds.Row(i), 1)
		if err != nil {
			t.Fatal(err)
		}
		if res[0].ID != i {
			t.Fatalf("self query %d returned %d", i, res[0].ID)
		}
	}
}

func TestDeviceHamming(t *testing.T) {
	ds := smallDataset(500, 64)
	codes := ds.ToBinary()
	dev, err := NewBinary(DefaultConfig(4), codes)
	if err != nil {
		t.Fatal(err)
	}
	he := knn.NewHammingEngine(codes, 1)
	for _, i := range []int{3, 77, 250} {
		res, st, err := dev.SearchBinary(codes[i], 5)
		if err != nil {
			t.Fatal(err)
		}
		want := he.Search(codes[i], 5)
		for j := range res {
			if res[j].Dist != want[j].Dist {
				t.Fatalf("query %d result %d: device dist %v, host %v", i, j, res[j].Dist, want[j].Dist)
			}
		}
		if res[0].ID != i {
			t.Fatalf("self query %d returned %d", i, res[0].ID)
		}
		if st.Cycles == 0 {
			t.Fatal("no cycles")
		}
	}
}

func TestAutoReplication(t *testing.T) {
	ds := smallDataset(300, 32)
	for _, vl := range []int{2, 16} {
		dev, err := NewFloat(DefaultConfig(vl), ds.Data, ds.Dim(), vec.Euclidean)
		if err != nil {
			t.Fatal(err)
		}
		if dev.PUsPerVault() < 1 || dev.PUsPerVault() > 8 {
			t.Fatalf("VL=%d: PUsPerVault = %d", vl, dev.PUsPerVault())
		}
		if dev.CyclesPerVector() <= 0 {
			t.Fatal("no calibration")
		}
	}
}

func TestWiderVectorsFaster(t *testing.T) {
	ds := smallDataset(800, 32)
	var prev float64
	for i, vl := range []int{2, 8} {
		dev, err := NewFloat(DefaultConfig(vl), ds.Data, ds.Dim(), vec.Euclidean)
		if err != nil {
			t.Fatal(err)
		}
		_, st, err := dev.Search(ds.Queries[0], 8)
		if err != nil {
			t.Fatal(err)
		}
		if i > 0 && st.Seconds >= prev {
			t.Fatalf("VL=%d (%vs) not faster than narrower (%vs)", vl, st.Seconds, prev)
		}
		prev = st.Seconds
	}
}

func TestFixedPUsPerVault(t *testing.T) {
	ds := smallDataset(300, 8)
	cfg := DefaultConfig(4)
	cfg.PUsPerVault = 3
	dev, err := NewFloat(cfg, ds.Data, ds.Dim(), vec.Euclidean)
	if err != nil {
		t.Fatal(err)
	}
	if dev.PUsPerVault() != 3 {
		t.Fatalf("PUsPerVault = %d, want 3", dev.PUsPerVault())
	}
}

func TestLargeKChainsQueues(t *testing.T) {
	ds := smallDataset(400, 8)
	dev, err := NewFloat(DefaultConfig(4), ds.Data, ds.Dim(), vec.Euclidean)
	if err != nil {
		t.Fatal(err)
	}
	res, _, err := dev.Search(ds.Queries[0], 40) // > one 16-entry stage
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 40 {
		t.Fatalf("got %d results, want 40", len(res))
	}
	gt := knn.GroundTruth(ds.Data, ds.Dim(), ds.Queries[:1], 40, 1)
	if r := dataset.Recall(gt[0], res); r < 0.85 {
		t.Fatalf("k=40 recall = %v", r)
	}
}

func TestErrorPaths(t *testing.T) {
	ds := smallDataset(100, 8)
	if _, err := NewFloat(DefaultConfig(4), ds.Data, 7, vec.Euclidean); err == nil {
		t.Fatal("no error on ragged data")
	}
	if _, err := NewFloat(DefaultConfig(4), ds.Data, 8, vec.HammingMetric); err == nil {
		t.Fatal("no error on Hamming via NewFloat")
	}
	if _, err := NewBinary(DefaultConfig(4), nil); err == nil {
		t.Fatal("no error on empty binary set")
	}
	dev, err := NewFloat(DefaultConfig(4), ds.Data, 8, vec.Euclidean)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := dev.Search(make([]float32, 3), 5); err == nil {
		t.Fatal("no error on wrong query dim")
	}
	if _, _, err := dev.SearchBinary(vec.NewBinary(8), 5); err == nil {
		t.Fatal("no error on binary search of float device")
	}
}

func TestCapacityGuard(t *testing.T) {
	cfg := DefaultConfig(4)
	cfg.HMC.CapacityBytes = 1024
	ds := smallDataset(200, 16)
	if _, err := NewFloat(cfg, ds.Data, ds.Dim(), vec.Euclidean); err == nil {
		t.Fatal("no error when dataset exceeds module capacity")
	}
}

func TestApproxQuerySeconds(t *testing.T) {
	ds := smallDataset(400, 16)
	dev, err := NewFloat(DefaultConfig(4), ds.Data, ds.Dim(), vec.Euclidean)
	if err != nil {
		t.Fatal(err)
	}
	small := dev.ApproxQuerySeconds(ApproxWork{DistEvals: 100, LeafScans: 4, NodeVisits: 20, HeapOps: 10})
	big := dev.ApproxQuerySeconds(ApproxWork{DistEvals: 10000, LeafScans: 4, NodeVisits: 20, HeapOps: 10})
	if small <= 0 || big <= small {
		t.Fatalf("approx model not monotone: %v vs %v", small, big)
	}
	// More buckets means more scan parallelism at equal evals.
	wide := dev.ApproxQuerySeconds(ApproxWork{DistEvals: 10000, LeafScans: 64, NodeVisits: 20, HeapOps: 10})
	if wide >= big {
		t.Fatalf("parallel scan (%v) not faster than serial (%v)", wide, big)
	}
}

func TestQueryStatsThroughput(t *testing.T) {
	st := QueryStats{Seconds: 0.001}
	if st.Throughput() != 1000 {
		t.Fatalf("Throughput = %v", st.Throughput())
	}
	if (QueryStats{}).Throughput() != 0 {
		t.Fatal("zero-seconds throughput should be 0")
	}
}

func TestDeviceShiftExposed(t *testing.T) {
	ds := smallDataset(100, 100)
	dev, err := NewFloat(DefaultConfig(4), ds.Data, ds.Dim(), vec.Euclidean)
	if err != nil {
		t.Fatal(err)
	}
	if dev.Shift() != sim.DeviceShift(100) {
		t.Fatalf("Shift = %d", dev.Shift())
	}
	if dev.N() != 100 || dev.TotalPUs() <= 0 {
		t.Fatalf("accessors: N=%d PUs=%d", dev.N(), dev.TotalPUs())
	}
}
