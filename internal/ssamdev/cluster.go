package ssamdev

// Multi-module composition (Section III-A/III-B): "HMC modules can be
// composed together, these additional links and SSAM modules allows us
// to scale up the capacity of the system". A Cluster shards a dataset
// that exceeds one module's capacity across several SSAM modules; the
// host broadcasts each query over the external links and performs the
// final global top-k reduction, whose traffic is "a fraction of the
// original dataset size".

import (
	"fmt"

	"ssam/internal/topk"
	"ssam/internal/vec"
)

// Cluster is a set of SSAM modules serving one logical dataset.
type Cluster struct {
	cfg     Config
	devices []*Device
	offsets []int // global id of each device's first vector
	n       int
	dim     int
}

// NewFloatCluster shards data across as many modules as its footprint
// requires (at least minModules) and builds a device per shard.
func NewFloatCluster(cfg Config, data []float32, dim int, metric vec.Metric, minModules int) (*Cluster, error) {
	if dim <= 0 || len(data)%dim != 0 {
		return nil, fmt.Errorf("ssamdev: data length %d not a multiple of dim %d", len(data), dim)
	}
	n := len(data) / dim
	padded := paddedWords(dim, cfg.PU.VectorLen)
	bytes := int64(n) * int64(padded) * 4
	modules := cfg.HMC.ModulesNeeded(bytes)
	if modules < minModules {
		modules = minModules
	}
	if modules < 1 {
		modules = 1
	}
	c := &Cluster{cfg: cfg, n: n, dim: dim}
	per := (n + modules - 1) / modules
	for start := 0; start < n; start += per {
		end := start + per
		if end > n {
			end = n
		}
		dev, err := NewFloat(cfg, data[start*dim:end*dim], dim, metric)
		if err != nil {
			return nil, err
		}
		c.devices = append(c.devices, dev)
		c.offsets = append(c.offsets, start)
	}
	return c, nil
}

func paddedWords(dim, vlen int) int {
	if vlen <= 0 {
		vlen = 8
	}
	return (dim + vlen - 1) / vlen * vlen
}

// Modules returns the number of SSAM modules in the cluster.
func (c *Cluster) Modules() int { return len(c.devices) }

// N returns the logical dataset size.
func (c *Cluster) N() int { return c.n }

// Search broadcasts the query to every module and merges the per-
// module top-k on the host. Device latency is the slowest module
// (modules run in parallel); the host-side reduction adds the external
// link time for shipping each module's k results plus the broadcast of
// the query itself.
func (c *Cluster) Search(q []float32, k int) ([]topk.Result, QueryStats, error) {
	if len(q) != c.dim {
		return nil, QueryStats{}, fmt.Errorf("ssamdev: query dim %d, want %d", len(q), c.dim)
	}
	var st QueryStats
	lists := make([][]topk.Result, 0, len(c.devices))
	for i, dev := range c.devices {
		res, ds, err := dev.Search(q, k)
		if err != nil {
			return nil, QueryStats{}, err
		}
		for j := range res {
			res[j].ID += c.offsets[i]
		}
		lists = append(lists, res)
		if ds.Cycles > st.Cycles {
			st.Cycles = ds.Cycles
		}
		st.Instructions += ds.Instructions
		st.VectorInsts += ds.VectorInsts
		st.DRAMBytesRead += ds.DRAMBytesRead
		st.PQInserts += ds.PQInserts
		st.PUs += ds.PUs
	}
	st.Seconds = float64(st.Cycles) / c.cfg.PU.ClockHz
	// Link traffic: the query broadcast out plus (id, value) pairs
	// back from each module.
	queryBytes := int64(c.dim * 4)
	resultBytes := int64(len(c.devices) * k * 8)
	st.Seconds += c.cfg.HMC.LinkTime(queryBytes + resultBytes).Seconds()
	return topk.Merge(k, lists...), st, nil
}
