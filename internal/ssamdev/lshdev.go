package ssamdev

// On-device hyperplane LSH (Section III-D): hash-function weights live
// in SSAM memory, bucket lookups and scans run entirely on the
// processing units, and the host only merges per-PU top-k lists. Each
// PU hashes its own shard into per-table buckets at build time.

import (
	"fmt"
	"math/rand"

	"ssam/internal/asm"
	"ssam/internal/isa"
	"ssam/internal/sim"
	"ssam/internal/topk"
	"ssam/internal/vec"
)

// LSHIndex is a built on-device hyperplane LSH index.
type LSHIndex struct {
	dev    *Device
	tables int
	bits   int
	planes []int32 // tables*bits hyperplanes, padded words each, quantized
	slices []lshSlice
	// MultiProbe switches the kernel to static multi-probing: each
	// table additionally scans every single-bit perturbation of the
	// query's hash code (Bits extra probes per table).
	MultiProbe bool
}

type lshSlice struct {
	dram []int32 // rows + planes + offsets + entries, per LSHLayout
	lay  sim.LSHLayout
}

// BuildLSHIndex builds per-PU hash tables with the given table count
// and hash width (buckets per table = 2^bits). All PUs share one
// hyperplane set drawn from seed.
func (d *Device) BuildLSHIndex(tables, bits int, seed int64) (*LSHIndex, error) {
	if d.metric != vec.Euclidean {
		return nil, fmt.Errorf("ssamdev: LSH index requires a Euclidean device")
	}
	if tables < 1 || bits < 1 || bits > 16 {
		return nil, fmt.Errorf("ssamdev: tables=%d bits=%d out of range", tables, bits)
	}
	x := &LSHIndex{dev: d, tables: tables, bits: bits}

	// Hyperplanes quantized with the device shift (their magnitude is
	// ~N(0,1), the same regime as the data, so the squared-L2 overflow
	// bound covers the dot products too).
	rng := rand.New(rand.NewSource(seed))
	x.planes = make([]int32, tables*bits*d.padded)
	for p := 0; p < tables*bits; p++ {
		row := make([]float32, d.dim)
		for i := range row {
			row[i] = float32(rng.NormFloat64())
		}
		copy(x.planes[p*d.padded:], sim.QuantizeDevice(row, d.shift))
	}

	for i := range d.slices {
		sl := &d.slices[i]
		n := len(sl.ids)
		lay := sim.NewLSHLayout(n, d.padded, tables, bits)
		dram := make([]int32, lay.Total)
		copy(dram, sl.dram)
		copy(dram[lay.Planes:], x.planes)

		// Hash every row per table with the same integer arithmetic the
		// kernel uses.
		for t := 0; t < tables; t++ {
			codes := make([]int, n)
			counts := make([]int32, (1<<bits)+1)
			for r := 0; r < n; r++ {
				code := 0
				for b := 0; b < bits; b++ {
					plane := x.planes[(t*bits+b)*d.padded : (t*bits+b+1)*d.padded]
					var dot int64
					for w := 0; w < d.padded; w++ {
						dot += int64(sl.dram[r*d.padded+w]) * int64(plane[w])
					}
					if dot >= 0 {
						code |= 1 << uint(b)
					}
				}
				codes[r] = code
				counts[code+1]++
			}
			offBase := lay.Offsets + t*((1<<bits)+1)
			for c := 1; c <= 1<<bits; c++ {
				counts[c] += counts[c-1]
			}
			copy(dram[offBase:], counts)
			entBase := lay.Entries + t*n
			cursor := make([]int32, 1<<bits)
			copy(cursor, counts[:1<<bits])
			for r := 0; r < n; r++ {
				c := codes[r]
				dram[entBase+int(cursor[c])] = int32(r)
				cursor[c]++
			}
		}
		x.slices = append(x.slices, lshSlice{dram: dram, lay: lay})
	}

	// One kernel serves every slice shape except N, which only affects
	// the layout constants — but those are baked into the program, so
	// shapes must match; with near-equal shards they differ, so compile
	// per distinct layout lazily instead.
	return x, nil
}

// program assembles the kernel for one slice's layout.
func (x *LSHIndex) program(lay sim.LSHLayout) ([]isa.Inst, error) {
	var src string
	if x.MultiProbe {
		src = sim.MPLSHKernel(x.dev.dim, x.dev.cfg.PU.VectorLen, lay)
	} else {
		src = sim.LSHKernel(x.dev.dim, x.dev.cfg.PU.VectorLen, lay)
	}
	return asm.Assemble(src)
}

// Search hashes the query on every PU and scans the matching bucket of
// each table (single probe per table). Duplicate candidates scanned by
// several tables are deduplicated host-side.
func (x *LSHIndex) Search(q []float32, k int) ([]topk.Result, QueryStats, error) {
	d := x.dev
	if len(q) != d.dim {
		return nil, QueryStats{}, fmt.Errorf("ssamdev: query dim %d, want %d", len(q), d.dim)
	}
	query := make([]int32, d.padded)
	copy(query, sim.QuantizeDevice(q, d.shift))
	puCfg := d.puConfig(((k + topk.QueueDepth - 1) / topk.QueueDepth) * topk.QueueDepth * 2)

	results := make([][]topk.Result, len(x.slices))
	outs := make([]sim.Stats, len(x.slices))
	errs := make([]error, len(x.slices))
	runParallel(len(x.slices), func(i int) {
		ls := &x.slices[i]
		prog, err := x.program(ls.lay)
		if err != nil {
			errs[i] = err
			return
		}
		pu := sim.New(puCfg, ls.dram)
		if err := pu.WriteScratch(0, query); err != nil {
			errs[i] = err
			return
		}
		if err := pu.Run(prog); err != nil {
			errs[i] = err
			return
		}
		local := pu.Results()
		seen := make(map[int]bool, len(local))
		dedup := local[:0]
		for _, r := range local {
			if seen[r.ID] {
				continue
			}
			seen[r.ID] = true
			r.ID = int(d.slices[i].ids[r.ID])
			dedup = append(dedup, r)
		}
		results[i] = dedup
		outs[i] = pu.Stats()
	})

	var st QueryStats
	st.PUs = len(x.slices)
	lists := make([][]topk.Result, 0, len(x.slices))
	for i := range outs {
		if errs[i] != nil {
			return nil, QueryStats{}, errs[i]
		}
		lists = append(lists, results[i])
		s := outs[i]
		if s.Cycles > st.Cycles {
			st.Cycles = s.Cycles
		}
		st.Instructions += s.Instructions
		st.VectorInsts += s.VectorInsts
		st.DRAMBytesRead += s.DRAMBytesRead
		st.PQInserts += s.PQInserts
	}
	st.Seconds = float64(st.Cycles) / d.cfg.PU.ClockHz
	return topk.Merge(k, lists...), st, nil
}
