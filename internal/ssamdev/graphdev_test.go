package ssamdev

import (
	"testing"

	"ssam/internal/dataset"
	"ssam/internal/graph"
	"ssam/internal/vec"
)

func graphTestData(t *testing.T) *dataset.Dataset {
	t.Helper()
	return dataset.Generate(dataset.Spec{
		Name: "graphdev", N: 1200, Dim: 16, NumQueries: 16, K: 10,
		Clusters: 12, ClusterStd: 0.3, Seed: 21,
	})
}

func TestAttachGraphIndex(t *testing.T) {
	ds := graphTestData(t)
	dev, err := NewFloat(DefaultConfig(4), ds.Data, ds.Dim(), vec.Euclidean)
	if err != nil {
		t.Fatal(err)
	}
	g := graph.Build(ds.Data, ds.Dim(), graph.Params{M: 8, EfConstruction: 40, Seed: 1})
	gi, err := dev.AttachGraphIndex(g)
	if err != nil {
		t.Fatal(err)
	}
	if gi.Graph() != g {
		t.Fatal("Graph() does not return the attached index")
	}

	// Shape mismatch: a graph over a different database must be refused.
	other := graph.Build(ds.Data[:ds.Dim()*100], ds.Dim(), graph.Params{M: 4, Seed: 1})
	if _, err := dev.AttachGraphIndex(other); err == nil {
		t.Fatal("mismatched graph shape accepted")
	}
	// Metric mismatch: graph traversal is squared-L2.
	manh, err := NewFloat(DefaultConfig(4), ds.Data, ds.Dim(), vec.Manhattan)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := manh.AttachGraphIndex(g); err == nil {
		t.Fatal("non-Euclidean device accepted a graph index")
	}
}

// TestGraphDeviceResultsAndModel pins that device execution returns
// the host traversal's exact neighbors and that the modeled stats
// track the traversal work counters.
func TestGraphDeviceResultsAndModel(t *testing.T) {
	ds := graphTestData(t)
	dev, err := NewFloat(DefaultConfig(4), ds.Data, ds.Dim(), vec.Euclidean)
	if err != nil {
		t.Fatal(err)
	}
	g := graph.Build(ds.Data, ds.Dim(), graph.Params{M: 8, EfConstruction: 40, Seed: 1})
	gi, err := dev.AttachGraphIndex(g)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range ds.Queries {
		hres, hst := g.SearchStats(q, 10)
		dres, dst, err := gi.Search(q, 10)
		if err != nil {
			t.Fatal(err)
		}
		if len(hres) != len(dres) {
			t.Fatalf("host %d results, device %d", len(hres), len(dres))
		}
		for j := range hres {
			if hres[j] != dres[j] {
				t.Fatalf("rank %d: host %+v != device %+v", j, hres[j], dres[j])
			}
		}
		wantDRAM := uint64(hst.DistEvals)*uint64(dev.padded)*4 + uint64(hst.NeighborFetches)*4
		if dst.DRAMBytesRead != wantDRAM {
			t.Fatalf("DRAMBytesRead = %d, want %d", dst.DRAMBytesRead, wantDRAM)
		}
		if dst.Cycles == 0 || dst.Seconds <= 0 || dst.VectorInsts == 0 ||
			dst.PUs != dev.TotalPUs() || dst.PQInserts != uint64(hst.HeapOps) {
			t.Fatalf("implausible model stats %+v for work %+v", dst, hst)
		}
		// The serial traversal chain alone lower-bounds the cycle count:
		// each hop pays the vault access latency.
		minCycles := uint64(hst.Hops) * dev.cfg.PU.MemLatencyCycles
		if dst.Cycles < minCycles {
			t.Fatalf("cycles %d below traversal floor %d", dst.Cycles, minCycles)
		}
	}
}

// TestGraphDeviceEfScalesWork checks the knob feeds the model: a wider
// beam does more traversal work and therefore costs more device time.
func TestGraphDeviceEfScalesWork(t *testing.T) {
	ds := graphTestData(t)
	dev, err := NewFloat(DefaultConfig(4), ds.Data, ds.Dim(), vec.Euclidean)
	if err != nil {
		t.Fatal(err)
	}
	g := graph.Build(ds.Data, ds.Dim(), graph.Params{M: 8, EfConstruction: 40, Seed: 1})
	gi, err := dev.AttachGraphIndex(g)
	if err != nil {
		t.Fatal(err)
	}
	var narrow, wide uint64
	for _, q := range ds.Queries {
		_, st, err := gi.SearchEf(q, 10, 10)
		if err != nil {
			t.Fatal(err)
		}
		narrow += st.Cycles
		_, st, err = gi.SearchEf(q, 10, 200)
		if err != nil {
			t.Fatal(err)
		}
		wide += st.Cycles
	}
	if wide <= narrow {
		t.Fatalf("ef=200 cost %d cycles <= ef=10 cost %d", wide, narrow)
	}

	if _, _, err := gi.SearchEf(ds.Queries[0][:4], 10, 32); err == nil {
		t.Fatal("bad query dim accepted")
	}
	if _, _, err := gi.SearchEf(ds.Queries[0], 0, 32); err == nil {
		t.Fatal("k=0 accepted")
	}
}
