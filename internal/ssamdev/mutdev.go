package ssamdev

// ApproxLinearStats models a full linear scan over rows vectors without
// running the cycle simulator — the device cost of a query against a
// mutated region (internal/mutate), whose row population has changed
// since the device laid out its DRAM image. The cycle simulator scans a
// frozen layout, so mutated regions are priced analytically instead: a
// linear scan parallelizes perfectly across the module's PUs, each
// scanning an equal share at the calibrated cycles-per-vector rate, and
// every row costs the Table II inner loop (one load, one subtract, one
// multiply-accumulate per vector chunk) plus a queue offer.
func (d *Device) ApproxLinearStats(rows int) QueryStats {
	if rows < 0 {
		rows = 0
	}
	pus := len(d.slices)
	if pus == 0 {
		pus = 1
	}
	perPU := (rows + pus - 1) / pus
	cycles := uint64(float64(perPU) * d.cyclesPer)
	chunks := uint64((d.padded + d.cfg.PU.VectorLen - 1) / d.cfg.PU.VectorLen)
	vecInsts := uint64(rows) * chunks * 3
	return QueryStats{
		Cycles:        cycles,
		Seconds:       float64(cycles) / d.cfg.PU.ClockHz,
		Instructions:  vecInsts + uint64(rows),
		VectorInsts:   vecInsts,
		DRAMBytesRead: uint64(rows) * uint64(d.padded) * 4,
		PQInserts:     uint64(rows),
		PUs:           len(d.slices),
	}
}
