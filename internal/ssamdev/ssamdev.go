// Package ssamdev models a complete SSAM module (Section III): an HMC
// 2.0 whose logic layer carries one accelerator per vault controller,
// each accelerator holding enough processing units to saturate its
// vault's 10 GB/s ("we replicate processing units to fully use the
// memory bandwidth by measuring the peak bandwidth needs of each
// processing unit"). A query is broadcast to every processing unit;
// each PU runs the handwritten kernel over its contiguous slice of its
// vault's shard, leaves its local top-k in the hardware priority
// queue, and the host performs the final global top-k reduction.
//
// Everything on the data path is real: datasets are quantized to
// device fixed point, laid out per vault, and scanned by assembled
// Table II kernels executing on the cycle-level simulator. Query
// latency is the slowest PU's cycle count at the configured clock.
package ssamdev

import (
	"fmt"
	"math"
	"runtime"
	"sync"

	"ssam/internal/asm"
	"ssam/internal/hmc"
	"ssam/internal/isa"
	"ssam/internal/sim"
	"ssam/internal/topk"
	"ssam/internal/vec"
)

// Config selects the module geometry.
type Config struct {
	PU  sim.Config
	HMC hmc.Config
	// PUsPerVault fixes the replication factor; 0 sizes it
	// automatically from the kernel's measured bandwidth demand.
	PUsPerVault int
	// MaxAutoPUs caps automatic replication (layout area is finite).
	MaxAutoPUs int
}

// DefaultConfig returns an SSAM-n module (vector length n) on HMC 2.0.
func DefaultConfig(vlen int) Config {
	return Config{
		PU:         sim.DefaultConfig(vlen),
		HMC:        hmc.HMC2(),
		MaxAutoPUs: 8,
	}
}

// Device is a loaded SSAM module ready to serve queries.
type Device struct {
	cfg      Config
	metric   vec.Metric
	dim      int // dimensions (float metrics) or packed words (Hamming)
	origBits int // Hamming: code width in bits
	n        int
	shift    int // device fixed-point fraction bits (float metrics)
	padded   int // words per vector as laid out on device

	slices      []puSlice // one per processing unit, all vaults
	pusPerVault int
	storage     *StorageConfig // modeled flash tier (storagedev.go), nil = all-DRAM
	cyclesPer   float64        // calibrated cycles per scanned vector per PU
	progCache   map[int][]isa.Inst
	progMu      sync.Mutex
}

// puSlice is one processing unit's contiguous share of a vault shard.
type puSlice struct {
	vault int
	ids   []int32 // database ids, slice-local order
	dram  []int32 // padded fixed-point vectors
}

// QueryStats reports one query's simulated execution.
type QueryStats struct {
	Cycles        uint64 // slowest PU (device latency)
	Seconds       float64
	Instructions  uint64 // summed over PUs
	VectorInsts   uint64
	DRAMBytesRead uint64
	PQInserts     uint64
	PUs           int
	// Storage tier (attached via AttachStorage; zero otherwise): bytes
	// fetched from modeled flash, page requests served from the
	// device-side cache, and channel-array waves the scan stalled on.
	StorageBytesRead uint64
	StorageCacheHits uint64
	StorageStalls    uint64
}

// Throughput returns queries/second at the device clock.
func (s QueryStats) Throughput() float64 {
	if s.Seconds <= 0 {
		return 0
	}
	return 1 / s.Seconds
}

// NewFloat builds a device over a float database using the given
// metric (Euclidean, Manhattan or Cosine). Data is quantized to the
// per-dimensionality device fixed point and partitioned across vaults.
func NewFloat(cfg Config, data []float32, dim int, metric vec.Metric) (*Device, error) {
	if dim <= 0 || len(data)%dim != 0 {
		return nil, fmt.Errorf("ssamdev: data length %d not a multiple of dim %d", len(data), dim)
	}
	switch metric {
	case vec.Euclidean, vec.Manhattan, vec.Cosine:
	default:
		return nil, fmt.Errorf("ssamdev: NewFloat does not support metric %v", metric)
	}
	d := &Device{
		cfg:    cfg,
		metric: metric,
		dim:    dim,
		n:      len(data) / dim,
		shift:  sim.DeviceShift(dim),
		padded: sim.PadDims(dim, cfg.PU.VectorLen),
	}
	quant := func(i int) []int32 {
		return sim.QuantizeDevice(data[i*dim:(i+1)*dim], d.shift)
	}
	if err := d.layout(quant); err != nil {
		return nil, err
	}
	return d, nil
}

// NewBinary builds a Hamming-space device over bit-packed codes.
func NewBinary(cfg Config, codes []vec.Binary) (*Device, error) {
	if len(codes) == 0 {
		return nil, fmt.Errorf("ssamdev: empty code set")
	}
	words := sim.HammingWords(codes[0].Dim)
	d := &Device{
		cfg:      cfg,
		metric:   vec.HammingMetric,
		dim:      words,
		origBits: codes[0].Dim,
		n:        len(codes),
		padded:   sim.PadDims(words, cfg.PU.VectorLen),
	}
	pack := func(i int) []int32 {
		if codes[i].Dim != codes[0].Dim {
			panic("ssamdev: mixed code widths")
		}
		return packWords(codes[i], words)
	}
	if err := d.layout(pack); err != nil {
		return nil, err
	}
	return d, nil
}

func packWords(b vec.Binary, words int) []int32 {
	out := make([]int32, words)
	for w := 0; w < words; w++ {
		word := b.Words[w/2]
		if w%2 == 1 {
			word >>= 32
		}
		out[w] = int32(uint32(word))
	}
	return out
}

// layout partitions vectors across vaults and PU slices and calibrates
// replication.
func (d *Device) layout(fetch func(i int) []int32) error {
	bytesNeeded := int64(d.n) * int64(d.padded) * 4
	if !d.cfg.HMC.Fits(bytesNeeded) {
		return fmt.Errorf("ssamdev: dataset (%d bytes) exceeds module capacity %d; compose multiple modules",
			bytesNeeded, d.cfg.HMC.CapacityBytes)
	}
	d.progCache = make(map[int][]isa.Inst)

	// Calibrate cycles/vector with a probe PU over a small slice at
	// full vault bandwidth, then size replication so the PUs in a
	// vault together consume the vault's bandwidth.
	probeN := d.n
	if probeN > 64 {
		probeN = 64
	}
	probe := make([]int32, probeN*d.padded)
	for i := 0; i < probeN; i++ {
		copy(probe[i*d.padded:], fetch(i))
	}
	probeCfg := d.cfg.PU
	probeCfg.MemBytesPerCycle = d.cfg.HMC.VaultBandwidth / probeCfg.ClockHz
	pu := sim.New(probeCfg, probe)
	if err := pu.WriteScratch(0, make([]int32, d.padded)); err != nil {
		return err
	}
	prog, err := d.program(probeN)
	if err != nil {
		return err
	}
	if err := pu.Run(prog); err != nil {
		return fmt.Errorf("ssamdev: calibration run: %w", err)
	}
	d.cyclesPer = float64(pu.Stats().Cycles) / float64(probeN)

	// Replication is a design-time decision fixed by the *peak*
	// bandwidth kernel (the paper sizes PUs by "the peak bandwidth
	// needs of each processing unit across all indexing techniques"),
	// so cheaper kernels run on the same hardware rather than getting
	// extra units: cosine and Manhattan become compute-bound, Hamming
	// keeps the float design's replication rather than exploding it to
	// chase its tiny code footprint. The reference is therefore always
	// the Euclidean kernel over the workload's float dimensionality
	// (for binary devices, the bit width stands in for the original
	// float dimensionality it was binarized from).
	refCycles := d.cyclesPer
	refPadded := d.padded
	if d.metric != vec.Euclidean {
		refDim := d.dim
		if d.metric == vec.HammingMetric {
			refDim = d.origBits
		}
		refPadded = sim.PadDims(refDim, d.cfg.PU.VectorLen)
		refProbe := make([]int32, probeN*refPadded)
		refPU := sim.New(probeCfg, refProbe)
		if err := refPU.WriteScratch(0, make([]int32, refPadded)); err != nil {
			return err
		}
		refSrc := sim.EuclideanKernel(refDim, probeN, d.cfg.PU.VectorLen)
		refProg, err := asm.Assemble(refSrc)
		if err != nil {
			return err
		}
		if err := refPU.Run(refProg); err != nil {
			return fmt.Errorf("ssamdev: reference calibration run: %w", err)
		}
		refCycles = float64(refPU.Stats().Cycles) / float64(probeN)
	}

	d.pusPerVault = d.cfg.PUsPerVault
	if d.pusPerVault <= 0 {
		// Demand in bytes/cycle for one PU at full speed, at the
		// reference design point.
		demand := float64(refPadded*4) / refCycles
		vaultBytesPerCycle := d.cfg.HMC.VaultBandwidth / d.cfg.PU.ClockHz
		d.pusPerVault = int(math.Round(vaultBytesPerCycle / demand))
		if d.pusPerVault < 1 {
			d.pusPerVault = 1
		}
		max := d.cfg.MaxAutoPUs
		if max <= 0 {
			max = 8
		}
		if d.pusPerVault > max {
			d.pusPerVault = max
		}
	}

	// Build per-PU slices: vault shards split contiguously among PUs.
	parts := d.cfg.HMC.PartitionItems(d.n)
	for _, part := range parts {
		shardN := part.End - part.Start
		if shardN == 0 {
			continue
		}
		per := (shardN + d.pusPerVault - 1) / d.pusPerVault
		for lo := 0; lo < shardN; lo += per {
			hi := lo + per
			if hi > shardN {
				hi = shardN
			}
			sl := puSlice{
				vault: part.Vault,
				ids:   make([]int32, hi-lo),
				dram:  make([]int32, (hi-lo)*d.padded),
			}
			for i := lo; i < hi; i++ {
				global := part.Start + i
				sl.ids[i-lo] = int32(global)
				copy(sl.dram[(i-lo)*d.padded:], fetch(global))
			}
			d.slices = append(d.slices, sl)
		}
	}
	return nil
}

// program returns the assembled kernel for a slice of nvec vectors.
func (d *Device) program(nvec int) ([]isa.Inst, error) {
	d.progMu.Lock()
	defer d.progMu.Unlock()
	if p, ok := d.progCache[nvec]; ok {
		return p, nil
	}
	var src string
	vl := d.cfg.PU.VectorLen
	switch d.metric {
	case vec.Euclidean:
		src = sim.EuclideanKernel(d.dim, nvec, vl)
	case vec.Manhattan:
		src = sim.ManhattanKernel(d.dim, nvec, vl)
	case vec.Cosine:
		src = sim.CosineKernel(d.dim, nvec, vl)
	case vec.HammingMetric:
		src = sim.HammingKernel(d.dim, nvec, vl)
	default:
		return nil, fmt.Errorf("ssamdev: no kernel for metric %v", d.metric)
	}
	prog, err := asm.Assemble(src)
	if err != nil {
		return nil, fmt.Errorf("ssamdev: kernel assembly: %w", err)
	}
	if d.progCache == nil {
		d.progCache = make(map[int][]isa.Inst)
	}
	d.progCache[nvec] = prog
	return prog, nil
}

// N returns the database size.
func (d *Device) N() int { return d.n }

// PUsPerVault returns the replication factor chosen at layout time.
func (d *Device) PUsPerVault() int { return d.pusPerVault }

// TotalPUs returns the number of processing units on the module.
func (d *Device) TotalPUs() int { return len(d.slices) }

// CyclesPerVector returns the calibrated per-PU scan cost.
func (d *Device) CyclesPerVector() float64 { return d.cyclesPer }

// Shift returns the device fixed-point fraction bits.
func (d *Device) Shift() int { return d.shift }

// Search runs a float query against the device and returns the global
// top-k with simulated execution stats.
func (d *Device) Search(q []float32, k int) ([]topk.Result, QueryStats, error) {
	if d.metric == vec.HammingMetric {
		return nil, QueryStats{}, fmt.Errorf("ssamdev: float Search on a Hamming device")
	}
	if len(q) != d.dim {
		return nil, QueryStats{}, fmt.Errorf("ssamdev: query dim %d, want %d", len(q), d.dim)
	}
	query := make([]int32, d.padded)
	copy(query, sim.QuantizeDevice(q, d.shift))
	return d.run(query, k)
}

// SearchBinary runs a Hamming query against a binary device.
func (d *Device) SearchBinary(q vec.Binary, k int) ([]topk.Result, QueryStats, error) {
	if d.metric != vec.HammingMetric {
		return nil, QueryStats{}, fmt.Errorf("ssamdev: binary Search on a %v device", d.metric)
	}
	query := make([]int32, d.padded)
	copy(query, packWords(q, d.dim))
	return d.run(query, k)
}

// run broadcasts the query to every PU and reduces.
func (d *Device) run(query []int32, k int) ([]topk.Result, QueryStats, error) {
	type puOut struct {
		res   []topk.Result
		stats sim.Stats
		err   error
	}
	outs := make([]puOut, len(d.slices))

	puCfg := d.cfg.PU
	puCfg.MemBytesPerCycle = d.cfg.HMC.VaultBandwidth / puCfg.ClockHz / float64(d.pusPerVault)
	// Chain queue stages to cover k.
	if k > puCfg.QueueDepth {
		puCfg.QueueDepth = (k + topk.QueueDepth - 1) / topk.QueueDepth * topk.QueueDepth
	}

	workers := runtime.GOMAXPROCS(0)
	var wg sync.WaitGroup
	idx := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				sl := &d.slices[i]
				prog, err := d.program(len(sl.ids))
				if err != nil {
					outs[i].err = err
					continue
				}
				pu := sim.New(puCfg, sl.dram)
				if err := pu.WriteScratch(0, query); err != nil {
					outs[i].err = err
					continue
				}
				if err := pu.Run(prog); err != nil {
					outs[i].err = err
					continue
				}
				local := pu.Results()
				// Map slice-local ids to global ids.
				for j := range local {
					local[j].ID = int(sl.ids[local[j].ID])
				}
				outs[i].res = local
				outs[i].stats = pu.Stats()
			}
		}()
	}
	for i := range d.slices {
		idx <- i
	}
	close(idx)
	wg.Wait()

	var st QueryStats
	st.PUs = len(d.slices)
	lists := make([][]topk.Result, 0, len(outs))
	for i := range outs {
		if outs[i].err != nil {
			return nil, QueryStats{}, outs[i].err
		}
		lists = append(lists, outs[i].res)
		s := outs[i].stats
		if s.Cycles > st.Cycles {
			st.Cycles = s.Cycles
		}
		st.Instructions += s.Instructions
		st.VectorInsts += s.VectorInsts
		st.DRAMBytesRead += s.DRAMBytesRead
		st.PQInserts += s.PQInserts
	}
	st.Seconds = float64(st.Cycles) / d.cfg.PU.ClockHz
	st = d.applyStorage(st)
	return topk.Merge(k, lists...), st, nil
}

// ApproxWork summarizes the per-query work of an indexed (approximate)
// search, fed by the host-side index implementations.
type ApproxWork struct {
	DistEvals     int // database vectors scored in bucket scans
	LeafScans     int // distinct buckets scanned
	NodeVisits    int // interior traversal steps (scalar unit)
	HeapOps       int // backtracking heap operations (scalar unit)
	CentroidEvals int // centroid distances (vector math, one PU)
	HashDims      int // hash projection dimensions (vector math, one PU)
}

// Scalar-unit cycle charges for traversal steps, matching the kd-tree
// and backtracking code a PU would execute from scratchpad-resident
// indices (Section III-D).
const (
	cyclesPerNodeVisit = 8
	cyclesPerHeapOp    = 10
)

// ApproxQuerySeconds converts indexed-search work into device time
// (the Fig. 7 model): traversal and hashing run on one PU's scalar and
// vector units; bucket scans parallelize across PUs, at most one PU
// per scanned bucket.
func (d *Device) ApproxQuerySeconds(w ApproxWork) float64 {
	clock := d.cfg.PU.ClockHz
	vl := float64(d.cfg.PU.VectorLen)
	serial := float64(w.NodeVisits)*cyclesPerNodeVisit + float64(w.HeapOps)*cyclesPerHeapOp
	// Vector work executed on the querying PU: centroid distances and
	// hash projections, at the calibrated per-vector rate.
	serial += float64(w.CentroidEvals) * d.cyclesPer
	serial += float64(w.HashDims) / vl * 3 // mult+add per chunk plus load
	par := float64(w.LeafScans)
	if par < 1 {
		par = 1
	}
	if max := float64(len(d.slices)); par > max {
		par = max
	}
	scan := float64(w.DistEvals) * d.cyclesPer / par
	return (serial + scan) / clock
}
