package ssamdev

import (
	"fmt"

	"ssam/internal/knn"
	"ssam/internal/pq"
	"ssam/internal/topk"
)

// PQIndex maps the product-quantized scan onto the SSAM module — the
// §IV bandwidth story with quantization turned on. Per query, each
// vault's processing units hold the M×256 ADC lookup table resident in
// scratchpad (M·1 KiB, built once from the broadcast query and well
// inside the Table III scratchpad budget) and stream only the 8-bit
// code bytes from vault DRAM: one byte per subquantizer per row
// instead of a 4-byte word per dimension, so each DRAM byte performs a
// full table-lookup-accumulate of distance work. Like the graph
// mapping (graphdev.go) the model is analytic rather than cycle-level
// — the gather-indexed table lookup is not in the Table II kernel
// vocabulary — and results come from the attached host engine, so
// Device execution returns bit-identical neighbors to Host execution;
// only the reported QueryStats differ.
type PQIndex struct {
	dev       *Device
	e         *knn.PQEngine
	vaultRows []int // database rows laid out in each device vault
}

// Engine returns the attached host-built engine (the Rerank knob lives
// there, shared by both execution targets).
func (pi *PQIndex) Engine() *knn.PQEngine { return pi.e }

// AttachPQIndex attaches a host-built product-quantized engine to the
// device. The device must be a float module over the same database
// shape and metric.
func (d *Device) AttachPQIndex(e *knn.PQEngine) (*PQIndex, error) {
	if d.origBits != 0 {
		return nil, fmt.Errorf("ssamdev: pq index requires a float device")
	}
	if d.metric != e.Metric() {
		return nil, fmt.Errorf("ssamdev: pq engine metric %v does not match device %v", e.Metric(), d.metric)
	}
	if e.N() != d.n || e.Dim() != d.dim {
		return nil, fmt.Errorf("ssamdev: pq shape %dx%d does not match device %dx%d",
			e.N(), e.Dim(), d.n, d.dim)
	}
	rows := map[int]int{}
	maxVault := 0
	for _, sl := range d.slices {
		rows[sl.vault] += len(sl.ids)
		if sl.vault > maxVault {
			maxVault = sl.vault
		}
	}
	pi := &PQIndex{dev: d, e: e, vaultRows: make([]int, maxVault+1)}
	for v, n := range rows {
		pi.vaultRows[v] = n
	}
	return pi, nil
}

// Search runs one query through the attached engine and returns the
// neighbors with modeled device execution stats.
func (pi *PQIndex) Search(q []float32, k int) ([]topk.Result, QueryStats, error) {
	if len(q) != pi.dev.dim {
		return nil, QueryStats{}, fmt.Errorf("ssamdev: query dim %d, want %d", len(q), pi.dev.dim)
	}
	if k <= 0 {
		return nil, QueryStats{}, fmt.Errorf("ssamdev: k must be positive")
	}
	res, st := pi.e.SearchStats(q, k)
	return res, pi.model(st), nil
}

// model converts the host engine's work accounting into device
// execution stats.
//
// The query executes in three phases. (1) Table build: the broadcast
// query is scored against all 256 centroids of every subquantizer —
// Ks·dim multiply-accumulate lanes on the vector units, after which
// the table is scratchpad-resident in every vault. (2) ADC scan: each
// vault streams its rows' M code bytes from DRAM; its PUs retire
// VectorLen table-lookup-accumulates per cycle while the vault link
// delivers VaultBandwidth/ClockHz bytes per cycle, so the vault's scan
// time is the max of the compute and memory bounds — with 1-byte codes
// the stream is ~4·dim/M times lighter than the float32 scan, which is
// the whole point. Vaults run concurrently; the module waits for the
// slowest. (3) Re-rank: the top candidates' full-precision vectors are
// fetched and re-scored at the calibrated per-vector rate, a serial
// tail on the merge path. Top-k maintenance pays the scalar heap
// charge, spread across the PUs that produced the offers.
func (pi *PQIndex) model(st knn.Stats) QueryStats {
	d := pi.dev
	m := pi.e.M()
	vl := float64(d.cfg.PU.VectorLen)
	clock := d.cfg.PU.ClockHz

	tableLanes := float64(pq.Ks * d.dim)
	tableCycles := tableLanes / vl

	memBytesPerCycle := d.cfg.HMC.VaultBandwidth / clock
	var worst float64
	for _, rows := range pi.vaultRows {
		if rows == 0 {
			continue
		}
		bytes := float64(rows * m)
		compute := bytes / (vl * float64(d.pusPerVault))
		memory := bytes / memBytesPerCycle
		if compute > memory {
			memory = compute
		}
		if memory > worst {
			worst = memory
		}
	}

	heap := float64(st.PQInserts) * cyclesPerHeapOp / float64(len(d.slices))
	rerank := float64(st.DistEvals) * d.cyclesPer

	cycles := uint64(tableCycles + worst + heap + rerank)
	chunks := uint64((d.padded + d.cfg.PU.VectorLen - 1) / d.cfg.PU.VectorLen)
	// Vector work: 3 ops per table-build chunk (load, subtract,
	// multiply-accumulate), 2 per scanned code chunk (gather, add), 3
	// per re-rank chunk (the Table II inner loop).
	vecInsts := uint64(tableLanes/vl)*3 +
		uint64(float64(st.CodeEvals*m)/vl)*2 +
		uint64(st.DistEvals)*chunks*3
	return d.applyStorage(QueryStats{
		Cycles:       cycles,
		Seconds:      float64(cycles) / clock,
		Instructions: vecInsts + uint64(st.PQInserts),
		VectorInsts:  vecInsts,
		// Code bytes streamed, the query broadcast, and the
		// full-precision rows fetched for re-rank; the centroid tables
		// are scratchpad-resident, not re-read per query.
		DRAMBytesRead: uint64(st.CodeEvals)*uint64(m) +
			uint64(d.dim)*4 +
			uint64(st.DistEvals)*uint64(d.padded)*4,
		PQInserts: uint64(st.PQInserts),
		PUs:       len(d.slices),
	})
}
