package server_test

import (
	"context"
	"net/http/httptest"
	"testing"
	"time"

	"ssam"
	"ssam/internal/client"
	"ssam/internal/server"
	"ssam/internal/server/wire"
)

// TestGraphRegionEndToEnd drives a graph-mode region through the full
// client → server → region path: the HNSW knobs must survive the wire,
// and because construction is deterministic in the seed, the served
// answers must equal a direct in-process Region built with the same
// IndexParams, neighbor for neighbor.
func TestGraphRegionEndToEnd(t *testing.T) {
	const (
		n, dim = 600, 16
		k      = 5
		nq     = 24
	)
	rows, queries := testData(n, nq, dim)

	srv := server.New(server.Options{})
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()
	ctx := context.Background()
	c := client.New(ts.URL, client.WithTimeout(time.Minute))

	cfg := wire.RegionConfig{
		Mode: "graph",
		Index: wire.IndexParams{
			M: 12, EfConstruction: 60, EfSearch: 48, Seed: 9,
		},
	}
	if _, err := c.CreateRegion(ctx, "g", dim, cfg); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Load(ctx, "g", rows); err != nil {
		t.Fatal(err)
	}
	info, err := c.Build(ctx, "g")
	if err != nil {
		t.Fatal(err)
	}
	if !info.Built || info.Config.Mode != "graph" {
		t.Fatalf("post-build info: %+v", info)
	}
	if got := info.Config.Index; got != cfg.Index {
		t.Fatalf("index params did not survive the wire: %+v", got)
	}

	direct, err := ssam.New(dim, ssam.Config{
		Mode:  ssam.Graph,
		Index: ssam.IndexParams(cfg.Index),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer direct.Free()
	if err := direct.LoadFloat32(flatten(rows)); err != nil {
		t.Fatal(err)
	}
	if err := direct.BuildIndex(); err != nil {
		t.Fatal(err)
	}

	for i, q := range queries {
		served, err := c.Search(ctx, "g", q, k)
		if err != nil {
			t.Fatal(err)
		}
		want, err := direct.Search(q, k)
		if err != nil {
			t.Fatal(err)
		}
		if len(served) != len(want) {
			t.Fatalf("query %d: served %d results, want %d", i, len(served), len(want))
		}
		for j := range want {
			if served[j].ID != want[j].ID || served[j].Distance != want[j].Dist {
				t.Fatalf("query %d rank %d: served %+v, want %+v", i, j, served[j], want[j])
			}
		}
	}

	// Batch path through the same region.
	batch, err := c.SearchBatch(ctx, "g", queries[:8], k)
	if err != nil {
		t.Fatal(err)
	}
	for i, row := range batch {
		if len(row) != k {
			t.Fatalf("batch row %d: %d results", i, len(row))
		}
	}
	if err := c.Free(ctx, "g"); err != nil {
		t.Fatal(err)
	}
}
