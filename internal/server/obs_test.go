package server

// Observability acceptance tests: /metrics must render parseable
// Prometheus text whose counters match known traffic exactly, and a
// forced trace through a sharded region must carry the full span tree
// — admission, batch, per-shard fan-out attempts, merge — with
// sequential stages not overlapping.

import (
	"context"
	"encoding/json"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"ssam/internal/client"
	"ssam/internal/obs"
	"ssam/internal/server/wire"
)

// obsTestData builds a deterministic dataset: n rows of the given
// dim, plus nq query vectors. (The external server_test suite has its
// own testData; this package-internal suite cannot share it.)
func obsTestData(n, nq, dim int) (rows, queries [][]float32) {
	rng := rand.New(rand.NewSource(42))
	gen := func(count int) [][]float32 {
		out := make([][]float32, count)
		for i := range out {
			v := make([]float32, dim)
			for d := range v {
				v[d] = rng.Float32()
			}
			out[i] = v
		}
		return out
	}
	return gen(n), gen(nq)
}

// promLineRE matches one sample line of the text exposition format:
// name{labels} value.
var promLineRE = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})? (-?[0-9.eE+-]+|NaN|[+-]Inf)$`)

// parsePrometheus validates every line of a /metrics body and returns
// the samples keyed by full series name (name plus rendered labels).
func parsePrometheus(t *testing.T, body string) map[string]float64 {
	t.Helper()
	samples := make(map[string]float64)
	typed := make(map[string]bool) // families with a preceding # TYPE
	for ln, line := range strings.Split(strings.TrimRight(body, "\n"), "\n") {
		if strings.HasPrefix(line, "# HELP ") {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(line)
			if len(parts) != 4 {
				t.Fatalf("line %d: malformed TYPE: %q", ln+1, line)
			}
			switch parts[3] {
			case "counter", "gauge", "histogram":
			default:
				t.Fatalf("line %d: unknown metric type %q", ln+1, parts[3])
			}
			typed[parts[2]] = true
			continue
		}
		m := promLineRE.FindStringSubmatch(line)
		if m == nil {
			t.Fatalf("line %d: not a valid exposition sample: %q", ln+1, line)
		}
		fam := m[1]
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			if base := strings.TrimSuffix(fam, suffix); base != fam && typed[base] {
				fam = base
				break
			}
		}
		if !typed[fam] {
			t.Fatalf("line %d: sample %q has no preceding # TYPE", ln+1, m[1])
		}
		v, err := strconv.ParseFloat(m[3], 64)
		if err != nil {
			t.Fatalf("line %d: bad value %q: %v", ln+1, m[3], err)
		}
		samples[m[1]+m[2]] = v
	}
	return samples
}

// fetchMetrics scrapes ts's /metrics and parses it.
func fetchMetrics(t *testing.T, ts *httptest.Server) map[string]float64 {
	t.Helper()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("GET /metrics: content type %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET /metrics: read: %v", err)
	}
	return parsePrometheus(t, string(body))
}

// TestMetricsEndpoint drives known traffic at an unsharded region and
// asserts the /metrics exposition parses and its counters match the
// traffic exactly.
func TestMetricsEndpoint(t *testing.T) {
	srv := New(Options{})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	defer srv.Close()
	c := client.New(ts.URL)
	ctx := context.Background()

	rows, queries := obsTestData(40, 8, 4)
	if _, err := c.CreateRegion(ctx, "mx", 4, wire.RegionConfig{}); err != nil {
		t.Fatalf("create: %v", err)
	}
	if _, err := c.Load(ctx, "mx", rows); err != nil {
		t.Fatalf("load: %v", err)
	}
	if _, err := c.Build(ctx, "mx"); err != nil {
		t.Fatalf("build: %v", err)
	}

	const singles = 5
	for i := 0; i < singles; i++ {
		if _, err := c.Search(ctx, "mx", queries[i%len(queries)], 3); err != nil {
			t.Fatalf("search %d: %v", i, err)
		}
	}
	batch := [][]float32{queries[0], queries[1], queries[2]}
	if _, err := c.SearchBatch(ctx, "mx", batch, 3); err != nil {
		t.Fatalf("searchbatch: %v", err)
	}

	samples := fetchMetrics(t, ts)
	wantQueries := float64(singles + len(batch))
	if got := samples[`ssam_region_queries_total{region="mx"}`]; got != wantQueries {
		t.Errorf("ssam_region_queries_total = %v, want %v", got, wantQueries)
	}
	// recordQueries runs once per request: 5 singles + 1 batch request.
	wantLatCount := float64(singles + 1)
	if got := samples[`ssam_region_latency_seconds_count{region="mx"}`]; got != wantLatCount {
		t.Errorf("ssam_region_latency_seconds_count = %v, want %v", got, wantLatCount)
	}
	if got := samples[`ssam_region_latency_seconds_bucket{region="mx",le="+Inf"}`]; got != wantLatCount {
		t.Errorf("latency +Inf bucket = %v, want %v (cumulative buckets must end at _count)", got, wantLatCount)
	}
	if got := samples[`ssam_region_latency_seconds_sum{region="mx"}`]; got <= 0 {
		t.Errorf("ssam_region_latency_seconds_sum = %v, want > 0", got)
	}
	// Every micro-batch flush plus the explicit batch increments
	// batches; the explicit batch of 3 lands in the le="4" size bucket
	// and above (cumulative).
	if got := samples[`ssam_region_batches_total{region="mx"}`]; got < 1 {
		t.Errorf("ssam_region_batches_total = %v, want >= 1", got)
	}
	if got := samples[`ssam_region_batch_size_bucket{region="mx",le="64"}`]; got < 1 {
		t.Errorf("batch_size le=64 bucket = %v, want >= 1", got)
	}
	if got := samples[`ssam_rejected_total`]; got != 0 {
		t.Errorf("ssam_rejected_total = %v, want 0", got)
	}
	if got := samples[`ssam_inflight`]; got != 0 {
		t.Errorf("ssam_inflight = %v, want 0 at rest", got)
	}
	if got := samples[`ssam_uptime_seconds`]; got <= 0 {
		t.Errorf("ssam_uptime_seconds = %v, want > 0", got)
	}
	if got := samples[`ssam_region_queue_depth{region="mx"}`]; got != 0 {
		t.Errorf("ssam_region_queue_depth = %v, want 0 at rest", got)
	}

	// Freeing the region must drop its series from the exposition.
	if err := c.Free(ctx, "mx"); err != nil {
		t.Fatalf("free: %v", err)
	}
	after := fetchMetrics(t, ts)
	for series := range after {
		if strings.Contains(series, `region="mx"`) {
			t.Errorf("series %s still exposed after free", series)
		}
	}
	if _, ok := after[`ssam_uptime_seconds`]; !ok {
		t.Errorf("server-level series missing after region free")
	}
}

// spansOverlap reports whether two sibling spans overlap in time
// (beyond exact boundary adjacency).
func spansOverlap(a, b *obs.SpanData) bool {
	if a.StartUs > b.StartUs {
		a, b = b, a
	}
	return a.StartUs+a.DurUs > b.StartUs
}

// TestShardedTraceSpans forces a trace through a sharded region and
// asserts the span tree carries every serving stage with sequential
// stages non-overlapping.
func TestShardedTraceSpans(t *testing.T) {
	const shards = 3
	srv, c, _, cleanup := shardedFixture(t, shards, false, 60, 6)
	defer cleanup()
	ctx := context.Background()

	resp, err := c.SearchTraced(ctx, "shardy", []float32{0.1, 0.2, 0.3, 0.4, 0.5, 0.6}, 4)
	if err != nil {
		t.Fatalf("traced search: %v", err)
	}
	if len(resp.Results) != 4 {
		t.Fatalf("got %d results, want 4", len(resp.Results))
	}
	td := resp.Trace
	if td == nil {
		t.Fatal("X-SSAM-Trace request returned no trace")
	}
	if td.Root == nil || td.Root.Stage != "search" {
		t.Fatalf("root stage = %+v, want search", td.Root)
	}
	if td.Root.Tags["region"] != "shardy" {
		t.Errorf("root region tag = %v, want shardy", td.Root.Tags["region"])
	}

	adm := td.Root.Find("admission")
	if adm == nil {
		t.Fatal("trace has no admission span")
	}
	batch := td.Root.Find("batch")
	if batch == nil {
		t.Fatal("trace has no batch span")
	}
	if bypass, _ := batch.Tags["bypass"].(bool); !bypass {
		t.Errorf("sharded batch span not tagged bypass=true: %v", batch.Tags)
	}
	fanout := batch.Find("fanout")
	if fanout == nil {
		t.Fatal("trace has no fanout span")
	}
	merge := batch.Find("merge")
	if merge == nil {
		t.Fatal("trace has no merge span")
	}
	attempts := fanout.FindAll("shard")
	if len(attempts) != shards {
		t.Fatalf("got %d shard attempt spans, want %d", len(attempts), shards)
	}
	seen := make(map[float64]bool)
	for _, a := range attempts {
		si, ok := a.Tags["shard"].(float64) // JSON numbers decode as float64
		if !ok {
			t.Fatalf("shard span missing shard tag: %v", a.Tags)
		}
		seen[si] = true
		if a.Find("exec") == nil {
			t.Errorf("shard %v attempt has no exec span", si)
		}
	}
	if len(seen) != shards {
		t.Errorf("attempts cover %d distinct shards, want %d", len(seen), shards)
	}

	// Sequential stages must not overlap: admission precedes batch,
	// and within the batch the fan-out completes before the merge.
	if spansOverlap(adm, batch) {
		t.Errorf("admission [%v+%v] overlaps batch [%v+%v]", adm.StartUs, adm.DurUs, batch.StartUs, batch.DurUs)
	}
	if spansOverlap(fanout, merge) {
		t.Errorf("fanout [%v+%v] overlaps merge [%v+%v]", fanout.StartUs, fanout.DurUs, merge.StartUs, merge.DurUs)
	}
	for _, sp := range []*obs.SpanData{adm, batch, fanout, merge} {
		if sp.DurUs < 0 || sp.StartUs < 0 {
			t.Errorf("span %s has negative timing: start %v dur %v", sp.Stage, sp.StartUs, sp.DurUs)
		}
	}

	// The finished trace must also be retained in the /tracez ring.
	var ring []*obs.TraceData
	httpGetJSON(t, srv, "/tracez", &ring)
	if len(ring) == 0 {
		t.Fatal("/tracez is empty after a forced trace")
	}
	if ring[0].ID != td.ID {
		t.Errorf("/tracez newest trace ID = %s, want %s", ring[0].ID, td.ID)
	}
}

// TestUnshardedTraceSpans asserts the micro-batched path's span shape:
// the batch span holds queue and exec children.
func TestUnshardedTraceSpans(t *testing.T) {
	srv := New(Options{})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	defer srv.Close()
	c := client.New(ts.URL)
	ctx := context.Background()

	rows, queries := obsTestData(30, 4, 4)
	if _, err := c.CreateRegion(ctx, "tx", 4, wire.RegionConfig{}); err != nil {
		t.Fatalf("create: %v", err)
	}
	if _, err := c.Load(ctx, "tx", rows); err != nil {
		t.Fatalf("load: %v", err)
	}
	if _, err := c.Build(ctx, "tx"); err != nil {
		t.Fatalf("build: %v", err)
	}
	resp, err := c.SearchTraced(ctx, "tx", queries[0], 2)
	if err != nil {
		t.Fatalf("traced search: %v", err)
	}
	if resp.Trace == nil {
		t.Fatal("no trace returned")
	}
	batch := resp.Trace.Root.Find("batch")
	if batch == nil {
		t.Fatal("no batch span")
	}
	queue := batch.Find("queue")
	exec := batch.Find("exec")
	if queue == nil || exec == nil {
		t.Fatalf("batch span children missing queue/exec: %+v", batch.Children)
	}
	if spansOverlap(queue, exec) {
		t.Errorf("queue [%v+%v] overlaps exec [%v+%v]", queue.StartUs, queue.DurUs, exec.StartUs, exec.DurUs)
	}
	if _, ok := exec.Tags["batch_size"]; !ok {
		t.Errorf("exec span missing batch_size tag: %v", exec.Tags)
	}

	// An untraced request must not land in /tracez (ambient sampling
	// is off by default).
	if _, err := c.Search(ctx, "tx", queries[1], 2); err != nil {
		t.Fatalf("search: %v", err)
	}
	var ring []*obs.TraceData
	httpGetJSON(t, srv, "/tracez", &ring)
	if len(ring) != 1 {
		t.Fatalf("/tracez has %d traces, want exactly the 1 forced trace", len(ring))
	}
}

// TestAmbientSampling checks head-based sampling: with
// TraceSampleEvery=2, half the requests land in the ring.
func TestAmbientSampling(t *testing.T) {
	srv := New(Options{TraceSampleEvery: 2})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	defer srv.Close()
	c := client.New(ts.URL)
	ctx := context.Background()

	rows, queries := obsTestData(30, 4, 4)
	if _, err := c.CreateRegion(ctx, "sx", 4, wire.RegionConfig{}); err != nil {
		t.Fatalf("create: %v", err)
	}
	if _, err := c.Load(ctx, "sx", rows); err != nil {
		t.Fatalf("load: %v", err)
	}
	if _, err := c.Build(ctx, "sx"); err != nil {
		t.Fatalf("build: %v", err)
	}
	const n = 10
	for i := 0; i < n; i++ {
		if _, err := c.Search(ctx, "sx", queries[i%len(queries)], 2); err != nil {
			t.Fatalf("search %d: %v", i, err)
		}
	}
	var ring []*obs.TraceData
	httpGetJSON(t, srv, "/tracez", &ring)
	if len(ring) != n/2 {
		t.Errorf("/tracez has %d traces after %d requests at 1-in-2, want %d", len(ring), n, n/2)
	}
}

// httpGetJSON drives the server handler in-process and decodes the
// JSON response.
func httpGetJSON(t *testing.T, srv *Server, path string, out any) {
	t.Helper()
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("GET %s: status %d: %s", path, rec.Code, rec.Body.String())
	}
	if err := json.Unmarshal(rec.Body.Bytes(), out); err != nil {
		t.Fatalf("GET %s: decode: %v", path, err)
	}
}
