package server

// In-process soak test: open-loop traffic against a sharded server
// while a fault hook injects failures and latency on one shard. The
// invariants under stress: every issued request gets exactly one
// response, the /metrics counters scraped mid-flight never move
// backwards, and the degraded flag agrees with the failed-shard list
// on every response. Runs under -race in CI.

import (
	"context"
	"errors"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// soakFault fails roughly a third of primary attempts on the target
// shard and delays another third, so the run exercises the degraded
// path, the happy path, and slow-shard queuing all at once.
func soakFault(target int) func(shard, attempt int) error {
	var n atomic.Uint64
	return func(shard, attempt int) error {
		if shard != target {
			return nil
		}
		switch n.Add(1) % 3 {
		case 0:
			return errors.New("soak: injected shard fault")
		case 1:
			time.Sleep(500 * time.Microsecond)
		}
		return nil
	}
}

// monotoneCounters filters a /metrics scrape down to the series that
// must be monotone: counters (_total) and histogram accumulators
// (_bucket, _sum, _count). Gauges (inflight, queue depth, uptime) are
// free to move both ways.
func monotoneCounters(samples map[string]float64) map[string]float64 {
	out := make(map[string]float64)
	for series, v := range samples {
		name := series
		if i := strings.IndexByte(name, '{'); i >= 0 {
			name = name[:i]
		}
		for _, suffix := range []string{"_total", "_bucket", "_sum", "_count"} {
			if strings.HasSuffix(name, suffix) {
				out[series] = v
				break
			}
		}
	}
	return out
}

func TestSoakShardedFaults(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}
	const (
		shards   = 3
		requests = 300
		interval = time.Millisecond
	)
	srv, c, vecs, cleanup := shardedFixture(t, shards, true, 240, 8)
	defer cleanup()

	srv.mu.RLock()
	e := srv.regions["shardy"]
	srv.mu.RUnlock()
	e.cluster.SetFaultHook(soakFault(1))

	ts := httptest.NewServer(srv)
	defer ts.Close()

	// Scraper goroutine: pull /metrics every few milliseconds during
	// the run. Bodies are only collected here — parsing and the
	// monotonicity check happen on the test goroutine afterwards,
	// because t.Fatalf must not be called from another goroutine.
	scrapeCtx, stopScrape := context.WithCancel(context.Background())
	scrapeDone := make(chan struct{})
	var scrapes []string
	go func() {
		defer close(scrapeDone)
		for {
			select {
			case <-scrapeCtx.Done():
				return
			case <-time.After(5 * time.Millisecond):
			}
			resp, err := http.Get(ts.URL + "/metrics")
			if err != nil {
				continue // server teardown race; the final scrape is checked below
			}
			body, err := io.ReadAll(resp.Body)
			resp.Body.Close()
			if err == nil && resp.StatusCode == http.StatusOK {
				scrapes = append(scrapes, string(body))
			}
		}
	}()

	// Open-loop load: one request launched per tick regardless of how
	// many are still in flight, so a slow shard builds real queueing.
	type outcome struct {
		err      error
		degraded bool
		failed   []int
		results  int
	}
	outcomes := make(chan outcome, requests)
	var wg sync.WaitGroup
	rng := rand.New(rand.NewSource(23))
	queries := make([][]float32, requests)
	for i := range queries {
		queries[i] = vecs[rng.Intn(len(vecs))]
	}
	ctx := context.Background()
	for i := 0; i < requests; i++ {
		wg.Add(1)
		go func(q []float32) {
			defer wg.Done()
			resp, err := c.SearchFull(ctx, "shardy", q, 5)
			outcomes <- outcome{err: err, degraded: resp.Degraded, failed: resp.FailedShards, results: len(resp.Results)}
		}(queries[i])
		time.Sleep(interval)
	}
	wg.Wait()
	close(outcomes)
	stopScrape()
	<-scrapeDone

	// Monotone counters: across consecutive mid-flight scrapes, no
	// counter or histogram accumulator may move backwards.
	if len(scrapes) < 2 {
		t.Fatalf("only %d mid-flight scrapes collected; soak too short to check monotonicity", len(scrapes))
	}
	prev := map[string]float64{}
	for i, body := range scrapes {
		cur := monotoneCounters(parsePrometheus(t, body))
		for series, was := range prev {
			if now, ok := cur[series]; ok && now < was {
				t.Fatalf("scrape %d: counter %s went backwards: %v -> %v", i, series, was, now)
			}
		}
		prev = cur
	}

	// No lost responses: every request produced exactly one outcome.
	var got, degraded, failures int
	for o := range outcomes {
		got++
		if o.err != nil {
			failures++
			continue
		}
		// Degraded-flag consistency: the flag and the failed-shard list
		// must agree, and a degraded answer still carries results (the
		// surviving shards' merge).
		if o.degraded != (len(o.failed) > 0) {
			t.Fatalf("degraded=%v but failed_shards=%v", o.degraded, o.failed)
		}
		if o.degraded {
			degraded++
			for _, si := range o.failed {
				if si != 1 {
					t.Fatalf("shard %d reported failed; only shard 1 is faulted", si)
				}
			}
		}
		if o.results == 0 {
			t.Fatal("successful response with zero results")
		}
	}
	if got != requests {
		t.Fatalf("lost responses: issued %d, got %d outcomes", requests, got)
	}
	// The fault hook fails a third of shard-1 attempts, so with
	// allow-partial the run must have served degraded answers, and with
	// retries in the client no request should have failed outright.
	if degraded == 0 {
		t.Fatal("fault injection produced no degraded responses")
	}
	if failures > 0 {
		t.Fatalf("%d requests failed outright; allow-partial should absorb single-shard faults", failures)
	}

	// Final scrape: the servers own counters must account for the
	// traffic — every request admitted, shard failures recorded.
	final := fetchMetrics(t, ts)
	if q := final[`ssam_region_queries_total{region="shardy"}`]; q != float64(requests) {
		t.Errorf("queries_total = %v, want %d", q, requests)
	}
	if f := final[`ssam_shard_failures_total{region="shardy",shard="1"}`]; f == 0 {
		t.Error("no shard failures recorded for the faulted shard")
	}
	if d := final[`ssam_region_degraded_total{region="shardy"}`]; int(d) != degraded {
		t.Errorf("degraded_total = %v, clients saw %d degraded responses", d, degraded)
	}
	if r := final[`ssam_rejected_total`]; r > 0 {
		// Shed requests are retried by the client, so rejected>0 is not
		// an error — but it would explain queries_total drift, so log it.
		t.Logf("server shed %v requests during soak (retried by client)", r)
	}
}
