package server_test

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"testing"
	"time"

	"ssam"
	"ssam/internal/client"
	"ssam/internal/obs"
	"ssam/internal/server"
	"ssam/internal/server/wire"
)

// mutServer stands up a server plus client for the mutation tests.
func mutServer(t *testing.T) (*server.Server, *httptest.Server, *client.Client) {
	t.Helper()
	srv := server.New(server.Options{BatchWindow: time.Millisecond})
	ts := httptest.NewServer(srv)
	t.Cleanup(func() { srv.Close(); ts.Close() })
	return srv, ts, client.New(ts.URL, client.WithTimeout(time.Minute), client.WithRetries(0))
}

// oracleSearch answers a query against a fresh region holding exactly
// rows (in slice order), remapping result positions through ids — the
// ground truth a mutated server region must match bit for bit.
func oracleSearch(t *testing.T, rows [][]float32, ids []int, q []float32, k int) []wire.Neighbor {
	t.Helper()
	r, err := ssam.New(len(q), ssam.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Free()
	if err := r.LoadFloat32(flatten(rows)); err != nil {
		t.Fatal(err)
	}
	if err := r.BuildIndex(); err != nil {
		t.Fatal(err)
	}
	res, err := r.Search(q, k)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]wire.Neighbor, len(res))
	for i, n := range res {
		out[i] = wire.Neighbor{ID: ids[n.ID], Distance: n.Dist}
	}
	return out
}

func TestMutationEndToEnd(t *testing.T) {
	const (
		n, dim = 300, 8
		k      = 10
	)
	rows, queries := testData(n, 6, dim)
	extra, _ := testData(2, 0, dim)
	_, ts, c := mutServer(t)
	ctx := context.Background()

	if _, err := c.CreateRegion(ctx, "m", dim, wire.RegionConfig{Mode: "linear"}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Load(ctx, "m", rows); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Build(ctx, "m"); err != nil {
		t.Fatal(err)
	}

	// Two new rows, then two deletes plus one miss. Sequence numbers
	// must rise monotonically across responses and skip the miss.
	up, err := c.Upsert(ctx, "m", []int{n, n + 1}, extra)
	if err != nil {
		t.Fatal(err)
	}
	if up.Seq != 2 || up.Applied != 2 || up.Len != n+2 {
		t.Fatalf("upsert response %+v", up)
	}
	del, err := c.Delete(ctx, "m", []int{5, 6, 9999})
	if err != nil {
		t.Fatal(err)
	}
	if del.Seq != 4 || del.Applied != 2 || del.Len != n || len(del.Missing) != 1 || del.Missing[0] != 9999 {
		t.Fatalf("delete response %+v", del)
	}

	// Survivors: ids 0..n+1 minus {5,6}, with ids n and n+1 holding the
	// extra rows. The server must now answer exactly like a fresh
	// region over that dataset.
	var ids []int
	var surv [][]float32
	for i, row := range rows {
		if i == 5 || i == 6 {
			continue
		}
		ids = append(ids, i)
		surv = append(surv, row)
	}
	for i, row := range extra {
		ids = append(ids, n+i)
		surv = append(surv, row)
	}
	for qi, q := range queries {
		got, err := c.Search(ctx, "m", q, k)
		if err != nil {
			t.Fatal(err)
		}
		want := oracleSearch(t, surv, ids, q, k)
		if len(got) != len(want) {
			t.Fatalf("query %d: %d results, want %d", qi, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("query %d rank %d: got %+v want %+v", qi, i, got[i], want[i])
			}
		}
	}

	// A forced trace on a write carries the mutate span with the
	// committed seq.
	body := strings.NewReader(fmt.Sprintf(`{"ids":[%d],"vectors":[[1,2,3,4,5,6,7,8]]}`, n+2))
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/regions/m/upsert", body)
	req.Header.Set(server.TraceHeader, "1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var traced wire.MutateResponse
	if err := json.NewDecoder(resp.Body).Decode(&traced); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if traced.Seq != 5 || traced.Trace == nil {
		t.Fatalf("traced upsert: %+v", traced)
	}
	msp := traced.Trace.Root.Find("mutate")
	if msp == nil || msp.Tags["seq"] != float64(5) {
		t.Fatalf("mutate span %+v", msp)
	}

	// /statsz carries the write-path block, agreeing with the responses.
	stats, err := c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	mst := stats.Regions["m"].Mutation
	if mst == nil {
		t.Fatal("no mutation stats in /statsz")
	}
	if mst.Seq != 5 || mst.LiveRows != n+1 || mst.Upserts != 3 || mst.Deletes != 2 {
		t.Fatalf("mutation stats %+v", mst)
	}

	// /metrics exposes the same state under the region label.
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mbody, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	for _, line := range []string{
		`ssam_region_mutation_seq{region="m"} 5`,
		fmt.Sprintf(`ssam_region_live_rows{region="m"} %d`, n+1),
		`ssam_region_upserts_total{region="m"} 3`,
		`ssam_region_deletes_total{region="m"} 2`,
		`ssam_region_writes_total{region="m"} 5`,
	} {
		if !strings.Contains(string(mbody), line) {
			t.Fatalf("/metrics missing %q:\n%s", line, mbody)
		}
	}
}

func TestCompactionEndToEnd(t *testing.T) {
	const (
		n, dim = 200, 6
		k      = 7
	)
	rows, queries := testData(n, 4, dim)
	_, ts, c := mutServer(t)
	ctx := context.Background()

	if _, err := c.CreateRegion(ctx, "gc", dim, wire.RegionConfig{Mode: "linear"}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Load(ctx, "gc", rows); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Build(ctx, "gc"); err != nil {
		t.Fatal(err)
	}

	// Tombstone every other row — 50% garbage, past the 30% threshold.
	var ids []int
	for id := 0; id < n; id += 2 {
		ids = append(ids, id)
	}
	del, err := c.Delete(ctx, "gc", ids)
	if err != nil {
		t.Fatal(err)
	}
	if del.Applied != n/2 || del.Len != n/2 {
		t.Fatalf("delete response %+v", del)
	}

	// One forced pass (the background compactor may also have run — a
	// pass either reclaims the garbage or finds it already gone; both
	// end with zero tombstones and an unchanged seq).
	comp, err := c.Compact(ctx, "gc")
	if err != nil {
		t.Fatal(err)
	}
	if comp.Seq != del.Seq || comp.Len != n/2 {
		t.Fatalf("compact response %+v (delete seq %d)", comp, del.Seq)
	}
	stats, err := c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	mst := stats.Regions["gc"].Mutation
	if mst == nil || mst.DeadRows != 0 || mst.CompactPasses == 0 || mst.LiveRows != n/2 {
		t.Fatalf("mutation stats after compact: %+v", mst)
	}

	// The layout-changing pass left a forced "compact" trace in the
	// ring, tagged with the pass summary.
	tresp, err := http.Get(ts.URL + "/tracez")
	if err != nil {
		t.Fatal(err)
	}
	var traces []*obs.TraceData
	if err := json.NewDecoder(tresp.Body).Decode(&traces); err != nil {
		t.Fatal(err)
	}
	tresp.Body.Close()
	var compact *obs.TraceData
	for _, td := range traces {
		if td.Name == "compact" {
			compact = td
			break
		}
	}
	if compact == nil {
		t.Fatalf("no compact trace in /tracez (%d traces)", len(traces))
	}
	if compact.Root.Tags["region"] != "gc" || compact.Root.Tags["rows_dropped"] == float64(0) {
		t.Fatalf("compact trace tags %+v", compact.Root.Tags)
	}

	// Compaction must be invisible to results.
	var surv [][]float32
	var survIDs []int
	for id := 1; id < n; id += 2 {
		survIDs = append(survIDs, id)
		surv = append(surv, rows[id])
	}
	sort.Ints(survIDs)
	for qi, q := range queries {
		got, err := c.Search(ctx, "gc", q, k)
		if err != nil {
			t.Fatal(err)
		}
		want := oracleSearch(t, surv, survIDs, q, k)
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("query %d rank %d: got %+v want %+v", qi, i, got[i], want[i])
			}
		}
	}
}

func TestMutationRejections(t *testing.T) {
	const dim = 4
	rows, _ := testData(40, 0, dim)
	_, _, c := mutServer(t)
	ctx := context.Background()

	wantStatus := func(t *testing.T, err error, code int) {
		t.Helper()
		var se *client.StatusError
		if !errors.As(err, &se) || se.Code != code {
			t.Fatalf("err = %v, want status %d", err, code)
		}
	}

	// Sharded regions are immutable over the wire.
	if _, err := c.CreateRegion(ctx, "sh", dim, wire.RegionConfig{
		Sharding: &wire.ShardingConfig{Shards: 2},
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Load(ctx, "sh", rows); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Build(ctx, "sh"); err != nil {
		t.Fatal(err)
	}
	_, err := c.Upsert(ctx, "sh", []int{1}, rows[:1])
	wantStatus(t, err, http.StatusConflict)
	_, err = c.Delete(ctx, "sh", []int{1})
	wantStatus(t, err, http.StatusConflict)
	_, err = c.Compact(ctx, "sh")
	wantStatus(t, err, http.StatusConflict)

	// Indexed engines reject writes with the typed conflict.
	if _, err := c.CreateRegion(ctx, "kd", dim, wire.RegionConfig{Mode: "kdtree"}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Load(ctx, "kd", rows); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Build(ctx, "kd"); err != nil {
		t.Fatal(err)
	}
	_, err = c.Upsert(ctx, "kd", []int{0}, rows[:1])
	wantStatus(t, err, http.StatusConflict)
	if !strings.Contains(err.Error(), "Linear") {
		t.Fatalf("want the immutable-engine message, got %v", err)
	}

	// Mutation before build is a sequencing conflict; bad payloads and
	// unknown regions keep their usual statuses.
	if _, err := c.CreateRegion(ctx, "raw", dim, wire.RegionConfig{}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Load(ctx, "raw", rows); err != nil {
		t.Fatal(err)
	}
	_, err = c.Upsert(ctx, "raw", []int{0}, rows[:1])
	wantStatus(t, err, http.StatusConflict)
	if _, err := c.Build(ctx, "raw"); err != nil {
		t.Fatal(err)
	}
	_, err = c.Upsert(ctx, "raw", []int{0}, [][]float32{{1, 2}})
	wantStatus(t, err, http.StatusBadRequest)
	_, err = c.Delete(ctx, "raw", nil)
	wantStatus(t, err, http.StatusBadRequest)
	_, err = c.Delete(ctx, "nope", []int{1})
	wantStatus(t, err, http.StatusNotFound)

	// CompactNow before any write has nothing to compact.
	_, err = c.Compact(ctx, "raw")
	wantStatus(t, err, http.StatusConflict)
}
