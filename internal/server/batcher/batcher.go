// Package batcher coalesces concurrent single-query kNN requests into
// region batch searches, the serving-layer analogue of the paper's
// query batching across vaults: many independent front-end requests
// arriving within a short window are answered by one SearchBatch call,
// which fans out across all host cores (or, on the simulated device,
// amortizes query broadcast).
//
// Requests are grouped per k — a batch must be homogeneous in k
// because Region.SearchBatch answers every query with the same
// neighbor count. A batch is flushed when either the batching window
// elapses (bounding added latency) or the batch reaches its size cap
// (bounding memory and per-flush work).
package batcher

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"ssam"
	"ssam/internal/obs"
)

// ErrClosed is returned by Search after Close.
var ErrClosed = errors.New("batcher: closed")

// SearchFunc answers a homogeneous batch of queries, one result slice
// per query. The span is nil unless a request in the batch carried a
// sampled trace, in which case the engine's sub-stages (per-vault
// scans, device serialization) nest under it. Region.SearchBatchSpan
// satisfies this signature.
type SearchFunc func(qs [][]float32, k int, sp *obs.Span) ([][]ssam.Result, error)

// Options tunes a Batcher. Zero values select the defaults.
type Options struct {
	// Window bounds how long the first request of a batch waits for
	// company (default 2ms).
	Window time.Duration
	// MaxBatch flushes a batch immediately once it holds this many
	// queries (default 64).
	MaxBatch int
	// OnFlush, if set, is called once per executed batch with its size
	// and the SearchFunc latency — the stats hook.
	OnFlush func(size int, d time.Duration)
}

const (
	defaultWindow   = 2 * time.Millisecond
	defaultMaxBatch = 64
)

// Batcher coalesces Search calls into SearchFunc batches. Create with
// New; a zero Batcher is not usable.
type Batcher struct {
	search   SearchFunc
	window   time.Duration
	maxBatch int
	onFlush  func(int, time.Duration)

	mu      sync.Mutex
	buckets map[int]*bucket // open batch per k
	pending int             // queries admitted but not yet answered
	closed  bool
}

// bucket is one forming batch (all queries share k).
type bucket struct {
	k       int
	queries [][]float32
	waiters []chan outcome
	traced  []tracedReq // span bookkeeping for sampled requests only
	timer   *time.Timer
}

// tracedReq tracks one sampled request's spans through the batch:
// queue (enqueue → flush) and exec (the shared SearchFunc call), both
// children of the request's batch span. Untraced requests never enter
// the list, so tracing off costs the batcher nothing.
type tracedReq struct{ batch, queue, exec *obs.Span }

type outcome struct {
	res []ssam.Result
	err error
}

// New returns a Batcher delivering batches to search.
func New(search SearchFunc, opts Options) *Batcher {
	if opts.Window <= 0 {
		opts.Window = defaultWindow
	}
	if opts.MaxBatch <= 0 {
		opts.MaxBatch = defaultMaxBatch
	}
	return &Batcher{
		search:   search,
		window:   opts.Window,
		maxBatch: opts.MaxBatch,
		onFlush:  opts.OnFlush,
		buckets:  make(map[int]*bucket),
	}
}

// Search enqueues one query and blocks until its batch executes (or
// ctx is done; the query still executes with its batch, but the result
// is discarded). Safe for concurrent use.
func (b *Batcher) Search(ctx context.Context, q []float32, k int) ([]ssam.Result, error) {
	return b.SearchSpan(ctx, q, k, nil)
}

// SearchSpan is Search for a request carrying a sampled trace: sp (the
// request's "batch" span, nil for untraced requests) gains a "queue"
// child covering enqueue → flush and an "exec" child covering the
// shared batch execution, tagged with the batch size.
func (b *Batcher) SearchSpan(ctx context.Context, q []float32, k int, sp *obs.Span) ([]ssam.Result, error) {
	if k <= 0 {
		return nil, fmt.Errorf("batcher: k must be positive, got %d", k)
	}
	ch := make(chan outcome, 1)

	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return nil, ErrClosed
	}
	bk := b.buckets[k]
	if bk == nil {
		bk = &bucket{k: k}
		b.buckets[k] = bk
		bk.timer = time.AfterFunc(b.window, func() { b.flushExpired(bk) })
	}
	bk.queries = append(bk.queries, q)
	bk.waiters = append(bk.waiters, ch)
	if sp != nil {
		bk.traced = append(bk.traced, tracedReq{batch: sp, queue: sp.Start("queue")})
	}
	b.pending++
	full := len(bk.queries) >= b.maxBatch
	if full {
		delete(b.buckets, k)
		bk.timer.Stop()
	}
	b.mu.Unlock()

	if full {
		// The size-triggered flush runs on the caller that completed
		// the batch; its own result arrives on ch below.
		b.run(bk)
	}

	select {
	case out := <-ch:
		return out.res, out.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// flushExpired is the window-timeout path (runs on the timer
// goroutine). The bucket may already have been flushed by the size
// trigger or by Close; the map identity check detects that.
func (b *Batcher) flushExpired(bk *bucket) {
	b.mu.Lock()
	if b.buckets[bk.k] != bk {
		b.mu.Unlock()
		return
	}
	delete(b.buckets, bk.k)
	b.mu.Unlock()
	b.run(bk)
}

// run executes one detached batch and fans results (or the shared
// error) out to every waiter. Waiter channels are buffered, so a
// departed (ctx-cancelled) waiter never blocks the batch.
func (b *Batcher) run(bk *bucket) {
	size := len(bk.queries)
	for i := range bk.traced {
		tr := &bk.traced[i]
		tr.queue.End()
		tr.exec = tr.batch.Start("exec", obs.Tag{Key: "batch_size", Value: size})
	}
	// The engine's sub-stage spans attach under the first traced
	// request's exec span — the batch runs once, so the work is recorded
	// once rather than duplicated into every sampled trace.
	var execSp *obs.Span
	if len(bk.traced) > 0 {
		execSp = bk.traced[0].exec
	}
	start := time.Now()
	results, err := b.search(bk.queries, bk.k, execSp)
	elapsed := time.Since(start)
	for i := range bk.traced {
		bk.traced[i].exec.End()
	}
	if err == nil && len(results) != len(bk.queries) {
		err = fmt.Errorf("batcher: search returned %d results for %d queries", len(results), len(bk.queries))
	}

	b.mu.Lock()
	b.pending -= len(bk.queries)
	b.mu.Unlock()
	if b.onFlush != nil {
		b.onFlush(len(bk.queries), elapsed)
	}

	for i, ch := range bk.waiters {
		if err != nil {
			ch <- outcome{err: err}
		} else {
			ch <- outcome{res: results[i]}
		}
	}
}

// Pending returns the number of queries admitted but not yet answered
// (the batcher's queue depth).
func (b *Batcher) Pending() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.pending
}

// Close drains the batcher: every open bucket is flushed immediately
// (without waiting out its window) and subsequent Search calls fail
// with ErrClosed. Close returns after the drained batches have been
// delivered.
func (b *Batcher) Close() {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return
	}
	b.closed = true
	drain := make([]*bucket, 0, len(b.buckets))
	for k, bk := range b.buckets {
		bk.timer.Stop()
		delete(b.buckets, k)
		drain = append(drain, bk)
	}
	b.mu.Unlock()
	for _, bk := range drain {
		b.run(bk)
	}
}
