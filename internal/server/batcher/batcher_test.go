package batcher

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"ssam"
	"ssam/internal/obs"
)

// recorder is a SearchFunc that logs every batch it receives and
// answers query i of a batch with a single Result whose ID is the
// query's first coordinate (so callers can check fan-out order).
type recorder struct {
	mu      sync.Mutex
	batches [][]int // first coordinate of each query, per batch
	ks      []int
	delay   time.Duration
	err     error
}

func (r *recorder) search(qs [][]float32, k int, _ *obs.Span) ([][]ssam.Result, error) {
	if r.delay > 0 {
		time.Sleep(r.delay)
	}
	ids := make([]int, len(qs))
	out := make([][]ssam.Result, len(qs))
	for i, q := range qs {
		ids[i] = int(q[0])
		out[i] = []ssam.Result{{ID: int(q[0]), Dist: 0}}
	}
	r.mu.Lock()
	r.batches = append(r.batches, ids)
	r.ks = append(r.ks, k)
	r.mu.Unlock()
	if r.err != nil {
		return nil, r.err
	}
	return out, nil
}

func (r *recorder) snapshot() ([][]int, []int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([][]int(nil), r.batches...), append([]int(nil), r.ks...)
}

func query(id int) []float32 { return []float32{float32(id), 0} }

// searchAll issues one Search per id from its own goroutine and waits
// for all of them, failing the test on any unexpected error.
func searchAll(t *testing.T, b *Batcher, k int, ids []int) {
	t.Helper()
	var wg sync.WaitGroup
	errs := make(chan error, len(ids))
	for _, id := range ids {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			res, err := b.Search(context.Background(), query(id), k)
			if err != nil {
				errs <- err
				return
			}
			if len(res) != 1 || res[0].ID != id {
				errs <- errors.New("wrong result routed to waiter")
			}
		}(id)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestWindowTimeoutFlush: requests trickling in under MaxBatch are
// flushed together once the window expires.
func TestWindowTimeoutFlush(t *testing.T) {
	rec := &recorder{}
	b := New(rec.search, Options{Window: 60 * time.Millisecond, MaxBatch: 100})
	defer b.Close()

	start := time.Now()
	searchAll(t, b, 3, []int{1, 2, 3})
	elapsed := time.Since(start)

	batches, ks := rec.snapshot()
	if len(batches) != 1 {
		t.Fatalf("got %d batches, want 1 (window flush should coalesce): %v", len(batches), batches)
	}
	if len(batches[0]) != 3 || ks[0] != 3 {
		t.Fatalf("batch = %v (k=%d), want 3 queries at k=3", batches[0], ks[0])
	}
	// The flush must wait out the window (nothing hit MaxBatch).
	if elapsed < 50*time.Millisecond {
		t.Fatalf("flush after %v, before the 60ms window expired", elapsed)
	}
}

// TestMaxBatchFlush: hitting MaxBatch flushes immediately, well before
// a long window expires.
func TestMaxBatchFlush(t *testing.T) {
	rec := &recorder{}
	b := New(rec.search, Options{Window: 10 * time.Second, MaxBatch: 4})
	defer b.Close()

	done := make(chan struct{})
	go func() {
		searchAll(t, b, 2, []int{10, 11, 12, 13})
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("size-triggered flush did not happen; waiters stuck behind the 10s window")
	}
	batches, _ := rec.snapshot()
	if len(batches) != 1 || len(batches[0]) != 4 {
		t.Fatalf("batches = %v, want one batch of 4", batches)
	}
}

// TestMixedKNeverCoalesced: concurrent requests with different k must
// land in separate, homogeneous batches.
func TestMixedKNeverCoalesced(t *testing.T) {
	rec := &recorder{}
	b := New(rec.search, Options{Window: 50 * time.Millisecond, MaxBatch: 100})
	defer b.Close()

	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			k := 3 + i%2 // half at k=3, half at k=4
			if _, err := b.Search(context.Background(), query(i), k); err != nil {
				t.Error(err)
			}
		}(i)
	}
	wg.Wait()

	batches, ks := rec.snapshot()
	if len(batches) != 2 {
		t.Fatalf("got %d batches for two k values, want 2: %v (k=%v)", len(batches), batches, ks)
	}
	seen := map[int]int{}
	for i, ids := range batches {
		seen[ks[i]] += len(ids)
	}
	if seen[3] != 4 || seen[4] != 4 {
		t.Fatalf("per-k query counts = %v, want 4 each for k=3 and k=4", seen)
	}
}

// TestErrorFanOut: a failing SearchFunc must deliver its error to
// every waiter of the batch, not just one.
func TestErrorFanOut(t *testing.T) {
	boom := errors.New("vault fire")
	rec := &recorder{err: boom}
	b := New(rec.search, Options{Window: 30 * time.Millisecond, MaxBatch: 100})
	defer b.Close()

	const n = 6
	var wg sync.WaitGroup
	got := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, got[i] = b.Search(context.Background(), query(i), 5)
		}(i)
	}
	wg.Wait()

	for i, err := range got {
		if !errors.Is(err, boom) {
			t.Fatalf("waiter %d got %v, want the batch error", i, err)
		}
	}
	if batches, _ := rec.snapshot(); len(batches) != 1 {
		t.Fatalf("got %d batches, want 1", len(batches))
	}
	if n := b.Pending(); n != 0 {
		t.Fatalf("pending = %d after error fan-out, want 0", n)
	}
}

// TestCloseDrains: Close flushes an open bucket immediately and
// subsequent Search calls fail with ErrClosed.
func TestCloseDrains(t *testing.T) {
	rec := &recorder{}
	b := New(rec.search, Options{Window: 10 * time.Second, MaxBatch: 100})

	res := make(chan error, 1)
	go func() {
		_, err := b.Search(context.Background(), query(1), 2)
		res <- err
	}()
	// Wait for the request to be admitted before draining.
	for i := 0; b.Pending() == 0 && i < 100; i++ {
		time.Sleep(time.Millisecond)
	}
	b.Close()
	select {
	case err := <-res:
		if err != nil {
			t.Fatalf("drained request failed: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Close did not flush the open bucket")
	}
	if _, err := b.Search(context.Background(), query(2), 2); !errors.Is(err, ErrClosed) {
		t.Fatalf("Search after Close = %v, want ErrClosed", err)
	}
}

// TestContextCancellation: a waiter that gives up gets ctx.Err()
// without wedging the batch for everyone else.
func TestContextCancellation(t *testing.T) {
	rec := &recorder{delay: 20 * time.Millisecond}
	b := New(rec.search, Options{Window: 30 * time.Millisecond, MaxBatch: 100})
	defer b.Close()

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := b.Search(ctx, query(1), 2); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled Search = %v, want context.Canceled", err)
	}
	// The abandoned query still executes with its batch.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if batches, _ := rec.snapshot(); len(batches) == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("abandoned query's batch never executed")
		}
		time.Sleep(5 * time.Millisecond)
	}
}
