package server

// End-to-end tests for replicated regions. Two acceptance scenarios
// from the replication issue are pinned here: killing one replica of
// a healthy group under concurrent load produces zero degraded or
// error responses, and a zero-downtime reload under load never drops
// or double-answers a query. In-package because they reach the
// FailReplica chaos seam and the registry.

import (
	"context"
	"errors"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"

	"ssam"
	"ssam/internal/client"
	"ssam/internal/server/wire"
)

// replicatedFixture stands up a server with one replicated region
// loaded and built.
func replicatedFixture(t *testing.T, name string, cfg wire.RegionConfig, rows, dims int) (*Server, *httptest.Server, *client.Client, [][]float32) {
	t.Helper()
	srv := New(Options{})
	ts := httptest.NewServer(srv)
	t.Cleanup(func() { srv.Close(); ts.Close() })
	c := client.New(ts.URL)
	ctx := context.Background()

	info, err := c.CreateRegion(ctx, name, dims, cfg)
	if err != nil {
		t.Fatalf("create replicated region: %v", err)
	}
	if info.Replicas != cfg.Replicas.Replicas {
		t.Fatalf("created region reports %d replicas, want %d", info.Replicas, cfg.Replicas.Replicas)
	}
	rng := rand.New(rand.NewSource(77))
	vecs := make([][]float32, rows)
	for i := range vecs {
		v := make([]float32, dims)
		for j := range v {
			v[j] = rng.Float32()
		}
		vecs[i] = v
	}
	if _, err := c.Load(ctx, name, vecs); err != nil {
		t.Fatalf("load: %v", err)
	}
	info, err = c.Build(ctx, name)
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	if info.Gen != 1 {
		t.Fatalf("built region at generation %d, want 1", info.Gen)
	}
	return srv, ts, c, vecs
}

// referenceRegion builds a plain single region over the same rows for
// bit-identical comparison.
func referenceRegion(t *testing.T, vecs [][]float32, dims int) *ssam.Region {
	t.Helper()
	ref, err := ssam.New(dims, ssam.Config{})
	if err != nil {
		t.Fatalf("reference: %v", err)
	}
	t.Cleanup(ref.Free)
	flat := make([]float32, 0, len(vecs)*dims)
	for _, v := range vecs {
		flat = append(flat, v...)
	}
	if err := ref.LoadFloat32(flat); err != nil {
		t.Fatalf("reference load: %v", err)
	}
	if err := ref.BuildIndex(); err != nil {
		t.Fatalf("reference build: %v", err)
	}
	return ref
}

// TestReplicatedKillOneSoak is the availability acceptance test: with
// three replicas serving concurrent traffic, one replica is killed
// mid-run and every single response must still be a non-degraded
// success (run under -race in CI).
func TestReplicatedKillOneSoak(t *testing.T) {
	const (
		rows, dims = 240, 8
		k          = 5
		workers    = 4
		perWorker  = 60
		dead       = 1
	)
	srv, _, c, vecs := replicatedFixture(t, "soak", wire.RegionConfig{
		Replicas: &wire.ReplicasConfig{Replicas: 3, Hedge: true},
	}, rows, dims)
	ref := referenceRegion(t, vecs, dims)
	ctx := context.Background()

	run := func(phase string, killed bool) {
		var wg sync.WaitGroup
		var failures atomic.Uint64
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := 0; i < perWorker; i++ {
					q := vecs[(w*perWorker+i)%len(vecs)]
					resp, err := c.SearchFull(ctx, "soak", q, k)
					if err != nil {
						t.Errorf("%s: search error: %v", phase, err)
						failures.Add(1)
						return
					}
					if resp.Degraded || len(resp.FailedShards) != 0 {
						t.Errorf("%s: degraded response %+v", phase, resp)
						failures.Add(1)
						return
					}
					want, _, _ := ref.SearchStatsSpan(q, k, nil)
					if len(resp.Results) != len(want) {
						t.Errorf("%s: %d results, reference %d", phase, len(resp.Results), len(want))
						return
					}
					if killed && resp.Replica != nil && *resp.Replica == dead {
						t.Errorf("%s: answer attributed to the killed replica", phase)
						return
					}
				}
			}(w)
		}
		wg.Wait()
		if failures.Load() > 0 {
			t.Fatalf("%s: %d degraded/error responses, want zero", phase, failures.Load())
		}
	}

	run("healthy", false)
	before, err := c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.FailReplica("soak", dead); err != nil {
		t.Fatalf("FailReplica: %v", err)
	}
	run("one-replica-killed", true)

	// The outage is visible in the stats even though no caller saw it —
	// unless the load-aware router never attempted the dead replica at
	// all (its pre-kill EWMA can legitimately keep it out of every
	// power-of-two choice), in which case there is nothing to trace and
	// the accounting must agree that zero attempts reached it.
	stats, err := c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	rep := stats.Regions["soak"].Replication
	if rep == nil {
		t.Fatal("no replication block in /statsz")
	}
	if rep.Gen != 1 || len(rep.Replicas) != 3 {
		t.Fatalf("replication stats %+v", rep)
	}
	var errs, failovers uint64
	for _, rs := range rep.Replicas {
		errs += rs.Errors
		failovers += rs.Failovers
	}
	deadAttempts := rep.Replicas[dead].Queries - before.Regions["soak"].Replication.Replicas[dead].Queries
	if deadAttempts > 0 && (errs == 0 || failovers == 0) {
		t.Fatalf("kill left no trace: %d attempts reached the dead replica but %d errors, %d failovers recorded",
			deadAttempts, errs, failovers)
	}
	if deadAttempts == 0 && errs == 0 {
		t.Logf("router steered every post-kill query around the dead replica; no trace expected")
	}

	if err := srv.HealReplicas("soak"); err != nil {
		t.Fatalf("HealReplicas: %v", err)
	}
	run("healed", false)
}

// TestReloadUnderLoad pins the zero-downtime contract over the wire:
// generations are swapped while concurrent searches run, and every
// response — before, during, and after each cutover — is a success
// bit-identical to the reference. Nothing is dropped (every request
// gets exactly one answer) and nothing is served from a half-installed
// generation (a response's generation is always one the server
// actually finished installing).
func TestReloadUnderLoad(t *testing.T) {
	const (
		rows, dims = 200, 6
		k          = 4
		workers    = 3
		reloads    = 3
	)
	_, _, c, vecs := replicatedFixture(t, "live", wire.RegionConfig{
		Replicas: &wire.ReplicasConfig{Replicas: 2, Hedge: true},
	}, rows, dims)
	ref := referenceRegion(t, vecs, dims)
	ctx := context.Background()

	stop := make(chan struct{})
	var answered atomic.Uint64
	var maxGen atomic.Uint64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				q := vecs[(w+i*workers)%len(vecs)]
				resp, err := c.SearchFull(ctx, "live", q, k)
				if err != nil {
					t.Errorf("search during reload: %v", err)
					return
				}
				want, _, _ := ref.SearchStatsSpan(q, k, nil)
				if !reflect.DeepEqual(resp.Results, toNeighbors(want)) {
					t.Errorf("response diverged from reference during reload (gen %d)", resp.Gen)
					return
				}
				answered.Add(1)
				for {
					cur := maxGen.Load()
					if resp.Gen <= cur || maxGen.CompareAndSwap(cur, resp.Gen) {
						break
					}
				}
			}
		}(w)
	}

	lastGen := uint64(1)
	for i := 0; i < reloads; i++ {
		rl, err := c.Reload(ctx, "live")
		if err != nil {
			t.Fatalf("reload %d: %v", i, err)
		}
		if rl.Gen != lastGen+1 || rl.Replicas != 2 || rl.Len != rows {
			t.Fatalf("reload %d response %+v, want gen %d over %d rows", i, rl, lastGen+1, rows)
		}
		lastGen = rl.Gen
	}
	close(stop)
	wg.Wait()

	if answered.Load() == 0 {
		t.Fatal("no queries overlapped the reloads")
	}
	// No response ever claimed a generation the server had not
	// installed.
	if g := maxGen.Load(); g > lastGen {
		t.Fatalf("a response reported generation %d, newest installed is %d", g, lastGen)
	}

	info, err := c.Region(ctx, "live")
	if err != nil {
		t.Fatal(err)
	}
	if info.Gen != lastGen || info.Replicas != 2 {
		t.Fatalf("region info %+v after %d reloads", info, reloads)
	}
}

// TestReplicatedMutationsOverWire drives the write path of a
// replicated region through HTTP: upserts and deletes fan out to all
// replicas, so every subsequent search — whichever replica answers —
// sees them; a reload rebuilds from the staged rows, dropping
// mutations, as documented.
func TestReplicatedMutationsOverWire(t *testing.T) {
	const (
		rows, dims = 80, 5
		k          = 3
	)
	_, _, c, _ := replicatedFixture(t, "mut", wire.RegionConfig{
		Replicas: &wire.ReplicasConfig{Replicas: 3},
	}, rows, dims)
	ctx := context.Background()

	// A probe vector far outside the unit-cube corpus: its own upsert
	// is its unambiguous nearest neighbour at distance zero.
	probe := []float32{50, 50, 50, 50, 50}
	newID := rows + 5
	mr, err := c.Upsert(ctx, "mut", []int{newID}, [][]float32{probe})
	if err != nil {
		t.Fatalf("upsert: %v", err)
	}
	if mr.Seq == 0 {
		t.Fatalf("upsert seq %d", mr.Seq)
	}
	// Ask enough times that several replicas answer; each must see the
	// write.
	seen := map[int]bool{}
	for i := 0; i < 12; i++ {
		resp, err := c.SearchFull(ctx, "mut", probe, k)
		if err != nil {
			t.Fatalf("search %d: %v", i, err)
		}
		if len(resp.Results) == 0 || resp.Results[0].ID != newID || resp.Results[0].Distance != 0 {
			t.Fatalf("search %d (replica %v) missed the upsert: %+v", i, resp.Replica, resp.Results)
		}
		if resp.Replica != nil {
			seen[*resp.Replica] = true
		}
	}
	if len(seen) < 2 {
		t.Fatalf("all answers came from replica set %v; routing never spread", seen)
	}

	dr, err := c.Delete(ctx, "mut", []int{newID})
	if err != nil {
		t.Fatalf("delete: %v", err)
	}
	if dr.Seq != mr.Seq+1 || dr.Applied != 1 {
		t.Fatalf("delete response %+v after seq %d", dr, mr.Seq)
	}
	for i := 0; i < 6; i++ {
		resp, err := c.SearchFull(ctx, "mut", probe, k)
		if err != nil {
			t.Fatalf("post-delete search: %v", err)
		}
		for _, r := range resp.Results {
			if r.ID == newID {
				t.Fatalf("replica %v still serves the deleted row", resp.Replica)
			}
		}
	}

	// Reload rebuilds from staged rows: the upsert/delete history is
	// gone and the region serves exactly the loaded corpus again.
	rl, err := c.Reload(ctx, "mut")
	if err != nil {
		t.Fatalf("reload: %v", err)
	}
	if rl.Len != rows {
		t.Fatalf("reloaded region has %d rows, want the %d staged", rl.Len, rows)
	}
}

// TestReplicatedShardedWritesConflict pins the replicas-of-shards
// combination: searches work, writes are rejected with 409 because
// sharded backends are immutable.
func TestReplicatedShardedWritesConflict(t *testing.T) {
	const (
		rows, dims = 90, 6
		k          = 4
	)
	_, _, c, vecs := replicatedFixture(t, "rs", wire.RegionConfig{
		Replicas: &wire.ReplicasConfig{Replicas: 2},
		Sharding: &wire.ShardingConfig{Shards: 3},
	}, rows, dims)
	ref := referenceRegion(t, vecs, dims)
	ctx := context.Background()

	for i := 0; i < 8; i++ {
		resp, err := c.SearchFull(ctx, "rs", vecs[i], k)
		if err != nil {
			t.Fatalf("search: %v", err)
		}
		want, _, _ := ref.SearchStatsSpan(vecs[i], k, nil)
		if !reflect.DeepEqual(resp.Results, toNeighbors(want)) {
			t.Fatalf("sharded-replicated answer diverged from reference")
		}
	}

	var se *client.StatusError
	if _, err := c.Upsert(ctx, "rs", []int{1}, vecs[:1]); !errors.As(err, &se) || se.Code != http.StatusConflict {
		t.Fatalf("upsert on sharded replicas = %v, want 409", err)
	}
	if _, err := c.Delete(ctx, "rs", []int{1}); !errors.As(err, &se) || se.Code != http.StatusConflict {
		t.Fatalf("delete on sharded replicas = %v, want 409", err)
	}
}

// TestReloadConflicts pins the reload endpoint's refusals: regions
// that are not replicated, or not yet built, answer 409.
func TestReloadConflicts(t *testing.T) {
	srv := New(Options{})
	ts := httptest.NewServer(srv)
	defer srv.Close()
	defer ts.Close()
	c := client.New(ts.URL)
	ctx := context.Background()

	if _, err := c.CreateRegion(ctx, "plain", 4, wire.RegionConfig{}); err != nil {
		t.Fatal(err)
	}
	var se *client.StatusError
	if _, err := c.Reload(ctx, "plain"); !errors.As(err, &se) || se.Code != http.StatusConflict {
		t.Fatalf("reload of unreplicated region = %v, want 409", err)
	}

	if _, err := c.CreateRegion(ctx, "cold", 4, wire.RegionConfig{
		Replicas: &wire.ReplicasConfig{Replicas: 2},
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Reload(ctx, "cold"); !errors.As(err, &se) || se.Code != http.StatusConflict {
		t.Fatalf("reload before build = %v, want 409", err)
	}

	if _, err := c.Reload(ctx, "ghost"); !errors.As(err, &se) || se.Code != http.StatusNotFound {
		t.Fatalf("reload of missing region = %v, want 404", err)
	}
}

// TestReplicatedObservability asserts the replication state shows up
// on every surface: per-replica series and group gauges in /metrics,
// and the replication block in /statsz, all consistent with driven
// traffic.
func TestReplicatedObservability(t *testing.T) {
	const (
		rows, dims = 60, 4
		k          = 3
		queries    = 10
	)
	_, ts, c, vecs := replicatedFixture(t, "ob", wire.RegionConfig{
		Replicas: &wire.ReplicasConfig{Replicas: 2},
	}, rows, dims)
	ctx := context.Background()

	for i := 0; i < queries; i++ {
		if _, err := c.Search(ctx, "ob", vecs[i], k); err != nil {
			t.Fatalf("search: %v", err)
		}
	}
	if _, err := c.Reload(ctx, "ob"); err != nil {
		t.Fatalf("reload: %v", err)
	}

	samples := fetchMetrics(t, ts)
	if got := samples[`ssam_region_gen{region="ob"}`]; got != 2 {
		t.Errorf("ssam_region_gen = %v, want 2 after one reload", got)
	}
	if got := samples[`ssam_region_swaps_total{region="ob"}`]; got != 2 {
		t.Errorf("ssam_region_swaps_total = %v, want 2", got)
	}
	var attempts float64
	for _, rep := range []string{"0", "1"} {
		key := `ssam_replica_queries_total{region="ob",replica="` + rep + `"}`
		v, ok := samples[key]
		if !ok {
			t.Fatalf("/metrics missing %s", key)
		}
		attempts += v
	}
	// The reload warms each new replica with warmQueries staged rows,
	// outside the routed path; routed attempts must cover at least the
	// driven queries.
	if attempts < queries {
		t.Errorf("replica attempt total %v, want >= %d driven queries", attempts, queries)
	}

	stats, err := c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	rep := stats.Regions["ob"].Replication
	if rep == nil {
		t.Fatal("no replication block in /statsz")
	}
	if rep.Gen != 2 || rep.Swaps != 2 || len(rep.Replicas) != 2 {
		t.Fatalf("replication stats %+v", rep)
	}
	if rep.HedgeDelayMs <= 0 {
		t.Fatalf("hedge delay %v ms, want positive", rep.HedgeDelayMs)
	}
	var statAttempts uint64
	for _, rs := range rep.Replicas {
		statAttempts += rs.Queries
	}
	if float64(statAttempts) != attempts {
		t.Fatalf("/statsz attempt total %d disagrees with /metrics %v", statAttempts, attempts)
	}
}
