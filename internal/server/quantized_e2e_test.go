package server_test

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"ssam"
	"ssam/internal/client"
	"ssam/internal/server"
	"ssam/internal/server/wire"
)

// TestQuantizedRegionEndToEnd drives a quantized-mode region through
// the full client → server → region path: the PQ knobs must survive
// the wire, and because codebook training is deterministic in the
// seed, the served answers must equal a direct in-process Region built
// with the same IndexParams, neighbor for neighbor. The region's ADC
// work counters must then show up in both /statsz and /metrics.
func TestQuantizedRegionEndToEnd(t *testing.T) {
	const (
		n, dim = 600, 16
		k      = 5
		nq     = 16
	)
	rows, queries := testData(n, nq, dim)

	srv := server.New(server.Options{})
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()
	ctx := context.Background()
	c := client.New(ts.URL, client.WithTimeout(time.Minute))

	cfg := wire.RegionConfig{
		Mode: "quantized",
		Index: wire.IndexParams{
			M: 4, Sample: 512, Rerank: 64, Seed: 9,
		},
	}
	if _, err := c.CreateRegion(ctx, "pq", dim, cfg); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Load(ctx, "pq", rows); err != nil {
		t.Fatal(err)
	}
	info, err := c.Build(ctx, "pq")
	if err != nil {
		t.Fatal(err)
	}
	if !info.Built || info.Config.Mode != "quantized" {
		t.Fatalf("post-build info: %+v", info)
	}
	if got := info.Config.Index; got != cfg.Index {
		t.Fatalf("index params did not survive the wire: %+v", got)
	}

	direct, err := ssam.New(dim, ssam.Config{
		Mode:  ssam.Quantized,
		Index: ssam.IndexParams(cfg.Index),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer direct.Free()
	if err := direct.LoadFloat32(flatten(rows)); err != nil {
		t.Fatal(err)
	}
	if err := direct.BuildIndex(); err != nil {
		t.Fatal(err)
	}

	for i, q := range queries {
		served, err := c.Search(ctx, "pq", q, k)
		if err != nil {
			t.Fatal(err)
		}
		want, err := direct.Search(q, k)
		if err != nil {
			t.Fatal(err)
		}
		if len(served) != len(want) {
			t.Fatalf("query %d: served %d results, want %d", i, len(served), len(want))
		}
		for j := range want {
			if served[j].ID != want[j].ID || served[j].Distance != want[j].Dist {
				t.Fatalf("query %d rank %d: served %+v, want %+v", i, j, served[j], want[j])
			}
		}
	}

	// Batch path through the same region.
	batch, err := c.SearchBatch(ctx, "pq", queries[:8], k)
	if err != nil {
		t.Fatal(err)
	}
	for i, row := range batch {
		if len(row) != k {
			t.Fatalf("batch row %d: %d results", i, len(row))
		}
	}

	// /statsz carries the quantized work-counter block: one table per
	// query served, n code evals per query, Rerank re-scores per query.
	const queriesServed = nq + 8
	st, err := c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	rs, ok := st.Regions["pq"]
	if !ok {
		t.Fatalf("region missing from /statsz: %+v", st.Regions)
	}
	if rs.Quantized == nil {
		t.Fatal("statsz quantized block missing for a built quantized region")
	}
	if rs.Quantized.TableBuilds != queriesServed {
		t.Errorf("TableBuilds = %d, want %d", rs.Quantized.TableBuilds, queriesServed)
	}
	if rs.Quantized.CodeEvals != queriesServed*n {
		t.Errorf("CodeEvals = %d, want %d", rs.Quantized.CodeEvals, queriesServed*n)
	}
	if want := uint64(queriesServed * cfg.Index.Rerank); rs.Quantized.RerankEvals != want {
		t.Errorf("RerankEvals = %d, want %d", rs.Quantized.RerankEvals, want)
	}

	// /metrics exposes the same counters as ssam_pq_* series.
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	for _, series := range []string{
		`ssam_pq_table_builds_total{region="pq"}`,
		`ssam_pq_code_evals_total{region="pq"}`,
		`ssam_pq_rerank_evals_total{region="pq"}`,
	} {
		if !strings.Contains(text, series) {
			t.Errorf("/metrics missing %s", series)
		}
	}

	if err := c.Free(ctx, "pq"); err != nil {
		t.Fatal(err)
	}
}

// TestQuantizedRejections pins the wire-level validation for quantized
// regions: a negative re-rank depth and an out-of-range subquantizer
// count must be rejected at create/build with a 4xx, not a panic.
func TestQuantizedRejections(t *testing.T) {
	srv := server.New(server.Options{})
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()
	ctx := context.Background()
	c := client.New(ts.URL, client.WithTimeout(time.Minute))

	// Negative rerank is rejected at create.
	_, err := c.CreateRegion(ctx, "bad", 8, wire.RegionConfig{
		Mode:  "quantized",
		Index: wire.IndexParams{Rerank: -1},
	})
	if err == nil {
		t.Fatal("negative rerank accepted at create")
	}

	// M larger than the dimensionality fails at build (the codebook has
	// no subspace to give the extra subquantizers).
	rows, _ := testData(50, 1, 8)
	if _, err := c.CreateRegion(ctx, "wide", 8, wire.RegionConfig{
		Mode:  "quantized",
		Index: wire.IndexParams{M: 9},
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Load(ctx, "wide", rows); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Build(ctx, "wide"); err == nil {
		t.Fatal("M > dims accepted at build")
	}
}
