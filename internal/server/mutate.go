package server

// The write path: upsert/delete/compact endpoints over ssam.Region's
// mutable store (internal/mutate). Mutations ride the same admission
// gate as searches — a draining or saturated server sheds writes with
// 503 too — but are never retried by the client (a blind re-send would
// double-commit sequence numbers). Sharded regions reject mutation
// outright: the partitioner bakes row placement at load time, so a
// per-shard write path would need routing state the cluster does not
// keep (reload instead).

import (
	"errors"
	"net/http"
	"time"

	"ssam"
	"ssam/internal/obs"
	"ssam/internal/server/wire"
)

// mutator is what the write path needs from a backend: both
// *ssam.Region and *replica.Group satisfy it. A group fans each
// mutation out to every replica in writer order (seq-identical by
// construction); a group of sharded backends rejects writes with
// ssam.ErrImmutableEngine exactly like a plain sharded region.
type mutator interface {
	Upsert(id int, v []float32) (uint64, error)
	Delete(id int) (seq uint64, ok bool, err error)
	CompactNow() (ssam.CompactResult, error)
	Len() int
}

// mutableRegion snapshots the entry's write-path backend, or writes
// the rejection: sharded regions are immutable over the wire (409),
// and mutation before build is a sequencing error (409, same as
// searching an unbuilt region).
func (e *regionEntry) mutableRegion(w http.ResponseWriter) (mutator, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.cluster != nil {
		writeErr(w, http.StatusConflict,
			"region %q is sharded; sharded regions are immutable (reload to change data)", e.name)
		return nil, false
	}
	if !e.built {
		writeErr(w, http.StatusConflict, "region %q has no built index (POST .../build first)", e.name)
		return nil, false
	}
	if e.group != nil {
		return e.group, true
	}
	return e.region, true
}

// mutationCode maps a region mutation error to its status: engine
// rejections (non-Linear modes) are conflicts with the region's
// configuration, everything else is a bad request.
func mutationCode(err error) int {
	if errors.Is(err, ssam.ErrImmutableEngine) {
		return http.StatusConflict
	}
	return http.StatusBadRequest
}

func (s *Server) handleUpsert(w http.ResponseWriter, r *http.Request) {
	e := s.entry(w, r)
	if e == nil {
		return
	}
	data, ok := readBody(w, r)
	if !ok {
		return
	}
	req, err := wire.DecodeUpsert(data)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	// The decoder guarantees uniform dims; one row pins them to the region.
	if len(req.Vectors[0]) != e.dims {
		writeErr(w, http.StatusBadRequest, "vector dim %d, want %d", len(req.Vectors[0]), e.dims)
		return
	}
	forced := r.Header.Get(TraceHeader) != ""
	tr := s.tracer.Trace("upsert", forced,
		obs.Tag{Key: "region", Value: e.name}, obs.Tag{Key: "rows", Value: len(req.IDs)})
	root := tr.Root()

	asp := root.Start("admission")
	release := s.admit(w)
	asp.End()
	if release == nil {
		s.tracer.Finish(tr)
		return
	}
	defer release()
	region, ok := e.mutableRegion(w)
	if !ok {
		s.tracer.Finish(tr)
		return
	}
	msp := root.Start("mutate")
	var seq uint64
	for i, id := range req.IDs {
		if seq, err = region.Upsert(id, req.Vectors[i]); err != nil {
			break
		}
	}
	msp.SetTag("seq", seq)
	msp.End()
	if err != nil {
		s.tracer.Finish(tr)
		writeErr(w, mutationCode(err), "%v", err)
		return
	}
	e.stats.recordWrites(len(req.IDs))
	out := wire.MutateResponse{Seq: seq, Applied: len(req.IDs), Len: region.Len()}
	if td := s.tracer.Finish(tr); forced {
		out.Trace = td
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	e := s.entry(w, r)
	if e == nil {
		return
	}
	data, ok := readBody(w, r)
	if !ok {
		return
	}
	req, err := wire.DecodeDelete(data)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	forced := r.Header.Get(TraceHeader) != ""
	tr := s.tracer.Trace("delete", forced,
		obs.Tag{Key: "region", Value: e.name}, obs.Tag{Key: "rows", Value: len(req.IDs)})
	root := tr.Root()

	asp := root.Start("admission")
	release := s.admit(w)
	asp.End()
	if release == nil {
		s.tracer.Finish(tr)
		return
	}
	defer release()
	region, ok := e.mutableRegion(w)
	if !ok {
		s.tracer.Finish(tr)
		return
	}
	msp := root.Start("mutate")
	applied := 0
	var missing []int
	var seq uint64
	for _, id := range req.IDs {
		var hit bool
		if seq, hit, err = region.Delete(id); err != nil {
			break
		}
		if hit {
			applied++
		} else {
			missing = append(missing, id)
		}
	}
	msp.SetTag("seq", seq)
	msp.End()
	if err != nil {
		s.tracer.Finish(tr)
		writeErr(w, mutationCode(err), "%v", err)
		return
	}
	e.stats.recordWrites(applied)
	out := wire.MutateResponse{Seq: seq, Applied: applied, Missing: missing, Len: region.Len()}
	if td := s.tracer.Finish(tr); forced {
		out.Trace = td
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleCompact(w http.ResponseWriter, r *http.Request) {
	e := s.entry(w, r)
	if e == nil {
		return
	}
	release := s.admit(w)
	if release == nil {
		return
	}
	defer release()
	region, ok := e.mutableRegion(w)
	if !ok {
		return
	}
	res, err := region.CompactNow()
	if err != nil {
		// Only failure mode: the region has never been mutated (or was
		// freed under us) — a sequencing conflict, not a bad request.
		writeErr(w, http.StatusConflict, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, wire.CompactResponse{
		Seq:             res.Seq,
		VaultsRewritten: res.VaultsRewritten,
		Rebalanced:      res.Rebalanced,
		RowsDropped:     res.RowsDropped,
		Len:             res.Live,
	})
}

// installCompactHook makes every layout-changing compaction pass
// (background or forced) visible in the observability surfaces: a
// forced trace in the /tracez ring carrying the pass summary, plus the
// region's compaction counter. Installed at build time, before any
// write can migrate the region to the mutable store; the hook runs on
// the compactor goroutine, so it touches only concurrency-safe state.
func (s *Server) installCompactHook(e *regionEntry) {
	name, stats := e.name, e.stats
	e.region.SetCompactHook(func(res ssam.CompactResult) {
		if !res.Changed() {
			return
		}
		stats.recordCompaction()
		tr := s.tracer.Trace("compact", true,
			obs.Tag{Key: "region", Value: name},
			obs.Tag{Key: "seq", Value: res.Seq},
			obs.Tag{Key: "vaults_rewritten", Value: res.VaultsRewritten},
			obs.Tag{Key: "rebalanced", Value: res.Rebalanced},
			obs.Tag{Key: "rows_dropped", Value: res.RowsDropped},
			obs.Tag{Key: "live_rows", Value: res.Live},
			obs.Tag{Key: "elapsed_us", Value: float64(res.Elapsed) / float64(time.Microsecond)})
		s.tracer.Finish(tr)
	})
}

// toWireMutation converts a region's write-path counters to the wire
// form attached to /statsz region blocks.
func toWireMutation(st ssam.MutationStats) *wire.MutationStats {
	return &wire.MutationStats{
		Seq:           st.Seq,
		LiveRows:      st.Live,
		DeadRows:      st.Dead,
		Upserts:       st.Upserts,
		Deletes:       st.Deletes,
		CompactPasses: st.CompactPasses,
		VaultRewrites: st.VaultRewrites,
		Rebalances:    st.Rebalances,
		GarbageRatio:  st.GarbageRatio,
	}
}
