// Package server puts SSAM regions behind a socket: an HTTP/JSON
// query service on the stdlib mux that manages a registry of named
// regions, coalesces concurrent single-query requests into region
// batch searches (internal/server/batcher), sheds load with 503 +
// Retry-After once a bounded in-flight budget is exhausted, and
// exposes serving metrics at /statsz.
//
// A region created with config.sharding is the sharded kind: the
// dataset is partitioned across N internal/cluster shards (each its
// own simulated module) and every query is scatter-gathered with a
// global top-k merge, per-shard deadlines, optional hedging, and —
// in partial-result mode — degraded responses that carry the failed
// shard list instead of an error. Sharded regions bypass the
// micro-batcher (the fan-out itself is the parallelism) and report
// per-shard depth and latency in /statsz.
//
// A region created with config.replicas is the replicated kind: N
// interchangeable copies of the backend (each its own region, or its
// own cluster when config.sharding is also set) behind an
// internal/replica.Group — power-of-two-choices load-aware routing,
// hedged reads across replicas, transparent failover, seq-ordered
// write fan-out, and POST .../reload for zero-downtime generational
// rebuilds (see replicated.go).
//
// The endpoint set is the paper's Fig. 4 driver interface lifted onto
// HTTP verbs:
//
//	POST   /regions                  nmalloc + nmode (create named region)
//	POST   /regions/{name}/load      nmemcpy
//	POST   /regions/{name}/build     nbuild_index
//	POST   /regions/{name}/search    nwrite_query + nexec + nread_result (micro-batched)
//	POST   /regions/{name}/searchbatch  explicit batch, bypasses the batcher
//	POST   /regions/{name}/upsert    insert/replace rows by id (Linear regions)
//	POST   /regions/{name}/delete    tombstone rows by id
//	POST   /regions/{name}/compact   one synchronous compaction pass
//	POST   /regions/{name}/reload    zero-downtime generational rebuild (replicated regions)
//	GET    /regions[/{name}]         registry inspection
//	DELETE /regions/{name}           nfree
//	GET    /statsz                   per-region QPS, batch sizes, queue depth, p50/p99
//	GET    /metrics                  Prometheus text exposition of the same counters
//	GET    /tracez                   recent sampled traces (bounded ring)
//	GET    /healthz                  liveness
//
// Observability (internal/obs) is threaded through the whole search
// path: requests are head-sampled (Options.TraceSampleEvery) or
// force-traced via the X-SSAM-Trace header, producing a span tree —
// admission wait, batch queue/exec (or fan-out/merge for sharded
// regions, with one span per shard attempt), engine execution — that
// is retained for /tracez and, for forced traces, returned inline in
// the response.
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"ssam"
	"ssam/internal/cluster"
	"ssam/internal/obs"
	"ssam/internal/replica"
	"ssam/internal/server/batcher"
	"ssam/internal/server/wire"
)

// TraceHeader forces sampling of the request that carries it (any
// non-empty value); the response then embeds the finished trace.
const TraceHeader = "X-SSAM-Trace"

// Options tunes a Server. Zero values select the defaults.
type Options struct {
	// MaxInFlight bounds concurrently admitted search requests;
	// arrivals beyond it receive 503 + Retry-After (default 256).
	MaxInFlight int
	// BatchWindow and MaxBatch configure each region's micro-batcher
	// (defaults 2ms / 64).
	BatchWindow time.Duration
	MaxBatch    int
	// RetryAfter is the hint returned with shed load (default 1s).
	RetryAfter time.Duration
	// MaxBodyBytes caps request bodies (default 1 GiB; loads are big).
	MaxBodyBytes int64
	// TraceSampleEvery head-samples one search request in every N for
	// the /tracez ring (0, the default, disables ambient sampling;
	// X-SSAM-Trace requests are always traced).
	TraceSampleEvery int
	// TraceRing bounds how many finished traces /tracez retains
	// (default 128).
	TraceRing int
}

func (o *Options) fill() {
	if o.MaxInFlight <= 0 {
		o.MaxInFlight = 256
	}
	if o.BatchWindow <= 0 {
		o.BatchWindow = 2 * time.Millisecond
	}
	if o.MaxBatch <= 0 {
		o.MaxBatch = 64
	}
	if o.RetryAfter <= 0 {
		o.RetryAfter = time.Second
	}
	if o.MaxBodyBytes <= 0 {
		o.MaxBodyBytes = 1 << 30
	}
}

// Server is the query service. It implements http.Handler; wrap it in
// an http.Server (or httptest.Server) to serve traffic.
type Server struct {
	opts  Options
	mux   *http.ServeMux
	sem   chan struct{} // admission tokens
	start time.Time

	tracer   *obs.Tracer
	registry *obs.Registry

	rejected atomic.Uint64
	draining atomic.Bool

	mu      sync.RWMutex // registry
	regions map[string]*regionEntry
}

// regionEntry is one named region plus its serving attachments.
// Exactly one of region, cluster, and group is non-nil: cluster
// entries are the sharded kind (config.sharding at create time) and
// scatter-gather each query themselves instead of riding the
// micro-batcher; group entries are the replicated kind
// (config.replicas) and route each query to one of N interchangeable
// backend copies (see replicated.go).
type regionEntry struct {
	name    string
	dims    int
	cfg     ssam.Config
	cfgWire wire.RegionConfig
	stats   *regionStats

	// shardOpts backs per-replica cluster construction when the region
	// is both replicated and sharded (fixed at create time).
	shardOpts cluster.Options

	mu      sync.Mutex // guards mutation (load/build/free) and the fields below
	region  *ssam.Region
	cluster *cluster.Cluster
	group   *replica.Group // fixed at create time (generations swap inside it)
	data    []float32      // accumulated rows, so Append loads can restage
	built   bool
	batcher *batcher.Batcher // non-nil once built (unsharded regions only)
}

// New returns a ready-to-serve Server.
func New(opts Options) *Server {
	opts.fill()
	s := &Server{
		opts:     opts,
		mux:      http.NewServeMux(),
		sem:      make(chan struct{}, opts.MaxInFlight),
		start:    time.Now(),
		tracer:   obs.NewTracer(opts.TraceSampleEvery, opts.TraceRing),
		registry: obs.NewRegistry(),
		regions:  make(map[string]*regionEntry),
	}
	s.registerServerMetrics()
	s.mux.HandleFunc("POST /regions", s.handleCreate)
	s.mux.HandleFunc("GET /regions", s.handleList)
	s.mux.HandleFunc("GET /regions/{name}", s.handleInfo)
	s.mux.HandleFunc("DELETE /regions/{name}", s.handleFree)
	s.mux.HandleFunc("POST /regions/{name}/load", s.handleLoad)
	s.mux.HandleFunc("POST /regions/{name}/build", s.handleBuild)
	s.mux.HandleFunc("POST /regions/{name}/search", s.handleSearch)
	s.mux.HandleFunc("POST /regions/{name}/searchbatch", s.handleSearchBatch)
	s.mux.HandleFunc("POST /regions/{name}/upsert", s.handleUpsert)
	s.mux.HandleFunc("POST /regions/{name}/delete", s.handleDelete)
	s.mux.HandleFunc("POST /regions/{name}/compact", s.handleCompact)
	s.mux.HandleFunc("POST /regions/{name}/reload", s.handleReload)
	s.mux.HandleFunc("GET /statsz", s.handleStatsz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /tracez", s.handleTracez)
	s.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Write([]byte("ok\n"))
	})
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, s.opts.MaxBodyBytes)
	s.mux.ServeHTTP(w, r)
}

// StartDrain makes the server shed all subsequent search traffic with
// 503 (clients retry against a replacement) while leaving in-flight
// batches to complete. Call before http.Server.Shutdown so connection
// draining isn't stuck behind batching windows.
func (s *Server) StartDrain() { s.draining.Store(true) }

// Close drains every region's batcher (flushing open batches) and
// frees the regions. The server sheds new work from the moment Close
// begins; call after http.Server.Shutdown has returned.
func (s *Server) Close() {
	s.StartDrain()
	s.mu.Lock()
	entries := make([]*regionEntry, 0, len(s.regions))
	for _, e := range s.regions {
		entries = append(entries, e)
	}
	s.regions = make(map[string]*regionEntry)
	s.mu.Unlock()
	for _, e := range entries {
		s.registry.Unregister(obs.Labels{"region": e.name})
		e.mu.Lock()
		if e.batcher != nil {
			e.batcher.Close()
		}
		if e.region != nil {
			e.region.Free()
		}
		if e.cluster != nil {
			e.cluster.Free()
		}
		if e.group != nil {
			e.group.Free()
		}
		e.mu.Unlock()
	}
}

// --- helpers ---

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, wire.ErrorResponse{Error: fmt.Sprintf(format, args...)})
}

// readBody slurps the request body for the strict wire decoders
// (which reject unknown fields, trailing garbage, and non-finite
// floats — see internal/server/wire/decode.go).
func readBody(w http.ResponseWriter, r *http.Request) ([]byte, bool) {
	data, err := io.ReadAll(r.Body)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "reading request body: %v", err)
		return nil, false
	}
	return data, true
}

func (s *Server) entry(w http.ResponseWriter, r *http.Request) *regionEntry {
	name := r.PathValue("name")
	s.mu.RLock()
	e := s.regions[name]
	s.mu.RUnlock()
	if e == nil {
		writeErr(w, http.StatusNotFound, "no region %q", name)
	}
	return e
}

// admit takes an admission token, or sheds the request. The returned
// release func is nil when the request was shed.
func (s *Server) admit(w http.ResponseWriter) func() {
	if s.draining.Load() {
		s.shed(w, "server draining")
		return nil
	}
	select {
	case s.sem <- struct{}{}:
		return func() { <-s.sem }
	default:
		s.shed(w, "server at capacity (%d in flight)", s.opts.MaxInFlight)
		return nil
	}
}

func (s *Server) shed(w http.ResponseWriter, format string, args ...any) {
	s.rejected.Add(1)
	secs := int(s.opts.RetryAfter / time.Second)
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.Itoa(secs))
	writeErr(w, http.StatusServiceUnavailable, format, args...)
}

func toShardingOptions(sc *wire.ShardingConfig) (cluster.Options, error) {
	part, err := cluster.ParsePartition(sc.Partition)
	if err != nil {
		return cluster.Options{}, err
	}
	return cluster.Options{
		Shards:        sc.Shards,
		Partition:     part,
		ShardDeadline: time.Duration(sc.DeadlineMs * float64(time.Millisecond)),
		HedgeAfter:    time.Duration(sc.HedgeMs * float64(time.Millisecond)),
		AllowPartial:  sc.AllowPartial,
	}, nil
}

func toConfig(wc wire.RegionConfig) (ssam.Config, error) {
	var cfg ssam.Config
	var err error
	if wc.Metric != "" {
		if cfg.Metric, err = ssam.ParseMetric(wc.Metric); err != nil {
			return cfg, err
		}
	}
	if cfg.Metric == ssam.Hamming {
		return cfg, errors.New("hamming regions are not servable over the wire (no JSON binary-code format)")
	}
	if wc.Mode != "" {
		if cfg.Mode, err = ssam.ParseMode(wc.Mode); err != nil {
			return cfg, err
		}
	}
	if wc.Execution != "" {
		if cfg.Execution, err = ssam.ParseExecution(wc.Execution); err != nil {
			return cfg, err
		}
	}
	cfg.VectorLength = wc.VectorLength
	cfg.Workers = wc.Workers
	cfg.Vaults = wc.Vaults
	cfg.Index = ssam.IndexParams(wc.Index)
	if wc.Storage != nil {
		cfg.Storage = &ssam.Storage{
			Path:        wc.Storage.Path,
			BudgetBytes: wc.Storage.BudgetBytes,
			Prefetch:    wc.Storage.Prefetch,
		}
	}
	return cfg, nil
}

func toNeighbors(res []ssam.Result) []wire.Neighbor {
	out := make([]wire.Neighbor, len(res))
	for i, r := range res {
		out[i] = wire.Neighbor{ID: r.ID, Distance: r.Dist}
	}
	return out
}

// --- handlers ---

func (s *Server) handleCreate(w http.ResponseWriter, r *http.Request) {
	data, ok := readBody(w, r)
	if !ok {
		return
	}
	req, err := wire.DecodeCreateRegion(data)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	cfg, err := toConfig(req.Config)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	e := &regionEntry{
		name: req.Name, dims: req.Dims, cfg: cfg, cfgWire: req.Config,
	}
	switch {
	case req.Config.Replicas != nil:
		if err := s.newGroupEntry(e, req); err != nil {
			writeErr(w, http.StatusBadRequest, "%v", err)
			return
		}
	case req.Config.Sharding != nil:
		opts, err := toShardingOptions(req.Config.Sharding)
		if err != nil {
			writeErr(w, http.StatusBadRequest, "%v", err)
			return
		}
		if e.cluster, err = cluster.New(req.Dims, cfg, opts); err != nil {
			writeErr(w, http.StatusBadRequest, "%v", err)
			return
		}
	default:
		if e.region, err = ssam.New(req.Dims, cfg); err != nil {
			writeErr(w, http.StatusBadRequest, "%v", err)
			return
		}
	}
	s.mu.Lock()
	if _, dup := s.regions[req.Name]; dup {
		s.mu.Unlock()
		e.free()
		writeErr(w, http.StatusConflict, "region %q already exists", req.Name)
		return
	}
	// Metric series are registered only after the dup check, so a
	// rejected duplicate never leaves series behind (registering twice
	// for one name would panic the registry).
	e.stats = newRegionStats(s.registry, req.Name)
	s.registerRegionMetrics(e)
	s.regions[req.Name] = e
	s.mu.Unlock()
	writeJSON(w, http.StatusCreated, e.info())
}

// free releases the entry's backing store (caller holds e.mu or has
// exclusive ownership).
func (e *regionEntry) free() {
	if e.region != nil {
		e.region.Free()
	}
	if e.cluster != nil {
		e.cluster.Free()
	}
	if e.group != nil {
		e.group.Free()
	}
}

func (e *regionEntry) info() wire.RegionInfo {
	info := wire.RegionInfo{
		Name: e.name, Dims: e.dims, Built: e.built, Config: e.cfgWire,
	}
	switch {
	case e.group != nil:
		info.Len = e.group.Len()
		info.Replicas = e.group.Replicas()
		info.Gen = e.group.Gen()
		if sc := e.cfgWire.Sharding; sc != nil {
			info.Shards = sc.Shards
		}
	case e.cluster != nil:
		info.Len = e.cluster.Len()
		info.Shards = e.cluster.Shards()
	default:
		info.Len = e.region.Len()
	}
	return info
}

func (s *Server) handleList(w http.ResponseWriter, _ *http.Request) {
	s.mu.RLock()
	entries := make([]*regionEntry, 0, len(s.regions))
	for _, e := range s.regions {
		entries = append(entries, e)
	}
	s.mu.RUnlock()
	infos := make([]wire.RegionInfo, 0, len(entries))
	for _, e := range entries {
		e.mu.Lock()
		infos = append(infos, e.info())
		e.mu.Unlock()
	}
	writeJSON(w, http.StatusOK, infos)
}

func (s *Server) handleInfo(w http.ResponseWriter, r *http.Request) {
	e := s.entry(w, r)
	if e == nil {
		return
	}
	e.mu.Lock()
	info := e.info()
	e.mu.Unlock()
	writeJSON(w, http.StatusOK, info)
}

func (s *Server) handleLoad(w http.ResponseWriter, r *http.Request) {
	e := s.entry(w, r)
	if e == nil {
		return
	}
	data, ok := readBody(w, r)
	if !ok {
		return
	}
	req, err := wire.DecodeLoad(data)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	for i, v := range req.Vectors {
		if len(v) != e.dims {
			writeErr(w, http.StatusBadRequest, "vector %d has dim %d, want %d", i, len(v), e.dims)
			return
		}
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if !req.Append {
		e.data = e.data[:0]
	}
	for _, v := range req.Vectors {
		e.data = append(e.data, v...)
	}
	if e.group != nil {
		// Replicated regions only stage: the serving generation keeps
		// answering from the old dataset until build (first time) or
		// reload cuts over — that is the zero-downtime contract.
		writeJSON(w, http.StatusOK, e.info())
		return
	}
	if e.cluster != nil {
		err = e.cluster.LoadFloat32(e.data)
	} else {
		err = e.region.LoadFloat32(e.data)
	}
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	// A reload invalidates the built index; stop batching until the
	// caller rebuilds.
	if e.batcher != nil {
		e.batcher.Close()
		e.batcher = nil
	}
	e.built = false
	writeJSON(w, http.StatusOK, e.info())
}

func (s *Server) handleBuild(w http.ResponseWriter, r *http.Request) {
	e := s.entry(w, r)
	if e == nil {
		return
	}
	if e.group != nil {
		// First build of a replicated region: install generation 1 from
		// the staged dataset (later rebuilds go through .../reload).
		// The group pointer is fixed at create time, so reading it
		// without e.mu is safe.
		s.buildGroupGeneration(w, e)
		return
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.cluster != nil {
		// Sharded regions scatter-gather each query across shards
		// themselves; the micro-batcher stays out of the way.
		if err := e.cluster.BuildIndex(); err != nil {
			writeErr(w, http.StatusConflict, "%v", err)
			return
		}
		e.built = true
		writeJSON(w, http.StatusOK, e.info())
		return
	}
	if err := e.region.BuildIndex(); err != nil {
		writeErr(w, http.StatusConflict, "%v", err)
		return
	}
	if e.batcher != nil {
		e.batcher.Close()
	}
	// Built Linear regions can take writes; surface compaction passes
	// in /tracez and the region counters from the moment that becomes
	// possible (the hook is installed before any write can migrate the
	// region to its mutable store).
	s.installCompactHook(e)
	region := e.region
	e.batcher = batcher.New(region.SearchBatchSpan, batcher.Options{
		Window:   s.opts.BatchWindow,
		MaxBatch: s.opts.MaxBatch,
		OnFlush:  func(size int, _ time.Duration) { e.stats.recordBatch(size) },
	})
	e.built = true
	writeJSON(w, http.StatusOK, e.info())
}

func (s *Server) handleFree(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	s.mu.Lock()
	e := s.regions[name]
	delete(s.regions, name)
	s.mu.Unlock()
	if e == nil {
		writeErr(w, http.StatusNotFound, "no region %q", name)
		return
	}
	// Drop the metric series before freeing: scrape callbacks read the
	// cluster's counters, and Unregister synchronizes with any render
	// in progress (both hold the registry lock). Must run outside e.mu
	// — the queue-depth callback locks e.mu under the registry lock.
	s.registry.Unregister(obs.Labels{"region": name})
	e.mu.Lock()
	if e.batcher != nil {
		e.batcher.Close()
		e.batcher = nil
	}
	e.free()
	e.built = false
	e.mu.Unlock()
	w.WriteHeader(http.StatusNoContent)
}

// searchable snapshots the entry's serving state; it reports an error
// response when the region has no built index yet. Sharded entries
// return a cluster, replicated entries a group, each with the other
// kinds nil.
func (e *regionEntry) searchable(w http.ResponseWriter) (*batcher.Batcher, *cluster.Cluster, *replica.Group, *ssam.Region, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if !e.built || (e.cluster == nil && e.group == nil && e.batcher == nil) {
		writeErr(w, http.StatusConflict, "region %q has no built index (POST .../build first)", e.name)
		return nil, nil, nil, nil, false
	}
	return e.batcher, e.cluster, e.group, e.region, true
}

func (s *Server) handleSearch(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	e := s.entry(w, r)
	if e == nil {
		return
	}
	data, ok := readBody(w, r)
	if !ok {
		return
	}
	req, err := wire.DecodeSearch(data)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	if len(req.Query) != e.dims {
		writeErr(w, http.StatusBadRequest, "query dim %d, want %d", len(req.Query), e.dims)
		return
	}
	forced := r.Header.Get(TraceHeader) != ""
	tr := s.tracer.Trace("search", forced,
		obs.Tag{Key: "region", Value: e.name}, obs.Tag{Key: "k", Value: req.K})
	root := tr.Root()

	asp := root.Start("admission")
	release := s.admit(w)
	asp.End()
	if release == nil {
		s.tracer.Finish(tr)
		return
	}
	defer release()
	b, cl, grp, _, ok := e.searchable(w)
	if !ok {
		s.tracer.Finish(tr)
		return
	}
	if grp != nil {
		// Replicated queries bypass the micro-batcher too: the group
		// routes each query to one replica (hedging to a second), so
		// the "batch" stage is a size-1 bypass holding the route spans.
		bsp := root.Start("batch",
			obs.Tag{Key: "bypass", Value: true}, obs.Tag{Key: "size", Value: 1})
		resp, err := grp.Search(req.Query, req.K, bsp)
		bsp.End()
		if err != nil {
			s.tracer.Finish(tr)
			writeErr(w, http.StatusInternalServerError, "%v", err)
			return
		}
		if resp.Degraded {
			e.stats.recordDegraded()
		}
		e.stats.recordQueries(1, time.Since(start))
		rep := resp.Replica
		out := wire.SearchResponse{
			Results:      toNeighbors(resp.Results),
			Degraded:     resp.Degraded,
			FailedShards: resp.FailedShards,
			Hedges:       resp.Hedges + resp.ShardHedges,
			Replica:      &rep,
			Gen:          resp.Gen,
			Failovers:    resp.Failovers,
		}
		if td := s.tracer.Finish(tr); forced {
			out.Trace = td
		}
		writeJSON(w, http.StatusOK, out)
		return
	}
	if cl != nil {
		// Sharded queries bypass the micro-batcher: the fan-out itself
		// is the parallelism, so the "batch" stage is a size-1 bypass
		// holding the fanout and merge spans.
		bsp := root.Start("batch",
			obs.Tag{Key: "bypass", Value: true}, obs.Tag{Key: "size", Value: 1})
		resp, err := cl.SearchTraced(req.Query, req.K, bsp)
		bsp.End()
		if err != nil {
			s.tracer.Finish(tr)
			writeErr(w, http.StatusInternalServerError, "%v", err)
			return
		}
		if resp.Degraded {
			e.stats.recordDegraded()
		}
		e.stats.recordQueries(1, time.Since(start))
		out := wire.SearchResponse{
			Results:      toNeighbors(resp.Results),
			Degraded:     resp.Degraded,
			FailedShards: resp.FailedShards,
			Hedges:       resp.Hedges,
		}
		if td := s.tracer.Finish(tr); forced {
			out.Trace = td
		}
		writeJSON(w, http.StatusOK, out)
		return
	}
	bsp := root.Start("batch")
	res, err := b.SearchSpan(r.Context(), req.Query, req.K, bsp)
	bsp.End()
	if err != nil {
		s.tracer.Finish(tr)
		if errors.Is(err, r.Context().Err()) {
			return // client went away; nothing useful to write
		}
		writeErr(w, http.StatusInternalServerError, "%v", err)
		return
	}
	e.stats.recordQueries(1, time.Since(start))
	out := wire.SearchResponse{Results: toNeighbors(res)}
	if td := s.tracer.Finish(tr); forced {
		out.Trace = td
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleSearchBatch(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	e := s.entry(w, r)
	if e == nil {
		return
	}
	data, ok := readBody(w, r)
	if !ok {
		return
	}
	req, err := wire.DecodeSearchBatch(data)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	forced := r.Header.Get(TraceHeader) != ""
	tr := s.tracer.Trace("searchbatch", forced,
		obs.Tag{Key: "region", Value: e.name}, obs.Tag{Key: "k", Value: req.K})
	root := tr.Root()

	asp := root.Start("admission")
	release := s.admit(w)
	asp.End()
	if release == nil {
		s.tracer.Finish(tr)
		return
	}
	defer release()
	_, cl, grp, region, ok := e.searchable(w)
	if !ok {
		s.tracer.Finish(tr)
		return
	}
	resp := wire.SearchBatchResponse{}
	var batch [][]ssam.Result
	bsp := root.Start("batch", obs.Tag{Key: "size", Value: len(req.Queries)})
	switch {
	case grp != nil:
		var gr replica.BatchResponse
		if gr, err = grp.SearchBatch(req.Queries, req.K, bsp); err == nil {
			batch = gr.Results
			resp.Degraded = gr.Degraded
			resp.FailedShards = gr.FailedShards
			resp.Hedges = gr.Hedges + gr.ShardHedges
			rep := gr.Replica
			resp.Replica = &rep
			resp.Gen = gr.Gen
			resp.Failovers = gr.Failovers
			if gr.Degraded {
				e.stats.recordDegraded()
			}
		}
	case cl != nil:
		var br cluster.BatchResponse
		if br, err = cl.SearchBatchTraced(req.Queries, req.K, bsp); err == nil {
			batch = br.Results
			resp.Degraded = br.Degraded
			resp.FailedShards = br.FailedShards
			resp.Hedges = br.Hedges
			if br.Degraded {
				e.stats.recordDegraded()
			}
		}
	default:
		batch, err = region.SearchBatchSpan(req.Queries, req.K, bsp)
	}
	bsp.End()
	if err != nil {
		s.tracer.Finish(tr)
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	resp.Results = make([][]wire.Neighbor, len(batch))
	for i, res := range batch {
		resp.Results[i] = toNeighbors(res)
	}
	e.stats.recordBatch(len(req.Queries))
	e.stats.recordQueries(len(req.Queries), time.Since(start))
	if td := s.tracer.Finish(tr); forced {
		resp.Trace = td
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleStatsz(w http.ResponseWriter, _ *http.Request) {
	s.mu.RLock()
	entries := make(map[string]*regionEntry, len(s.regions))
	for name, e := range s.regions {
		entries[name] = e
	}
	s.mu.RUnlock()

	resp := wire.StatsResponse{
		UptimeSeconds: time.Since(s.start).Seconds(),
		InFlight:      len(s.sem),
		MaxInFlight:   s.opts.MaxInFlight,
		Rejected:      s.rejected.Load(),
		Draining:      s.draining.Load(),
		Regions:       make(map[string]wire.RegionStats, len(entries)),
	}
	for name, e := range entries {
		depth := 0
		var shardStats []wire.ShardStats
		var repStats *wire.ReplicationStats
		e.mu.Lock()
		region := e.region
		if e.batcher != nil {
			depth = e.batcher.Pending()
		}
		if e.cluster != nil {
			for _, st := range e.cluster.ShardStats() {
				depth += st.InFlight
				shardStats = append(shardStats, wire.ShardStats{
					Shard:        st.Shard,
					Len:          st.Len,
					InFlight:     st.InFlight,
					Queries:      st.Queries,
					Failures:     st.Failures,
					Timeouts:     st.Timeouts,
					Hedges:       st.Hedges,
					AvgLatencyMs: float64(st.AvgLatency) / float64(time.Millisecond),
				})
			}
		}
		e.mu.Unlock()
		if e.group != nil {
			gst := e.group.Stats()
			repStats = toWireReplication(gst)
			for _, r := range gst.Replicas {
				depth += r.InFlight
			}
		}
		rs := e.stats.snapshot(depth)
		rs.Shards = shardStats
		rs.Replication = repStats
		if region != nil {
			if mst, ok := region.MutationStats(); ok {
				rs.Mutation = toWireMutation(mst)
			}
			if qst, ok := region.QuantizedStats(); ok {
				rs.Quantized = &wire.QuantizedStats{
					TableBuilds: qst.TableBuilds,
					CodeEvals:   qst.CodeEvals,
					RerankEvals: qst.RerankEvals,
				}
			}
			if tst, ok := region.TieredStats(); ok {
				rs.Tiered = &wire.TieredStats{
					Reads:         tst.Reads,
					BytesRead:     tst.BytesRead,
					CacheHits:     tst.CacheHits,
					CacheMisses:   tst.CacheMisses,
					Evictions:     tst.Evictions,
					PrefetchHits:  tst.PrefetchHits,
					Stalls:        tst.Stalls,
					ResidentBytes: tst.ResidentBytes,
					BudgetBytes:   tst.BudgetBytes,
				}
			}
		}
		resp.Regions[name] = rs
	}
	writeJSON(w, http.StatusOK, resp)
}
