package server_test

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"ssam"
	"ssam/internal/client"
	"ssam/internal/server"
	"ssam/internal/server/wire"
)

// testData builds a deterministic dataset: n rows of the given dim,
// plus nq query vectors.
func testData(n, nq, dim int) (rows, queries [][]float32) {
	rng := rand.New(rand.NewSource(42))
	gen := func(count int) [][]float32 {
		out := make([][]float32, count)
		for i := range out {
			v := make([]float32, dim)
			for d := range v {
				v[d] = float32(rng.NormFloat64())
			}
			out[i] = v
		}
		return out
	}
	return gen(n), gen(nq)
}

func flatten(rows [][]float32) []float32 {
	var out []float32
	for _, r := range rows {
		out = append(out, r...)
	}
	return out
}

// TestEndToEndServing is the acceptance test: stand the server up on
// an ephemeral port, drive the full Fig. 4 sequence over HTTP, then
// issue 64 concurrent client queries and check (a) the answers match
// direct Region.Search, and (b) /statsz shows the micro-batcher
// actually coalesced something.
func TestEndToEndServing(t *testing.T) {
	const (
		n, dim = 400, 16
		k      = 5
		conc   = 64
	)
	rows, queries := testData(n, conc, dim)

	srv := server.New(server.Options{
		MaxInFlight: 256,
		BatchWindow: 25 * time.Millisecond,
		MaxBatch:    32,
	})
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	ctx := context.Background()
	c := client.New(ts.URL, client.WithTimeout(time.Minute))

	if err := c.Health(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := c.CreateRegion(ctx, "glove", dim, wire.RegionConfig{Mode: "linear"}); err != nil {
		t.Fatal(err)
	}
	info, err := c.Load(ctx, "glove", rows)
	if err != nil {
		t.Fatal(err)
	}
	if info.Len != n {
		t.Fatalf("loaded len %d, want %d", info.Len, n)
	}
	if info, err = c.Build(ctx, "glove"); err != nil {
		t.Fatal(err)
	}
	if !info.Built {
		t.Fatal("region not marked built after build")
	}

	// Ground truth from a direct in-process Region with the same data.
	direct, err := ssam.New(dim, ssam.Config{Mode: ssam.Linear})
	if err != nil {
		t.Fatal(err)
	}
	defer direct.Free()
	if err := direct.LoadFloat32(flatten(rows)); err != nil {
		t.Fatal(err)
	}
	if err := direct.BuildIndex(); err != nil {
		t.Fatal(err)
	}

	// conc concurrent single-query requests released by a barrier, so
	// they land inside one batching window.
	var wg sync.WaitGroup
	start := make(chan struct{})
	got := make([][]wire.Neighbor, conc)
	errs := make([]error, conc)
	for i := 0; i < conc; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			got[i], errs[i] = c.Search(ctx, "glove", queries[i], k)
		}(i)
	}
	close(start)
	wg.Wait()

	for i := 0; i < conc; i++ {
		if errs[i] != nil {
			t.Fatalf("query %d: %v", i, errs[i])
		}
		want, err := direct.Search(queries[i], k)
		if err != nil {
			t.Fatal(err)
		}
		if len(got[i]) != len(want) {
			t.Fatalf("query %d: got %d neighbors, want %d", i, len(got[i]), len(want))
		}
		for j := range want {
			if got[i][j].ID != want[j].ID {
				t.Fatalf("query %d neighbor %d: served id %d, direct id %d",
					i, j, got[i][j].ID, want[j].ID)
			}
			if diff := got[i][j].Distance - want[j].Dist; diff > 1e-9 || diff < -1e-9 {
				t.Fatalf("query %d neighbor %d: served dist %v, direct %v",
					i, j, got[i][j].Distance, want[j].Dist)
			}
		}
	}

	stats, err := c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	rs, ok := stats.Regions["glove"]
	if !ok {
		t.Fatalf("statsz has no region glove: %+v", stats)
	}
	if rs.Queries != conc {
		t.Fatalf("statsz queries = %d, want %d", rs.Queries, conc)
	}
	if rs.MaxBatchSeen <= 1 {
		t.Fatalf("micro-batcher never coalesced: max batch seen = %d (batches=%d)",
			rs.MaxBatchSeen, rs.Batches)
	}
	if rs.Batches == 0 || rs.Batches >= conc {
		t.Fatalf("batches = %d for %d queries; expected coalescing", rs.Batches, conc)
	}
	if rs.LatencyP99Ms <= 0 || rs.QPS <= 0 {
		t.Fatalf("latency/qps not recorded: %+v", rs)
	}
	var histTotal uint64
	for _, b := range rs.BatchSizes {
		histTotal += b.Count
	}
	if histTotal != rs.Batches {
		t.Fatalf("batch histogram sums to %d, batches = %d", histTotal, rs.Batches)
	}
}

// TestOverCapacitySheds checks admission control: with a 2-token
// budget and a long batching window, a burst of raw requests must be
// answered with 503 + Retry-After instead of queuing without bound.
func TestOverCapacitySheds(t *testing.T) {
	const dim = 8
	rows, queries := testData(64, 16, dim)

	srv := server.New(server.Options{
		MaxInFlight: 2,
		BatchWindow: 300 * time.Millisecond,
		MaxBatch:    64,
		RetryAfter:  7 * time.Second,
	})
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	ctx := context.Background()
	c := client.New(ts.URL)
	if _, err := c.CreateRegion(ctx, "r", dim, wire.RegionConfig{}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Load(ctx, "r", rows); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Build(ctx, "r"); err != nil {
		t.Fatal(err)
	}

	// Raw posts (no client retry) so 503s are observable.
	post := func(q []float32) (*http.Response, error) {
		body, _ := json.Marshal(wire.SearchRequest{Query: q, K: 3})
		return http.Post(ts.URL+"/regions/r/search", "application/json", bytes.NewReader(body))
	}

	const burst = 10
	var wg sync.WaitGroup
	codes := make([]int, burst)
	retryAfter := make([]string, burst)
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := post(queries[i%len(queries)])
			if err != nil {
				codes[i] = -1
				return
			}
			defer resp.Body.Close()
			codes[i] = resp.StatusCode
			retryAfter[i] = resp.Header.Get("Retry-After")
		}(i)
	}
	wg.Wait()

	okCount, shedCount := 0, 0
	for i, code := range codes {
		switch code {
		case http.StatusOK:
			okCount++
		case http.StatusServiceUnavailable:
			shedCount++
			if retryAfter[i] != "7" {
				t.Fatalf("503 %d carried Retry-After %q, want \"7\"", i, retryAfter[i])
			}
		default:
			t.Fatalf("request %d: unexpected status %d", i, code)
		}
	}
	if okCount == 0 || shedCount == 0 {
		t.Fatalf("burst of %d: %d served, %d shed; want both nonzero (bounded queue)",
			burst, okCount, shedCount)
	}
	if okCount > 2 {
		t.Fatalf("%d requests admitted past a 2-token budget", okCount)
	}

	stats, err := c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Rejected != uint64(shedCount) {
		t.Fatalf("statsz rejected = %d, observed %d sheds", stats.Rejected, shedCount)
	}
	if stats.MaxInFlight != 2 {
		t.Fatalf("statsz max_in_flight = %d, want 2", stats.MaxInFlight)
	}
}

// TestRegistryLifecycle covers create/list/info/free plus the error
// paths: duplicate create, unknown region, search before build, and
// rejected configs.
func TestRegistryLifecycle(t *testing.T) {
	srv := server.New(server.Options{})
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()
	ctx := context.Background()
	c := client.New(ts.URL)

	if _, err := c.CreateRegion(ctx, "a", 4, wire.RegionConfig{Mode: "kdtree"}); err != nil {
		t.Fatal(err)
	}
	var se *client.StatusError
	if _, err := c.CreateRegion(ctx, "a", 4, wire.RegionConfig{}); !errors.As(err, &se) || se.Code != http.StatusConflict {
		t.Fatalf("duplicate create = %v, want 409", err)
	}
	if _, err := c.CreateRegion(ctx, "bad", 4, wire.RegionConfig{Metric: "chebyshev"}); !errors.As(err, &se) || se.Code != http.StatusBadRequest {
		t.Fatalf("bad metric = %v, want 400", err)
	}
	if _, err := c.CreateRegion(ctx, "bad", 4, wire.RegionConfig{Metric: "hamming"}); !errors.As(err, &se) || se.Code != http.StatusBadRequest {
		t.Fatalf("hamming over the wire = %v, want 400", err)
	}
	if _, err := c.Search(ctx, "a", []float32{1, 2, 3, 4}, 2); !errors.As(err, &se) || se.Code != http.StatusConflict {
		t.Fatalf("search before build = %v, want 409", err)
	}
	if _, err := c.Search(ctx, "missing", []float32{1}, 2); !errors.As(err, &se) || se.Code != http.StatusNotFound {
		t.Fatalf("search on missing region = %v, want 404", err)
	}

	rows, _ := testData(32, 1, 4)
	if _, err := c.Load(ctx, "a", rows); err != nil {
		t.Fatal(err)
	}
	if _, err := c.LoadAppend(ctx, "a", rows); err != nil {
		t.Fatal(err)
	}
	info, err := c.Region(ctx, "a")
	if err != nil {
		t.Fatal(err)
	}
	if info.Len != 64 {
		t.Fatalf("append load: len %d, want 64", info.Len)
	}
	if _, err := c.Build(ctx, "a"); err != nil {
		t.Fatal(err)
	}
	list, err := c.Regions(ctx)
	if err != nil || len(list) != 1 {
		t.Fatalf("regions list = %v, %v", list, err)
	}
	batch, err := c.SearchBatch(ctx, "a", rows[:3], 2)
	if err != nil || len(batch) != 3 {
		t.Fatalf("searchbatch = %v, %v", batch, err)
	}
	if err := c.Free(ctx, "a"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Region(ctx, "a"); !errors.As(err, &se) || se.Code != http.StatusNotFound {
		t.Fatalf("info after free = %v, want 404", err)
	}
}

// TestDrainSheds checks graceful-shutdown behavior: after StartDrain,
// new searches are shed with 503 while the registry stays readable.
func TestDrainSheds(t *testing.T) {
	srv := server.New(server.Options{})
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()
	ctx := context.Background()
	c := client.New(ts.URL, client.WithRetries(0))

	rows, queries := testData(16, 1, 4)
	if _, err := c.CreateRegion(ctx, "a", 4, wire.RegionConfig{}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Load(ctx, "a", rows); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Build(ctx, "a"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Search(ctx, "a", queries[0], 2); err != nil {
		t.Fatal(err)
	}
	srv.StartDrain()
	if _, err := c.Search(ctx, "a", queries[0], 2); !errors.Is(err, client.ErrOverloaded) {
		t.Fatalf("search while draining = %v, want ErrOverloaded", err)
	}
	stats, err := c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !stats.Draining {
		t.Fatal("statsz does not report draining")
	}
}

// TestDeviceRegionOverWire serves a simulated-device region end to
// end, covering the mu-serialized device path under HTTP concurrency.
func TestDeviceRegionOverWire(t *testing.T) {
	const dim = 12
	rows, queries := testData(128, 8, dim)
	srv := server.New(server.Options{BatchWindow: 10 * time.Millisecond})
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()
	ctx := context.Background()
	c := client.New(ts.URL, client.WithTimeout(2*time.Minute))

	cfg := wire.RegionConfig{Execution: "device", VectorLength: 4}
	if _, err := c.CreateRegion(ctx, "dev", dim, cfg); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Load(ctx, "dev", rows); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Build(ctx, "dev"); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errc := make(chan error, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, err := c.Search(ctx, "dev", queries[i], 3)
			if err != nil {
				errc <- err
				return
			}
			if len(res) != 3 {
				errc <- fmt.Errorf("device query %d: %d results", i, len(res))
			}
		}(i)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
}
