package server

// This file is the Prometheus wiring: which obs registry series the
// server exposes at /metrics and how they map onto existing serving
// state. Counters and histograms that the request path increments
// live in regionStats (stats.go); everything here is callback-backed
// — sampled at scrape time from state the server already maintains —
// so /metrics and /statsz always agree.

import (
	"net/http"
	"strconv"
	"time"

	"ssam"
	"ssam/internal/obs"
)

// registerServerMetrics registers the server-scoped (unlabeled)
// series. Called once from New.
func (s *Server) registerServerMetrics() {
	reg := s.registry
	reg.GaugeFunc("ssam_uptime_seconds", "Seconds since the server started.", nil,
		func() float64 { return time.Since(s.start).Seconds() })
	reg.GaugeFunc("ssam_inflight", "Search requests currently admitted.", nil,
		func() float64 { return float64(len(s.sem)) })
	reg.GaugeFunc("ssam_inflight_max", "Admission budget (requests shed beyond it).", nil,
		func() float64 { return float64(s.opts.MaxInFlight) })
	reg.CounterFunc("ssam_rejected_total", "Search requests shed with 503.", nil,
		func() uint64 { return s.rejected.Load() })
	reg.GaugeFunc("ssam_draining", "1 while the server is draining, else 0.", nil,
		func() float64 {
			if s.draining.Load() {
				return 1
			}
			return 0
		})
}

// registerRegionMetrics registers the entry's callback-backed region
// series: queue depth (batcher backlog plus shard in-flight), and for
// sharded regions one series per shard over the cluster's atomic
// counters. Called from handleCreate after the dup check, so a
// rejected duplicate never registers anything; the matching
// Unregister runs on free and Close.
func (s *Server) registerRegionMetrics(e *regionEntry) {
	lbl := obs.Labels{"region": e.name}
	s.registry.GaugeFunc("ssam_region_queue_depth",
		"Queries waiting in the micro-batcher plus shard fan-outs in flight, per region.", lbl,
		func() float64 {
			e.mu.Lock()
			defer e.mu.Unlock()
			depth := 0
			if e.batcher != nil {
				depth = e.batcher.Pending()
			}
			if e.cluster != nil {
				for si := 0; si < e.cluster.Shards(); si++ {
					depth += e.cluster.ShardStat(si).InFlight
				}
			}
			if e.group != nil {
				for ri := 0; ri < e.group.Replicas(); ri++ {
					depth += e.group.Stat(ri).InFlight
				}
			}
			return float64(depth)
		})
	if e.group != nil {
		// Replicated regions: generation/swap gauges plus one series set
		// per replica slot. The group pointer is fixed for the entry's
		// lifetime and Stat reads atomics, so the callbacks skip e.mu;
		// Unregister precedes Free, so no scrape outlives the group.
		grp := e.group
		s.registry.GaugeFunc("ssam_region_gen",
			"Serving generation of the replica group (0 before first build).", lbl,
			func() float64 { return float64(grp.Gen()) })
		s.registry.CounterFunc("ssam_region_swaps_total",
			"Generations installed (build + reloads), per region.", lbl,
			func() uint64 { return grp.Stats().Swaps })
		s.registry.GaugeFunc("ssam_region_hedge_delay_seconds",
			"Current p99-derived replica hedge delay.", lbl,
			func() float64 { return grp.HedgeDelay().Seconds() })
		for ri := 0; ri < grp.Replicas(); ri++ {
			ri := ri
			rlbl := obs.Labels{"region": e.name, "replica": strconv.Itoa(ri)}
			s.registry.GaugeFunc("ssam_replica_inflight", "Attempts currently executing per replica.", rlbl,
				func() float64 { return float64(grp.Stat(ri).InFlight) })
			s.registry.CounterFunc("ssam_replica_queries_total", "Attempts finished per replica (errors included).", rlbl,
				func() uint64 { return grp.Stat(ri).Queries })
			s.registry.CounterFunc("ssam_replica_errors_total", "Errored attempts per replica.", rlbl,
				func() uint64 { return grp.Stat(ri).Errors })
			s.registry.CounterFunc("ssam_replica_hedges_total", "Hedged attempts received per replica.", rlbl,
				func() uint64 { return grp.Stat(ri).Hedges })
			s.registry.CounterFunc("ssam_replica_failovers_total", "Failover attempts received per replica.", rlbl,
				func() uint64 { return grp.Stat(ri).Failovers })
			s.registry.GaugeFunc("ssam_replica_latency_ewma_seconds", "EWMA attempt latency per replica (the routing load score input).", rlbl,
				func() float64 { return grp.Stat(ri).EwmaLatency.Seconds() })
		}
		return
	}
	if e.cluster == nil {
		// Write-path series for mutable (unsharded) regions. The region
		// pointer is fixed for the entry's lifetime and MutationStats is
		// lock-free (all zeros until the first write, and again after
		// Free detaches the store — Unregister precedes Free anyway).
		region := e.region
		if e.cfg.Mode == ssam.Quantized {
			// Quantized regions: ADC work counters. All zeros until the
			// index is built (QuantizedStats reports ok=false before the
			// engine exists).
			qst := func() ssam.QuantizedCounters { st, _ := region.QuantizedStats(); return st }
			s.registry.CounterFunc("ssam_pq_table_builds_total",
				"ADC lookup tables built (one per query), per region.", lbl,
				func() uint64 { return qst().TableBuilds })
			s.registry.CounterFunc("ssam_pq_code_evals_total",
				"8-bit code rows scored through ADC tables, per region.", lbl,
				func() uint64 { return qst().CodeEvals })
			s.registry.CounterFunc("ssam_pq_rerank_evals_total",
				"ADC candidates re-scored at full precision, per region.", lbl,
				func() uint64 { return qst().RerankEvals })
		}
		if e.cfg.Storage != nil {
			// Storage-backed regions: page-cache counters. All zeros until
			// the index is built (TieredStats reports ok=false before the
			// store exists).
			tst := func() ssam.TieredCounters { st, _ := region.TieredStats(); return st }
			s.registry.CounterFunc("ssam_tier_reads_total",
				"Backing-file reads, per region.", lbl,
				func() uint64 { return tst().Reads })
			s.registry.CounterFunc("ssam_tier_bytes_read_total",
				"Bytes fetched from the backing file, per region.", lbl,
				func() uint64 { return tst().BytesRead })
			s.registry.CounterFunc("ssam_tier_cache_hits_total",
				"Vector-page requests served from the resident cache, per region.", lbl,
				func() uint64 { return tst().CacheHits })
			s.registry.CounterFunc("ssam_tier_cache_misses_total",
				"Vector-page requests that went to the backing file, per region.", lbl,
				func() uint64 { return tst().CacheMisses })
			s.registry.CounterFunc("ssam_tier_evictions_total",
				"Vector pages evicted to fit the memory budget, per region.", lbl,
				func() uint64 { return tst().Evictions })
			s.registry.CounterFunc("ssam_tier_prefetch_hits_total",
				"Cache hits on pages a prefetch brought in, per region.", lbl,
				func() uint64 { return tst().PrefetchHits })
			s.registry.CounterFunc("ssam_tier_stalls_total",
				"Waits behind another reader's in-flight page load, per region.", lbl,
				func() uint64 { return tst().Stalls })
			s.registry.GaugeFunc("ssam_tier_resident_bytes",
				"Vector-page bytes currently resident, per region.", lbl,
				func() float64 { return float64(tst().ResidentBytes) })
		}
		mst := func() ssam.MutationStats { st, _ := region.MutationStats(); return st }
		s.registry.GaugeFunc("ssam_region_mutation_seq",
			"Last committed mutation sequence number, per region.", lbl,
			func() float64 { return float64(mst().Seq) })
		s.registry.GaugeFunc("ssam_region_live_rows",
			"Surviving rows in the mutable store, per region.", lbl,
			func() float64 { return float64(mst().Live) })
		s.registry.GaugeFunc("ssam_region_dead_rows",
			"Tombstoned rows awaiting compaction, per region.", lbl,
			func() float64 { return float64(mst().Dead) })
		s.registry.GaugeFunc("ssam_region_garbage_ratio",
			"Tombstone fraction of physical rows, per region.", lbl,
			func() float64 { return mst().GarbageRatio })
		s.registry.CounterFunc("ssam_region_upserts_total", "Committed upserts, per region.", lbl,
			func() uint64 { return mst().Upserts })
		s.registry.CounterFunc("ssam_region_deletes_total", "Committed deletes, per region.", lbl,
			func() uint64 { return mst().Deletes })
		s.registry.CounterFunc("ssam_region_compact_passes_total",
			"Compaction passes run (including no-ops), per region.", lbl,
			func() uint64 { return mst().CompactPasses })
		return
	}
	// The cluster pointer is fixed for the entry's lifetime and its
	// counters are atomics, so the per-shard callbacks read it without
	// e.mu; Unregister precedes Free, so no scrape outlives the shards.
	cl := e.cluster
	for si := 0; si < cl.Shards(); si++ {
		si := si
		slbl := obs.Labels{"region": e.name, "shard": strconv.Itoa(si)}
		s.registry.CounterFunc("ssam_shard_queries_total", "Fan-outs served per shard (failed included).", slbl,
			func() uint64 { return cl.ShardStat(si).Queries })
		s.registry.CounterFunc("ssam_shard_failures_total", "Errored fan-outs per shard (timeouts included).", slbl,
			func() uint64 { return cl.ShardStat(si).Failures })
		s.registry.CounterFunc("ssam_shard_timeouts_total", "Fan-outs that missed the shard deadline.", slbl,
			func() uint64 { return cl.ShardStat(si).Timeouts })
		s.registry.CounterFunc("ssam_shard_hedges_total", "Hedged re-issues launched per shard.", slbl,
			func() uint64 { return cl.ShardStat(si).Hedges })
		s.registry.GaugeFunc("ssam_shard_inflight", "Fan-outs currently executing per shard.", slbl,
			func() float64 { return float64(cl.ShardStat(si).InFlight) })
	}
}

// handleMetrics serves the registry in Prometheus text exposition
// format.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.registry.WritePrometheus(w)
}

// handleTracez serves the tracer's retained traces, newest first.
func (s *Server) handleTracez(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.tracer.Snapshot())
}
