package server

// Internal tests for the sharded-region kind: they reach through the
// registry to a cluster's fault-injection hook, which the external
// server_test suite cannot do.

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"net/http/httptest"
	"testing"

	"ssam"
	"ssam/internal/client"
	"ssam/internal/server/wire"
)

// shardedFixture stands up a server with one sharded region loaded
// and built, and returns the fixture pieces tests need.
func shardedFixture(t *testing.T, shards int, allowPartial bool, rows int, dims int) (*Server, *client.Client, [][]float32, func()) {
	t.Helper()
	srv := New(Options{})
	ts := httptest.NewServer(srv)
	c := client.New(ts.URL)
	ctx := context.Background()

	cfg := wire.RegionConfig{Sharding: &wire.ShardingConfig{
		Shards:       shards,
		AllowPartial: allowPartial,
	}}
	if _, err := c.CreateRegion(ctx, "shardy", dims, cfg); err != nil {
		t.Fatalf("create sharded region: %v", err)
	}
	rng := rand.New(rand.NewSource(11))
	vecs := make([][]float32, rows)
	for i := range vecs {
		v := make([]float32, dims)
		for j := range v {
			v[j] = rng.Float32()
		}
		vecs[i] = v
	}
	if _, err := c.Load(ctx, "shardy", vecs); err != nil {
		t.Fatalf("load: %v", err)
	}
	if _, err := c.Build(ctx, "shardy"); err != nil {
		t.Fatalf("build: %v", err)
	}
	cleanup := func() {
		srv.Close()
		ts.Close()
	}
	return srv, c, vecs, cleanup
}

// faultShard injects a permanent failure into one shard of the named
// sharded region.
func faultShard(t *testing.T, srv *Server, name string, dead int) {
	t.Helper()
	srv.mu.RLock()
	e := srv.regions[name]
	srv.mu.RUnlock()
	if e == nil || e.cluster == nil {
		t.Fatalf("region %q is not a live sharded region", name)
	}
	e.cluster.SetFaultHook(func(shard, attempt int) error {
		if shard == dead {
			return errors.New("injected shard fault")
		}
		return nil
	})
}

// TestShardedDegradedResponse is the acceptance scenario: kill one
// shard of a partial-result sharded region and the server must answer
// 200 with Degraded set, the dead shard listed, and results exactly
// matching a reference region built over the surviving rows.
func TestShardedDegradedResponse(t *testing.T) {
	const (
		shards = 3
		dead   = 1
		rows   = 60
		dims   = 6
		k      = 7
	)
	srv, c, vecs, cleanup := shardedFixture(t, shards, true, rows, dims)
	defer cleanup()
	faultShard(t, srv, "shardy", dead)

	// Reference: a plain region over the rows that do NOT live on the
	// dead shard (round-robin places row i on shard i%shards), with
	// shard-local results remapped back to global row IDs.
	var survivors []int
	ref, err := ssam.New(dims, ssam.Config{})
	if err != nil {
		t.Fatalf("reference region: %v", err)
	}
	defer ref.Free()
	var flat []float32
	for i, v := range vecs {
		if i%shards != dead {
			survivors = append(survivors, i)
			flat = append(flat, v...)
		}
	}
	if err := ref.LoadFloat32(flat); err != nil {
		t.Fatalf("reference load: %v", err)
	}
	if err := ref.BuildIndex(); err != nil {
		t.Fatalf("reference build: %v", err)
	}

	ctx := context.Background()
	query := vecs[dead] // resides on the dead shard; must still answer
	resp, err := c.SearchFull(ctx, "shardy", query, k)
	if err != nil {
		t.Fatalf("degraded search: %v", err)
	}
	if !resp.Degraded {
		t.Fatalf("response not flagged Degraded: %+v", resp)
	}
	if len(resp.FailedShards) != 1 || resp.FailedShards[0] != dead {
		t.Fatalf("FailedShards = %v, want [%d]", resp.FailedShards, dead)
	}
	want, err := ref.Search(query, k)
	if err != nil {
		t.Fatalf("reference search: %v", err)
	}
	if len(resp.Results) != len(want) {
		t.Fatalf("got %d results, want %d", len(resp.Results), len(want))
	}
	for i, nb := range resp.Results {
		if got, wantID := nb.ID, survivors[want[i].ID]; got != wantID {
			t.Fatalf("result %d: id %d, want %d", i, got, wantID)
		}
		if math.Abs(nb.Distance-want[i].Dist) > 1e-9 {
			t.Fatalf("result %d: distance %g, want %g", i, nb.Distance, want[i].Dist)
		}
	}

	// Batch path degrades the same way.
	bresp, err := c.SearchBatchFull(ctx, "shardy", [][]float32{vecs[0], query}, k)
	if err != nil {
		t.Fatalf("degraded batch search: %v", err)
	}
	if !bresp.Degraded || len(bresp.FailedShards) != 1 || bresp.FailedShards[0] != dead {
		t.Fatalf("batch degradation = (%v, %v), want (true, [%d])",
			bresp.Degraded, bresp.FailedShards, dead)
	}
	if len(bresp.Results) != 2 {
		t.Fatalf("batch returned %d rows, want 2", len(bresp.Results))
	}

	// /statsz exposes the damage: a degraded count and per-shard
	// failure counters.
	stats, err := c.Stats(ctx)
	if err != nil {
		t.Fatalf("statsz: %v", err)
	}
	rs, ok := stats.Regions["shardy"]
	if !ok {
		t.Fatalf("statsz missing region shardy: %+v", stats.Regions)
	}
	if rs.Degraded < 2 {
		t.Fatalf("statsz degraded = %d, want >= 2", rs.Degraded)
	}
	if len(rs.Shards) != shards {
		t.Fatalf("statsz shard blocks = %d, want %d", len(rs.Shards), shards)
	}
	var deadFailures uint64
	for _, sh := range rs.Shards {
		if sh.Shard == dead {
			deadFailures = sh.Failures
		}
	}
	if deadFailures == 0 {
		t.Fatalf("statsz shows no failures on shard %d: %+v", dead, rs.Shards)
	}
}

// TestShardedStrictModeFails: without AllowPartial, a dead shard must
// fail the whole query with a 5xx instead of degrading silently.
func TestShardedStrictModeFails(t *testing.T) {
	srv, c, _, cleanup := shardedFixture(t, 3, false, 30, 4)
	defer cleanup()
	faultShard(t, srv, "shardy", 2)

	_, err := c.Search(context.Background(), "shardy", []float32{1, 2, 3, 4}, 3)
	var se *client.StatusError
	if !errors.As(err, &se) || se.Code < 500 {
		t.Fatalf("strict-mode search with dead shard = %v, want 5xx StatusError", err)
	}
}

// TestShardedInfoReportsShards: region info carries the shard count so
// clients and the CLI can tell the kinds apart.
func TestShardedInfoReportsShards(t *testing.T) {
	_, c, _, cleanup := shardedFixture(t, 4, true, 20, 3)
	defer cleanup()
	info, err := c.Region(context.Background(), "shardy")
	if err != nil {
		t.Fatalf("region info: %v", err)
	}
	if info.Shards != 4 {
		t.Fatalf("info.Shards = %d, want 4", info.Shards)
	}
	if info.Len != 20 {
		t.Fatalf("info.Len = %d, want 20", info.Len)
	}
}
