package server_test

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"ssam"
	"ssam/internal/client"
	"ssam/internal/server"
	"ssam/internal/server/wire"
)

// TestTieredRegionEndToEnd drives a storage-backed region through the
// full client → server → region path: the storage block must survive
// the wire, the served answers must equal a direct in-process region
// holding everything in RAM (the bit-exactness contract), and the
// storage tier's cache counters must show up in /statsz and /metrics.
// The budget is a tenth of the dataset, so the server is genuinely
// evicting and re-reading pages while it serves.
func TestTieredRegionEndToEnd(t *testing.T) {
	const (
		n, dim = 600, 16
		k      = 5
		nq     = 16
	)
	rows, queries := testData(n, nq, dim)

	srv := server.New(server.Options{})
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()
	ctx := context.Background()
	c := client.New(ts.URL, client.WithTimeout(time.Minute))

	cfg := wire.RegionConfig{
		Vaults: 4,
		Storage: &wire.StorageConfig{
			Path:        filepath.Join(t.TempDir(), "big.tier"),
			BudgetBytes: n * dim * 4 / 10,
			Prefetch:    true,
		},
	}
	if _, err := c.CreateRegion(ctx, "big", dim, cfg); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Load(ctx, "big", rows); err != nil {
		t.Fatal(err)
	}
	info, err := c.Build(ctx, "big")
	if err != nil {
		t.Fatal(err)
	}
	if !info.Built || info.Len != n {
		t.Fatalf("post-build info: %+v", info)
	}
	if got := info.Config.Storage; got == nil || got.BudgetBytes != cfg.Storage.BudgetBytes || !got.Prefetch {
		t.Fatalf("storage config did not survive the wire: %+v", got)
	}

	direct, err := ssam.New(dim, ssam.Config{Vaults: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer direct.Free()
	if err := direct.LoadFloat32(flatten(rows)); err != nil {
		t.Fatal(err)
	}
	if err := direct.BuildIndex(); err != nil {
		t.Fatal(err)
	}

	for i, q := range queries {
		served, err := c.Search(ctx, "big", q, k)
		if err != nil {
			t.Fatal(err)
		}
		want, err := direct.Search(q, k)
		if err != nil {
			t.Fatal(err)
		}
		if len(served) != len(want) {
			t.Fatalf("query %d: served %d results, want %d", i, len(served), len(want))
		}
		for j := range want {
			if served[j].ID != want[j].ID || served[j].Distance != want[j].Dist {
				t.Fatalf("query %d rank %d: served %+v, want %+v", i, j, served[j], want[j])
			}
		}
	}

	// Batch path through the same region.
	batch, err := c.SearchBatch(ctx, "big", queries[:8], k)
	if err != nil {
		t.Fatal(err)
	}
	for i, row := range batch {
		if len(row) != k {
			t.Fatalf("batch row %d: %d results", i, len(row))
		}
	}

	// /statsz carries the storage-tier block, and with a 1/10 budget
	// over 4 vault pages the scans must have missed and evicted.
	st, err := c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	rs, ok := st.Regions["big"]
	if !ok {
		t.Fatalf("region missing from /statsz: %+v", st.Regions)
	}
	if rs.Tiered == nil {
		t.Fatal("statsz tiered block missing for a storage-backed region")
	}
	if rs.Tiered.Reads == 0 || rs.Tiered.BytesRead == 0 {
		t.Errorf("tiered block shows no backing reads: %+v", rs.Tiered)
	}
	if rs.Tiered.CacheMisses == 0 {
		t.Errorf("a 1/10 budget produced no cache misses: %+v", rs.Tiered)
	}
	if rs.Tiered.BudgetBytes != cfg.Storage.BudgetBytes {
		t.Errorf("budget = %d, want %d", rs.Tiered.BudgetBytes, cfg.Storage.BudgetBytes)
	}

	// /metrics exposes the same counters as ssam_tier_* series.
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	for _, series := range []string{
		`ssam_tier_reads_total{region="big"}`,
		`ssam_tier_bytes_read_total{region="big"}`,
		`ssam_tier_cache_hits_total{region="big"}`,
		`ssam_tier_cache_misses_total{region="big"}`,
		`ssam_tier_evictions_total{region="big"}`,
		`ssam_tier_prefetch_hits_total{region="big"}`,
		`ssam_tier_stalls_total{region="big"}`,
		`ssam_tier_resident_bytes{region="big"}`,
	} {
		if !strings.Contains(text, series) {
			t.Errorf("/metrics missing %s", series)
		}
	}

	if err := c.Free(ctx, "big"); err != nil {
		t.Fatal(err)
	}
}

// TestTieredRegionWireRejections pins server-side rejection of
// storage configs the wire layer lets through but the region cannot
// serve (mode restrictions surface at create).
func TestTieredRegionWireRejections(t *testing.T) {
	srv := server.New(server.Options{})
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()
	ctx := context.Background()
	c := client.New(ts.URL, client.WithTimeout(time.Minute))

	_, err := c.CreateRegion(ctx, "bad", 8, wire.RegionConfig{
		Mode:    "graph",
		Storage: &wire.StorageConfig{Path: filepath.Join(t.TempDir(), "x.tier")},
	})
	if err == nil || !strings.Contains(err.Error(), "Linear and Quantized") {
		t.Fatalf("graph+storage create = %v, want mode rejection", err)
	}

	// A storage-backed region refuses writes with a clear error.
	if _, err := c.CreateRegion(ctx, "ro", 8, wire.RegionConfig{
		Storage: &wire.StorageConfig{Path: filepath.Join(t.TempDir(), "ro.tier")},
	}); err != nil {
		t.Fatal(err)
	}
	rows, _ := testData(64, 1, 8)
	if _, err := c.Load(ctx, "ro", rows); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Build(ctx, "ro"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Upsert(ctx, "ro", []int{0}, rows[:1]); err == nil {
		t.Fatal("upsert on a storage-backed region succeeded")
	}
}
