package server

// Replicated regions: the server-side face of internal/replica. A
// region created with config.replicas owns a replica.Group whose
// backends are built here — one ssam.Region per replica, or one
// cluster.Cluster per replica when config.sharding is also set
// (replication multiplies whole sharded copies). Loads only stage
// data; build installs generation 1 and POST .../reload swaps in a
// fresh generation from the staged dataset with zero downtime.

import (
	"fmt"
	"net/http"
	"time"

	"ssam"
	"ssam/internal/cluster"
	"ssam/internal/obs"
	"ssam/internal/replica"
	"ssam/internal/server/wire"
)

// warmQueries bounds how many staged rows are replayed as warm-up
// queries against each freshly built replica before it takes traffic.
const warmQueries = 4

// newGroupEntry attaches a replica.Group to a freshly created entry,
// validating both the group options and the underlying backend
// configuration (by probing an empty backend, so a bad metric/mode or
// sharding combo fails at create time, not at first build).
func (s *Server) newGroupEntry(e *regionEntry, req wire.CreateRegionRequest) error {
	rc := req.Config.Replicas
	opts := replica.Options{
		Replicas: rc.Replicas,
		Hedge:    rc.Hedge,
		HedgeMin: time.Duration(rc.HedgeMinMs * float64(time.Millisecond)),
		HedgeMax: time.Duration(rc.HedgeMaxMs * float64(time.Millisecond)),
		Deadline: time.Duration(rc.DeadlineMs * float64(time.Millisecond)),
	}
	if sc := req.Config.Sharding; sc != nil {
		shardOpts, err := toShardingOptions(sc)
		if err != nil {
			return err
		}
		probe, err := cluster.New(e.dims, e.cfg, shardOpts)
		if err != nil {
			return err
		}
		probe.Free()
		e.shardOpts = shardOpts
	} else {
		probe, err := ssam.New(e.dims, e.cfg)
		if err != nil {
			return err
		}
		probe.Free()
	}
	group, err := replica.NewGroup(opts)
	if err != nil {
		return err
	}
	e.group = group
	return nil
}

// buildReplicaBackend constructs one replica's backend from a
// snapshot of the staged dataset: load, build index, wrap. data is
// read-only here (several builds read it concurrently during a swap).
func (s *Server) buildReplicaBackend(e *regionEntry, data []float32) (replica.Backend, error) {
	if e.cfgWire.Sharding != nil {
		c, err := cluster.New(e.dims, e.cfg, e.shardOpts)
		if err != nil {
			return nil, err
		}
		if err := c.LoadFloat32(data); err != nil {
			c.Free()
			return nil, err
		}
		if err := c.BuildIndex(); err != nil {
			c.Free()
			return nil, err
		}
		return replica.WrapCluster(c), nil
	}
	r, err := ssam.New(e.dims, e.cfg)
	if err != nil {
		return nil, err
	}
	if err := r.LoadFloat32(data); err != nil {
		r.Free()
		return nil, err
	}
	if err := r.BuildIndex(); err != nil {
		r.Free()
		return nil, err
	}
	return replica.WrapRegion(r), nil
}

// swapGroup runs one generational swap from the entry's staged
// dataset. The data snapshot is copied under e.mu (handleLoad reuses
// the staging slice's backing array, so the swap must not share it),
// but the swap itself — backend builds, warming, cutover, drain —
// runs outside e.mu so /statsz, searches, and metric scrapes keep
// flowing while the new generation is under construction.
func (s *Server) swapGroup(e *regionEntry) (replica.SwapStats, error) {
	e.mu.Lock()
	data := append([]float32(nil), e.data...)
	e.mu.Unlock()

	// Warm each new replica with a few staged rows as queries.
	var warm [][]float32
	rows := len(data) / e.dims
	for i := 0; i < rows && i < warmQueries; i++ {
		warm = append(warm, data[i*e.dims:(i+1)*e.dims])
	}

	st, err := e.group.Swap(func(int) (replica.Backend, error) {
		return s.buildReplicaBackend(e, data)
	}, warm, 1)
	if err != nil {
		return replica.SwapStats{}, err
	}
	e.mu.Lock()
	e.built = true
	e.mu.Unlock()
	return st, nil
}

// buildGroupGeneration is the replicated half of handleBuild: the
// first swap, installing generation 1 from the staged dataset.
func (s *Server) buildGroupGeneration(w http.ResponseWriter, e *regionEntry) {
	if _, err := s.swapGroup(e); err != nil {
		writeErr(w, http.StatusConflict, "%v", err)
		return
	}
	e.mu.Lock()
	info := e.info()
	e.mu.Unlock()
	writeJSON(w, http.StatusOK, info)
}

// handleReload is POST /regions/{name}/reload: rebuild a replicated
// region from its staged dataset as a new generation, cut traffic
// over atomically, and free the old generation after its in-flight
// queries drain. Queries keep being answered throughout — by the old
// generation during build, by the new one after cutover — so a reload
// under load drops nothing. Mutations applied since the last load are
// not in the staged dataset and do not survive a reload (the staged
// rows are the source of truth the new generation is built from).
func (s *Server) handleReload(w http.ResponseWriter, r *http.Request) {
	e := s.entry(w, r)
	if e == nil {
		return
	}
	if e.group == nil {
		writeErr(w, http.StatusConflict,
			"region %q is not replicated (create with config.replicas to enable reload)", e.name)
		return
	}
	e.mu.Lock()
	built := e.built
	e.mu.Unlock()
	if !built {
		writeErr(w, http.StatusConflict, "region %q has no built index (POST .../build first)", e.name)
		return
	}
	forced := r.Header.Get(TraceHeader) != ""
	tr := s.tracer.Trace("reload", forced, obs.Tag{Key: "region", Value: e.name})
	root := tr.Root()
	rsp := root.Start("swap")
	st, err := s.swapGroup(e)
	rsp.SetTag("gen", st.Gen)
	rsp.End()
	s.tracer.Finish(tr)
	if err != nil {
		writeErr(w, http.StatusConflict, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, wire.ReloadResponse{
		Gen:      st.Gen,
		Replicas: st.Replicas,
		Len:      e.group.Len(),
		BuildMs:  float64(st.Build) / float64(time.Millisecond),
		DrainMs:  float64(st.Drain) / float64(time.Millisecond),
	})
}

// FailReplica injects a fault into one replica slot of a replicated
// region: every attempt routed to that slot fails until healed with
// HealReplicas. It is the chaos seam the soak tests and the CI smoke
// use to kill a replica under live traffic.
func (s *Server) FailReplica(region string, replicaIdx int) error {
	g, err := s.regionGroup(region)
	if err != nil {
		return err
	}
	if replicaIdx < 0 || replicaIdx >= g.Replicas() {
		return fmt.Errorf("server: region %q has no replica %d", region, replicaIdx)
	}
	g.SetFaultHook(func(rep, _ int) error {
		if rep == replicaIdx {
			return fmt.Errorf("injected fault: replica %d down", replicaIdx)
		}
		return nil
	})
	return nil
}

// HealReplicas removes any injected replica fault from the region.
func (s *Server) HealReplicas(region string) error {
	g, err := s.regionGroup(region)
	if err != nil {
		return err
	}
	g.SetFaultHook(nil)
	return nil
}

func (s *Server) regionGroup(region string) (*replica.Group, error) {
	s.mu.RLock()
	e := s.regions[region]
	s.mu.RUnlock()
	if e == nil {
		return nil, fmt.Errorf("server: no region %q", region)
	}
	if e.group == nil {
		return nil, fmt.Errorf("server: region %q is not replicated", region)
	}
	return e.group, nil
}

// toWireReplication converts a group's stats to the wire block
// attached to /statsz region blocks.
func toWireReplication(gst replica.GroupStats) *wire.ReplicationStats {
	out := &wire.ReplicationStats{
		Gen:          gst.Gen,
		Swaps:        gst.Swaps,
		HedgeDelayMs: float64(gst.HedgeDelay) / float64(time.Millisecond),
		Replicas:     make([]wire.ReplicaStats, len(gst.Replicas)),
	}
	for i, r := range gst.Replicas {
		out.Replicas[i] = wire.ReplicaStats{
			Replica:       r.Replica,
			InFlight:      r.InFlight,
			Queries:       r.Queries,
			Errors:        r.Errors,
			Hedges:        r.Hedges,
			Failovers:     r.Failovers,
			EwmaLatencyMs: float64(r.EwmaLatency) / float64(time.Millisecond),
		}
	}
	return out
}
