package server_test

// Wire-level coverage for the Vaults region option: the config
// round-trips through create/get, a vault-parallel region serves
// results identical to a serial one, and a forced-trace response shows
// the per-vault spans under the host exec span.

import (
	"context"
	"net/http/httptest"
	"reflect"
	"testing"
	"time"

	"ssam/internal/client"
	"ssam/internal/server"
	"ssam/internal/server/wire"
)

func TestVaultsConfigRoundTripAndServing(t *testing.T) {
	// Big enough to clear the engines' adaptive serial threshold, so
	// the served queries genuinely take the vault-parallel path.
	const (
		n, dim = 2400, 8
		k      = 10
		vaults = 8
	)
	rows, queries := testData(n, 4, dim)

	srv := server.New(server.Options{BatchWindow: time.Millisecond})
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	ctx := context.Background()
	c := client.New(ts.URL, client.WithTimeout(time.Minute))

	info, err := c.CreateRegion(ctx, "vp", dim, wire.RegionConfig{Mode: "linear", Vaults: vaults})
	if err != nil {
		t.Fatal(err)
	}
	if info.Config.Vaults != vaults {
		t.Fatalf("create echoed vaults=%d, want %d", info.Config.Vaults, vaults)
	}
	if _, err := c.CreateRegion(ctx, "serial", dim, wire.RegionConfig{Mode: "linear", Vaults: 1}); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"vp", "serial"} {
		if _, err := c.Load(ctx, name, rows); err != nil {
			t.Fatal(err)
		}
		if _, err := c.Build(ctx, name); err != nil {
			t.Fatal(err)
		}
	}

	// The stored config survives a get, not just the create echo.
	if info, err = c.Region(ctx, "vp"); err != nil {
		t.Fatal(err)
	}
	if info.Config.Vaults != vaults {
		t.Fatalf("get echoed vaults=%d, want %d", info.Config.Vaults, vaults)
	}

	for i, q := range queries {
		want, err := c.Search(ctx, "serial", q, k)
		if err != nil {
			t.Fatal(err)
		}
		got, err := c.Search(ctx, "vp", q, k)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("query %d: vault-parallel region diverged from serial over the wire", i)
		}
	}

	// A forced-trace response exposes the vault topology.
	resp, err := c.SearchTraced(ctx, "vp", queries[0], k)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Trace == nil {
		t.Fatal("no trace on a forced-trace request")
	}
	exec := resp.Trace.Root.Find("exec")
	if exec == nil {
		t.Fatal("traced response has no exec span")
	}
	if spans := exec.FindAll("vault"); len(spans) != vaults {
		t.Fatalf("got %d vault spans in the wire trace, want %d", len(spans), vaults)
	}

	// Invalid vault counts are rejected at create time with the same
	// strictness as the other enums.
	if _, err := c.CreateRegion(ctx, "bad", dim, wire.RegionConfig{Mode: "linear", Vaults: -3}); err == nil {
		t.Fatal("negative vaults accepted at create")
	}
}
