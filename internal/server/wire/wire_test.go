package wire

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"ssam"
)

// TestIndexParamsMirrorsSSAM pins the direct struct conversion the
// server relies on (`ssam.IndexParams(wc.Index)`): the two types must
// keep identical field names, types, and order. A new knob added to
// one side only fails here instead of at server build time.
func TestIndexParamsMirrorsSSAM(t *testing.T) {
	wt := reflect.TypeOf(IndexParams{})
	st := reflect.TypeOf(ssam.IndexParams{})
	if wt.NumField() != st.NumField() {
		t.Fatalf("field counts differ: wire %d, ssam %d", wt.NumField(), st.NumField())
	}
	for i := 0; i < wt.NumField(); i++ {
		wf, sf := wt.Field(i), st.Field(i)
		if wf.Name != sf.Name || wf.Type != sf.Type {
			t.Fatalf("field %d differs: wire %s %v, ssam %s %v",
				i, wf.Name, wf.Type, sf.Name, sf.Type)
		}
	}
}

// TestCreateRegionGraphRoundTrip round-trips a graph-mode region
// config through encode/decode and checks the HNSW knobs survive.
func TestCreateRegionGraphRoundTrip(t *testing.T) {
	req := CreateRegionRequest{
		Name: "gist",
		Dims: 128,
		Config: RegionConfig{
			Mode:      "graph",
			Execution: "device",
			Index: IndexParams{
				M: 24, EfConstruction: 150, EfSearch: 96, Seed: 42,
			},
		},
	}
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	for _, field := range []string{`"m":24`, `"ef_construction":150`, `"ef_search":96`} {
		if !strings.Contains(string(body), field) {
			t.Fatalf("encoded body missing %s: %s", field, body)
		}
	}
	got, err := DecodeCreateRegion(body)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, req) {
		t.Fatalf("round trip changed request:\n got %+v\nwant %+v", got, req)
	}
	// Zero-valued knobs stay off the wire.
	minimal, err := json.Marshal(CreateRegionRequest{Name: "r", Dims: 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, field := range []string{"ef_search", "ef_construction", `"m"`} {
		if strings.Contains(string(minimal), field) {
			t.Fatalf("zero-valued %s leaked into %s", field, minimal)
		}
	}
}

// TestCreateRegionStrictness pins that adding fields did not loosen
// the decoder: unknown index fields and trailing data still fail.
func TestCreateRegionStrictness(t *testing.T) {
	cases := []string{
		`{"name":"g","dims":8,"config":{"mode":"graph","index":{"ef_serach":64}}}`, // typo'd knob
		`{"name":"g","dims":8,"config":{"mode":"graph","m":16}}`,                   // knob outside index
		`{"name":"g","dims":8}trailing`,
	}
	for _, body := range cases {
		if _, err := DecodeCreateRegion([]byte(body)); err == nil {
			t.Fatalf("decoder accepted %s", body)
		}
	}
	ok := `{"name":"g","dims":8,"config":{"mode":"graph","index":{"m":16,"ef_construction":80,"ef_search":32}}}`
	req, err := DecodeCreateRegion([]byte(ok))
	if err != nil {
		t.Fatal(err)
	}
	if req.Config.Index.M != 16 || req.Config.Index.EfConstruction != 80 || req.Config.Index.EfSearch != 32 {
		t.Fatalf("decoded index params: %+v", req.Config.Index)
	}
}
