package wire

import (
	"errors"
	"fmt"
	"math"
)

// Typed validation errors for the mutation decoders. Callers (and
// tests) match them with errors.Is; the wrapped message carries the
// offending index for the response body.
var (
	// ErrNoIDs marks an upsert/delete body with an empty id list.
	ErrNoIDs = errors.New("wire: no ids")
	// ErrIDVectorMismatch marks an upsert whose parallel arrays differ
	// in length.
	ErrIDVectorMismatch = errors.New("wire: ids and vectors lengths differ")
	// ErrNegativeID marks a negative external id.
	ErrNegativeID = errors.New("wire: negative id")
	// ErrDimMismatch marks ragged upsert vectors (rows of differing
	// dimensionality within one request — the region's own dim check
	// happens server-side, where the region is known).
	ErrDimMismatch = errors.New("wire: ragged vector dimensions")
	// ErrNonFinite marks a NaN or ±Inf vector element, which could not
	// survive a JSON re-encode.
	ErrNonFinite = errors.New("wire: non-finite vector value")
)

// DecodeUpsert decodes and validates an UpsertRequest body.
func DecodeUpsert(data []byte) (UpsertRequest, error) {
	var req UpsertRequest
	if err := decodeStrict(data, &req); err != nil {
		return UpsertRequest{}, err
	}
	if len(req.IDs) == 0 {
		return UpsertRequest{}, ErrNoIDs
	}
	if len(req.IDs) != len(req.Vectors) {
		return UpsertRequest{}, fmt.Errorf("%w: %d ids, %d vectors", ErrIDVectorMismatch, len(req.IDs), len(req.Vectors))
	}
	for i, id := range req.IDs {
		if id < 0 {
			return UpsertRequest{}, fmt.Errorf("%w: ids[%d] = %d", ErrNegativeID, i, id)
		}
	}
	dim := len(req.Vectors[0])
	if dim == 0 {
		return UpsertRequest{}, fmt.Errorf("%w: vectors[0] is empty", ErrDimMismatch)
	}
	for i, v := range req.Vectors {
		if len(v) != dim {
			return UpsertRequest{}, fmt.Errorf("%w: vectors[%d] has %d dims, vectors[0] has %d", ErrDimMismatch, i, len(v), dim)
		}
		for _, x := range v {
			if math.IsNaN(float64(x)) || math.IsInf(float64(x), 0) {
				return UpsertRequest{}, fmt.Errorf("%w: vectors[%d]", ErrNonFinite, i)
			}
		}
	}
	return req, nil
}

// DecodeDelete decodes and validates a DeleteRequest body.
func DecodeDelete(data []byte) (DeleteRequest, error) {
	var req DeleteRequest
	if err := decodeStrict(data, &req); err != nil {
		return DeleteRequest{}, err
	}
	if len(req.IDs) == 0 {
		return DeleteRequest{}, ErrNoIDs
	}
	for i, id := range req.IDs {
		if id < 0 {
			return DeleteRequest{}, fmt.Errorf("%w: ids[%d] = %d", ErrNegativeID, i, id)
		}
	}
	return req, nil
}
