package wire

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
)

// Strict request decoders. The server decodes every request body
// through these instead of bare json.Unmarshal so the wire boundary
// has one hardened entry point: unknown fields are rejected (a typo'd
// field fails loudly instead of silently meaning "default"), trailing
// garbage after the JSON value is rejected, and payloads that could
// not be re-encoded — non-finite floats, which encoding/json refuses
// to marshal — never make it past the decoder. The fuzz target
// (fuzz_test.go) holds the decoders to exactly that contract: never
// panic, and everything accepted round-trips through Marshal.

// decodeStrict unmarshals one JSON value into v, rejecting unknown
// fields and trailing non-whitespace.
func decodeStrict(data []byte, v any) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return err
	}
	if _, err := dec.Token(); err != io.EOF {
		return errors.New("wire: trailing data after JSON value")
	}
	return nil
}

// checkVectors rejects ragged or non-finite vector payloads; what is
// accepted must survive a Marshal round trip (encoding/json cannot
// encode NaN or ±Inf).
func checkVectors(field string, vecs [][]float32) error {
	for i, v := range vecs {
		for _, x := range v {
			if math.IsNaN(float64(x)) || math.IsInf(float64(x), 0) {
				return fmt.Errorf("wire: %s[%d] contains a non-finite value", field, i)
			}
		}
	}
	return nil
}

// DecodeCreateRegion decodes and validates a CreateRegionRequest body.
func DecodeCreateRegion(data []byte) (CreateRegionRequest, error) {
	var req CreateRegionRequest
	if err := decodeStrict(data, &req); err != nil {
		return CreateRegionRequest{}, err
	}
	if req.Name == "" {
		return CreateRegionRequest{}, errors.New("wire: region name required")
	}
	if req.Dims <= 0 {
		return CreateRegionRequest{}, fmt.Errorf("wire: dims must be positive, got %d", req.Dims)
	}
	if sc := req.Config.Sharding; sc != nil {
		if sc.Shards <= 0 {
			return CreateRegionRequest{}, fmt.Errorf("wire: sharding.shards must be positive, got %d", sc.Shards)
		}
		if math.IsNaN(sc.DeadlineMs) || math.IsInf(sc.DeadlineMs, 0) || sc.DeadlineMs < 0 {
			return CreateRegionRequest{}, errors.New("wire: sharding.deadline_ms must be finite and non-negative")
		}
		if math.IsNaN(sc.HedgeMs) || math.IsInf(sc.HedgeMs, 0) || sc.HedgeMs < 0 {
			return CreateRegionRequest{}, errors.New("wire: sharding.hedge_ms must be finite and non-negative")
		}
	}
	if rc := req.Config.Replicas; rc != nil {
		if rc.Replicas <= 0 {
			return CreateRegionRequest{}, fmt.Errorf("wire: replicas.replicas must be positive, got %d", rc.Replicas)
		}
		for _, f := range []struct {
			name string
			v    float64
		}{
			{"replicas.hedge_min_ms", rc.HedgeMinMs},
			{"replicas.hedge_max_ms", rc.HedgeMaxMs},
			{"replicas.deadline_ms", rc.DeadlineMs},
		} {
			if math.IsNaN(f.v) || math.IsInf(f.v, 0) || f.v < 0 {
				return CreateRegionRequest{}, fmt.Errorf("wire: %s must be finite and non-negative", f.name)
			}
		}
	}
	if st := req.Config.Storage; st != nil {
		if req.Config.Sharding != nil || req.Config.Replicas != nil {
			return CreateRegionRequest{}, errors.New("wire: storage cannot be combined with sharding or replicas")
		}
		if st.BudgetBytes < 0 {
			return CreateRegionRequest{}, fmt.Errorf("wire: storage.budget_bytes must be non-negative, got %d", st.BudgetBytes)
		}
		if st.Path == "" && req.Config.Execution != "device" {
			return CreateRegionRequest{}, errors.New("wire: storage.path required for host execution")
		}
	}
	return req, nil
}

// DecodeLoad decodes and validates a LoadRequest body.
func DecodeLoad(data []byte) (LoadRequest, error) {
	var req LoadRequest
	if err := decodeStrict(data, &req); err != nil {
		return LoadRequest{}, err
	}
	if len(req.Vectors) == 0 {
		return LoadRequest{}, errors.New("wire: no vectors")
	}
	if err := checkVectors("vectors", req.Vectors); err != nil {
		return LoadRequest{}, err
	}
	return req, nil
}

// DecodeSearch decodes and validates a SearchRequest body.
func DecodeSearch(data []byte) (SearchRequest, error) {
	var req SearchRequest
	if err := decodeStrict(data, &req); err != nil {
		return SearchRequest{}, err
	}
	if len(req.Query) == 0 {
		return SearchRequest{}, errors.New("wire: empty query")
	}
	if req.K <= 0 {
		return SearchRequest{}, fmt.Errorf("wire: k must be positive, got %d", req.K)
	}
	if err := checkVectors("query", [][]float32{req.Query}); err != nil {
		return SearchRequest{}, err
	}
	return req, nil
}

// DecodeSearchBatch decodes and validates a SearchBatchRequest body.
func DecodeSearchBatch(data []byte) (SearchBatchRequest, error) {
	var req SearchBatchRequest
	if err := decodeStrict(data, &req); err != nil {
		return SearchBatchRequest{}, err
	}
	if len(req.Queries) == 0 {
		return SearchBatchRequest{}, errors.New("wire: no queries")
	}
	if req.K <= 0 {
		return SearchBatchRequest{}, fmt.Errorf("wire: k must be positive, got %d", req.K)
	}
	if err := checkVectors("queries", req.Queries); err != nil {
		return SearchBatchRequest{}, err
	}
	return req, nil
}
