package wire

import (
	"errors"
	"reflect"
	"testing"
)

func TestDecodeUpsert(t *testing.T) {
	req, err := DecodeUpsert([]byte(`{"ids":[0,7],"vectors":[[1,2,3],[4,5,6]]}`))
	if err != nil {
		t.Fatal(err)
	}
	want := UpsertRequest{IDs: []int{0, 7}, Vectors: [][]float32{{1, 2, 3}, {4, 5, 6}}}
	if !reflect.DeepEqual(req, want) {
		t.Fatalf("got %+v", req)
	}

	cases := []struct {
		name string
		body string
		want error // nil means "any error"
	}{
		{"empty ids", `{"ids":[],"vectors":[]}`, ErrNoIDs},
		{"length mismatch", `{"ids":[1],"vectors":[[1],[2]]}`, ErrIDVectorMismatch},
		{"negative id", `{"ids":[-3],"vectors":[[1,2]]}`, ErrNegativeID},
		{"ragged dims", `{"ids":[1,2],"vectors":[[1,2],[3]]}`, ErrDimMismatch},
		{"empty vector", `{"ids":[1],"vectors":[[]]}`, ErrDimMismatch},
		{"unknown field", `{"ids":[1],"vectors":[[1]],"extra":true}`, nil},
		{"trailing data", `{"ids":[1],"vectors":[[1]]}garbage`, nil},
		{"not an object", `[1,2,3]`, nil},
	}
	for _, c := range cases {
		_, err := DecodeUpsert([]byte(c.body))
		if err == nil {
			t.Fatalf("%s: accepted", c.name)
		}
		if c.want != nil && !errors.Is(err, c.want) {
			t.Fatalf("%s: err = %v, want errors.Is(%v)", c.name, err, c.want)
		}
	}

	// Non-finite values cannot travel as JSON numbers, so they arrive
	// as a decode error rather than reaching the finiteness check; the
	// typed path is still pinned directly.
	if _, err := DecodeUpsert([]byte(`{"ids":[1],"vectors":[[1e999]]}`)); err == nil {
		t.Fatal("overflowing float accepted")
	}
}

func TestDecodeDelete(t *testing.T) {
	req, err := DecodeDelete([]byte(`{"ids":[3,1,4]}`))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(req, DeleteRequest{IDs: []int{3, 1, 4}}) {
		t.Fatalf("got %+v", req)
	}
	if _, err := DecodeDelete([]byte(`{"ids":[]}`)); !errors.Is(err, ErrNoIDs) {
		t.Fatalf("empty ids: %v", err)
	}
	if _, err := DecodeDelete([]byte(`{"ids":[-1]}`)); !errors.Is(err, ErrNegativeID) {
		t.Fatalf("negative id: %v", err)
	}
	if _, err := DecodeDelete([]byte(`{"ids":[1],"unknown":true}`)); err == nil {
		t.Fatal("unknown field accepted")
	}
	if _, err := DecodeDelete([]byte(`{"ids":[1]} tail`)); err == nil {
		t.Fatal("trailing data accepted")
	}
}
