package wire

import (
	"strings"
	"testing"
)

// The storage block of a create request is validated at the wire
// boundary: unknown fields, negative budgets, and a missing path (for
// host execution) must be rejected before a region is ever allocated.

func TestCreateRegionStorageDecode(t *testing.T) {
	body := `{"name":"big","dims":64,"config":{
		"mode":"quantized",
		"storage":{"path":"/data/big.tier","budget_bytes":1048576,"prefetch":true},
		"index":{"m":8,"rerank":100}}}`
	req, err := DecodeCreateRegion([]byte(body))
	if err != nil {
		t.Fatal(err)
	}
	st := req.Config.Storage
	if st == nil {
		t.Fatal("storage block lost in decode")
	}
	if st.Path != "/data/big.tier" || st.BudgetBytes != 1<<20 || !st.Prefetch {
		t.Fatalf("storage block decoded as %+v", st)
	}
}

func TestCreateRegionStorageRejections(t *testing.T) {
	cases := []struct {
		name, body, wantErr string
	}{
		{
			"unknown field",
			`{"name":"x","dims":8,"config":{"storage":{"path":"p","budget_byte":1}}}`,
			"unknown field",
		},
		{
			"negative budget",
			`{"name":"x","dims":8,"config":{"storage":{"path":"p","budget_bytes":-1}}}`,
			"budget_bytes",
		},
		{
			"missing path on host",
			`{"name":"x","dims":8,"config":{"storage":{"budget_bytes":1}}}`,
			"storage.path",
		},
		{
			"storage plus sharding",
			`{"name":"x","dims":8,"config":{"storage":{"path":"p"},"sharding":{"shards":2}}}`,
			"sharding or replicas",
		},
		{
			"storage plus replicas",
			`{"name":"x","dims":8,"config":{"storage":{"path":"p"},"replicas":{"replicas":2}}}`,
			"sharding or replicas",
		},
	}
	for _, c := range cases {
		_, err := DecodeCreateRegion([]byte(c.body))
		if err == nil {
			t.Errorf("%s: accepted", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.wantErr) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.wantErr)
		}
	}
	// Device execution prices storage analytically; no path needed.
	if _, err := DecodeCreateRegion([]byte(
		`{"name":"x","dims":8,"config":{"execution":"device","storage":{"budget_bytes":1}}}`)); err != nil {
		t.Errorf("device without path rejected: %v", err)
	}
}

// StorageConfig must mirror ssam.Storage field for field; the server
// converts explicitly, so this pins the wire block's shape instead of
// a struct conversion. A round trip through JSON must preserve it.
func TestStorageConfigRoundTrip(t *testing.T) {
	body := `{"name":"x","dims":8,"config":{"execution":"device","storage":{"budget_bytes":42,"prefetch":true}}}`
	req, err := DecodeCreateRegion([]byte(body))
	if err != nil {
		t.Fatal(err)
	}
	if req.Config.Storage.Path != "" || req.Config.Storage.BudgetBytes != 42 || !req.Config.Storage.Prefetch {
		t.Fatalf("decoded %+v", req.Config.Storage)
	}
}
