package wire

// Strict-decode tests for the replicas config block and the
// replication response fields added with replicated serving.

import (
	"encoding/json"
	"strings"
	"testing"
)

// TestCreateRegionReplicasDecode pins the replicas block's contract:
// a well-formed config round-trips, malformed replica counts and
// hedge bands are rejected with a field-naming error, and unknown
// fields inside the block fail the strict decoder.
func TestCreateRegionReplicasDecode(t *testing.T) {
	ok := `{"name":"r","dims":8,"config":{"replicas":{"replicas":3,"hedge":true,"hedge_min_ms":0.5,"hedge_max_ms":25,"deadline_ms":100}}}`
	req, err := DecodeCreateRegion([]byte(ok))
	if err != nil {
		t.Fatalf("valid replicas config rejected: %v", err)
	}
	rc := req.Config.Replicas
	if rc == nil || rc.Replicas != 3 || !rc.Hedge ||
		rc.HedgeMinMs != 0.5 || rc.HedgeMaxMs != 25 || rc.DeadlineMs != 100 {
		t.Fatalf("decoded replicas config %+v", rc)
	}
	// And it survives a marshal round trip.
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	again, err := DecodeCreateRegion(body)
	if err != nil || again.Config.Replicas == nil || *again.Config.Replicas != *rc {
		t.Fatalf("re-decode: %+v, %v", again.Config.Replicas, err)
	}

	// Replication combines with sharding in one config.
	combo := `{"name":"r","dims":8,"config":{"sharding":{"shards":2},"replicas":{"replicas":2}}}`
	req, err = DecodeCreateRegion([]byte(combo))
	if err != nil {
		t.Fatalf("sharded+replicated config rejected: %v", err)
	}
	if req.Config.Sharding.Shards != 2 || req.Config.Replicas.Replicas != 2 {
		t.Fatalf("combo decoded as %+v", req.Config)
	}

	bad := []struct {
		body, wantErr string
	}{
		{`{"name":"r","dims":8,"config":{"replicas":{"replicas":0}}}`, "must be positive"},
		{`{"name":"r","dims":8,"config":{"replicas":{"replicas":-3}}}`, "must be positive"},
		{`{"name":"r","dims":8,"config":{"replicas":{"hedge":true}}}`, "must be positive"}, // count omitted = 0
		{`{"name":"r","dims":8,"config":{"replicas":{"replicas":2,"hedge_min_ms":-1}}}`, "hedge_min_ms"},
		{`{"name":"r","dims":8,"config":{"replicas":{"replicas":2,"hedge_max_ms":-0.5}}}`, "hedge_max_ms"},
		{`{"name":"r","dims":8,"config":{"replicas":{"replicas":2,"deadline_ms":-100}}}`, "deadline_ms"},
		{`{"name":"r","dims":8,"config":{"replicas":{"replicas":2,"hegde":true}}}`, "unknown field"}, // typo'd knob
		{`{"name":"r","dims":8,"config":{"replicas":2}}`, "cannot unmarshal"},                        // block, not a bare count
	}
	for _, c := range bad {
		_, err := DecodeCreateRegion([]byte(c.body))
		if err == nil {
			t.Errorf("decoder accepted %s", c.body)
			continue
		}
		if !strings.Contains(err.Error(), c.wantErr) {
			t.Errorf("decode %s: error %q does not mention %q", c.body, err, c.wantErr)
		}
	}
}

// TestReplicationResponseFields pins the wire shape of the replicated
// serving additions: zero-valued replica fields stay off existing
// responses (old clients see unchanged bodies), and the reload and
// replication-stats payloads expose the documented keys.
func TestReplicationResponseFields(t *testing.T) {
	// An unreplicated search response must not grow new keys.
	plain, err := json.Marshal(SearchResponse{Results: []Neighbor{{ID: 1, Distance: 0.5}}})
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"replica", "gen", "failovers"} {
		if strings.Contains(string(plain), `"`+key+`"`) {
			t.Errorf("unreplicated search response leaked %q: %s", key, plain)
		}
	}

	// A replicated one carries attribution, including replica 0.
	zero := 0
	attributed, err := json.Marshal(SearchResponse{
		Results: []Neighbor{{ID: 1}}, Replica: &zero, Gen: 3, Failovers: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"replica":0`, `"gen":3`, `"failovers":1`} {
		if !strings.Contains(string(attributed), want) {
			t.Errorf("replicated search response missing %s: %s", want, attributed)
		}
	}

	reload, err := json.Marshal(ReloadResponse{Gen: 2, Replicas: 3, Len: 100, BuildMs: 1.5, DrainMs: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"gen":2`, `"replicas":3`, `"len":100`, `"build_ms":1.5`, `"drain_ms":0.25`} {
		if !strings.Contains(string(reload), want) {
			t.Errorf("reload response missing %s: %s", want, reload)
		}
	}

	stats, err := json.Marshal(ReplicationStats{
		Gen: 2, Swaps: 2, HedgeDelayMs: 4.5,
		Replicas: []ReplicaStats{{Replica: 1, Queries: 7, Hedges: 2, Failovers: 1, EwmaLatencyMs: 0.8}},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"gen":2`, `"swaps":2`, `"hedge_delay_ms":4.5`, `"replica":1`, `"queries":7`, `"hedges":2`, `"failovers":1`} {
		if !strings.Contains(string(stats), want) {
			t.Errorf("replication stats missing %s: %s", want, stats)
		}
	}
}
