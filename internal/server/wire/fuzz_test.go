package wire

import (
	"encoding/json"
	"reflect"
	"testing"
)

// FuzzDecodeRequests holds every request decoder to the wire
// contract: never panic on arbitrary bytes, and anything accepted
// must survive a Marshal/Decode round trip unchanged — which is why
// the decoders reject non-finite floats (encoding/json cannot encode
// them) and trailing garbage. kind selects the payload family:
// 'c' create, 'l' load, 's' search, 'b' batch, 'u' upsert, 'd' delete;
// other bytes exercise every decoder on the same input.
func FuzzDecodeRequests(f *testing.F) {
	seeds := []struct {
		kind byte
		body string
	}{
		{'c', `{"name":"glove","dims":100,"config":{"metric":"euclidean","mode":"kdtree","index":{"trees":4,"seed":7}}}`},
		{'c', `{"name":"gist","dims":128,"config":{"mode":"graph","index":{"m":16,"ef_construction":100,"ef_search":64,"seed":1}}}`},
		{'c', `{"name":"g2","dims":8,"config":{"mode":"graph","execution":"device","index":{"ef_search":32}}}`},
		{'c', `{"name":"shardy","dims":8,"config":{"sharding":{"shards":4,"partition":"hash","deadline_ms":5.5,"hedge_ms":1.25,"allow_partial":true}}}`},
		{'c', `{"name":"pq","dims":64,"config":{"mode":"quantized","index":{"m":8,"sample":4096,"rerank":100,"seed":5}}}`},
		{'c', `{"name":"pqd","dims":32,"config":{"mode":"quantized","execution":"device","metric":"cosine","index":{"rerank":50}}}`},
		{'c', `{"name":"pqt","dims":16,"config":{"mode":"quantized","index":{"rerank":-1,"samle":2}}}`},
		{'c', `{"name":"big","dims":64,"config":{"storage":{"path":"/tmp/big.tier","budget_bytes":1048576,"prefetch":true}}}`},
		{'c', `{"name":"bigpq","dims":64,"config":{"mode":"quantized","storage":{"path":"/tmp/bigpq.tier","budget_bytes":4096},"index":{"m":8,"rerank":100}}}`},
		{'c', `{"name":"bigdev","dims":32,"config":{"execution":"device","storage":{"budget_bytes":65536}}}`},
		{'c', `{"name":"bad","dims":8,"config":{"storage":{"path":"x","budget_bytes":-1}}}`},
		{'c', `{"name":"bad2","dims":8,"config":{"storage":{}}}`},
		{'c', `{"name":"bad3","dims":8,"config":{"storage":{"path":"x"},"sharding":{"shards":2}}}`},
		{'c', `{"name":"","dims":0}`},
		{'c', `{"name":"x","dims":3,"config":{"sharding":{"shards":-1}}}`},
		{'l', `{"vectors":[[1,2,3],[4,5,6]]}`},
		{'l', `{"vectors":[[0.25,-1e9]],"append":true}`},
		{'l', `{"vectors":[]}`},
		{'s', `{"query":[1,2,3],"k":5}`},
		{'s', `{"query":[],"k":0}`},
		{'s', `{"query":[1e38,-1e-38],"k":1}`},
		{'b', `{"queries":[[1,2],[3,4]],"k":2}`},
		{'b', `{"queries":[[]],"k":1}`},
		{'s', `{"query":[1],"k":1}garbage`},
		{'s', `{"query":[1],"k":1,"unknown_field":true}`},
		{'l', `{"vectors":[[1,2],[3]]}`},
		{'c', `[]`},
		{'b', `{"queries"`},
		{'x', `null`},
		{'x', `{"query":[1],"k":1}`},
		{'u', `{"ids":[0,7],"vectors":[[1,2,3],[4,5,6]]}`},
		{'u', `{"ids":[1],"vectors":[[1,2],[3,4]]}`},
		{'u', `{"ids":[-3],"vectors":[[1,2]]}`},
		{'u', `{"ids":[1,2],"vectors":[[1,2],[3]]}`},
		{'u', `{"ids":[],"vectors":[]}`},
		{'u', `{"ids":[1],"vectors":[[1,2]],"extra":1}`},
		{'u', `{"ids":[1],"vectors":[[1,2]]}trailing`},
		{'d', `{"ids":[3,1,4]}`},
		{'d', `{"ids":[]}`},
		{'d', `{"ids":[-1]}`},
		{'d', `{"ids":[1],"unknown":true}`},
		{'x', `{"ids":[1],"vectors":[[1]]}`},
	}
	for _, s := range seeds {
		f.Add(s.kind, []byte(s.body))
	}
	f.Fuzz(func(t *testing.T, kind byte, data []byte) {
		switch kind {
		case 'c':
			roundTrip(t, data, DecodeCreateRegion)
		case 'l':
			roundTrip(t, data, DecodeLoad)
		case 's':
			roundTrip(t, data, DecodeSearch)
		case 'b':
			roundTrip(t, data, DecodeSearchBatch)
		case 'u':
			roundTrip(t, data, DecodeUpsert)
		case 'd':
			roundTrip(t, data, DecodeDelete)
		default:
			roundTrip(t, data, DecodeCreateRegion)
			roundTrip(t, data, DecodeLoad)
			roundTrip(t, data, DecodeSearch)
			roundTrip(t, data, DecodeSearchBatch)
			roundTrip(t, data, DecodeUpsert)
			roundTrip(t, data, DecodeDelete)
		}
	})
}

// roundTrip decodes data and, when accepted, requires the value to
// re-encode and re-decode to exactly itself.
func roundTrip[T any](t *testing.T, data []byte, decode func([]byte) (T, error)) {
	t.Helper()
	v, err := decode(data)
	if err != nil {
		return // rejected is fine; panicking is not
	}
	enc, err := json.Marshal(v)
	if err != nil {
		t.Fatalf("accepted %q but cannot re-encode: %v", data, err)
	}
	back, err := decode(enc)
	if err != nil {
		t.Fatalf("re-encoded form %q rejected: %v", enc, err)
	}
	if !reflect.DeepEqual(v, back) {
		t.Fatalf("round trip changed value:\n  first  %#v\n  second %#v", v, back)
	}
}
