// Package wire defines the JSON request/response types shared by the
// SSAM query server (internal/server) and the Go client
// (internal/client). Enum-valued fields travel as their String()
// names ("euclidean", "kdtree", "device", ...) so payloads stay
// readable in curl transcripts.
package wire

import "ssam/internal/obs"

// RegionConfig mirrors ssam.Config for region creation over the wire.
// Only float-metric regions are servable: binary (Hamming-code)
// payloads have no JSON vector representation here yet.
type RegionConfig struct {
	Metric       string `json:"metric,omitempty"`        // euclidean|manhattan|cosine (default euclidean)
	Mode         string `json:"mode,omitempty"`          // linear|kdtree|kmeans|mplsh|graph (default linear)
	Execution    string `json:"execution,omitempty"`     // host|device (default host)
	VectorLength int    `json:"vector_length,omitempty"` // device variant: 2|4|8|16
	Workers      int    `json:"workers,omitempty"`
	// Vaults sets the intra-query scan partition count for host linear
	// execution (0 = min(32, GOMAXPROCS); clamped to 32). Results are
	// bit-identical at every vault count.
	Vaults int         `json:"vaults,omitempty"`
	Index  IndexParams `json:"index,omitempty"`
	// Sharding, when present, makes the region a scatter-gather
	// cluster of independent shard regions (internal/cluster), each
	// with its own simulated device module.
	Sharding *ShardingConfig `json:"sharding,omitempty"`
	// Replicas, when present, makes the region a replica group
	// (internal/replica): N interchangeable copies of the backend
	// (each its own region, or its own cluster when Sharding is also
	// set) behind power-of-two-choices routing with hedged reads,
	// transparent failover, and zero-downtime generational reload.
	Replicas *ReplicasConfig `json:"replicas,omitempty"`
	// Storage, when present, backs the region's vectors with a file
	// behind a budgeted page cache (out-of-core serving, linear and
	// quantized modes only). Not combinable with Sharding or Replicas.
	Storage *StorageConfig `json:"storage,omitempty"`
}

// StorageConfig configures out-of-core backing at create time,
// mirroring ssam.Storage.
type StorageConfig struct {
	// Path is the server-local backing file, written at build time.
	// Required for host execution; optional for device execution,
	// where the storage tier is priced analytically.
	Path string `json:"path,omitempty"`
	// BudgetBytes caps resident vector-page bytes (0 = unlimited).
	BudgetBytes int64 `json:"budget_bytes,omitempty"`
	// Prefetch overlaps the next vault's read with the current scan.
	Prefetch bool `json:"prefetch,omitempty"`
}

// ReplicasConfig configures a replicated region at create time.
type ReplicasConfig struct {
	// Replicas is the number of interchangeable dataset copies. Must
	// be positive.
	Replicas int `json:"replicas"`
	// Hedge enables a second attempt on a different replica once the
	// routed one has been silent for the p99-derived hedge delay.
	Hedge bool `json:"hedge,omitempty"`
	// HedgeMinMs and HedgeMaxMs clamp the adaptive hedge delay
	// (defaults 1ms and 100ms).
	HedgeMinMs float64 `json:"hedge_min_ms,omitempty"`
	HedgeMaxMs float64 `json:"hedge_max_ms,omitempty"`
	// DeadlineMs bounds one query across all its replica attempts; 0
	// disables the deadline.
	DeadlineMs float64 `json:"deadline_ms,omitempty"`
}

// ShardingConfig configures a sharded region at create time.
type ShardingConfig struct {
	// Shards is the number of sub-regions the dataset is partitioned
	// across (the paper's composed cubes). Must be positive.
	Shards int `json:"shards"`
	// Partition is "roundrobin" (default) or "hash".
	Partition string `json:"partition,omitempty"`
	// DeadlineMs bounds each shard's time to answer one query fan-out;
	// 0 disables the per-shard deadline.
	DeadlineMs float64 `json:"deadline_ms,omitempty"`
	// HedgeMs, when positive, re-issues a query to a shard that has
	// not answered within this delay (first answer wins).
	HedgeMs float64 `json:"hedge_ms,omitempty"`
	// AllowPartial returns merged results from surviving shards with
	// Degraded set instead of failing the query when shards fail.
	AllowPartial bool `json:"allow_partial,omitempty"`
}

// IndexParams mirrors ssam.IndexParams field for field (the server
// converts by direct struct conversion, so the layouts must match).
type IndexParams struct {
	Trees     int `json:"trees,omitempty"`
	Branching int `json:"branching,omitempty"`
	LeafSize  int `json:"leaf_size,omitempty"`
	Tables    int `json:"tables,omitempty"`
	Bits      int `json:"bits,omitempty"`
	Checks    int `json:"checks,omitempty"`
	Probes    int `json:"probes,omitempty"`
	// Graph-mode (HNSW) knobs: per-layer degree bound, build beam, and
	// query-time beam.
	M              int `json:"m,omitempty"`
	EfConstruction int `json:"ef_construction,omitempty"`
	EfSearch       int `json:"ef_search,omitempty"`
	// Quantized-mode (PQ) knobs: codebook training sample size and the
	// exact re-rank depth (M doubles as the subquantizer count).
	Sample int   `json:"sample,omitempty"`
	Rerank int   `json:"rerank,omitempty"`
	Seed   int64 `json:"seed,omitempty"`
}

// CreateRegionRequest allocates a named region (nmalloc + nmode).
type CreateRegionRequest struct {
	Name   string       `json:"name"`
	Dims   int          `json:"dims"`
	Config RegionConfig `json:"config"`
}

// LoadRequest copies vectors into a region (nmemcpy). Append reloads
// accumulate rows instead of replacing the dataset, letting large
// corpora stream in over several requests.
type LoadRequest struct {
	Vectors [][]float32 `json:"vectors"`
	Append  bool        `json:"append,omitempty"`
}

// RegionInfo describes one region in list/get responses.
type RegionInfo struct {
	Name     string       `json:"name"`
	Dims     int          `json:"dims"`
	Len      int          `json:"len"`
	Built    bool         `json:"built"`
	Shards   int          `json:"shards,omitempty"`   // 0 for unsharded regions
	Replicas int          `json:"replicas,omitempty"` // 0 for unreplicated regions
	Gen      uint64       `json:"gen,omitempty"`      // serving generation (replicated regions)
	Config   RegionConfig `json:"config"`
}

// SearchRequest is one query (nwrite_query + nexec); it rides the
// server's micro-batcher.
type SearchRequest struct {
	Query []float32 `json:"query"`
	K     int       `json:"k"`
}

// Neighbor is one result row (nread_result).
type Neighbor struct {
	ID       int     `json:"id"`
	Distance float64 `json:"distance"`
}

// SearchResponse answers a SearchRequest. The degradation fields are
// only set for sharded regions serving in partial-result mode.
type SearchResponse struct {
	Results []Neighbor `json:"results"`
	// Degraded reports that FailedShards were excluded from the merge.
	Degraded     bool  `json:"degraded,omitempty"`
	FailedShards []int `json:"failed_shards,omitempty"`
	// Hedges counts hedged re-issues this query triggered — shard
	// hedges inside the serving backend plus replica-level hedges for
	// replicated regions.
	Hedges int `json:"hedges,omitempty"`
	// Replica is the replica slot that answered (replicated regions
	// only); Gen the generation it served from; Failovers the replica
	// attempts re-issued after errors.
	Replica   *int   `json:"replica,omitempty"`
	Gen       uint64 `json:"gen,omitempty"`
	Failovers int    `json:"failovers,omitempty"`
	// Trace is the request's sampled span tree, present only when the
	// request carried the X-SSAM-Trace header.
	Trace *obs.TraceData `json:"trace,omitempty"`
}

// SearchBatchRequest carries an explicit query batch; it bypasses the
// micro-batcher and maps directly onto Region.SearchBatch.
type SearchBatchRequest struct {
	Queries [][]float32 `json:"queries"`
	K       int         `json:"k"`
}

// SearchBatchResponse answers a SearchBatchRequest, one row per query.
// Degradation is batch-scoped: a failed shard is missing from every
// query's merge.
type SearchBatchResponse struct {
	Results      [][]Neighbor `json:"results"`
	Degraded     bool         `json:"degraded,omitempty"`
	FailedShards []int        `json:"failed_shards,omitempty"`
	Hedges       int          `json:"hedges,omitempty"`
	// Replica/Gen/Failovers mirror SearchResponse for replicated
	// regions (the whole batch is routed to one replica).
	Replica   *int   `json:"replica,omitempty"`
	Gen       uint64 `json:"gen,omitempty"`
	Failovers int    `json:"failovers,omitempty"`
	// Trace is the request's sampled span tree, present only when the
	// request carried the X-SSAM-Trace header.
	Trace *obs.TraceData `json:"trace,omitempty"`
}

// UpsertRequest inserts or replaces rows by external id — parallel
// arrays, IDs[i] naming Vectors[i]. Rows with ids already present are
// replaced atomically (each upsert commits one sequence number).
type UpsertRequest struct {
	IDs     []int       `json:"ids"`
	Vectors [][]float32 `json:"vectors"`
}

// DeleteRequest tombstones rows by external id. Absent ids are not an
// error: they are reported back in MutateResponse.Missing and commit no
// sequence number.
type DeleteRequest struct {
	IDs []int `json:"ids"`
}

// MutateResponse answers an upsert or delete. Seq is the region's last
// committed mutation sequence number after the request — strictly
// monotonic per region, so clients can order their writes and readers
// can correlate /statsz and trace generations.
type MutateResponse struct {
	Seq     uint64 `json:"seq"`
	Applied int    `json:"applied"`           // mutations that committed
	Missing []int  `json:"missing,omitempty"` // delete only: ids not present
	Len     int    `json:"len"`               // live rows after the request
	// Trace is the request's sampled span tree, present only when the
	// request carried the X-SSAM-Trace header.
	Trace *obs.TraceData `json:"trace,omitempty"`
}

// CompactResponse answers POST /regions/{name}/compact (one synchronous
// compaction pass).
type CompactResponse struct {
	Seq             uint64 `json:"seq"`
	VaultsRewritten int    `json:"vaults_rewritten"`
	Rebalanced      bool   `json:"rebalanced"`
	RowsDropped     int    `json:"rows_dropped"`
	Len             int    `json:"len"`
}

// ReloadResponse answers POST /regions/{name}/reload: a zero-downtime
// generational rebuild of a replicated region from its staged dataset.
type ReloadResponse struct {
	// Gen is the generation now serving; Replicas its copy count.
	Gen      uint64 `json:"gen"`
	Replicas int    `json:"replicas"`
	// Len is the row count of the new generation.
	Len int `json:"len"`
	// BuildMs is how long building and warming the new generation took
	// (the old one served throughout); DrainMs how long the old
	// generation's in-flight queries took to finish after cutover.
	BuildMs float64 `json:"build_ms"`
	DrainMs float64 `json:"drain_ms"`
}

// ErrorResponse is the body of every non-2xx response.
type ErrorResponse struct {
	Error string `json:"error"`
}

// HistogramBucket is one batch-size histogram cell: Count flushes had
// size in (previous bucket's Le, Le].
type HistogramBucket struct {
	Le    int    `json:"le"`
	Count uint64 `json:"count"`
}

// RegionStats is the per-region block of a StatsResponse.
type RegionStats struct {
	Queries      uint64            `json:"queries"`     // single queries served (micro-batched path)
	Batches      uint64            `json:"batches"`     // SearchBatch executions on the region
	QPS          float64           `json:"qps"`         // over the trailing 10s window
	QueueDepth   int               `json:"queue_depth"` // queries waiting in the micro-batcher
	MaxBatchSeen int               `json:"max_batch_seen"`
	BatchSizes   []HistogramBucket `json:"batch_sizes"`
	LatencyP50Ms float64           `json:"latency_p50_ms"` // request latency incl. batching wait
	LatencyP99Ms float64           `json:"latency_p99_ms"`
	// Degraded counts partial-result responses served (sharded
	// regions only).
	Degraded uint64 `json:"degraded,omitempty"`
	// Shards holds per-shard serving stats for sharded regions.
	Shards []ShardStats `json:"shards,omitempty"`
	// Mutation holds write-path counters, present only once the region
	// has taken at least one upsert or delete.
	Mutation *MutationStats `json:"mutation,omitempty"`
	// Replication holds per-replica routing stats for replicated
	// regions.
	Replication *ReplicationStats `json:"replication,omitempty"`
	// Quantized holds the PQ engine's work counters, present only for
	// built quantized-mode regions.
	Quantized *QuantizedStats `json:"quantized,omitempty"`
	// Tiered holds the storage tier's cache counters, present only for
	// built storage-backed regions.
	Tiered *TieredStats `json:"tiered,omitempty"`
}

// TieredStats is the storage-tier block of a region's stats:
// cumulative page-cache counters since build.
type TieredStats struct {
	Reads         uint64 `json:"reads"`          // backing-file reads
	BytesRead     uint64 `json:"bytes_read"`     // bytes fetched from the file
	CacheHits     uint64 `json:"cache_hits"`     // page requests served resident
	CacheMisses   uint64 `json:"cache_misses"`   // page requests that went to the file
	Evictions     uint64 `json:"evictions"`      // pages dropped to fit the budget
	PrefetchHits  uint64 `json:"prefetch_hits"`  // hits on pages a prefetch brought in
	Stalls        uint64 `json:"stalls"`         // waits behind another reader's in-flight load
	ResidentBytes int64  `json:"resident_bytes"` // cache residency right now
	BudgetBytes   int64  `json:"budget_bytes"`   // configured cap (0 = unlimited)
}

// QuantizedStats is the quantized-engine block of a region's stats:
// cumulative ADC work counters since build.
type QuantizedStats struct {
	TableBuilds uint64 `json:"table_builds"` // ADC lookup tables built (one per query)
	CodeEvals   uint64 `json:"code_evals"`   // 8-bit code rows scored through the tables
	RerankEvals uint64 `json:"rerank_evals"` // candidates re-scored at full precision
}

// ReplicationStats is the replica-group block of a region's stats.
type ReplicationStats struct {
	Gen   uint64 `json:"gen"`   // serving generation (0 before first build)
	Swaps uint64 `json:"swaps"` // generations installed over the region's lifetime
	// HedgeDelayMs is the current p99-derived replica hedge delay.
	HedgeDelayMs float64        `json:"hedge_delay_ms"`
	Replicas     []ReplicaStats `json:"replicas"`
}

// ReplicaStats is one replica slot's block of a replicated region's
// stats.
type ReplicaStats struct {
	Replica   int    `json:"replica"`
	InFlight  int    `json:"in_flight"`
	Queries   uint64 `json:"queries"` // attempts finished (errors included)
	Errors    uint64 `json:"errors"`
	Hedges    uint64 `json:"hedges"`    // hedge attempts received
	Failovers uint64 `json:"failovers"` // failover attempts received
	// EwmaLatencyMs is the slot's load-score latency estimate.
	EwmaLatencyMs float64 `json:"ewma_latency_ms"`
}

// MutationStats is the write-path block of a region's stats.
type MutationStats struct {
	Seq           uint64  `json:"seq"`       // last committed sequence number
	LiveRows      int     `json:"live_rows"` // surviving rows
	DeadRows      int     `json:"dead_rows"` // tombstones not yet compacted
	Upserts       uint64  `json:"upserts"`
	Deletes       uint64  `json:"deletes"`
	CompactPasses uint64  `json:"compact_passes"`
	VaultRewrites uint64  `json:"vault_rewrites"`
	Rebalances    uint64  `json:"rebalances"`
	GarbageRatio  float64 `json:"garbage_ratio"`
}

// ShardStats is one shard's block of a sharded region's stats.
type ShardStats struct {
	Shard        int     `json:"shard"`
	Len          int     `json:"len"`       // rows resident on the shard
	InFlight     int     `json:"in_flight"` // fan-outs currently executing (depth)
	Queries      uint64  `json:"queries"`
	Failures     uint64  `json:"failures"`
	Timeouts     uint64  `json:"timeouts"`
	Hedges       uint64  `json:"hedges"`
	AvgLatencyMs float64 `json:"avg_latency_ms"`
}

// StatsResponse is the /statsz body.
type StatsResponse struct {
	UptimeSeconds float64                `json:"uptime_seconds"`
	InFlight      int                    `json:"in_flight"`
	MaxInFlight   int                    `json:"max_in_flight"`
	Rejected      uint64                 `json:"rejected"` // 503s shed by admission control
	Draining      bool                   `json:"draining"`
	Regions       map[string]RegionStats `json:"regions"`
}
