package server

import (
	"sort"
	"sync"
	"time"

	"ssam/internal/server/wire"
)

// histLes are the batch-size histogram bucket upper bounds; sizes
// above the last bound land in a final +inf bucket.
var histLes = [...]int{1, 2, 4, 8, 16, 32, 64}

const (
	latencySamples = 2048 // sliding latency reservoir per region
	qpsWindow      = 10   // seconds of trailing QPS window
	qpsSlots       = 16   // per-second ring (> qpsWindow to tolerate skew)
)

// regionStats accumulates per-region serving metrics: query and batch
// counters, a trailing-window QPS estimate, a batch-size histogram,
// and a sliding latency reservoir for percentile estimates.
type regionStats struct {
	mu       sync.Mutex
	queries  uint64
	batches  uint64
	degraded uint64 // partial-result responses (sharded regions)
	maxBatch int
	hist     [len(histLes) + 1]uint64

	lat    [latencySamples]float64 // milliseconds, ring
	latIdx int
	latN   int

	secSlot  [qpsSlots]int64 // unix second owning each slot
	secCount [qpsSlots]uint64
}

// recordQueries accounts n served queries sharing one observed
// request latency (n == 1 for the micro-batched single-query path; n
// == batch size for explicit batch requests).
func (s *regionStats) recordQueries(n int, lat time.Duration) {
	now := time.Now().Unix()
	ms := float64(lat) / float64(time.Millisecond)
	s.mu.Lock()
	s.queries += uint64(n)
	slot := now % qpsSlots
	if s.secSlot[slot] != now {
		s.secSlot[slot] = now
		s.secCount[slot] = 0
	}
	s.secCount[slot] += uint64(n)
	s.lat[s.latIdx] = ms
	s.latIdx = (s.latIdx + 1) % latencySamples
	if s.latN < latencySamples {
		s.latN++
	}
	s.mu.Unlock()
}

// recordDegraded accounts one partial-result (degraded) response.
func (s *regionStats) recordDegraded() {
	s.mu.Lock()
	s.degraded++
	s.mu.Unlock()
}

// recordBatch accounts one executed batch of the given size.
func (s *regionStats) recordBatch(size int) {
	s.mu.Lock()
	s.batches++
	if size > s.maxBatch {
		s.maxBatch = size
	}
	i := 0
	for i < len(histLes) && size > histLes[i] {
		i++
	}
	s.hist[i]++
	s.mu.Unlock()
}

// snapshot renders the wire view. queueDepth is sampled by the caller
// (it lives in the batcher, not here).
func (s *regionStats) snapshot(queueDepth int) wire.RegionStats {
	now := time.Now().Unix()
	s.mu.Lock()
	defer s.mu.Unlock()

	var recent uint64
	for i := range s.secSlot {
		if age := now - s.secSlot[i]; age >= 0 && age < qpsWindow {
			recent += s.secCount[i]
		}
	}

	buckets := make([]wire.HistogramBucket, 0, len(s.hist))
	for i, le := range histLes {
		buckets = append(buckets, wire.HistogramBucket{Le: le, Count: s.hist[i]})
	}
	buckets = append(buckets, wire.HistogramBucket{Le: -1, Count: s.hist[len(histLes)]})

	p50, p99 := 0.0, 0.0
	if s.latN > 0 {
		sample := make([]float64, s.latN)
		copy(sample, s.lat[:s.latN])
		sort.Float64s(sample)
		p50 = sample[s.latN/2]
		p99 = sample[min(s.latN-1, s.latN*99/100)]
	}

	return wire.RegionStats{
		Queries:      s.queries,
		Batches:      s.batches,
		Degraded:     s.degraded,
		QPS:          float64(recent) / qpsWindow,
		QueueDepth:   queueDepth,
		MaxBatchSeen: s.maxBatch,
		BatchSizes:   buckets,
		LatencyP50Ms: p50,
		LatencyP99Ms: p99,
	}
}
