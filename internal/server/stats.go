package server

import (
	"sort"
	"sync"
	"time"

	"ssam/internal/obs"
	"ssam/internal/server/wire"
)

// histLes are the batch-size histogram bucket upper bounds; sizes
// above the last bound land in a final +inf bucket. The same bounds
// back the /statsz batch_sizes array and the Prometheus
// ssam_region_batch_size histogram.
var histLes = [...]int{1, 2, 4, 8, 16, 32, 64}

// latencyBounds are the request-latency buckets, in seconds, of
// ssam_region_latency_seconds (sub-millisecond through seconds: the
// micro-batched fast path sits in the first buckets, shard deadline
// and hedge pathologies in the tail).
var latencyBounds = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5,
}

const (
	latencySamples = 2048 // sliding latency reservoir per region
	qpsWindow      = 10   // seconds of trailing QPS window
	qpsSlots       = 16   // per-second ring (> qpsWindow to tolerate skew)
)

// regionStats accumulates per-region serving metrics. The counters and
// histograms are obs registry series, so /statsz and /metrics report
// from the same accumulators and can never disagree; the mutex guards
// only what Prometheus has no vocabulary for — the trailing-window QPS
// ring and the exact-percentile latency reservoir /statsz reports.
type regionStats struct {
	queries     *obs.Counter   // ssam_region_queries_total
	batches     *obs.Counter   // ssam_region_batches_total
	degraded    *obs.Counter   // ssam_region_degraded_total
	writes      *obs.Counter   // ssam_region_writes_total
	compactions *obs.Counter   // ssam_region_compactions_total
	batchSize   *obs.Histogram // ssam_region_batch_size
	latency     *obs.Histogram // ssam_region_latency_seconds

	mu       sync.Mutex
	maxBatch int

	lat    [latencySamples]float64 // milliseconds, ring
	latIdx int
	latN   int

	secSlot  [qpsSlots]int64 // unix second owning each slot
	secCount [qpsSlots]uint64
}

// newRegionStats registers the region's metric series (labeled
// region=<name>) and returns the accumulator. The series live until
// the registry drops them via Unregister on region free.
func newRegionStats(reg *obs.Registry, region string) *regionStats {
	lbl := obs.Labels{"region": region}
	sizeBounds := make([]float64, len(histLes))
	for i, le := range histLes {
		sizeBounds[i] = float64(le)
	}
	return &regionStats{
		queries:     reg.Counter("ssam_region_queries_total", "Queries served, per region.", lbl),
		batches:     reg.Counter("ssam_region_batches_total", "Batch executions, per region.", lbl),
		degraded:    reg.Counter("ssam_region_degraded_total", "Partial-result (degraded) responses, per region.", lbl),
		writes:      reg.Counter("ssam_region_writes_total", "Committed upserts and deletes, per region.", lbl),
		compactions: reg.Counter("ssam_region_compactions_total", "Layout-changing compaction passes, per region.", lbl),
		batchSize:   reg.Histogram("ssam_region_batch_size", "Executed batch sizes, per region.", lbl, sizeBounds),
		latency:     reg.Histogram("ssam_region_latency_seconds", "Request latency including batching wait, per region.", lbl, latencyBounds),
	}
}

// recordQueries accounts n served queries sharing one observed
// request latency (n == 1 for the micro-batched single-query path; n
// == batch size for explicit batch requests).
func (s *regionStats) recordQueries(n int, lat time.Duration) {
	s.queries.Add(uint64(n))
	s.latency.Observe(lat.Seconds())
	now := time.Now().Unix()
	ms := float64(lat) / float64(time.Millisecond)
	s.mu.Lock()
	slot := now % qpsSlots
	if s.secSlot[slot] != now {
		s.secSlot[slot] = now
		s.secCount[slot] = 0
	}
	s.secCount[slot] += uint64(n)
	s.lat[s.latIdx] = ms
	s.latIdx = (s.latIdx + 1) % latencySamples
	if s.latN < latencySamples {
		s.latN++
	}
	s.mu.Unlock()
}

// recordDegraded accounts one partial-result (degraded) response.
func (s *regionStats) recordDegraded() {
	s.degraded.Inc()
}

// recordWrites accounts n committed mutations (upserted rows or hit
// deletes) from one write request.
func (s *regionStats) recordWrites(n int) {
	s.writes.Add(uint64(n))
}

// recordCompaction accounts one layout-changing compaction pass; runs
// on the compactor goroutine via the region's compact hook.
func (s *regionStats) recordCompaction() {
	s.compactions.Inc()
}

// recordBatch accounts one executed batch of the given size.
func (s *regionStats) recordBatch(size int) {
	s.batches.Inc()
	s.batchSize.Observe(float64(size))
	s.mu.Lock()
	if size > s.maxBatch {
		s.maxBatch = size
	}
	s.mu.Unlock()
}

// snapshot renders the wire view. queueDepth is sampled by the caller
// (it lives in the batcher, not here).
func (s *regionStats) snapshot(queueDepth int) wire.RegionStats {
	now := time.Now().Unix()

	cells := s.batchSize.BucketCounts()
	buckets := make([]wire.HistogramBucket, 0, len(cells))
	for i, le := range histLes {
		buckets = append(buckets, wire.HistogramBucket{Le: le, Count: cells[i]})
	}
	buckets = append(buckets, wire.HistogramBucket{Le: -1, Count: cells[len(histLes)]})

	s.mu.Lock()
	defer s.mu.Unlock()

	var recent uint64
	for i := range s.secSlot {
		if age := now - s.secSlot[i]; age >= 0 && age < qpsWindow {
			recent += s.secCount[i]
		}
	}

	p50, p99 := 0.0, 0.0
	if s.latN > 0 {
		sample := make([]float64, s.latN)
		copy(sample, s.lat[:s.latN])
		sort.Float64s(sample)
		p50 = sample[s.latN/2]
		p99 = sample[min(s.latN-1, s.latN*99/100)]
	}

	return wire.RegionStats{
		Queries:      s.queries.Value(),
		Batches:      s.batches.Value(),
		Degraded:     s.degraded.Value(),
		QPS:          float64(recent) / qpsWindow,
		QueueDepth:   queueDepth,
		MaxBatchSeen: s.maxBatch,
		BatchSizes:   buckets,
		LatencyP50Ms: p50,
		LatencyP99Ms: p99,
	}
}
