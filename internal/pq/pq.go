// Package pq implements product quantization for approximate nearest
// neighbor search: the codesign lever André's thesis (arXiv:1712.02912)
// applies on host silicon and NCAM (arXiv:1606.03742) applies near
// memory. A d-dimensional float32 vector is split into M subspaces and
// each subspace is vector-quantized against its own codebook of
// Ks = 256 centroids, so a database row shrinks from 4·d bytes to M
// bytes. Query-time distances are computed asymmetrically (ADC): one
// lookup table of M×256 query-to-centroid partial distances is built
// per query, after which each database row costs M table lookups and
// M-1 additions instead of d float subtract-multiply-adds — every byte
// fetched from memory does more distance work, which is the same
// bandwidth-per-eval argument the SSAM vault accelerators make in §IV
// of the source paper.
//
// Codebook training (Train) is deterministic: the training sample, the
// k-means initialization, and the empty-cluster reseeds are all drawn
// from one seeded generator, so the same data and Params produce
// bit-identical codebooks on every run.
package pq

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Ks is the number of centroids per subquantizer. It is fixed at 256
// so a code element is exactly one byte: the scan kernel indexes its
// lookup tables with raw code bytes, which needs no bounds check once
// the table is viewed as a *[Ks]float32.
const Ks = 256

// Defaults for Params fields left zero.
const (
	DefaultM          = 8
	DefaultSample     = 8192
	DefaultIterations = 12
)

// Params configures codebook training.
type Params struct {
	// M is the subquantizer count. Each subspace covers dim/M
	// dimensions (the first dim%M subspaces take one extra, so any
	// 1 <= M <= dim is valid). 0 selects DefaultM.
	M int
	// Sample is the number of database rows the k-means training runs
	// on, drawn without replacement from a seeded generator (the whole
	// database when it has fewer rows). 0 selects DefaultSample.
	Sample int
	// Iterations bounds the Lloyd iterations per subquantizer;
	// training stops early when assignments stabilize. 0 selects
	// DefaultIterations.
	Iterations int
	// Seed seeds sampling, initialization, and reseeding.
	Seed int64
}

func (p Params) withDefaults() Params {
	if p.M == 0 {
		p.M = DefaultM
	}
	if p.Sample == 0 {
		p.Sample = DefaultSample
	}
	if p.Iterations == 0 {
		p.Iterations = DefaultIterations
	}
	return p
}

// Codebook holds M per-subspace centroid sets over dim-dimensional
// vectors. Centroids always use squared-L2 k-means regardless of the
// query metric: for the additive metrics the ADC tables support
// (squared L2, L1) the L2-trained cells remain a usable partition, and
// training stays metric-independent so one codebook serves both.
type Codebook struct {
	dim    int
	m      int
	starts []int     // len m+1: subspace j covers dims [starts[j], starts[j+1])
	cents  []float32 // Ks*dim floats; subspace j's block starts at Ks*starts[j]
}

// Train builds a codebook for the flattened row-major database. It is
// deterministic in (data, dim, p).
func Train(data []float32, dim int, p Params) (*Codebook, error) {
	if dim <= 0 || len(data)%dim != 0 {
		return nil, fmt.Errorf("pq: data length %d not a positive multiple of dim %d", len(data), dim)
	}
	n := len(data) / dim
	if n == 0 {
		return nil, fmt.Errorf("pq: empty database")
	}
	p = p.withDefaults()
	if p.M < 1 || p.M > dim {
		return nil, fmt.Errorf("pq: M=%d out of range [1, %d]", p.M, dim)
	}
	if p.Sample < 1 || p.Iterations < 1 {
		return nil, fmt.Errorf("pq: Sample and Iterations must be positive")
	}

	cb := &Codebook{
		dim:    dim,
		m:      p.M,
		starts: subspaceStarts(dim, p.M),
		cents:  make([]float32, Ks*dim),
	}

	rng := rand.New(rand.NewSource(p.Seed))
	sample := sampleRows(rng, n, p.Sample)
	for j := 0; j < cb.m; j++ {
		cb.trainSub(rng, data, sample, j, p.Iterations)
	}
	return cb, nil
}

// subspaceStarts splits dim dimensions into m contiguous subspaces,
// the first dim%m of them one dimension wider.
func subspaceStarts(dim, m int) []int {
	starts := make([]int, m+1)
	base, extra := dim/m, dim%m
	for j := 0; j < m; j++ {
		w := base
		if j < extra {
			w++
		}
		starts[j+1] = starts[j] + w
	}
	return starts
}

// sampleRows draws min(sample, n) distinct row indices without
// replacement and returns them sorted ascending (sorted so the
// training pass touches memory in row order).
func sampleRows(rng *rand.Rand, n, sample int) []int {
	if sample >= n {
		rows := make([]int, n)
		for i := range rows {
			rows[i] = i
		}
		return rows
	}
	rows := rng.Perm(n)[:sample]
	sort.Ints(rows)
	return rows
}

// trainSub runs seeded Lloyd k-means for subspace j over the sampled
// rows, writing the Ks centroids into cb.cents.
func (cb *Codebook) trainSub(rng *rand.Rand, data []float32, sample []int, j, iters int) {
	lo, hi := cb.starts[j], cb.starts[j+1]
	sub := hi - lo
	ns := len(sample)
	cents := cb.cents[Ks*lo : Ks*hi]

	// Initialize from distinct sampled rows (cycling when the sample
	// is smaller than Ks; the duplicates lose every nearest-centroid
	// tie to the first copy and simply go unused).
	perm := rng.Perm(ns)
	for c := 0; c < Ks; c++ {
		row := sample[perm[c%ns]]
		copy(cents[c*sub:(c+1)*sub], data[row*cb.dim+lo:row*cb.dim+hi])
	}

	assign := make([]int, ns)
	dists := make([]float64, ns)
	sum := make([]float64, Ks*sub)
	count := make([]int, Ks)
	for i := range assign {
		assign[i] = -1
	}
	for it := 0; it < iters; it++ {
		changed := false
		for i, row := range sample {
			v := data[row*cb.dim+lo : row*cb.dim+hi]
			c, d := nearestCentroid(cents, sub, v)
			dists[i] = d
			if c != assign[i] {
				assign[i] = c
				changed = true
			}
		}
		if !changed {
			break
		}
		for i := range sum {
			sum[i] = 0
		}
		for c := range count {
			count[c] = 0
		}
		for i, row := range sample {
			c := assign[i]
			count[c]++
			v := data[row*cb.dim+lo : row*cb.dim+hi]
			acc := sum[c*sub : (c+1)*sub]
			for d := range acc {
				acc[d] += float64(v[d])
			}
		}
		// Empty clusters reseed to the points currently worst served
		// (largest assignment distance), each empty cluster taking the
		// next-farthest point (cycling when empties outnumber points) —
		// deterministic, no generator state.
		var farthest []int
		fi := 0
		for c := 0; c < Ks; c++ {
			if count[c] > 0 {
				dst := cents[c*sub : (c+1)*sub]
				inv := 1 / float64(count[c])
				for d := range dst {
					dst[d] = float32(sum[c*sub+d] * inv)
				}
				continue
			}
			if farthest == nil {
				farthest = make([]int, ns)
				for i := range farthest {
					farthest[i] = i
				}
				sort.Slice(farthest, func(a, b int) bool {
					if dists[farthest[a]] != dists[farthest[b]] {
						return dists[farthest[a]] > dists[farthest[b]]
					}
					return farthest[a] < farthest[b]
				})
			}
			row := sample[farthest[fi%len(farthest)]]
			fi++
			copy(cents[c*sub:(c+1)*sub], data[row*cb.dim+lo:row*cb.dim+hi])
		}
	}
}

// nearestCentroid returns the index of the centroid nearest v under
// squared L2 (ties to the lowest index) and the distance to it.
func nearestCentroid(cents []float32, sub int, v []float32) (int, float64) {
	best, bestD := 0, math.Inf(1)
	for c := 0; c*sub < len(cents); c++ {
		cent := cents[c*sub : (c+1)*sub]
		var acc float64
		for d := range cent {
			diff := float64(v[d]) - float64(cent[d])
			acc += diff * diff
		}
		if acc < bestD {
			best, bestD = c, acc
		}
	}
	return best, bestD
}

// M returns the subquantizer count.
func (cb *Codebook) M() int { return cb.m }

// Dim returns the vector dimensionality.
func (cb *Codebook) Dim() int { return cb.dim }

// SubDim returns the width of subspace j.
func (cb *Codebook) SubDim(j int) int { return cb.starts[j+1] - cb.starts[j] }

// Centroid returns centroid c of subquantizer j (a view, not a copy).
func (cb *Codebook) Centroid(j, c int) []float32 {
	lo, hi := cb.starts[j], cb.starts[j+1]
	sub := hi - lo
	base := Ks*lo + c*sub
	return cb.cents[base : base+sub]
}

// EncodeVec writes v's M-byte code into dst (len >= M): for each
// subspace, the index of the nearest centroid under squared L2.
func (cb *Codebook) EncodeVec(v []float32, dst []byte) {
	if len(v) != cb.dim {
		panic("pq: dimension mismatch")
	}
	for j := 0; j < cb.m; j++ {
		lo, hi := cb.starts[j], cb.starts[j+1]
		c, _ := nearestCentroid(cb.cents[Ks*lo:Ks*hi], hi-lo, v[lo:hi])
		dst[j] = byte(c)
	}
}

// Encode codes every row of the flattened database, returning n*M
// row-major code bytes.
func (cb *Codebook) Encode(data []float32) []byte {
	n := len(data) / cb.dim
	codes := make([]byte, n*cb.m)
	for i := 0; i < n; i++ {
		cb.EncodeVec(data[i*cb.dim:(i+1)*cb.dim], codes[i*cb.m:(i+1)*cb.m])
	}
	return codes
}

// Decode reconstructs the centroid approximation of an M-byte code
// into dst (len >= Dim), returning dst.
func (cb *Codebook) Decode(code []byte, dst []float32) []float32 {
	for j := 0; j < cb.m; j++ {
		copy(dst[cb.starts[j]:cb.starts[j+1]], cb.Centroid(j, int(code[j])))
	}
	return dst
}
