package pq

import "ssam/internal/vec"

// Asymmetric distance computation. Table turns a query into an M×Ks
// lookup table of query-to-centroid partial distances; Codes stores
// the database's code bytes in cache-blocked, block-transposed form;
// Codes.Scan streams them against the table. The layout and the scan
// kernel are the two halves of the thesis's cache codesign argument:
//
//	block 0 (BlockRows rows)            block 1 ...
//	┌──────────────┬──────────────┬───┐
//	│ j=0 codes    │ j=1 codes    │...│   each column contiguous,
//	│ row 0..B-1   │ row 0..B-1   │   │   one byte per row
//	└──────────────┴──────────────┴───┘
//
// Within a block the inner loop touches one subquantizer's column and
// one 1 KiB lookup table at a time — both stay resident in L1 — and
// the loop body compiles to load/add with no bounds checks: the table
// is viewed as a *[Ks]float32 so the byte index needs no check, and
// the column is re-sliced to the accumulator's length so the compiler
// proves the row index in range.

// BlockRows is the cache-block height: per inner loop the kernel
// touches BlockRows code bytes and BlockRows float32 accumulators
// (~1.25 KiB) against one 1 KiB table slice, comfortably inside L1.
const BlockRows = 256

// Table fills dst (len >= M*Ks, allocated when nil) with the ADC
// lookup table for q: dst[j*Ks+c] is the partial distance between q's
// j-th subvector and centroid c of subquantizer j. Supported metrics
// are the additive ones — Euclidean (squared L2) and Manhattan (L1);
// cosine callers normalize vectors at encode time and query with
// Euclidean tables (for unit vectors ||a-b||² = 2·(1-cos)).
func (cb *Codebook) Table(metric vec.Metric, q []float32, dst []float32) []float32 {
	if len(q) != cb.dim {
		panic("pq: dimension mismatch")
	}
	if dst == nil {
		dst = make([]float32, cb.m*Ks)
	}
	for j := 0; j < cb.m; j++ {
		lo, hi := cb.starts[j], cb.starts[j+1]
		sub := hi - lo
		qs := q[lo:hi]
		cents := cb.cents[Ks*lo : Ks*hi]
		out := dst[j*Ks : (j+1)*Ks]
		switch metric {
		case vec.Euclidean:
			for c := 0; c < Ks; c++ {
				cent := cents[c*sub : (c+1)*sub]
				var acc float64
				for d := range cent {
					diff := float64(qs[d]) - float64(cent[d])
					acc += diff * diff
				}
				out[c] = float32(acc)
			}
		case vec.Manhattan:
			for c := 0; c < Ks; c++ {
				cent := cents[c*sub : (c+1)*sub]
				var acc float64
				for d := range cent {
					diff := float64(qs[d]) - float64(cent[d])
					if diff < 0 {
						diff = -diff
					}
					acc += diff
				}
				out[c] = float32(acc)
			}
		default:
			panic("pq: no ADC table for metric " + metric.String())
		}
	}
	return dst
}

// Codes is a code database in the blocked layout above: rows are
// grouped into blocks of BlockRows, and within a block subquantizer
// j's bytes are stored column-contiguous. The final partial block uses
// its own row count as the column stride, so the buffer is exactly n*M
// bytes with no padding.
type Codes struct {
	m, n int
	buf  []byte
}

// Pack converts n*M row-major code bytes (as produced by Encode) into
// the blocked layout.
func Pack(codes []byte, m int) *Codes {
	if m <= 0 || len(codes)%m != 0 {
		panic("pq: code length not a multiple of m")
	}
	n := len(codes) / m
	buf := make([]byte, len(codes))
	for lo := 0; lo < n; lo += BlockRows {
		rows := minInt(BlockRows, n-lo)
		base := lo * m
		for j := 0; j < m; j++ {
			col := buf[base+j*rows : base+(j+1)*rows]
			for r := range col {
				col[r] = codes[(lo+r)*m+j]
			}
		}
	}
	return &Codes{m: m, n: n, buf: buf}
}

// N returns the row count.
func (c *Codes) N() int { return c.n }

// M returns the code width in bytes.
func (c *Codes) M() int { return c.m }

// Bytes returns the total size of the packed code buffer.
func (c *Codes) Bytes() int { return len(c.buf) }

// Row gathers row i's M code bytes out of the blocked layout into dst
// (len >= M), returning dst. It is the layout's inverse, used by tests
// and by exact re-rank debugging; the hot path never un-transposes.
func (c *Codes) Row(i int, dst []byte) []byte {
	blo := i - i%BlockRows
	rows := minInt(BlockRows, c.n-blo)
	base := blo * c.m
	for j := 0; j < c.m; j++ {
		dst[j] = c.buf[base+j*rows+(i-blo)]
	}
	return dst[:c.m]
}

// Scan computes ADC distances for rows [lo, hi) against the lookup
// table lut (len >= M*Ks) and hands them to fn in block-sized runs:
// fn(base, dists) covers rows base..base+len(dists)-1. Distances are
// float32 sums of table entries in ascending subquantizer order, so a
// row's distance is independent of how [lo, hi) partitions the
// database — the property vault-parallel scans rely on for bit-exact
// merges. The dists slice is reused across calls; fn must not retain
// it.
func (c *Codes) Scan(lut []float32, lo, hi int, fn func(base int, dists []float32)) {
	if len(lut) < c.m*Ks {
		panic("pq: lookup table too short")
	}
	if lo < 0 || hi > c.n || lo > hi {
		panic("pq: scan range out of bounds")
	}
	var accBuf [BlockRows]float32
	for lo < hi {
		blo := lo - lo%BlockRows
		rows := minInt(BlockRows, c.n-blo)
		cLo := lo - blo
		cHi := minInt(hi-blo, rows)
		acc := accBuf[:cHi-cLo]
		base := blo * c.m
		lut0 := (*[Ks]float32)(lut)
		col := c.buf[base+cLo : base+cHi]
		col = col[:len(acc)]
		for r := range acc {
			acc[r] = lut0[col[r]]
		}
		for j := 1; j < c.m; j++ {
			lutj := (*[Ks]float32)(lut[j*Ks:])
			col := c.buf[base+j*rows+cLo : base+j*rows+cHi]
			col = col[:len(acc)]
			for r := range acc {
				acc[r] += lutj[col[r]]
			}
		}
		fn(lo, acc)
		lo = blo + cHi
	}
}

// ADC computes one code's distance against a lookup table exactly the
// way Scan does — float32 accumulation in subquantizer order — so
// tests can pin the blocked kernel against this reference.
func ADC(lut []float32, code []byte) float32 {
	acc := lut[code[0]]
	for j := 1; j < len(code); j++ {
		acc += lut[j*Ks+int(code[j])]
	}
	return acc
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
