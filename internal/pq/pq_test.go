package pq

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"ssam/internal/vec"
)

func genData(seed int64, n, dim int) []float32 {
	rng := rand.New(rand.NewSource(seed))
	data := make([]float32, n*dim)
	for i := range data {
		data[i] = float32(rng.NormFloat64())
	}
	return data
}

func TestSubspaceStarts(t *testing.T) {
	cases := []struct {
		dim, m int
		want   []int
	}{
		{8, 4, []int{0, 2, 4, 6, 8}},
		{10, 4, []int{0, 3, 6, 8, 10}}, // first dim%m subspaces one wider
		{5, 5, []int{0, 1, 2, 3, 4, 5}},
		{7, 1, []int{0, 7}},
	}
	for _, c := range cases {
		got := subspaceStarts(c.dim, c.m)
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("subspaceStarts(%d, %d) = %v, want %v", c.dim, c.m, got, c.want)
		}
	}
}

func TestTrainDeterministic(t *testing.T) {
	data := genData(1, 900, 16)
	p := Params{M: 4, Sample: 512, Iterations: 6, Seed: 42}
	a, err := Train(data, 16, p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Train(data, 16, p)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same data and params produced different codebooks")
	}
	ca, cbb := a.Encode(data), b.Encode(data)
	if !reflect.DeepEqual(ca, cbb) {
		t.Fatal("same codebooks produced different codes")
	}
	// A different seed should (overwhelmingly) produce a different book.
	p.Seed = 43
	c, err := Train(data, 16, p)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a.cents, c.cents) {
		t.Fatal("different seeds produced identical centroids")
	}
}

func TestTrainErrors(t *testing.T) {
	data := genData(2, 10, 4)
	cases := []struct {
		name string
		data []float32
		dim  int
		p    Params
	}{
		{"bad dim", data, 3, Params{}},
		{"zero dim", data, 0, Params{}},
		{"empty", nil, 4, Params{}},
		{"M too large", data, 4, Params{M: 5}},
		{"M negative", data, 4, Params{M: -1}},
		{"negative sample", data, 4, Params{M: 2, Sample: -1}},
		{"negative iterations", data, 4, Params{M: 2, Iterations: -1}},
	}
	for _, c := range cases {
		if _, err := Train(c.data, c.dim, c.p); err == nil {
			t.Errorf("%s: Train accepted invalid input", c.name)
		}
	}
}

func TestDefaults(t *testing.T) {
	p := Params{}.withDefaults()
	if p.M != DefaultM || p.Sample != DefaultSample || p.Iterations != DefaultIterations {
		t.Fatalf("withDefaults = %+v", p)
	}
	data := genData(3, 50, 8)
	cb, err := Train(data, 8, Params{})
	if err != nil {
		t.Fatal(err)
	}
	if cb.M() != DefaultM || cb.Dim() != 8 {
		t.Fatalf("M=%d Dim=%d", cb.M(), cb.Dim())
	}
	total := 0
	for j := 0; j < cb.M(); j++ {
		total += cb.SubDim(j)
	}
	if total != 8 {
		t.Fatalf("subspace widths sum to %d, want 8", total)
	}
}

// With n <= Ks every training point gets its own centroid, so
// quantization is lossless: codes decode back to the original rows
// bit-exactly, and encode maps each row to a centroid equal to it.
func TestLosslessWhenFewRows(t *testing.T) {
	const n, dim = 200, 12
	data := genData(4, n, dim)
	cb, err := Train(data, dim, Params{M: 3, Sample: n, Iterations: 4, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	codes := cb.Encode(data)
	dst := make([]float32, dim)
	for i := 0; i < n; i++ {
		got := cb.Decode(codes[i*cb.M():(i+1)*cb.M()], dst)
		want := data[i*dim : (i+1)*dim]
		for d := range want {
			if got[d] != want[d] {
				t.Fatalf("row %d dim %d: decoded %v, want %v", i, d, got[d], want[d])
			}
		}
	}
}

// EncodeVec must pick the argmin centroid per subspace; pin it against
// a brute-force scan through Centroid views.
func TestEncodePicksNearestCentroid(t *testing.T) {
	data := genData(5, 600, 10)
	cb, err := Train(data, 10, Params{M: 4, Sample: 300, Iterations: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	code := make([]byte, cb.M())
	for i := 0; i < 50; i++ {
		v := data[i*10 : (i+1)*10]
		cb.EncodeVec(v, code)
		for j := 0; j < cb.M(); j++ {
			lo, hi := cb.starts[j], cb.starts[j+1]
			best, bestD := 0, math.Inf(1)
			for c := 0; c < Ks; c++ {
				d := vec.SquaredL2(v[lo:hi], cb.Centroid(j, c))
				if d < bestD {
					best, bestD = c, d
				}
			}
			if int(code[j]) != best {
				got := vec.SquaredL2(v[lo:hi], cb.Centroid(j, int(code[j])))
				if got != bestD {
					t.Fatalf("row %d sub %d: encoded %d (d=%v), nearest %d (d=%v)",
						i, j, code[j], got, best, bestD)
				}
			}
		}
	}
}

func TestTableMatchesBruteForce(t *testing.T) {
	data := genData(6, 400, 9) // 9 dims, M=4 → uneven widths 3,2,2,2
	cb, err := Train(data, 9, Params{M: 4, Sample: 256, Iterations: 4, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	q := data[:9]
	for _, m := range []vec.Metric{vec.Euclidean, vec.Manhattan} {
		lut := cb.Table(m, q, nil)
		if len(lut) != cb.M()*Ks {
			t.Fatalf("table length %d", len(lut))
		}
		for j := 0; j < cb.M(); j++ {
			lo, hi := cb.starts[j], cb.starts[j+1]
			for c := 0; c < Ks; c++ {
				want := float32(vec.Distance(m, q[lo:hi], cb.Centroid(j, c)))
				if lut[j*Ks+c] != want {
					t.Fatalf("%v table[%d][%d] = %v, want %v", m, j, c, lut[j*Ks+c], want)
				}
			}
		}
	}
	// Reusing a caller-provided buffer must return the same table.
	buf := make([]float32, cb.M()*Ks)
	got := cb.Table(vec.Euclidean, q, buf)
	want := cb.Table(vec.Euclidean, q, nil)
	if !reflect.DeepEqual(got, want) {
		t.Fatal("caller-provided buffer produced a different table")
	}
}

func TestTableUnsupportedMetricPanics(t *testing.T) {
	data := genData(7, 300, 8)
	cb, err := Train(data, 8, Params{M: 2, Sample: 128, Iterations: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Table accepted cosine")
		}
	}()
	cb.Table(vec.Cosine, data[:8], nil)
}

func TestTableDimMismatchPanics(t *testing.T) {
	data := genData(7, 300, 8)
	cb, err := Train(data, 8, Params{M: 2, Sample: 128, Iterations: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Table accepted a short query")
		}
	}()
	cb.Table(vec.Euclidean, data[:4], nil)
}

// When quantization is lossless (n <= Ks), the ADC distance equals the
// exact distance up to float32 rounding of the partial sums.
func TestADCMatchesExactWhenLossless(t *testing.T) {
	const n, dim = 150, 8
	data := genData(8, n, dim)
	cb, err := Train(data, dim, Params{M: 4, Sample: n, Iterations: 4})
	if err != nil {
		t.Fatal(err)
	}
	codes := cb.Encode(data)
	q := genData(9, 1, dim)
	lut := cb.Table(vec.Euclidean, q, nil)
	for i := 0; i < n; i++ {
		adc := float64(ADC(lut, codes[i*cb.M():(i+1)*cb.M()]))
		exact := vec.SquaredL2(q, data[i*dim:(i+1)*dim])
		if diff := math.Abs(adc - exact); diff > 1e-4*(1+exact) {
			t.Fatalf("row %d: ADC %v vs exact %v", i, adc, exact)
		}
	}
}

func TestPackRowRoundTrip(t *testing.T) {
	for _, n := range []int{1, 5, 255, 256, 257, 512, 1000} {
		const m = 3
		codes := make([]byte, n*m)
		rng := rand.New(rand.NewSource(int64(n)))
		for i := range codes {
			codes[i] = byte(rng.Intn(256))
		}
		c := Pack(codes, m)
		if c.N() != n || c.M() != m || c.Bytes() != n*m {
			t.Fatalf("n=%d: N=%d M=%d Bytes=%d", n, c.N(), c.M(), c.Bytes())
		}
		dst := make([]byte, m)
		for i := 0; i < n; i++ {
			got := c.Row(i, dst)
			for j := 0; j < m; j++ {
				if got[j] != codes[i*m+j] {
					t.Fatalf("n=%d row %d byte %d: %d != %d", n, i, j, got[j], codes[i*m+j])
				}
			}
		}
	}
}

func TestPackBadInputPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Pack accepted a ragged code slice")
		}
	}()
	Pack(make([]byte, 7), 2)
}

// Scan must equal the per-row ADC reference on every sub-range,
// including ranges that start and end mid-block — the partition
// independence the vault merge relies on.
func TestScanMatchesADCOnAnyRange(t *testing.T) {
	const n, dim = 1000, 8
	data := genData(10, n, dim)
	cb, err := Train(data, dim, Params{M: 4, Sample: 512, Iterations: 4})
	if err != nil {
		t.Fatal(err)
	}
	raw := cb.Encode(data)
	c := Pack(raw, cb.M())
	q := genData(11, 1, dim)
	lut := cb.Table(vec.Euclidean, q, nil)

	want := make([]float32, n)
	for i := 0; i < n; i++ {
		want[i] = ADC(lut, raw[i*cb.M():(i+1)*cb.M()])
	}
	ranges := [][2]int{{0, n}, {0, 1}, {0, 0}, {999, 1000}, {100, 300}, {250, 270}, {255, 257}, {511, 513}, {3, 998}}
	for _, r := range ranges {
		seen := r[0]
		c.Scan(lut, r[0], r[1], func(base int, dists []float32) {
			if base != seen {
				t.Fatalf("range %v: got base %d, want %d", r, base, seen)
			}
			for i, d := range dists {
				if d != want[base+i] {
					t.Fatalf("range %v row %d: scan %v, want %v", r, base+i, d, want[base+i])
				}
			}
			seen = base + len(dists)
		})
		if seen != r[1] {
			t.Fatalf("range %v: scan stopped at %d", r, seen)
		}
	}
}

func TestScanBadInputPanics(t *testing.T) {
	c := Pack(make([]byte, 10*2), 2)
	lut := make([]float32, 2*Ks)
	for _, fn := range []func(){
		func() { c.Scan(lut[:Ks], 0, 10, func(int, []float32) {}) },
		func() { c.Scan(lut, -1, 10, func(int, []float32) {}) },
		func() { c.Scan(lut, 0, 11, func(int, []float32) {}) },
		func() { c.Scan(lut, 5, 4, func(int, []float32) {}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("Scan accepted invalid input")
				}
			}()
			fn()
		}()
	}
}

func TestEncodeVecDimMismatchPanics(t *testing.T) {
	data := genData(12, 100, 8)
	cb, err := Train(data, 8, Params{M: 2, Sample: 64, Iterations: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("EncodeVec accepted a short vector")
		}
	}()
	cb.EncodeVec(data[:4], make([]byte, 2))
}

// Degenerate data: all rows identical leaves 255 of 256 clusters empty
// every iteration, exercising the deterministic reseed path; training
// must still terminate and encode losslessly.
func TestAllEqualRows(t *testing.T) {
	const n, dim = 500, 6
	data := make([]float32, n*dim)
	for i := range data {
		data[i] = 3.25
	}
	cb, err := Train(data, dim, Params{M: 2, Sample: 256, Iterations: 3})
	if err != nil {
		t.Fatal(err)
	}
	codes := cb.Encode(data)
	dst := make([]float32, dim)
	got := cb.Decode(codes[:cb.M()], dst)
	for d := range got {
		if got[d] != 3.25 {
			t.Fatalf("decode %v", got)
		}
	}
	// All rows must share one code (ties go to the lowest index).
	for i := 1; i < n; i++ {
		for j := 0; j < cb.M(); j++ {
			if codes[i*cb.M()+j] != codes[j] {
				t.Fatalf("row %d code differs: %v vs %v", i, codes[i*cb.M():(i+1)*cb.M()], codes[:cb.M()])
			}
		}
	}
}

// Subsampled training (Sample < n) must stay deterministic and produce
// a usable codebook.
func TestSubsampledTraining(t *testing.T) {
	data := genData(13, 5000, 8)
	p := Params{M: 4, Sample: 300, Iterations: 3, Seed: 5}
	a, err := Train(data, 8, p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Train(data, 8, p)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("subsampled training not deterministic")
	}
}
