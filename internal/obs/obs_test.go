package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"math"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilSafety(t *testing.T) {
	// The entire tracing API must be a no-op on nil receivers: that is
	// the disabled-by-default fast path.
	var tracer *Tracer
	tr := tracer.Trace("search", true)
	if tr != nil {
		t.Fatalf("nil tracer sampled a trace")
	}
	sp := tr.Root().Start("admission", Tag{"k", 5})
	sp.SetTag("x", 1)
	sp.End()
	child := sp.Start("inner")
	child.End()
	if got := tracer.Finish(tr); got != nil {
		t.Fatalf("nil finish = %v", got)
	}
	if got := tracer.Snapshot(); got != nil {
		t.Fatalf("nil snapshot = %v", got)
	}
}

func TestSpanTree(t *testing.T) {
	tracer := NewTracer(0, 8)
	tr := tracer.Trace("search", true, Tag{"region", "g"})
	if tr == nil {
		t.Fatal("forced trace not sampled")
	}
	a := tr.Root().Start("admission")
	a.End()
	b := tr.Root().Start("batch")
	q := b.Start("queue")
	q.End()
	e := b.Start("exec", Tag{"size", 3})
	e.End()
	b.End()
	leak := tr.Root().Start("straggler") // never ended

	data := tracer.Finish(tr)
	if data == nil || data.Root == nil {
		t.Fatal("finish returned no data")
	}
	if data.Name != "search" || data.Root.Tags["region"] != "g" {
		t.Fatalf("root metadata wrong: %+v", data)
	}
	if len(data.Root.Children) != 3 {
		t.Fatalf("root children = %d, want 3", len(data.Root.Children))
	}
	bd := data.Root.Find("batch")
	if bd == nil || len(bd.Children) != 2 {
		t.Fatalf("batch span missing children: %+v", bd)
	}
	if got := bd.Find("exec").Tags["size"]; got != 3 {
		t.Fatalf("exec size tag = %v", got)
	}
	// Sequential siblings must not overlap.
	ad, qd := data.Root.Find("admission"), bd.Find("queue")
	if ad.StartUs+ad.DurUs > bd.StartUs {
		t.Fatalf("admission [%v+%v] overlaps batch start %v", ad.StartUs, ad.DurUs, bd.StartUs)
	}
	if qd.StartUs+qd.DurUs > bd.Find("exec").StartUs {
		t.Fatal("queue overlaps exec")
	}
	// The straggler is closed at the root's end.
	sd := data.Root.Find("straggler")
	if sd.DurUs < 0 || sd.StartUs+sd.DurUs > data.DurUs+1 {
		t.Fatalf("straggler not clamped to trace end: %+v vs %v", sd, data.DurUs)
	}
	// Ending it late must not panic or corrupt anything.
	leak.End()

	if got := len(data.Root.FindAll("admission")); got != 1 {
		t.Fatalf("FindAll admission = %d", got)
	}
	// The whole tree must be JSON-marshalable.
	if _, err := json.Marshal(data); err != nil {
		t.Fatalf("marshal: %v", err)
	}
}

func TestHeadSampling(t *testing.T) {
	tracer := NewTracer(4, 8)
	sampled := 0
	for i := 0; i < 40; i++ {
		if tr := tracer.Trace("q", false); tr != nil {
			sampled++
			tracer.Finish(tr)
		}
	}
	if sampled != 10 {
		t.Fatalf("1-in-4 sampling over 40: got %d, want 10", sampled)
	}
	// Ambient sampling off: only forced traces sample.
	off := NewTracer(0, 8)
	if off.Trace("q", false) != nil {
		t.Fatal("disabled tracer sampled")
	}
	if off.Trace("q", true) == nil {
		t.Fatal("forced trace not sampled")
	}
}

func TestRingBoundedNewestFirst(t *testing.T) {
	tracer := NewTracer(0, 3)
	for i := 0; i < 5; i++ {
		tr := tracer.Trace(fmt.Sprintf("t%d", i), true)
		tracer.Finish(tr)
	}
	got := tracer.Snapshot()
	if len(got) != 3 {
		t.Fatalf("ring kept %d, want 3", len(got))
	}
	for i, want := range []string{"t4", "t3", "t2"} {
		if got[i].Name != want {
			t.Fatalf("snapshot[%d] = %s, want %s", i, got[i].Name, want)
		}
	}
}

func TestConcurrentSpans(t *testing.T) {
	tracer := NewTracer(0, 4)
	tr := tracer.Trace("fanout", true)
	parent := tr.Root().Start("fanout")
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sp := parent.Start("shard", Tag{"shard", i})
			sp.SetTag("attempt", 0)
			sp.End()
		}(i)
	}
	wg.Wait()
	parent.End()
	data := tracer.Finish(tr)
	if got := len(data.Root.FindAll("shard")); got != 16 {
		t.Fatalf("shard spans = %d, want 16", got)
	}
}

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("ssam_q_total", "queries", Labels{"region": "g"})
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d", c.Value())
	}
	g := r.Gauge("ssam_depth", "queue depth", nil)
	g.Set(2.5)
	if g.Value() != 2.5 {
		t.Fatalf("gauge = %v", g.Value())
	}
	r.CounterFunc("ssam_rej_total", "rejected", nil, func() uint64 { return 7 })
	r.GaugeFunc("ssam_up", "uptime", nil, func() float64 { return 1 })

	var b strings.Builder
	r.WritePrometheus(&b)
	out := b.String()
	for _, want := range []string{
		"# TYPE ssam_q_total counter",
		`ssam_q_total{region="g"} 5`,
		"ssam_depth 2.5",
		"ssam_rej_total 7",
		"ssam_up 1",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestHistogram(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("ssam_lat_seconds", "latency", Labels{"region": "g"}, []float64{0.001, 0.01, 0.1})
	for _, v := range []float64{0.0005, 0.001, 0.005, 0.05, 0.5} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d", h.Count())
	}
	if math.Abs(h.Sum()-0.5565) > 1e-12 {
		t.Fatalf("sum = %v", h.Sum())
	}
	// le=0.001 counts v <= 0.001 (both 0.0005 and 0.001).
	if got := h.BucketCounts(); got[0] != 2 || got[1] != 1 || got[2] != 1 || got[3] != 1 {
		t.Fatalf("buckets = %v", got)
	}
	var b strings.Builder
	r.WritePrometheus(&b)
	out := b.String()
	for _, want := range []string{
		`ssam_lat_seconds_bucket{region="g",le="0.001"} 2`,
		`ssam_lat_seconds_bucket{region="g",le="0.01"} 3`,
		`ssam_lat_seconds_bucket{region="g",le="0.1"} 4`,
		`ssam_lat_seconds_bucket{region="g",le="+Inf"} 5`,
		`ssam_lat_seconds_count{region="g"} 5`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestUnregister(t *testing.T) {
	r := NewRegistry()
	r.Counter("ssam_q_total", "q", Labels{"region": "a"})
	keep := r.Counter("ssam_q_total", "q", Labels{"region": "b"})
	keep.Inc()
	r.Histogram("ssam_lat", "l", Labels{"region": "a"}, []float64{1})
	r.Unregister(Labels{"region": "a"})
	var b strings.Builder
	r.WritePrometheus(&b)
	out := b.String()
	if strings.Contains(out, `region="a"`) {
		t.Fatalf("region a survived unregister:\n%s", out)
	}
	if !strings.Contains(out, `ssam_q_total{region="b"} 1`) {
		t.Fatalf("region b lost:\n%s", out)
	}
	if strings.Contains(out, "ssam_lat") {
		t.Fatalf("empty family still rendered:\n%s", out)
	}
}

func TestDuplicatePanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x_total", "x", Labels{"a": "1"})
	for _, fn := range []func(){
		func() { r.Counter("x_total", "x", Labels{"a": "1"}) }, // dup series
		func() { r.Gauge("x_total", "x", Labels{"a": "2"}) },   // type clash
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("no panic")
				}
			}()
			fn()
		}()
	}
}

// promLine matches a sample line of the text exposition format.
var promLine = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})? (-?[0-9.eE+na]+(?:[0-9]+)?|[+-]Inf|NaN)$`)

// TestExpositionFormatParses runs a strict line-level parse over a
// fully-populated registry — the same checker the server-level test
// uses against /metrics.
func TestExpositionFormatParses(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("a_total", "with \"quotes\" and more", Labels{"r": `we"ird\`})
	c.Add(3)
	g := r.Gauge("b", "gauge", nil)
	g.Set(-1.25)
	h := r.Histogram("c_seconds", "hist", Labels{"r": "x"}, []float64{0.5, 1})
	h.Observe(0.7)
	var b strings.Builder
	r.WritePrometheus(&b)

	sc := bufio.NewScanner(strings.NewReader(b.String()))
	samples := 0
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "# HELP ") || strings.HasPrefix(line, "# TYPE ") {
			continue
		}
		m := promLine.FindStringSubmatch(line)
		if m == nil {
			t.Fatalf("unparsable sample line %q", line)
		}
		if !strings.HasSuffix(m[3], "Inf") {
			if _, err := strconv.ParseFloat(m[3], 64); err != nil {
				t.Fatalf("bad value in %q: %v", line, err)
			}
		}
		samples++
	}
	if samples < 7 { // 1 counter + 1 gauge + 3 buckets + sum + count
		t.Fatalf("only %d samples rendered:\n%s", samples, b.String())
	}
}

func TestTraceTiming(t *testing.T) {
	tracer := NewTracer(0, 2)
	tr := tracer.Trace("t", true)
	sp := tr.Root().Start("sleep")
	time.Sleep(2 * time.Millisecond)
	sp.End()
	data := tracer.Finish(tr)
	d := data.Root.Find("sleep")
	if d.DurUs < 1500 {
		t.Fatalf("sleep span %vus, want >= 1500us", d.DurUs)
	}
	if data.DurUs < d.DurUs {
		t.Fatalf("trace dur %v < child dur %v", data.DurUs, d.DurUs)
	}
}
