package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Labels identifies one series within a metric family. Rendered in
// sorted key order so series identity is stable.
type Labels map[string]string

// Counter is a monotonically increasing metric.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a settable instantaneous value.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram counts observations into cumulative-rendered buckets with
// the given upper bounds (ascending; a +Inf bucket is implicit).
type Histogram struct {
	bounds []float64
	counts []atomic.Uint64 // len(bounds)+1, last is +Inf
	sum    atomic.Uint64   // float64 bits, CAS-accumulated
	count  atomic.Uint64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		if h.sum.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// Bounds returns the bucket upper bounds (excluding +Inf).
func (h *Histogram) Bounds() []float64 { return h.bounds }

// BucketCounts returns the per-bucket (non-cumulative) counts; the
// last element is the +Inf bucket.
func (h *Histogram) BucketCounts() []uint64 {
	out := make([]uint64, len(h.counts))
	for i := range h.counts {
		out[i] = h.counts[i].Load()
	}
	return out
}

// series is one labeled instance of a metric family. Exactly one of
// the value fields is set, matching the family type.
type series struct {
	labels      string // pre-rendered {a="b",...} or ""
	counter     *Counter
	counterFunc func() uint64
	gauge       *Gauge
	gaugeFunc   func() float64
	hist        *Histogram
}

// family is one metric name: its type, help text, and series.
type family struct {
	name, help, typ string
	series          []*series
}

// Registry holds metric families and renders them in Prometheus text
// exposition format. Registration order is preserved.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	order    []string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// renderLabels formats labels sorted by key, escaping values.
func renderLabels(labels Labels) string {
	if len(labels) == 0 {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		v := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`).Replace(labels[k])
		fmt.Fprintf(&b, "%s=%q", k, v)
	}
	b.WriteByte('}')
	return b.String()
}

// add registers one series, panicking on a type clash or duplicate
// series — both are programming errors.
func (r *Registry) add(name, help, typ string, s *series) {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.families[name]
	if f == nil {
		f = &family{name: name, help: help, typ: typ}
		r.families[name] = f
		r.order = append(r.order, name)
	} else if f.typ != typ {
		panic(fmt.Sprintf("obs: metric %s registered as %s and %s", name, f.typ, typ))
	}
	for _, old := range f.series {
		if old.labels == s.labels {
			panic(fmt.Sprintf("obs: duplicate series %s%s", name, s.labels))
		}
	}
	f.series = append(f.series, s)
}

// Counter registers and returns a counter series.
func (r *Registry) Counter(name, help string, labels Labels) *Counter {
	c := &Counter{}
	r.add(name, help, "counter", &series{labels: renderLabels(labels), counter: c})
	return c
}

// CounterFunc registers a counter series backed by a callback; fn must
// be monotone non-decreasing and safe to call concurrently.
func (r *Registry) CounterFunc(name, help string, labels Labels, fn func() uint64) {
	r.add(name, help, "counter", &series{labels: renderLabels(labels), counterFunc: fn})
}

// Gauge registers and returns a settable gauge series.
func (r *Registry) Gauge(name, help string, labels Labels) *Gauge {
	g := &Gauge{}
	r.add(name, help, "gauge", &series{labels: renderLabels(labels), gauge: g})
	return g
}

// GaugeFunc registers a gauge series backed by a callback, sampled at
// render time; fn must be safe to call concurrently.
func (r *Registry) GaugeFunc(name, help string, labels Labels, fn func() float64) {
	r.add(name, help, "gauge", &series{labels: renderLabels(labels), gaugeFunc: fn})
}

// Histogram registers and returns a histogram series with the given
// ascending bucket upper bounds (a +Inf bucket is added).
func (r *Registry) Histogram(name, help string, labels Labels, bounds []float64) *Histogram {
	h := &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]atomic.Uint64, len(bounds)+1),
	}
	r.add(name, help, "histogram", &series{labels: renderLabels(labels), hist: h})
	return h
}

// Unregister removes every series whose labels include all of match
// (e.g. Labels{"region": "glove"} removes a freed region's series
// across all families). Families left empty disappear from the
// rendered output.
func (r *Registry) Unregister(match Labels) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, f := range r.families {
		kept := f.series[:0]
		for _, s := range f.series {
			if !labelsMatch(s.labels, match) {
				kept = append(kept, s)
			}
		}
		f.series = kept
	}
}

// labelsMatch reports whether a rendered label string contains every
// match pair.
func labelsMatch(rendered string, match Labels) bool {
	for k, v := range match {
		if !strings.Contains(rendered, fmt.Sprintf("%s=%q", k, v)) {
			return false
		}
	}
	return true
}

// fmtValue renders a float without exponent surprises for integers.
func fmtValue(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}

// WritePrometheus renders every family in Prometheus text exposition
// format (version 0.0.4).
func (r *Registry) WritePrometheus(w io.Writer) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, name := range r.order {
		f := r.families[name]
		if len(f.series) == 0 {
			continue
		}
		fmt.Fprintf(w, "# HELP %s %s\n", f.name, f.help)
		fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.typ)
		for _, s := range f.series {
			switch {
			case s.counter != nil:
				fmt.Fprintf(w, "%s%s %d\n", f.name, s.labels, s.counter.Value())
			case s.counterFunc != nil:
				fmt.Fprintf(w, "%s%s %d\n", f.name, s.labels, s.counterFunc())
			case s.gauge != nil:
				fmt.Fprintf(w, "%s%s %s\n", f.name, s.labels, fmtValue(s.gauge.Value()))
			case s.gaugeFunc != nil:
				fmt.Fprintf(w, "%s%s %s\n", f.name, s.labels, fmtValue(s.gaugeFunc()))
			case s.hist != nil:
				writeHistogram(w, f.name, s.labels, s.hist)
			}
		}
	}
}

// writeHistogram renders one histogram series: cumulative _bucket
// rows, then _sum and _count.
func writeHistogram(w io.Writer, name, labels string, h *Histogram) {
	// Splice le="..." into the existing label set.
	withLe := func(le string) string {
		if labels == "" {
			return fmt.Sprintf(`{le="%s"}`, le)
		}
		return fmt.Sprintf(`%s,le="%s"}`, strings.TrimSuffix(labels, "}"), le)
	}
	var cum uint64
	counts := h.BucketCounts()
	for i, bound := range h.bounds {
		cum += counts[i]
		fmt.Fprintf(w, "%s_bucket%s %d\n", name, withLe(fmtValue(bound)), cum)
	}
	cum += counts[len(counts)-1]
	fmt.Fprintf(w, "%s_bucket%s %d\n", name, withLe("+Inf"), cum)
	fmt.Fprintf(w, "%s_sum%s %g\n", name, labels, h.Sum())
	fmt.Fprintf(w, "%s_count%s %d\n", name, labels, cum)
}
