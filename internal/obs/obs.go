// Package obs is the serving stack's observability layer: a
// lightweight, allocation-conscious request tracer (span trees with
// monotonic timestamps and head-based sampling, retained in a bounded
// in-memory ring for /tracez) and a dependency-free Prometheus-text
// metrics registry (metrics.go).
//
// The tracing API is nil-safe end to end: an unsampled request carries
// a nil *Trace, every Start/End/SetTag on nil receivers is a no-op,
// and the instrumented query path pays only a nil check per hook. That
// is what keeps the disabled-by-default overhead inside the budget
// (DESIGN.md §8) — sampling off means no clock reads, no allocations,
// no locks.
package obs

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Tag is one key/value annotation on a span (shard index, attempt
// number, batch size, ...). Values must be JSON-marshalable.
type Tag struct {
	Key   string
	Value any
}

// Span is one timed stage of a traced request. Spans form a tree under
// the trace's root; children may start concurrently (per-shard fan-out
// attempts). All methods are safe on a nil receiver and safe for
// concurrent use — mutation is serialized on the owning trace.
type Span struct {
	tr       *Trace
	stage    string
	tags     []Tag
	start    time.Time
	end      time.Time
	children []*Span
}

// Trace is one request's span tree. A nil *Trace (unsampled request)
// is valid everywhere and costs nothing.
type Trace struct {
	mu    sync.Mutex
	id    uint64
	name  string
	start time.Time
	root  *Span
}

// Root returns the trace's root span (nil for a nil trace).
func (t *Trace) Root() *Span {
	if t == nil {
		return nil
	}
	return t.root
}

// Start opens a child span at the current monotonic time. It returns
// nil — still safe to use — when the receiver is nil.
func (s *Span) Start(stage string, tags ...Tag) *Span {
	if s == nil {
		return nil
	}
	child := &Span{tr: s.tr, stage: stage, tags: tags, start: time.Now()}
	s.tr.mu.Lock()
	s.children = append(s.children, child)
	s.tr.mu.Unlock()
	return child
}

// End closes the span. Ending twice keeps the first end time; ending
// after the trace was finished is harmless (the snapshot is already
// taken).
func (s *Span) End() {
	if s == nil {
		return
	}
	now := time.Now()
	s.tr.mu.Lock()
	if s.end.IsZero() {
		s.end = now
	}
	s.tr.mu.Unlock()
}

// SetTag appends a tag to the span.
func (s *Span) SetTag(key string, value any) {
	if s == nil {
		return
	}
	s.tr.mu.Lock()
	s.tags = append(s.tags, Tag{Key: key, Value: value})
	s.tr.mu.Unlock()
}

// SpanData is the exported (JSON) form of one span. Times are offsets
// from the trace start in microseconds, from the monotonic clock.
type SpanData struct {
	Stage    string         `json:"stage"`
	StartUs  float64        `json:"start_us"`
	DurUs    float64        `json:"dur_us"`
	Tags     map[string]any `json:"tags,omitempty"`
	Children []*SpanData    `json:"children,omitempty"`
}

// Find returns the first span with the given stage name in a
// depth-first walk of the subtree, or nil.
func (d *SpanData) Find(stage string) *SpanData {
	if d == nil {
		return nil
	}
	if d.Stage == stage {
		return d
	}
	for _, c := range d.Children {
		if m := c.Find(stage); m != nil {
			return m
		}
	}
	return nil
}

// FindAll returns every span with the given stage name in a
// depth-first walk of the subtree.
func (d *SpanData) FindAll(stage string) []*SpanData {
	if d == nil {
		return nil
	}
	var out []*SpanData
	if d.Stage == stage {
		out = append(out, d)
	}
	for _, c := range d.Children {
		out = append(out, c.FindAll(stage)...)
	}
	return out
}

// TraceData is the exported (JSON) form of one finished trace.
type TraceData struct {
	ID    string    `json:"id"`
	Name  string    `json:"name"`
	Start time.Time `json:"start"`
	DurUs float64   `json:"dur_us"`
	Root  *SpanData `json:"root"`
}

// Tracer hands out sampled traces and retains finished ones in a
// bounded ring. A nil *Tracer never samples.
type Tracer struct {
	every int64 // ambient sampling: 1 in every (0 = off)
	seq   atomic.Uint64
	ids   atomic.Uint64

	mu   sync.Mutex
	ring []*TraceData // bounded, oldest overwritten
	next int
	n    int
}

// NewTracer returns a tracer that ambient-samples one request in
// every (0 disables ambient sampling; forced traces still work) and
// retains up to ringSize finished traces (default 128).
func NewTracer(every, ringSize int) *Tracer {
	if ringSize <= 0 {
		ringSize = 128
	}
	return &Tracer{every: int64(every), ring: make([]*TraceData, ringSize)}
}

// Trace starts a new trace when the request is sampled — forced, or
// selected by head-based 1-in-every counting — and returns nil
// otherwise. The returned trace's root span is already started.
func (t *Tracer) Trace(name string, force bool, tags ...Tag) *Trace {
	if t == nil {
		return nil
	}
	if !force {
		if t.every <= 0 {
			return nil
		}
		if t.seq.Add(1)%uint64(t.every) != 0 {
			return nil
		}
	}
	tr := &Trace{id: t.ids.Add(1), name: name, start: time.Now()}
	tr.root = &Span{tr: tr, stage: name, tags: tags, start: tr.start}
	return tr
}

// Finish ends the trace's root span, converts the tree to TraceData,
// stores it in the ring, and returns it. Nil-safe: a nil trace
// returns nil. Spans still open (abandoned hedges, stragglers) are
// closed at the root's end time in the snapshot.
func (t *Tracer) Finish(tr *Trace) *TraceData {
	if t == nil || tr == nil {
		return nil
	}
	tr.root.End()
	tr.mu.Lock()
	data := &TraceData{
		ID:    fmt.Sprintf("%08x", tr.id),
		Name:  tr.name,
		Start: tr.start,
		DurUs: us(tr.root.start, tr.root.end, tr.root.end),
		Root:  snapshotSpan(tr.root, tr.start, tr.root.end),
	}
	tr.mu.Unlock()

	t.mu.Lock()
	t.ring[t.next] = data
	t.next = (t.next + 1) % len(t.ring)
	if t.n < len(t.ring) {
		t.n++
	}
	t.mu.Unlock()
	return data
}

// Snapshot returns the retained traces, newest first.
func (t *Tracer) Snapshot() []*TraceData {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]*TraceData, 0, t.n)
	for i := 1; i <= t.n; i++ {
		out = append(out, t.ring[(t.next-i+len(t.ring))%len(t.ring)])
	}
	return out
}

// us returns end-start in microseconds, substituting fallback for a
// zero end (span never closed).
func us(start, end, fallback time.Time) float64 {
	if end.IsZero() {
		end = fallback
	}
	return float64(end.Sub(start)) / float64(time.Microsecond)
}

// snapshotSpan converts a span subtree to SpanData (caller holds the
// trace lock).
func snapshotSpan(s *Span, traceStart, traceEnd time.Time) *SpanData {
	d := &SpanData{
		Stage:   s.stage,
		StartUs: float64(s.start.Sub(traceStart)) / float64(time.Microsecond),
		DurUs:   us(s.start, s.end, traceEnd),
	}
	if len(s.tags) > 0 {
		d.Tags = make(map[string]any, len(s.tags))
		for _, tg := range s.tags {
			d.Tags[tg.Key] = tg.Value
		}
	}
	for _, c := range s.children {
		d.Children = append(d.Children, snapshotSpan(c, traceStart, traceEnd))
	}
	return d
}
