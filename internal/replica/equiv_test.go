package replica_test

// Equivalence property: a replica group is invisible to correctness.
// Whatever the metric, k, replica count, backend kind (region or
// sharded cluster), or which replica the router happens to pick —
// even while one replica is fault-injected dead — the answers must be
// bit-identical to a single unreplicated region over the same rows.
// The engine's total order (ascending distance, ties by ascending id)
// makes "bit-identical" well-defined.

import (
	"errors"
	"math/rand"
	"reflect"
	"testing"

	"ssam"
	"ssam/internal/cluster"
	"ssam/internal/replica"
)

// equivCorpus builds a deterministic float corpus.
func equivCorpus(rows, dims int, seed int64) []float32 {
	rng := rand.New(rand.NewSource(seed))
	data := make([]float32, rows*dims)
	for i := range data {
		data[i] = rng.Float32()
	}
	return data
}

// buildRegion loads and builds one plain region over data.
func buildRegion(t *testing.T, dims int, cfg ssam.Config, data []float32) *ssam.Region {
	t.Helper()
	r, err := ssam.New(dims, cfg)
	if err != nil {
		t.Fatalf("region: %v", err)
	}
	if err := r.LoadFloat32(data); err != nil {
		t.Fatalf("load: %v", err)
	}
	if err := r.BuildIndex(); err != nil {
		t.Fatalf("build: %v", err)
	}
	return r
}

// TestReplicatedBitIdenticalToSingle is the property pinned by the
// issue: across metrics x k, a 3-replica group answers every query
// bit-identically to the single-replica backend, with and without one
// replica killed.
func TestReplicatedBitIdenticalToSingle(t *testing.T) {
	const (
		rows     = 240
		dims     = 12
		replicas = 3
		queries  = 30
	)
	data := equivCorpus(rows, dims, 42)
	rng := rand.New(rand.NewSource(43))
	qs := make([][]float32, queries)
	for i := range qs {
		q := make([]float32, dims)
		for j := range q {
			q[j] = rng.Float32()
		}
		qs[i] = q
	}

	for _, metric := range []ssam.Metric{ssam.Euclidean, ssam.Manhattan, ssam.Cosine} {
		for _, k := range []int{1, 5, 17} {
			cfg := ssam.Config{Metric: metric}
			ref := buildRegion(t, dims, cfg, data)

			g, err := replica.NewGroup(replica.Options{Replicas: replicas, Hedge: true, Seed: 0x5eed})
			if err != nil {
				t.Fatal(err)
			}
			_, err = g.Swap(func(int) (replica.Backend, error) {
				return replica.WrapRegion(buildRegion(t, dims, cfg, data)), nil
			}, qs[:2], k)
			if err != nil {
				t.Fatalf("swap: %v", err)
			}

			check := func(phase string) {
				for qi, q := range qs {
					want, _, err := ref.SearchStatsSpan(q, k, nil)
					if err != nil {
						t.Fatalf("reference search: %v", err)
					}
					got, err := g.Search(q, k, nil)
					if err != nil {
						t.Fatalf("%s metric=%v k=%d query %d: %v", phase, metric, k, qi, err)
					}
					if got.Degraded || len(got.FailedShards) != 0 {
						t.Fatalf("%s metric=%v k=%d query %d degraded: %+v", phase, metric, k, qi, got)
					}
					if !reflect.DeepEqual(got.Results, want) {
						t.Fatalf("%s metric=%v k=%d query %d (replica %d):\n got %v\nwant %v",
							phase, metric, k, qi, got.Replica, got.Results, want)
					}
				}
				// Batches route whole to one replica; same property.
				wantBatch := make([][]ssam.Result, len(qs))
				for i, q := range qs {
					wantBatch[i], _, _ = ref.SearchStatsSpan(q, k, nil)
				}
				gotBatch, err := g.SearchBatch(qs, k, nil)
				if err != nil {
					t.Fatalf("%s batch: %v", phase, err)
				}
				if !reflect.DeepEqual(gotBatch.Results, wantBatch) {
					t.Fatalf("%s batch diverged from reference", phase)
				}
			}

			check("healthy")
			// Kill replica 0: failover must keep answers identical.
			g.SetFaultHook(func(rep, _ int) error {
				if rep == 0 {
					return errors.New("injected kill")
				}
				return nil
			})
			check("one-replica-killed")

			g.Free()
			ref.Free()
		}
	}
}

// TestReplicatedMutationsBitIdentical extends the property across
// writes: the same upsert/delete stream applied to a replica group
// and to a single region must leave searches bit-identical, no matter
// which replica answers.
func TestReplicatedMutationsBitIdentical(t *testing.T) {
	const (
		rows = 120
		dims = 8
		k    = 9
	)
	data := equivCorpus(rows, dims, 7)
	cfg := ssam.Config{}
	ref := buildRegion(t, dims, cfg, data)
	defer ref.Free()

	g, err := replica.NewGroup(replica.Options{Replicas: 3, Seed: 0xfeed})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Free()
	if _, err := g.Swap(func(int) (replica.Backend, error) {
		return replica.WrapRegion(buildRegion(t, dims, cfg, data)), nil
	}, nil, k); err != nil {
		t.Fatalf("swap: %v", err)
	}

	rng := rand.New(rand.NewSource(8))
	vec := func() []float32 {
		v := make([]float32, dims)
		for j := range v {
			v[j] = rng.Float32()
		}
		return v
	}
	// A write stream of fresh inserts, overwrites, and deletes.
	for i := 0; i < 40; i++ {
		switch i % 3 {
		case 0, 1:
			id, v := rng.Intn(rows+20), vec()
			wantSeq, err := ref.Upsert(id, v)
			if err != nil {
				t.Fatalf("reference upsert: %v", err)
			}
			gotSeq, err := g.Upsert(id, v)
			if err != nil {
				t.Fatalf("group upsert: %v", err)
			}
			if gotSeq != wantSeq {
				t.Fatalf("upsert seq %d, reference %d", gotSeq, wantSeq)
			}
		case 2:
			id := rng.Intn(rows + 20)
			wantSeq, wantHit, err := ref.Delete(id)
			if err != nil {
				t.Fatalf("reference delete: %v", err)
			}
			gotSeq, gotHit, err := g.Delete(id)
			if err != nil {
				t.Fatalf("group delete: %v", err)
			}
			if gotSeq != wantSeq || gotHit != wantHit {
				t.Fatalf("delete (%d,%v), reference (%d,%v)", gotSeq, gotHit, wantSeq, wantHit)
			}
		}
	}
	if _, err := g.CompactNow(); err != nil {
		t.Fatalf("compact: %v", err)
	}
	if _, err := ref.CompactNow(); err != nil {
		t.Fatalf("reference compact: %v", err)
	}

	for i := 0; i < 25; i++ {
		q := vec()
		want, _, err := ref.SearchStatsSpan(q, k, nil)
		if err != nil {
			t.Fatalf("reference search: %v", err)
		}
		got, err := g.Search(q, k, nil)
		if err != nil {
			t.Fatalf("group search: %v", err)
		}
		if !reflect.DeepEqual(got.Results, want) {
			t.Fatalf("post-mutation query %d diverged (replica %d):\n got %v\nwant %v",
				i, got.Replica, got.Results, want)
		}
	}
	if g.Len() != ref.Len() {
		t.Fatalf("group len %d, reference %d", g.Len(), ref.Len())
	}
}

// TestClusterBackendEquivalence covers the replicas-of-shards combo:
// each replica is itself a scatter-gather cluster, answers stay
// bit-identical to a plain region, and the immutable-backend contract
// turns writes into ssam.ErrImmutableEngine.
func TestClusterBackendEquivalence(t *testing.T) {
	const (
		rows   = 180
		dims   = 10
		shards = 3
		k      = 7
	)
	data := equivCorpus(rows, dims, 21)
	ref := buildRegion(t, dims, ssam.Config{}, data)
	defer ref.Free()

	g, err := replica.NewGroup(replica.Options{Replicas: 2, Seed: 0xcafe})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Free()
	if _, err := g.Swap(func(int) (replica.Backend, error) {
		c, err := cluster.New(dims, ssam.Config{}, cluster.Options{Shards: shards})
		if err != nil {
			return nil, err
		}
		if err := c.LoadFloat32(data); err != nil {
			c.Free()
			return nil, err
		}
		if err := c.BuildIndex(); err != nil {
			c.Free()
			return nil, err
		}
		return replica.WrapCluster(c), nil
	}, nil, k); err != nil {
		t.Fatalf("swap: %v", err)
	}
	if g.Len() != rows {
		t.Fatalf("group len %d, want %d", g.Len(), rows)
	}

	rng := rand.New(rand.NewSource(22))
	for i := 0; i < 20; i++ {
		q := make([]float32, dims)
		for j := range q {
			q[j] = rng.Float32()
		}
		want, _, err := ref.SearchStatsSpan(q, k, nil)
		if err != nil {
			t.Fatalf("reference search: %v", err)
		}
		got, err := g.Search(q, k, nil)
		if err != nil {
			t.Fatalf("group search: %v", err)
		}
		if !reflect.DeepEqual(got.Results, want) {
			t.Fatalf("query %d diverged:\n got %v\nwant %v", i, got.Results, want)
		}
	}

	if _, err := g.Upsert(1, make([]float32, dims)); !errors.Is(err, ssam.ErrImmutableEngine) {
		t.Fatalf("upsert on sharded replicas: %v, want ErrImmutableEngine", err)
	}
	if _, _, err := g.Delete(1); !errors.Is(err, ssam.ErrImmutableEngine) {
		t.Fatalf("delete on sharded replicas: %v, want ErrImmutableEngine", err)
	}
	if _, err := g.CompactNow(); !errors.Is(err, ssam.ErrImmutableEngine) {
		t.Fatalf("compact on sharded replicas: %v, want ErrImmutableEngine", err)
	}
}
