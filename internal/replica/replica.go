// Package replica is the replication layer between the SSAM query
// server and its region/cluster backends: a Group holds N
// interchangeable replicas of one dataset — each its own ssam.Region
// or cluster.Cluster — and serves every query from exactly one of
// them, chosen by power-of-two-choices load-aware routing. This is
// the host-side analogue of NCAM's dataset replication across PIM
// stacks (arXiv:1606.03742) and the computational-storage platform's
// replication across drives (arXiv:2207.05241): sharding splits one
// copy for capacity, replication multiplies copies for throughput and
// availability.
//
// Beyond routing, the group carries the availability semantics a
// serving fleet needs:
//
//   - power-of-two-choices selection: each query picks two random
//     replicas and goes to the one with the lower load score
//     ((in-flight + 1) x EWMA latency), which provably avoids the
//     herding of pick-least-loaded while staying O(1);
//   - hedged reads: when the chosen replica has not answered within a
//     p99-derived delay (learned from recent attempt latencies and
//     clamped to a configured band), the query is issued once more to
//     a different replica and the first answer wins;
//   - transparent failover: a replica that errors is retried on a
//     replica not yet tried, so a group with at least one healthy
//     replica answers with zero degraded responses even while another
//     replica is being killed;
//   - generational zero-downtime reload: Swap builds a full new
//     replica set in the background, warms it, atomically cuts
//     traffic over, and frees the old generation only after its
//     in-flight queries drain — no query is dropped or answered
//     twice across the cutover.
//
// Mutations fan out to every replica in sequence order: the writer
// mutex picks a total order and applies it identically to each
// replica, so replicated linear regions stay writable and
// bit-identical (the group verifies the per-replica sequence numbers
// agree and surfaces divergence as an error instead of serving
// mixed answers).
package replica

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"ssam"
	"ssam/internal/cluster"
	"ssam/internal/obs"
)

// ErrNoGeneration is returned by searches and mutations before the
// first Swap has installed a replica set.
var ErrNoGeneration = errors.New("replica: no generation built (Swap first)")

// ErrDeadline marks a query that outlived Options.Deadline with no
// attempt answering.
var ErrDeadline = errors.New("replica: query deadline exceeded")

// Answer is one backend's search result, carrying through the
// degradation signals a sharded backend may report.
type Answer struct {
	Results []ssam.Result
	// Degraded and FailedShards pass through a cluster backend's
	// partial-result signals (always zero for region backends).
	Degraded     bool
	FailedShards []int
	// ShardHedges counts shard-level hedges inside a cluster backend.
	ShardHedges int
}

// BatchAnswer is Answer for a query batch.
type BatchAnswer struct {
	Results      [][]ssam.Result
	Degraded     bool
	FailedShards []int
	ShardHedges  int
}

// Backend is one replica's serving interface. Region and cluster
// adapters are provided (WrapRegion, WrapCluster); tests substitute
// fakes. Search methods must be safe for concurrent use; mutations
// are serialized by the group's writer mutex.
type Backend interface {
	Search(q []float32, k int, sp *obs.Span) (Answer, error)
	SearchBatch(qs [][]float32, k int, sp *obs.Span) (BatchAnswer, error)
	Upsert(id int, v []float32) (uint64, error)
	Delete(id int) (seq uint64, ok bool, err error)
	Compact() (ssam.CompactResult, error)
	Len() int
	Free()
}

// regionBackend adapts *ssam.Region to Backend.
type regionBackend struct{ r *ssam.Region }

// WrapRegion adapts a built region into a group backend.
func WrapRegion(r *ssam.Region) Backend { return regionBackend{r} }

func (b regionBackend) Search(q []float32, k int, sp *obs.Span) (Answer, error) {
	res, _, err := b.r.SearchStatsSpan(q, k, sp)
	return Answer{Results: res}, err
}

func (b regionBackend) SearchBatch(qs [][]float32, k int, sp *obs.Span) (BatchAnswer, error) {
	res, err := b.r.SearchBatchSpan(qs, k, sp)
	return BatchAnswer{Results: res}, err
}

func (b regionBackend) Upsert(id int, v []float32) (uint64, error) { return b.r.Upsert(id, v) }
func (b regionBackend) Delete(id int) (uint64, bool, error)        { return b.r.Delete(id) }
func (b regionBackend) Compact() (ssam.CompactResult, error)       { return b.r.CompactNow() }
func (b regionBackend) Len() int                                   { return b.r.Len() }
func (b regionBackend) Free()                                      { b.r.Free() }

// clusterBackend adapts *cluster.Cluster to Backend. Sharded
// backends are immutable (the partitioner bakes placement at load
// time), so mutations return ssam.ErrImmutableEngine.
type clusterBackend struct{ c *cluster.Cluster }

// WrapCluster adapts a built scatter-gather cluster into a group
// backend, giving replicated-and-sharded regions.
func WrapCluster(c *cluster.Cluster) Backend { return clusterBackend{c} }

func (b clusterBackend) Search(q []float32, k int, sp *obs.Span) (Answer, error) {
	resp, err := b.c.SearchTraced(q, k, sp)
	if err != nil {
		return Answer{}, err
	}
	return Answer{
		Results: resp.Results, Degraded: resp.Degraded,
		FailedShards: resp.FailedShards, ShardHedges: resp.Hedges,
	}, nil
}

func (b clusterBackend) SearchBatch(qs [][]float32, k int, sp *obs.Span) (BatchAnswer, error) {
	resp, err := b.c.SearchBatchTraced(qs, k, sp)
	if err != nil {
		return BatchAnswer{}, err
	}
	return BatchAnswer{
		Results: resp.Results, Degraded: resp.Degraded,
		FailedShards: resp.FailedShards, ShardHedges: resp.Hedges,
	}, nil
}

func (b clusterBackend) Upsert(int, []float32) (uint64, error) {
	return 0, fmt.Errorf("replica: sharded backend: %w", ssam.ErrImmutableEngine)
}

func (b clusterBackend) Delete(int) (uint64, bool, error) {
	return 0, false, fmt.Errorf("replica: sharded backend: %w", ssam.ErrImmutableEngine)
}

func (b clusterBackend) Compact() (ssam.CompactResult, error) {
	return ssam.CompactResult{}, fmt.Errorf("replica: sharded backend: %w", ssam.ErrImmutableEngine)
}

func (b clusterBackend) Len() int { return b.c.Len() }
func (b clusterBackend) Free()    { b.c.Free() }

// Options configures a Group. Zero values select the defaults.
type Options struct {
	// Replicas is the number of interchangeable dataset copies. Must
	// be positive; 1 is a degenerate group (no redundancy, no hedging).
	Replicas int
	// Hedge enables a second attempt on a different replica once the
	// chosen one has been silent for the p99-derived hedge delay.
	Hedge bool
	// HedgeMin and HedgeMax clamp the adaptive hedge delay (defaults
	// 1ms and 100ms). Until enough latency samples accumulate the
	// delay sits at HedgeMax, so cold groups do not hedge eagerly.
	HedgeMin, HedgeMax time.Duration
	// Deadline bounds one whole query across all its attempts; 0
	// disables it.
	Deadline time.Duration
	// Seed makes routing reproducible in tests (0 seeds from entropy
	// via the default source semantics of math/rand).
	Seed int64
}

func (o *Options) fill() error {
	if o.Replicas <= 0 {
		return fmt.Errorf("replica: replicas must be positive, got %d", o.Replicas)
	}
	if o.HedgeMin <= 0 {
		o.HedgeMin = time.Millisecond
	}
	if o.HedgeMax <= 0 {
		o.HedgeMax = 100 * time.Millisecond
	}
	if o.HedgeMin > o.HedgeMax {
		return fmt.Errorf("replica: hedge min %v exceeds max %v", o.HedgeMin, o.HedgeMax)
	}
	if o.Deadline < 0 {
		return fmt.Errorf("replica: deadline must be non-negative, got %v", o.Deadline)
	}
	return nil
}

const (
	// hedgeSamples bounds the latency ring the hedge delay is derived
	// from; hedgeRecompute sets how often the p99 is re-sorted out of
	// it (every query would pay an O(n log n) sort for nothing).
	hedgeSamples     = 512
	hedgeRecompute   = 64
	hedgeMinSamples  = 16
	ewmaAlphaPercent = 30 // EWMA weight of the newest latency sample
)

// slot is one replica position's serving state. Slots are fixed for
// the group's lifetime and survive generation swaps — the replicas
// behind them are interchangeable, so load and health accounting
// belongs to the position, not the copy.
type slot struct {
	idx       int
	inFlight  atomic.Int64
	queries   atomic.Uint64 // attempts finished (errors included)
	errors    atomic.Uint64
	hedges    atomic.Uint64 // hedge attempts this slot received
	failovers atomic.Uint64 // failover attempts this slot received
	ewmaNanos atomic.Int64  // EWMA of successful attempt latency
}

// observe folds one successful attempt latency into the slot's EWMA.
func (s *slot) observe(lat time.Duration) {
	for {
		old := s.ewmaNanos.Load()
		var next int64
		if old == 0 {
			next = int64(lat)
		} else {
			next = old + (int64(lat)-old)*ewmaAlphaPercent/100
		}
		if s.ewmaNanos.CompareAndSwap(old, next) {
			return
		}
	}
}

// score is the load metric power-of-two-choices compares: expected
// queue time, (in-flight + 1) x EWMA latency. A slot that has never
// answered scores by in-flight alone (EWMA treated as one unit), so
// fresh groups still spread load.
func (s *slot) score() float64 {
	ew := float64(s.ewmaNanos.Load())
	if ew <= 0 {
		ew = 1
	}
	return float64(s.inFlight.Load()+1) * ew
}

// generation is one immutable replica set. Queries hold a reference
// for their whole lifetime (hedged stragglers included); the swapper
// drops the owner reference and waits for drained before freeing, so
// no attempt ever touches a freed backend.
type generation struct {
	id       uint64
	backends []Backend
	refs     atomic.Int64
	drained  chan struct{}
}

func newGeneration(id uint64, backends []Backend) *generation {
	g := &generation{id: id, backends: backends, drained: make(chan struct{})}
	g.refs.Store(1) // owner reference, dropped by the swapper
	return g
}

func (g *generation) unref() {
	if g.refs.Add(-1) == 0 {
		close(g.drained)
	}
}

func (g *generation) free() {
	for _, b := range g.backends {
		b.Free()
	}
}

// Group is N interchangeable replicas behind one search interface.
// Searches and mutations are safe for concurrent use; Swap and Free
// serialize with mutations on the writer mutex.
type Group struct {
	opts Options

	slots []*slot

	mu  sync.RWMutex // guards gen pointer for acquire vs swap
	gen *generation

	writerMu sync.Mutex // total order for mutations, swaps, frees
	swaps    atomic.Uint64
	freed    atomic.Bool

	// attempts tracks every launched attempt (abandoned hedges and
	// stragglers included) so Free can wait them out.
	attempts sync.WaitGroup

	// fault, when non-nil, runs before every attempt with the slot
	// index and attempt number — the fault-injection hook: return an
	// error to fail the attempt, block to simulate a straggler.
	fault atomic.Pointer[func(replica, attempt int) error]

	latMu     sync.Mutex
	lat       [hedgeSamples]int64 // nanos ring of successful attempt latencies
	latIdx    int
	latN      int
	latCount  uint64
	hedgeCach atomic.Int64 // cached p99-derived hedge delay, nanos

	rngMu sync.Mutex
	rng   *rand.Rand

	// timer is the hedge/deadline timer seam (tests substitute fake
	// channels); now is the latency clock seam.
	timer func(d time.Duration) (<-chan time.Time, func() bool)
	now   func() time.Time
}

// NewGroup returns an empty group: Options are validated and slots
// allocated, but no replica set serves until the first Swap.
func NewGroup(opts Options) (*Group, error) {
	if err := opts.fill(); err != nil {
		return nil, err
	}
	seed := opts.Seed
	if seed == 0 {
		seed = time.Now().UnixNano()
	}
	g := &Group{
		opts: opts,
		rng:  rand.New(rand.NewSource(seed)),
		timer: func(d time.Duration) (<-chan time.Time, func() bool) {
			t := time.NewTimer(d)
			return t.C, t.Stop
		},
		now: time.Now,
	}
	g.slots = make([]*slot, opts.Replicas)
	for i := range g.slots {
		g.slots[i] = &slot{idx: i}
	}
	g.hedgeCach.Store(int64(opts.HedgeMax))
	return g, nil
}

// Replicas returns the group's replica count.
func (g *Group) Replicas() int { return len(g.slots) }

// Options returns the group's configuration (after default filling).
func (g *Group) Options() Options { return g.opts }

// Gen returns the serving generation id (0 before the first Swap).
func (g *Group) Gen() uint64 {
	g.mu.RLock()
	defer g.mu.RUnlock()
	if g.gen == nil {
		return 0
	}
	return g.gen.id
}

// Len returns the row count of the serving generation (replica 0's
// view; replicas are identical by construction).
func (g *Group) Len() int {
	gen := g.acquire()
	if gen == nil {
		return 0
	}
	defer gen.unref()
	return gen.backends[0].Len()
}

// SetFaultHook installs (or, with nil, removes) the fault-injection
// hook, called before every attempt with the replica slot index and
// attempt sequence number. Returning an error fails that attempt;
// blocking simulates a straggler replica.
func (g *Group) SetFaultHook(fn func(replica, attempt int) error) {
	if fn == nil {
		g.fault.Store(nil)
		return
	}
	g.fault.Store(&fn)
}

// acquire takes a reference on the serving generation (nil before the
// first Swap or after Free). Callers must unref.
func (g *Group) acquire() *generation {
	g.mu.RLock()
	gen := g.gen
	if gen != nil {
		gen.refs.Add(1)
	}
	g.mu.RUnlock()
	return gen
}

// SwapStats reports one completed Swap.
type SwapStats struct {
	// Gen is the new serving generation id (1 for the first Swap).
	Gen uint64
	// Replicas is the replica count of the new generation.
	Replicas int
	// Build is how long constructing and warming the new replica set
	// took (traffic served the old generation throughout).
	Build time.Duration
	// Drain is how long the old generation's in-flight queries took
	// to finish after cutover (0 for the first Swap).
	Drain time.Duration
}

// Swap installs a new generation with zero downtime: build(i) is
// called once per replica slot to construct the new backends (each a
// fully loaded, built copy), each is warmed with the warm queries,
// traffic is atomically cut over, and the old generation is freed
// only after its in-flight queries — hedged stragglers included —
// drain. A build or warm error aborts the swap with the old
// generation untouched and still serving. Swap serializes with
// mutations, so no write ever splits across generations.
func (g *Group) Swap(build func(i int) (Backend, error), warm [][]float32, k int) (SwapStats, error) {
	g.writerMu.Lock()
	defer g.writerMu.Unlock()
	if g.freed.Load() {
		return SwapStats{}, ssam.ErrFreed
	}
	start := g.now()

	// Build the whole new replica set concurrently, in the background
	// of live traffic.
	backends := make([]Backend, len(g.slots))
	errs := make([]error, len(g.slots))
	var wg sync.WaitGroup
	for i := range backends {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			backends[i], errs[i] = build(i)
		}(i)
	}
	wg.Wait()
	abort := func() {
		for _, b := range backends {
			if b != nil {
				b.Free()
			}
		}
	}
	for i, err := range errs {
		if err != nil {
			abort()
			return SwapStats{}, fmt.Errorf("replica: building replica %d: %w", i, err)
		}
	}

	// Warm every new replica before it can take traffic, so the first
	// post-cutover queries do not pay first-touch costs.
	if k <= 0 {
		k = 1
	}
	for i, b := range backends {
		for _, q := range warm {
			if _, err := b.Search(q, k, nil); err != nil {
				abort()
				return SwapStats{}, fmt.Errorf("replica: warming replica %d: %w", i, err)
			}
		}
	}

	next := newGeneration(g.swaps.Add(1), backends)
	buildTime := g.now().Sub(start)

	g.mu.Lock()
	old := g.gen
	g.gen = next
	g.mu.Unlock()

	st := SwapStats{Gen: next.id, Replicas: len(backends), Build: buildTime}
	if old != nil {
		drainStart := g.now()
		old.unref()
		<-old.drained
		old.free()
		st.Drain = g.now().Sub(drainStart)
	}
	return st, nil
}

// Free tears the group down: the serving generation is detached, its
// in-flight queries drain, and the backends are freed. Subsequent
// operations return ssam.ErrFreed.
func (g *Group) Free() {
	g.writerMu.Lock()
	if g.freed.Swap(true) {
		g.writerMu.Unlock()
		return
	}
	g.mu.Lock()
	old := g.gen
	g.gen = nil
	g.mu.Unlock()
	g.writerMu.Unlock()
	if old != nil {
		old.unref()
		<-old.drained
		old.free()
	}
	g.attempts.Wait()
}

// --- routing ---

// pick selects the next attempt's slot by power-of-two-choices among
// the slots not yet tried this query: two distinct random candidates,
// the lower load score wins (ties to the lower index). With one
// candidate left it is returned directly; with none, -1.
func (g *Group) pick(tried []bool) int {
	var cands []int
	for i, t := range tried {
		if !t {
			cands = append(cands, i)
		}
	}
	switch len(cands) {
	case 0:
		return -1
	case 1:
		return cands[0]
	}
	g.rngMu.Lock()
	i := g.rng.Intn(len(cands))
	j := g.rng.Intn(len(cands) - 1)
	g.rngMu.Unlock()
	if j >= i {
		j++
	}
	a, b := g.slots[cands[i]], g.slots[cands[j]]
	sa, sb := a.score(), b.score()
	if sb < sa || (sb == sa && b.idx < a.idx) {
		return b.idx
	}
	return a.idx
}

// recordLatency feeds one successful attempt latency into the hedge
// ring, re-deriving the cached p99 delay every hedgeRecompute samples.
func (g *Group) recordLatency(lat time.Duration) {
	g.latMu.Lock()
	g.lat[g.latIdx] = int64(lat)
	g.latIdx = (g.latIdx + 1) % hedgeSamples
	if g.latN < hedgeSamples {
		g.latN++
	}
	g.latCount++
	recompute := g.latCount%hedgeRecompute == 0 || g.latN == hedgeMinSamples
	var sample []int64
	if recompute {
		sample = make([]int64, g.latN)
		copy(sample, g.lat[:g.latN])
	}
	g.latMu.Unlock()
	if !recompute {
		return
	}
	sort.Slice(sample, func(i, j int) bool { return sample[i] < sample[j] })
	p99 := sample[min(len(sample)-1, len(sample)*99/100)]
	g.hedgeCach.Store(int64(g.clampHedge(time.Duration(p99))))
}

func (g *Group) clampHedge(d time.Duration) time.Duration {
	if d < g.opts.HedgeMin {
		return g.opts.HedgeMin
	}
	if d > g.opts.HedgeMax {
		return g.opts.HedgeMax
	}
	return d
}

// HedgeDelay returns the current p99-derived hedge delay: the p99 of
// recent successful attempt latencies clamped to [HedgeMin,
// HedgeMax], or HedgeMax until hedgeMinSamples have accumulated (a
// cold group must not hedge eagerly on no evidence).
func (g *Group) HedgeDelay() time.Duration {
	g.latMu.Lock()
	n := g.latN
	g.latMu.Unlock()
	if n < hedgeMinSamples {
		return g.opts.HedgeMax
	}
	return time.Duration(g.hedgeCach.Load())
}

// routeInfo reports how one query was served.
type routeInfo struct {
	replica   int
	gen       uint64
	hedges    int
	failovers int
}

// route executes op against one replica chosen by power-of-two-
// choices, hedging to a second replica after the p99-derived delay
// and failing over to untried replicas on error. The first success
// wins; the query errors only when every replica has been tried and
// failed, or the deadline expires. sp (nil for untraced queries)
// gains a "route" child per attempt, tagged with the slot, the
// attempt number, and whether it was a hedge or failover.
func route[T any](g *Group, sp *obs.Span, op func(b Backend, asp *obs.Span) (T, error)) (T, routeInfo, error) {
	var zero T
	var info routeInfo
	if g.freed.Load() {
		return zero, info, ssam.ErrFreed
	}
	gen := g.acquire()
	if gen == nil {
		return zero, info, ErrNoGeneration
	}
	defer gen.unref()
	info.gen = gen.id

	type attemptOut struct {
		idx int
		val T
		err error
	}
	// Buffered for every possible attempt, so abandoned stragglers
	// never block on send.
	ch := make(chan attemptOut, len(g.slots))
	tried := make([]bool, len(g.slots))
	attemptSeq := 0

	launch := func(si int, kind string) {
		tried[si] = true
		s := g.slots[si]
		s.inFlight.Add(1)
		g.attempts.Add(1)
		gen.refs.Add(1) // the attempt's own reference; held past abandonment
		seq := attemptSeq
		attemptSeq++
		asp := sp.Start("route",
			obs.Tag{Key: "replica", Value: si},
			obs.Tag{Key: "attempt", Value: seq},
			obs.Tag{Key: "gen", Value: gen.id})
		if kind != "" {
			asp.SetTag(kind, true)
		}
		start := g.now()
		go func() {
			defer g.attempts.Done()
			defer gen.unref()
			var out attemptOut
			out.idx = si
			if hook := g.fault.Load(); hook != nil {
				out.err = (*hook)(si, seq)
			}
			if out.err == nil {
				out.val, out.err = op(gen.backends[si], asp)
			}
			lat := g.now().Sub(start)
			s.inFlight.Add(-1)
			s.queries.Add(1)
			if out.err != nil {
				s.errors.Add(1)
				asp.SetTag("error", out.err.Error())
			} else {
				s.observe(lat)
				g.recordLatency(lat)
			}
			asp.End()
			ch <- out
		}()
	}

	launch(g.pick(tried), "")
	outstanding := 1

	var hedgeC, deadC <-chan time.Time
	if g.opts.Hedge && len(g.slots) > 1 {
		c, stop := g.timer(g.HedgeDelay())
		defer stop()
		hedgeC = c
	}
	if g.opts.Deadline > 0 {
		c, stop := g.timer(g.opts.Deadline)
		defer stop()
		deadC = c
	}

	var lastErr error
	for {
		select {
		case out := <-ch:
			outstanding--
			if out.err == nil {
				info.replica = out.idx
				return out.val, info, nil
			}
			lastErr = out.err
			if outstanding > 0 {
				continue // a hedge is still in flight; let it win
			}
			next := g.pick(tried)
			if next < 0 {
				return zero, info, fmt.Errorf("replica: all %d replicas failed: %w", len(g.slots), lastErr)
			}
			info.failovers++
			g.slots[next].failovers.Add(1)
			launch(next, "failover")
			outstanding++
		case <-hedgeC:
			hedgeC = nil
			if next := g.pick(tried); next >= 0 {
				info.hedges++
				g.slots[next].hedges.Add(1)
				launch(next, "hedge")
				outstanding++
			}
		case <-deadC:
			return zero, info, fmt.Errorf("%w after %v (%d attempts outstanding)",
				ErrDeadline, g.opts.Deadline, outstanding)
		}
	}
}

// Response is one replicated search answer.
type Response struct {
	Answer
	// Replica is the slot that answered; Gen the generation it served
	// from.
	Replica int
	Gen     uint64
	// Hedges counts replica-level hedge attempts this query launched;
	// Failovers counts re-issues after replica errors.
	Hedges    int
	Failovers int
}

// BatchResponse is Response for a query batch (the whole batch is
// routed to one replica).
type BatchResponse struct {
	BatchAnswer
	Replica   int
	Gen       uint64
	Hedges    int
	Failovers int
}

// Search answers one query from the replica the router chooses,
// hedging and failing over per Options.
func (g *Group) Search(q []float32, k int, sp *obs.Span) (Response, error) {
	ans, info, err := route(g, sp, func(b Backend, asp *obs.Span) (Answer, error) {
		return b.Search(q, k, asp)
	})
	if err != nil {
		return Response{}, err
	}
	return Response{
		Answer: ans, Replica: info.replica, Gen: info.gen,
		Hedges: info.hedges, Failovers: info.failovers,
	}, nil
}

// SearchBatch answers a query batch from one routed replica with the
// same hedge/failover policy as Search.
func (g *Group) SearchBatch(qs [][]float32, k int, sp *obs.Span) (BatchResponse, error) {
	ans, info, err := route(g, sp, func(b Backend, asp *obs.Span) (BatchAnswer, error) {
		return b.SearchBatch(qs, k, asp)
	})
	if err != nil {
		return BatchResponse{}, err
	}
	return BatchResponse{
		BatchAnswer: ans, Replica: info.replica, Gen: info.gen,
		Hedges: info.hedges, Failovers: info.failovers,
	}, nil
}

// --- mutations: seq-ordered fan-out ---

// Upsert inserts or replaces one row on every replica, in the total
// order the writer mutex imposes, and returns the committed sequence
// number. All replicas apply the identical operation stream, so their
// sequence numbers must agree; divergence is surfaced as an error
// rather than served.
func (g *Group) Upsert(id int, v []float32) (uint64, error) {
	g.writerMu.Lock()
	defer g.writerMu.Unlock()
	if g.freed.Load() {
		return 0, ssam.ErrFreed
	}
	gen := g.acquire()
	if gen == nil {
		return 0, ErrNoGeneration
	}
	defer gen.unref()
	var seq uint64
	for i, b := range gen.backends {
		s, err := b.Upsert(id, v)
		if err != nil {
			return 0, fmt.Errorf("replica: upsert on replica %d: %w", i, err)
		}
		if i == 0 {
			seq = s
		} else if s != seq {
			return 0, fmt.Errorf("replica: seq divergence on upsert: replica %d committed %d, replica 0 committed %d", i, s, seq)
		}
	}
	return seq, nil
}

// Delete tombstones one row on every replica in writer order. The hit
// outcome and sequence number must agree across replicas.
func (g *Group) Delete(id int) (uint64, bool, error) {
	g.writerMu.Lock()
	defer g.writerMu.Unlock()
	if g.freed.Load() {
		return 0, false, ssam.ErrFreed
	}
	gen := g.acquire()
	if gen == nil {
		return 0, false, ErrNoGeneration
	}
	defer gen.unref()
	var seq uint64
	var hit bool
	for i, b := range gen.backends {
		s, h, err := b.Delete(id)
		if err != nil {
			return 0, false, fmt.Errorf("replica: delete on replica %d: %w", i, err)
		}
		if i == 0 {
			seq, hit = s, h
		} else if s != seq || h != hit {
			return 0, false, fmt.Errorf("replica: divergence on delete: replica %d reported (seq %d, hit %v), replica 0 (seq %d, hit %v)", i, s, h, seq, hit)
		}
	}
	return seq, hit, nil
}

// CompactNow runs one synchronous compaction pass on every replica
// (compaction never changes results or sequence numbers, so replicas
// stay interchangeable) and returns replica 0's result.
func (g *Group) CompactNow() (ssam.CompactResult, error) {
	g.writerMu.Lock()
	defer g.writerMu.Unlock()
	if g.freed.Load() {
		return ssam.CompactResult{}, ssam.ErrFreed
	}
	gen := g.acquire()
	if gen == nil {
		return ssam.CompactResult{}, ErrNoGeneration
	}
	defer gen.unref()
	var first ssam.CompactResult
	for i, b := range gen.backends {
		res, err := b.Compact()
		if err != nil {
			return ssam.CompactResult{}, fmt.Errorf("replica: compact on replica %d: %w", i, err)
		}
		if i == 0 {
			first = res
		}
	}
	return first, nil
}

// --- stats ---

// ReplicaStat is one slot's serving-side view.
type ReplicaStat struct {
	Replica   int
	InFlight  int
	Queries   uint64 // attempts finished (errors included)
	Errors    uint64
	Hedges    uint64 // hedge attempts received
	Failovers uint64 // failover attempts received
	// EwmaLatency is the slot's load-score latency estimate.
	EwmaLatency time.Duration
}

// Stat returns one slot's counters — the allocation-free form metric
// callbacks scrape.
func (g *Group) Stat(i int) ReplicaStat {
	s := g.slots[i]
	return ReplicaStat{
		Replica:     i,
		InFlight:    int(s.inFlight.Load()),
		Queries:     s.queries.Load(),
		Errors:      s.errors.Load(),
		Hedges:      s.hedges.Load(),
		Failovers:   s.failovers.Load(),
		EwmaLatency: time.Duration(s.ewmaNanos.Load()),
	}
}

// GroupStats is the group's serving-side view for /statsz.
type GroupStats struct {
	// Gen is the serving generation (0 before the first Swap); Swaps
	// counts generations installed over the group's lifetime.
	Gen   uint64
	Swaps uint64
	// HedgeDelay is the current p99-derived hedge delay.
	HedgeDelay time.Duration
	Replicas   []ReplicaStat
}

// Stats returns every slot's counters plus the group-level state.
func (g *Group) Stats() GroupStats {
	st := GroupStats{
		Gen:        g.Gen(),
		Swaps:      g.swaps.Load(),
		HedgeDelay: g.HedgeDelay(),
		Replicas:   make([]ReplicaStat, len(g.slots)),
	}
	for i := range g.slots {
		st.Replicas[i] = g.Stat(i)
	}
	return st
}
