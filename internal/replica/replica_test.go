package replica

// In-package unit tests for the routing core: they reach the rng,
// timer, and clock seams plus the slot internals that the external
// equivalence suite (equiv_test.go) cannot touch. Every timing-
// sensitive behaviour — hedge firing, failover sequencing, swap
// draining — is driven by injected channels, not sleeps.

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ssam"
	"ssam/internal/obs"
)

// fakeBackend is a scriptable Backend: searches answer with the
// fake's id (so tests can tell which replica served), optionally
// through a custom searchFn; mutations advance a sequence counter by
// seqStep (1 unless a test injects divergence).
type fakeBackend struct {
	id       int
	searchFn func(q []float32, k int) (Answer, error)

	freed atomic.Bool

	mu      sync.Mutex
	seq     uint64
	seqStep uint64 // 0 means 1; >1 injects seq divergence
	delMiss bool   // report Delete as a miss (hit divergence)
	upserts []int
	deletes []int
}

func (f *fakeBackend) answer() Answer {
	return Answer{Results: []ssam.Result{{ID: f.id, Dist: float64(f.id)}}}
}

func (f *fakeBackend) Search(q []float32, k int, _ *obs.Span) (Answer, error) {
	if f.searchFn != nil {
		return f.searchFn(q, k)
	}
	return f.answer(), nil
}

func (f *fakeBackend) SearchBatch(qs [][]float32, k int, _ *obs.Span) (BatchAnswer, error) {
	out := BatchAnswer{Results: make([][]ssam.Result, len(qs))}
	for i := range qs {
		a, err := f.Search(qs[i], k, nil)
		if err != nil {
			return BatchAnswer{}, err
		}
		out.Results[i] = a.Results
	}
	return out, nil
}

func (f *fakeBackend) step() uint64 {
	if f.seqStep == 0 {
		return 1
	}
	return f.seqStep
}

func (f *fakeBackend) Upsert(id int, _ []float32) (uint64, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.seq += f.step()
	f.upserts = append(f.upserts, id)
	return f.seq, nil
}

func (f *fakeBackend) Delete(id int) (uint64, bool, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.seq += f.step()
	f.deletes = append(f.deletes, id)
	return f.seq, !f.delMiss, nil
}

func (f *fakeBackend) Compact() (ssam.CompactResult, error) { return ssam.CompactResult{}, nil }
func (f *fakeBackend) Len() int                             { return 42 }
func (f *fakeBackend) Free()                                { f.freed.Store(true) }

// newFakes returns n scriptable backends with distinct ids.
func newFakes(n int) []*fakeBackend {
	out := make([]*fakeBackend, n)
	for i := range out {
		out[i] = &fakeBackend{id: i}
	}
	return out
}

// swapFakes installs the fakes as the group's serving generation.
func swapFakes(t *testing.T, g *Group, fakes []*fakeBackend) {
	t.Helper()
	_, err := g.Swap(func(i int) (Backend, error) { return fakes[i], nil }, nil, 1)
	if err != nil {
		t.Fatalf("swap: %v", err)
	}
}

// immediateHedge replaces the group's timer with one whose hedge
// channel is already hot, so the hedge path runs without waiting.
func immediateHedge(g *Group) {
	c := make(chan time.Time, 1)
	c <- time.Time{}
	g.timer = func(time.Duration) (<-chan time.Time, func() bool) {
		return c, func() bool { return true }
	}
}

func TestOptionsValidation(t *testing.T) {
	for _, o := range []Options{
		{Replicas: 0},
		{Replicas: -2},
		{Replicas: 2, HedgeMin: 50 * time.Millisecond, HedgeMax: time.Millisecond},
		{Replicas: 2, Deadline: -time.Second},
	} {
		if _, err := NewGroup(o); err == nil {
			t.Errorf("NewGroup(%+v) accepted invalid options", o)
		}
	}
	g, err := NewGroup(Options{Replicas: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Free()
	o := g.Options()
	if o.HedgeMin != time.Millisecond || o.HedgeMax != 100*time.Millisecond {
		t.Fatalf("defaults not filled: %+v", o)
	}
	if g.Replicas() != 3 {
		t.Fatalf("Replicas() = %d", g.Replicas())
	}
}

func TestLifecycleErrors(t *testing.T) {
	g, err := NewGroup(Options{Replicas: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Before the first Swap nothing serves.
	if _, err := g.Search([]float32{1}, 1, nil); !errors.Is(err, ErrNoGeneration) {
		t.Fatalf("search before swap: %v", err)
	}
	if _, err := g.Upsert(1, []float32{1}); !errors.Is(err, ErrNoGeneration) {
		t.Fatalf("upsert before swap: %v", err)
	}
	if g.Gen() != 0 || g.Len() != 0 {
		t.Fatalf("empty group: gen %d len %d", g.Gen(), g.Len())
	}

	fakes := newFakes(2)
	swapFakes(t, g, fakes)
	if g.Gen() != 1 || g.Len() != 42 {
		t.Fatalf("after swap: gen %d len %d", g.Gen(), g.Len())
	}

	g.Free()
	g.Free() // idempotent
	for _, f := range fakes {
		if !f.freed.Load() {
			t.Fatalf("replica %d not freed", f.id)
		}
	}
	if _, err := g.Search([]float32{1}, 1, nil); !errors.Is(err, ssam.ErrFreed) {
		t.Fatalf("search after free: %v", err)
	}
	if _, err := g.Upsert(1, []float32{1}); !errors.Is(err, ssam.ErrFreed) {
		t.Fatalf("upsert after free: %v", err)
	}
	if _, err := g.Swap(func(int) (Backend, error) { return nil, nil }, nil, 1); !errors.Is(err, ssam.ErrFreed) {
		t.Fatalf("swap after free: %v", err)
	}
}

// TestPickPowerOfTwoChoices pins the router's selection rule: among
// untried slots two random candidates are drawn and the lower load
// score wins, so a slot with a 1000x lower EWMA must win every draw
// it appears in (~2/3 of picks with three slots).
func TestPickPowerOfTwoChoices(t *testing.T) {
	g, err := NewGroup(Options{Replicas: 3, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Free()
	g.slots[0].ewmaNanos.Store(1_000_000)
	g.slots[1].ewmaNanos.Store(1_000)
	g.slots[2].ewmaNanos.Store(1_000_000)

	const trials = 300
	counts := make([]int, 3)
	for i := 0; i < trials; i++ {
		p := g.pick([]bool{false, false, false})
		if p < 0 || p > 2 {
			t.Fatalf("pick returned %d", p)
		}
		counts[p]++
	}
	// Slot 1 is a candidate with probability 2/3 and wins every time
	// it is; leave slack for rng variance but demand a clear majority.
	if counts[1] < trials/2 {
		t.Fatalf("fast slot picked %d/%d times, want a clear majority (counts %v)", counts[1], trials, counts)
	}
	// Equal-score candidates tie to the lower index: slot 2 only wins
	// draws it isn't in, i.e. never.
	if counts[2] != 0 {
		t.Fatalf("slot 2 picked %d times despite equal score and higher index", counts[2])
	}

	// Load steers too: pile in-flight onto slot 1 and it must stop
	// winning every draw against the idle slots.
	g.slots[1].inFlight.Add(10_000)
	won := 0
	for i := 0; i < trials; i++ {
		if g.pick([]bool{false, false, false}) == 1 {
			won++
		}
	}
	g.slots[1].inFlight.Add(-10_000)
	if won != 0 {
		t.Fatalf("overloaded slot still picked %d/%d times", won, trials)
	}

	// Tried slots are excluded; one candidate short-circuits; none = -1.
	for i := 0; i < 50; i++ {
		if p := g.pick([]bool{false, true, false}); p == 1 {
			t.Fatal("pick returned a tried slot")
		}
	}
	if p := g.pick([]bool{true, false, true}); p != 1 {
		t.Fatalf("single untried slot: pick = %d, want 1", p)
	}
	if p := g.pick([]bool{true, true, true}); p != -1 {
		t.Fatalf("all tried: pick = %d, want -1", p)
	}
}

// TestHedgeDelayBudget pins the adaptive hedge budget: HedgeMax while
// cold, the observed p99 once hedgeMinSamples latencies accumulate,
// always clamped to [HedgeMin, HedgeMax], and recomputed only on the
// hedgeRecompute cadence.
func TestHedgeDelayBudget(t *testing.T) {
	newG := func() *Group {
		g, err := NewGroup(Options{Replicas: 2, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(g.Free)
		return g
	}

	g := newG()
	if d := g.HedgeDelay(); d != g.opts.HedgeMax {
		t.Fatalf("cold group hedge delay %v, want HedgeMax %v", d, g.opts.HedgeMax)
	}
	for i := 0; i < hedgeMinSamples-1; i++ {
		g.recordLatency(5 * time.Millisecond)
	}
	if d := g.HedgeDelay(); d != g.opts.HedgeMax {
		t.Fatalf("below min samples hedge delay %v, want HedgeMax", d)
	}
	g.recordLatency(5 * time.Millisecond) // crosses hedgeMinSamples: first recompute
	if d := g.HedgeDelay(); d != 5*time.Millisecond {
		t.Fatalf("warm hedge delay %v, want 5ms p99", d)
	}
	// Off-cadence samples must not move the cached delay: the p99 sort
	// runs every hedgeRecompute samples, not per query.
	for i := 0; i < 10; i++ {
		g.recordLatency(90 * time.Millisecond)
	}
	if d := g.HedgeDelay(); d != 5*time.Millisecond {
		t.Fatalf("hedge delay recomputed off cadence: %v", d)
	}

	// Clamping: a sub-millisecond p99 pins to HedgeMin, a slow one to
	// HedgeMax.
	g = newG()
	for i := 0; i < hedgeMinSamples; i++ {
		g.recordLatency(50 * time.Microsecond)
	}
	if d := g.HedgeDelay(); d != g.opts.HedgeMin {
		t.Fatalf("fast p99 hedge delay %v, want HedgeMin %v", d, g.opts.HedgeMin)
	}
	g = newG()
	for i := 0; i < hedgeMinSamples; i++ {
		g.recordLatency(3 * time.Second)
	}
	if d := g.HedgeDelay(); d != g.opts.HedgeMax {
		t.Fatalf("slow p99 hedge delay %v, want HedgeMax %v", d, g.opts.HedgeMax)
	}
}

func TestSearchAndBatchRouting(t *testing.T) {
	g, err := NewGroup(Options{Replicas: 2, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Free()
	fakes := newFakes(2)
	swapFakes(t, g, fakes)

	resp, err := g.Search([]float32{1}, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Gen != 1 || resp.Hedges != 0 || resp.Failovers != 0 {
		t.Fatalf("response %+v", resp)
	}
	if len(resp.Results) != 1 || resp.Results[0].ID != resp.Replica {
		t.Fatalf("answer %v did not come from reported replica %d", resp.Results, resp.Replica)
	}

	br, err := g.SearchBatch([][]float32{{1}, {2}, {3}}, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(br.Results) != 3 {
		t.Fatalf("batch results %d, want 3", len(br.Results))
	}
	for _, rs := range br.Results {
		if rs[0].ID != br.Replica {
			t.Fatalf("batch split across replicas: %v served by %d", rs, br.Replica)
		}
	}

	st := g.Stats()
	if st.Gen != 1 || st.Swaps != 1 || len(st.Replicas) != 2 {
		t.Fatalf("stats %+v", st)
	}
	var queries uint64
	for _, rs := range st.Replicas {
		queries += rs.Queries
	}
	if queries != 2 {
		t.Fatalf("attempt count %d, want 2", queries)
	}
}

func TestFailoverOnError(t *testing.T) {
	g, err := NewGroup(Options{Replicas: 2, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Free()
	swapFakes(t, g, newFakes(2))
	// Bias routing so slot 0 is always the first pick, then kill it.
	g.slots[0].ewmaNanos.Store(1_000)
	g.slots[1].ewmaNanos.Store(1_000_000_000)
	injected := errors.New("injected replica fault")
	g.SetFaultHook(func(replica, _ int) error {
		if replica == 0 {
			return injected
		}
		return nil
	})

	resp, err := g.Search([]float32{1}, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Replica != 1 || resp.Failovers != 1 || resp.Hedges != 0 {
		t.Fatalf("response %+v, want failover to replica 1", resp)
	}
	if s := g.Stat(0); s.Errors != 1 {
		t.Fatalf("slot 0 stats %+v, want 1 error", s)
	}
	if s := g.Stat(1); s.Failovers != 1 {
		t.Fatalf("slot 1 stats %+v, want 1 failover received", s)
	}

	// Clearing the hook restores slot 0.
	g.SetFaultHook(nil)
	if _, err := g.Search([]float32{1}, 1, nil); err != nil {
		t.Fatalf("after heal: %v", err)
	}
}

func TestAllReplicasFailed(t *testing.T) {
	g, err := NewGroup(Options{Replicas: 3, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Free()
	swapFakes(t, g, newFakes(3))
	injected := errors.New("injected total outage")
	g.SetFaultHook(func(int, int) error { return injected })

	_, err = g.Search([]float32{1}, 1, nil)
	if !errors.Is(err, injected) {
		t.Fatalf("error %v does not wrap the replica failure", err)
	}
	var attempts uint64
	for i := 0; i < 3; i++ {
		attempts += g.Stat(i).Queries
	}
	if attempts != 3 {
		t.Fatalf("attempts %d, want every replica tried exactly once", attempts)
	}
}

// TestHedgeFiresAndWins drives the hedge path through the timer seam:
// the primary replica hangs, the injected hedge timer is already hot,
// and the hedge attempt's answer must win.
func TestHedgeFiresAndWins(t *testing.T) {
	g, err := NewGroup(Options{Replicas: 2, Hedge: true, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	release := make(chan struct{})
	fakes := newFakes(2)
	fakes[0].searchFn = func([]float32, int) (Answer, error) {
		<-release
		return fakes[0].answer(), nil
	}
	swapFakes(t, g, fakes)
	g.slots[0].ewmaNanos.Store(1_000) // slot 0 is always the primary
	g.slots[1].ewmaNanos.Store(1_000_000_000)
	immediateHedge(g)

	resp, err := g.Search([]float32{1}, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Replica != 1 || resp.Hedges != 1 || resp.Failovers != 0 {
		t.Fatalf("response %+v, want hedge answer from replica 1", resp)
	}
	if s := g.Stat(1); s.Hedges != 1 {
		t.Fatalf("slot 1 stats %+v, want 1 hedge received", s)
	}
	close(release) // let the abandoned primary straggler finish
	g.Free()       // Free waits out stragglers; must not deadlock or race a freed backend
}

// TestErrorWaitsForOutstandingHedge pins the sequencing rule: when the
// primary errors while a hedge is already in flight, the query waits
// for the hedge instead of burning a failover (which, with two
// replicas, would wrongly exhaust the group).
func TestErrorWaitsForOutstandingHedge(t *testing.T) {
	g, err := NewGroup(Options{Replicas: 2, Hedge: true, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	primaryGo := make(chan struct{})
	hedgeStarted := make(chan struct{})
	hedgeGo := make(chan struct{})
	fakes := newFakes(2)
	fakes[0].searchFn = func([]float32, int) (Answer, error) {
		<-primaryGo
		return Answer{}, errors.New("primary failed")
	}
	fakes[1].searchFn = func([]float32, int) (Answer, error) {
		close(hedgeStarted)
		<-hedgeGo
		return fakes[1].answer(), nil
	}
	swapFakes(t, g, fakes)
	g.slots[0].ewmaNanos.Store(1_000)
	g.slots[1].ewmaNanos.Store(1_000_000_000)
	immediateHedge(g)

	type result struct {
		resp Response
		err  error
	}
	done := make(chan result, 1)
	go func() {
		resp, err := g.Search([]float32{1}, 1, nil)
		done <- result{resp, err}
	}()
	<-hedgeStarted   // hedge is in flight
	close(primaryGo) // now the primary errors under an outstanding hedge
	close(hedgeGo)   // and the hedge answers
	r := <-done
	if r.err != nil {
		t.Fatalf("query failed despite a healthy hedge: %v", r.err)
	}
	if r.resp.Replica != 1 || r.resp.Hedges != 1 || r.resp.Failovers != 0 {
		t.Fatalf("response %+v, want hedge win with no failover", r.resp)
	}
	g.Free()
}

func TestDeadline(t *testing.T) {
	g, err := NewGroup(Options{Replicas: 2, Deadline: 5 * time.Millisecond, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	release := make(chan struct{})
	fakes := newFakes(2)
	for _, f := range fakes {
		f.searchFn = func([]float32, int) (Answer, error) {
			<-release
			return Answer{}, nil
		}
	}
	swapFakes(t, g, fakes)

	_, err = g.Search([]float32{1}, 1, nil)
	if !errors.Is(err, ErrDeadline) {
		t.Fatalf("error %v, want ErrDeadline", err)
	}
	close(release)
	g.Free()
}

// TestSwapDrainsOldGeneration is the zero-downtime contract: cutover
// is immediate (new queries serve the new generation while an old
// query is still in flight), Swap does not return until the old
// generation drains, the straggler still gets its old-generation
// answer, and only then are the old backends freed.
func TestSwapDrainsOldGeneration(t *testing.T) {
	g, err := NewGroup(Options{Replicas: 2, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Free()

	release := make(chan struct{})
	started := make(chan struct{}, 2)
	oldFakes := newFakes(2)
	for i := range oldFakes {
		f := oldFakes[i]
		f.searchFn = func([]float32, int) (Answer, error) {
			started <- struct{}{}
			<-release
			return f.answer(), nil
		}
	}
	swapFakes(t, g, oldFakes)

	type result struct {
		resp Response
		err  error
	}
	inFlight := make(chan result, 1)
	go func() {
		resp, err := g.Search([]float32{1}, 1, nil)
		inFlight <- result{resp, err}
	}()
	<-started // the old generation now has a live query

	newFakes := newFakes(2)
	for i := range newFakes {
		newFakes[i].id = 100 + i
	}
	swapDone := make(chan SwapStats, 1)
	go func() {
		st, err := g.Swap(func(i int) (Backend, error) { return newFakes[i], nil }, nil, 1)
		if err != nil {
			t.Errorf("swap: %v", err)
		}
		swapDone <- st
	}()

	// Cutover happens before the drain: wait for gen 2 to serve.
	deadline := time.Now().Add(5 * time.Second)
	for g.Gen() != 2 {
		if time.Now().After(deadline) {
			t.Fatal("cutover never happened")
		}
		time.Sleep(time.Millisecond)
	}
	resp, err := g.Search([]float32{2}, 1, nil)
	if err != nil {
		t.Fatalf("search during drain: %v", err)
	}
	if resp.Gen != 2 || resp.Results[0].ID < 100 {
		t.Fatalf("query during drain served gen %d result %v, want new generation", resp.Gen, resp.Results)
	}

	// Swap must still be blocked on the old query.
	select {
	case <-swapDone:
		t.Fatal("Swap returned while the old generation had a query in flight")
	case <-time.After(20 * time.Millisecond):
	}
	for _, f := range oldFakes {
		if f.freed.Load() {
			t.Fatal("old backend freed before drain")
		}
	}

	close(release)
	st := <-swapDone
	if st.Gen != 2 || st.Replicas != 2 {
		t.Fatalf("swap stats %+v", st)
	}
	r := <-inFlight
	if r.err != nil {
		t.Fatalf("in-flight query dropped across swap: %v", r.err)
	}
	if r.resp.Gen != 1 || r.resp.Results[0].ID >= 100 {
		t.Fatalf("in-flight query answered by gen %d result %v, want its own old generation", r.resp.Gen, r.resp.Results)
	}
	for _, f := range oldFakes {
		if !f.freed.Load() {
			t.Fatal("old backend not freed after drain")
		}
	}
	for _, f := range newFakes {
		if f.freed.Load() {
			t.Fatal("new backend freed by swap")
		}
	}
}

// TestSwapAbortLeavesOldServing pins that a failed build or warm
// aborts the swap with the old generation untouched and every
// half-built new backend freed.
func TestSwapAbortLeavesOldServing(t *testing.T) {
	g, err := NewGroup(Options{Replicas: 2, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Free()
	oldFakes := newFakes(2)
	swapFakes(t, g, oldFakes)

	// Build error on one slot.
	leaked := &fakeBackend{id: 7}
	_, err = g.Swap(func(i int) (Backend, error) {
		if i == 1 {
			return nil, errors.New("build exploded")
		}
		return leaked, nil
	}, nil, 1)
	if err == nil || g.Gen() != 1 {
		t.Fatalf("failed build: err %v, gen %d", err, g.Gen())
	}
	if !leaked.freed.Load() {
		t.Fatal("sibling backend leaked after build error")
	}

	// Warm error.
	warmFail := newFakes(2)
	for _, f := range warmFail {
		f.searchFn = func([]float32, int) (Answer, error) {
			return Answer{}, errors.New("warm exploded")
		}
	}
	_, err = g.Swap(func(i int) (Backend, error) { return warmFail[i], nil },
		[][]float32{{1}}, 1)
	if err == nil || g.Gen() != 1 {
		t.Fatalf("failed warm: err %v, gen %d", err, g.Gen())
	}
	for _, f := range warmFail {
		if !f.freed.Load() {
			t.Fatal("warm-failed backend leaked")
		}
	}

	// The old generation never noticed.
	if resp, err := g.Search([]float32{1}, 1, nil); err != nil || resp.Gen != 1 {
		t.Fatalf("old generation disturbed: %v %+v", err, resp)
	}
	if g.Stats().Swaps != 1 {
		t.Fatalf("aborted swaps counted: %d", g.Stats().Swaps)
	}
}

func TestMutationFanout(t *testing.T) {
	g, err := NewGroup(Options{Replicas: 3, Seed: 10})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Free()
	fakes := newFakes(3)
	swapFakes(t, g, fakes)

	seq, err := g.Upsert(7, []float32{1})
	if err != nil || seq != 1 {
		t.Fatalf("upsert: seq %d err %v", seq, err)
	}
	seq, err = g.Upsert(8, []float32{2})
	if err != nil || seq != 2 {
		t.Fatalf("second upsert: seq %d err %v", seq, err)
	}
	seq, hit, err := g.Delete(7)
	if err != nil || !hit || seq != 3 {
		t.Fatalf("delete: seq %d hit %v err %v", seq, hit, err)
	}
	if _, err := g.CompactNow(); err != nil {
		t.Fatalf("compact: %v", err)
	}
	for _, f := range fakes {
		f.mu.Lock()
		upserts, deletes := f.upserts, f.deletes
		f.mu.Unlock()
		if len(upserts) != 2 || upserts[0] != 7 || upserts[1] != 8 {
			t.Fatalf("replica %d upserts %v, want identical order [7 8]", f.id, upserts)
		}
		if len(deletes) != 1 || deletes[0] != 7 {
			t.Fatalf("replica %d deletes %v", f.id, deletes)
		}
	}
}

func TestMutationDivergence(t *testing.T) {
	g, err := NewGroup(Options{Replicas: 2, Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Free()
	fakes := newFakes(2)
	fakes[1].seqStep = 2 // replica 1 commits a different sequence number
	swapFakes(t, g, fakes)

	if _, err := g.Upsert(1, []float32{1}); err == nil {
		t.Fatal("seq divergence on upsert not surfaced")
	} else if want := "divergence"; !strings.Contains(err.Error(), want) {
		t.Fatalf("upsert error %q does not mention %q", err, want)
	}

	g2, err := NewGroup(Options{Replicas: 2, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	defer g2.Free()
	fakes2 := newFakes(2)
	fakes2[1].delMiss = true // replica 1 reports a miss where replica 0 hit
	swapFakes(t, g2, fakes2)
	if _, _, err := g2.Delete(1); err == nil {
		t.Fatal("hit divergence on delete not surfaced")
	}
}

// TestConcurrentSearchDuringSwaps is a miniature soak: queries hammer
// the group while generations are swapped underneath them; every
// query must get a valid answer from a coherent generation, never an
// error or a freed backend (the race detector guards the latter).
func TestConcurrentSearchDuringSwaps(t *testing.T) {
	g, err := NewGroup(Options{Replicas: 2, Hedge: true, Seed: 14})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Free()
	swapFakes(t, g, newFakes(2))

	stop := make(chan struct{})
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := g.Search([]float32{1}, 1, nil)
				if err != nil {
					select {
					case errs <- err:
					default:
					}
					return
				}
				if len(resp.Results) != 1 {
					select {
					case errs <- fmt.Errorf("malformed answer %+v", resp):
					default:
					}
					return
				}
			}
		}()
	}
	const swaps = 10
	for i := 0; i < swaps; i++ {
		if _, err := g.Swap(func(j int) (Backend, error) {
			return &fakeBackend{id: 10*i + j}, nil
		}, nil, 1); err != nil {
			t.Fatalf("swap %d: %v", i, err)
		}
	}
	close(stop)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Errorf("query failed during swaps: %v", err)
	}
	if got := g.Gen(); got != swaps+1 {
		t.Fatalf("gen %d after %d swaps", got, swaps+1)
	}
}
