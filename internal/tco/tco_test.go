package tco

import (
	"math"
	"testing"
)

func TestUniqueQPS(t *testing.T) {
	r := Analyze(PaperParams(6.2, 83))
	if r.UniqueQPS != 11200 {
		t.Fatalf("UniqueQPS = %v, want 11200 (56000 x 20%%)", r.UniqueQPS)
	}
}

func TestCPUFleetNearPaper(t *testing.T) {
	// With the paper's GIST-sized workload the CPU baseline serves
	// ~6.2 q/s/server, implying ~1,800 machines.
	r := Analyze(PaperParams(6.2, 83))
	if r.CPUServers < 1700 || r.CPUServers > 1900 {
		t.Fatalf("CPUServers = %d, want ~1800", r.CPUServers)
	}
}

func TestSSAMFleetMuchSmaller(t *testing.T) {
	r := Analyze(PaperParams(6.2, 83))
	if r.SSAMModules >= r.CPUServers {
		t.Fatalf("SSAM modules (%d) should undercut CPU servers (%d)", r.SSAMModules, r.CPUServers)
	}
	if r.SSAMFleetPowerW >= r.CPUFleetPowerW {
		t.Fatalf("SSAM fleet power (%v W) should undercut CPU (%v W)", r.SSAMFleetPowerW, r.CPUFleetPowerW)
	}
	// The paper's conclusion: compute energy cost drops by orders of
	// magnitude (their reported ratio is ~165x; our self-consistent
	// arithmetic gives a large double-digit factor at minimum).
	if r.CPUEnergyCost/r.SSAMEnergyCost < 10 {
		t.Fatalf("energy cost ratio = %v, want >= 10", r.CPUEnergyCost/r.SSAMEnergyCost)
	}
}

func TestEnergyCostArithmetic(t *testing.T) {
	// 1 kW for one year at $0.069/kWh = 8760 * 0.069.
	got := energyCost(1000, 1, 0.069)
	want := 8760 * 0.069
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("energyCost = %v, want %v", got, want)
	}
}

func TestSavingsAccounting(t *testing.T) {
	p := PaperParams(6.2, 83)
	r := Analyze(p)
	if math.Abs(r.EnergySavings-(r.CPUEnergyCost-r.SSAMEnergyCost)) > 1e-6 {
		t.Fatal("EnergySavings inconsistent")
	}
	p.NRECost = NRE28nm
	r = Analyze(p)
	if math.Abs(r.NetSavings-(r.EnergySavings-NRE28nm)) > 1e-6 {
		t.Fatal("NetSavings inconsistent")
	}
	if r.CostEffective != (r.NetSavings > 0) {
		t.Fatal("CostEffective inconsistent")
	}
}

func TestCapexAccounting(t *testing.T) {
	p := PaperParams(6.2, 83)
	p.CapexPerCPUServer = 4000
	p.CapexPerSSAMServer = 6000
	r := Analyze(p)
	if r.CPUCapex != float64(r.CPUServers)*4000 {
		t.Fatalf("CPUCapex = %v", r.CPUCapex)
	}
	if r.SSAMCapex != float64(r.SSAMServers)*6000 {
		t.Fatalf("SSAMCapex = %v", r.SSAMCapex)
	}
	want := r.EnergySavings + r.CPUCapex - r.SSAMCapex
	if math.Abs(r.TotalSavings-want) > 1e-6 {
		t.Fatalf("TotalSavings = %v, want %v", r.TotalSavings, want)
	}
	// Capex is where the fleet-consolidation savings dominate: the
	// capex delta must dwarf the energy delta at these prices.
	if r.CPUCapex-r.SSAMCapex < r.EnergySavings {
		t.Fatal("capex savings should dominate energy savings")
	}
}

func TestServersRoundUp(t *testing.T) {
	p := PaperParams(10000, 83)
	r := Analyze(p)
	if r.CPUServers != 2 { // 11200/10000 -> 2 servers
		t.Fatalf("CPUServers = %d, want 2", r.CPUServers)
	}
	p.SSAMQPSPerModule = 11200
	r = Analyze(p)
	if r.SSAMModules != 1 || r.SSAMServers != 1 {
		t.Fatalf("modules/servers = %d/%d, want 1/1", r.SSAMModules, r.SSAMServers)
	}
}

func TestZeroThroughputGuards(t *testing.T) {
	p := PaperParams(0, 0)
	r := Analyze(p)
	if r.CPUServers != 0 || r.SSAMModules != 0 {
		t.Fatalf("zero-throughput fleets: %d/%d", r.CPUServers, r.SSAMModules)
	}
}

func TestPaperReportedReference(t *testing.T) {
	if PaperReported.CPUServers != 1800 || PaperReported.CPUEnergyCost != 772e6 {
		t.Fatal("paper reference constants wrong")
	}
}
