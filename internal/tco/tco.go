// Package tco reproduces the Section VI-A cost-of-specialization
// analysis: an analytical model of the query demand, fleet size,
// energy draw and multi-year energy cost of serving a Google-scale
// unique-query stream with CPU servers versus SSAM-based servers, set
// against the non-recurring engineering cost of a 28 nm ASIC.
//
// The paper's headline inputs: >56,000 queries/second of which 20% are
// unique (the rest served by a front-end cache), a $88M NRE for mask
// and development at 28 nm [46], 6.9 cents/kWh industrial energy
// (2015 7-month average), a three-year deployment, and GIST-sized
// descriptors. The model exposes every input so the bench harness can
// feed it measured throughputs.
package tco

import "math"

// Params are the analysis inputs.
type Params struct {
	// TotalQPS is the front-end query arrival rate.
	TotalQPS float64
	// UniqueFraction is the share missing the result cache.
	UniqueFraction float64
	// CPUQPSPerServer is measured linear-search throughput of one CPU
	// server on the workload.
	CPUQPSPerServer float64
	// CPUServerPowerW is per-server dynamic compute power.
	CPUServerPowerW float64
	// SSAMQPSPerModule is one SSAM module's throughput on the same
	// workload.
	SSAMQPSPerModule float64
	// SSAMModulePowerW is one module's accelerator power draw.
	SSAMModulePowerW float64
	// SSAMModulesPerServer is how many modules one host aggregates.
	SSAMModulesPerServer int
	// SSAMHostPowerW is the host-side dynamic power per SSAM server.
	SSAMHostPowerW float64
	// EnergyCostPerKWh is the electricity price in dollars.
	EnergyCostPerKWh float64
	// Years is the deployment horizon.
	Years float64
	// NRECost is the ASIC mask + development cost.
	NRECost float64
	// CapexPerCPUServer and CapexPerSSAMServer price the machines
	// themselves (the paper's analysis covers compute energy only and
	// notes it excludes such overheads; at self-consistent energy
	// prices the fleet capex, not the power bill, is where the
	// specialization savings actually accrue). Zero omits capex.
	CapexPerCPUServer  float64
	CapexPerSSAMServer float64
}

// PaperParams returns the paper's stated inputs, parameterized by the
// measured CPU and SSAM throughputs on the GIST workload.
func PaperParams(cpuQPS, ssamQPS float64) Params {
	return Params{
		TotalQPS:             56000,
		UniqueFraction:       0.20,
		CPUQPSPerServer:      cpuQPS,
		CPUServerPowerW:      55,
		SSAMQPSPerModule:     ssamQPS,
		SSAMModulePowerW:     13.3, // Table III, SSAM-8
		SSAMModulesPerServer: 16,
		SSAMHostPowerW:       60,
		EnergyCostPerKWh:     0.069,
		Years:                3,
	}
}

// Result is the computed comparison.
type Result struct {
	UniqueQPS float64

	CPUServers      int
	CPUFleetPowerW  float64
	CPUEnergyCost   float64 // dollars over the horizon
	CPUCapex        float64
	SSAMModules     int
	SSAMServers     int
	SSAMFleetPowerW float64
	SSAMEnergyCost  float64
	SSAMCapex       float64

	// EnergySavings is CPU minus SSAM energy cost over the horizon.
	EnergySavings float64
	// TotalSavings adds the fleet capex difference.
	TotalSavings float64
	// NetSavings subtracts the ASIC NRE.
	NetSavings float64
	// CostEffective reports whether the deployment recoups the NRE
	// within the horizon — the paper's conclusion.
	CostEffective bool
}

// Analyze runs the model.
func Analyze(p Params) Result {
	var r Result
	r.UniqueQPS = p.TotalQPS * p.UniqueFraction

	r.CPUServers = ceilDiv(r.UniqueQPS, p.CPUQPSPerServer)
	r.CPUFleetPowerW = float64(r.CPUServers) * p.CPUServerPowerW
	r.CPUEnergyCost = energyCost(r.CPUFleetPowerW, p.Years, p.EnergyCostPerKWh)

	r.SSAMModules = ceilDiv(r.UniqueQPS, p.SSAMQPSPerModule)
	mps := p.SSAMModulesPerServer
	if mps < 1 {
		mps = 1
	}
	r.SSAMServers = (r.SSAMModules + mps - 1) / mps
	r.SSAMFleetPowerW = float64(r.SSAMModules)*p.SSAMModulePowerW +
		float64(r.SSAMServers)*p.SSAMHostPowerW
	r.SSAMEnergyCost = energyCost(r.SSAMFleetPowerW, p.Years, p.EnergyCostPerKWh)

	r.CPUCapex = float64(r.CPUServers) * p.CapexPerCPUServer
	r.SSAMCapex = float64(r.SSAMServers) * p.CapexPerSSAMServer
	r.EnergySavings = r.CPUEnergyCost - r.SSAMEnergyCost
	r.TotalSavings = r.EnergySavings + r.CPUCapex - r.SSAMCapex
	r.NetSavings = r.TotalSavings - p.NRECost
	r.CostEffective = r.NetSavings > 0
	return r
}

func ceilDiv(a, b float64) int {
	if b <= 0 {
		return 0
	}
	return int(math.Ceil(a / b))
}

// energyCost converts sustained watts over years into dollars.
func energyCost(watts, years, dollarsPerKWh float64) float64 {
	hours := years * 365 * 24
	kwh := watts / 1000 * hours
	return kwh * dollarsPerKWh
}

// NRE28nm is the paper's cited mask + development cost for a 28 nm
// ASIC [46].
const NRE28nm = 88e6

// PaperReported holds the figures the paper states for reference in
// EXPERIMENTS.md: ~1,800 CPU machines, $772M CPU versus $4.69M SSAM
// compute-energy cost over three years. (The paper's energy
// arithmetic implies a much larger per-server draw than its measured
// 55 W dynamic power; our model reports the self-consistent values
// and EXPERIMENTS.md records both.)
var PaperReported = struct {
	CPUServers     int
	CPUEnergyCost  float64
	SSAMEnergyCost float64
}{1800, 772e6, 4.69e6}
