package profile

import (
	"testing"

	"ssam/internal/dataset"
	"ssam/internal/kdtree"
	"ssam/internal/kmeans"
	"ssam/internal/knn"
	"ssam/internal/lsh"
	"ssam/internal/vec"
)

func TestMixArithmetic(t *testing.T) {
	m := Mix{VectorArith: 10, VectorLoad: 10, ScalarRead: 20, ScalarWrite: 5, ScalarOther: 55}
	if m.Total() != 100 {
		t.Fatalf("Total = %v", m.Total())
	}
	if m.VectorPct() != 20 {
		t.Fatalf("VectorPct = %v", m.VectorPct())
	}
	if m.ReadPct() != 30 {
		t.Fatalf("ReadPct = %v", m.ReadPct())
	}
	if m.WritePct() != 5 {
		t.Fatalf("WritePct = %v", m.WritePct())
	}
	var a Mix
	a.Add(m)
	a.Add(m)
	if a.Total() != 200 {
		t.Fatalf("Add/Total = %v", a.Total())
	}
}

func TestLinearMixNearTableI(t *testing.T) {
	// Table I, Linear row on GloVe: AVX 54.75%, reads 45.23%,
	// writes 0.44%. Our calibration should land within a few points
	// for the vector and write columns.
	ds := dataset.Generate(dataset.Spec{
		Name: "g", N: 3000, Dim: 100, NumQueries: 5, K: 6,
		Clusters: 16, ClusterStd: 0.3, Seed: 3,
	})
	e := knn.NewEngine(ds.Data, 100, vec.Euclidean, 1)
	var mix Mix
	for _, q := range ds.Queries {
		_, st := e.SearchStats(q, 6)
		mix.Add(LinearMix(st, 6))
	}
	if v := mix.VectorPct(); v < 45 || v > 65 {
		t.Fatalf("linear VectorPct = %v, want near 54.75", v)
	}
	if w := mix.WritePct(); w > 3 {
		t.Fatalf("linear WritePct = %v, want near 0.44", w)
	}
	if r := mix.ReadPct(); r < 30 || r > 60 {
		t.Fatalf("linear ReadPct = %v, want near 45.23", r)
	}
}

// TestTableIShape verifies the qualitative structure of Table I:
// linear and k-means are the most vectorized; kd-tree and MPLSH are
// markedly less vectorized and write memory much more.
func TestTableIShape(t *testing.T) {
	ds := dataset.Generate(dataset.Spec{
		Name: "g", N: 4000, Dim: 100, NumQueries: 10, K: 6,
		Clusters: 32, ClusterStd: 0.3, Seed: 4,
	})
	k := 6

	var linear, kd, km, mp Mix

	e := knn.NewEngine(ds.Data, 100, vec.Euclidean, 1)
	f := kdtree.Build(ds.Data, 100, kdtree.DefaultParams())
	f.Checks = 400
	tr := kmeans.Build(ds.Data, 100, kmeans.DefaultParams())
	tr.Checks = 400
	x := lsh.Build(ds.Data, 100, lsh.DefaultParams())
	x.Probes = 8

	for _, q := range ds.Queries {
		_, st := e.SearchStats(q, k)
		linear.Add(LinearMix(st, k))
		_, st2 := f.SearchStats(q, k)
		kd.Add(KDTreeMix(st2, k))
		_, st3 := tr.SearchStats(q, k)
		km.Add(KMeansMix(st3, k))
		_, st4 := x.SearchStats(q, k)
		mp.Add(MPLSHMix(st4, k))
	}

	if linear.VectorPct() <= kd.VectorPct() {
		t.Errorf("linear (%v%%) should vectorize more than kd-tree (%v%%)",
			linear.VectorPct(), kd.VectorPct())
	}
	if km.VectorPct() <= mp.VectorPct() {
		t.Errorf("k-means (%v%%) should vectorize more than MPLSH (%v%%)",
			km.VectorPct(), mp.VectorPct())
	}
	if kd.WritePct() <= linear.WritePct() {
		t.Errorf("kd-tree writes (%v%%) should exceed linear writes (%v%%)",
			kd.WritePct(), linear.WritePct())
	}
	if mp.WritePct() <= km.WritePct() {
		t.Errorf("MPLSH writes (%v%%) should exceed k-means writes (%v%%)",
			mp.WritePct(), km.WritePct())
	}
	t.Logf("Table I shape: linear %.1f/%.1f/%.2f kd %.1f/%.1f/%.2f km %.1f/%.1f/%.2f mplsh %.1f/%.1f/%.2f",
		linear.VectorPct(), linear.ReadPct(), linear.WritePct(),
		kd.VectorPct(), kd.ReadPct(), kd.WritePct(),
		km.VectorPct(), km.ReadPct(), km.WritePct(),
		mp.VectorPct(), mp.ReadPct(), mp.WritePct())
}

func TestZeroWorkMixes(t *testing.T) {
	// Recipes must not divide by zero or go negative on empty stats.
	mixes := []Mix{
		LinearMix(knn.Stats{DistEvals: 1, Dims: 8, PQInserts: 1}, 5),
		KDTreeMix(kdtree.Stats{DistEvals: 1, Dims: 8}, 5),
		KMeansMix(kmeans.Stats{DistEvals: 1, Dims: 8}, 5),
		MPLSHMix(lsh.Stats{DistEvals: 1, Dims: 8}, 5),
	}
	for i, m := range mixes {
		if m.Total() <= 0 {
			t.Errorf("mix %d has nonpositive total", i)
		}
		if m.VectorPct() < 0 || m.ReadPct() < 0 || m.WritePct() < 0 {
			t.Errorf("mix %d has negative percentage", i)
		}
	}
}
