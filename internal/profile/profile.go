// Package profile reproduces the Table I instruction-mix
// characterization of the SSAM paper. The paper instrumented FLANN and
// FALCONN with Pin on an i7-4790K; we cannot run Pin here, so instead
// the engines report their *measured* per-query work (distance
// evaluations, node visits, heap operations, hash computations, bucket
// probes) and this package converts that work into instruction-category
// counts using fixed per-operation recipes.
//
// Category conventions follow Pin's instruction-mix tool: a vector
// load counts both as a vector (AVX/SSE) instruction and as a memory
// read, which is why the paper's rows sum to slightly more than 100%.
// The recipe constants are calibrated so that exact linear search on
// the GloVe-like workload lands near the paper's 54.75% AVX / 45.23%
// read / 0.44% write profile; every other algorithm then uses the same
// constants, so the cross-algorithm differences (less vectorization
// and far more memory writes in kd-tree and MPLSH traversal) emerge
// from the measured traversal stats, not from per-algorithm tuning.
package profile

import (
	"math"

	"ssam/internal/kdtree"
	"ssam/internal/kmeans"
	"ssam/internal/knn"
	"ssam/internal/lsh"
)

// Mix is an instruction-category census for some amount of work.
type Mix struct {
	VectorArith float64 // vector arithmetic instructions
	VectorLoad  float64 // vector loads (also memory reads)
	ScalarRead  float64 // scalar loads
	ScalarWrite float64 // scalar stores
	ScalarOther float64 // scalar ALU/branch instructions
}

// Add accumulates other into m.
func (m *Mix) Add(other Mix) {
	m.VectorArith += other.VectorArith
	m.VectorLoad += other.VectorLoad
	m.ScalarRead += other.ScalarRead
	m.ScalarWrite += other.ScalarWrite
	m.ScalarOther += other.ScalarOther
}

// Total returns the total instruction count.
func (m Mix) Total() float64 {
	return m.VectorArith + m.VectorLoad + m.ScalarRead + m.ScalarWrite + m.ScalarOther
}

// VectorPct returns the percentage of AVX/SSE instructions (vector
// arithmetic plus vector loads), Table I column 1.
func (m Mix) VectorPct() float64 {
	return 100 * (m.VectorArith + m.VectorLoad) / m.Total()
}

// ReadPct returns the percentage of instructions that read memory
// (vector loads plus scalar loads), Table I column 2.
func (m Mix) ReadPct() float64 {
	return 100 * (m.VectorLoad + m.ScalarRead) / m.Total()
}

// WritePct returns the percentage of instructions that write memory,
// Table I column 3.
func (m Mix) WritePct() float64 {
	return 100 * m.ScalarWrite / m.Total()
}

// Per-operation recipes. vecWidth is the SIMD width in float32 lanes
// (AVX = 8).
const vecWidth = 8

// distanceMix models one vectorized distance computation over dims
// dimensions: per chunk, load both operand chunks, subtract, fused
// multiply-add, plus loop/pointer overhead.
func distanceMix(dims float64) Mix {
	chunks := dims / vecWidth
	return Mix{
		VectorArith: 2 * chunks,
		VectorLoad:  2 * chunks,
		ScalarRead:  1 * chunks,
		ScalarOther: 2 * chunks,
	}
}

// candidateMix models per-candidate top-k bookkeeping: bound compare
// and branch, plus a heap update on admitted candidates.
func candidateMix(scored, kept float64, k int) Mix {
	lg := math.Log2(float64(k)) + 1
	return Mix{
		ScalarRead:  2*scored + lg*kept,
		ScalarWrite: lg * kept,
		ScalarOther: 3 * scored,
	}
}

// nodeVisitMix models one interior-node traversal step: load node
// fields, compute the split test, branch. FLANN nodes are
// pointer-chased multi-word records.
func nodeVisitMix(visits float64) Mix {
	return Mix{ScalarRead: 6 * visits, ScalarOther: 8 * visits}
}

// heapOpMix models one backtracking-heap push or pop: FLANN branch
// records are multi-word (node pointer, bound, tree id) and heap
// maintenance reads and writes several entries.
func heapOpMix(ops float64) Mix {
	return Mix{ScalarRead: 6 * ops, ScalarWrite: 7 * ops, ScalarOther: 8 * ops}
}

// dedupMix models one visited-set membership insert — FLANN stamps a
// per-vector "checked" timestamp (a guaranteed write per scored
// candidate), MPLSH inserts into a hash set.
func dedupMix(inserts float64) Mix {
	return Mix{ScalarRead: 2 * inserts, ScalarWrite: 4 * inserts, ScalarOther: 3 * inserts}
}

// scalarProjectionMix models hash-function evaluation in MPLSH. The
// paper observes HP-MPLSH performance is "dominated mostly by hashing
// rate"; FALCONN's hash pipeline (random projection, rounding, bucket
// id assembly) runs largely scalar relative to the bulk distance
// scans, so hash dimensions cost scalar reads and ALU ops here.
func scalarProjectionMix(dims float64) Mix {
	return Mix{ScalarRead: 1 * dims, ScalarWrite: 0.75 * dims, ScalarOther: 2 * dims}
}

// LinearMix converts measured linear-scan work into an instruction mix.
func LinearMix(st knn.Stats, k int) Mix {
	m := distanceMix(float64(st.Dims))
	m.Add(candidateMix(float64(st.PQInserts), float64(st.PQKept), k))
	return m
}

// KDTreeMix converts measured kd-tree query work into an instruction
// mix.
func KDTreeMix(st kdtree.Stats, k int) Mix {
	m := distanceMix(float64(st.Dims))
	m.Add(candidateMix(float64(st.DistEvals), float64(st.DistEvals)/3, k))
	m.Add(nodeVisitMix(float64(st.NodeVisits)))
	m.Add(heapOpMix(float64(st.HeapOps)))
	m.Add(dedupMix(float64(st.DistEvals)))
	return m
}

// KMeansMix converts measured k-means-tree query work into an
// instruction mix. Centroid distance math is already included in
// st.Dims.
func KMeansMix(st kmeans.Stats, k int) Mix {
	m := distanceMix(float64(st.Dims))
	m.Add(candidateMix(float64(st.DistEvals), float64(st.DistEvals)/3, k))
	m.Add(nodeVisitMix(float64(st.NodeVisits + st.CentroidEvals)))
	m.Add(heapOpMix(float64(st.HeapOps)))
	return m
}

// MPLSHMix converts measured multi-probe LSH query work into an
// instruction mix. Bucket scans vectorize; hashing, probe generation,
// bucket lookups and candidate dedup are scalar-heavy.
func MPLSHMix(st lsh.Stats, k int) Mix {
	m := distanceMix(float64(st.Dims))
	m.Add(scalarProjectionMix(float64(st.HashDims)))
	m.Add(candidateMix(float64(st.DistEvals), float64(st.DistEvals)/3, k))
	m.Add(heapOpMix(float64(st.ProbeGenOps)))
	// Bucket probes are hash-map lookups.
	m.Add(Mix{
		ScalarRead:  5 * float64(st.Probes),
		ScalarOther: 6 * float64(st.Probes),
	})
	m.Add(dedupMix(float64(st.DistEvals)))
	return m
}
