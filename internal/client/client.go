// Package client is the typed Go client for the SSAM query server
// (internal/server). It speaks the internal/server/wire JSON format,
// applies a per-request timeout, and transparently retries shed load:
// a 503 response carries a Retry-After hint, and search/read calls
// back off by a jittered fraction of the hint (so a fleet of clients
// shed together does not retry in lockstep) and retry up to a bounded
// attempt budget before surfacing ErrOverloaded.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"ssam/internal/server/wire"
)

// ErrOverloaded is returned when the server keeps shedding a request
// after the client's retry budget is spent. Unwraps from the returned
// error chain via errors.Is.
var ErrOverloaded = errors.New("client: server overloaded (503 after retries)")

// StatusError is a non-2xx, non-retried server response.
type StatusError struct {
	Code    int
	Message string
}

func (e *StatusError) Error() string {
	return fmt.Sprintf("client: server returned %d: %s", e.Code, e.Message)
}

// Client talks to one SSAM query server. Safe for concurrent use.
type Client struct {
	base       string
	hc         *http.Client
	maxRetries int           // retry budget for shed (503) requests
	maxWait    time.Duration // cap on a single Retry-After backoff

	// rng drives backoff jitter; sleep parks a retry (test seam).
	rngMu sync.Mutex
	rng   *rand.Rand
	sleep func(ctx context.Context, d time.Duration) error
}

// Option configures a Client.
type Option func(*Client)

// WithTimeout bounds each HTTP request (default 30s).
func WithTimeout(d time.Duration) Option {
	return func(c *Client) { c.hc.Timeout = d }
}

// WithRetries sets how many times a shed request is retried before
// ErrOverloaded (default 3; 0 disables retrying).
func WithRetries(n int) Option {
	return func(c *Client) { c.maxRetries = n }
}

// WithMaxRetryWait caps how long one Retry-After hint can make the
// client sleep (default 2s — servers hint in whole seconds).
func WithMaxRetryWait(d time.Duration) Option {
	return func(c *Client) { c.maxWait = d }
}

// WithHTTPClient substitutes the underlying http.Client.
func WithHTTPClient(hc *http.Client) Option {
	return func(c *Client) { c.hc = hc }
}

// New returns a client for the server at base (e.g.
// "http://localhost:8080").
func New(base string, opts ...Option) *Client {
	c := &Client{
		base:       strings.TrimRight(base, "/"),
		hc:         &http.Client{Timeout: 30 * time.Second},
		maxRetries: 3,
		maxWait:    2 * time.Second,
		rng:        rand.New(rand.NewSource(time.Now().UnixNano())),
	}
	c.sleep = func(ctx context.Context, d time.Duration) error {
		if d <= 0 {
			return ctx.Err()
		}
		select {
		case <-time.After(d):
			return nil
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	for _, o := range opts {
		o(c)
	}
	return c
}

// jittered spreads a Retry-After backoff over [hint/2, hint] (equal
// jitter), so a fleet of clients shed at the same instant does not
// retry in lockstep and re-overload the server as one thundering
// herd. A zero hint stays zero (an immediate retry hint).
func (c *Client) jittered(hint time.Duration) time.Duration {
	if hint <= 0 {
		return 0
	}
	half := hint / 2
	c.rngMu.Lock()
	d := half + time.Duration(c.rng.Int63n(int64(half)+1))
	c.rngMu.Unlock()
	return d
}

// do runs one JSON round trip. Shed responses (503) are retried after
// the server's Retry-After backoff (with equal jitter applied, so
// simultaneously-shed clients spread out) when retryable; mutation
// calls pass retryable=false so a half-applied sequence is never
// repeated blindly.
func (c *Client) do(ctx context.Context, method, path string, in, out any, retryable bool) error {
	return c.doHeader(ctx, method, path, nil, in, out, retryable)
}

// doHeader is do with extra request headers (e.g. X-SSAM-Trace to
// force server-side trace sampling).
func (c *Client) doHeader(ctx context.Context, method, path string, hdr map[string]string, in, out any, retryable bool) error {
	var body []byte
	if in != nil {
		var err error
		if body, err = json.Marshal(in); err != nil {
			return fmt.Errorf("client: encode request: %w", err)
		}
	}
	attempts := 1
	if retryable {
		attempts += c.maxRetries
	}
	var wait time.Duration
	for attempt := 0; ; attempt++ {
		if attempt > 0 {
			if err := c.sleep(ctx, wait); err != nil {
				return err
			}
		}
		code, hint, err := c.roundTrip(ctx, method, path, hdr, body, out)
		if err != nil {
			return err
		}
		if code != http.StatusServiceUnavailable {
			return nil
		}
		if attempt == attempts-1 {
			return fmt.Errorf("%w: %s %s", ErrOverloaded, method, path)
		}
		wait = c.jittered(hint)
	}
}

// roundTrip performs one attempt. A 503 returns (503, backoff, nil)
// so the caller can wait out the server's Retry-After hint; other
// failures are folded into err.
func (c *Client) roundTrip(ctx context.Context, method, path string, hdr map[string]string, body []byte, out any) (int, time.Duration, error) {
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, bytes.NewReader(body))
	if err != nil {
		return 0, 0, fmt.Errorf("client: %w", err)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return 0, 0, fmt.Errorf("client: %w", err)
	}
	defer resp.Body.Close()

	if resp.StatusCode == http.StatusServiceUnavailable {
		io.Copy(io.Discard, resp.Body)
		return resp.StatusCode, c.parseRetryAfter(resp), nil
	}
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		msg := readErrorBody(resp.Body)
		return resp.StatusCode, 0, &StatusError{Code: resp.StatusCode, Message: msg}
	}
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			return resp.StatusCode, 0, fmt.Errorf("client: decode response: %w", err)
		}
	} else {
		io.Copy(io.Discard, resp.Body)
	}
	return resp.StatusCode, 0, nil
}

func (c *Client) parseRetryAfter(resp *http.Response) time.Duration {
	wait := 100 * time.Millisecond // default nudge when the header is absent
	if h := resp.Header.Get("Retry-After"); h != "" {
		if secs, err := strconv.Atoi(h); err == nil && secs >= 0 {
			wait = time.Duration(secs) * time.Second
		}
	}
	if wait > c.maxWait {
		wait = c.maxWait
	}
	return wait
}

func readErrorBody(r io.Reader) string {
	var e wire.ErrorResponse
	data, _ := io.ReadAll(io.LimitReader(r, 4096))
	if json.Unmarshal(data, &e) == nil && e.Error != "" {
		return e.Error
	}
	return strings.TrimSpace(string(data))
}

// --- driver calls (Fig. 4 over HTTP) ---

// CreateRegion allocates a named region on the server (nmalloc+nmode).
func (c *Client) CreateRegion(ctx context.Context, name string, dims int, cfg wire.RegionConfig) (wire.RegionInfo, error) {
	var info wire.RegionInfo
	err := c.do(ctx, http.MethodPost, "/regions",
		wire.CreateRegionRequest{Name: name, Dims: dims, Config: cfg}, &info, false)
	return info, err
}

// Load replaces the region's dataset with vectors (nmemcpy).
func (c *Client) Load(ctx context.Context, name string, vectors [][]float32) (wire.RegionInfo, error) {
	var info wire.RegionInfo
	err := c.do(ctx, http.MethodPost, "/regions/"+name+"/load",
		wire.LoadRequest{Vectors: vectors}, &info, false)
	return info, err
}

// LoadAppend streams additional vectors into the region.
func (c *Client) LoadAppend(ctx context.Context, name string, vectors [][]float32) (wire.RegionInfo, error) {
	var info wire.RegionInfo
	err := c.do(ctx, http.MethodPost, "/regions/"+name+"/load",
		wire.LoadRequest{Vectors: vectors, Append: true}, &info, false)
	return info, err
}

// Build constructs the region's index (nbuild_index).
func (c *Client) Build(ctx context.Context, name string) (wire.RegionInfo, error) {
	var info wire.RegionInfo
	err := c.do(ctx, http.MethodPost, "/regions/"+name+"/build", nil, &info, false)
	return info, err
}

// Search answers one kNN query, retrying shed load. Use SearchFull to
// observe a sharded region's degradation signals.
func (c *Client) Search(ctx context.Context, name string, query []float32, k int) ([]wire.Neighbor, error) {
	resp, err := c.SearchFull(ctx, name, query, k)
	return resp.Results, err
}

// SearchFull is Search returning the whole response, including the
// Degraded flag, failed shard list, and hedge count a sharded region
// reports in partial-result mode.
func (c *Client) SearchFull(ctx context.Context, name string, query []float32, k int) (wire.SearchResponse, error) {
	var resp wire.SearchResponse
	err := c.do(ctx, http.MethodPost, "/regions/"+name+"/search",
		wire.SearchRequest{Query: query, K: k}, &resp, true)
	return resp, err
}

// SearchTraced is SearchFull with the X-SSAM-Trace header set, so the
// server force-samples the request and returns its span tree in
// Response.Trace — the loadgen's per-stage latency breakdown reads
// queue/batch/fanout/merge durations from it.
func (c *Client) SearchTraced(ctx context.Context, name string, query []float32, k int) (wire.SearchResponse, error) {
	var resp wire.SearchResponse
	err := c.doHeader(ctx, http.MethodPost, "/regions/"+name+"/search",
		map[string]string{"X-SSAM-Trace": "1"},
		wire.SearchRequest{Query: query, K: k}, &resp, true)
	return resp, err
}

// SearchBatch answers an explicit query batch, retrying shed load.
func (c *Client) SearchBatch(ctx context.Context, name string, queries [][]float32, k int) ([][]wire.Neighbor, error) {
	resp, err := c.SearchBatchFull(ctx, name, queries, k)
	return resp.Results, err
}

// SearchBatchFull is SearchBatch returning the whole response with a
// sharded region's degradation signals.
func (c *Client) SearchBatchFull(ctx context.Context, name string, queries [][]float32, k int) (wire.SearchBatchResponse, error) {
	var resp wire.SearchBatchResponse
	err := c.do(ctx, http.MethodPost, "/regions/"+name+"/searchbatch",
		wire.SearchBatchRequest{Queries: queries, K: k}, &resp, true)
	return resp, err
}

// Upsert inserts or replaces rows by external id (ids[i] names
// vectors[i]) and returns the region's last committed mutation
// sequence number. Like every mutation it is never retried on shed
// load — a blind re-send would double-commit sequence numbers — so a
// 503 surfaces immediately as ErrOverloaded for the caller to decide.
func (c *Client) Upsert(ctx context.Context, name string, ids []int, vectors [][]float32) (wire.MutateResponse, error) {
	var resp wire.MutateResponse
	err := c.do(ctx, http.MethodPost, "/regions/"+name+"/upsert",
		wire.UpsertRequest{IDs: ids, Vectors: vectors}, &resp, false)
	return resp, err
}

// Delete tombstones rows by external id. Absent ids are not an error;
// they come back in MutateResponse.Missing. Not retried on shed load.
func (c *Client) Delete(ctx context.Context, name string, ids []int) (wire.MutateResponse, error) {
	var resp wire.MutateResponse
	err := c.do(ctx, http.MethodPost, "/regions/"+name+"/delete",
		wire.DeleteRequest{IDs: ids}, &resp, false)
	return resp, err
}

// Compact runs one synchronous compaction pass on a mutated region.
// Not retried on shed load (compaction is heavy; the caller should
// re-decide, not the transport).
func (c *Client) Compact(ctx context.Context, name string) (wire.CompactResponse, error) {
	var resp wire.CompactResponse
	err := c.do(ctx, http.MethodPost, "/regions/"+name+"/compact", nil, &resp, false)
	return resp, err
}

// Reload rebuilds a replicated region from its staged dataset as a
// new generation with zero downtime (build in background → warm →
// atomic cutover → drain old). Not retried on shed load — a reload is
// heavy and the caller should re-decide, not the transport.
func (c *Client) Reload(ctx context.Context, name string) (wire.ReloadResponse, error) {
	var resp wire.ReloadResponse
	err := c.do(ctx, http.MethodPost, "/regions/"+name+"/reload", nil, &resp, false)
	return resp, err
}

// Free releases the region (nfree).
func (c *Client) Free(ctx context.Context, name string) error {
	return c.do(ctx, http.MethodDelete, "/regions/"+name, nil, nil, false)
}

// Regions lists the server's regions.
func (c *Client) Regions(ctx context.Context) ([]wire.RegionInfo, error) {
	var infos []wire.RegionInfo
	err := c.do(ctx, http.MethodGet, "/regions", nil, &infos, true)
	return infos, err
}

// Region fetches one region's info.
func (c *Client) Region(ctx context.Context, name string) (wire.RegionInfo, error) {
	var info wire.RegionInfo
	err := c.do(ctx, http.MethodGet, "/regions/"+name, nil, &info, true)
	return info, err
}

// Stats fetches /statsz.
func (c *Client) Stats(ctx context.Context) (wire.StatsResponse, error) {
	var stats wire.StatsResponse
	err := c.do(ctx, http.MethodGet, "/statsz", nil, &stats, true)
	return stats, err
}

// Health probes /healthz.
func (c *Client) Health(ctx context.Context) error {
	return c.do(ctx, http.MethodGet, "/healthz", nil, nil, true)
}
