package client

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"ssam/internal/server/wire"
)

// shedThenServe 503s the first n attempts (with a zero Retry-After so
// tests don't sleep), then serves an empty result.
func shedThenServe(n int) (*httptest.Server, *atomic.Int32) {
	var attempts atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if int(attempts.Add(1)) <= n {
			w.Header().Set("Retry-After", "0")
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(`{"results":[]}`))
	}))
	return ts, &attempts
}

func TestRetriesShedLoad(t *testing.T) {
	ts, attempts := shedThenServe(2)
	defer ts.Close()
	c := New(ts.URL, WithRetries(3))
	if _, err := c.Search(context.Background(), "r", []float32{1}, 2); err != nil {
		t.Fatalf("search with retry budget 3 = %v, want success on attempt 3", err)
	}
	if got := attempts.Load(); got != 3 {
		t.Fatalf("server saw %d attempts, want 3", got)
	}
}

func TestRetryBudgetExhausted(t *testing.T) {
	ts, attempts := shedThenServe(100)
	defer ts.Close()
	c := New(ts.URL, WithRetries(2))
	_, err := c.Search(context.Background(), "r", []float32{1}, 2)
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("exhausted retries = %v, want ErrOverloaded", err)
	}
	if got := attempts.Load(); got != 3 {
		t.Fatalf("server saw %d attempts, want 3 (1 + 2 retries)", got)
	}
}

func TestMutationsAreNotRetried(t *testing.T) {
	ts, attempts := shedThenServe(1)
	defer ts.Close()
	c := New(ts.URL, WithRetries(5))
	_, err := c.CreateRegion(context.Background(), "r", 4, wire.RegionConfig{})
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("shed mutation = %v, want ErrOverloaded without retry", err)
	}
	if got := attempts.Load(); got != 1 {
		t.Fatalf("mutation retried: server saw %d attempts, want 1", got)
	}
}

func TestStatusErrorSurfacesBody(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusConflict)
		w.Write([]byte(`{"error":"region exists"}`))
	}))
	defer ts.Close()
	c := New(ts.URL)
	_, err := c.Build(context.Background(), "r")
	var se *StatusError
	if !errors.As(err, &se) || se.Code != http.StatusConflict || se.Message != "region exists" {
		t.Fatalf("got %v, want StatusError{409, region exists}", err)
	}
}

func TestRetryAfterCapped(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "3600")
		w.WriteHeader(http.StatusServiceUnavailable)
	}))
	defer ts.Close()
	c := New(ts.URL, WithRetries(1), WithMaxRetryWait(50*time.Millisecond))
	start := time.Now()
	_, err := c.Search(context.Background(), "r", []float32{1}, 2)
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("got %v, want ErrOverloaded", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("client slept %v; Retry-After cap not applied", elapsed)
	}
}
