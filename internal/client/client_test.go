package client

import (
	"context"
	"errors"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ssam/internal/server/wire"
)

// shedThenServe 503s the first n attempts (with a zero Retry-After so
// tests don't sleep), then serves an empty result.
func shedThenServe(n int) (*httptest.Server, *atomic.Int32) {
	var attempts atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if int(attempts.Add(1)) <= n {
			w.Header().Set("Retry-After", "0")
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(`{"results":[]}`))
	}))
	return ts, &attempts
}

func TestRetriesShedLoad(t *testing.T) {
	ts, attempts := shedThenServe(2)
	defer ts.Close()
	c := New(ts.URL, WithRetries(3))
	if _, err := c.Search(context.Background(), "r", []float32{1}, 2); err != nil {
		t.Fatalf("search with retry budget 3 = %v, want success on attempt 3", err)
	}
	if got := attempts.Load(); got != 3 {
		t.Fatalf("server saw %d attempts, want 3", got)
	}
}

func TestRetryBudgetExhausted(t *testing.T) {
	ts, attempts := shedThenServe(100)
	defer ts.Close()
	c := New(ts.URL, WithRetries(2))
	_, err := c.Search(context.Background(), "r", []float32{1}, 2)
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("exhausted retries = %v, want ErrOverloaded", err)
	}
	if got := attempts.Load(); got != 3 {
		t.Fatalf("server saw %d attempts, want 3 (1 + 2 retries)", got)
	}
}

func TestMutationsAreNotRetried(t *testing.T) {
	ts, attempts := shedThenServe(1)
	defer ts.Close()
	c := New(ts.URL, WithRetries(5))
	_, err := c.CreateRegion(context.Background(), "r", 4, wire.RegionConfig{})
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("shed mutation = %v, want ErrOverloaded without retry", err)
	}
	if got := attempts.Load(); got != 1 {
		t.Fatalf("mutation retried: server saw %d attempts, want 1", got)
	}
}

func TestStatusErrorSurfacesBody(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusConflict)
		w.Write([]byte(`{"error":"region exists"}`))
	}))
	defer ts.Close()
	c := New(ts.URL)
	_, err := c.Build(context.Background(), "r")
	var se *StatusError
	if !errors.As(err, &se) || se.Code != http.StatusConflict || se.Message != "region exists" {
		t.Fatalf("got %v, want StatusError{409, region exists}", err)
	}
}

func TestRetryAfterCapped(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "3600")
		w.WriteHeader(http.StatusServiceUnavailable)
	}))
	defer ts.Close()
	c := New(ts.URL, WithRetries(1), WithMaxRetryWait(50*time.Millisecond))
	start := time.Now()
	_, err := c.Search(context.Background(), "r", []float32{1}, 2)
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("got %v, want ErrOverloaded", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("client slept %v; Retry-After cap not applied", elapsed)
	}
}

// fakeClock records retry backoffs instead of sleeping, standing in
// for the wall clock so jitter is observable without waiting.
type fakeClock struct {
	mu     sync.Mutex
	sleeps []time.Duration
}

func (f *fakeClock) sleep(ctx context.Context, d time.Duration) error {
	f.mu.Lock()
	f.sleeps = append(f.sleeps, d)
	f.mu.Unlock()
	return ctx.Err()
}

// TestRetryBackoffJitter pins the thundering-herd defense: every
// Retry-After backoff must land in [hint/2, hint] (equal jitter), and
// the waits must not all collapse onto one value — clients shed at the
// same instant have to spread out.
func TestRetryBackoffJitter(t *testing.T) {
	const hintSecs = 2
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "2")
		w.WriteHeader(http.StatusServiceUnavailable)
	}))
	defer ts.Close()

	const retries = 40
	clock := &fakeClock{}
	c := New(ts.URL, WithRetries(retries), WithMaxRetryWait(5*time.Second))
	c.sleep = clock.sleep
	c.rng = rand.New(rand.NewSource(1)) // deterministic spread

	if _, err := c.Search(context.Background(), "r", []float32{1}, 1); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("search against an always-shedding server = %v, want ErrOverloaded", err)
	}
	if len(clock.sleeps) != retries {
		t.Fatalf("recorded %d backoffs, want %d", len(clock.sleeps), retries)
	}
	hint := hintSecs * time.Second
	distinct := map[time.Duration]bool{}
	for i, d := range clock.sleeps {
		if d < hint/2 || d > hint {
			t.Fatalf("backoff %d = %v outside the jitter window [%v, %v]", i, d, hint/2, hint)
		}
		distinct[d] = true
	}
	if len(distinct) < 2 {
		t.Fatalf("all %d backoffs collapsed to %v: no jitter applied", retries, clock.sleeps[0])
	}
}

// TestRetryJitterZeroHint: a zero Retry-After must stay an immediate
// retry (the test servers above rely on it).
func TestRetryJitterZeroHint(t *testing.T) {
	ts, attempts := shedThenServe(1)
	defer ts.Close()
	clock := &fakeClock{}
	c := New(ts.URL, WithRetries(2))
	c.sleep = clock.sleep
	if _, err := c.Search(context.Background(), "r", []float32{1}, 1); err != nil {
		t.Fatalf("search = %v", err)
	}
	if got := attempts.Load(); got != 2 {
		t.Fatalf("server saw %d attempts, want 2", got)
	}
	if len(clock.sleeps) != 1 || clock.sleeps[0] != 0 {
		t.Fatalf("zero hint produced backoffs %v, want [0s]", clock.sleeps)
	}
}
