package vec

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBinarySetBit(t *testing.T) {
	b := NewBinary(130)
	for _, i := range []int{0, 1, 63, 64, 65, 127, 128, 129} {
		if b.Bit(i) {
			t.Fatalf("bit %d set in fresh vector", i)
		}
		b.Set(i, true)
		if !b.Bit(i) {
			t.Fatalf("bit %d not set after Set", i)
		}
		b.Set(i, false)
		if b.Bit(i) {
			t.Fatalf("bit %d still set after clear", i)
		}
	}
}

func TestHammingKnown(t *testing.T) {
	a, b := NewBinary(70), NewBinary(70)
	a.Set(0, true)
	a.Set(69, true)
	b.Set(69, true)
	b.Set(33, true)
	if got := Hamming(a, b); got != 2 {
		t.Fatalf("Hamming = %d, want 2", got)
	}
	if got := Hamming(a, a); got != 0 {
		t.Fatalf("Hamming(a,a) = %d, want 0", got)
	}
}

func TestHammingDimMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on dim mismatch")
		}
	}()
	Hamming(NewBinary(10), NewBinary(11))
}

func TestFxp32(t *testing.T) {
	if got := Fxp32(0, 0xFFFFFFFF, 0); got != 32 {
		t.Fatalf("Fxp32 = %d, want 32", got)
	}
	if got := Fxp32(5, 0b1010, 0b0110); got != 7 {
		t.Fatalf("Fxp32 accumulate = %d, want 7", got)
	}
}

// Property: Fxp32 accumulated over words equals Hamming on the packed
// vectors — the FXP instruction computes Hamming distance.
func TestFxpMatchesHammingQuick(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		dim := (r.Intn(8) + 1) * 64 // whole words
		a, b := NewBinary(dim), NewBinary(dim)
		for i := 0; i < dim; i++ {
			a.Set(i, r.Intn(2) == 1)
			b.Set(i, r.Intn(2) == 1)
		}
		var acc uint32
		for w := range a.Words {
			lo1, hi1 := uint32(a.Words[w]), uint32(a.Words[w]>>32)
			lo2, hi2 := uint32(b.Words[w]), uint32(b.Words[w]>>32)
			acc = Fxp32(acc, lo1, lo2)
			acc = Fxp32(acc, hi1, hi2)
		}
		return int(acc) == Hamming(a, b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: Hamming distance is a metric on binary vectors.
func TestHammingMetricQuick(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		dim := r.Intn(200) + 1
		mk := func() Binary {
			v := NewBinary(dim)
			for i := 0; i < dim; i++ {
				v.Set(i, r.Intn(2) == 1)
			}
			return v
		}
		a, b, c := mk(), mk(), mk()
		if Hamming(a, b) != Hamming(b, a) {
			return false
		}
		if Hamming(a, a) != 0 {
			return false
		}
		return Hamming(a, c) <= Hamming(a, b)+Hamming(b, c)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSignBinarize(t *testing.T) {
	v := []float32{1, -1, 0.5, -0.5}
	b := SignBinarize(v, nil)
	want := []bool{true, false, true, false}
	for i, w := range want {
		if b.Bit(i) != w {
			t.Errorf("bit %d = %v, want %v", i, b.Bit(i), w)
		}
	}
	// Thresholds shift the cut point.
	b2 := SignBinarize(v, []float32{2, -2, 2, -2})
	want2 := []bool{false, true, false, true}
	for i, w := range want2 {
		if b2.Bit(i) != w {
			t.Errorf("thresholded bit %d = %v, want %v", i, b2.Bit(i), w)
		}
	}
}

func TestHyperplaneBinarize(t *testing.T) {
	planes := [][]float32{{1, 0}, {0, 1}, {-1, 0}}
	b := HyperplaneBinarize([]float32{3, -2}, planes)
	if !b.Bit(0) || b.Bit(1) || b.Bit(2) {
		t.Fatalf("hyperplane code wrong: %v %v %v", b.Bit(0), b.Bit(1), b.Bit(2))
	}
	if b.Dim != 3 {
		t.Fatalf("Dim = %d, want 3", b.Dim)
	}
}

func TestPopCount(t *testing.T) {
	b := NewBinary(129)
	b.Set(0, true)
	b.Set(64, true)
	b.Set(128, true)
	if got := b.PopCount(); got != 3 {
		t.Fatalf("PopCount = %d, want 3", got)
	}
}
