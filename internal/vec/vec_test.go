package vec

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol*(1+math.Abs(a)+math.Abs(b))
}

func TestSquaredL2Known(t *testing.T) {
	a := []float32{1, 2, 3}
	b := []float32{4, 6, 3}
	if got := SquaredL2(a, b); got != 25 {
		t.Fatalf("SquaredL2 = %v, want 25", got)
	}
}

func TestL1Known(t *testing.T) {
	a := []float32{1, -2, 3}
	b := []float32{-1, 2, 3}
	if got := L1(a, b); got != 6 {
		t.Fatalf("L1 = %v, want 6", got)
	}
}

func TestCosineKnown(t *testing.T) {
	if got := CosineDistance([]float32{1, 0}, []float32{0, 1}); !almostEqual(got, 1, 1e-12) {
		t.Fatalf("orthogonal cosine distance = %v, want 1", got)
	}
	if got := CosineDistance([]float32{2, 0}, []float32{5, 0}); !almostEqual(got, 0, 1e-12) {
		t.Fatalf("parallel cosine distance = %v, want 0", got)
	}
	if got := CosineDistance([]float32{1, 0}, []float32{-3, 0}); !almostEqual(got, 2, 1e-12) {
		t.Fatalf("antiparallel cosine distance = %v, want 2", got)
	}
	if got := CosineDistance([]float32{0, 0}, []float32{1, 1}); got != 1 {
		t.Fatalf("zero-vector cosine distance = %v, want 1", got)
	}
}

func TestChi2Known(t *testing.T) {
	a := []float32{1, 0, 2}
	b := []float32{3, 0, 2}
	// (1-3)^2/(1+3) = 1; zero-sum dim skipped; equal dim contributes 0.
	if got := Chi2(a, b); !almostEqual(got, 1, 1e-12) {
		t.Fatalf("Chi2 = %v, want 1", got)
	}
}

func TestJaccardKnown(t *testing.T) {
	a := []float32{1, 2, 0}
	b := []float32{2, 1, 0}
	// min-sum = 2, max-sum = 4 -> distance 0.5
	if got := JaccardDistance(a, b); !almostEqual(got, 0.5, 1e-12) {
		t.Fatalf("Jaccard = %v, want 0.5", got)
	}
	if got := JaccardDistance([]float32{0, 0}, []float32{0, 0}); got != 0 {
		t.Fatalf("zero Jaccard = %v, want 0", got)
	}
}

func TestDistanceDispatch(t *testing.T) {
	a := []float32{1, 2}
	b := []float32{3, 5}
	cases := []struct {
		m    Metric
		want float64
	}{
		{Euclidean, 13},
		{Manhattan, 5},
	}
	for _, c := range cases {
		if got := Distance(c.m, a, b); got != c.want {
			t.Errorf("Distance(%v) = %v, want %v", c.m, got, c.want)
		}
	}
}

func TestDistanceHammingPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Distance(HammingMetric, ...) did not panic")
		}
	}()
	Distance(HammingMetric, []float32{1}, []float32{1})
}

func TestDimensionMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched dims did not panic")
		}
	}()
	SquaredL2([]float32{1}, []float32{1, 2})
}

func TestMetricString(t *testing.T) {
	names := map[Metric]string{
		Euclidean: "euclidean", Manhattan: "manhattan", Cosine: "cosine",
		HammingMetric: "hamming", ChiSquared: "chi2", JaccardMetric: "jaccard",
		Metric(99): "unknown",
	}
	for m, want := range names {
		if got := m.String(); got != want {
			t.Errorf("Metric(%d).String() = %q, want %q", m, got, want)
		}
	}
}

func randVec(rng *rand.Rand, dim int) []float32 {
	v := make([]float32, dim)
	for i := range v {
		v[i] = float32(rng.NormFloat64())
	}
	return v
}

// Property: metric axioms that hold for our distance functions —
// non-negativity, identity, symmetry.
func TestMetricPropertiesQuick(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := func(seed int64, dimRaw uint8) bool {
		dim := int(dimRaw%32) + 1
		r := rand.New(rand.NewSource(seed))
		a, b := randVec(r, dim), randVec(r, dim)
		for _, m := range []Metric{Euclidean, Manhattan, Cosine} {
			dab := Distance(m, a, b)
			dba := Distance(m, b, a)
			if dab < -1e-9 {
				return false
			}
			if !almostEqual(dab, dba, 1e-9) {
				return false
			}
			if Distance(m, a, a) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rng}); err != nil {
		t.Fatal(err)
	}
}

// Property: triangle inequality for L1 and L2 (on the unsquared L2).
func TestTriangleInequalityQuick(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		dim := r.Intn(24) + 1
		a, b, c := randVec(r, dim), randVec(r, dim), randVec(r, dim)
		l2 := func(x, y []float32) float64 { return math.Sqrt(SquaredL2(x, y)) }
		if l2(a, c) > l2(a, b)+l2(b, c)+1e-9 {
			return false
		}
		if L1(a, c) > L1(a, b)+L1(b, c)+1e-9 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: squared L2 ranking agrees with true L2 ranking.
func TestSquaredL2RankingQuick(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		dim := r.Intn(16) + 1
		q, a, b := randVec(r, dim), randVec(r, dim), randVec(r, dim)
		sa, sb := SquaredL2(q, a), SquaredL2(q, b)
		ta, tb := math.Sqrt(sa), math.Sqrt(sb)
		return (sa < sb) == (ta < tb) || sa == sb
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestDotNorm(t *testing.T) {
	if got := Dot([]float32{1, 2, 3}, []float32{4, 5, 6}); got != 32 {
		t.Fatalf("Dot = %v, want 32", got)
	}
	if got := Norm([]float32{3, 4}); got != 5 {
		t.Fatalf("Norm = %v, want 5", got)
	}
}
