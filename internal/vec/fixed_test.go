package vec

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFixedRoundTrip(t *testing.T) {
	for _, v := range []float32{0, 1, -1, 0.5, -0.25, 3.14159, -127.5, 100.0} {
		got := FromFixed(ToFixed(v))
		if math.Abs(float64(got-v)) > 1.0/float64(FixedOne) {
			t.Errorf("round trip %v -> %v, error too large", v, got)
		}
	}
}

func TestFixedSaturation(t *testing.T) {
	if got := ToFixed(1e9); got != math.MaxInt32 {
		t.Errorf("positive saturation = %d, want MaxInt32", got)
	}
	if got := ToFixed(-1e9); got != math.MinInt32 {
		t.Errorf("negative saturation = %d, want MinInt32", got)
	}
}

func TestFixedOneValue(t *testing.T) {
	if ToFixed(1.0) != FixedOne {
		t.Fatalf("ToFixed(1.0) = %d, want %d", ToFixed(1.0), FixedOne)
	}
}

func TestSquaredL2FixedKnown(t *testing.T) {
	a := ToFixedVec([]float32{1, 2})
	b := ToFixedVec([]float32{4, 6})
	// true squared distance 25; raw units are 2^32 per unit
	want := int64(25) << 32
	if got := SquaredL2Fixed(a, b); got != want {
		t.Fatalf("SquaredL2Fixed = %d, want %d", got, want)
	}
}

func TestL1FixedKnown(t *testing.T) {
	a := ToFixedVec([]float32{1, -2})
	b := ToFixedVec([]float32{-1, 2})
	want := int64(6) << 16
	if got := L1Fixed(a, b); got != want {
		t.Fatalf("L1Fixed = %d, want %d", got, want)
	}
}

// Property: fixed-point distances track float distances closely for
// data in the feature-vector range (Section II-D's "negligible
// accuracy loss" claim at the kernel level).
func TestFixedTracksFloatQuick(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		dim := r.Intn(64) + 1
		a, b := make([]float32, dim), make([]float32, dim)
		for i := range a {
			a[i] = float32(r.NormFloat64() * 4)
			b[i] = float32(r.NormFloat64() * 4)
		}
		fl := SquaredL2(a, b)
		fx := float64(SquaredL2Fixed(ToFixedVec(a), ToFixedVec(b))) / float64(1<<32)
		return math.Abs(fl-fx) <= 1e-3*(1+fl)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: fixed-point ranking agrees with float ranking except in
// genuine near-ties (differences below the quantization floor).
func TestFixedRankingQuick(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		dim := r.Intn(32) + 1
		q, a, b := make([]float32, dim), make([]float32, dim), make([]float32, dim)
		for i := 0; i < dim; i++ {
			q[i] = float32(r.NormFloat64())
			a[i] = float32(r.NormFloat64())
			b[i] = float32(r.NormFloat64())
		}
		fa, fb := SquaredL2(q, a), SquaredL2(q, b)
		if math.Abs(fa-fb) < 1e-3 { // near-tie: either order acceptable
			return true
		}
		xa := SquaredL2Fixed(ToFixedVec(q), ToFixedVec(a))
		xb := SquaredL2Fixed(ToFixedVec(q), ToFixedVec(b))
		return (fa < fb) == (xa < xb)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestFixedVecRoundTrip(t *testing.T) {
	in := []float32{0.25, -3.5, 7}
	out := FromFixedVec(ToFixedVec(in))
	for i := range in {
		if out[i] != in[i] {
			t.Errorf("index %d: %v != %v", i, out[i], in[i])
		}
	}
}
