package vec

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFixedRoundTrip(t *testing.T) {
	for _, v := range []float32{0, 1, -1, 0.5, -0.25, 3.14159, -127.5, 100.0} {
		got := FromFixed(ToFixed(v))
		if math.Abs(float64(got-v)) > 1.0/float64(FixedOne) {
			t.Errorf("round trip %v -> %v, error too large", v, got)
		}
	}
}

func TestFixedSaturation(t *testing.T) {
	if got := ToFixed(1e9); got != math.MaxInt32 {
		t.Errorf("positive saturation = %d, want MaxInt32", got)
	}
	if got := ToFixed(-1e9); got != math.MinInt32 {
		t.Errorf("negative saturation = %d, want MinInt32", got)
	}
}

// TestFixedSaturationBoundaries walks the exact edges of the Q16.16
// range the way int8/int16 quantizers are tested at ±128/±32768: the
// largest representable magnitudes convert exactly, one step past them
// clamps, and the clamp is idempotent under round trip.
func TestFixedSaturationBoundaries(t *testing.T) {
	// 32767 integer units is the last fully-representable power-of-two
	// neighborhood: 32767.0 -> 32767 << 16 exactly.
	if got := ToFixed(32767); got != 32767<<FixedShift {
		t.Errorf("ToFixed(32767) = %d, want %d", got, 32767<<FixedShift)
	}
	// MaxInt32/2^16 = 32767.99998...; the next representable float up
	// (32768.0) must clamp rather than wrap to MinInt32.
	if got := ToFixed(32768); got != math.MaxInt32 {
		t.Errorf("ToFixed(32768) = %d, want MaxInt32", got)
	}
	// The negative edge is exactly representable: -32768.0 -> MinInt32.
	if got := ToFixed(-32768); got != math.MinInt32 {
		t.Errorf("ToFixed(-32768) = %d, want MinInt32", got)
	}
	if got := ToFixed(-32769); got != math.MinInt32 {
		t.Errorf("ToFixed(-32769) = %d, want MinInt32 (clamped)", got)
	}
	// int8-scale boundaries stay exact (feature-vector range).
	for _, v := range []float32{127, -128, 127.5, -127.5} {
		if got := FromFixed(ToFixed(v)); got != v {
			t.Errorf("round trip %v -> %v at int8-scale boundary", v, got)
		}
	}
}

// TestFixedNonFinite pins the deterministic images of the non-finite
// floats: infinities saturate like out-of-range values, NaN maps to
// zero on every platform (a raw int32(NaN) conversion is
// implementation-defined, which would make device layouts differ
// across hosts).
func TestFixedNonFinite(t *testing.T) {
	if got := ToFixed(float32(math.Inf(1))); got != math.MaxInt32 {
		t.Errorf("ToFixed(+Inf) = %d, want MaxInt32", got)
	}
	if got := ToFixed(float32(math.Inf(-1))); got != math.MinInt32 {
		t.Errorf("ToFixed(-Inf) = %d, want MinInt32", got)
	}
	if got := ToFixed(float32(math.NaN())); got != 0 {
		t.Errorf("ToFixed(NaN) = %d, want 0", got)
	}
	out := ToFixedVec([]float32{float32(math.NaN()), 1, float32(math.Inf(1))})
	if out[0] != 0 || out[1] != FixedOne || out[2] != math.MaxInt32 {
		t.Errorf("ToFixedVec non-finite images = %v", out)
	}
}

// TestFixedZeroRange covers the all-equal-dimension edge: a constant
// vector quantizes to a constant, and distances between identical
// quantized vectors are exactly zero in both kernels.
func TestFixedZeroRange(t *testing.T) {
	a := ToFixedVec([]float32{2.5, 2.5, 2.5, 2.5})
	for i := 1; i < len(a); i++ {
		if a[i] != a[0] {
			t.Fatalf("constant vector not constant after quantization: %v", a)
		}
	}
	if d := SquaredL2Fixed(a, a); d != 0 {
		t.Errorf("SquaredL2Fixed(a, a) = %d, want 0", d)
	}
	if d := L1Fixed(a, a); d != 0 {
		t.Errorf("L1Fixed(a, a) = %d, want 0", d)
	}
}

func TestFixedOneValue(t *testing.T) {
	if ToFixed(1.0) != FixedOne {
		t.Fatalf("ToFixed(1.0) = %d, want %d", ToFixed(1.0), FixedOne)
	}
}

func TestSquaredL2FixedKnown(t *testing.T) {
	a := ToFixedVec([]float32{1, 2})
	b := ToFixedVec([]float32{4, 6})
	// true squared distance 25; raw units are 2^32 per unit
	want := int64(25) << 32
	if got := SquaredL2Fixed(a, b); got != want {
		t.Fatalf("SquaredL2Fixed = %d, want %d", got, want)
	}
}

func TestL1FixedKnown(t *testing.T) {
	a := ToFixedVec([]float32{1, -2})
	b := ToFixedVec([]float32{-1, 2})
	want := int64(6) << 16
	if got := L1Fixed(a, b); got != want {
		t.Fatalf("L1Fixed = %d, want %d", got, want)
	}
}

// Property: fixed-point distances track float distances closely for
// data in the feature-vector range (Section II-D's "negligible
// accuracy loss" claim at the kernel level).
func TestFixedTracksFloatQuick(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		dim := r.Intn(64) + 1
		a, b := make([]float32, dim), make([]float32, dim)
		for i := range a {
			a[i] = float32(r.NormFloat64() * 4)
			b[i] = float32(r.NormFloat64() * 4)
		}
		fl := SquaredL2(a, b)
		fx := float64(SquaredL2Fixed(ToFixedVec(a), ToFixedVec(b))) / float64(1<<32)
		return math.Abs(fl-fx) <= 1e-3*(1+fl)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: fixed-point ranking agrees with float ranking except in
// genuine near-ties (differences below the quantization floor).
func TestFixedRankingQuick(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		dim := r.Intn(32) + 1
		q, a, b := make([]float32, dim), make([]float32, dim), make([]float32, dim)
		for i := 0; i < dim; i++ {
			q[i] = float32(r.NormFloat64())
			a[i] = float32(r.NormFloat64())
			b[i] = float32(r.NormFloat64())
		}
		fa, fb := SquaredL2(q, a), SquaredL2(q, b)
		if math.Abs(fa-fb) < 1e-3 { // near-tie: either order acceptable
			return true
		}
		xa := SquaredL2Fixed(ToFixedVec(q), ToFixedVec(a))
		xb := SquaredL2Fixed(ToFixedVec(q), ToFixedVec(b))
		return (fa < fb) == (xa < xb)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestFixedVecRoundTrip(t *testing.T) {
	in := []float32{0.25, -3.5, 7}
	out := FromFixedVec(ToFixedVec(in))
	for i := range in {
		if out[i] != in[i] {
			t.Errorf("index %d: %v != %v", i, out[i], in[i])
		}
	}
}
