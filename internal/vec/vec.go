// Package vec implements the distance kernels at the heart of k-nearest
// neighbor search as characterized in Section II of the SSAM paper:
// Euclidean (squared L2), Manhattan, cosine, Hamming, Chi-squared and
// Jaccard distances over float32, 32-bit fixed-point and binarized
// vector representations.
//
// All float kernels accumulate in float64 for stability and return
// float64 so that the same top-k machinery can rank results from any
// metric. Squared Euclidean distance is used in place of Euclidean
// distance: it is monotone in the true distance, so nearest-neighbor
// ranking is unchanged and the square root is avoided, exactly as real
// kNN libraries (FLANN) do.
package vec

import "math"

// Metric identifies a distance function. The zero value is Euclidean.
type Metric int

const (
	// Euclidean is squared L2 distance (ranking-equivalent to L2).
	Euclidean Metric = iota
	// Manhattan is L1 distance.
	Manhattan
	// Cosine is cosine distance, 1 - cos(a, b).
	Cosine
	// HammingMetric is bit-difference count over binarized vectors.
	HammingMetric
	// ChiSquared is the Chi-squared histogram distance.
	ChiSquared
	// JaccardMetric is 1 - weighted Jaccard similarity.
	JaccardMetric
)

// String returns the metric's conventional name.
func (m Metric) String() string {
	switch m {
	case Euclidean:
		return "euclidean"
	case Manhattan:
		return "manhattan"
	case Cosine:
		return "cosine"
	case HammingMetric:
		return "hamming"
	case ChiSquared:
		return "chi2"
	case JaccardMetric:
		return "jaccard"
	}
	return "unknown"
}

// Distance dispatches to the float32 kernel for m. Hamming is not a
// float metric; calling Distance with HammingMetric panics. Use
// Hamming on binarized vectors instead.
func Distance(m Metric, a, b []float32) float64 {
	switch m {
	case Euclidean:
		return SquaredL2(a, b)
	case Manhattan:
		return L1(a, b)
	case Cosine:
		return CosineDistance(a, b)
	case ChiSquared:
		return Chi2(a, b)
	case JaccardMetric:
		return JaccardDistance(a, b)
	}
	panic("vec: no float kernel for metric " + m.String())
}

// SquaredL2 returns the squared Euclidean distance between a and b.
// The slices must have equal length.
func SquaredL2(a, b []float32) float64 {
	checkLen(a, b)
	var acc float64
	for i := range a {
		d := float64(a[i]) - float64(b[i])
		acc += d * d
	}
	return acc
}

// L1 returns the Manhattan distance between a and b.
func L1(a, b []float32) float64 {
	checkLen(a, b)
	var acc float64
	for i := range a {
		acc += math.Abs(float64(a[i]) - float64(b[i]))
	}
	return acc
}

// Dot returns the inner product of a and b.
func Dot(a, b []float32) float64 {
	checkLen(a, b)
	var acc float64
	for i := range a {
		acc += float64(a[i]) * float64(b[i])
	}
	return acc
}

// Norm returns the Euclidean norm of a.
func Norm(a []float32) float64 {
	var acc float64
	for _, v := range a {
		acc += float64(v) * float64(v)
	}
	return math.Sqrt(acc)
}

// CosineDistance returns 1 - cos(a, b). A zero vector has undefined
// cosine similarity; by convention its distance to anything is 1.
func CosineDistance(a, b []float32) float64 {
	checkLen(a, b)
	var dot, na, nb float64
	for i := range a {
		x, y := float64(a[i]), float64(b[i])
		dot += x * y
		na += x * x
		nb += y * y
	}
	if na == 0 || nb == 0 {
		return 1
	}
	return 1 - dot/math.Sqrt(na*nb)
}

// Chi2 returns the Chi-squared distance, sum((a-b)^2 / (a+b)) over
// dimensions where a+b != 0. It is intended for histogram-like
// non-negative vectors.
func Chi2(a, b []float32) float64 {
	checkLen(a, b)
	var acc float64
	for i := range a {
		x, y := float64(a[i]), float64(b[i])
		s := x + y
		if s == 0 {
			continue
		}
		d := x - y
		acc += d * d / s
	}
	return acc
}

// JaccardDistance returns 1 - sum(min(a,b))/sum(max(a,b)), the weighted
// Jaccard distance for non-negative vectors. Two zero vectors have
// distance 0.
func JaccardDistance(a, b []float32) float64 {
	checkLen(a, b)
	var num, den float64
	for i := range a {
		x, y := float64(a[i]), float64(b[i])
		if x < y {
			num += x
			den += y
		} else {
			num += y
			den += x
		}
	}
	if den == 0 {
		return 0
	}
	return 1 - num/den
}

func checkLen(a, b []float32) {
	if len(a) != len(b) {
		panic("vec: dimension mismatch")
	}
}
