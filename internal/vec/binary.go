package vec

import "math/bits"

// Binary (Hamming-space) representations, Section II-D: "Binarization
// techniques trade accuracy for higher throughput ... Binarization also
// enables Hamming distance calculations which are cheaper to implement
// in hardware." The SSAM's FXP instruction fuses a 32-bit XOR with a
// population count; Fxp32 below is the software-visible semantics of
// that hardware unit.

// Binary is a packed bit vector. Bit i of the conceptual vector is bit
// (i % 64) of word i/64. Dim records the number of meaningful bits.
type Binary struct {
	Words []uint64
	Dim   int
}

// NewBinary returns an all-zero binary vector with dim bits.
func NewBinary(dim int) Binary {
	return Binary{Words: make([]uint64, (dim+63)/64), Dim: dim}
}

// Set sets bit i to v.
func (b Binary) Set(i int, v bool) {
	if v {
		b.Words[i/64] |= 1 << (uint(i) % 64)
	} else {
		b.Words[i/64] &^= 1 << (uint(i) % 64)
	}
}

// Bit reports whether bit i is set.
func (b Binary) Bit(i int) bool {
	return b.Words[i/64]&(1<<(uint(i)%64)) != 0
}

// Hamming returns the number of differing bits between a and b. The
// vectors must have the same dimensionality.
func Hamming(a, b Binary) int {
	if a.Dim != b.Dim {
		panic("vec: dimension mismatch")
	}
	var acc int
	for i := range a.Words {
		acc += bits.OnesCount64(a.Words[i] ^ b.Words[i])
	}
	return acc
}

// Fxp32 is the semantics of the SSAM FXP instruction: a fused
// xor-popcount over one 32-bit word, treating the word as 32 dimensions
// of a binary vector, accumulated into acc.
func Fxp32(acc uint32, a, b uint32) uint32 {
	return acc + uint32(bits.OnesCount32(a^b))
}

// SignBinarize converts a float vector to a binary vector by
// thresholding each dimension against the given per-dimension
// thresholds (typically the dataset mean). If thresholds is nil, zero
// is used for every dimension.
func SignBinarize(v []float32, thresholds []float32) Binary {
	b := NewBinary(len(v))
	for i, x := range v {
		var t float32
		if thresholds != nil {
			t = thresholds[i]
		}
		if x > t {
			b.Set(i, true)
		}
	}
	return b
}

// HyperplaneBinarize produces an nbits-bit code for v: bit j is the
// sign of the dot product of v with hyperplane j. planes must hold
// nbits rows of len(v) coefficients. This is the binarization behind
// both Hamming-space codes (II-D) and hyperplane LSH hashes (II-C).
func HyperplaneBinarize(v []float32, planes [][]float32) Binary {
	b := NewBinary(len(planes))
	for j, p := range planes {
		if Dot(v, p) >= 0 {
			b.Set(j, true)
		}
	}
	return b
}

// PopCount returns the number of set bits in b.
func (b Binary) PopCount() int {
	var acc int
	for _, w := range b.Words {
		acc += bits.OnesCount64(w)
	}
	return acc
}
