package vec

// 32-bit fixed-point support (Section II-D of the paper: "we converted
// each dataset to a 32-bit fixed-point representation ... negligible
// accuracy loss between 32-bit floating-point and 32-bit fixed-point").
//
// The representation is Q16.16: value = raw / 65536. Feature vectors in
// the paper's datasets (word embeddings, GIST, AlexNet activations) are
// small-magnitude, so 16 integer bits are ample. Distance accumulation
// is done in int64; with |raw diff| < 2^24 (values within ±128) and up
// to 2^13 = 8192 dimensions, the squared-L2 accumulator stays below
// 2^61 and cannot overflow.

// FixedShift is the number of fractional bits in the Q16.16 format.
const FixedShift = 16

// FixedOne is the fixed-point encoding of 1.0.
const FixedOne int32 = 1 << FixedShift

// ToFixed converts a float to Q16.16 with rounding toward nearest.
// Values outside the representable range saturate; NaN maps to zero
// (the int32(NaN) conversion result is platform-dependent, and a
// deterministic image keeps device layouts bit-identical across
// hosts).
func ToFixed(v float32) int32 {
	f := float64(v) * float64(FixedOne)
	switch {
	case f != f:
		return 0
	case f >= 2147483647:
		return 2147483647
	case f <= -2147483648:
		return -2147483648
	case f >= 0:
		return int32(f + 0.5)
	default:
		return int32(f - 0.5)
	}
}

// FromFixed converts a Q16.16 value back to float32.
func FromFixed(v int32) float32 {
	return float32(v) / float32(FixedOne)
}

// ToFixedVec converts a float vector to Q16.16.
func ToFixedVec(v []float32) []int32 {
	out := make([]int32, len(v))
	for i, x := range v {
		out[i] = ToFixed(x)
	}
	return out
}

// FromFixedVec converts a Q16.16 vector back to float32.
func FromFixedVec(v []int32) []float32 {
	out := make([]float32, len(v))
	for i, x := range v {
		out[i] = FromFixed(x)
	}
	return out
}

// SquaredL2Fixed returns the squared Euclidean distance between two
// Q16.16 vectors, in raw units (the true squared distance times 2^32).
// Since the scale factor is constant it preserves kNN ranking.
func SquaredL2Fixed(a, b []int32) int64 {
	if len(a) != len(b) {
		panic("vec: dimension mismatch")
	}
	var acc int64
	for i := range a {
		d := int64(a[i]) - int64(b[i])
		acc += d * d
	}
	return acc
}

// L1Fixed returns the Manhattan distance between two Q16.16 vectors in
// raw units (true distance times 2^16).
func L1Fixed(a, b []int32) int64 {
	if len(a) != len(b) {
		panic("vec: dimension mismatch")
	}
	var acc int64
	for i := range a {
		d := int64(a[i]) - int64(b[i])
		if d < 0 {
			d = -d
		}
		acc += d
	}
	return acc
}
