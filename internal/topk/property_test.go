package topk

// Property tests holding Selector and MergeSorted to the naive
// sort-and-truncate oracle across randomized sizes, heavy distance
// ties, boundary k values, and arbitrary shard splits — the
// correctness contract the sharded scatter-gather layer leans on.

import (
	"math/rand"
	"reflect"
	"testing"
)

// oracle is the naive reference: sort everything under the total
// order (ascending distance, ties by ascending id) and truncate to k.
func oracle(k int, all []Result) []Result {
	sorted := append([]Result(nil), all...)
	SortResults(sorted)
	if len(sorted) > k {
		sorted = sorted[:k]
	}
	return sorted
}

// randomCandidates draws n candidates with unique ids and distances
// from a small discrete set, so duplicate distances (and boundary
// ties) are the common case rather than the exception.
func randomCandidates(rng *rand.Rand, n int) []Result {
	out := make([]Result, n)
	perm := rng.Perm(n * 2) // unique ids, not necessarily dense
	for i := range out {
		out[i] = Result{ID: perm[i], Dist: float64(rng.Intn(8)) / 4}
	}
	return out
}

// kValues covers the boundary cases for n candidates: 1, n-1, n, and
// beyond n.
func kValues(n int) []int {
	ks := []int{1, n + 3}
	if n > 1 {
		ks = append(ks, n-1, n)
	}
	return ks
}

// TestSelectorMatchesOracle pushes random candidate streams through
// the Selector and requires exact oracle equality — ids included.
// Since the Selector admits and evicts under the total order
// (ascending distance, ties by ascending id), boundary ties must
// resolve to the lowest ids regardless of arrival order; this is the
// property the vault-parallel engines build their serial/parallel
// equivalence on.
func TestSelectorMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(64)
		cands := randomCandidates(rng, n)
		for _, k := range kValues(n) {
			s := New(k)
			for _, c := range cands {
				s.Push(c.ID, c.Dist)
			}
			got := s.Results()
			want := oracle(k, cands)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("n=%d k=%d:\ngot  %v\nwant %v", n, k, got, want)
			}
		}
	}
}

// TestSelectorPushOrderInvariant pushes the same candidate set in
// shuffled orders and requires bit-identical retained sets every time.
func TestSelectorPushOrderInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 100; trial++ {
		n := 2 + rng.Intn(48)
		cands := randomCandidates(rng, n)
		k := 1 + rng.Intn(n+2)
		base := oracle(k, cands)
		for p := 0; p < 5; p++ {
			perm := rng.Perm(n)
			s := New(k)
			for _, pi := range perm {
				s.Push(cands[pi].ID, cands[pi].Dist)
			}
			if got := s.Results(); !reflect.DeepEqual(got, base) {
				t.Fatalf("selector depends on push order:\nperm %v\ngot  %v\nwant %v", perm, got, base)
			}
		}
	}
}

// TestMergeSortedMatchesOracle splits random candidate sets into
// random shards, merges the per-shard top-k lists, and requires exact
// oracle equality — including ids on distance ties, which MergeSorted
// resolves by the total order.
func TestMergeSortedMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(80)
		cands := randomCandidates(rng, n)
		shards := 1 + rng.Intn(6)
		for _, k := range kValues(n) {
			// Partition candidates across shards at random, then take
			// each shard's local top-k — exactly what the cluster layer
			// feeds the merge.
			lists := make([][]Result, shards)
			for _, c := range cands {
				si := rng.Intn(shards)
				lists[si] = append(lists[si], c)
			}
			for si := range lists {
				lists[si] = oracle(k, lists[si])
			}
			got := MergeSorted(k, lists...)
			want := oracle(k, cands)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("n=%d k=%d shards=%d:\ngot  %v\nwant %v", n, k, shards, got, want)
			}
		}
	}
}

// TestMergeSortedOrderIndependent merges the same shard lists in
// shuffled orders and requires bit-identical output every time —
// determinism under input reordering is what makes degraded sharded
// responses reproducible.
func TestMergeSortedOrderIndependent(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 100; trial++ {
		n := 2 + rng.Intn(60)
		k := 1 + rng.Intn(n+4)
		cands := randomCandidates(rng, n)
		shards := 2 + rng.Intn(5)
		lists := make([][]Result, shards)
		for _, c := range cands {
			si := rng.Intn(shards)
			lists[si] = append(lists[si], c)
		}
		base := MergeSorted(k, lists...)
		for p := 0; p < 5; p++ {
			perm := rng.Perm(shards)
			shuffled := make([][]Result, shards)
			for i, pi := range perm {
				shuffled[i] = lists[pi]
			}
			if got := MergeSorted(k, shuffled...); !reflect.DeepEqual(got, base) {
				t.Fatalf("merge depends on list order:\nperm %v\ngot  %v\nwant %v", perm, got, base)
			}
		}
	}
}

// TestMergeSortedSplitInvariant re-partitions one candidate set two
// different ways and requires the same global top-k from both — the
// cluster-vs-region equivalence property.
func TestMergeSortedSplitInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 100; trial++ {
		n := 2 + rng.Intn(60)
		k := 1 + rng.Intn(n)
		cands := randomCandidates(rng, n)
		split := func(shards int) [][]Result {
			lists := make([][]Result, shards)
			for _, c := range cands {
				si := rng.Intn(shards)
				lists[si] = append(lists[si], c)
			}
			for si := range lists {
				lists[si] = oracle(k, lists[si])
			}
			return lists
		}
		a := MergeSorted(k, split(1+rng.Intn(6))...)
		b := MergeSorted(k, split(1+rng.Intn(6))...)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("different partitions give different top-k:\na %v\nb %v", a, b)
		}
	}
}
