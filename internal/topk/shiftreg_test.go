package topk

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestShiftRegisterBasic(t *testing.T) {
	q := NewShiftRegisterQueue(4)
	for id, v := range []int64{9, 3, 7, 5, 1, 8} {
		q.Insert(int32(id), v)
	}
	// Smallest four of {9,3,7,5,1,8} are 1,3,5,7 with ids 4,1,3,2.
	wantIDs := []int32{4, 1, 3, 2}
	wantVals := []int64{1, 3, 5, 7}
	for i := range wantIDs {
		id, v, ok := q.Load(i)
		if !ok || id != wantIDs[i] || v != wantVals[i] {
			t.Fatalf("Load(%d) = %d,%d,%v; want %d,%d", i, id, v, ok, wantIDs[i], wantVals[i])
		}
	}
}

func TestShiftRegisterLoadOutOfRange(t *testing.T) {
	q := NewShiftRegisterQueue(4)
	q.Insert(1, 10)
	if _, _, ok := q.Load(1); ok {
		t.Fatal("Load past occupancy succeeded")
	}
	if _, _, ok := q.Load(-1); ok {
		t.Fatal("Load(-1) succeeded")
	}
}

func TestShiftRegisterCycles(t *testing.T) {
	q := NewShiftRegisterQueue(16)
	for i := 0; i < 100; i++ {
		q.Insert(int32(i), int64(100-i))
	}
	q.Load(0)
	q.Reset()
	// 100 inserts + 1 load + 1 reset: the hardware queue is
	// constant-time per operation.
	if got := q.Cycles(); got != 102 {
		t.Fatalf("Cycles = %d, want 102", got)
	}
	if q.Len() != 0 {
		t.Fatal("Reset did not clear")
	}
}

func TestShiftRegisterStages(t *testing.T) {
	cases := []struct{ depth, stages int }{
		{1, 1}, {16, 1}, {17, 2}, {32, 2}, {33, 3},
	}
	for _, c := range cases {
		if got := NewShiftRegisterQueue(c.depth).Stages(); got != c.stages {
			t.Errorf("Stages(depth=%d) = %d, want %d", c.depth, got, c.stages)
		}
	}
}

func TestShiftRegisterBadDepthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on depth 0")
		}
	}()
	NewShiftRegisterQueue(0)
}

// Property: the hardware queue and the software selector agree on the
// retained distance multiset for any input stream.
func TestShiftRegisterMatchesSelectorQuick(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		depth := r.Intn(20) + 1
		n := r.Intn(300)
		q := NewShiftRegisterQueue(depth)
		s := New(depth)
		for i := 0; i < n; i++ {
			v := int64(r.Intn(1000))
			q.Insert(int32(i), v)
			s.Push(i, float64(v))
		}
		hw := q.Results()
		sw := s.Results()
		if len(hw) != len(sw) {
			return false
		}
		for i := range hw {
			if hw[i].Dist != sw[i].Dist {
				return false
			}
		}
		// Queue contents must be sorted ascending.
		for i := 1; i < len(hw); i++ {
			if hw[i].Dist < hw[i-1].Dist {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSoftwareQueueInsertCost(t *testing.T) {
	if got := SoftwareQueueInsertCost(16, true); got != 24 {
		t.Fatalf("admitted cost = %d, want 24", got)
	}
	if got := SoftwareQueueInsertCost(16, false); got != 6 {
		t.Fatalf("rejected cost = %d, want 6", got)
	}
}
