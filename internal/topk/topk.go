// Package topk implements the global top-k reduction of kNN: a bounded
// software selector (max-heap) used by the algorithm engines, and a
// cycle-annotated model of the shift-register hardware priority queue
// the SSAM accelerator instantiates (Section III-C, after Moon et
// al.'s scalable hardware priority queues).
package topk

import "sort"

// Result is one neighbor candidate: the database id and its distance
// under whatever metric the engine used (lower is closer).
type Result struct {
	ID   int
	Dist float64
}

// Selector keeps the k smallest-distance results seen so far using a
// bounded binary max-heap. The zero value is not usable; call New.
type Selector struct {
	k    int
	heap []Result // max-heap on Dist
}

// New returns a Selector that retains the k closest results. k must be
// positive.
func New(k int) *Selector {
	if k <= 0 {
		panic("topk: k must be positive")
	}
	return &Selector{k: k, heap: make([]Result, 0, k)}
}

// K returns the selector's capacity.
func (s *Selector) K() int { return s.k }

// Len returns how many results are currently held.
func (s *Selector) Len() int { return len(s.heap) }

// Bound returns the current k-th smallest distance, i.e. the threshold
// a new candidate must beat to be admitted once the selector is full.
// Before the selector is full it returns +Inf semantics via ok=false.
func (s *Selector) Bound() (dist float64, ok bool) {
	if len(s.heap) < s.k {
		return 0, false
	}
	return s.heap[0].Dist, true
}

// Push offers a candidate. It returns true if the candidate was kept.
func (s *Selector) Push(id int, dist float64) bool {
	if len(s.heap) < s.k {
		s.heap = append(s.heap, Result{ID: id, Dist: dist})
		s.siftUp(len(s.heap) - 1)
		return true
	}
	if dist >= s.heap[0].Dist {
		return false
	}
	s.heap[0] = Result{ID: id, Dist: dist}
	s.siftDown(0)
	return true
}

// Results returns the retained results sorted by ascending distance,
// ties broken by ascending id for determinism. The selector remains
// usable afterwards.
func (s *Selector) Results() []Result {
	out := make([]Result, len(s.heap))
	copy(out, s.heap)
	SortResults(out)
	return out
}

// Reset empties the selector, retaining capacity.
func (s *Selector) Reset() { s.heap = s.heap[:0] }

func (s *Selector) siftUp(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if s.heap[p].Dist >= s.heap[i].Dist {
			return
		}
		s.heap[p], s.heap[i] = s.heap[i], s.heap[p]
		i = p
	}
}

func (s *Selector) siftDown(i int) {
	n := len(s.heap)
	for {
		l, r := 2*i+1, 2*i+2
		big := i
		if l < n && s.heap[l].Dist > s.heap[big].Dist {
			big = l
		}
		if r < n && s.heap[r].Dist > s.heap[big].Dist {
			big = r
		}
		if big == i {
			return
		}
		s.heap[i], s.heap[big] = s.heap[big], s.heap[i]
		i = big
	}
}

// SortResults sorts results by ascending distance, then ascending id.
func SortResults(rs []Result) {
	sort.Slice(rs, func(i, j int) bool {
		if rs[i].Dist != rs[j].Dist {
			return rs[i].Dist < rs[j].Dist
		}
		return rs[i].ID < rs[j].ID
	})
}

// Merge combines per-partition top-k lists (each already sorted or not)
// into the global top-k, the "final set of global top-k reductions on
// the host processor" from Section III-D.
func Merge(k int, lists ...[]Result) []Result {
	s := New(k)
	for _, l := range lists {
		for _, r := range l {
			s.Push(r.ID, r.Dist)
		}
	}
	return s.Results()
}

// MergeSorted combines per-partition top-k lists into the global top-k
// under the total order (ascending distance, ties by ascending id).
// Unlike Merge, whose boundary tie-breaking depends on push order, the
// result is independent of list order and of how candidates were
// partitioned — the property the sharded scatter-gather layer
// (internal/cluster) needs for cluster-vs-region equivalence.
func MergeSorted(k int, lists ...[]Result) []Result {
	total := 0
	for _, l := range lists {
		total += len(l)
	}
	all := make([]Result, 0, total)
	for _, l := range lists {
		all = append(all, l...)
	}
	SortResults(all)
	if len(all) > k {
		all = all[:k]
	}
	return all
}
