// Package topk implements the global top-k reduction of kNN: a bounded
// software selector (max-heap) used by the algorithm engines, and a
// cycle-annotated model of the shift-register hardware priority queue
// the SSAM accelerator instantiates (Section III-C, after Moon et
// al.'s scalable hardware priority queues).
package topk

import "sort"

// Result is one neighbor candidate: the database id and its distance
// under whatever metric the engine used (lower is closer).
type Result struct {
	ID   int
	Dist float64
}

// Selector keeps the k smallest results seen so far using a bounded
// binary max-heap ordered by the total order (ascending distance, ties
// by ascending id). Because admission and eviction both follow the
// total order, the retained set is exactly the k smallest candidates
// of the stream — independent of push order, and therefore identical
// whether one selector scans a whole database or per-vault selectors
// scan contiguous slices that are merged with MergeSorted. That
// push-order independence is the property the vault-parallel engines
// (internal/knn) and the sharded scatter-gather layer
// (internal/cluster) lean on for bit-exact equivalence with a serial
// scan. The zero value is not usable; call New.
type Selector struct {
	k    int
	heap []Result // max-heap under worse (Dist, then ID)
}

// worse reports whether a ranks strictly after b under the total order
// (ascending distance, ties by ascending id) — i.e. a is the worse
// candidate of the two.
func worse(a, b Result) bool {
	if a.Dist != b.Dist {
		return a.Dist > b.Dist
	}
	return a.ID > b.ID
}

// New returns a Selector that retains the k closest results. k must be
// positive.
func New(k int) *Selector {
	if k <= 0 {
		panic("topk: k must be positive")
	}
	return &Selector{k: k, heap: make([]Result, 0, k)}
}

// K returns the selector's capacity.
func (s *Selector) K() int { return s.k }

// Len returns how many results are currently held.
func (s *Selector) Len() int { return len(s.heap) }

// Bound returns the current k-th smallest distance, i.e. the threshold
// a new candidate must beat (or tie while carrying a smaller id) to be
// admitted once the selector is full. Before the selector is full it
// returns +Inf semantics via ok=false.
func (s *Selector) Bound() (dist float64, ok bool) {
	if len(s.heap) < s.k {
		return 0, false
	}
	return s.heap[0].Dist, true
}

// Push offers a candidate. It returns true if the candidate was kept.
// Once the selector is full a candidate displaces the current worst
// exactly when it precedes it under the total order (smaller distance,
// or equal distance and smaller id), so boundary ties resolve to the
// lowest ids no matter the arrival order.
func (s *Selector) Push(id int, dist float64) bool {
	c := Result{ID: id, Dist: dist}
	if len(s.heap) < s.k {
		s.heap = append(s.heap, c)
		s.siftUp(len(s.heap) - 1)
		return true
	}
	if !worse(s.heap[0], c) {
		return false
	}
	s.heap[0] = c
	s.siftDown(0)
	return true
}

// Results returns the retained results sorted by ascending distance,
// ties broken by ascending id for determinism. The selector remains
// usable afterwards.
func (s *Selector) Results() []Result {
	out := make([]Result, len(s.heap))
	copy(out, s.heap)
	SortResults(out)
	return out
}

// Reset empties the selector, retaining capacity.
func (s *Selector) Reset() { s.heap = s.heap[:0] }

func (s *Selector) siftUp(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if !worse(s.heap[i], s.heap[p]) {
			return
		}
		s.heap[p], s.heap[i] = s.heap[i], s.heap[p]
		i = p
	}
}

func (s *Selector) siftDown(i int) {
	n := len(s.heap)
	for {
		l, r := 2*i+1, 2*i+2
		big := i
		if l < n && worse(s.heap[l], s.heap[big]) {
			big = l
		}
		if r < n && worse(s.heap[r], s.heap[big]) {
			big = r
		}
		if big == i {
			return
		}
		s.heap[i], s.heap[big] = s.heap[big], s.heap[i]
		i = big
	}
}

// SortResults sorts results by ascending distance, then ascending id.
func SortResults(rs []Result) {
	sort.Slice(rs, func(i, j int) bool {
		if rs[i].Dist != rs[j].Dist {
			return rs[i].Dist < rs[j].Dist
		}
		return rs[i].ID < rs[j].ID
	})
}

// Merge combines per-partition top-k lists (each already sorted or not)
// into the global top-k, the "final set of global top-k reductions on
// the host processor" from Section III-D.
func Merge(k int, lists ...[]Result) []Result {
	s := New(k)
	for _, l := range lists {
		for _, r := range l {
			s.Push(r.ID, r.Dist)
		}
	}
	return s.Results()
}

// MergeSorted combines per-partition top-k lists into the global top-k
// under the total order (ascending distance, ties by ascending id).
// Unlike Merge, whose boundary tie-breaking depends on push order, the
// result is independent of list order and of how candidates were
// partitioned — the property the sharded scatter-gather layer
// (internal/cluster) needs for cluster-vs-region equivalence.
func MergeSorted(k int, lists ...[]Result) []Result {
	total := 0
	for _, l := range lists {
		total += len(l)
	}
	all := make([]Result, 0, total)
	for _, l := range lists {
		all = append(all, l...)
	}
	SortResults(all)
	if len(all) > k {
		all = all[:k]
	}
	return all
}
