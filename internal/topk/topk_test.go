package topk

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestSelectorBasic(t *testing.T) {
	s := New(3)
	for id, d := range []float64{5, 1, 4, 2, 3} {
		s.Push(id, d)
	}
	got := s.Results()
	if len(got) != 3 {
		t.Fatalf("len = %d, want 3", len(got))
	}
	wantIDs := []int{1, 3, 4} // distances 1, 2, 3
	for i, w := range wantIDs {
		if got[i].ID != w {
			t.Errorf("result %d = %+v, want id %d", i, got[i], w)
		}
	}
}

func TestSelectorUnderfilled(t *testing.T) {
	s := New(10)
	s.Push(7, 0.5)
	got := s.Results()
	if len(got) != 1 || got[0].ID != 7 {
		t.Fatalf("Results = %v", got)
	}
	if _, ok := s.Bound(); ok {
		t.Fatal("Bound ok on underfilled selector")
	}
}

func TestSelectorBound(t *testing.T) {
	s := New(2)
	s.Push(0, 10)
	s.Push(1, 20)
	d, ok := s.Bound()
	if !ok || d != 20 {
		t.Fatalf("Bound = %v, %v; want 20, true", d, ok)
	}
	if s.Push(2, 25) {
		t.Fatal("admitted candidate worse than bound")
	}
	if !s.Push(3, 5) {
		t.Fatal("rejected candidate better than bound")
	}
	d, _ = s.Bound()
	if d != 10 {
		t.Fatalf("Bound after push = %v, want 10", d)
	}
}

func TestSelectorReset(t *testing.T) {
	s := New(2)
	s.Push(0, 1)
	s.Reset()
	if s.Len() != 0 {
		t.Fatal("Reset did not clear")
	}
	s.Push(9, 9)
	if got := s.Results(); len(got) != 1 || got[0].ID != 9 {
		t.Fatalf("Results after reset = %v", got)
	}
}

func TestNewPanicsOnBadK(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(0) did not panic")
		}
	}()
	New(0)
}

func TestDeterministicTieBreak(t *testing.T) {
	s := New(2)
	s.Push(5, 1)
	s.Push(2, 1)
	s.Push(9, 1)
	got := s.Results()
	if got[0].ID > got[1].ID {
		t.Fatalf("ties not id-ordered: %v", got)
	}
}

// Property: the selector returns exactly the k smallest distances of
// the stream, matching a full sort.
func TestSelectorMatchesSortQuick(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := r.Intn(200) + 1
		k := r.Intn(20) + 1
		dists := make([]float64, n)
		s := New(k)
		for i := range dists {
			dists[i] = float64(r.Intn(50)) // duplicates likely
			s.Push(i, dists[i])
		}
		got := s.Results()
		want := make([]Result, n)
		for i, d := range dists {
			want[i] = Result{ID: i, Dist: d}
		}
		SortResults(want)
		if k > n {
			k = n
		}
		want = want[:k]
		if len(got) != len(want) {
			return false
		}
		// Distances must match exactly; ids may differ among equal
		// distances only at the truncation boundary.
		for i := range got {
			if got[i].Dist != want[i].Dist {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestMerge(t *testing.T) {
	a := []Result{{ID: 1, Dist: 1}, {ID: 2, Dist: 4}}
	b := []Result{{ID: 3, Dist: 2}, {ID: 4, Dist: 3}}
	got := Merge(3, a, b)
	wantIDs := []int{1, 3, 4}
	if len(got) != 3 {
		t.Fatalf("Merge len = %d", len(got))
	}
	for i, w := range wantIDs {
		if got[i].ID != w {
			t.Errorf("Merge[%d] = %+v, want id %d", i, got[i], w)
		}
	}
}

// Property: merging partitioned streams equals selecting over the
// union — the host-side global reduction is lossless.
func TestMergePartitionQuick(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := r.Intn(300) + 10
		k := r.Intn(16) + 1
		parts := r.Intn(7) + 1
		all := New(k)
		lists := make([][]Result, parts)
		sels := make([]*Selector, parts)
		for p := range sels {
			sels[p] = New(k)
		}
		for i := 0; i < n; i++ {
			d := r.Float64()
			all.Push(i, d)
			sels[i%parts].Push(i, d)
		}
		for p := range sels {
			lists[p] = sels[p].Results()
		}
		got := Merge(k, lists...)
		want := all.Results()
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestSortResultsStable(t *testing.T) {
	rs := []Result{{3, 2}, {1, 2}, {2, 1}}
	SortResults(rs)
	if !sort.SliceIsSorted(rs, func(i, j int) bool {
		if rs[i].Dist != rs[j].Dist {
			return rs[i].Dist < rs[j].Dist
		}
		return rs[i].ID < rs[j].ID
	}) {
		t.Fatalf("not sorted: %v", rs)
	}
}

func TestMergeSortedDeterministic(t *testing.T) {
	a := []Result{{ID: 0, Dist: 1}, {ID: 4, Dist: 3}}
	b := []Result{{ID: 2, Dist: 1}, {ID: 1, Dist: 3}, {ID: 9, Dist: 3}}
	want := []Result{{ID: 0, Dist: 1}, {ID: 2, Dist: 1}, {ID: 1, Dist: 3}}
	for _, lists := range [][][]Result{{a, b}, {b, a}} {
		got := MergeSorted(3, lists...)
		if len(got) != len(want) {
			t.Fatalf("MergeSorted returned %v, want %v", got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("MergeSorted returned %v, want %v (list order %v)", got, want, lists)
			}
		}
	}
}

func TestMergeSortedShort(t *testing.T) {
	got := MergeSorted(10, []Result{{ID: 1, Dist: 2}}, nil, []Result{{ID: 0, Dist: 1}})
	if len(got) != 2 || got[0].ID != 0 || got[1].ID != 1 {
		t.Fatalf("MergeSorted with fewer candidates than k = %v", got)
	}
}
