package topk

// ShiftRegisterQueue models the SSAM's hardware priority queue: a
// 16-entry shift-register priority queue (Moon, Shin, Rexford [36])
// that accepts an (id, value) tuple per cycle, keeps entries sorted by
// value, and can be chained to support larger k (Section III-C:
// "Because of its modular design, the priority queues can be chained
// to support larger k values."). Each Insert costs one cycle
// regardless of queue occupancy — that is the whole point of the
// hardware unit versus a software heap — and each Load costs one
// cycle. The queue keeps the k *smallest* values.
type ShiftRegisterQueue struct {
	depth   int
	ids     []int32
	vals    []int64
	n       int
	cycles  uint64
	enabled bool
}

// QueueDepth is the depth of one physical priority queue stage in the
// SSAM design.
const QueueDepth = 16

// NewShiftRegisterQueue returns a queue of the given total depth.
// Depths larger than QueueDepth model chained stages; the depth must
// be a positive multiple of QueueDepth or exactly the requested k when
// smaller queues are disabled (chained stages can be disabled if not
// needed).
func NewShiftRegisterQueue(depth int) *ShiftRegisterQueue {
	if depth <= 0 {
		panic("topk: queue depth must be positive")
	}
	return &ShiftRegisterQueue{
		depth:   depth,
		ids:     make([]int32, depth),
		vals:    make([]int64, depth),
		enabled: true,
	}
}

// Stages returns how many physical 16-entry stages this queue chains.
func (q *ShiftRegisterQueue) Stages() int {
	return (q.depth + QueueDepth - 1) / QueueDepth
}

// Depth returns the queue's usable depth.
func (q *ShiftRegisterQueue) Depth() int { return q.depth }

// Len returns the number of valid entries.
func (q *ShiftRegisterQueue) Len() int { return q.n }

// Cycles returns the number of hardware cycles consumed so far.
func (q *ShiftRegisterQueue) Cycles() uint64 { return q.cycles }

// Insert offers an (id, value) tuple; smaller values are closer. The
// entry displaced off the end, if any, is discarded. One cycle.
func (q *ShiftRegisterQueue) Insert(id int32, val int64) {
	q.cycles++
	// Find insertion point: entries are sorted ascending by value. In
	// hardware every stage compares in parallel; the software model
	// just shifts.
	if q.n == q.depth && val >= q.vals[q.n-1] {
		return
	}
	i := q.n
	if i == q.depth {
		i = q.depth - 1
	}
	for i > 0 && q.vals[i-1] > val {
		q.vals[i] = q.vals[i-1]
		q.ids[i] = q.ids[i-1]
		i--
	}
	q.vals[i] = val
	q.ids[i] = id
	if q.n < q.depth {
		q.n++
	}
}

// Load returns the entry at position pos (0 = closest). One cycle.
// Loading an invalid position returns ok=false.
func (q *ShiftRegisterQueue) Load(pos int) (id int32, val int64, ok bool) {
	q.cycles++
	if pos < 0 || pos >= q.n {
		return 0, 0, false
	}
	return q.ids[pos], q.vals[pos], true
}

// Reset clears the queue. One cycle.
func (q *ShiftRegisterQueue) Reset() {
	q.cycles++
	q.n = 0
}

// Results drains the queue contents into Result form without
// consuming model cycles (a host-side convenience, not a hardware
// operation).
func (q *ShiftRegisterQueue) Results() []Result {
	out := make([]Result, q.n)
	for i := 0; i < q.n; i++ {
		out[i] = Result{ID: int(q.ids[i]), Dist: float64(q.vals[i])}
	}
	return out
}

// SoftwareQueueInsertCost returns the modeled instruction cost of one
// software priority-queue insert with the given queue depth, used by
// the §V-B priority-queue ablation. A software insert is a call into a
// bounded sorted-array routine held in the scratchpad: call overhead,
// loading the current bound, compare and branch (6 ops even when the
// candidate is rejected), plus on admission ~depth shifts of a
// two-word entry and the store (8 + depth ops).
func SoftwareQueueInsertCost(depth int, admitted bool) int {
	if admitted {
		return 8 + depth
	}
	return 6
}
