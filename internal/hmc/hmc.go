// Package hmc models the Hybrid Memory Cube 2.0 substrate the SSAM is
// built on (Section III-B): a die-stacked memory partitioned into 32
// vaults, each accessed through a 10 GB/s vault controller on the
// logic layer (320 GB/s aggregate internal bandwidth), with four
// external data links totaling 240 GB/s to the host. The model covers
// capacity, vault partitioning of a dataset, and streaming-time
// arithmetic; it is the bandwidth authority for the SSAM device model
// and the platform baselines.
package hmc

import "time"

// Config describes one memory module's bandwidth/capacity envelope.
type Config struct {
	Name string
	// Vaults is the number of independently accessible partitions
	// (32 in HMC 2.0; 1 models a conventional DRAM module).
	Vaults int
	// VaultBandwidth is bytes/second per vault controller.
	VaultBandwidth float64
	// ExternalLinks and LinkBandwidth (bytes/second each) describe the
	// host-facing serdes links.
	ExternalLinks int
	LinkBandwidth float64
	// CapacityBytes is the module capacity.
	CapacityBytes int64
}

// HMC2 returns the Hybrid Memory Cube 2.0 configuration used
// throughout the paper: 32 vaults x 10 GB/s = 320 GB/s internal,
// 4 links x 60 GB/s = 240 GB/s external, 8 GB capacity.
func HMC2() Config {
	return Config{
		Name:           "hmc2",
		Vaults:         32,
		VaultBandwidth: 10e9,
		ExternalLinks:  4,
		LinkBandwidth:  60e9,
		CapacityBytes:  8 << 30,
	}
}

// DDR4 returns the conventional-DRAM envelope the paper uses for the
// CPU baseline ("optimistically, standard DRAM modules provide up to
// 25 GB/s of memory bandwidth").
func DDR4() Config {
	return Config{
		Name:           "ddr4",
		Vaults:         1,
		VaultBandwidth: 25e9,
		ExternalLinks:  1,
		LinkBandwidth:  25e9,
		CapacityBytes:  16 << 30,
	}
}

// InternalBandwidth returns the aggregate vault-side bandwidth.
func (c Config) InternalBandwidth() float64 {
	return float64(c.Vaults) * c.VaultBandwidth
}

// ExternalBandwidth returns the aggregate host-link bandwidth.
func (c Config) ExternalBandwidth() float64 {
	return float64(c.ExternalLinks) * c.LinkBandwidth
}

// VaultStreamTime returns the time for one vault controller to stream
// n contiguous bytes.
func (c Config) VaultStreamTime(n int64) time.Duration {
	return time.Duration(float64(n) / c.VaultBandwidth * float64(time.Second))
}

// StreamTime returns the time to stream n bytes split evenly over all
// vaults in parallel — the best case for the large contiguous bucket
// scans of kNN.
func (c Config) StreamTime(n int64) time.Duration {
	return time.Duration(float64(n) / c.InternalBandwidth() * float64(time.Second))
}

// LinkTime returns the time to move n bytes across the external links,
// the cost of shipping results (or, for a host-side scan, the whole
// dataset) off the module.
func (c Config) LinkTime(n int64) time.Duration {
	return time.Duration(float64(n) / c.ExternalBandwidth() * float64(time.Second))
}

// Partition describes one vault's shard of a dataset of n items: the
// half-open item range [Start, End).
type Partition struct {
	Vault int
	Start int
	End   int
}

// PartitionItems splits n items across the module's vaults in
// contiguous, nearly equal ranges — the layout the SSAM uses so each
// accelerator streams its own vault ("most data accesses to memory are
// large contiguously allocated blocks").
func (c Config) PartitionItems(n int) []Partition {
	parts := make([]Partition, 0, c.Vaults)
	base := n / c.Vaults
	rem := n % c.Vaults
	start := 0
	for v := 0; v < c.Vaults; v++ {
		size := base
		if v < rem {
			size++
		}
		parts = append(parts, Partition{Vault: v, Start: start, End: start + size})
		start += size
	}
	return parts
}

// Fits reports whether a dataset of the given byte size fits in one
// module; callers compose multiple modules ("these additional links
// and SSAM modules allow us to scale up the capacity") when it does
// not.
func (c Config) Fits(bytes int64) bool {
	return bytes <= c.CapacityBytes
}

// ModulesNeeded returns how many modules a dataset of the given byte
// size spans.
func (c Config) ModulesNeeded(bytes int64) int {
	if bytes <= 0 {
		return 1
	}
	n := int((bytes + c.CapacityBytes - 1) / c.CapacityBytes)
	if n < 1 {
		n = 1
	}
	return n
}
