package hmc

import (
	"testing"
	"testing/quick"
	"time"
)

func TestHMC2Envelope(t *testing.T) {
	c := HMC2()
	if c.Vaults != 32 {
		t.Fatalf("Vaults = %d, want 32", c.Vaults)
	}
	if got := c.InternalBandwidth(); got != 320e9 {
		t.Fatalf("internal bandwidth = %v, want 320 GB/s", got)
	}
	if got := c.ExternalBandwidth(); got != 240e9 {
		t.Fatalf("external bandwidth = %v, want 240 GB/s", got)
	}
}

func TestDDR4Envelope(t *testing.T) {
	c := DDR4()
	if got := c.InternalBandwidth(); got != 25e9 {
		t.Fatalf("DDR4 bandwidth = %v, want 25 GB/s", got)
	}
}

func TestStreamTimes(t *testing.T) {
	c := HMC2()
	// 320 GB across 320 GB/s = 1 s.
	if got := c.StreamTime(320e9); got != time.Second {
		t.Fatalf("StreamTime = %v, want 1s", got)
	}
	// One vault streams 10 GB in 1 s.
	if got := c.VaultStreamTime(10e9); got != time.Second {
		t.Fatalf("VaultStreamTime = %v, want 1s", got)
	}
	// 240 GB over links = 1 s.
	if got := c.LinkTime(240e9); got != time.Second {
		t.Fatalf("LinkTime = %v, want 1s", got)
	}
}

func TestInternalExceedsExternal(t *testing.T) {
	// The whole premise of near-data processing: internal bandwidth
	// exceeds what the links expose to the host.
	c := HMC2()
	if c.InternalBandwidth() <= c.ExternalBandwidth() {
		t.Fatal("internal bandwidth should exceed external")
	}
}

func TestPartitionItemsQuick(t *testing.T) {
	f := func(nRaw uint16) bool {
		n := int(nRaw)
		c := HMC2()
		parts := c.PartitionItems(n)
		if len(parts) != c.Vaults {
			return false
		}
		total := 0
		prevEnd := 0
		minSize, maxSize := 1<<30, -1
		for i, p := range parts {
			if p.Vault != i || p.Start != prevEnd || p.End < p.Start {
				return false
			}
			size := p.End - p.Start
			total += size
			prevEnd = p.End
			if size < minSize {
				minSize = size
			}
			if size > maxSize {
				maxSize = size
			}
		}
		// Contiguous cover, near-equal shards.
		return total == n && prevEnd == n && maxSize-minSize <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestFitsAndModules(t *testing.T) {
	c := HMC2()
	if !c.Fits(8 << 30) {
		t.Fatal("8 GB should fit")
	}
	if c.Fits(9 << 30) {
		t.Fatal("9 GB should not fit")
	}
	if got := c.ModulesNeeded(0); got != 1 {
		t.Fatalf("ModulesNeeded(0) = %d", got)
	}
	if got := c.ModulesNeeded(8 << 30); got != 1 {
		t.Fatalf("ModulesNeeded(8GB) = %d", got)
	}
	if got := c.ModulesNeeded(17 << 30); got != 3 {
		t.Fatalf("ModulesNeeded(17GB) = %d", got)
	}
}
