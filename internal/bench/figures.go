package bench

import (
	"fmt"
	"time"

	"ssam/internal/dataset"
	"ssam/internal/kdtree"
	"ssam/internal/kmeans"
	"ssam/internal/knn"
	"ssam/internal/lsh"
	"ssam/internal/platform"
	"ssam/internal/power"
	"ssam/internal/ssamdev"
	"ssam/internal/topk"
	"ssam/internal/vec"
)

// CurvePoint is one point of a throughput-versus-accuracy curve.
type CurvePoint struct {
	Dataset   string
	Algorithm string
	Knob      int     // checks (trees) or probes (LSH); 0 for linear
	Recall    float64 // the paper's accuracy metric
	QPS       float64 // host-measured queries/second
	SSAMQPS   float64 // modeled SSAM queries/second (Figure 7 only)
}

// figure2Knobs are the sweep points for the accuracy/throughput curves.
var figure2Knobs = []int{32, 64, 128, 256, 512, 1024, 2048}

var figure2Probes = []int{1, 2, 4, 8, 16, 32, 64, 128}

// Figure2 reproduces the approximate-kNN characterization: throughput
// versus accuracy for kd-tree, hierarchical k-means and HP-MPLSH
// against exact linear search, single-threaded on the host CPU (the
// paper's Fig. 2 methodology).
func Figure2(o Options) []CurvePoint {
	pts, _ := figureCurves(o, false)
	return pts
}

// Figure7 reproduces the SSAM-versus-CPU indexed-search comparison:
// the same sweeps, with each point also converted to modeled SSAM
// throughput from the measured index work (Section V-C / Fig. 7).
func Figure7(o Options) ([]CurvePoint, error) {
	return figureCurves(o, true)
}

func figureCurves(o Options, withSSAM bool) ([]CurvePoint, error) {
	o = o.Defaults()
	var out []CurvePoint
	for _, spec := range dataset.AllSpecs(o.Scale) {
		ds := getDataset(spec)
		k := spec.K
		qs := clampQueries(ds.Queries, o.Queries)
		gt := knn.GroundTruth(ds.Data, ds.Dim(), qs, k, 0)

		var dev *ssamdev.Device
		if withSSAM {
			var err error
			dev, err = ssamdev.NewFloat(ssamdev.DefaultConfig(o.VectorLength), ds.Data, ds.Dim(), vec.Euclidean)
			if err != nil {
				return nil, err
			}
		}

		// Exact linear baseline (single-threaded, as in the paper).
		lin := knn.NewEngine(ds.Data, ds.Dim(), vec.Euclidean, 1)
		linQPS := measureQPS(qs, func(q []float32) { lin.Search(q, k) })
		p := CurvePoint{Dataset: spec.Name, Algorithm: "linear", Recall: 1, QPS: linQPS}
		if withSSAM {
			secs := 0.0
			for _, q := range qs {
				_, st, err := dev.Search(q, k)
				if err != nil {
					return nil, err
				}
				secs += st.Seconds
			}
			p.SSAMQPS = float64(len(qs)) / secs
		}
		out = append(out, p)

		forest := kdtree.Build(ds.Data, ds.Dim(), kdtree.DefaultParams())
		tree := kmeans.Build(ds.Data, ds.Dim(), kmeans.DefaultParams())
		index := lsh.Build(ds.Data, ds.Dim(), lsh.DefaultParams())

		for _, checks := range figure2Knobs {
			if checks > ds.N() {
				continue
			}
			forest.Checks = checks
			out = append(out, measureCurvePoint(spec.Name, "kdtree", checks, qs, gt, dev, k,
				func(q []float32) ([]topk.Result, ssamdev.ApproxWork) {
					res, st := forest.SearchStats(q, k)
					return res, ssamdev.ApproxWork{
						DistEvals: st.DistEvals, LeafScans: st.LeafScans,
						NodeVisits: st.NodeVisits, HeapOps: st.HeapOps,
					}
				}))
			tree.Checks = checks
			out = append(out, measureCurvePoint(spec.Name, "kmeans", checks, qs, gt, dev, k,
				func(q []float32) ([]topk.Result, ssamdev.ApproxWork) {
					res, st := tree.SearchStats(q, k)
					return res, ssamdev.ApproxWork{
						DistEvals: st.DistEvals, LeafScans: st.LeafScans,
						NodeVisits: st.NodeVisits, HeapOps: st.HeapOps,
						CentroidEvals: st.CentroidEvals,
					}
				}))
		}
		for _, probes := range figure2Probes {
			index.Probes = probes
			out = append(out, measureCurvePoint(spec.Name, "mplsh", probes, qs, gt, dev, k,
				func(q []float32) ([]topk.Result, ssamdev.ApproxWork) {
					res, st := index.SearchStats(q, k)
					return res, ssamdev.ApproxWork{
						DistEvals: st.DistEvals, LeafScans: st.BucketHits,
						HeapOps: st.ProbeGenOps, HashDims: st.HashDims,
					}
				}))
		}
	}
	return out, nil
}

// measureQPS times fn over the query set with a warmup pass and a
// minimum measurement window, repeating the whole set as needed so a
// single fast sweep does not produce noise-dominated figures.
func measureQPS(qs [][]float32, fn func(q []float32)) float64 {
	for _, q := range qs { // warmup
		fn(q)
	}
	const minWindow = 30 * time.Millisecond
	queries := 0
	start := time.Now()
	for time.Since(start) < minWindow {
		for _, q := range qs {
			fn(q)
		}
		queries += len(qs)
	}
	return float64(queries) / time.Since(start).Seconds()
}

func measureCurvePoint(dsName, algo string, knob int, qs [][]float32,
	gt [][]topk.Result, dev *ssamdev.Device, k int,
	search func(q []float32) ([]topk.Result, ssamdev.ApproxWork)) CurvePoint {

	var recall float64
	var ssamSecs float64
	for i, q := range qs {
		res, work := search(q)
		recall += dataset.Recall(gt[i], res)
		if dev != nil {
			ssamSecs += dev.ApproxQuerySeconds(work)
		}
	}
	pt := CurvePoint{
		Dataset:   dsName,
		Algorithm: algo,
		Knob:      knob,
		Recall:    recall / float64(len(qs)),
		QPS:       measureQPS(qs, func(q []float32) { search(q) }),
	}
	if dev != nil && ssamSecs > 0 {
		pt.SSAMQPS = float64(len(qs)) / ssamSecs
	}
	return pt
}

// Figure2Report formats the curves.
func Figure2Report(o Options) Report {
	r := Report{
		Title:  "Figure 2: throughput vs accuracy, approximate kNN on host CPU (single-threaded)",
		Header: []string{"Dataset", "Algorithm", "Knob", "Recall", "QPS"},
		Notes:  []string{"paper shape: up to ~170x over linear at 50% accuracy, ~13x at 90%, converging to linear past 95-99%"},
	}
	for _, p := range Figure2(o) {
		r.Rows = append(r.Rows, []string{p.Dataset, p.Algorithm, itoa(p.Knob), f3(p.Recall), f1(p.QPS)})
	}
	return r
}

// Figure7Report formats the SSAM-vs-CPU indexed comparison,
// area-normalized as in the paper.
func Figure7Report(o Options) (Report, error) {
	o = o.Defaults()
	pts, err := Figure7(o)
	if err != nil {
		return Report{}, err
	}
	cpuArea := platform.XeonE5().AreaMM2
	ssamArea, err := power.AcceleratorArea(o.VectorLength)
	if err != nil {
		return Report{}, err
	}
	r := Report{
		Title:  fmt.Sprintf("Figure 7: area-normalized throughput vs accuracy, CPU vs SSAM-%d", o.VectorLength),
		Header: []string{"Dataset", "Algorithm", "Knob", "Recall", "CPU q/s/mm2", "SSAM q/s/mm2", "SSAM/CPU"},
		Notes:  []string{"paper shape: ~2 orders of magnitude at the 50% accuracy target"},
	}
	for _, p := range pts {
		cpuNorm := p.QPS / cpuArea
		ssamNorm := p.SSAMQPS / ssamArea.Total()
		ratio := 0.0
		if cpuNorm > 0 {
			ratio = ssamNorm / cpuNorm
		}
		r.Rows = append(r.Rows, []string{
			p.Dataset, p.Algorithm, itoa(p.Knob), f3(p.Recall),
			g3(cpuNorm), g3(ssamNorm), f1(ratio) + "x",
		})
	}
	return r, nil
}

// Fig6Row is one platform/dataset cell of Figure 6.
type Fig6Row struct {
	Platform    string
	Dataset     string
	QPS         float64 // full-scale queries/s
	AreaNormQPS float64 // Fig. 6a
	QPerJoule   float64 // Fig. 6b
}

// Figure6 reproduces the exact-linear-search cross-platform
// comparison: CPU/GPU/FPGA from their roofline envelopes at full
// dataset scale; SSAM-2/4/8/16 from simulated kernels extrapolated to
// full scale, normalized by the Table III/IV power and area.
func Figure6(o Options) ([]Fig6Row, error) {
	o = o.Defaults()
	var rows []Fig6Row
	for _, spec := range dataset.AllSpecs(o.Scale) {
		full := paperN(spec.Name)
		for _, p := range platform.All() {
			rows = append(rows, Fig6Row{
				Platform:    p.Name,
				Dataset:     spec.Name,
				QPS:         p.LinearQPS(full, spec.Dim),
				AreaNormQPS: p.AreaNormQPS(full, spec.Dim),
				QPerJoule:   p.QueriesPerJoule(full, spec.Dim),
			})
		}
		ds := getDataset(spec)
		qs := clampQueries(ds.Queries, o.Queries)
		for _, vlen := range power.SupportedVectorLengths() {
			dev, err := ssamdev.NewFloat(ssamdev.DefaultConfig(vlen), ds.Data, ds.Dim(), vec.Euclidean)
			if err != nil {
				return nil, err
			}
			var secs float64
			for _, q := range qs {
				_, st, err := dev.Search(q, spec.K)
				if err != nil {
					return nil, err
				}
				secs += st.Seconds
			}
			qps := extrapolateQPS(float64(len(qs))/secs, ds.N(), full)
			area, err := power.AcceleratorArea(vlen)
			if err != nil {
				return nil, err
			}
			pw, err := power.AcceleratorPower(vlen)
			if err != nil {
				return nil, err
			}
			rows = append(rows, Fig6Row{
				Platform:    fmt.Sprintf("ssam-%d", vlen),
				Dataset:     spec.Name,
				QPS:         qps,
				AreaNormQPS: qps / area.Total(),
				QPerJoule:   qps / pw.Total(),
			})
		}
	}
	return rows, nil
}

// Figure6Report formats both panels of Figure 6.
func Figure6Report(o Options) (Report, error) {
	rows, err := Figure6(o)
	if err != nil {
		return Report{}, err
	}
	r := Report{
		Title:  "Figure 6: exact linear search, full-scale (a) area-normalized throughput and (b) energy efficiency",
		Header: []string{"Platform", "Dataset", "q/s", "q/s/mm2 (6a)", "q/J (6b)"},
		Notes:  []string{"paper shape: SSAM up to 426x area-normalized throughput and 934x energy efficiency over the CPU; GPU and FPGA in between"},
	}
	for _, row := range rows {
		r.Rows = append(r.Rows, []string{row.Platform, row.Dataset, g3(row.QPS), g3(row.AreaNormQPS), g3(row.QPerJoule)})
	}
	return r, nil
}
