package bench

// Vault-parallel host throughput sweep: the first point of the repo's
// perf trajectory (BENCH_05_vaults.json). Unlike the simulator-driven
// experiments this one measures wall-clock time of the real host
// engines, so its numbers depend on the machine; the committed JSON
// records GOMAXPROCS alongside the rates for that reason.

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"time"

	"ssam/internal/dataset"
	"ssam/internal/knn"
	"ssam/internal/vec"
)

// vaultCounts is the sweep's x-axis: serial, then powers of two up to
// the paper's 32-vault module.
var vaultCounts = []int{1, 2, 4, 8, 16, 32}

// VaultRow is one (workload, vault count) point of the sweep.
type VaultRow struct {
	Dataset string  `json:"dataset"`
	Dim     int     `json:"dim"`
	N       int     `json:"n"`
	K       int     `json:"k"`
	Vaults  int     `json:"vaults"`
	QPS     float64 `json:"qps"`
	Speedup float64 `json:"speedup"` // vs. vaults=1 on the same workload
}

// VaultTrajectory is the JSON shape committed as BENCH_05_vaults.json:
// enough machine context to interpret the rates later in the
// trajectory.
type VaultTrajectory struct {
	Experiment string `json:"experiment"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	// NumCPU records the machine's logical CPU count alongside
	// GOMAXPROCS (they differ under CPU quotas), absent from
	// trajectories recorded before it was added.
	NumCPU  int        `json:"numcpu,omitempty"`
	Scale   float64    `json:"scale"`
	Queries int        `json:"queries"`
	Rows    []VaultRow `json:"rows"`
}

// VaultSweep measures single-query host throughput of the float linear
// engine at each vault count, on the synthetic GloVe (100-d) and GIST
// (960-d) shapes. The serial threshold is forced to zero so the vault
// path is exercised even at CI-friendly scales; at vault counts beyond
// GOMAXPROCS the sweep shows the goroutine overhead the adaptive
// threshold exists to avoid.
func VaultSweep(o Options) (VaultTrajectory, error) {
	o = o.Defaults()
	out := VaultTrajectory{
		Experiment: "vaults",
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Scale:      o.Scale,
		Queries:    o.Queries,
	}
	for _, spec := range []dataset.Spec{dataset.GloVeSpec(o.Scale), dataset.GISTSpec(o.Scale)} {
		ds := getDataset(spec)
		qs := clampQueries(ds.Queries, o.Queries)
		if len(qs) == 0 {
			return out, fmt.Errorf("bench: no queries for %s at scale %v", spec.Name, o.Scale)
		}
		var base float64
		for _, v := range vaultCounts {
			e := knn.NewEngineVaults(ds.Data, ds.Dim(), vec.Euclidean, 1, v)
			e.SetSerialThreshold(0)
			// One warm-up pass per engine so page faults and scheduler
			// ramp-up don't land in the measured loop.
			e.Search(qs[0], spec.K)
			start := time.Now()
			for _, q := range qs {
				e.Search(q, spec.K)
			}
			secs := time.Since(start).Seconds()
			qps := float64(len(qs)) / secs
			if v == 1 {
				base = qps
			}
			out.Rows = append(out.Rows, VaultRow{
				Dataset: spec.Name,
				Dim:     ds.Dim(),
				N:       ds.N(),
				K:       spec.K,
				Vaults:  v,
				QPS:     qps,
				Speedup: qps / base,
			})
		}
	}
	return out, nil
}

// VaultSweepReport formats VaultSweep.
func VaultSweepReport(o Options) (Report, error) {
	t, err := VaultSweep(o)
	if err != nil {
		return Report{}, err
	}
	r := Report{
		Title:  "Vault-parallel host scan: single-query throughput vs. vault count",
		Header: []string{"Dataset", "dim", "N", "vaults", "q/s", "speedup"},
		Notes: []string{
			fmt.Sprintf("wall-clock on this machine, GOMAXPROCS=%d; speedup is vs. vaults=1 per workload", t.GOMAXPROCS),
			"serial threshold forced to 0 so every vault count takes the parallel path",
		},
	}
	for _, row := range t.Rows {
		r.Rows = append(r.Rows, []string{
			row.Dataset, itoa(row.Dim), itoa(row.N), itoa(row.Vaults), f1(row.QPS), f2(row.Speedup),
		})
	}
	return r, nil
}

// WriteVaultTrajectory writes the sweep in the committed
// BENCH_05_vaults.json format (indented JSON, trailing newline).
func WriteVaultTrajectory(w io.Writer, t VaultTrajectory) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(t)
}
