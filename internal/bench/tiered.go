package bench

// Out-of-core throughput: the experiment behind the committed
// BENCH_10_tiered.json. The dataset lives in a tier-store backing file
// and the memory budget sweeps from a twentieth of the dataset up to
// fully cached, so the curve charts what a shrinking cache costs: at
// small fractions every query streams most vault pages back off
// storage, at 1.0 the store behaves like the in-RAM scan plus a page
// lookup. Each point also re-checks the bit-exactness contract against
// the in-RAM serial engine — the sweep refuses to report a QPS for
// answers that drifted. Wall-clock rates depend on the machine, so the
// trajectory records GOMAXPROCS and NumCPU like the vault sweep does.

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"

	"ssam/internal/knn"
	"ssam/internal/tier"
	"ssam/internal/vec"
)

// tieredFractions is the cache-budget sweep, as a fraction of the
// dataset's bytes. 0.25 and below put the dataset at >= 4x the budget
// (the genuinely out-of-core regime); 1.0 is the fully-cached ceiling.
var tieredFractions = []float64{0.05, 0.10, 0.25, 0.50, 1.0}

// tieredVaults fixes the store's page count so the sweep's page
// geometry does not depend on the machine's core count: 32 pages means
// the smallest budget still holds one resident page instead of
// degenerating to pure streaming.
const tieredVaults = 32

// TieredSweepRow is one budget point of the sweep.
type TieredSweepRow struct {
	Fraction     float64 `json:"fraction"`     // budget / dataset bytes
	BudgetBytes  int64   `json:"budget_bytes"` // resident page-cache bound
	QPS          float64 `json:"qps"`
	Slowdown     float64 `json:"slowdown"`       // in-RAM serial QPS / tiered QPS
	BytesRead    uint64  `json:"bytes_read"`     // backing-file traffic during the timed window
	CacheHitRate float64 `json:"cache_hit_rate"` // hits / (hits + misses) over the window
	Evictions    uint64  `json:"evictions"`
	PrefetchHits uint64  `json:"prefetch_hits"`
	Exact        bool    `json:"exact"` // results bit-identical to the in-RAM engine
}

// TieredTrajectory is the JSON shape committed as BENCH_10_tiered.json.
type TieredTrajectory struct {
	Experiment string `json:"experiment"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	// NumCPU records the machine's logical CPU count alongside
	// GOMAXPROCS (they differ under CPU quotas).
	NumCPU       int              `json:"numcpu"`
	Scale        float64          `json:"scale"`
	Queries      int              `json:"queries"`
	Dataset      string           `json:"dataset"`
	N            int              `json:"n"`
	Dim          int              `json:"dim"`
	K            int              `json:"k"`
	Vaults       int              `json:"vaults"`
	DatasetBytes int64            `json:"dataset_bytes"` // n*dim*4, what a full cache holds
	LinearQPS    float64          `json:"linear_qps"`    // in-RAM serial float32 baseline
	Rows         []TieredSweepRow `json:"rows"`
}

// FullyCachedSlowdown returns the slowdown of the fraction-1.0 row (the
// acceptance bar: fully cached within 1.2x of in-RAM), or 0 if the
// sweep lacks one.
func (t TieredTrajectory) FullyCachedSlowdown() float64 {
	for _, r := range t.Rows {
		if r.Fraction == 1.0 {
			return r.Slowdown
		}
	}
	return 0
}

// TieredSweep measures single-query host throughput of the out-of-core
// tiered engine against the in-RAM serial float32 scan on the gist128
// workload, sweeping the cache budget. One backing file serves every
// budget point (the store is reopened per point so each starts cold),
// and every point verifies the bit-exactness contract on the query set
// before its timed window.
func TieredSweep(o Options) (TieredTrajectory, error) {
	o = o.Defaults()
	spec := GIST128Spec(o.Scale)
	ds := getDataset(spec)
	k := spec.K
	qs := clampQueries(ds.Queries, o.Queries)
	if len(qs) == 0 {
		return TieredTrajectory{}, fmt.Errorf("bench: no queries for %s at scale %v", spec.Name, o.Scale)
	}
	out := TieredTrajectory{
		Experiment:   "tiered",
		GOMAXPROCS:   runtime.GOMAXPROCS(0),
		NumCPU:       runtime.NumCPU(),
		Scale:        o.Scale,
		Queries:      len(qs),
		Dataset:      spec.Name,
		N:            ds.N(),
		Dim:          ds.Dim(),
		K:            k,
		Vaults:       tieredVaults,
		DatasetBytes: int64(ds.N()) * int64(ds.Dim()) * 4,
	}

	// In-RAM serial baseline: the same scan order the tiered engine
	// walks (vault pages in sequence), so the slowdown isolates the
	// storage tier rather than thread-level parallelism.
	lin := knn.NewEngine(ds.Data, ds.Dim(), vec.Euclidean, 1)
	out.LinearQPS = measureQPS(qs, func(q []float32) { lin.Search(q, k) })
	want := make([][]int, len(qs))
	for i, q := range qs {
		res := lin.Search(q, k)
		want[i] = make([]int, len(res))
		for j, r := range res {
			want[i][j] = r.ID
		}
	}

	dir, err := os.MkdirTemp("", "ssam-bench-tiered-*")
	if err != nil {
		return out, err
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "gist128.tier")
	if err := tier.WriteFile(path, ds.Data, ds.Dim(), tieredVaults); err != nil {
		return out, err
	}

	for _, frac := range tieredFractions {
		budget := int64(frac * float64(out.DatasetBytes))
		store, err := tier.Open(path, tier.Options{BudgetBytes: budget, Prefetch: true})
		if err != nil {
			return out, err
		}
		eng := knn.NewTieredEngine(store, vec.Euclidean)

		// Bit-exactness check first; the timed window below reuses the
		// now-warm (to the extent the budget allows) cache.
		exact := true
		for i, q := range qs {
			res, err := eng.Search(q, k)
			if err != nil {
				store.Close()
				return out, err
			}
			if len(res) != len(want[i]) {
				exact = false
				break
			}
			for j, r := range res {
				if r.ID != want[i][j] {
					exact = false
					break
				}
			}
		}

		before := store.Counters()
		var searchErr error
		qps := measureQPS(qs, func(q []float32) {
			if _, err := eng.Search(q, k); err != nil && searchErr == nil {
				searchErr = err
			}
		})
		after := store.Counters()
		store.Close()
		if searchErr != nil {
			return out, searchErr
		}

		hits := after.CacheHits - before.CacheHits
		misses := after.CacheMisses - before.CacheMisses
		hitRate := 0.0
		if hits+misses > 0 {
			hitRate = float64(hits) / float64(hits+misses)
		}
		out.Rows = append(out.Rows, TieredSweepRow{
			Fraction:     frac,
			BudgetBytes:  budget,
			QPS:          qps,
			Slowdown:     out.LinearQPS / qps,
			BytesRead:    after.BytesRead - before.BytesRead,
			CacheHitRate: hitRate,
			Evictions:    after.Evictions - before.Evictions,
			PrefetchHits: after.PrefetchHits - before.PrefetchHits,
			Exact:        exact,
		})
	}
	return out, nil
}

// TieredSweepReport formats TieredSweep, with the fully-cached
// comparison (the regression gate's bar) in the notes.
func TieredSweepReport(o Options) (Report, error) {
	t, err := TieredSweep(o)
	if err != nil {
		return Report{}, err
	}
	r := Report{
		Title: fmt.Sprintf("Out-of-core scan: QPS vs. cache fraction on %s (%d x %dd, %d pages)",
			t.Dataset, t.N, t.Dim, t.Vaults),
		Header: []string{"fraction", "budget MiB", "q/s", "slowdown", "hit rate", "MiB read", "evictions", "exact"},
		Notes: []string{
			fmt.Sprintf("wall-clock on this machine, GOMAXPROCS=%d NumCPU=%d, single-threaded queries", t.GOMAXPROCS, t.NumCPU),
			fmt.Sprintf("in-RAM serial float32 baseline: %.1f q/s over %.1f MiB", t.LinearQPS, float64(t.DatasetBytes)/(1<<20)),
			"slowdown is vs. that baseline; fraction <= 0.25 puts the dataset at >= 4x the budget",
		},
	}
	for _, row := range t.Rows {
		exact := "yes"
		if !row.Exact {
			exact = "NO"
		}
		r.Rows = append(r.Rows, []string{
			f2(row.Fraction), f2(float64(row.BudgetBytes) / (1 << 20)), f1(row.QPS),
			f2(row.Slowdown), f3(row.CacheHitRate),
			f1(float64(row.BytesRead) / (1 << 20)), itoa(int(row.Evictions)), exact,
		})
	}
	if s := t.FullyCachedSlowdown(); s > 0 {
		r.Notes = append(r.Notes, fmt.Sprintf("fully cached slowdown vs. in-RAM: %.2fx", s))
	}
	return r, nil
}

// WriteTieredTrajectory writes the sweep in the committed
// BENCH_10_tiered.json format (indented JSON, trailing newline).
func WriteTieredTrajectory(w io.Writer, t TieredTrajectory) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(t)
}
