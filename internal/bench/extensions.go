package bench

import (
	"fmt"
	"time"

	"ssam/internal/asm"
	"ssam/internal/dataset"
	"ssam/internal/kdtree"
	"ssam/internal/kmeans"
	"ssam/internal/knn"
	"ssam/internal/lsh"
	"ssam/internal/platform"
	"ssam/internal/power"
	"ssam/internal/sim"
	"ssam/internal/ssamdev"
	"ssam/internal/topk"
	"ssam/internal/vec"
)

// BuildRow compares one index's construction cost to its query cost
// (Section VI-B: "index construction is still three orders of
// magnitude slower than single query execution").
type BuildRow struct {
	Index        string
	BuildSeconds float64
	QuerySeconds float64
	Ratio        float64
}

// IndexConstruction measures host-side build time versus mean query
// time for each index on the GloVe workload.
func IndexConstruction(o Options) []BuildRow {
	o = o.Defaults()
	ds := getDataset(dataset.GloVeSpec(o.Scale))
	qs := clampQueries(ds.Queries, o.Queries)
	k := ds.Spec.K

	measure := func(name string, build func() func([]float32)) BuildRow {
		start := time.Now()
		query := build()
		buildS := time.Since(start).Seconds()
		start = time.Now()
		for _, q := range qs {
			query(q)
		}
		queryS := time.Since(start).Seconds() / float64(len(qs))
		return BuildRow{Index: name, BuildSeconds: buildS, QuerySeconds: queryS, Ratio: buildS / queryS}
	}

	return []BuildRow{
		measure("kdtree", func() func([]float32) {
			f := kdtree.Build(ds.Data, ds.Dim(), kdtree.DefaultParams())
			f.Checks = 512
			return func(q []float32) { f.Search(q, k) }
		}),
		measure("kmeans", func() func([]float32) {
			tr := kmeans.Build(ds.Data, ds.Dim(), kmeans.DefaultParams())
			tr.Checks = 512
			return func(q []float32) { tr.Search(q, k) }
		}),
		measure("mplsh", func() func([]float32) {
			x := lsh.Build(ds.Data, ds.Dim(), lsh.DefaultParams())
			x.Probes = 8
			return func(q []float32) { x.Search(q, k) }
		}),
	}
}

// IndexConstructionReport formats IndexConstruction.
func IndexConstructionReport(o Options) Report {
	r := Report{
		Title:  "Section VI-B: index construction vs query cost, host CPU (paper: construction ~3 orders of magnitude slower than one query)",
		Header: []string{"Index", "Build (s)", "Query (s)", "Build/Query"},
	}
	for _, row := range IndexConstruction(o) {
		r.Rows = append(r.Rows, []string{row.Index, g3(row.BuildSeconds), g3(row.QuerySeconds), f1(row.Ratio) + "x"})
	}
	return r
}

// OffloadRow compares a k-means assignment pass on the CPU envelope
// versus the SSAM device.
type OffloadRow struct {
	K             int
	CPUSeconds    float64 // modeled CPU scan time per pass
	DeviceSeconds float64 // simulated device time per pass
	Speedup       float64
}

// KMeansOffload reproduces the Section VI-B construction offload: the
// data-intensive assignment scan of k-means training simulated on the
// device against the CPU roofline for the same pass (each pass streams
// the dataset once and scores it against K scratchpad-resident
// centroids).
func KMeansOffload(o Options) ([]OffloadRow, error) {
	o = o.Defaults()
	ds := getDataset(dataset.GloVeSpec(o.Scale))
	dev, err := ssamdev.NewFloat(ssamdev.DefaultConfig(o.VectorLength), ds.Data, ds.Dim(), vec.Euclidean)
	if err != nil {
		return nil, err
	}
	cpu := platform.XeonE5()
	var rows []OffloadRow
	for _, k := range []int{4, 8, 16} {
		centroids := make([][]float32, k)
		for c := range centroids {
			centroids[c] = ds.Row(c * ds.N() / k)
		}
		_, st, err := dev.AssignCentroids(centroids)
		if err != nil {
			return nil, err
		}
		// CPU pass: stream the dataset once, compute K distances per
		// vector. Bandwidth-bound on the stream, compute-bound in K:
		// charge the larger of stream time and distance math at ~4
		// ops/dim on the six-core SIMD envelope (~100 GFLOP/s).
		bytes := float64(ds.N()) * float64(ds.Dim()) * 4
		streamT := bytes / (cpu.MemBandwidth * cpu.Efficiency)
		flops := float64(ds.N()) * float64(ds.Dim()) * float64(k) * 4
		computeT := flops / 100e9
		cpuT := streamT
		if computeT > cpuT {
			cpuT = computeT
		}
		rows = append(rows, OffloadRow{
			K:             k,
			CPUSeconds:    cpuT,
			DeviceSeconds: st.Seconds,
			Speedup:       cpuT / st.Seconds,
		})
	}
	return rows, nil
}

// KMeansOffloadReport formats KMeansOffload.
func KMeansOffloadReport(o Options) (Report, error) {
	rows, err := KMeansOffload(o)
	if err != nil {
		return Report{}, err
	}
	r := Report{
		Title:  "Section VI-B: k-means assignment pass, CPU envelope vs SSAM device",
		Header: []string{"K", "CPU (s)", "SSAM (s)", "Speedup"},
	}
	for _, row := range rows {
		r.Rows = append(r.Rows, []string{itoa(row.K), g3(row.CPUSeconds), g3(row.DeviceSeconds), f1(row.Speedup) + "x"})
	}
	return r, nil
}

// DevBuildRow compares a standard kd-tree build against one whose cut
// dimensions come from the device variance scan (Section VI-B).
type DevBuildRow struct {
	Build         string
	BuildSeconds  float64 // host build time
	DeviceSeconds float64 // device variance-scan time (assisted build)
	Recall        float64 // at a fixed checks budget
}

// DeviceAssistedBuild reproduces the kd-tree construction offload: the
// SSAM scans the dataset for per-dimension variance, the host builds
// the forest from the precomputed top-variance dimensions, skipping
// every per-node variance pass.
func DeviceAssistedBuild(o Options) ([]DevBuildRow, error) {
	o = o.Defaults()
	ds := getDataset(dataset.GloVeSpec(o.Scale))
	qs := clampQueries(ds.Queries, o.Queries)
	k := ds.Spec.K
	gt := knn.GroundTruth(ds.Data, ds.Dim(), qs, k, 0)

	evalRecall := func(f *kdtree.Forest) float64 {
		f.Checks = 512
		var r float64
		for i, q := range qs {
			r += dataset.Recall(gt[i], f.Search(q, k))
		}
		return r / float64(len(qs))
	}

	start := time.Now()
	std := kdtree.Build(ds.Data, ds.Dim(), kdtree.DefaultParams())
	stdBuild := time.Since(start).Seconds()

	dev, err := ssamdev.NewFloat(ssamdev.DefaultConfig(o.VectorLength), ds.Data, ds.Dim(), vec.Euclidean)
	if err != nil {
		return nil, err
	}
	top, st, err := dev.TopVarianceDims(10)
	if err != nil {
		return nil, err
	}
	p := kdtree.DefaultParams()
	p.GlobalCutDims = top
	start = time.Now()
	assisted := kdtree.Build(ds.Data, ds.Dim(), p)
	assistedBuild := time.Since(start).Seconds()

	return []DevBuildRow{
		{Build: "host-variance", BuildSeconds: stdBuild, Recall: evalRecall(std)},
		{Build: "device-assisted", BuildSeconds: assistedBuild, DeviceSeconds: st.Seconds, Recall: evalRecall(assisted)},
	}, nil
}

// DeviceAssistedBuildReport formats DeviceAssistedBuild.
func DeviceAssistedBuildReport(o Options) (Report, error) {
	rows, err := DeviceAssistedBuild(o)
	if err != nil {
		return Report{}, err
	}
	r := Report{
		Title:  "Section VI-B: kd-tree build, host variance passes vs device variance scan",
		Header: []string{"Build", "Host build (s)", "Device scan (s)", "Recall@512"},
	}
	for _, row := range rows {
		devS := "-"
		if row.DeviceSeconds > 0 {
			devS = g3(row.DeviceSeconds)
		}
		r.Rows = append(r.Rows, []string{row.Build, g3(row.BuildSeconds), devS, f3(row.Recall)})
	}
	return r, nil
}

// DevIndexRow is one point of the fully simulated on-device index
// sweep.
type DevIndexRow struct {
	Dataset     string
	Index       string // "kdtree" or "kmtree"
	ChecksPerPU int
	Recall      float64
	DeviceQPS   float64 // simulated
	LinearQPS   float64 // simulated device linear scan, for reference
}

// DeviceIndexSweep runs the scratchpad-resident kd-tree and
// hierarchical k-means tree (traversal on the scalar unit and hardware
// stack, centroid evaluation and leaf scans on the vector unit) across
// per-PU check budgets — the fully simulated counterpart of the Fig. 7
// model, on the GloVe and GIST workloads.
func DeviceIndexSweep(o Options) ([]DevIndexRow, error) {
	o = o.Defaults()
	var rows []DevIndexRow
	for _, spec := range []dataset.Spec{dataset.GloVeSpec(o.Scale), dataset.GISTSpec(o.Scale)} {
		ds := getDataset(spec)
		qs := clampQueries(ds.Queries, o.Queries)
		k := spec.K
		gt := knn.GroundTruth(ds.Data, ds.Dim(), qs, k, 0)
		dev, err := ssamdev.NewFloat(ssamdev.DefaultConfig(o.VectorLength), ds.Data, ds.Dim(), vec.Euclidean)
		if err != nil {
			return nil, err
		}
		var linSecs float64
		for _, q := range qs {
			_, st, err := dev.Search(q, k)
			if err != nil {
				return nil, err
			}
			linSecs += st.Seconds
		}
		linQPS := float64(len(qs)) / linSecs

		kd, err := dev.BuildKDTreeIndex(8)
		if err != nil {
			return nil, err
		}
		km, err := dev.BuildKMTreeIndex(4, 8, 3)
		if err != nil {
			return nil, err
		}
		indexes := []struct {
			name   string
			search func(q []float32, k, checks int) ([]topk.Result, ssamdev.QueryStats, error)
		}{
			{"kdtree", kd.Search},
			{"kmtree", km.Search},
		}
		for _, idx := range indexes {
			for _, checks := range []int{2, 8, 32, 128} {
				var recall, secs float64
				for i, q := range qs {
					res, st, err := idx.search(q, k, checks)
					if err != nil {
						return nil, err
					}
					recall += dataset.Recall(gt[i], res)
					secs += st.Seconds
				}
				rows = append(rows, DevIndexRow{
					Dataset:     spec.Name,
					Index:       idx.name,
					ChecksPerPU: checks,
					Recall:      recall / float64(len(qs)),
					DeviceQPS:   float64(len(qs)) / secs,
					LinearQPS:   linQPS,
				})
			}
		}
	}
	return rows, nil
}

// DeviceIndexSweepReport formats DeviceIndexSweep.
func DeviceIndexSweepReport(o Options) (Report, error) {
	rows, err := DeviceIndexSweep(o)
	if err != nil {
		return Report{}, err
	}
	r := Report{
		Title:  "On-device indexes (scratchpad tree + hardware stack): accuracy vs simulated throughput",
		Header: []string{"Dataset", "Index", "Checks/PU", "Recall", "Device q/s", "Device linear q/s"},
	}
	for _, row := range rows {
		r.Rows = append(r.Rows, []string{
			row.Dataset, row.Index, itoa(row.ChecksPerPU), f3(row.Recall),
			f1(row.DeviceQPS), f1(row.LinearQPS),
		})
	}
	return r, nil
}

// DevLSHRow is one point of the on-device hyperplane-LSH sweep.
type DevLSHRow struct {
	Bits      int
	Tables    int
	Recall    float64
	DeviceQPS float64
	LinearQPS float64
}

// DeviceLSHSweep runs the on-device single-probe hyperplane LSH
// (hash-function weights in SSAM memory per Section III-D) across hash
// widths on the GloVe workload.
func DeviceLSHSweep(o Options) ([]DevLSHRow, error) {
	o = o.Defaults()
	spec := dataset.GloVeSpec(o.Scale)
	ds := getDataset(spec)
	qs := clampQueries(ds.Queries, o.Queries)
	k := spec.K
	gt := knn.GroundTruth(ds.Data, ds.Dim(), qs, k, 0)
	dev, err := ssamdev.NewFloat(ssamdev.DefaultConfig(o.VectorLength), ds.Data, ds.Dim(), vec.Euclidean)
	if err != nil {
		return nil, err
	}
	var linSecs float64
	for _, q := range qs {
		_, st, err := dev.Search(q, k)
		if err != nil {
			return nil, err
		}
		linSecs += st.Seconds
	}
	linQPS := float64(len(qs)) / linSecs

	const tables = 4
	var rows []DevLSHRow
	for _, bits := range []int{2, 4, 6, 8} {
		x, err := dev.BuildLSHIndex(tables, bits, 5)
		if err != nil {
			return nil, err
		}
		var recall, secs float64
		for i, q := range qs {
			res, st, err := x.Search(q, k)
			if err != nil {
				return nil, err
			}
			recall += dataset.Recall(gt[i], res)
			secs += st.Seconds
		}
		rows = append(rows, DevLSHRow{
			Bits: bits, Tables: tables,
			Recall:    recall / float64(len(qs)),
			DeviceQPS: float64(len(qs)) / secs,
			LinearQPS: linQPS,
		})
	}
	return rows, nil
}

// DeviceLSHSweepReport formats DeviceLSHSweep.
func DeviceLSHSweepReport(o Options) (Report, error) {
	rows, err := DeviceLSHSweep(o)
	if err != nil {
		return Report{}, err
	}
	r := Report{
		Title:  "On-device hyperplane LSH (weights in SSAM memory): hash width vs accuracy and throughput, GloVe workload",
		Header: []string{"Tables", "Bits", "Recall", "Device q/s", "Device linear q/s"},
	}
	for _, row := range rows {
		r.Rows = append(r.Rows, []string{
			itoa(row.Tables), itoa(row.Bits), f3(row.Recall),
			f1(row.DeviceQPS), f1(row.LinearQPS),
		})
	}
	return r, nil
}

// DevMixRow is one kernel's device-side instruction mix.
type DevMixRow struct {
	Kernel    string
	VectorPct float64
	ReadPct   float64
	CyclesVec float64 // cycles per database vector
}

// DeviceInstructionMix measures the retired-instruction mix of each
// generated kernel on one processing unit over a GloVe-shaped shard —
// the simulator-native counterpart of Table I, showing how thoroughly
// the codesigned kernels vectorize.
func DeviceInstructionMix(o Options) ([]DevMixRow, error) {
	o = o.Defaults()
	ds := getDataset(dataset.GloVeSpec(o.Scale))
	dims := ds.Dim()
	vlen := o.VectorLength
	n := 256
	if n > ds.N() {
		n = ds.N()
	}
	shift := sim.DeviceShift(dims)
	padded := sim.PadDims(dims, vlen)

	fixed := make([]int32, n*padded)
	for i := 0; i < n; i++ {
		copy(fixed[i*padded:], sim.QuantizeDevice(ds.Row(i), shift))
	}
	query := make([]int32, padded)
	copy(query, sim.QuantizeDevice(ds.Queries[0], shift))

	words := sim.HammingWords(dims)
	hpadded := sim.PadDims(words, vlen)
	codes := ds.ToBinary()
	hdram := make([]int32, n*hpadded)
	hquery := make([]int32, hpadded)
	for i := 0; i < n; i++ {
		for w := 0; w < words; w++ {
			word := codes[i].Words[w/2]
			if w%2 == 1 {
				word >>= 32
			}
			hdram[i*hpadded+w] = int32(uint32(word))
		}
	}
	qcode := vec.SignBinarize(ds.Queries[0], ds.Means())
	for w := 0; w < words; w++ {
		word := qcode.Words[w/2]
		if w%2 == 1 {
			word >>= 32
		}
		hquery[w] = int32(uint32(word))
	}

	kernels := []struct {
		name  string
		src   string
		dram  []int32
		query []int32
	}{
		{"euclidean", sim.EuclideanKernel(dims, n, vlen), fixed, query},
		{"manhattan", sim.ManhattanKernel(dims, n, vlen), fixed, query},
		{"cosine", sim.CosineKernel(dims, n, vlen), fixed, query},
		{"hamming", sim.HammingKernel(words, n, vlen), hdram, hquery},
	}
	var rows []DevMixRow
	for _, kn := range kernels {
		prog, err := asm.Assemble(kn.src)
		if err != nil {
			return nil, err
		}
		pu := sim.New(sim.DefaultConfig(vlen), kn.dram)
		if err := pu.WriteScratch(0, kn.query); err != nil {
			return nil, err
		}
		if err := pu.Run(prog); err != nil {
			return nil, err
		}
		st := pu.Stats()
		rows = append(rows, DevMixRow{
			Kernel:    kn.name,
			VectorPct: st.VectorPct(),
			ReadPct:   st.MemoryReadPct(),
			CyclesVec: float64(st.Cycles) / float64(n),
		})
	}
	return rows, nil
}

// DeviceInstructionMixReport formats DeviceInstructionMix.
func DeviceInstructionMixReport(o Options) (Report, error) {
	rows, err := DeviceInstructionMix(o)
	if err != nil {
		return Report{}, err
	}
	r := Report{
		Title:  "Device-side instruction mix per kernel (one PU, GloVe shard)",
		Header: []string{"Kernel", "Vector%", "MemRead%", "Cycles/vector"},
	}
	for _, row := range rows {
		r.Rows = append(r.Rows, []string{row.Kernel, f2(row.VectorPct), f2(row.ReadPct), f1(row.CyclesVec)})
	}
	return r, nil
}

// EnergyRow is one design point of the activity-factor energy study.
type EnergyRow struct {
	VectorLength int
	QueryEnergyJ float64
	AvgPowerW    float64
	Utilization  float64
}

// EnergyPerQuery runs the activity-factor energy model (the paper's
// trace-driven PrimeTime methodology) over simulated linear-scan
// queries on the GloVe workload for each design point.
func EnergyPerQuery(o Options) ([]EnergyRow, error) {
	o = o.Defaults()
	ds := getDataset(dataset.GloVeSpec(o.Scale))
	qs := clampQueries(ds.Queries, o.Queries)
	var rows []EnergyRow
	for _, vlen := range power.SupportedVectorLengths() {
		dev, err := ssamdev.NewFloat(ssamdev.DefaultConfig(vlen), ds.Data, ds.Dim(), vec.Euclidean)
		if err != nil {
			return nil, err
		}
		model, err := power.NewEnergyModel(vlen, dev.TotalPUs(), 1e9)
		if err != nil {
			return nil, err
		}
		var energy, watts, util float64
		for _, q := range qs {
			_, st, err := dev.Search(q, ds.Spec.K)
			if err != nil {
				return nil, err
			}
			a := power.Activity{
				Seconds:      st.Seconds,
				Cycles:       st.Cycles,
				Instructions: st.Instructions,
				VectorInsts:  st.VectorInsts,
				DRAMBytes:    st.DRAMBytesRead,
				PQInserts:    st.PQInserts,
				PUs:          st.PUs,
			}
			energy += model.Energy(a)
			watts += model.AveragePower(a)
			util += a.Utilization()
		}
		n := float64(len(qs))
		rows = append(rows, EnergyRow{
			VectorLength: vlen,
			QueryEnergyJ: energy / n,
			AvgPowerW:    watts / n,
			Utilization:  util / n,
		})
	}
	return rows, nil
}

// EnergyPerQueryReport formats EnergyPerQuery.
func EnergyPerQueryReport(o Options) (Report, error) {
	rows, err := EnergyPerQuery(o)
	if err != nil {
		return Report{}, err
	}
	r := Report{
		Title:  "Activity-factor energy model: per-query energy, linear Euclidean scan, GloVe workload",
		Header: []string{"Design", "Energy/query (J)", "Avg power (W)", "Issue utilization"},
	}
	for _, row := range rows {
		r.Rows = append(r.Rows, []string{
			fmt.Sprintf("SSAM-%d", row.VectorLength),
			g3(row.QueryEnergyJ), f2(row.AvgPowerW), f2(row.Utilization),
		})
	}
	return r, nil
}

// ClusterRow is one module-count scaling point.
type ClusterRow struct {
	Modules int
	QPS     float64
	PUs     int
}

// ClusterScaling shows multi-module composition: the same dataset
// sharded over 1, 2 and 4 SSAM modules, with host-side reduction over
// the external links.
func ClusterScaling(o Options) ([]ClusterRow, error) {
	o = o.Defaults()
	ds := getDataset(dataset.GloVeSpec(o.Scale))
	qs := clampQueries(ds.Queries, o.Queries)
	var rows []ClusterRow
	for _, modules := range []int{1, 2, 4} {
		cl, err := ssamdev.NewFloatCluster(ssamdev.DefaultConfig(o.VectorLength), ds.Data, ds.Dim(), vec.Euclidean, modules)
		if err != nil {
			return nil, err
		}
		var secs float64
		var pus int
		for _, q := range qs {
			_, st, err := cl.Search(q, ds.Spec.K)
			if err != nil {
				return nil, err
			}
			secs += st.Seconds
			pus = st.PUs
		}
		rows = append(rows, ClusterRow{Modules: cl.Modules(), QPS: float64(len(qs)) / secs, PUs: pus})
	}
	return rows, nil
}

// ClusterScalingReport formats ClusterScaling.
func ClusterScalingReport(o Options) (Report, error) {
	rows, err := ClusterScaling(o)
	if err != nil {
		return Report{}, err
	}
	r := Report{
		Title:  "Multi-module composition: one dataset sharded across SSAM modules",
		Header: []string{"Modules", "q/s", "total PUs"},
	}
	for _, row := range rows {
		r.Rows = append(r.Rows, []string{itoa(row.Modules), f1(row.QPS), itoa(row.PUs)})
	}
	return r, nil
}
