package bench

// Availability under replica failure: sweep the replica count of a
// p2c-routed group (internal/replica) over the GloVe shape, kill one
// replica halfway through a concurrent query run, and count what
// reaches the caller — the experiment behind the committed
// BENCH_08_replicas.json. A single copy (R=1) has nowhere to fail
// over, so the kill turns into caller-visible errors; with R>=2 the
// router fails over to surviving replicas and the error column must
// read zero. That step from "kill = outage" to "kill = invisible" is
// the entire point of the replication layer.

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"ssam"
	"ssam/internal/dataset"
	"ssam/internal/replica"
)

// replicaCounts is the sweep's x-axis.
var replicaCounts = []int{1, 2, 3, 4}

// replicaOpsPerQuery stretches the configured query budget into a run
// long enough that the mid-run kill lands inside live traffic.
const replicaOpsPerQuery = 20

// replicaWorkers is the closed-loop concurrency driving each group.
const replicaWorkers = 4

// ReplicaRow is one replica-count point of the sweep.
type ReplicaRow struct {
	Dataset  string `json:"dataset"`
	Dim      int    `json:"dim"`
	N        int    `json:"n"`
	K        int    `json:"k"`
	Replicas int    `json:"replicas"`
	// KilledReplica is the slot fault-injected at the halfway mark.
	KilledReplica int `json:"killed_replica"`
	Queries       int `json:"queries"` // caller-level queries issued
	OK            int `json:"ok"`
	// Errors counts queries that failed at the caller — the
	// availability number; zero for R >= 2 means the kill was invisible.
	Errors    int     `json:"errors"`
	Failovers uint64  `json:"failovers"` // replica attempts re-issued after errors
	Hedges    uint64  `json:"hedges"`    // replica-level hedge attempts
	QPS       float64 `json:"qps"`
}

// ReplicaTrajectory is the JSON shape committed as
// BENCH_08_replicas.json.
type ReplicaTrajectory struct {
	Experiment string       `json:"experiment"`
	GOMAXPROCS int          `json:"gomaxprocs"`
	NumCPU     int          `json:"numcpu"`
	Scale      float64      `json:"scale"`
	Queries    int          `json:"queries"`
	Rows       []ReplicaRow `json:"rows"`
}

// ReplicaSweep measures caller-visible availability of a replica
// group on the GloVe shape while one replica is killed mid-run:
// replicaWorkers closed-loop goroutines drive the group, the fault
// hook takes slot 0 down once half the operations have been issued,
// and every caller-level error is counted.
func ReplicaSweep(o Options) (ReplicaTrajectory, error) {
	o = o.Defaults()
	out := ReplicaTrajectory{
		Experiment: "replicas",
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Scale:      o.Scale,
		Queries:    o.Queries,
	}
	spec := dataset.GloVeSpec(o.Scale)
	ds := getDataset(spec)
	qs := clampQueries(ds.Queries, o.Queries)
	if len(qs) == 0 {
		return out, fmt.Errorf("bench: no queries for %s at scale %v", spec.Name, o.Scale)
	}
	flat := make([]float32, 0, ds.N()*ds.Dim())
	for i := 0; i < ds.N(); i++ {
		flat = append(flat, ds.Row(i)...)
	}
	ops := len(qs) * replicaOpsPerQuery

	for _, r := range replicaCounts {
		g, err := replica.NewGroup(replica.Options{Replicas: r, Hedge: r > 1, Seed: 0x0801})
		if err != nil {
			return out, err
		}
		build := func(int) (replica.Backend, error) {
			reg, err := ssam.New(ds.Dim(), ssam.Config{})
			if err != nil {
				return nil, err
			}
			if err := reg.LoadFloat32(flat); err != nil {
				reg.Free()
				return nil, err
			}
			if err := reg.BuildIndex(); err != nil {
				reg.Free()
				return nil, err
			}
			return replica.WrapRegion(reg), nil
		}
		if _, err := g.Swap(build, qs[:1], spec.K); err != nil {
			g.Free()
			return out, err
		}

		var issued atomic.Int64
		var okCount, errCount, failovers, hedges atomic.Uint64
		var killOnce sync.Once
		start := time.Now()
		var wg sync.WaitGroup
		for w := 0; w < replicaWorkers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for {
					i := issued.Add(1) - 1
					if i >= int64(ops) {
						return
					}
					if i >= int64(ops/2) {
						// Halfway: take slot 0 down for the rest of the run.
						killOnce.Do(func() {
							g.SetFaultHook(func(rep, _ int) error {
								if rep == 0 {
									return fmt.Errorf("injected fault: replica 0 down")
								}
								return nil
							})
						})
					}
					resp, err := g.Search(qs[int(i)%len(qs)], spec.K, nil)
					if err != nil {
						errCount.Add(1)
						continue
					}
					okCount.Add(1)
					failovers.Add(uint64(resp.Failovers))
					hedges.Add(uint64(resp.Hedges))
				}
			}(w)
		}
		wg.Wait()
		secs := time.Since(start).Seconds()
		g.Free()

		row := ReplicaRow{
			Dataset: spec.Name, Dim: ds.Dim(), N: ds.N(), K: spec.K,
			Replicas: r, KilledReplica: 0, Queries: ops,
			OK: int(okCount.Load()), Errors: int(errCount.Load()),
			Failovers: failovers.Load(), Hedges: hedges.Load(),
		}
		if secs > 0 {
			row.QPS = float64(okCount.Load()) / secs
		}
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

// ReplicaSweepReport formats ReplicaSweep.
func ReplicaSweepReport(o Options) (Report, error) {
	t, err := ReplicaSweep(o)
	if err != nil {
		return Report{}, err
	}
	r := Report{
		Title:  "Replica groups: availability while one replica is killed mid-run",
		Header: []string{"Dataset", "replicas", "queries", "ok", "errors", "failovers", "hedges", "qps"},
		Notes: []string{
			fmt.Sprintf("wall-clock on this machine, GOMAXPROCS=%d NumCPU=%d; %d closed-loop workers", t.GOMAXPROCS, t.NumCPU, replicaWorkers),
			"replica 0 is fault-injected at the halfway mark; errors must be zero for replicas >= 2 (failover absorbs the kill)",
		},
	}
	for _, row := range t.Rows {
		r.Rows = append(r.Rows, []string{
			row.Dataset, itoa(row.Replicas), itoa(row.Queries), itoa(row.OK),
			itoa(row.Errors), itoa(int(row.Failovers)), itoa(int(row.Hedges)), f1(row.QPS),
		})
	}
	return r, nil
}

// WriteReplicaTrajectory writes the sweep in the committed
// BENCH_08_replicas.json format (indented JSON, trailing newline).
func WriteReplicaTrajectory(w io.Writer, t ReplicaTrajectory) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(t)
}
