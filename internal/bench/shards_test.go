package bench

import "testing"

func TestShardSweep(t *testing.T) {
	rows, err := ShardSweep(Options{Scale: 0.001, Queries: 3})
	if err != nil {
		t.Fatalf("ShardSweep: %v", err)
	}
	if len(rows) != 4 {
		t.Fatalf("got %d rows, want 4", len(rows))
	}
	if rows[0].Shards != 1 || rows[0].Speedup != 1.0 {
		t.Fatalf("baseline row = %+v, want shards=1 speedup=1", rows[0])
	}
	for i, row := range rows {
		if row.QPS <= 0 || row.PUs <= 0 {
			t.Fatalf("row %d not populated: %+v", i, row)
		}
		// Sharding the scan across more modules must not slow it down.
		if i > 0 && row.QPS < rows[i-1].QPS {
			t.Fatalf("throughput regressed from %d to %d shards: %v < %v",
				rows[i-1].Shards, row.Shards, row.QPS, rows[i-1].QPS)
		}
	}
	rep, err := ShardSweepReport(Options{Scale: 0.001, Queries: 3})
	if err != nil {
		t.Fatalf("ShardSweepReport: %v", err)
	}
	if len(rep.Rows) != 4 || len(rep.Header) != 4 {
		t.Fatalf("report shape = %dx%d, want 4 rows x 4 cols", len(rep.Rows), len(rep.Header))
	}
}
