// Package bench is the experiment harness: one regenerator per table
// and figure of the SSAM paper's evaluation (see DESIGN.md §3 for the
// index). Each experiment returns typed rows plus a printable Report;
// cmd/ssam-bench exposes them on the command line and bench_test.go
// wires them into `go test -bench`.
//
// Experiments run on scaled-down synthetic datasets (Options.Scale) —
// the simulator executes every database vector of every query, so
// paper-scale runs are possible but slow — and throughputs that the
// paper reports at full scale are extrapolated linearly in database
// size, which is exact for the bandwidth-bound linear scans.
package bench

import (
	"encoding/csv"
	"fmt"
	"io"
	"strings"
	"sync"

	"ssam/internal/dataset"
)

// Options configures an experiment run.
type Options struct {
	// Scale shrinks the paper's datasets (1.0 = full 1M+ vectors).
	Scale float64
	// Queries bounds how many held-out queries each point uses.
	Queries int
	// VectorLength selects the SSAM-n variant where one is needed.
	VectorLength int
	// Workers bounds host CPU threads for measured runs (0 = all).
	Workers int
}

// Defaults fills zero fields with CI-friendly values.
func (o Options) Defaults() Options {
	if o.Scale <= 0 {
		o.Scale = 0.004
	}
	if o.Queries <= 0 {
		o.Queries = 10
	}
	if o.VectorLength == 0 {
		o.VectorLength = 8
	}
	return o
}

// Report is a printable experiment result.
type Report struct {
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// Print renders the report as an aligned text table.
func (r Report) Print(w io.Writer) {
	fmt.Fprintf(w, "== %s ==\n", r.Title)
	widths := make([]int, len(r.Header))
	for i, h := range r.Header {
		widths[i] = len(h)
	}
	for _, row := range r.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(r.Header)
	for _, row := range r.Rows {
		line(row)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
}

// WriteCSV renders the report as RFC-4180 CSV with the title as a
// comment line.
func (r Report) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "# %s\n", r.Title); err != nil {
		return err
	}
	cw := csv.NewWriter(w)
	if err := cw.Write(r.Header); err != nil {
		return err
	}
	for _, row := range r.Rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

func f1(v float64) string { return fmt.Sprintf("%.1f", v) }
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
func f3(v float64) string { return fmt.Sprintf("%.3f", v) }
func g3(v float64) string { return fmt.Sprintf("%.3g", v) }
func itoa(v int) string   { return fmt.Sprintf("%d", v) }
func u64(v uint64) string { return fmt.Sprintf("%d", v) }

// dataset cache: experiments share generated corpora per (name, scale).
var (
	dsMu    sync.Mutex
	dsCache = map[string]*dataset.Dataset{}
)

func getDataset(spec dataset.Spec) *dataset.Dataset {
	key := fmt.Sprintf("%s/%d", spec.Name, spec.N)
	dsMu.Lock()
	defer dsMu.Unlock()
	if ds, ok := dsCache[key]; ok {
		return ds
	}
	ds := dataset.Generate(spec)
	dsCache[key] = ds
	return ds
}

// paperN returns the full-scale database size for a workload name.
func paperN(name string) int {
	switch name {
	case "glove":
		return dataset.GloVeN
	case "gist":
		return dataset.GIST_N
	case "alexnet":
		return dataset.AlexNetN
	}
	return 0
}

// extrapolateQPS converts a simulated throughput at simN vectors to
// the paper's full database size (latency linear in N for scans).
func extrapolateQPS(qps float64, simN, fullN int) float64 {
	if fullN <= 0 || simN <= 0 {
		return qps
	}
	return qps * float64(simN) / float64(fullN)
}

func clampQueries(qs [][]float32, n int) [][]float32 {
	if n > 0 && len(qs) > n {
		return qs[:n]
	}
	return qs
}
