package bench

// Recall-vs-QPS frontier for the graph-traversal engine: sweep the
// HNSW efSearch beam against the paper's three approximate indexes on
// a modern embedding shape (128-d GIST-like vectors), the experiment
// behind the committed BENCH_06_graph.json. Wall-clock rates depend on
// the machine, so the trajectory records GOMAXPROCS like the vault
// sweep does.

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"time"

	"ssam/internal/dataset"
	"ssam/internal/graph"
	"ssam/internal/kdtree"
	"ssam/internal/kmeans"
	"ssam/internal/knn"
	"ssam/internal/lsh"
	"ssam/internal/vec"
)

// graphEfs is the efSearch sweep — the graph's accuracy/throughput
// knob, the analogue of figure2Knobs.
var graphEfs = []int{10, 16, 32, 64, 128, 256}

// GIST128N is the full-scale row count of the gist128 workload.
const GIST128N = 1000000

// GIST128Spec returns a GIST-like workload at modern embedding width:
// 128-d descriptors, k=10, same mixture shape as GISTSpec. The graph
// experiment uses it because 960-d build times would dwarf the sweep.
func GIST128Spec(scale float64) dataset.Spec {
	n := int(float64(GIST128N) * scale)
	if n < 64 {
		n = 64
	}
	return dataset.Spec{
		Name: "gist128", N: n, Dim: 128,
		NumQueries: 1000, K: 10, Clusters: 96, ClusterStd: 0.30,
		Seed: 0x6128,
	}
}

// GraphRow is one (algorithm, knob) point of the frontier. Knob is
// efSearch for the graph, checks for the trees, probes for LSH, 0 for
// the exact baseline.
type GraphRow struct {
	Algorithm    string  `json:"algorithm"`
	Knob         int     `json:"knob"`
	Recall       float64 `json:"recall"`
	QPS          float64 `json:"qps"`
	DistEvals    float64 `json:"dist_evals"`    // mean per query (0 where the engine does not report it)
	BuildSeconds float64 `json:"build_seconds"` // index construction, once per algorithm
}

// GraphTrajectory is the JSON shape committed as BENCH_06_graph.json.
type GraphTrajectory struct {
	Experiment string `json:"experiment"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	// NumCPU records the machine's logical CPU count alongside
	// GOMAXPROCS (they differ under CPU quotas), absent from
	// trajectories recorded before it was added.
	NumCPU  int        `json:"numcpu,omitempty"`
	Scale   float64    `json:"scale"`
	Queries int        `json:"queries"`
	Dataset string     `json:"dataset"`
	N       int        `json:"n"`
	Dim     int        `json:"dim"`
	K       int        `json:"k"`
	Rows    []GraphRow `json:"rows"`
}

// BestAtRecall returns each algorithm's highest QPS among rows with
// recall >= floor (the frontier comparison the acceptance bar is
// stated in). Algorithms that never reach the floor are absent.
func (t GraphTrajectory) BestAtRecall(floor float64) map[string]float64 {
	best := make(map[string]float64)
	for _, r := range t.Rows {
		if r.Recall >= floor && r.QPS > best[r.Algorithm] {
			best[r.Algorithm] = r.QPS
		}
	}
	return best
}

// GraphSweep measures the recall@k/QPS frontier of the graph engine
// against kd-tree, hierarchical k-means, MPLSH, and the exact linear
// baseline, single-threaded on the host (the Fig. 2 methodology), on
// the gist128 workload.
func GraphSweep(o Options) (GraphTrajectory, error) {
	o = o.Defaults()
	spec := GIST128Spec(o.Scale)
	ds := getDataset(spec)
	k := spec.K
	qs := clampQueries(ds.Queries, o.Queries)
	if len(qs) == 0 {
		return GraphTrajectory{}, fmt.Errorf("bench: no queries for %s at scale %v", spec.Name, o.Scale)
	}
	out := GraphTrajectory{
		Experiment: "graph",
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Scale:      o.Scale,
		Queries:    len(qs),
		Dataset:    spec.Name,
		N:          ds.N(),
		Dim:        ds.Dim(),
		K:          k,
	}
	gt := knn.GroundTruth(ds.Data, ds.Dim(), qs, k, 0)

	// Exact baseline.
	lin := knn.NewEngine(ds.Data, ds.Dim(), vec.Euclidean, 1)
	out.Rows = append(out.Rows, GraphRow{
		Algorithm: "linear", Recall: 1,
		QPS:       measureQPS(qs, func(q []float32) { lin.Search(q, k) }),
		DistEvals: float64(ds.N()),
	})

	// Graph: one build, then sweep the beam.
	start := time.Now()
	g := graph.Build(ds.Data, ds.Dim(), graph.DefaultParams())
	gBuild := time.Since(start).Seconds()
	for _, ef := range graphEfs {
		var recall, evals float64
		for i, q := range qs {
			res, st := g.SearchEfStats(q, k, ef)
			recall += dataset.Recall(gt[i], res)
			evals += float64(st.DistEvals)
		}
		out.Rows = append(out.Rows, GraphRow{
			Algorithm:    "graph",
			Knob:         ef,
			Recall:       recall / float64(len(qs)),
			QPS:          measureQPS(qs, func(q []float32) { g.SearchEf(q, k, ef) }),
			DistEvals:    evals / float64(len(qs)),
			BuildSeconds: gBuild,
		})
	}

	// The paper's three approximate indexes over their Fig. 2 sweeps.
	start = time.Now()
	forest := kdtree.Build(ds.Data, ds.Dim(), kdtree.DefaultParams())
	forestBuild := time.Since(start).Seconds()
	start = time.Now()
	tree := kmeans.Build(ds.Data, ds.Dim(), kmeans.DefaultParams())
	treeBuild := time.Since(start).Seconds()
	start = time.Now()
	index := lsh.Build(ds.Data, ds.Dim(), lsh.DefaultParams())
	lshBuild := time.Since(start).Seconds()

	for _, checks := range figure2Knobs {
		if checks > ds.N() {
			continue
		}
		forest.Checks = checks
		var recall, evals float64
		for i, q := range qs {
			res, st := forest.SearchStats(q, k)
			recall += dataset.Recall(gt[i], res)
			evals += float64(st.DistEvals)
		}
		out.Rows = append(out.Rows, GraphRow{
			Algorithm:    "kdtree",
			Knob:         checks,
			Recall:       recall / float64(len(qs)),
			QPS:          measureQPS(qs, func(q []float32) { forest.Search(q, k) }),
			DistEvals:    evals / float64(len(qs)),
			BuildSeconds: forestBuild,
		})

		tree.Checks = checks
		recall, evals = 0, 0
		for i, q := range qs {
			res, st := tree.SearchStats(q, k)
			recall += dataset.Recall(gt[i], res)
			evals += float64(st.DistEvals)
		}
		out.Rows = append(out.Rows, GraphRow{
			Algorithm:    "kmeans",
			Knob:         checks,
			Recall:       recall / float64(len(qs)),
			QPS:          measureQPS(qs, func(q []float32) { tree.Search(q, k) }),
			DistEvals:    evals / float64(len(qs)),
			BuildSeconds: treeBuild,
		})
	}
	for _, probes := range figure2Probes {
		index.Probes = probes
		var recall, evals float64
		for i, q := range qs {
			res, st := index.SearchStats(q, k)
			recall += dataset.Recall(gt[i], res)
			evals += float64(st.DistEvals)
		}
		out.Rows = append(out.Rows, GraphRow{
			Algorithm:    "mplsh",
			Knob:         probes,
			Recall:       recall / float64(len(qs)),
			QPS:          measureQPS(qs, func(q []float32) { index.Search(q, k) }),
			DistEvals:    evals / float64(len(qs)),
			BuildSeconds: lshBuild,
		})
	}
	return out, nil
}

// GraphSweepReport formats GraphSweep, with the recall@0.9 frontier
// comparison in the notes.
func GraphSweepReport(o Options) (Report, error) {
	t, err := GraphSweep(o)
	if err != nil {
		return Report{}, err
	}
	r := Report{
		Title: fmt.Sprintf("Graph-traversal frontier: recall@%d vs. QPS on %s (%d x %dd)",
			t.K, t.Dataset, t.N, t.Dim),
		Header: []string{"Algorithm", "knob", "recall", "q/s", "dist evals", "build s"},
		Notes: []string{
			fmt.Sprintf("wall-clock on this machine, GOMAXPROCS=%d, single-threaded queries", t.GOMAXPROCS),
			"knob is efSearch (graph), checks (trees), probes (mplsh)",
		},
	}
	for _, row := range t.Rows {
		r.Rows = append(r.Rows, []string{
			row.Algorithm, itoa(row.Knob), f3(row.Recall), f1(row.QPS),
			f1(row.DistEvals), f2(row.BuildSeconds),
		})
	}
	best := t.BestAtRecall(0.9)
	for _, algo := range []string{"graph", "kdtree", "kmeans", "mplsh", "linear"} {
		if qps, ok := best[algo]; ok {
			r.Notes = append(r.Notes, fmt.Sprintf("best q/s at recall>=0.9: %s %.1f", algo, qps))
		} else {
			r.Notes = append(r.Notes, fmt.Sprintf("best q/s at recall>=0.9: %s never reaches 0.9", algo))
		}
	}
	return r, nil
}

// WriteGraphTrajectory writes the sweep in the committed
// BENCH_06_graph.json format (indented JSON, trailing newline).
func WriteGraphTrajectory(w io.Writer, t GraphTrajectory) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(t)
}
