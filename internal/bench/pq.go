package bench

// Quantized-scan throughput: the experiment behind the committed
// BENCH_09_pq.json. The ADC scan reads M code bytes per row instead
// of dim floats, so per-query work (and device-side DRAM traffic)
// drops by ~4·dim/M; the sweep measures what that buys in wall-clock
// QPS against the exact float32 linear scan at matched recall, with
// the re-rank depth as the accuracy knob. Wall-clock rates depend on
// the machine, so the trajectory records GOMAXPROCS and NumCPU like
// the vault sweep does.

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"time"

	"ssam/internal/dataset"
	"ssam/internal/knn"
	"ssam/internal/vec"
)

// pqMs is the subquantizer-count sweep: code bytes per row. Larger M
// means finer quantization (higher ADC recall) and a heavier scan.
var pqMs = []int{8, 16}

// pqReranks is the re-rank sweep — the accuracy/throughput knob, the
// quantized analogue of figure2Knobs. 0 is the ADC-only floor; the
// deep end matters because gist128's clusters hold ~1%-of-n near-tie
// rows each, so the re-rank must cover a cluster to recover the exact
// top-k ordering inside it (still only ~2% of the rows the float scan
// reads).
var pqReranks = []int{0, 50, 200, 500, 1000, 2000}

// PQSweepRow is one (M, rerank) point of the sweep.
type PQSweepRow struct {
	M            int     `json:"m"`
	Rerank       int     `json:"rerank"`
	Recall       float64 `json:"recall"`
	QPS          float64 `json:"qps"`
	Speedup      float64 `json:"speedup"`       // vs. the exact float32 linear scan
	CodeBytes    int     `json:"code_bytes"`    // resident code size, n·M
	BuildSeconds float64 `json:"build_seconds"` // codebook training + encoding, once per M
}

// PQTrajectory is the JSON shape committed as BENCH_09_pq.json.
type PQTrajectory struct {
	Experiment string `json:"experiment"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	// NumCPU records the machine's logical CPU count alongside
	// GOMAXPROCS (they differ under CPU quotas).
	NumCPU     int          `json:"numcpu"`
	Scale      float64      `json:"scale"`
	Queries    int          `json:"queries"`
	Dataset    string       `json:"dataset"`
	N          int          `json:"n"`
	Dim        int          `json:"dim"`
	K          int          `json:"k"`
	FloatBytes int          `json:"float_bytes"` // n·dim·4, what the exact scan reads
	LinearQPS  float64      `json:"linear_qps"`  // exact float32 baseline
	Rows       []PQSweepRow `json:"rows"`
}

// BestSpeedupAtRecall returns the highest speedup among rows with
// recall >= floor (the acceptance bar: >= 5x at recall >= 0.95), or 0
// if no row reaches the floor.
func (t PQTrajectory) BestSpeedupAtRecall(floor float64) float64 {
	best := 0.0
	for _, r := range t.Rows {
		if r.Recall >= floor && r.Speedup > best {
			best = r.Speedup
		}
	}
	return best
}

// PQSweep measures single-query host throughput and recall@k of the
// product-quantized engine against the exact float32 linear scan,
// single-threaded (the Fig. 2 methodology), on the gist128 workload.
// Each M trains one codebook; the re-rank depth is then swept on the
// same engine, so the sweep isolates the accuracy knob from training
// noise.
func PQSweep(o Options) (PQTrajectory, error) {
	o = o.Defaults()
	spec := GIST128Spec(o.Scale)
	ds := getDataset(spec)
	k := spec.K
	qs := clampQueries(ds.Queries, o.Queries)
	if len(qs) == 0 {
		return PQTrajectory{}, fmt.Errorf("bench: no queries for %s at scale %v", spec.Name, o.Scale)
	}
	out := PQTrajectory{
		Experiment: "pq",
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Scale:      o.Scale,
		Queries:    len(qs),
		Dataset:    spec.Name,
		N:          ds.N(),
		Dim:        ds.Dim(),
		K:          k,
		FloatBytes: ds.N() * ds.Dim() * 4,
	}
	gt := knn.GroundTruth(ds.Data, ds.Dim(), qs, k, 0)

	// Exact baseline: the serial float32 scan the speedups are against.
	lin := knn.NewEngine(ds.Data, ds.Dim(), vec.Euclidean, 1)
	out.LinearQPS = measureQPS(qs, func(q []float32) { lin.Search(q, k) })

	for _, m := range pqMs {
		if m > ds.Dim() {
			continue
		}
		start := time.Now()
		e, err := knn.NewPQEngine(ds.Data, ds.Dim(), vec.Euclidean,
			knn.PQParams{M: m, Seed: 0x9 /* PR 9 */}, 1)
		if err != nil {
			return out, err
		}
		build := time.Since(start).Seconds()
		e.SetSerialThreshold(0)
		for _, rr := range pqReranks {
			if rr > ds.N() {
				continue
			}
			e.SetRerank(rr)
			recall := 0.0
			for i, q := range qs {
				recall += dataset.Recall(gt[i], e.Search(q, k))
			}
			qps := measureQPS(qs, func(q []float32) { e.Search(q, k) })
			out.Rows = append(out.Rows, PQSweepRow{
				M:            m,
				Rerank:       rr,
				Recall:       recall / float64(len(qs)),
				QPS:          qps,
				Speedup:      qps / out.LinearQPS,
				CodeBytes:    ds.N() * m,
				BuildSeconds: build,
			})
		}
	}
	return out, nil
}

// PQSweepReport formats PQSweep, with the recall@0.95 speedup
// comparison (the acceptance bar) in the notes.
func PQSweepReport(o Options) (Report, error) {
	t, err := PQSweep(o)
	if err != nil {
		return Report{}, err
	}
	r := Report{
		Title: fmt.Sprintf("Quantized scan: recall@%d vs. QPS on %s (%d x %dd)",
			t.K, t.Dataset, t.N, t.Dim),
		Header: []string{"M", "rerank", "recall", "q/s", "speedup", "code MiB", "build s"},
		Notes: []string{
			fmt.Sprintf("wall-clock on this machine, GOMAXPROCS=%d NumCPU=%d, single-threaded queries", t.GOMAXPROCS, t.NumCPU),
			fmt.Sprintf("exact float32 linear baseline: %.1f q/s over %.1f MiB", t.LinearQPS, float64(t.FloatBytes)/(1<<20)),
			"speedup is vs. that baseline; rerank is the accuracy knob (0 = ADC only)",
		},
	}
	for _, row := range t.Rows {
		r.Rows = append(r.Rows, []string{
			itoa(row.M), itoa(row.Rerank), f3(row.Recall), f1(row.QPS),
			f2(row.Speedup), f2(float64(row.CodeBytes) / (1 << 20)), f2(row.BuildSeconds),
		})
	}
	if best := t.BestSpeedupAtRecall(0.95); best > 0 {
		r.Notes = append(r.Notes, fmt.Sprintf("best speedup at recall>=0.95: %.2fx", best))
	} else {
		r.Notes = append(r.Notes, "no configuration reaches recall 0.95")
	}
	return r, nil
}

// WritePQTrajectory writes the sweep in the committed BENCH_09_pq.json
// format (indented JSON, trailing newline).
func WritePQTrajectory(w io.Writer, t PQTrajectory) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(t)
}
