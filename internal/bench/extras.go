package bench

import (
	"fmt"

	"ssam/internal/dataset"
	"ssam/internal/knn"
	"ssam/internal/platform"
	"ssam/internal/power"
	"ssam/internal/ssamdev"
	"ssam/internal/tco"
	"ssam/internal/vec"
)

// PQRow is one vector length's hardware-vs-software priority queue
// comparison (the Section V-B ablation).
type PQRow struct {
	VectorLength int
	HWCycles     uint64
	SWCycles     uint64
	SpeedupPct   float64 // (SW - HW) / SW * 100
}

// PQAblation quantifies the hardware priority queue's benefit by
// running the same Euclidean scan with the single-cycle hardware queue
// and with the modeled software insert routine. The paper reports up
// to 9.2% for wider vector units, where the per-vector compute shrinks
// and queue overhead is proportionally larger.
func PQAblation(o Options) ([]PQRow, error) {
	o = o.Defaults()
	ds := getDataset(dataset.GloVeSpec(o.Scale))
	qs := clampQueries(ds.Queries, o.Queries)
	var rows []PQRow
	for _, vlen := range power.SupportedVectorLengths() {
		run := func(software bool) (uint64, error) {
			cfg := ssamdev.DefaultConfig(vlen)
			cfg.PU.SoftwareQueue = software
			dev, err := ssamdev.NewFloat(cfg, ds.Data, ds.Dim(), vec.Euclidean)
			if err != nil {
				return 0, err
			}
			var cycles uint64
			for _, q := range qs {
				_, st, err := dev.Search(q, ds.Spec.K)
				if err != nil {
					return 0, err
				}
				cycles += st.Cycles
			}
			return cycles, nil
		}
		hw, err := run(false)
		if err != nil {
			return nil, err
		}
		sw, err := run(true)
		if err != nil {
			return nil, err
		}
		rows = append(rows, PQRow{
			VectorLength: vlen,
			HWCycles:     hw,
			SWCycles:     sw,
			SpeedupPct:   100 * float64(sw-hw) / float64(sw),
		})
	}
	return rows, nil
}

// PQAblationReport formats PQAblation.
func PQAblationReport(o Options) (Report, error) {
	rows, err := PQAblation(o)
	if err != nil {
		return Report{}, err
	}
	r := Report{
		Title:  "Section V-B ablation: hardware vs software priority queue (paper: up to 9.2% for wider vector units)",
		Header: []string{"Design", "HW cycles", "SW cycles", "HW speedup"},
	}
	for _, row := range rows {
		r.Rows = append(r.Rows, []string{
			fmt.Sprintf("SSAM-%d", row.VectorLength),
			u64(row.HWCycles), u64(row.SWCycles), f2(row.SpeedupPct) + "%",
		})
	}
	return r, nil
}

// FixedRow is one dataset's float-vs-fixed-point agreement.
type FixedRow struct {
	Dataset string
	// Recall is the fixed-point engine's neighbor-set recall against
	// exact float search (Section II-D: "negligible accuracy loss").
	Recall float64
}

// FixedPoint reproduces the fixed-point representation study.
func FixedPoint(o Options) []FixedRow {
	o = o.Defaults()
	var rows []FixedRow
	for _, spec := range dataset.AllSpecs(o.Scale) {
		ds := getDataset(spec)
		qs := clampQueries(ds.Queries, o.Queries)
		gt := knn.GroundTruth(ds.Data, ds.Dim(), qs, spec.K, 0)
		fx := knn.NewFixedEngine(ds.ToFixed(), ds.Dim(), vec.Euclidean, 0)
		var recall float64
		for i, q := range qs {
			res := fx.Search(vec.ToFixedVec(q), spec.K)
			recall += dataset.Recall(gt[i], res)
		}
		rows = append(rows, FixedRow{Dataset: spec.Name, Recall: recall / float64(len(qs))})
	}
	return rows
}

// FixedPointReport formats FixedPoint.
func FixedPointReport(o Options) Report {
	r := Report{
		Title:  "Section II-D: 32-bit fixed point vs float accuracy (paper: negligible loss)",
		Header: []string{"Dataset", "Fixed-point recall"},
	}
	for _, row := range FixedPoint(o) {
		r.Rows = append(r.Rows, []string{row.Dataset, f3(row.Recall)})
	}
	return r
}

// TCO runs the Section VI-A cost analysis with the GIST workload:
// the CPU per-server throughput from the platform roofline and the
// SSAM per-module throughput from the simulator.
func TCO(o Options) (tco.Result, tco.Params, error) {
	o = o.Defaults()
	spec := dataset.GISTSpec(o.Scale)
	ds := getDataset(spec)
	full := paperN(spec.Name)

	cpuQPS := platform.XeonE5().LinearQPS(full, spec.Dim)

	dev, err := ssamdev.NewFloat(ssamdev.DefaultConfig(o.VectorLength), ds.Data, ds.Dim(), vec.Euclidean)
	if err != nil {
		return tco.Result{}, tco.Params{}, err
	}
	qs := clampQueries(ds.Queries, o.Queries)
	var secs float64
	for _, q := range qs {
		_, st, err := dev.Search(q, spec.K)
		if err != nil {
			return tco.Result{}, tco.Params{}, err
		}
		secs += st.Seconds
	}
	ssamQPS := extrapolateQPS(float64(len(qs))/secs, ds.N(), full)

	p := tco.PaperParams(cpuQPS, ssamQPS)
	pw, err := power.AcceleratorPower(o.VectorLength)
	if err != nil {
		return tco.Result{}, tco.Params{}, err
	}
	p.SSAMModulePowerW = pw.Total()
	p.NRECost = tco.NRE28nm
	// Fleet capex at commodity prices; the paper's analysis covers
	// compute energy only, but at self-consistent energy arithmetic
	// the capex consolidation is where the savings accrue.
	p.CapexPerCPUServer = 4000
	p.CapexPerSSAMServer = 6000
	return tco.Analyze(p), p, nil
}

// TCOReport formats TCO.
func TCOReport(o Options) (Report, error) {
	res, p, err := TCO(o)
	if err != nil {
		return Report{}, err
	}
	r := Report{
		Title:  "Section VI-A: datacenter cost of specialization (GIST workload)",
		Header: []string{"Quantity", "Value"},
		Rows: [][]string{
			{"unique queries/s", f1(res.UniqueQPS)},
			{"CPU q/s/server", f2(p.CPUQPSPerServer)},
			{"CPU servers", itoa(res.CPUServers)},
			{"CPU fleet power (kW)", f2(res.CPUFleetPowerW / 1000)},
			{"CPU 3-yr energy cost ($M)", f3(res.CPUEnergyCost / 1e6)},
			{"SSAM q/s/module", f2(p.SSAMQPSPerModule)},
			{"SSAM modules", itoa(res.SSAMModules)},
			{"SSAM fleet power (kW)", f2(res.SSAMFleetPowerW / 1000)},
			{"SSAM 3-yr energy cost ($M)", f3(res.SSAMEnergyCost / 1e6)},
			{"energy savings ($M)", f3(res.EnergySavings / 1e6)},
			{"CPU fleet capex ($M)", f3(res.CPUCapex / 1e6)},
			{"SSAM fleet capex ($M)", f3(res.SSAMCapex / 1e6)},
			{"total savings ($M)", f3(res.TotalSavings / 1e6)},
			{"NRE ($M)", f1(p.NRECost / 1e6)},
			{"net savings ($M)", f3(res.NetSavings / 1e6)},
			{"cost effective", fmt.Sprintf("%v", res.CostEffective)},
		},
		Notes: []string{"paper reference: ~1800 CPU servers, $772M vs $4.69M over 3 years (see EXPERIMENTS.md on the paper's energy arithmetic)"},
	}
	return r, nil
}
