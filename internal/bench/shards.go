package bench

import (
	"ssam"
	"ssam/internal/cluster"
	"ssam/internal/dataset"
)

// ShardRow is one shard-count point of the scatter-gather sweep.
type ShardRow struct {
	Shards  int
	QPS     float64 // from the slowest shard's simulated device latency
	Speedup float64 // vs. the single-shard cluster
	PUs     int     // total processing units across shards
}

// ShardSweep measures the serving-layer cluster (internal/cluster) the
// way Fig. 9 measures module composition: the same GloVe workload
// partitioned across 1..8 device-execution shards, each shard its own
// simulated SSAM module, with query latency set by the slowest shard
// (the fan-out critical path) and host-side top-k merge assumed free.
func ShardSweep(o Options) ([]ShardRow, error) {
	o = o.Defaults()
	ds := getDataset(dataset.GloVeSpec(o.Scale))
	qs := clampQueries(ds.Queries, o.Queries)

	var rows []ShardRow
	for _, shards := range []int{1, 2, 4, 8} {
		cl, err := cluster.New(ds.Dim(), ssam.Config{
			Execution:    ssam.Device,
			VectorLength: o.VectorLength,
		}, cluster.Options{Shards: shards})
		if err != nil {
			return nil, err
		}
		if err := cl.LoadFloat32(ds.Data); err != nil {
			cl.Free()
			return nil, err
		}
		if err := cl.BuildIndex(); err != nil {
			cl.Free()
			return nil, err
		}
		var secs float64
		var pus int
		for _, q := range qs {
			if _, err := cl.Search(q, ds.Spec.K); err != nil {
				cl.Free()
				return nil, err
			}
			st := cl.LastStats()
			secs += st.Combined.Seconds
			pus = st.Combined.ProcessingUnits
		}
		cl.Free()
		rows = append(rows, ShardRow{Shards: shards, QPS: float64(len(qs)) / secs, PUs: pus})
	}
	base := rows[0].QPS
	for i := range rows {
		rows[i].Speedup = rows[i].QPS / base
	}
	return rows, nil
}

// ShardSweepReport formats ShardSweep.
func ShardSweepReport(o Options) (Report, error) {
	rows, err := ShardSweep(o)
	if err != nil {
		return Report{}, err
	}
	r := Report{
		Title:  "Scatter-gather sharding: one dataset partitioned across SSAM shard clusters",
		Header: []string{"Shards", "q/s", "speedup", "total PUs"},
		Notes: []string{
			"each shard is an independent simulated device module; query latency is the slowest shard's",
		},
	}
	for _, row := range rows {
		r.Rows = append(r.Rows, []string{itoa(row.Shards), f1(row.QPS), f2(row.Speedup), itoa(row.PUs)})
	}
	return r, nil
}
