package bench

import (
	"strings"
	"testing"
)

func TestIndexConstructionShape(t *testing.T) {
	rows := IndexConstruction(tinyOpts())
	if len(rows) != 3 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		if r.BuildSeconds <= 0 || r.QuerySeconds <= 0 {
			t.Errorf("%s: non-positive timings %+v", r.Index, r)
		}
		// Construction is much slower than a single query (the paper
		// says ~3 orders of magnitude at full scale; at tiny scale the
		// gap shrinks but must remain decisively one-sided).
		if r.Ratio < 3 {
			t.Errorf("%s: build/query ratio %v, want build >> query", r.Index, r.Ratio)
		}
	}
}

func TestKMeansOffloadShape(t *testing.T) {
	rows, err := KMeansOffload(tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		if r.Speedup <= 1 {
			t.Errorf("K=%d: device not faster (%vx)", r.K, r.Speedup)
		}
	}
	// More centroids mean more compute per byte: device advantage
	// persists across K.
	if rows[2].DeviceSeconds <= rows[0].DeviceSeconds {
		t.Error("more centroids should cost more device time")
	}
}

func TestDeviceAssistedBuildShape(t *testing.T) {
	rows, err := DeviceAssistedBuild(tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows", len(rows))
	}
	std, dev := rows[0], rows[1]
	if dev.DeviceSeconds <= 0 {
		t.Fatal("no device scan time recorded")
	}
	// Precomputed cuts skip the per-node variance passes: the host
	// build must not get slower, and quality must stay comparable.
	if dev.Recall < std.Recall-0.15 {
		t.Errorf("assisted recall %v far below standard %v", dev.Recall, std.Recall)
	}
	if std.Recall < 0.5 || dev.Recall < 0.5 {
		t.Errorf("recalls implausibly low: %v / %v", std.Recall, dev.Recall)
	}
}

func TestDeviceIndexSweepShape(t *testing.T) {
	// Needs enough vectors per PU shard for pruning to exist; the
	// default tiny scale leaves single-leaf shards.
	rows, err := DeviceIndexSweep(Options{Scale: 0.005, Queries: 3, VectorLength: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 16 { // two datasets x two indexes x four budgets
		t.Fatalf("got %d rows", len(rows))
	}
	for i, r := range rows {
		if r.Recall <= 0 || r.DeviceQPS <= 0 || r.LinearQPS <= 0 {
			t.Errorf("row %d not populated: %+v", i, r)
		}
	}
	// Within each dataset/index group: recall non-decreasing across
	// the sweep; the smallest budget must beat the device's own linear
	// scan.
	for g := 0; g < 4; g++ {
		base := g * 4
		if rows[base+3].Recall < rows[base].Recall-0.02 {
			t.Errorf("%s/%s: recall fell across sweep", rows[base].Dataset, rows[base].Index)
		}
		if rows[base].DeviceQPS <= rows[base].LinearQPS {
			t.Errorf("%s/%s: bounded search (%v q/s) not faster than linear (%v q/s)",
				rows[base].Dataset, rows[base].Index, rows[base].DeviceQPS, rows[base].LinearQPS)
		}
	}
}

func TestDeviceLSHSweepShape(t *testing.T) {
	rows, err := DeviceLSHSweep(Options{Scale: 0.004, Queries: 3, VectorLength: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		if r.Recall <= 0 || r.DeviceQPS <= 0 {
			t.Errorf("bits=%d not populated: %+v", r.Bits, r)
		}
	}
	// Wider hashes prune harder: throughput rises, recall falls (or at
	// least does not improve) from the narrowest to the widest setting.
	if rows[3].DeviceQPS <= rows[0].DeviceQPS {
		t.Errorf("8-bit tables (%v q/s) not faster than 2-bit (%v q/s)",
			rows[3].DeviceQPS, rows[0].DeviceQPS)
	}
	if rows[3].Recall > rows[0].Recall+0.05 {
		t.Errorf("recall rose with narrower buckets: %v -> %v", rows[0].Recall, rows[3].Recall)
	}
}

func TestDeviceInstructionMixShape(t *testing.T) {
	rows, err := DeviceInstructionMix(tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("got %d rows", len(rows))
	}
	byName := map[string]DevMixRow{}
	for _, r := range rows {
		byName[r.Kernel] = r
		if r.VectorPct <= 0 || r.VectorPct > 100 || r.CyclesVec <= 0 {
			t.Errorf("%s: implausible mix %+v", r.Kernel, r)
		}
	}
	// The codesigned linear kernels are heavily vectorized; cosine's
	// scalar sqrt/divide fixup drags its vector share down; Euclidean
	// and Manhattan stream at similar cost.
	if byName["euclidean"].VectorPct < 50 {
		t.Errorf("euclidean Vector%% = %v, want >= 50", byName["euclidean"].VectorPct)
	}
	if byName["cosine"].VectorPct >= byName["euclidean"].VectorPct {
		t.Errorf("cosine (%v%%) should vectorize less than euclidean (%v%%)",
			byName["cosine"].VectorPct, byName["euclidean"].VectorPct)
	}
	if byName["hamming"].CyclesVec >= byName["euclidean"].CyclesVec {
		t.Errorf("hamming cycles/vector (%v) should undercut euclidean (%v)",
			byName["hamming"].CyclesVec, byName["euclidean"].CyclesVec)
	}
}

func TestReportCSV(t *testing.T) {
	r := Report{Title: "t", Header: []string{"a", "b"}, Rows: [][]string{{"1", "2"}}}
	var buf strings.Builder
	if err := r.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	want := "# t\na,b\n1,2\n"
	if buf.String() != want {
		t.Fatalf("CSV = %q, want %q", buf.String(), want)
	}
}

func TestEnergyPerQueryShape(t *testing.T) {
	rows, err := EnergyPerQuery(tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		if r.QueryEnergyJ <= 0 {
			t.Errorf("SSAM-%d: non-positive energy", r.VectorLength)
		}
		if r.Utilization <= 0 || r.Utilization > 1.01 {
			t.Errorf("SSAM-%d: utilization %v out of range", r.VectorLength, r.Utilization)
		}
	}
	// Wider vectors finish the scan in fewer cycles; energy per query
	// must not grow drastically with width.
	if rows[3].QueryEnergyJ > 4*rows[0].QueryEnergyJ {
		t.Errorf("SSAM-16 energy (%v) implausibly above SSAM-2 (%v)",
			rows[3].QueryEnergyJ, rows[0].QueryEnergyJ)
	}
}

func TestClusterScalingShape(t *testing.T) {
	rows, err := ClusterScaling(tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows", len(rows))
	}
	if rows[2].PUs <= rows[0].PUs {
		t.Error("more modules should mean more PUs")
	}
	// Sharding the same dataset across more modules shortens each
	// module's scan: throughput must improve.
	if rows[2].QPS <= rows[0].QPS {
		t.Errorf("4 modules (%v q/s) not faster than 1 (%v q/s)", rows[2].QPS, rows[0].QPS)
	}
}
