package bench

// Read throughput under live mutation: sweep the write fraction of a
// mixed operation stream against the mutable store (internal/mutate)
// with its background compactor running, the experiment behind the
// committed BENCH_07_mutate.json. This quantifies what the RCU
// snapshot design costs readers: writes copy tombstone bitmaps and
// take the writer mutex, but searches stay lock-free, so read QPS
// should degrade only with the physical-row growth writes cause, not
// with write-path contention.

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"runtime"
	"time"

	"ssam/internal/dataset"
	"ssam/internal/mutate"
	"ssam/internal/vec"
)

// writeFracs is the sweep's x-axis: read-only through a write-heavy
// half-and-half mix.
var writeFracs = []float64{0, 0.01, 0.05, 0.2, 0.5}

// mutateOpsPerQuery sets how many operations the mixed stream issues
// per configured query, so the measured loop is long enough for the
// background compactor to matter at every write fraction.
const mutateOpsPerQuery = 20

// MutateRow is one write-fraction point of the sweep.
type MutateRow struct {
	Dataset   string  `json:"dataset"`
	Dim       int     `json:"dim"`
	N         int     `json:"n"`
	K         int     `json:"k"`
	WriteFrac float64 `json:"write_frac"` // target fraction of ops that are writes
	Reads     int     `json:"reads"`
	Writes    int     `json:"writes"`
	ReadQPS   float64 `json:"read_qps"` // reads / elapsed of the mixed loop
	WriteQPS  float64 `json:"write_qps"`
	// Post-run store state: the committed seq watermark, surviving and
	// tombstoned rows, and how many compactor passes ran under the load.
	Seq           uint64 `json:"seq"`
	Live          int    `json:"live"`
	Dead          int    `json:"dead"`
	CompactPasses uint64 `json:"compact_passes"`
	VaultRewrites uint64 `json:"vault_rewrites"`
}

// MutateTrajectory is the JSON shape committed as BENCH_07_mutate.json.
type MutateTrajectory struct {
	Experiment string      `json:"experiment"`
	GOMAXPROCS int         `json:"gomaxprocs"`
	NumCPU     int         `json:"numcpu"`
	Scale      float64     `json:"scale"`
	Queries    int         `json:"queries"`
	Rows       []MutateRow `json:"rows"`
}

// MutateSweep measures single-threaded read throughput of the mutable
// float store on the GloVe shape while a write mix (upserts and
// deletes in equal parts, uniform over the id space) runs interleaved
// in the same stream and the background compactor reclaims tombstones
// every 10ms.
func MutateSweep(o Options) (MutateTrajectory, error) {
	o = o.Defaults()
	out := MutateTrajectory{
		Experiment: "mutate",
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Scale:      o.Scale,
		Queries:    o.Queries,
	}
	spec := dataset.GloVeSpec(o.Scale)
	ds := getDataset(spec)
	qs := clampQueries(ds.Queries, o.Queries)
	if len(qs) == 0 {
		return out, fmt.Errorf("bench: no queries for %s at scale %v", spec.Name, o.Scale)
	}
	n := ds.N()
	rows := make([][]float32, n)
	ids := make([]int, n)
	for i := range rows {
		rows[i] = ds.Row(i)
		ids[i] = i
	}
	ops := len(qs) * mutateOpsPerQuery
	for _, frac := range writeFracs {
		s := mutate.NewFloat(ds.Dim(), vec.Euclidean, mutate.Options{})
		if err := s.Seed(ids, rows); err != nil {
			return out, err
		}
		s.StartCompactor(10 * time.Millisecond)
		rng := rand.New(rand.NewSource(0x1107))
		// Warm-up read so first-touch costs stay out of the loop.
		s.Search(qs[0], spec.K)
		reads, writes := 0, 0
		start := time.Now()
		for i := 0; i < ops; i++ {
			if rng.Float64() < frac {
				id := rng.Intn(n)
				if writes%2 == 0 {
					// Re-upsert with another row's content: a same-size
					// replacement, the steady-state write shape.
					s.Upsert(id, rows[rng.Intn(n)])
				} else {
					s.Delete(id)
				}
				writes++
			} else {
				s.Search(qs[reads%len(qs)], spec.K)
				reads++
			}
		}
		secs := time.Since(start).Seconds()
		st := s.Stats()
		s.Close()
		row := MutateRow{
			Dataset: spec.Name, Dim: ds.Dim(), N: n, K: spec.K,
			WriteFrac: frac, Reads: reads, Writes: writes,
			Seq: st.Seq, Live: st.Live, Dead: st.Dead,
			CompactPasses: st.CompactPasses, VaultRewrites: st.VaultRewrites,
		}
		if secs > 0 {
			row.ReadQPS = float64(reads) / secs
			row.WriteQPS = float64(writes) / secs
		}
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

// MutateSweepReport formats MutateSweep.
func MutateSweepReport(o Options) (Report, error) {
	t, err := MutateSweep(o)
	if err != nil {
		return Report{}, err
	}
	r := Report{
		Title:  "Mutable store: read throughput under a live write mix",
		Header: []string{"Dataset", "write frac", "reads/s", "writes/s", "seq", "live", "dead", "compactions"},
		Notes: []string{
			fmt.Sprintf("wall-clock on this machine, GOMAXPROCS=%d NumCPU=%d; background compactor every 10ms", t.GOMAXPROCS, t.NumCPU),
			"writes are 50:50 upsert:delete over a uniform id space; searches never block on them (RCU snapshots)",
		},
	}
	for _, row := range t.Rows {
		r.Rows = append(r.Rows, []string{
			row.Dataset, f2(row.WriteFrac), f1(row.ReadQPS), f1(row.WriteQPS),
			itoa(int(row.Seq)), itoa(row.Live), itoa(row.Dead), itoa(int(row.CompactPasses)),
		})
	}
	return r, nil
}

// WriteMutateTrajectory writes the sweep in the committed
// BENCH_07_mutate.json format (indented JSON, trailing newline).
func WriteMutateTrajectory(w io.Writer, t MutateTrajectory) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(t)
}
