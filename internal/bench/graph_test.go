package bench

import (
	"bytes"
	"encoding/json"
	"testing"
)

func TestGraphSweepShape(t *testing.T) {
	o := Options{Scale: 0.001, Queries: 3}
	tr, err := GraphSweep(o)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Experiment != "graph" || tr.Dataset != "gist128" || tr.Dim != 128 {
		t.Fatalf("trajectory header: %+v", tr)
	}
	if tr.GOMAXPROCS <= 0 || tr.N <= 0 || tr.K != 10 {
		t.Fatalf("trajectory context: %+v", tr)
	}
	algos := map[string]int{}
	for _, r := range tr.Rows {
		algos[r.Algorithm]++
		if r.QPS <= 0 || r.Recall < 0 || r.Recall > 1 {
			t.Fatalf("implausible row %+v", r)
		}
	}
	if algos["linear"] != 1 || algos["graph"] != len(graphEfs) ||
		algos["kdtree"] == 0 || algos["kmeans"] == 0 || algos["mplsh"] == 0 {
		t.Fatalf("algorithm coverage: %v", algos)
	}
	// The exact baseline anchors the frontier map at recall 1.
	best := tr.BestAtRecall(0.9)
	if best["linear"] <= 0 {
		t.Fatalf("BestAtRecall missing linear baseline: %v", best)
	}
	if _, ok := best["graph"]; !ok {
		t.Fatalf("graph never reached recall 0.9 at scale %v: %v", o.Scale, best)
	}

	var buf bytes.Buffer
	if err := WriteGraphTrajectory(&buf, tr); err != nil {
		t.Fatal(err)
	}
	var back GraphTrajectory
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if len(back.Rows) != len(tr.Rows) || back.Dataset != tr.Dataset {
		t.Fatalf("JSON round trip changed the trajectory")
	}

	r, err := GraphSweepReport(Options{Scale: 0.001, Queries: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) == 0 || len(r.Header) != 6 {
		t.Fatalf("report shape: %d rows, header %v", len(r.Rows), r.Header)
	}
}
