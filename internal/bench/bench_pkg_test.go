package bench

import (
	"bytes"
	"strings"
	"testing"
)

// Tiny options so the whole suite stays CI-friendly.
func tinyOpts() Options {
	return Options{Scale: 0.0012, Queries: 3, VectorLength: 4}
}

func TestTableIShapeMatchesPaper(t *testing.T) {
	rows := TableI(tinyOpts())
	if len(rows) != 4 {
		t.Fatalf("got %d rows", len(rows))
	}
	byName := map[string]TableIRow{}
	for _, r := range rows {
		byName[r.Algorithm] = r
		if r.VectorPct < 0 || r.ReadPct < 0 || r.WritePct < 0 {
			t.Fatalf("negative percentages: %+v", r)
		}
	}
	if byName["Linear"].VectorPct <= byName["KD-Tree"].VectorPct {
		t.Error("linear should vectorize more than kd-tree")
	}
	if byName["K-Means"].VectorPct <= byName["MPLSH"].VectorPct {
		t.Error("k-means should vectorize more than MPLSH")
	}
	if byName["KD-Tree"].WritePct <= byName["Linear"].WritePct {
		t.Error("kd-tree should write more than linear")
	}
}

func TestTableIIReportCoversISA(t *testing.T) {
	r := TableIIReport()
	var buf bytes.Buffer
	r.Print(&buf)
	for _, mnemonic := range []string{"PQUEUE_INSERT", "FXP", "MEM_FETCH", "PUSH"} {
		if !strings.Contains(buf.String(), mnemonic) {
			t.Errorf("Table II report missing %s", mnemonic)
		}
	}
}

func TestTableIIIAndIVReports(t *testing.T) {
	for _, r := range []Report{TableIIIReport(), TableIVReport()} {
		if len(r.Rows) != 4 {
			t.Fatalf("%s: %d rows", r.Title, len(r.Rows))
		}
		var buf bytes.Buffer
		r.Print(&buf)
		if !strings.Contains(buf.String(), "SSAM-16") {
			t.Fatalf("%s: missing SSAM-16 row", r.Title)
		}
	}
}

func TestTableVShape(t *testing.T) {
	rows, err := TableV(tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		if r.Euclidean != 1 {
			t.Errorf("%s: euclidean baseline %v", r.Dataset, r.Euclidean)
		}
		if r.Hamming < 1.5 {
			t.Errorf("%s: hamming %vx, want clearly above euclidean", r.Dataset, r.Hamming)
		}
		if r.Cosine >= 1 || r.Cosine < 0.15 {
			t.Errorf("%s: cosine %vx, want below euclidean (paper ~0.47)", r.Dataset, r.Cosine)
		}
		if r.Manhattan > 1.3 || r.Manhattan < 0.5 {
			t.Errorf("%s: manhattan %vx, want near 1", r.Dataset, r.Manhattan)
		}
	}
	// Hamming advantage grows with dimensionality (4.38 -> 9.38 in the
	// paper from GloVe to AlexNet).
	if rows[2].Hamming <= rows[0].Hamming {
		t.Errorf("hamming advantage should grow with dims: %v vs %v", rows[0].Hamming, rows[2].Hamming)
	}
}

func TestTableVIShape(t *testing.T) {
	rows, err := TableVI(tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		if r.SSAM4 <= r.APGen1 || r.SSAM4 <= r.APGen2 {
			t.Errorf("%s: SSAM (%v) should beat AP (%v, %v)", r.Dataset, r.SSAM4, r.APGen1, r.APGen2)
		}
		if r.APGen2 <= r.APGen1 {
			t.Errorf("%s: gen2 (%v) should beat gen1 (%v)", r.Dataset, r.APGen2, r.APGen1)
		}
	}
}

func TestFigure2Shape(t *testing.T) {
	pts := Figure2(tinyOpts())
	if len(pts) == 0 {
		t.Fatal("no points")
	}
	// Each dataset must include a linear point at recall 1 and sweep
	// points with recall rising in checks for tree indexes.
	byAlgo := map[string][]CurvePoint{}
	for _, p := range pts {
		if p.Dataset != "glove" {
			continue
		}
		byAlgo[p.Algorithm] = append(byAlgo[p.Algorithm], p)
	}
	if len(byAlgo["linear"]) != 1 || byAlgo["linear"][0].Recall != 1 {
		t.Fatalf("linear baseline wrong: %+v", byAlgo["linear"])
	}
	kd := byAlgo["kdtree"]
	if len(kd) < 3 {
		t.Fatalf("kd sweep too short: %d", len(kd))
	}
	if kd[len(kd)-1].Recall < kd[0].Recall-0.05 {
		t.Errorf("kd recall not improving across sweep: %v -> %v", kd[0].Recall, kd[len(kd)-1].Recall)
	}
	if len(byAlgo["mplsh"]) == 0 || len(byAlgo["kmeans"]) == 0 {
		t.Fatal("missing algorithms in sweep")
	}
}

func TestFigure6Shape(t *testing.T) {
	rows, err := Figure6(tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	get := func(platform, ds string) Fig6Row {
		for _, r := range rows {
			if r.Platform == platform && r.Dataset == ds {
				return r
			}
		}
		t.Fatalf("missing row %s/%s", platform, ds)
		return Fig6Row{}
	}
	for _, ds := range []string{"glove", "gist", "alexnet"} {
		cpu := get("cpu-xeon-e5-2620", ds)
		ssam := get("ssam-8", ds)
		gpu := get("gpu-titan-x", ds)
		// The headline: orders of magnitude area-normalized and energy
		// advantage for SSAM over CPU.
		if ssam.AreaNormQPS/cpu.AreaNormQPS < 20 {
			t.Errorf("%s: SSAM/CPU area-norm ratio = %v, want >> 20",
				ds, ssam.AreaNormQPS/cpu.AreaNormQPS)
		}
		if ssam.QPerJoule/cpu.QPerJoule < 20 {
			t.Errorf("%s: SSAM/CPU energy ratio = %v, want >> 20",
				ds, ssam.QPerJoule/cpu.QPerJoule)
		}
		// GPU beats CPU raw, SSAM beats GPU area-normalized.
		if gpu.QPS <= cpu.QPS {
			t.Errorf("%s: GPU raw qps should beat CPU", ds)
		}
		if ssam.AreaNormQPS <= gpu.AreaNormQPS {
			t.Errorf("%s: SSAM area-norm should beat GPU", ds)
		}
	}
}

func TestFigure7Shape(t *testing.T) {
	pts, err := Figure7(tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, p := range pts {
		if p.Algorithm == "linear" || p.SSAMQPS == 0 {
			continue
		}
		found = true
		if p.SSAMQPS <= p.QPS/100 {
			t.Errorf("%s/%s: SSAM modeled qps (%v) implausibly slow vs CPU (%v)",
				p.Dataset, p.Algorithm, p.SSAMQPS, p.QPS)
		}
	}
	if !found {
		t.Fatal("no SSAM points")
	}
}

func TestPQAblationShape(t *testing.T) {
	rows, err := PQAblation(tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		if r.SWCycles <= r.HWCycles {
			t.Errorf("SSAM-%d: software queue not slower", r.VectorLength)
		}
		if r.SpeedupPct <= 0 || r.SpeedupPct > 25 {
			t.Errorf("SSAM-%d: speedup %v%% out of plausible range", r.VectorLength, r.SpeedupPct)
		}
	}
	// Benefit grows for wider vector units (paper: up to 9.2%).
	if rows[3].SpeedupPct <= rows[0].SpeedupPct {
		t.Errorf("speedup should grow with vector width: %v vs %v",
			rows[0].SpeedupPct, rows[3].SpeedupPct)
	}
}

func TestFixedPointNegligibleLoss(t *testing.T) {
	rows := FixedPoint(tinyOpts())
	if len(rows) != 3 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		if r.Recall < 0.95 {
			t.Errorf("%s: fixed-point recall %v, want ~1", r.Dataset, r.Recall)
		}
	}
}

func TestTCOConclusion(t *testing.T) {
	res, p, err := TCO(tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	if res.CPUServers < 1000 {
		t.Errorf("CPU fleet = %d servers, expected ~1800 at paper scale", res.CPUServers)
	}
	if res.SSAMFleetPowerW >= res.CPUFleetPowerW {
		t.Error("SSAM fleet should draw less power")
	}
	if p.SSAMQPSPerModule <= p.CPUQPSPerServer {
		t.Error("one SSAM module should beat one CPU server")
	}
}

func TestReportsPrint(t *testing.T) {
	o := tinyOpts()
	reports := []Report{TableIReport(o), TableIIReport(), TableIIIReport(), TableIVReport(), FixedPointReport(o)}
	if r, err := TableVReport(o); err == nil {
		reports = append(reports, r)
	} else {
		t.Fatal(err)
	}
	if r, err := TCOReport(o); err == nil {
		reports = append(reports, r)
	} else {
		t.Fatal(err)
	}
	for _, r := range reports {
		var buf bytes.Buffer
		r.Print(&buf)
		if buf.Len() == 0 || !strings.Contains(buf.String(), "==") {
			t.Errorf("%s: empty print", r.Title)
		}
	}
}
