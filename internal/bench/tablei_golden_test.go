package bench

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files from current output")

// goldenOpts pins every knob that feeds Table I. The dataset
// generator, the three index builders, and the single-worker linear
// engine are all seed-deterministic, so the instruction-mix
// percentages are exactly reproducible — any drift is a real change
// to the profiling model, not noise.
func goldenOpts() Options {
	return Options{Scale: 0.0012, Queries: 3, VectorLength: 4, Workers: 1}
}

func renderTableI(rows []TableIRow) string {
	var b strings.Builder
	b.WriteString("algorithm vector% read% write%\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%s %.4f %.4f %.4f\n", r.Algorithm, r.VectorPct, r.ReadPct, r.WritePct)
	}
	return b.String()
}

// TestTableIGolden freezes the Table I instruction-mix percentages on
// the deterministic synthetic GloVe workload. Regenerate with
// `go test ./internal/bench -run TableIGolden -update` after an
// intentional change to internal/profile or the index builders, and
// review the diff against the paper's figures (Linear 54.75/45.23/0.44
// etc.) before committing.
func TestTableIGolden(t *testing.T) {
	got := renderTableI(TableI(goldenOpts()))
	path := filepath.Join("testdata", "tablei.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", path)
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("Table I instruction mix drifted from golden.\ngot:\n%swant:\n%s"+
			"If the profiling model changed intentionally, rerun with -update.", got, want)
	}
}

// TestTableIGoldenDeterministic guards the premise of the golden test:
// two fresh runs must agree bit-for-bit.
func TestTableIGoldenDeterministic(t *testing.T) {
	a := renderTableI(TableI(goldenOpts()))
	b := renderTableI(TableI(goldenOpts()))
	if a != b {
		t.Fatalf("Table I not deterministic:\nfirst:\n%s\nsecond:\n%s", a, b)
	}
}
