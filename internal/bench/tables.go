package bench

import (
	"fmt"

	"ssam/internal/ap"
	"ssam/internal/dataset"
	"ssam/internal/isa"
	"ssam/internal/kdtree"
	"ssam/internal/kmeans"
	"ssam/internal/knn"
	"ssam/internal/lsh"
	"ssam/internal/power"
	"ssam/internal/profile"
	"ssam/internal/ssamdev"
	"ssam/internal/vec"
)

// TableIRow is one algorithm's instruction-mix profile on the GloVe
// workload.
type TableIRow struct {
	Algorithm string
	VectorPct float64
	ReadPct   float64
	WritePct  float64
}

// TableI reproduces the instruction-mix characterization: the four
// kNN algorithm classes run over the GloVe-like workload with their
// measured work converted to instruction categories (internal/profile).
func TableI(o Options) []TableIRow {
	o = o.Defaults()
	ds := getDataset(dataset.GloVeSpec(o.Scale))
	k := ds.Spec.K
	qs := clampQueries(ds.Queries, o.Queries)

	var linear, kd, km, mp profile.Mix

	e := knn.NewEngine(ds.Data, ds.Dim(), vec.Euclidean, 1)
	forest := kdtree.Build(ds.Data, ds.Dim(), kdtree.DefaultParams())
	forest.Checks = ds.N() / 16
	tree := kmeans.Build(ds.Data, ds.Dim(), kmeans.DefaultParams())
	tree.Checks = ds.N() / 16
	index := lsh.Build(ds.Data, ds.Dim(), lsh.DefaultParams())
	index.Probes = 8

	for _, q := range qs {
		_, st1 := e.SearchStats(q, k)
		linear.Add(profile.LinearMix(st1, k))
		_, st2 := forest.SearchStats(q, k)
		kd.Add(profile.KDTreeMix(st2, k))
		_, st3 := tree.SearchStats(q, k)
		km.Add(profile.KMeansMix(st3, k))
		_, st4 := index.SearchStats(q, k)
		mp.Add(profile.MPLSHMix(st4, k))
	}
	rows := []TableIRow{
		{"Linear", linear.VectorPct(), linear.ReadPct(), linear.WritePct()},
		{"KD-Tree", kd.VectorPct(), kd.ReadPct(), kd.WritePct()},
		{"K-Means", km.VectorPct(), km.ReadPct(), km.WritePct()},
		{"MPLSH", mp.VectorPct(), mp.ReadPct(), mp.WritePct()},
	}
	return rows
}

// TableIReport formats TableI.
func TableIReport(o Options) Report {
	r := Report{
		Title:  "Table I: instruction mix, GloVe workload (paper: Linear 54.75/45.23/0.44, KD 28.75/31.60/10.21, KM 51.63/44.96/1.12, MPLSH 18.69/31.53/14.16)",
		Header: []string{"Algorithm", "Vector%", "MemRead%", "MemWrite%"},
	}
	for _, row := range TableI(o) {
		r.Rows = append(r.Rows, []string{row.Algorithm, f2(row.VectorPct), f2(row.ReadPct), f2(row.WritePct)})
	}
	return r
}

// TableIIReport lists the implemented instruction set (Table II).
func TableIIReport() Report {
	r := Report{
		Title:  "Table II: SSAM processing-unit instruction set",
		Header: []string{"Mnemonic", "Forms", "Immediate"},
	}
	for op := isa.Op(0); int(op) < isa.NumOps; op++ {
		forms := "S"
		if op.VectorCapable() {
			forms = "S/V"
		}
		imm := ""
		if op.HasImmediate() {
			imm = "imm"
		}
		r.Rows = append(r.Rows, []string{op.String(), forms, imm})
	}
	return r
}

// moduleRows renders a power/area Module breakdown table.
func moduleRows(get func(vlen int) (power.Module, error)) [][]string {
	var rows [][]string
	for _, vlen := range power.SupportedVectorLengths() {
		m, err := get(vlen)
		if err != nil {
			continue
		}
		rows = append(rows, []string{
			fmt.Sprintf("SSAM-%d", vlen),
			f2(m.PriorityQueue), f2(m.StackUnit), f2(m.ALUs), f2(m.Scratchpad),
			f2(m.RegFiles), f2(m.InsMemory), f2(m.PipelineControl), f2(m.Total()),
		})
	}
	return rows
}

// TableIIIReport reproduces the accelerator power breakdown.
func TableIIIReport() Report {
	return Report{
		Title:  "Table III: SSAM accelerator power by module (W, 28 nm)",
		Header: []string{"Module", "PQueue", "Stack", "ALUs", "Scratchpad", "RegFiles", "InsMem", "Pipe/Ctl", "Total"},
		Rows:   moduleRows(power.AcceleratorPower),
		Notes:  []string{"totals are row sums; the paper's printed totals are slightly lower (see EXPERIMENTS.md)"},
	}
}

// TableIVReport reproduces the accelerator area breakdown.
func TableIVReport() Report {
	return Report{
		Title:  "Table IV: SSAM accelerator area by module (mm^2, 28 nm)",
		Header: []string{"Module", "PQueue", "Stack", "ALUs", "Scratchpad", "RegFiles", "InsMem", "Pipe/Ctl", "Total"},
		Rows:   moduleRows(power.AcceleratorArea),
	}
}

// TableVRow is one dataset's relative distance-metric throughput on
// the simulated SSAM.
type TableVRow struct {
	Dataset   string
	Euclidean float64 // always 1.0
	Hamming   float64
	Cosine    float64
	Manhattan float64
}

// TableV reproduces the alternative-distance-metric comparison: each
// metric's kernel simulated on SSAM-4 over each dataset, normalized to
// Euclidean (paper: Hamming 4.4-9.4x, cosine ~0.46x, Manhattan ~1x).
func TableV(o Options) ([]TableVRow, error) {
	o = o.Defaults()
	vlen := 4 // the paper reports Table V for SSAM-4
	var rows []TableVRow
	for _, spec := range dataset.AllSpecs(o.Scale) {
		ds := getDataset(spec)
		qs := clampQueries(ds.Queries, o.Queries)

		qps := func(metric vec.Metric) (float64, error) {
			cfg := ssamdev.DefaultConfig(vlen)
			dev, err := ssamdev.NewFloat(cfg, ds.Data, ds.Dim(), metric)
			if err != nil {
				return 0, err
			}
			var total float64
			for _, q := range qs {
				_, st, err := dev.Search(q, spec.K)
				if err != nil {
					return 0, err
				}
				total += st.Seconds
			}
			return float64(len(qs)) / total, nil
		}
		eu, err := qps(vec.Euclidean)
		if err != nil {
			return nil, err
		}
		ma, err := qps(vec.Manhattan)
		if err != nil {
			return nil, err
		}
		co, err := qps(vec.Cosine)
		if err != nil {
			return nil, err
		}
		// Hamming on the binarized dataset.
		dev, err := ssamdev.NewBinary(ssamdev.DefaultConfig(vlen), ds.ToBinary())
		if err != nil {
			return nil, err
		}
		var total float64
		for _, q := range qs {
			code := vec.SignBinarize(q, ds.Means())
			_, st, err := dev.SearchBinary(code, spec.K)
			if err != nil {
				return nil, err
			}
			total += st.Seconds
		}
		ha := float64(len(qs)) / total

		rows = append(rows, TableVRow{
			Dataset:   spec.Name,
			Euclidean: 1,
			Hamming:   ha / eu,
			Cosine:    co / eu,
			Manhattan: ma / eu,
		})
	}
	return rows, nil
}

// TableVReport formats TableV.
func TableVReport(o Options) (Report, error) {
	rows, err := TableV(o)
	if err != nil {
		return Report{}, err
	}
	r := Report{
		Title:  "Table V: relative throughput of distance metrics on SSAM-4 (paper: Hamming 4.38/7.98/9.38x, cosine 0.46/0.47/0.47x, Manhattan 0.94/0.99/0.99x)",
		Header: []string{"Dataset", "Euclidean", "Hamming", "Cosine", "Manhattan"},
	}
	for _, row := range rows {
		r.Rows = append(r.Rows, []string{row.Dataset, f2(row.Euclidean), f2(row.Hamming) + "x", f2(row.Cosine) + "x", f2(row.Manhattan) + "x"})
	}
	return r, nil
}

// TableVIRow compares SSAM-4 against the Automata Processor on linear
// Hamming kNN at full dataset scale (queries/s).
type TableVIRow struct {
	Dataset string
	SSAM4   float64
	APGen1  float64
	APGen2  float64
}

// TableVI reproduces the SSAM/AP comparison: SSAM-4 throughput from
// the simulator (extrapolated to full scale); AP generations from the
// calibrated reconfiguration model.
func TableVI(o Options) ([]TableVIRow, error) {
	o = o.Defaults()
	var rows []TableVIRow
	for _, spec := range dataset.AllSpecs(o.Scale) {
		ds := getDataset(spec)
		qs := clampQueries(ds.Queries, o.Queries)
		dev, err := ssamdev.NewBinary(ssamdev.DefaultConfig(4), ds.ToBinary())
		if err != nil {
			return nil, err
		}
		var total float64
		for _, q := range qs {
			code := vec.SignBinarize(q, ds.Means())
			_, st, err := dev.SearchBinary(code, spec.K)
			if err != nil {
				return nil, err
			}
			total += st.Seconds
		}
		full := paperN(spec.Name)
		qps := extrapolateQPS(float64(len(qs))/total, ds.N(), full)
		rows = append(rows, TableVIRow{
			Dataset: spec.Name,
			SSAM4:   qps,
			APGen1:  ap.Gen1().QPS(full, spec.Dim),
			APGen2:  ap.Gen2().QPS(full, spec.Dim),
		})
	}
	return rows, nil
}

// TableVIReport formats TableVI.
func TableVIReport(o Options) (Report, error) {
	rows, err := TableVI(o)
	if err != nil {
		return Report{}, err
	}
	r := Report{
		Title:  "Table VI: linear Hamming kNN throughput, SSAM-4 vs Automata Processor (paper: SSAM 2059/481/134, AP1 288/2.64/0.553, AP2 1117/10.55/0.951 q/s)",
		Header: []string{"Dataset", "SSAM-4 q/s", "AP gen1 q/s", "AP gen2 q/s"},
	}
	for _, row := range rows {
		r.Rows = append(r.Rows, []string{row.Dataset, f1(row.SSAM4), g3(row.APGen1), g3(row.APGen2)})
	}
	return r, nil
}
