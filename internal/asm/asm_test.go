package asm

import (
	"strings"
	"testing"

	"ssam/internal/isa"
)

func mustAssemble(t *testing.T, src string) []isa.Inst {
	t.Helper()
	prog, err := Assemble(src)
	if err != nil {
		t.Fatalf("Assemble: %v", err)
	}
	return prog
}

func TestAssembleBasic(t *testing.T) {
	prog := mustAssemble(t, `
		; a tiny program
		ADDI s1, s0, 10
		XOR  s2, s2, s2
	loop:	ADDI s2, s2, 1
		BLT  s2, s1, loop
		HALT
	`)
	if len(prog) != 5 {
		t.Fatalf("got %d instructions", len(prog))
	}
	if prog[0].Op != isa.ADDI || prog[0].Rd != 1 || prog[0].Imm != 10 {
		t.Fatalf("inst 0 = %v", prog[0])
	}
	if prog[3].Op != isa.BLT || prog[3].Imm != 2 {
		t.Fatalf("branch = %v, want target 2", prog[3])
	}
	if prog[4].Op != isa.HALT {
		t.Fatalf("last inst = %v", prog[4])
	}
}

func TestAssembleVectorForms(t *testing.T) {
	prog := mustAssemble(t, `
		VADD v1, v2, v3
		VLOAD v0, s4, 16
		VFXP v5, v6, v7
		SFXP s5, s6, s7
		SVMOVE v2, s9, -1
		VSMOVE s9, v2, 3
		HALT
	`)
	if !prog[0].Vector || prog[0].Op != isa.ADD {
		t.Fatalf("VADD = %v", prog[0])
	}
	if !prog[1].Vector || prog[1].Op != isa.LOAD || prog[1].Rs1 != 4 || prog[1].Imm != 16 {
		t.Fatalf("VLOAD = %v", prog[1])
	}
	if !prog[2].Vector || prog[2].Op != isa.FXP {
		t.Fatalf("VFXP = %v", prog[2])
	}
	if prog[3].Vector || prog[3].Op != isa.FXP {
		t.Fatalf("SFXP = %v", prog[3])
	}
	if prog[4].Op != isa.SVMOVE || prog[4].Rd != 2 || prog[4].Rs1 != 9 || prog[4].Imm != -1 {
		t.Fatalf("SVMOVE = %v", prog[4])
	}
	if prog[5].Op != isa.VSMOVE || prog[5].Rd != 9 || prog[5].Rs1 != 2 || prog[5].Imm != 3 {
		t.Fatalf("VSMOVE = %v", prog[5])
	}
}

func TestAssembleQueueAndStack(t *testing.T) {
	prog := mustAssemble(t, `
		PQUEUE_RESET
		PQUEUE_INSERT s1, s2
		PQUEUE_LOAD s3, 5
		PUSH s4
		POP s5
		MEM_FETCH s6, 128
		HALT
	`)
	if prog[0].Op != isa.PQUEUERESET {
		t.Fatalf("inst 0 = %v", prog[0])
	}
	if prog[1].Op != isa.PQUEUEINSERT || prog[1].Rs1 != 1 || prog[1].Rs2 != 2 {
		t.Fatalf("insert = %v", prog[1])
	}
	if prog[2].Op != isa.PQUEUELOAD || prog[2].Rd != 3 || prog[2].Imm != 5 {
		t.Fatalf("load = %v", prog[2])
	}
	if prog[3].Op != isa.PUSH || prog[3].Rs1 != 4 {
		t.Fatalf("push = %v", prog[3])
	}
	if prog[4].Op != isa.POP || prog[4].Rd != 5 {
		t.Fatalf("pop = %v", prog[4])
	}
	if prog[5].Op != isa.MEMFETCH || prog[5].Rs1 != 6 || prog[5].Imm != 128 {
		t.Fatalf("fetch = %v", prog[5])
	}
}

func TestAssembleHexImmediate(t *testing.T) {
	prog := mustAssemble(t, "ADDI s1, s0, 0x1000000\nHALT")
	if prog[0].Imm != 0x1000000 {
		t.Fatalf("imm = %d", prog[0].Imm)
	}
}

func TestAssembleErrors(t *testing.T) {
	cases := []string{
		"FROB s1, s2, s3",            // unknown mnemonic
		"ADD s1, s2",                 // missing operand
		"ADD s1, s2, v3",             // wrong register file
		"ADD s1, s2, s32",            // register out of range
		"VADD v1, v2, v8",            // vector register out of range
		"BNE s1, s2, nowhere",        // unknown label
		"x: ADD s1, s1, s1\nx: HALT", // duplicate label
		"ADDI s1, s0, zzz",           // bad immediate
		"VPUSH s1",                   // no vector form
	}
	for _, src := range cases {
		if _, err := Assemble(src); err == nil {
			t.Errorf("no error for %q", src)
		}
	}
}

func TestAssembleForwardBranch(t *testing.T) {
	prog := mustAssemble(t, `
		BE s0, s0, done
		ADDI s1, s1, 1
	done:	HALT
	`)
	if prog[0].Imm != 2 {
		t.Fatalf("forward branch target = %d, want 2", prog[0].Imm)
	}
}

func TestLabelOnOwnLine(t *testing.T) {
	prog := mustAssemble(t, `
	start:
		ADDI s1, s1, 1
		J start
	`)
	if prog[1].Imm != 0 {
		t.Fatalf("J target = %d, want 0", prog[1].Imm)
	}
}

func TestDisassembleRoundTrip(t *testing.T) {
	src := `
		XOR s0, s0, s0
		ADDI s1, s0, 7
	loop:	SUBI s1, s1, 1
		PQUEUE_INSERT s1, s1
		BGT s1, s0, loop
		VADD v1, v1, v2
		SVMOVE v0, s3, 2
		HALT
	`
	prog := mustAssemble(t, src)
	text := Disassemble(prog)
	prog2, err := Assemble(text)
	if err != nil {
		t.Fatalf("reassemble: %v\n%s", err, text)
	}
	if len(prog) != len(prog2) {
		t.Fatalf("length changed: %d -> %d", len(prog), len(prog2))
	}
	for i := range prog {
		if prog[i] != prog2[i] {
			t.Fatalf("inst %d changed: %v -> %v\n%s", i, prog[i], prog2[i], text)
		}
	}
}

func TestCommentStyles(t *testing.T) {
	prog := mustAssemble(t, "ADD s1, s1, s1 ; semicolon\nADD s2, s2, s2 # hash\nHALT")
	if len(prog) != 3 {
		t.Fatalf("got %d instructions", len(prog))
	}
}

func TestErrorReportsLine(t *testing.T) {
	_, err := Assemble("HALT\nBROKEN s1\nHALT")
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("err = %v, want line 2 diagnostic", err)
	}
}
