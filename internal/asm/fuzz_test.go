package asm

import (
	"testing"

	"ssam/internal/isa"
)

// FuzzAssemble checks the assembler never panics and that anything it
// accepts is a valid, re-assemblable program.
func FuzzAssemble(f *testing.F) {
	seeds := []string{
		"HALT",
		"ADD s1, s2, s3\nHALT",
		"loop: ADDI s1, s1, 1\nBLT s1, s2, loop\nHALT",
		"VLOAD v1, s2, 0\nVFXP v3, v1, v2\nHALT",
		"PQUEUE_INSERT s1, s2\nPQUEUE_LOAD s3, 1\nPQUEUE_RESET",
		"x: ; comment only\nJ x",
		"MEM_FETCH s1, 0x100\nSVMOVE v0, s1, -1\nVSMOVE s2, v0, 0",
		"PUSH s1\nPOP s2\nSFXP s1, s1, s2",
		"BROKEN nonsense ,,, ###",
		": :",
		"ADD\n\n\nADD s1",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		prog, err := Assemble(src)
		if err != nil {
			return
		}
		for i, in := range prog {
			if verr := in.Validate(); verr != nil {
				t.Fatalf("accepted invalid instruction %d (%v): %v", i, in, verr)
			}
		}
		// Accepted programs must survive disassemble/reassemble.
		text := Disassemble(prog)
		back, err := Assemble(text)
		if err != nil {
			t.Fatalf("disassembly does not reassemble: %v\n%s", err, text)
		}
		if len(back) != len(prog) {
			t.Fatalf("program length changed %d -> %d", len(prog), len(back))
		}
		// And the binary format must round-trip.
		decoded, err := isa.DecodeProgram(isa.EncodeProgram(prog))
		if err != nil {
			t.Fatalf("binary round trip: %v", err)
		}
		for i := range prog {
			if decoded[i] != prog[i] {
				t.Fatalf("binary round trip changed inst %d", i)
			}
		}
	})
}

// FuzzDecodeProgram checks the binary decoder tolerates arbitrary
// bytes.
func FuzzDecodeProgram(f *testing.F) {
	f.Add([]byte{})
	f.Add(isa.EncodeProgram([]isa.Inst{{Op: isa.HALT}}))
	f.Add(make([]byte, isa.InstBytes*3))
	f.Fuzz(func(t *testing.T, data []byte) {
		prog, err := isa.DecodeProgram(data)
		if err != nil {
			return
		}
		for _, in := range prog {
			if in.Validate() != nil {
				t.Fatal("decoder accepted invalid instruction")
			}
		}
	})
}
