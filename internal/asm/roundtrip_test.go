package asm

import (
	"math/rand"
	"testing"
	"testing/quick"

	"ssam/internal/isa"
)

// randomInst draws a random structurally valid instruction with branch
// targets confined to [0, progLen].
func randomInst(rng *rand.Rand, progLen int) isa.Inst {
	for {
		op := isa.Op(rng.Intn(isa.NumOps))
		in := isa.Inst{Op: op}
		if op.VectorCapable() && rng.Intn(2) == 1 {
			in.Vector = true
		}
		max := uint8(isa.NumScalarRegs)
		if in.Vector {
			max = uint8(isa.NumVectorRegs)
		}
		switch op {
		case isa.SVMOVE:
			in.Vector = true
			in.Rd = uint8(rng.Intn(isa.NumVectorRegs))
			in.Rs1 = uint8(rng.Intn(isa.NumScalarRegs))
			in.Imm = int32(rng.Intn(4)) - 1 // includes broadcast -1
		case isa.VSMOVE:
			in.Vector = false
			in.Rd = uint8(rng.Intn(isa.NumScalarRegs))
			in.Rs1 = uint8(rng.Intn(isa.NumVectorRegs))
			in.Imm = int32(rng.Intn(2))
		case isa.LOAD, isa.STORE:
			in.Rd = uint8(rng.Intn(int(max)))
			in.Rs1 = uint8(rng.Intn(isa.NumScalarRegs))
			in.Imm = int32(rng.Intn(1 << 12))
		case isa.MEMFETCH:
			in.Vector = false
			in.Rs1 = uint8(rng.Intn(isa.NumScalarRegs))
			in.Imm = int32(rng.Intn(1 << 12))
		case isa.BNE, isa.BGT, isa.BLT, isa.BE:
			in.Rs1 = uint8(rng.Intn(isa.NumScalarRegs))
			in.Rs2 = uint8(rng.Intn(isa.NumScalarRegs))
			in.Imm = int32(rng.Intn(progLen + 1))
		case isa.J:
			in.Imm = int32(rng.Intn(progLen + 1))
		case isa.PQUEUELOAD:
			in.Rd = uint8(rng.Intn(isa.NumScalarRegs))
			in.Imm = int32(rng.Intn(32))
		case isa.PQUEUEINSERT:
			in.Rs1 = uint8(rng.Intn(isa.NumScalarRegs))
			in.Rs2 = uint8(rng.Intn(isa.NumScalarRegs))
		case isa.PUSH:
			in.Rs1 = uint8(rng.Intn(isa.NumScalarRegs))
		case isa.POP:
			in.Rd = uint8(rng.Intn(isa.NumScalarRegs))
		case isa.PQUEUERESET, isa.HALT:
		case isa.NOT, isa.POPCOUNT: // two-operand: no Rs2 in the text form
			in.Rd = uint8(rng.Intn(int(max)))
			in.Rs1 = uint8(rng.Intn(int(max)))
		default:
			in.Rd = uint8(rng.Intn(int(max)))
			in.Rs1 = uint8(rng.Intn(int(max)))
			if op.HasImmediate() {
				if op == isa.SR || op == isa.SL || op == isa.SRA {
					in.Imm = int32(rng.Intn(32))
				} else {
					in.Imm = int32(rng.Int31()) - 1<<30
				}
			} else {
				in.Rs2 = uint8(rng.Intn(int(max)))
			}
		}
		if in.Validate() == nil {
			return in
		}
	}
}

// Property: any valid program survives Disassemble -> Assemble
// unchanged (mnemonics, operand shapes and label synthesis are
// lossless).
func TestDisassembleAssembleQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(30) + 1
		prog := make([]isa.Inst, n)
		for i := range prog {
			prog[i] = randomInst(rng, n)
		}
		text := Disassemble(prog)
		back, err := Assemble(text)
		if err != nil {
			t.Logf("reassembly failed: %v\n%s", err, text)
			return false
		}
		if len(back) != len(prog) {
			return false
		}
		for i := range prog {
			if back[i] != prog[i] {
				t.Logf("inst %d: %v -> %v\n%s", i, prog[i], back[i], text)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// Property: encode/decode through the binary program format is
// lossless for valid programs.
func TestBinaryProgramRoundTripQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(40) + 1
		prog := make([]isa.Inst, n)
		for i := range prog {
			prog[i] = randomInst(rng, n)
		}
		back, err := isa.DecodeProgram(isa.EncodeProgram(prog))
		if err != nil {
			return false
		}
		for i := range prog {
			if back[i] != prog[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
