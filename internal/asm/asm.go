// Package asm implements the SSAM assembler (Section IV: "We also
// built an assembler and simulator to generate program binaries,
// benchmark assembly programs, and validate the correctness of our
// design"). It translates a textual kernel into isa.Inst programs.
//
// Syntax, one instruction per line:
//
//	; comment, or # comment
//	label:  ADDI  s1, s0, 42       ; scalar ops use Table II names
//	loop:   VLOAD v1, s2, 0        ; vector forms take a V prefix
//	        VSUB  v1, v1, v0
//	        SFXP  s3, s1, s2       ; scalar fused xor-popcount
//	        BNE   s1, s4, loop     ; branch targets are labels
//	        HALT
//
// Scalar registers are s0..s31; vector registers are v0..v7. Operand
// shapes per op:
//
//	ADD/SUB/MULT/OR/AND/XOR (and V forms):  rd, rs1, rs2
//	NOT/POPCOUNT:                           rd, rs1
//	ADDI/SUBI/MULTI/ANDI/ORI/XORI/SR/SL/SRA: rd, rs1, imm
//	BNE/BGT/BLT/BE:                         rs1, rs2, label
//	J:                                      label
//	PUSH rs1   POP rd
//	LOAD rd, rs1, imm     (reg[rd] = mem[reg[rs1]+imm])
//	STORE rd, rs1, imm    (mem[reg[rs1]+imm] = reg[rd])
//	MEM_FETCH rs1, imm    (prefetch imm words at reg[rs1])
//	SVMOVE vd, rs1, lane  VSMOVE rd, vs1, lane
//	PQUEUE_INSERT rs1, rs2   PQUEUE_LOAD rd, imm   PQUEUE_RESET
//	SFXP/VFXP rd, rs1, rs2   HALT
package asm

import (
	"fmt"
	"strconv"
	"strings"

	"ssam/internal/isa"
)

// mnemonic lookup: name -> op + vector flag.
type opEntry struct {
	op     isa.Op
	vector bool
}

var mnemonics = buildMnemonics()

func buildMnemonics() map[string]opEntry {
	m := make(map[string]opEntry)
	for op := isa.Op(0); int(op) < isa.NumOps; op++ {
		name := op.String()
		switch op {
		case isa.FXP:
			m["SFXP"] = opEntry{op, false}
			m["FXP"] = opEntry{op, false}
			m["VFXP"] = opEntry{op, true}
			continue
		case isa.SVMOVE, isa.VSMOVE:
			m[name] = opEntry{op, op == isa.SVMOVE} // SVMOVE writes the vector file
			continue
		}
		m[name] = opEntry{op, false}
		if op.VectorCapable() {
			m["V"+name] = opEntry{op, true}
		}
	}
	return m
}

// Error is an assembly diagnostic with its source line.
type Error struct {
	Line int
	Msg  string
}

func (e *Error) Error() string { return fmt.Sprintf("asm: line %d: %s", e.Line, e.Msg) }

// Assemble translates source text into a program.
func Assemble(src string) ([]isa.Inst, error) {
	lines := strings.Split(src, "\n")
	labels := make(map[string]int32)

	// Pass 1: label addresses.
	pc := int32(0)
	for ln, raw := range lines {
		text, label, err := splitLine(raw)
		if err != nil {
			return nil, &Error{ln + 1, err.Error()}
		}
		if label != "" {
			if _, dup := labels[label]; dup {
				return nil, &Error{ln + 1, "duplicate label " + label}
			}
			labels[label] = pc
		}
		if text != "" {
			pc++
		}
	}

	// Pass 2: encode.
	prog := make([]isa.Inst, 0, pc)
	for ln, raw := range lines {
		text, _, _ := splitLine(raw)
		if text == "" {
			continue
		}
		inst, err := parseInst(text, labels)
		if err != nil {
			return nil, &Error{ln + 1, err.Error()}
		}
		if err := inst.Validate(); err != nil {
			return nil, &Error{ln + 1, err.Error()}
		}
		prog = append(prog, inst)
	}
	// Branch targets must be in range.
	for i, in := range prog {
		if in.Op.IsBranch() && (in.Imm < 0 || in.Imm > int32(len(prog))) {
			return nil, fmt.Errorf("asm: instruction %d: branch target %d out of range", i, in.Imm)
		}
	}
	return prog, nil
}

// splitLine strips comments and an optional leading "label:", returning
// the remaining instruction text.
func splitLine(raw string) (text, label string, err error) {
	if i := strings.IndexAny(raw, ";#"); i >= 0 {
		raw = raw[:i]
	}
	raw = strings.TrimSpace(raw)
	if raw == "" {
		return "", "", nil
	}
	if i := strings.Index(raw, ":"); i >= 0 {
		label = strings.TrimSpace(raw[:i])
		if label == "" || strings.ContainsAny(label, " \t,") {
			return "", "", fmt.Errorf("malformed label %q", raw[:i])
		}
		raw = strings.TrimSpace(raw[i+1:])
	}
	return raw, label, nil
}

func parseInst(text string, labels map[string]int32) (isa.Inst, error) {
	fields := strings.FieldsFunc(text, func(r rune) bool {
		return r == ',' || r == ' ' || r == '\t'
	})
	if len(fields) == 0 {
		return isa.Inst{}, fmt.Errorf("no mnemonic in %q", text)
	}
	name := strings.ToUpper(fields[0])
	ent, ok := mnemonics[name]
	if !ok {
		return isa.Inst{}, fmt.Errorf("unknown mnemonic %q", fields[0])
	}
	in := isa.Inst{Op: ent.op, Vector: ent.vector}
	args := fields[1:]

	reg := func(i int, vector bool) (uint8, error) {
		if i >= len(args) {
			return 0, fmt.Errorf("%s: missing operand %d", name, i+1)
		}
		return parseReg(args[i], vector)
	}
	sreg := func(i int) (uint8, error) { return reg(i, false) }
	vreg := func(i int) (uint8, error) { return reg(i, true) }
	imm := func(i int) (int32, error) {
		if i >= len(args) {
			return 0, fmt.Errorf("%s: missing operand %d", name, i+1)
		}
		return parseImm(args[i], labels)
	}
	var err error

	switch in.Op {
	case isa.ADD, isa.SUB, isa.MULT, isa.OR, isa.AND, isa.XOR, isa.FXP:
		if in.Rd, err = reg(0, in.Vector); err != nil {
			return in, err
		}
		if in.Rs1, err = reg(1, in.Vector); err != nil {
			return in, err
		}
		if in.Rs2, err = reg(2, in.Vector); err != nil {
			return in, err
		}
	case isa.NOT, isa.POPCOUNT:
		if in.Rd, err = reg(0, in.Vector); err != nil {
			return in, err
		}
		if in.Rs1, err = reg(1, in.Vector); err != nil {
			return in, err
		}
	case isa.ADDI, isa.SUBI, isa.MULTI, isa.ANDI, isa.ORI, isa.XORI,
		isa.SR, isa.SL, isa.SRA:
		if in.Rd, err = reg(0, in.Vector); err != nil {
			return in, err
		}
		if in.Rs1, err = reg(1, in.Vector); err != nil {
			return in, err
		}
		if in.Imm, err = imm(2); err != nil {
			return in, err
		}
	case isa.BNE, isa.BGT, isa.BLT, isa.BE:
		if in.Rs1, err = reg(0, false); err != nil {
			return in, err
		}
		if in.Rs2, err = reg(1, false); err != nil {
			return in, err
		}
		if in.Imm, err = imm(2); err != nil {
			return in, err
		}
	case isa.J:
		if in.Imm, err = imm(0); err != nil {
			return in, err
		}
	case isa.PUSH:
		if in.Rs1, err = reg(0, false); err != nil {
			return in, err
		}
	case isa.POP:
		if in.Rd, err = reg(0, false); err != nil {
			return in, err
		}
	case isa.LOAD, isa.STORE:
		if in.Rd, err = reg(0, in.Vector); err != nil {
			return in, err
		}
		if in.Rs1, err = sreg(1); err != nil { // address is scalar
			return in, err
		}
		if in.Imm, err = imm(2); err != nil {
			return in, err
		}
	case isa.MEMFETCH:
		if in.Rs1, err = reg(0, false); err != nil {
			return in, err
		}
		if in.Imm, err = imm(1); err != nil {
			return in, err
		}
	case isa.SVMOVE: // vd, rs1, lane
		if in.Rd, err = vreg(0); err != nil {
			return in, err
		}
		if in.Rs1, err = sreg(1); err != nil {
			return in, err
		}
		if in.Imm, err = imm(2); err != nil {
			return in, err
		}
	case isa.VSMOVE: // rd, vs1, lane
		if in.Rd, err = sreg(0); err != nil {
			return in, err
		}
		if in.Rs1, err = vreg(1); err != nil {
			return in, err
		}
		if in.Imm, err = imm(2); err != nil {
			return in, err
		}
	case isa.PQUEUEINSERT:
		if in.Rs1, err = reg(0, false); err != nil {
			return in, err
		}
		if in.Rs2, err = reg(1, false); err != nil {
			return in, err
		}
	case isa.PQUEUELOAD:
		if in.Rd, err = reg(0, false); err != nil {
			return in, err
		}
		if in.Imm, err = imm(1); err != nil {
			return in, err
		}
	case isa.PQUEUERESET, isa.HALT:
		// no operands
	default:
		return in, fmt.Errorf("unhandled op %s", in.Op)
	}
	return in, nil
}

func parseReg(s string, vector bool) (uint8, error) {
	s = strings.TrimSpace(strings.ToLower(s))
	if len(s) < 2 {
		return 0, fmt.Errorf("bad register %q", s)
	}
	kind, numStr := s[0], s[1:]
	n, err := strconv.Atoi(numStr)
	if err != nil || n < 0 {
		return 0, fmt.Errorf("bad register %q", s)
	}
	switch {
	case vector && kind == 'v' && n < isa.NumVectorRegs:
		return uint8(n), nil
	case !vector && kind == 's' && n < isa.NumScalarRegs:
		return uint8(n), nil
	}
	want := "s"
	if vector {
		want = "v"
	}
	return 0, fmt.Errorf("bad register %q (want %s-register)", s, want)
}

func parseImm(s string, labels map[string]int32) (int32, error) {
	s = strings.TrimSpace(s)
	if v, ok := labels[s]; ok {
		return v, nil
	}
	n, err := strconv.ParseInt(s, 0, 64)
	if err != nil {
		return 0, fmt.Errorf("bad immediate or unknown label %q", s)
	}
	if n < -1<<31 || n > 1<<31-1 {
		return 0, fmt.Errorf("immediate %d out of 32-bit range", n)
	}
	return int32(n), nil
}

// Disassemble renders a program back to assembler text with
// synthesized branch labels.
func Disassemble(prog []isa.Inst) string {
	targets := make(map[int32]string)
	for _, in := range prog {
		if in.Op.IsBranch() {
			if _, ok := targets[in.Imm]; !ok {
				targets[in.Imm] = fmt.Sprintf("L%d", len(targets))
			}
		}
	}
	var b strings.Builder
	for pc, in := range prog {
		if lbl, ok := targets[int32(pc)]; ok {
			fmt.Fprintf(&b, "%s:\n", lbl)
		}
		fmt.Fprintf(&b, "\t%s\n", format(in, targets))
	}
	if lbl, ok := targets[int32(len(prog))]; ok {
		fmt.Fprintf(&b, "%s:\n", lbl)
	}
	return b.String()
}

func format(in isa.Inst, targets map[int32]string) string {
	name := in.Op.String()
	if in.Vector && in.Op != isa.SVMOVE && in.Op != isa.VSMOVE {
		if in.Op == isa.FXP {
			name = "VFXP"
		} else {
			name = "V" + name
		}
	} else if in.Op == isa.FXP {
		name = "SFXP"
	}
	r := func(n uint8, vector bool) string {
		if vector {
			return fmt.Sprintf("v%d", n)
		}
		return fmt.Sprintf("s%d", n)
	}
	v := in.Vector
	switch in.Op {
	case isa.ADD, isa.SUB, isa.MULT, isa.OR, isa.AND, isa.XOR, isa.FXP:
		return fmt.Sprintf("%s %s, %s, %s", name, r(in.Rd, v), r(in.Rs1, v), r(in.Rs2, v))
	case isa.NOT, isa.POPCOUNT:
		return fmt.Sprintf("%s %s, %s", name, r(in.Rd, v), r(in.Rs1, v))
	case isa.ADDI, isa.SUBI, isa.MULTI, isa.ANDI, isa.ORI, isa.XORI, isa.SR, isa.SL, isa.SRA:
		return fmt.Sprintf("%s %s, %s, %d", name, r(in.Rd, v), r(in.Rs1, v), in.Imm)
	case isa.BNE, isa.BGT, isa.BLT, isa.BE:
		return fmt.Sprintf("%s %s, %s, %s", name, r(in.Rs1, false), r(in.Rs2, false), targets[in.Imm])
	case isa.J:
		return fmt.Sprintf("%s %s", name, targets[in.Imm])
	case isa.PUSH:
		return fmt.Sprintf("%s %s", name, r(in.Rs1, false))
	case isa.POP:
		return fmt.Sprintf("%s %s", name, r(in.Rd, false))
	case isa.LOAD, isa.STORE:
		return fmt.Sprintf("%s %s, %s, %d", name, r(in.Rd, v), r(in.Rs1, false), in.Imm)
	case isa.MEMFETCH:
		return fmt.Sprintf("%s %s, %d", name, r(in.Rs1, false), in.Imm)
	case isa.SVMOVE:
		return fmt.Sprintf("%s %s, %s, %d", name, r(in.Rd, true), r(in.Rs1, false), in.Imm)
	case isa.VSMOVE:
		return fmt.Sprintf("%s %s, %s, %d", name, r(in.Rd, false), r(in.Rs1, true), in.Imm)
	case isa.PQUEUEINSERT:
		return fmt.Sprintf("%s %s, %s", name, r(in.Rs1, false), r(in.Rs2, false))
	case isa.PQUEUELOAD:
		return fmt.Sprintf("%s %s, %d", name, r(in.Rd, false), in.Imm)
	default:
		return name
	}
}
