package mutate

import (
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ssam/internal/topk"
	"ssam/internal/vec"
)

// TestMutationEquivalenceFloat is the tentpole property: after ANY
// interleaving of upserts and deletes, Search over the live store is
// bit-identical — ids, order, and float64 distances — to a serial
// oracle over the surviving rows, across metrics × vault counts ×
// boundary k, on tie-heavy data. Periodic CompactOnce calls inside the
// interleaving pin that compaction is invisible too.
func TestMutationEquivalenceFloat(t *testing.T) {
	const dim = 4
	for _, metric := range []vec.Metric{vec.Euclidean, vec.Manhattan, vec.Cosine} {
		for _, vaults := range []int{1, 4, 32} {
			t.Run(fmt.Sprintf("%v-vaults%d", metric, vaults), func(t *testing.T) {
				r := rand.New(rand.NewSource(int64(41*vaults) + int64(metric)))
				s := NewFloat(dim, metric, Options{Vaults: vaults, SerialBelow: -1, GarbageThreshold: 0.2})
				// Model of the store's logical content.
				model := map[int][]float32{}
				newRow := func() []float32 {
					v := make([]float32, dim)
					for j := range v {
						// Offset keeps cosine distance defined (no zero vectors).
						v[j] = float32(r.Intn(3)) + 0.25
					}
					return v
				}
				var lastSeq uint64
				for step := 0; step < 400; step++ {
					id := r.Intn(60)
					switch {
					case r.Float64() < 0.65 || len(model) == 0:
						row := newRow()
						seq, err := s.Upsert(id, row)
						if err != nil {
							t.Fatalf("step %d: upsert: %v", step, err)
						}
						if seq <= lastSeq {
							t.Fatalf("step %d: seq %d not monotonic after %d", step, seq, lastSeq)
						}
						lastSeq = seq
						model[id] = row
					default:
						_, present := model[id]
						seq, ok := s.Delete(id)
						if ok != present {
							t.Fatalf("step %d: delete(%d) ok=%v, model says %v", step, id, ok, present)
						}
						if ok {
							if seq <= lastSeq {
								t.Fatalf("step %d: seq %d not monotonic after %d", step, seq, lastSeq)
							}
							lastSeq = seq
							delete(model, id)
						}
					}
					if step%97 == 0 {
						s.CompactOnce()
					}
					if step%13 != 0 {
						continue
					}
					ids := make([]int, 0, len(model))
					rows := make([][]float32, 0, len(model))
					for id := range model {
						ids = append(ids, id)
					}
					sortIDs(ids)
					for _, id := range ids {
						rows = append(rows, model[id])
					}
					live := len(ids)
					for _, k := range []int{1, live - 1, live, live + 5} {
						if k <= 0 {
							continue
						}
						q := newRow()
						got, st := s.SearchStats(q, k)
						want := oracleFloat(metric, ids, rows, q, k)
						if !reflect.DeepEqual(got, want) {
							t.Fatalf("step %d k=%d: store\n%v\noracle\n%v", step, k, got, want)
						}
						if st.Seq != lastSeq {
							t.Fatalf("step %d: stats seq %d, committed %d", step, st.Seq, lastSeq)
						}
						if st.DistEvals != live {
							t.Fatalf("step %d: scanned %d rows, %d live", step, st.DistEvals, live)
						}
					}
					// The store's own survivors view agrees with the model.
					sIDs, _ := s.Survivors()
					if !reflect.DeepEqual(sIDs, ids) {
						t.Fatalf("step %d: survivors %v != model %v", step, sIDs, ids)
					}
				}
			})
		}
	}
}

func sortIDs(a []int) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}

// TestMutationEquivalenceFixedBinary runs a shorter interleaving over
// the fixed-point and Hamming stores against per-type oracles.
func TestMutationEquivalenceFixedBinary(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	const dim = 3
	f := NewFixed(dim, vec.Euclidean, Options{Vaults: 4, SerialBelow: -1})
	fModel := map[int][]int32{}
	for step := 0; step < 200; step++ {
		id := r.Intn(40)
		if r.Float64() < 0.7 || len(fModel) == 0 {
			row := []int32{int32(r.Intn(5)) << 16, int32(r.Intn(5)) << 16, int32(r.Intn(5)) << 16}
			if _, err := f.Upsert(id, row); err != nil {
				t.Fatal(err)
			}
			fModel[id] = row
		} else {
			f.Delete(id)
			delete(fModel, id)
		}
		if step%41 == 0 {
			f.CompactOnce()
		}
		if step%17 != 0 {
			continue
		}
		q := []int32{int32(r.Intn(5)) << 16, 0, int32(r.Intn(5)) << 16}
		got := f.Search(q, 7)
		sel := topk.New(7)
		for id, row := range fModel {
			sel.Push(id, float64(vec.SquaredL2Fixed(q, row)))
		}
		if want := sel.Results(); !reflect.DeepEqual(got, want) {
			t.Fatalf("fixed step %d: %v != %v", step, got, want)
		}
	}

	b := NewBinary(16, Options{Vaults: 4, SerialBelow: -1})
	bModel := map[int]vec.Binary{}
	randCode := func() vec.Binary {
		c := vec.NewBinary(16)
		for i := 0; i < 16; i++ {
			c.Set(i, r.Intn(2) == 1)
		}
		return c
	}
	for step := 0; step < 200; step++ {
		id := r.Intn(40)
		if r.Float64() < 0.7 || len(bModel) == 0 {
			code := randCode()
			if _, err := b.Upsert(id, code); err != nil {
				t.Fatal(err)
			}
			bModel[id] = code
		} else {
			b.Delete(id)
			delete(bModel, id)
		}
		if step%41 == 0 {
			b.CompactOnce()
		}
		if step%17 != 0 {
			continue
		}
		q := randCode()
		got := b.Search(q, 7)
		sel := topk.New(7)
		for id, code := range bModel {
			sel.Push(id, float64(vec.Hamming(q, code)))
		}
		if want := sel.Results(); !reflect.DeepEqual(got, want) {
			t.Fatalf("binary step %d: %v != %v", step, got, want)
		}
	}
}

// TestSearchDuringCompactionSoak races searchers against a mutator and
// a compaction loop under the race detector. Each search must return a
// result set with no duplicated ids, sorted under the (distance, id)
// total order, with a sequence number that never moves backwards —
// i.e. every query observed exactly one consistent generation.
func TestSearchDuringCompactionSoak(t *testing.T) {
	const (
		dim      = 4
		idSpace  = 128
		seedRows = 512
	)
	s := NewFloat(dim, vec.Euclidean, Options{Vaults: 4, SerialBelow: -1, GarbageThreshold: 0.05, RebalanceFactor: 1.2})
	seedR := rand.New(rand.NewSource(1))
	rows := tieRows(seedR, seedRows, dim)
	ids := make([]int, seedRows)
	for i := range ids {
		ids[i] = i
	}
	if err := s.Seed(ids, rows); err != nil {
		t.Fatal(err)
	}

	var stop atomic.Bool
	var wg sync.WaitGroup

	// Mutator: continuous upserts and deletes over a bounded id space,
	// so the same ids churn and tombstones accumulate fast.
	wg.Add(1)
	go func() {
		defer wg.Done()
		r := rand.New(rand.NewSource(2))
		for i := 0; i < 4000; i++ {
			id := r.Intn(idSpace)
			if r.Float64() < 0.5 {
				v := make([]float32, dim)
				for j := range v {
					v[j] = float32(r.Intn(3))
				}
				if _, err := s.Upsert(id, v); err != nil {
					t.Errorf("upsert: %v", err)
					return
				}
			} else {
				s.Delete(id)
			}
		}
		stop.Store(true)
	}()

	// Compactor: hammer CompactOnce concurrently with the background
	// ticker variant for good measure.
	s.StartCompactor(time.Millisecond)
	wg.Add(1)
	go func() {
		defer wg.Done()
		// Do-while, not while: if the mutator finishes before this
		// goroutine is first scheduled, a pre-checked loop would exit
		// with zero passes and trip the CompactPasses assertion below.
		for {
			s.CompactOnce()
			if stop.Load() {
				break
			}
		}
	}()

	// Searchers: validate per-result invariants and seq monotonicity.
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(int64(100 + g)))
			var lastSeq uint64
			for !stop.Load() {
				q := make([]float32, dim)
				for j := range q {
					q[j] = float32(r.Intn(3))
				}
				k := 1 + r.Intn(20)
				res, st := s.SearchStats(q, k)
				if st.Seq < lastSeq {
					t.Errorf("searcher %d: seq went backwards %d -> %d", g, lastSeq, st.Seq)
					return
				}
				lastSeq = st.Seq
				seen := map[int]bool{}
				for i, rr := range res {
					if seen[rr.ID] {
						t.Errorf("searcher %d: duplicate id %d in %v", g, rr.ID, res)
						return
					}
					seen[rr.ID] = true
					if i > 0 && (rr.Dist < res[i-1].Dist || (rr.Dist == res[i-1].Dist && rr.ID < res[i-1].ID)) {
						t.Errorf("searcher %d: order violated at %d: %v", g, i, res)
						return
					}
				}
				if len(res) > k {
					t.Errorf("searcher %d: %d results for k=%d", g, len(res), k)
					return
				}
			}
		}(g)
	}

	wg.Wait()
	s.Close()

	// Quiesced store still agrees with its own survivors oracle.
	ids2, rows2 := s.Survivors()
	q := make([]float32, dim)
	got := s.Search(q, 33)
	want := oracleFloat(vec.Euclidean, ids2, rows2, q, 33)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("post-soak divergence:\n%v\n%v", got, want)
	}
	if s.Stats().CompactPasses == 0 {
		t.Fatal("soak never ran a compaction pass")
	}
}
