// Background compaction for the mutable store. Tombstoned rows cost
// scan time (every query skips them) and memory; the compactor rewrites
// vaults whose garbage fraction passes Options.GarbageThreshold and,
// when deletes have skewed the partition, redistributes live rows
// evenly across vaults. Both rewrites run under the writer mutex —
// cheap, because rows are immutable per-row values and only slice
// headers move — and publish a fresh snapshot with the SAME sequence
// number: compaction changes physical layout, never logical content,
// and search results are ordered by (distance, external id), so a query
// racing a compaction returns bit-identical results either side of the
// swap.
package mutate

import (
	"time"
)

// CompactResult summarizes one compaction pass.
type CompactResult struct {
	Seq             uint64        // sequence number of the snapshot compacted
	VaultsRewritten int           // vaults rewritten to drop tombstones
	Rebalanced      bool          // whether a full rebalance ran
	RowsDropped     int           // tombstones physically removed
	Live            int           // live rows after the pass
	Elapsed         time.Duration // wall time under the writer lock
}

// Changed reports whether the pass altered the physical layout.
func (r CompactResult) Changed() bool { return r.VaultsRewritten > 0 || r.Rebalanced }

// CompactOnce runs one compaction pass synchronously: every vault whose
// dead fraction is at least Options.GarbageThreshold is rewritten
// without its tombstones, and if afterwards the largest vault exceeds
// RebalanceFactor × the mean physical rows (with more than one vault),
// all live rows are redistributed into even contiguous chunks. Safe to
// call concurrently with searches and mutations.
func (s *Store[V]) CompactOnce() CompactResult {
	start := time.Now()
	s.mu.Lock()
	cur := s.snap.Load()
	res := CompactResult{Seq: cur.seq}
	vaults := append([]vaultShard[V](nil), cur.vaults...)
	for v := range vaults {
		vs := &vaults[v]
		phys := len(vs.ids)
		if phys == 0 || vs.deadN == 0 {
			continue
		}
		if float64(vs.deadN)/float64(phys) < s.opts.GarbageThreshold {
			continue
		}
		nv := vaultShard[V]{
			rows: make([]V, 0, phys-vs.deadN),
			ids:  make([]int, 0, phys-vs.deadN),
			dead: make([]bool, phys-vs.deadN),
		}
		for i := range vs.ids {
			if vs.dead[i] {
				continue
			}
			nv.rows = append(nv.rows, vs.rows[i])
			nv.ids = append(nv.ids, vs.ids[i])
		}
		res.RowsDropped += vs.deadN
		*vs = nv
		res.VaultsRewritten++
	}
	if len(vaults) > 1 {
		maxPhys, totPhys := 0, 0
		for v := range vaults {
			totPhys += len(vaults[v].ids)
			if len(vaults[v].ids) > maxPhys {
				maxPhys = len(vaults[v].ids)
			}
		}
		mean := float64(totPhys) / float64(len(vaults))
		if mean > 0 && float64(maxPhys) > s.opts.RebalanceFactor*mean {
			vaults = rebalance(vaults, len(vaults))
			res.Rebalanced = true
			res.RowsDropped = cur.dead // a rebalance drops every tombstone
		}
	}
	if res.Changed() {
		// Rewrites moved rows; rebuild the id index to match.
		for v := range vaults {
			for i, id := range vaults[v].ids {
				if !vaults[v].dead[i] {
					s.index[id] = loc{v, i}
				}
			}
		}
		s.snap.Store(&snapshot[V]{
			seq:    cur.seq,
			vaults: vaults,
			live:   cur.live,
			dead:   cur.dead - res.RowsDropped,
		})
		if res.VaultsRewritten > 0 {
			s.rewrites.Add(uint64(res.VaultsRewritten))
		}
		if res.Rebalanced {
			s.rebals.Add(1)
		}
	}
	s.passes.Add(1)
	res.Live = cur.live
	s.mu.Unlock()
	res.Elapsed = time.Since(start)
	if res.Changed() && s.OnCompact != nil {
		s.OnCompact(res)
	}
	return res
}

// rebalance redistributes live rows into even contiguous chunks across
// nv vaults, preserving physical scan order (vault by vault), and drops
// all tombstones.
func rebalance[V any](vaults []vaultShard[V], nv int) []vaultShard[V] {
	var rows []V
	var ids []int
	for v := range vaults {
		for i := range vaults[v].ids {
			if !vaults[v].dead[i] {
				rows = append(rows, vaults[v].rows[i])
				ids = append(ids, vaults[v].ids[i])
			}
		}
	}
	out := make([]vaultShard[V], nv)
	n := len(ids)
	chunk := (n + nv - 1) / nv
	if chunk == 0 {
		return out
	}
	for v := 0; v < nv; v++ {
		lo := v * chunk
		hi := min(lo+chunk, n)
		if lo >= hi {
			continue
		}
		out[v] = vaultShard[V]{
			rows: rows[lo:hi:hi],
			ids:  ids[lo:hi:hi],
			dead: make([]bool, hi-lo),
		}
	}
	return out
}

// StartCompactor launches the background compactor, running CompactOnce
// every interval until Close. Calling it more than once is a no-op.
func (s *Store[V]) StartCompactor(interval time.Duration) {
	if interval <= 0 {
		interval = time.Second
	}
	s.compactOnce.Do(func() {
		go func() {
			defer close(s.done)
			t := time.NewTicker(interval)
			defer t.Stop()
			for {
				select {
				case <-s.stop:
					return
				case <-t.C:
					s.CompactOnce()
				}
			}
		}()
	})
}

// Close stops the background compactor, if started, and waits for it
// to exit. Close is idempotent, and a closed store remains searchable
// and mutable — only the periodic compaction stops. StartCompactor
// after Close is a no-op.
func (s *Store[V]) Close() {
	s.stopOnce.Do(func() { close(s.stop) })
	// If the compactor goroutine never started, consume its Once so it
	// cannot start later and close done ourselves to release waiters.
	s.compactOnce.Do(func() { close(s.done) })
	<-s.done
}
