package mutate

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"ssam/internal/knn"
	"ssam/internal/topk"
	"ssam/internal/vec"
)

// oracleFloat is the reference implementation: a serial scan over
// explicit (id, row) pairs under the same (distance, id) total order.
func oracleFloat(metric vec.Metric, ids []int, rows [][]float32, q []float32, k int) []topk.Result {
	if k <= 0 || len(ids) == 0 {
		return nil
	}
	sel := topk.New(k)
	for i, id := range ids {
		sel.Push(id, vec.Distance(metric, q, rows[i]))
	}
	return sel.Results()
}

func randRows(r *rand.Rand, n, dim int) [][]float32 {
	rows := make([][]float32, n)
	for i := range rows {
		v := make([]float32, dim)
		for j := range v {
			v[j] = r.Float32()
		}
		rows[i] = v
	}
	return rows
}

// tieRows draws coordinates from a tiny discrete set so distances
// collide constantly, exercising the id tie-break.
func tieRows(r *rand.Rand, n, dim int) [][]float32 {
	rows := make([][]float32, n)
	for i := range rows {
		v := make([]float32, dim)
		for j := range v {
			v[j] = float32(r.Intn(3))
		}
		rows[i] = v
	}
	return rows
}

func seqIDs(n int) []int {
	ids := make([]int, n)
	for i := range ids {
		ids[i] = i
	}
	return ids
}

func flatten(rows [][]float32) []float32 {
	var out []float32
	for _, r := range rows {
		out = append(out, r...)
	}
	return out
}

// TestSeedMatchesEngine pins the gen-0 guarantee: a seeded store with
// ids 0..n-1 answers bit-identically to the immutable linear engine
// over the same data, at every vault count and on both scan paths.
func TestSeedMatchesEngine(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	const n, dim = 300, 8
	rows := tieRows(r, n, dim)
	for _, metric := range []vec.Metric{vec.Euclidean, vec.Manhattan, vec.Cosine} {
		for _, vaults := range []int{1, 4, 32} {
			s := NewFloat(dim, metric, Options{Vaults: vaults, SerialBelow: -1})
			if err := s.Seed(seqIDs(n), rows); err != nil {
				t.Fatalf("Seed: %v", err)
			}
			eng := knn.NewEngineVaults(flatten(rows), dim, metric, 2, vaults)
			eng.SetSerialThreshold(0)
			for _, k := range []int{1, 7, n, n + 5} {
				q := rows[r.Intn(n)]
				got, st := s.SearchStats(q, k)
				want, engSt := eng.SearchStats(q, k)
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("metric=%v vaults=%d k=%d: store %v != engine %v", metric, vaults, k, got, want)
				}
				if st.Seq != 0 {
					t.Fatalf("seed generation should be seq 0, got %d", st.Seq)
				}
				if st.DistEvals != engSt.DistEvals || st.Dims != engSt.Dims {
					t.Fatalf("work accounting mismatch: store %+v engine %+v", st, engSt)
				}
			}
		}
	}
}

func TestUpsertDeleteBasics(t *testing.T) {
	s := NewFloat(2, vec.Euclidean, Options{Vaults: 2})
	if got := s.Seq(); got != 0 {
		t.Fatalf("fresh store seq = %d", got)
	}
	seq1, err := s.Upsert(10, []float32{1, 0})
	if err != nil || seq1 != 1 {
		t.Fatalf("first upsert: seq=%d err=%v", seq1, err)
	}
	seq2, err := s.Upsert(20, []float32{0, 1})
	if err != nil || seq2 != 2 {
		t.Fatalf("second upsert: seq=%d err=%v", seq2, err)
	}
	if s.Len() != 2 || s.Dead() != 0 {
		t.Fatalf("len=%d dead=%d, want 2/0", s.Len(), s.Dead())
	}

	// Replace: live count steady, one tombstone appears.
	seq3, err := s.Upsert(10, []float32{5, 5})
	if err != nil || seq3 != 3 {
		t.Fatalf("replace: seq=%d err=%v", seq3, err)
	}
	if s.Len() != 2 || s.Dead() != 1 {
		t.Fatalf("after replace len=%d dead=%d, want 2/1", s.Len(), s.Dead())
	}
	if row, ok := s.Get(10); !ok || row[0] != 5 {
		t.Fatalf("Get(10) = %v, %v", row, ok)
	}

	// Delete miss does not commit.
	seq, ok := s.Delete(999)
	if ok || seq != 3 {
		t.Fatalf("delete miss: seq=%d ok=%v", seq, ok)
	}
	seq4, ok := s.Delete(20)
	if !ok || seq4 != 4 {
		t.Fatalf("delete hit: seq=%d ok=%v", seq4, ok)
	}
	if _, ok := s.Get(20); ok {
		t.Fatal("Get(20) found a deleted row")
	}
	if s.Len() != 1 || s.Dead() != 2 {
		t.Fatalf("after delete len=%d dead=%d, want 1/2", s.Len(), s.Dead())
	}

	res, st := s.SearchStats([]float32{5, 5}, 10)
	if len(res) != 1 || res[0].ID != 10 || res[0].Dist != 0 {
		t.Fatalf("search = %v", res)
	}
	if st.Seq != 4 {
		t.Fatalf("search stats seq = %d, want 4", st.Seq)
	}

	stats := s.Stats()
	if stats.Upserts != 3 || stats.Deletes != 1 || stats.Seq != 4 {
		t.Fatalf("stats = %+v", stats)
	}
	if want := 2.0 / 3.0; math.Abs(stats.GarbageRatio-want) > 1e-12 {
		t.Fatalf("garbage ratio = %v, want %v", stats.GarbageRatio, want)
	}
}

func TestValidation(t *testing.T) {
	s := NewFloat(3, vec.Euclidean, Options{Vaults: 1})
	if _, err := s.Upsert(0, []float32{1, 2}); err == nil {
		t.Fatal("short row accepted")
	}
	if _, err := s.Upsert(0, []float32{1, 2, float32(math.NaN())}); err == nil {
		t.Fatal("NaN accepted")
	}
	if _, err := s.Upsert(0, []float32{1, 2, float32(math.Inf(1))}); err == nil {
		t.Fatal("Inf accepted")
	}
	if _, err := s.Upsert(-1, []float32{1, 2, 3}); err == nil {
		t.Fatal("negative id accepted")
	}
	if err := s.Seed([]int{0}, [][]float32{{1, 2, 3}, {4, 5, 6}}); err == nil {
		t.Fatal("mismatched seed lengths accepted")
	}
	if err := s.Seed([]int{3, 3}, [][]float32{{1, 2, 3}, {4, 5, 6}}); err == nil {
		t.Fatal("duplicate seed ids accepted")
	}
	if err := s.Seed([]int{-2}, [][]float32{{1, 2, 3}}); err == nil {
		t.Fatal("negative seed id accepted")
	}
	if _, err := s.Upsert(1, []float32{1, 2, 3}); err != nil {
		t.Fatalf("valid upsert rejected: %v", err)
	}
	if err := s.Seed([]int{0}, [][]float32{{1, 2, 3}}); err == nil {
		t.Fatal("Seed after mutation accepted")
	}

	f := NewFixed(2, vec.Manhattan, Options{Vaults: 1})
	if _, err := f.Upsert(0, []int32{1}); err == nil {
		t.Fatal("short fixed row accepted")
	}
	b := NewBinary(64, Options{Vaults: 1})
	if _, err := b.Upsert(0, vec.NewBinary(32)); err == nil {
		t.Fatal("narrow code accepted")
	}
}

func TestConstructorPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("NewFloat dim", func() { NewFloat(0, vec.Euclidean, Options{}) })
	mustPanic("NewFloat hamming", func() { NewFloat(4, vec.HammingMetric, Options{}) })
	mustPanic("NewFixed dim", func() { NewFixed(0, vec.Euclidean, Options{}) })
	mustPanic("NewFixed cosine", func() { NewFixed(4, vec.Cosine, Options{}) })
	mustPanic("NewBinary bits", func() { NewBinary(0, Options{}) })
}

func TestOptionsFill(t *testing.T) {
	o := Options{}.fill()
	if o.Vaults <= 0 || o.Vaults > knn.MaxVaults {
		t.Fatalf("default vaults = %d", o.Vaults)
	}
	if o.SerialBelow != knn.DefaultSerialThreshold {
		t.Fatalf("default serial threshold = %d", o.SerialBelow)
	}
	if o.GarbageThreshold != 0.3 || o.RebalanceFactor != 2.0 {
		t.Fatalf("defaults = %+v", o)
	}
	o = Options{Vaults: 1000, SerialBelow: -5, GarbageThreshold: 0.5, RebalanceFactor: 3}.fill()
	if o.Vaults != knn.MaxVaults || o.SerialBelow != 0 {
		t.Fatalf("clamped = %+v", o)
	}
	if o.GarbageThreshold != 0.5 || o.RebalanceFactor != 3 {
		t.Fatalf("explicit values lost: %+v", o)
	}
}

func TestSurvivors(t *testing.T) {
	s := NewFloat(1, vec.Euclidean, Options{Vaults: 3})
	for i := 0; i < 10; i++ {
		if _, err := s.Upsert(i*7, []float32{float32(i)}); err != nil {
			t.Fatal(err)
		}
	}
	s.Delete(7)
	s.Delete(21)
	ids, rows := s.Survivors()
	if len(ids) != 8 || len(rows) != 8 {
		t.Fatalf("survivors: %d ids, %d rows", len(ids), len(rows))
	}
	for i := 1; i < len(ids); i++ {
		if ids[i] <= ids[i-1] {
			t.Fatalf("ids not strictly ascending: %v", ids)
		}
	}
	for i, id := range ids {
		if int(rows[i][0])*7 != id {
			t.Fatalf("row/id pairing broken at %d: id=%d row=%v", i, id, rows[i])
		}
	}
}

func TestSearchBatchMatchesSearch(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	const n, dim = 400, 4
	s := NewFloat(dim, vec.Euclidean, Options{Vaults: 4, SerialBelow: -1})
	rows := tieRows(r, n, dim)
	if err := s.Seed(seqIDs(n), rows); err != nil {
		t.Fatal(err)
	}
	for _, nq := range []int{1, 3, 16} {
		qs := randRows(r, nq, dim)
		// Both the short-batch (vault-parallel) and fan-out paths must
		// agree with single-query search.
		for _, workers := range []int{1, 2, 8} {
			got := s.SearchBatch(qs, 5, workers, nil)
			for i, q := range qs {
				want := s.Search(q, 5)
				if !reflect.DeepEqual(got[i], want) {
					t.Fatalf("nq=%d workers=%d query %d: %v != %v", nq, workers, i, got[i], want)
				}
			}
		}
	}
	if out := s.SearchBatch(nil, 5, 0, nil); len(out) != 0 {
		t.Fatalf("empty batch returned %v", out)
	}
}

func TestCompactReclaimsTombstones(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	const n, dim = 200, 4
	s := NewFloat(dim, vec.Euclidean, Options{Vaults: 4, SerialBelow: -1, GarbageThreshold: 0.25})
	rows := tieRows(r, n, dim)
	if err := s.Seed(seqIDs(n), rows); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i += 2 {
		s.Delete(i)
	}
	if s.Dead() != n/2 {
		t.Fatalf("dead = %d, want %d", s.Dead(), n/2)
	}
	seqBefore := s.Seq()
	ids, survivors := s.Survivors()
	q := rows[1]
	before := s.Search(q, 17)

	var hook CompactResult
	s.OnCompact = func(r CompactResult) { hook = r }
	res := s.CompactOnce()
	if !res.Changed() || res.RowsDropped == 0 {
		t.Fatalf("compaction was a no-op: %+v", res)
	}
	if hook != res {
		t.Fatalf("OnCompact saw %+v, CompactOnce returned %+v", hook, res)
	}
	if s.Dead() != 0 {
		t.Fatalf("dead after full compaction = %d", s.Dead())
	}
	if s.Seq() != seqBefore {
		t.Fatalf("compaction moved seq %d -> %d", seqBefore, s.Seq())
	}
	after := s.Search(q, 17)
	if !reflect.DeepEqual(before, after) {
		t.Fatalf("results changed across compaction:\n%v\n%v", before, after)
	}
	if want := oracleFloat(vec.Euclidean, ids, survivors, q, 17); !reflect.DeepEqual(after, want) {
		t.Fatalf("post-compaction results diverge from oracle")
	}
	// Mutations after compaction still index correctly.
	if _, err := s.Upsert(1, []float32{9, 9, 9, 9}); err != nil {
		t.Fatal(err)
	}
	if row, ok := s.Get(1); !ok || row[0] != 9 {
		t.Fatalf("Get(1) after post-compaction upsert = %v %v", row, ok)
	}
	// A second pass with nothing to do reports unchanged.
	if res := s.CompactOnce(); res.Changed() {
		t.Fatalf("idle compaction claimed work: %+v", res)
	}
}

func TestCompactRebalancesSkew(t *testing.T) {
	// Seed everything, then delete the whole top half: the surviving
	// rows all live in the low vaults, so the largest vault far exceeds
	// the mean and a rebalance must trigger.
	const n, dim = 256, 2
	r := rand.New(rand.NewSource(5))
	s := NewFloat(dim, vec.Euclidean, Options{Vaults: 4, SerialBelow: -1, GarbageThreshold: 0.99, RebalanceFactor: 1.5})
	rows := tieRows(r, n, dim)
	if err := s.Seed(seqIDs(n), rows); err != nil {
		t.Fatal(err)
	}
	for i := n / 2; i < n; i++ {
		s.Delete(i)
	}
	q := rows[0]
	before := s.Search(q, 9)
	res := s.CompactOnce()
	if !res.Rebalanced {
		t.Fatalf("expected a rebalance: %+v", res)
	}
	if s.Dead() != 0 {
		t.Fatalf("rebalance left %d tombstones", s.Dead())
	}
	st := s.Stats()
	if st.Rebalances != 1 {
		t.Fatalf("stats.Rebalances = %d", st.Rebalances)
	}
	// Physical rows are now even across vaults.
	snap := s.snap.Load()
	for v := range snap.vaults {
		if got := len(snap.vaults[v].ids); got > (n/2+3)/4+1 {
			t.Fatalf("vault %d holds %d rows after rebalance", v, got)
		}
	}
	after := s.Search(q, 9)
	if !reflect.DeepEqual(before, after) {
		t.Fatalf("rebalance changed results:\n%v\n%v", before, after)
	}
}

func TestCompactorLifecycle(t *testing.T) {
	s := NewFloat(2, vec.Euclidean, Options{Vaults: 2, SerialBelow: -1, GarbageThreshold: 0.01})
	for i := 0; i < 64; i++ {
		if _, err := s.Upsert(i, []float32{float32(i), 0}); err != nil {
			t.Fatal(err)
		}
	}
	s.StartCompactor(time.Millisecond)
	s.StartCompactor(time.Millisecond) // second call is a no-op
	for i := 0; i < 32; i++ {
		s.Delete(i)
	}
	deadline := time.After(5 * time.Second)
	for s.Dead() > 0 {
		select {
		case <-deadline:
			t.Fatalf("compactor never reclaimed %d tombstones", s.Dead())
		default:
			time.Sleep(time.Millisecond)
		}
	}
	s.Close()
	s.Close() // idempotent
	if _, err := s.Upsert(100, []float32{1, 1}); err != nil {
		t.Fatalf("store unusable after Close: %v", err)
	}

	// Close without StartCompactor must not hang.
	s2 := NewFloat(2, vec.Euclidean, Options{Vaults: 1})
	done := make(chan struct{})
	go func() { s2.Close(); close(done) }()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Close without StartCompactor hung")
	}
}

func TestFixedAndBinaryStores(t *testing.T) {
	// Fixed-point store matches the fixed engine's distance kernel.
	f := NewFixed(2, vec.Euclidean, Options{Vaults: 1})
	if _, err := f.Upsert(1, []int32{vec.ToFixed(1), 0}); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Upsert(2, []int32{vec.ToFixed(3), 0}); err != nil {
		t.Fatal(err)
	}
	res := f.Search([]int32{vec.ToFixed(1), 0}, 1)
	if len(res) != 1 || res[0].ID != 1 || res[0].Dist != 0 {
		t.Fatalf("fixed search = %v", res)
	}
	fm := NewFixed(2, vec.Manhattan, Options{Vaults: 1})
	a, b := []int32{vec.ToFixed(1), 0}, []int32{vec.ToFixed(3), 0}
	fm.Upsert(1, b)
	got := fm.Search(a, 1)
	if want := float64(vec.L1Fixed(a, b)); got[0].Dist != want {
		t.Fatalf("fixed manhattan dist = %v, want %v", got[0].Dist, want)
	}

	// Binary store orders by Hamming distance with id tie-break.
	bs := NewBinary(8, Options{Vaults: 1})
	zero := vec.NewBinary(8)
	one := vec.NewBinary(8)
	one.Set(0, true)
	bs.Upsert(5, zero)
	bs.Upsert(3, zero) // identical code, smaller id
	bs.Upsert(9, one)
	res = bs.Search(zero, 3)
	if len(res) != 3 || res[0].ID != 3 || res[1].ID != 5 || res[2].ID != 9 {
		t.Fatalf("binary search order = %v", res)
	}
	if res[2].Dist != 1 {
		t.Fatalf("hamming dist = %v", res[2].Dist)
	}
}

func TestAccessorsAndKZero(t *testing.T) {
	s := NewFloat(4, vec.Euclidean, Options{Vaults: 2})
	if s.Vaults() != 2 || s.Dim() != 4 {
		t.Fatalf("Vaults=%d Dim=%d", s.Vaults(), s.Dim())
	}
	if res := s.Search(make([]float32, 4), 0); res != nil {
		t.Fatalf("k=0 returned %v", res)
	}
	if res := s.Search(make([]float32, 4), 3); len(res) != 0 {
		t.Fatalf("empty store returned %v", res)
	}
}
