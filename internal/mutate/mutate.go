// Package mutate gives the linear engines a write path: an RCU-style
// mutable vector store supporting Upsert and Delete under live search
// traffic. The paper's target applications are write-heavy — InfiniTAM's
// loop-closure database interleaves an insert with a findMostSimilar on
// every frame, and NCAM (arXiv:1606.03742) motivates near-data search
// precisely for datasets that churn faster than they can be re-shipped —
// but the load-then-search engines of internal/knn cannot take a write
// without a full rebuild. This package closes that gap for the three
// linear engines (float32, 32-bit fixed point, Hamming codes).
//
// Design:
//
//   - Reads are lock-free. The store publishes an immutable snapshot
//     behind an atomic pointer; every Search loads the pointer once and
//     scans that generation to completion, so an in-flight query never
//     observes a half-applied mutation, and concurrent vault-parallel
//     results are bit-identical to a serial scan of the same generation.
//
//   - Writes are copy-on-write. A mutation clones only the per-vault
//     metadata it touches (a tombstone bitmap copy for a delete; an
//     append for an insert — appends extend slabs past every published
//     snapshot's length, which is the classic RCU append and never
//     races a reader), bumps the store's monotonic sequence number, and
//     publishes the next snapshot. One writer mutex serializes
//     mutations; readers never take it.
//
//   - Deletes are tombstones. A deleted row stays physically resident,
//     marked dead, until the background compactor (compact.go) rewrites
//     vaults whose garbage fraction passes a threshold and rebalances
//     vault sizes. Compaction changes physical layout only — never ids,
//     distances, or the sequence number — so it is invisible to search
//     results by construction.
//
// Results carry external ids (the id given to Upsert), and the top-k
// total order is (distance, then external id) — independent of physical
// row placement. That is the property the equivalence tests pin: after
// any mutation sequence, Search over the store is bit-identical to a
// fresh store (or fresh linear region) built from the surviving rows,
// even mid-compaction.
package mutate

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"ssam/internal/knn"
	"ssam/internal/obs"
	"ssam/internal/topk"
	"ssam/internal/vec"
)

// Options tunes a Store. Zero values select the defaults.
type Options struct {
	// Vaults is the physical partition count (and the intra-query scan
	// parallelism, mirroring the paper's per-vault accelerators). <= 0
	// selects knn.DefaultVaults; values above knn.MaxVaults clamp.
	Vaults int
	// SerialBelow is the physical row count under which queries scan
	// serially regardless of the vault count (default
	// knn.DefaultSerialThreshold; negative forces the parallel path).
	SerialBelow int
	// GarbageThreshold is the per-vault dead fraction (dead / physical)
	// at which a compaction pass rewrites the vault (default 0.3).
	GarbageThreshold float64
	// RebalanceFactor triggers a full rebalance when the largest vault
	// holds more than RebalanceFactor times the mean physical rows per
	// vault (default 2.0; values <= 1 keep the default).
	RebalanceFactor float64
}

func (o Options) fill() Options {
	if o.Vaults <= 0 {
		o.Vaults = knn.DefaultVaults()
	}
	if o.Vaults > knn.MaxVaults {
		o.Vaults = knn.MaxVaults
	}
	if o.SerialBelow == 0 {
		o.SerialBelow = knn.DefaultSerialThreshold
	}
	if o.SerialBelow < 0 {
		o.SerialBelow = 0
	}
	if o.GarbageThreshold <= 0 {
		o.GarbageThreshold = 0.3
	}
	if o.RebalanceFactor <= 1 {
		o.RebalanceFactor = 2.0
	}
	return o
}

// loc addresses one physical row in the latest snapshot.
type loc struct {
	vault, row int
}

// vaultShard is one vault's immutable view within a snapshot. The
// slices are never written in place at an index a published snapshot
// can see: deletes copy the tombstone bitmap, inserts append past
// every published length, compaction swaps in fresh slices.
type vaultShard[V any] struct {
	rows  []V    // per-row vectors; each row is immutable once stored
	ids   []int  // external id per row
	dead  []bool // tombstone marks
	deadN int    // tombstones in this vault
}

// snapshot is one immutable generation of the store.
type snapshot[V any] struct {
	seq    uint64 // mutation sequence number at publish
	vaults []vaultShard[V]
	live   int // surviving rows
	dead   int // tombstoned rows still physically present
}

// StoreStats is a point-in-time view of a store's mutation state.
type StoreStats struct {
	Seq           uint64 // last committed mutation sequence number
	Live          int    // surviving rows
	Dead          int    // tombstones not yet compacted away
	Upserts       uint64 // committed upserts
	Deletes       uint64 // committed deletes (misses excluded)
	CompactPasses uint64 // compaction passes that ran (including no-ops)
	VaultRewrites uint64 // vaults rewritten to drop tombstones
	Rebalances    uint64 // full rebalance rewrites
	GarbageRatio  float64
}

// Store is a mutable vector store over rows of type V ([]float32,
// []int32, or vec.Binary — see NewFloat, NewFixed, NewBinary). All
// methods are safe for concurrent use; Search never blocks on writers.
type Store[V any] struct {
	opts  Options
	dim   int           // for Stats.Dims accounting and error text
	check func(V) error // row validation (width, finiteness is wire's job)
	clone func(V) V     // defensive copy on insert
	dist  func(q, row V) float64

	snap atomic.Pointer[snapshot[V]]

	mu    sync.Mutex  // serializes writers: Upsert, Delete, compaction
	index map[int]loc // external id -> physical location, latest snapshot

	seq      atomic.Uint64
	upserts  atomic.Uint64
	deletes  atomic.Uint64
	passes   atomic.Uint64
	rewrites atomic.Uint64
	rebals   atomic.Uint64

	// OnCompact, when non-nil, is invoked after every compaction pass
	// that changed the layout (vault rewrites or a rebalance). Set it
	// before StartCompactor; it runs on the compactor goroutine (or the
	// CompactOnce caller).
	OnCompact func(CompactResult)

	compactOnce sync.Once
	stopOnce    sync.Once
	stop        chan struct{}
	done        chan struct{}
}

// NewFloat returns a store over []float32 rows of the given
// dimensionality under metric (Euclidean, Manhattan or Cosine), the
// mutable counterpart of knn.Engine.
func NewFloat(dim int, metric vec.Metric, opts Options) *Store[[]float32] {
	if dim <= 0 {
		panic("mutate: dim must be positive")
	}
	switch metric {
	case vec.Euclidean, vec.Manhattan, vec.Cosine:
	default:
		panic(fmt.Sprintf("mutate: NewFloat does not support metric %v", metric))
	}
	return newStore[[]float32](dim, opts,
		func(v []float32) error {
			if len(v) != dim {
				return fmt.Errorf("mutate: row dim %d, want %d", len(v), dim)
			}
			for _, x := range v {
				if math.IsNaN(float64(x)) || math.IsInf(float64(x), 0) {
					return fmt.Errorf("mutate: row contains a non-finite value")
				}
			}
			return nil
		},
		func(v []float32) []float32 { return append([]float32(nil), v...) },
		func(q, row []float32) float64 { return vec.Distance(metric, q, row) },
	)
}

// NewFixed returns a store over Q16.16 fixed-point rows, the mutable
// counterpart of knn.FixedEngine. metric must be vec.Euclidean or
// vec.Manhattan (the metrics with fixed-point kernels); distances are
// raw fixed-point units, matching the engine.
func NewFixed(dim int, metric vec.Metric, opts Options) *Store[[]int32] {
	if dim <= 0 {
		panic("mutate: dim must be positive")
	}
	dist := vec.SquaredL2Fixed
	switch metric {
	case vec.Euclidean:
	case vec.Manhattan:
		dist = vec.L1Fixed
	default:
		panic("mutate: fixed-point store supports euclidean and manhattan only")
	}
	return newStore[[]int32](dim, opts,
		func(v []int32) error {
			if len(v) != dim {
				return fmt.Errorf("mutate: row dim %d, want %d", len(v), dim)
			}
			return nil
		},
		func(v []int32) []int32 { return append([]int32(nil), v...) },
		func(q, row []int32) float64 { return float64(dist(q, row)) },
	)
}

// NewBinary returns a store over bit-packed Hamming codes of the given
// width, the mutable counterpart of knn.HammingEngine.
func NewBinary(bits int, opts Options) *Store[vec.Binary] {
	if bits <= 0 {
		panic("mutate: bits must be positive")
	}
	return newStore[vec.Binary](bits, opts,
		func(v vec.Binary) error {
			if v.Dim != bits {
				return fmt.Errorf("mutate: code width %d, want %d", v.Dim, bits)
			}
			return nil
		},
		func(v vec.Binary) vec.Binary {
			return vec.Binary{Dim: v.Dim, Words: append([]uint64(nil), v.Words...)}
		},
		func(q, row vec.Binary) float64 { return float64(vec.Hamming(q, row)) },
	)
}

func newStore[V any](dim int, opts Options, check func(V) error, clone func(V) V, dist func(q, row V) float64) *Store[V] {
	s := &Store[V]{
		opts:  opts.fill(),
		dim:   dim,
		check: check,
		clone: clone,
		dist:  dist,
		index: make(map[int]loc),
		stop:  make(chan struct{}),
		done:  make(chan struct{}),
	}
	s.snap.Store(&snapshot[V]{vaults: make([]vaultShard[V], s.opts.Vaults)})
	return s
}

// Seed bulk-loads rows with the given external ids as generation 0,
// partitioned into contiguous vault chunks exactly like the immutable
// engines — a seeded store answers queries bit-identically to
// knn.NewEngineVaults over the same data when ids are 0..n-1. Seed is
// only valid on an empty store (no prior Seed or mutation) and does not
// advance the sequence number: the seed is the dataset the first
// mutation mutates.
func (s *Store[V]) Seed(ids []int, rows []V) error {
	if len(ids) != len(rows) {
		return fmt.Errorf("mutate: %d ids for %d rows", len(ids), len(rows))
	}
	for _, v := range rows {
		if err := s.check(v); err != nil {
			return err
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.index) > 0 || s.seq.Load() != 0 {
		return fmt.Errorf("mutate: Seed on a non-empty store")
	}
	vaults := make([]vaultShard[V], s.opts.Vaults)
	n := len(rows)
	chunk := (n + s.opts.Vaults - 1) / s.opts.Vaults
	for v := range vaults {
		lo := v * chunk
		hi := min(lo+chunk, n)
		if lo >= hi {
			continue
		}
		vs := vaultShard[V]{
			rows: make([]V, 0, hi-lo),
			ids:  make([]int, 0, hi-lo),
			dead: make([]bool, hi-lo),
		}
		for i := lo; i < hi; i++ {
			id := ids[i]
			if id < 0 {
				return fmt.Errorf("mutate: negative id %d", id)
			}
			if _, dup := s.index[id]; dup {
				return fmt.Errorf("mutate: duplicate id %d in seed", id)
			}
			vs.rows = append(vs.rows, s.clone(rows[i]))
			vs.ids = append(vs.ids, id)
			s.index[id] = loc{v, len(vs.ids) - 1}
		}
		vaults[v] = vs
	}
	s.snap.Store(&snapshot[V]{vaults: vaults, live: n})
	return nil
}

// Upsert inserts row v under id, replacing (tombstoning) any existing
// row with the same id, and returns the mutation's committed sequence
// number. The row is copied; the caller may reuse v.
func (s *Store[V]) Upsert(id int, v V) (uint64, error) {
	if id < 0 {
		return 0, fmt.Errorf("mutate: negative id %d", id)
	}
	if err := s.check(v); err != nil {
		return 0, err
	}
	row := s.clone(v)
	s.mu.Lock()
	defer s.mu.Unlock()
	cur := s.snap.Load()
	vaults := append([]vaultShard[V](nil), cur.vaults...)
	live, dead := cur.live, cur.dead
	if l, ok := s.index[id]; ok {
		tombstone(&vaults[l.vault], l.row)
		live--
		dead++
	}
	t := targetVault(vaults)
	vs := &vaults[t]
	vs.rows = append(vs.rows, row)
	vs.ids = append(vs.ids, id)
	vs.dead = append(vs.dead, false)
	s.index[id] = loc{t, len(vs.ids) - 1}
	seq := s.seq.Add(1)
	s.upserts.Add(1)
	s.snap.Store(&snapshot[V]{seq: seq, vaults: vaults, live: live + 1, dead: dead})
	return seq, nil
}

// Delete tombstones the row with the given id. It reports whether the
// id was present; a miss does not commit (the sequence number returned
// is the current one, unchanged).
func (s *Store[V]) Delete(id int) (uint64, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	l, ok := s.index[id]
	if !ok {
		return s.seq.Load(), false
	}
	cur := s.snap.Load()
	vaults := append([]vaultShard[V](nil), cur.vaults...)
	tombstone(&vaults[l.vault], l.row)
	delete(s.index, id)
	seq := s.seq.Add(1)
	s.deletes.Add(1)
	s.snap.Store(&snapshot[V]{seq: seq, vaults: vaults, live: cur.live - 1, dead: cur.dead + 1})
	return seq, true
}

// tombstone marks row r of vs dead via a copied bitmap, so published
// snapshots sharing the old bitmap are untouched.
func tombstone[V any](vs *vaultShard[V], r int) {
	nd := make([]bool, len(vs.dead))
	copy(nd, vs.dead)
	nd[r] = true
	vs.dead = nd
	vs.deadN++
}

// targetVault picks the append target: the vault with the fewest
// physical rows, ties to the lowest index — deterministic, and the
// cheap half of keeping vaults balanced (the compactor handles the
// rest when deletes skew them).
func targetVault[V any](vaults []vaultShard[V]) int {
	t := 0
	for v := 1; v < len(vaults); v++ {
		if len(vaults[v].ids) < len(vaults[t].ids) {
			t = v
		}
	}
	return t
}

// Get returns the row stored under id, if present. The returned row
// aliases the store's immutable copy; callers must not modify it.
func (s *Store[V]) Get(id int) (V, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var zero V
	l, ok := s.index[id]
	if !ok {
		return zero, false
	}
	snap := s.snap.Load()
	return snap.vaults[l.vault].rows[l.row], true
}

// Len returns the number of live (surviving) rows.
func (s *Store[V]) Len() int { return s.snap.Load().live }

// Dead returns the number of tombstoned rows not yet compacted away.
func (s *Store[V]) Dead() int { return s.snap.Load().dead }

// Seq returns the last committed mutation sequence number.
func (s *Store[V]) Seq() uint64 { return s.seq.Load() }

// Vaults returns the physical partition count.
func (s *Store[V]) Vaults() int { return s.opts.Vaults }

// Dim returns the row dimensionality (bits for binary stores).
func (s *Store[V]) Dim() int { return s.dim }

// Stats returns a point-in-time view of the store's mutation state.
func (s *Store[V]) Stats() StoreStats {
	snap := s.snap.Load()
	st := StoreStats{
		Seq:           snap.seq,
		Live:          snap.live,
		Dead:          snap.dead,
		Upserts:       s.upserts.Load(),
		Deletes:       s.deletes.Load(),
		CompactPasses: s.passes.Load(),
		VaultRewrites: s.rewrites.Load(),
		Rebalances:    s.rebals.Load(),
	}
	if phys := snap.live + snap.dead; phys > 0 {
		st.GarbageRatio = float64(snap.dead) / float64(phys)
	}
	return st
}

// Survivors returns the live rows and their ids in ascending id order —
// the canonical rebuilt-from-survivors dataset the equivalence tests
// compare against. Rows alias the store's immutable copies.
func (s *Store[V]) Survivors() (ids []int, rows []V) {
	snap := s.snap.Load()
	ids = make([]int, 0, snap.live)
	byID := make(map[int]V, snap.live)
	for _, vs := range snap.vaults {
		for i, id := range vs.ids {
			if !vs.dead[i] {
				ids = append(ids, id)
				byID[id] = vs.rows[i]
			}
		}
	}
	sort.Ints(ids)
	rows = make([]V, len(ids))
	for i, id := range ids {
		rows[i] = byID[id]
	}
	return ids, rows
}

// Search returns the k nearest live rows to q, closest first, ids being
// the external ids given to Upsert/Seed. The scan runs against one
// snapshot generation end to end.
func (s *Store[V]) Search(q V, k int) []topk.Result {
	res, _ := s.SearchStatsSpan(q, k, nil)
	return res
}

// SearchStats is Search plus work accounting; Stats.Seq carries the
// generation scanned.
func (s *Store[V]) SearchStats(q V, k int) ([]topk.Result, knn.Stats) {
	return s.SearchStatsSpan(q, k, nil)
}

// SearchStatsSpan is SearchStats recording one "vault" child span of sp
// per scanned partition (sp may be nil). Results are bit-identical to a
// serial scan of the same generation at any vault count: the total
// order is (distance, external id), independent of physical layout.
func (s *Store[V]) SearchStatsSpan(q V, k int, sp *obs.Span) ([]topk.Result, knn.Stats) {
	snap := s.snap.Load()
	return s.searchSnap(snap, q, k, sp, false)
}

// SearchBatch answers one query per element of qs, all against a single
// snapshot generation (batch-level consistency). Short batches run each
// query vault-parallel in turn; batches of at least workers queries fan
// out across workers goroutines with serial per-query scans, keeping
// total parallelism at the worker count. workers <= 0 selects the vault
// count.
func (s *Store[V]) SearchBatch(qs []V, k int, workers int, sp *obs.Span) [][]topk.Result {
	snap := s.snap.Load()
	if workers <= 0 {
		workers = s.opts.Vaults
	}
	out := make([][]topk.Result, len(qs))
	if len(qs) < workers || workers <= 1 {
		for i, q := range qs {
			out[i], _ = s.searchSnap(snap, q, k, sp, false)
		}
		return out
	}
	var wg sync.WaitGroup
	idx := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				out[i], _ = s.searchSnap(snap, qs[i], k, nil, true)
			}
		}()
	}
	for i := range qs {
		idx <- i
	}
	close(idx)
	wg.Wait()
	return out
}

// searchSnap scans one snapshot. forceSerial suppresses vault
// parallelism (cross-query fan-out paths provide their own).
func (s *Store[V]) searchSnap(snap *snapshot[V], q V, k int, sp *obs.Span, forceSerial bool) ([]topk.Result, knn.Stats) {
	if k <= 0 {
		return nil, knn.Stats{Seq: snap.seq}
	}
	phys := snap.live + snap.dead
	if forceSerial || s.opts.Vaults == 1 || phys < s.opts.SerialBelow {
		sel := topk.New(k)
		var st knn.Stats
		for v := range snap.vaults {
			s.scanVault(&snap.vaults[v], q, sel, &st)
		}
		st.Seq = snap.seq
		return sel.Results(), st
	}
	type part struct {
		res   []topk.Result
		stats knn.Stats
	}
	parts := make([]part, len(snap.vaults))
	var wg sync.WaitGroup
	for v := range snap.vaults {
		if len(snap.vaults[v].ids) == 0 {
			continue
		}
		vsp := sp.Start("vault",
			obs.Tag{Key: "vault", Value: v},
			obs.Tag{Key: "rows", Value: len(snap.vaults[v].ids)})
		wg.Add(1)
		go func(v int, vsp *obs.Span) {
			defer wg.Done()
			sel := topk.New(k)
			s.scanVault(&snap.vaults[v], q, sel, &parts[v].stats)
			parts[v].res = sel.Results()
			vsp.End()
		}(v, vsp)
	}
	wg.Wait()
	var st knn.Stats
	lists := make([][]topk.Result, 0, len(parts))
	for v := range parts {
		if parts[v].res != nil {
			lists = append(lists, parts[v].res)
		}
		st.Add(parts[v].stats)
	}
	st.Seq = snap.seq
	return topk.MergeSorted(k, lists...), st
}

// scanVault runs the scan kernel over one vault's live rows.
func (s *Store[V]) scanVault(vs *vaultShard[V], q V, sel *topk.Selector, st *knn.Stats) {
	for i := range vs.rows {
		if vs.dead[i] {
			continue
		}
		d := s.dist(q, vs.rows[i])
		st.DistEvals++
		st.Dims += s.dim
		st.PQInserts++
		if sel.Push(vs.ids[i], d) {
			st.PQKept++
		}
	}
}
