// Package isa defines the SSAM processing-unit instruction set of
// Table II: a fully integrated scalar/vector ISA with 32 scalar and 8
// vector registers, augmented with the similarity-search units — a
// hardware priority queue (PQUEUE_INSERT / PQUEUE_LOAD / PQUEUE_RESET),
// a hardware stack (PUSH / POP), a fused xor-popcount (SFXP / VFXP),
// and a stream prefetch (MEM_FETCH).
package isa

import (
	"encoding/binary"
	"fmt"
)

// Op is an instruction opcode.
type Op uint8

// Opcodes. Ops marked (S/V) in Table II exist in scalar and vector
// forms, selected by Inst.Vector; control, stack and priority-queue
// ops are scalar-only.
const (
	// Arithmetic (S/V).
	ADD Op = iota
	SUB
	MULT
	POPCOUNT
	ADDI
	SUBI
	MULTI
	// Bitwise / shift (S/V).
	OR
	AND
	NOT
	XOR
	ANDI
	ORI
	XORI
	SR
	SL
	SRA
	// Control (S).
	BNE
	BGT
	BLT
	BE
	J
	// Stack unit (S).
	POP
	PUSH
	// Register move / memory (S/V).
	SVMOVE
	VSMOVE
	MEMFETCH
	LOAD
	STORE
	// SSAM extensions.
	PQUEUEINSERT
	PQUEUELOAD
	PQUEUERESET
	FXP
	// HALT ends a kernel (assembler convenience; encoded as a real op
	// so binaries are self-terminating).
	HALT

	numOps
)

// NumOps is the number of defined opcodes.
const NumOps = int(numOps)

var opNames = [...]string{
	ADD: "ADD", SUB: "SUB", MULT: "MULT", POPCOUNT: "POPCOUNT",
	ADDI: "ADDI", SUBI: "SUBI", MULTI: "MULTI",
	OR: "OR", AND: "AND", NOT: "NOT", XOR: "XOR",
	ANDI: "ANDI", ORI: "ORI", XORI: "XORI",
	SR: "SR", SL: "SL", SRA: "SRA",
	BNE: "BNE", BGT: "BGT", BLT: "BLT", BE: "BE", J: "J",
	POP: "POP", PUSH: "PUSH",
	SVMOVE: "SVMOVE", VSMOVE: "VSMOVE", MEMFETCH: "MEM_FETCH",
	LOAD: "LOAD", STORE: "STORE",
	PQUEUEINSERT: "PQUEUE_INSERT", PQUEUELOAD: "PQUEUE_LOAD",
	PQUEUERESET: "PQUEUE_RESET", FXP: "FXP",
	HALT: "HALT",
}

// String returns the Table II mnemonic.
func (o Op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return fmt.Sprintf("OP(%d)", uint8(o))
}

// VectorCapable reports whether the op has a vector form (the S/V rows
// of Table II).
func (o Op) VectorCapable() bool {
	switch o {
	case ADD, SUB, MULT, POPCOUNT, ADDI, SUBI, MULTI,
		OR, AND, NOT, XOR, ANDI, ORI, XORI, SR, SL, SRA,
		SVMOVE, VSMOVE, LOAD, STORE, FXP, MEMFETCH:
		return true
	}
	return false
}

// HasImmediate reports whether the op carries an immediate operand.
func (o Op) HasImmediate() bool {
	switch o {
	case ADDI, SUBI, MULTI, ANDI, ORI, XORI, SR, SL, SRA,
		BNE, BGT, BLT, BE, J, LOAD, STORE, MEMFETCH,
		SVMOVE, VSMOVE, PQUEUELOAD:
		return true
	}
	return false
}

// IsBranch reports whether the op redirects control flow.
func (o Op) IsBranch() bool {
	switch o {
	case BNE, BGT, BLT, BE, J:
		return true
	}
	return false
}

// Register-file shape (Section III-C: "32 scalar registers, and 8
// vector registers are sufficient").
const (
	NumScalarRegs = 32
	NumVectorRegs = 8
)

// Inst is one decoded instruction. Rd/Rs1/Rs2 index the scalar file
// for scalar ops and the vector file for vector ops (SVMOVE and VSMOVE
// mix: SVMOVE vd, rs1; VSMOVE rd, vs1).
type Inst struct {
	Op     Op
	Vector bool
	Rd     uint8
	Rs1    uint8
	Rs2    uint8
	Imm    int32
}

// String renders the instruction in assembler syntax.
func (i Inst) String() string {
	name := i.Op.String()
	if i.Vector && i.Op != SVMOVE && i.Op != VSMOVE {
		name = "V" + name
	}
	if i.Op.HasImmediate() {
		return fmt.Sprintf("%s r%d, r%d, r%d, %d", name, i.Rd, i.Rs1, i.Rs2, i.Imm)
	}
	return fmt.Sprintf("%s r%d, r%d, r%d", name, i.Rd, i.Rs1, i.Rs2)
}

// Validate checks structural invariants: register indices in range and
// vector flag only on vector-capable ops.
func (i Inst) Validate() error {
	if i.Op >= numOps {
		return fmt.Errorf("isa: invalid opcode %d", i.Op)
	}
	if i.Vector && !i.Op.VectorCapable() {
		return fmt.Errorf("isa: %s has no vector form", i.Op)
	}
	scalarMax := uint8(NumScalarRegs)
	vectorMax := uint8(NumVectorRegs)
	max := scalarMax
	if i.Vector {
		max = vectorMax
	}
	// SVMOVE reads scalar, writes vector; VSMOVE the reverse; vector
	// LOAD/STORE move a vector register but address through a scalar.
	switch i.Op {
	case LOAD, STORE:
		if i.Vector {
			if i.Rd >= vectorMax || i.Rs1 >= scalarMax {
				return fmt.Errorf("isa: vector %s register out of range: %v", i.Op, i)
			}
			return nil
		}
	case SVMOVE:
		if i.Rd >= vectorMax || i.Rs1 >= scalarMax {
			return fmt.Errorf("isa: SVMOVE register out of range: %v", i)
		}
		return nil
	case VSMOVE:
		if i.Rd >= scalarMax || i.Rs1 >= vectorMax {
			return fmt.Errorf("isa: VSMOVE register out of range: %v", i)
		}
		return nil
	}
	if i.Rd >= max || i.Rs1 >= max || i.Rs2 >= max {
		return fmt.Errorf("isa: register out of range: %v", i)
	}
	return nil
}

// InstBytes is the encoded size of one instruction: op(1) flags(1)
// rd(1) rs1(1) rs2(1) pad(3) imm(4), little-endian.
const InstBytes = 12

// Encode packs the instruction into its binary form.
func (i Inst) Encode() [InstBytes]byte {
	var b [InstBytes]byte
	b[0] = byte(i.Op)
	if i.Vector {
		b[1] = 1
	}
	b[2], b[3], b[4] = i.Rd, i.Rs1, i.Rs2
	binary.LittleEndian.PutUint32(b[8:12], uint32(i.Imm))
	return b
}

// Decode is the inverse of Encode.
func Decode(b [InstBytes]byte) Inst {
	return Inst{
		Op:     Op(b[0]),
		Vector: b[1] != 0,
		Rd:     b[2],
		Rs1:    b[3],
		Rs2:    b[4],
		Imm:    int32(binary.LittleEndian.Uint32(b[8:12])),
	}
}

// EncodeProgram serializes a program to bytes.
func EncodeProgram(prog []Inst) []byte {
	out := make([]byte, 0, len(prog)*InstBytes)
	for _, in := range prog {
		b := in.Encode()
		out = append(out, b[:]...)
	}
	return out
}

// DecodeProgram parses bytes produced by EncodeProgram.
func DecodeProgram(data []byte) ([]Inst, error) {
	if len(data)%InstBytes != 0 {
		return nil, fmt.Errorf("isa: program length %d not a multiple of %d", len(data), InstBytes)
	}
	prog := make([]Inst, len(data)/InstBytes)
	for i := range prog {
		var b [InstBytes]byte
		copy(b[:], data[i*InstBytes:])
		prog[i] = Decode(b)
		if err := prog[i].Validate(); err != nil {
			return nil, fmt.Errorf("isa: instruction %d: %w", i, err)
		}
	}
	return prog, nil
}
