package isa

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// TestTableIICoverage enumerates the full Table II instruction set and
// checks every listed mnemonic is defined.
func TestTableIICoverage(t *testing.T) {
	want := map[string]Op{
		// Arithmetic (S/V).
		"ADD": ADD, "SUB": SUB, "MULT": MULT, "POPCOUNT": POPCOUNT,
		"ADDI": ADDI, "SUBI": SUBI, "MULTI": MULTI,
		// Bitwise/shift (S/V).
		"OR": OR, "AND": AND, "NOT": NOT, "XOR": XOR,
		"ANDI": ANDI, "ORI": ORI, "XORI": XORI,
		"SR": SR, "SL": SL, "SRA": SRA,
		// Control (S).
		"BNE": BNE, "BGT": BGT, "BLT": BLT, "BE": BE, "J": J,
		// Stack unit (S).
		"POP": POP, "PUSH": PUSH,
		// Moves/memory (S/V).
		"SVMOVE": SVMOVE, "VSMOVE": VSMOVE, "MEM_FETCH": MEMFETCH,
		"LOAD": LOAD, "STORE": STORE,
		// New SSAM instructions.
		"PQUEUE_INSERT": PQUEUEINSERT, "PQUEUE_LOAD": PQUEUELOAD,
		"PQUEUE_RESET": PQUEUERESET, "FXP": FXP,
	}
	for name, op := range want {
		if op.String() != name {
			t.Errorf("op %d: String() = %q, want %q", op, op.String(), name)
		}
	}
	if NumOps != len(want)+1 { // +1 for HALT
		t.Errorf("NumOps = %d, want %d", NumOps, len(want)+1)
	}
}

func TestVectorCapable(t *testing.T) {
	for _, op := range []Op{ADD, SUB, MULT, POPCOUNT, XOR, SR, LOAD, STORE, FXP} {
		if !op.VectorCapable() {
			t.Errorf("%s should be vector-capable", op)
		}
	}
	for _, op := range []Op{BNE, J, PUSH, POP, PQUEUEINSERT, PQUEUERESET, HALT} {
		if op.VectorCapable() {
			t.Errorf("%s should be scalar-only", op)
		}
	}
}

func TestEncodeDecodeRoundTripQuick(t *testing.T) {
	f := func(opRaw, flags, rd, rs1, rs2 uint8, imm int32) bool {
		in := Inst{
			Op:     Op(int(opRaw) % NumOps),
			Vector: flags&1 != 0,
			Rd:     rd, Rs1: rs1, Rs2: rs2, Imm: imm,
		}
		return Decode(in.Encode()) == in
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestProgramRoundTrip(t *testing.T) {
	prog := []Inst{
		{Op: ADDI, Rd: 1, Rs1: 0, Imm: 42},
		{Op: ADD, Vector: true, Rd: 1, Rs1: 2, Rs2: 3},
		{Op: HALT},
	}
	data := EncodeProgram(prog)
	if len(data) != 3*InstBytes {
		t.Fatalf("encoded %d bytes", len(data))
	}
	back, err := DecodeProgram(data)
	if err != nil {
		t.Fatal(err)
	}
	for i := range prog {
		if back[i] != prog[i] {
			t.Fatalf("inst %d: %v != %v", i, back[i], prog[i])
		}
	}
}

func TestDecodeProgramErrors(t *testing.T) {
	if _, err := DecodeProgram(make([]byte, InstBytes+1)); err == nil {
		t.Fatal("no error on ragged program")
	}
	bad := Inst{Op: BNE, Vector: true} // control ops have no vector form
	if _, err := DecodeProgram(EncodeProgram([]Inst{bad})); err == nil {
		t.Fatal("no error on invalid instruction")
	}
}

func TestValidate(t *testing.T) {
	cases := []struct {
		in  Inst
		bad bool
	}{
		{Inst{Op: ADD, Rd: 31, Rs1: 31, Rs2: 31}, false},
		{Inst{Op: ADD, Rd: 32}, true},
		{Inst{Op: ADD, Vector: true, Rd: 7, Rs1: 7, Rs2: 7}, false},
		{Inst{Op: ADD, Vector: true, Rd: 8}, true},
		{Inst{Op: J, Vector: true}, true},
		{Inst{Op: SVMOVE, Rd: 7, Rs1: 31}, false},
		{Inst{Op: SVMOVE, Rd: 8, Rs1: 0}, true},
		{Inst{Op: VSMOVE, Rd: 31, Rs1: 7}, false},
		{Inst{Op: VSMOVE, Rd: 0, Rs1: 8}, true},
		{Inst{Op: Op(200)}, true},
	}
	for i, c := range cases {
		err := c.in.Validate()
		if (err != nil) != c.bad {
			t.Errorf("case %d (%v): err=%v, want bad=%v", i, c.in, err, c.bad)
		}
	}
}

func TestHasImmediateAndBranch(t *testing.T) {
	if !ADDI.HasImmediate() || ADD.HasImmediate() {
		t.Fatal("HasImmediate wrong for ADD/ADDI")
	}
	if !J.IsBranch() || !BNE.IsBranch() || ADD.IsBranch() {
		t.Fatal("IsBranch wrong")
	}
}

func TestInstString(t *testing.T) {
	in := Inst{Op: ADD, Vector: true, Rd: 1, Rs1: 2, Rs2: 3}
	if s := in.String(); s == "" {
		t.Fatal("empty String")
	}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 50; i++ {
		in := Inst{Op: Op(rng.Intn(NumOps)), Rd: uint8(rng.Intn(8))}
		if in.String() == "" {
			t.Fatal("empty String")
		}
	}
}
