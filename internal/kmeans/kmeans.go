// Package kmeans implements the hierarchical k-means tree index of
// FLANN, the second approximate-kNN structure characterized in
// Section II-C of the SSAM paper: "the dataset is partitioned
// recursively based on k-means cluster assignments to form a tree data
// structure ... Backtracking is also used to expand the search space
// and search 'close by' buckets."
package kmeans

import (
	"container/heap"
	"math/rand"

	"ssam/internal/topk"
	"ssam/internal/vec"
)

// Params configures tree construction.
type Params struct {
	Branching  int   // children per interior node (FLANN default 32)
	LeafSize   int   // max vectors per leaf bucket
	Iterations int   // Lloyd iterations per split
	Seed       int64 // construction randomness
}

// DefaultParams mirrors FLANN's customary settings, with a smaller
// branching factor suited to the scaled datasets.
func DefaultParams() Params {
	return Params{Branching: 16, LeafSize: 32, Iterations: 8, Seed: 1}
}

type node struct {
	centroid []float32
	children []int32 // empty for leaves
	start    int32   // leaf range into ids
	end      int32
}

// Tree is a built hierarchical k-means index.
type Tree struct {
	data  []float32
	dim   int
	n     int
	nodes []node
	ids   []int32
	// Checks bounds the number of database vectors scored per query.
	Checks int
}

// Build constructs the tree over a flattened row-major database.
func Build(data []float32, dim int, p Params) *Tree {
	if dim <= 0 || len(data)%dim != 0 {
		panic("kmeans: data length not a multiple of dim")
	}
	if p.Branching < 2 {
		p.Branching = 2
	}
	if p.LeafSize <= 0 {
		p.LeafSize = 32
	}
	if p.Iterations <= 0 {
		p.Iterations = 5
	}
	t := &Tree{data: data, dim: dim, n: len(data) / dim}
	t.Checks = 16 * p.LeafSize
	t.ids = make([]int32, t.n)
	for i := range t.ids {
		t.ids[i] = int32(i)
	}
	b := &builder{t: t, p: p, rng: rand.New(rand.NewSource(p.Seed))}
	root := centroidOf(t, 0, int32(t.n))
	b.build(root, 0, int32(t.n))
	return t
}

// N returns the database size.
func (t *Tree) N() int { return t.n }

func (t *Tree) row(i int32) []float32 { return t.data[int(i)*t.dim : (int(i)+1)*t.dim] }

func centroidOf(t *Tree, start, end int32) []float32 {
	c := make([]float64, t.dim)
	for i := start; i < end; i++ {
		for d, v := range t.row(t.ids[i]) {
			c[d] += float64(v)
		}
	}
	out := make([]float32, t.dim)
	cnt := float64(end - start)
	for d := range out {
		out[d] = float32(c[d] / cnt)
	}
	return out
}

type builder struct {
	t   *Tree
	p   Params
	rng *rand.Rand
}

// build creates the node for ids[start:end) with the given centroid
// and recursively splits it; returns the node index.
func (b *builder) build(centroid []float32, start, end int32) int32 {
	t := b.t
	idx := int32(len(t.nodes))
	t.nodes = append(t.nodes, node{centroid: centroid, start: start, end: end})
	if end-start <= int32(b.p.LeafSize) {
		return idx
	}
	kk := b.p.Branching
	if int32(kk) > end-start {
		kk = int(end - start)
	}
	centers, assign, ok := b.lloyd(start, end, kk)
	if !ok {
		return idx // degenerate split: keep as leaf
	}
	// Partition ids by cluster assignment (stable bucketing).
	counts := make([]int32, kk)
	for _, a := range assign {
		counts[a]++
	}
	offsets := make([]int32, kk+1)
	for c := 0; c < kk; c++ {
		offsets[c+1] = offsets[c] + counts[c]
	}
	tmp := make([]int32, end-start)
	cursor := make([]int32, kk)
	copy(cursor, offsets[:kk])
	for i, a := range assign {
		tmp[cursor[a]] = t.ids[start+int32(i)]
		cursor[a]++
	}
	copy(t.ids[start:end], tmp)

	children := make([]int32, 0, kk)
	for c := 0; c < kk; c++ {
		cs, ce := start+offsets[c], start+offsets[c+1]
		if cs == ce {
			continue
		}
		children = append(children, b.build(centers[c], cs, ce))
	}
	if len(children) < 2 {
		// All points in one cluster: splitting made no progress.
		t.nodes = t.nodes[:idx+1]
		n := &t.nodes[idx]
		n.children = nil
		return idx
	}
	t.nodes[idx].children = children
	return idx
}

// lloyd runs k-means over ids[start:end) and returns the centers and
// per-point assignments. ok is false if the split degenerated.
func (b *builder) lloyd(start, end int32, kk int) (centers [][]float32, assign []int32, ok bool) {
	t := b.t
	n := int(end - start)
	centers = make([][]float32, kk)
	// Random distinct seeding.
	perm := b.rng.Perm(n)
	for c := 0; c < kk; c++ {
		centers[c] = append([]float32(nil), t.row(t.ids[start+int32(perm[c])])...)
	}
	assign = make([]int32, n)
	sums := make([][]float64, kk)
	counts := make([]int64, kk)
	for c := range sums {
		sums[c] = make([]float64, t.dim)
	}
	for it := 0; it < b.p.Iterations; it++ {
		changed := false
		for i := 0; i < n; i++ {
			row := t.row(t.ids[start+int32(i)])
			best, bestD := int32(0), vec.SquaredL2(row, centers[0])
			for c := 1; c < kk; c++ {
				if d := vec.SquaredL2(row, centers[c]); d < bestD {
					best, bestD = int32(c), d
				}
			}
			if assign[i] != best || it == 0 {
				changed = true
			}
			assign[i] = best
		}
		if !changed {
			break
		}
		for c := range sums {
			for d := range sums[c] {
				sums[c][d] = 0
			}
			counts[c] = 0
		}
		for i := 0; i < n; i++ {
			c := assign[i]
			counts[c]++
			for d, v := range t.row(t.ids[start+int32(i)]) {
				sums[c][d] += float64(v)
			}
		}
		for c := 0; c < kk; c++ {
			if counts[c] == 0 {
				// Reseed empty cluster on a random point.
				centers[c] = append([]float32(nil), t.row(t.ids[start+int32(b.rng.Intn(n))])...)
				continue
			}
			for d := range centers[c] {
				centers[c][d] = float32(sums[c][d] / float64(counts[c]))
			}
		}
	}
	// Degenerate if every point landed in one cluster.
	first := assign[0]
	for _, a := range assign {
		if a != first {
			return centers, assign, true
		}
	}
	return nil, nil, false
}

type branchEntry struct {
	node  int32
	bound float64
}

type branchHeap []branchEntry

func (h branchHeap) Len() int            { return len(h) }
func (h branchHeap) Less(i, j int) bool  { return h[i].bound < h[j].bound }
func (h branchHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *branchHeap) Push(x interface{}) { *h = append(*h, x.(branchEntry)) }
func (h *branchHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// Stats records per-query work.
type Stats struct {
	NodeVisits    int
	CentroidEvals int // centroid distance computations
	LeafScans     int
	DistEvals     int
	Dims          int
	HeapOps       int
}

// Search returns the approximate k nearest neighbors of q, scoring at
// most t.Checks database vectors.
func (t *Tree) Search(q []float32, k int) []topk.Result {
	res, _ := t.SearchStats(q, k)
	return res
}

// SearchStats is Search plus work accounting.
func (t *Tree) SearchStats(q []float32, k int) ([]topk.Result, Stats) {
	sel := topk.New(k)
	var st Stats
	var h branchHeap
	t.descend(0, q, sel, &h, &st)
	for len(h) > 0 && st.DistEvals < t.Checks {
		e := heap.Pop(&h).(branchEntry)
		st.HeapOps++
		t.descend(e.node, q, sel, &h, &st)
	}
	return sel.Results(), st
}

func (t *Tree) descend(ni int32, q []float32, sel *topk.Selector, h *branchHeap, st *Stats) {
	for {
		n := &t.nodes[ni]
		if len(n.children) == 0 {
			st.LeafScans++
			for _, id := range t.ids[n.start:n.end] {
				d := vec.SquaredL2(q, t.row(id))
				st.DistEvals++
				st.Dims += t.dim
				sel.Push(int(id), d)
			}
			return
		}
		st.NodeVisits++
		best := int32(-1)
		bestD := 0.0
		for _, c := range n.children {
			d := vec.SquaredL2(q, t.nodes[c].centroid)
			st.CentroidEvals++
			st.Dims += t.dim
			if best < 0 || d < bestD {
				if best >= 0 {
					heap.Push(h, branchEntry{node: best, bound: bestD})
					st.HeapOps++
				}
				best, bestD = c, d
			} else {
				heap.Push(h, branchEntry{node: c, bound: d})
				st.HeapOps++
			}
		}
		ni = best
	}
}
