package kmeans

import (
	"testing"

	"ssam/internal/dataset"
	"ssam/internal/knn"
)

func testDataset() *dataset.Dataset {
	return dataset.Generate(dataset.Spec{
		Name: "t", N: 2000, Dim: 16, NumQueries: 30, K: 5,
		Clusters: 16, ClusterStd: 0.25, Seed: 6,
	})
}

func TestExhaustiveSearchRecall(t *testing.T) {
	ds := testDataset()
	tr := Build(ds.Data, ds.Dim(), DefaultParams())
	tr.Checks = ds.N()
	gt := knn.GroundTruth(ds.Data, ds.Dim(), ds.Queries, 5, 1)
	var recall float64
	for i, q := range ds.Queries {
		recall += dataset.Recall(gt[i], tr.Search(q, 5))
	}
	recall /= float64(len(ds.Queries))
	if recall < 0.999 {
		t.Fatalf("exhaustive k-means recall = %v, want ~1", recall)
	}
}

func TestLeavesPartitionDataset(t *testing.T) {
	ds := testDataset()
	tr := Build(ds.Data, ds.Dim(), DefaultParams())
	// Every id appears exactly once across the permuted id array.
	seen := make(map[int32]int)
	for _, id := range tr.ids {
		seen[id]++
	}
	if len(seen) != ds.N() {
		t.Fatalf("ids cover %d of %d vectors", len(seen), ds.N())
	}
	for id, c := range seen {
		if c != 1 {
			t.Fatalf("id %d appears %d times", id, c)
		}
	}
	// Leaf ranges must tile [0, n) without overlap.
	covered := 0
	for _, n := range tr.nodes {
		if len(n.children) == 0 {
			covered += int(n.end - n.start)
		}
	}
	// Leaves can nest under discarded degenerate parents only if they
	// are reachable; count reachable leaves instead.
	covered = 0
	var walk func(int32)
	walk = func(ni int32) {
		n := &tr.nodes[ni]
		if len(n.children) == 0 {
			covered += int(n.end - n.start)
			return
		}
		for _, c := range n.children {
			walk(c)
		}
	}
	walk(0)
	if covered != ds.N() {
		t.Fatalf("reachable leaves cover %d of %d", covered, ds.N())
	}
}

func TestAccuracyThroughputTradeoff(t *testing.T) {
	ds := testDataset()
	tr := Build(ds.Data, ds.Dim(), DefaultParams())
	gt := knn.GroundTruth(ds.Data, ds.Dim(), ds.Queries, 5, 1)
	recallAt := func(checks int) (float64, int) {
		tr.Checks = checks
		var recall float64
		evals := 0
		for i, q := range ds.Queries {
			res, st := tr.SearchStats(q, 5)
			recall += dataset.Recall(gt[i], res)
			evals += st.DistEvals
		}
		return recall / float64(len(ds.Queries)), evals
	}
	low, lowEvals := recallAt(64)
	high, highEvals := recallAt(1200)
	if highEvals <= lowEvals {
		t.Fatalf("checks knob did not increase work")
	}
	if high < low {
		t.Fatalf("recall fell with more checks: %v -> %v", low, high)
	}
	if high < 0.85 {
		t.Fatalf("high-checks recall = %v, too low", high)
	}
}

func TestDeterministicBuild(t *testing.T) {
	ds := testDataset()
	a := Build(ds.Data, ds.Dim(), DefaultParams())
	b := Build(ds.Data, ds.Dim(), DefaultParams())
	ra := a.Search(ds.Queries[0], 5)
	rb := b.Search(ds.Queries[0], 5)
	for i := range ra {
		if ra[i] != rb[i] {
			t.Fatalf("nondeterministic build")
		}
	}
}

func TestStatsPopulated(t *testing.T) {
	ds := testDataset()
	tr := Build(ds.Data, ds.Dim(), DefaultParams())
	tr.Checks = 300
	_, st := tr.SearchStats(ds.Queries[0], 5)
	if st.DistEvals == 0 || st.CentroidEvals == 0 || st.LeafScans == 0 {
		t.Fatalf("stats not populated: %+v", st)
	}
}

func TestIdenticalPoints(t *testing.T) {
	data := make([]float32, 200*4)
	tr := Build(data, 4, DefaultParams())
	tr.Checks = 50
	got := tr.Search(make([]float32, 4), 3)
	if len(got) != 3 {
		t.Fatalf("got %d results on degenerate data", len(got))
	}
}

func TestTinyDataset(t *testing.T) {
	data := []float32{0, 0, 10, 10}
	tr := Build(data, 2, DefaultParams())
	got := tr.Search([]float32{9, 9}, 1)
	if got[0].ID != 1 {
		t.Fatalf("nearest = %+v", got[0])
	}
}

func TestBuildPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	Build(make([]float32, 7), 2, DefaultParams())
}
