package knn

import (
	"math/rand"
	"testing"
	"testing/quick"

	"ssam/internal/dataset"
	"ssam/internal/topk"
	"ssam/internal/vec"
)

func testData(n, dim int, seed int64) []float32 {
	rng := rand.New(rand.NewSource(seed))
	data := make([]float32, n*dim)
	for i := range data {
		data[i] = float32(rng.NormFloat64())
	}
	return data
}

func bruteForce(data []float32, dim int, q []float32, k int, m vec.Metric) []topk.Result {
	sel := topk.New(k)
	for i := 0; i < len(data)/dim; i++ {
		sel.Push(i, vec.Distance(m, q, data[i*dim:(i+1)*dim]))
	}
	return sel.Results()
}

func TestEngineMatchesBruteForce(t *testing.T) {
	data := testData(300, 12, 7)
	q := testData(1, 12, 8)
	for _, m := range []vec.Metric{vec.Euclidean, vec.Manhattan, vec.Cosine} {
		e := NewEngine(data, 12, m, 1)
		got := e.Search(q, 5)
		want := bruteForce(data, 12, q, 5, m)
		if len(got) != len(want) {
			t.Fatalf("%v: len %d != %d", m, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Errorf("%v result %d: %+v != %+v", m, i, got[i], want[i])
			}
		}
	}
}

func TestEngineParallelMatchesSequential(t *testing.T) {
	data := testData(1000, 10, 3)
	q := testData(1, 10, 4)
	seq := NewEngine(data, 10, vec.Euclidean, 1).Search(q, 10)
	par := NewEngine(data, 10, vec.Euclidean, 8).Search(q, 10)
	if len(seq) != len(par) {
		t.Fatalf("length mismatch %d vs %d", len(seq), len(par))
	}
	for i := range seq {
		if seq[i] != par[i] {
			t.Fatalf("result %d: %+v != %+v", i, seq[i], par[i])
		}
	}
}

// Property: parallel and sequential engines agree for arbitrary sizes,
// worker counts and k.
func TestEngineParallelQuick(t *testing.T) {
	f := func(seed int64, nRaw, kRaw, wRaw uint8) bool {
		n := int(nRaw)%200 + 1
		k := int(kRaw)%10 + 1
		w := int(wRaw)%8 + 1
		dim := 6
		data := testData(n, dim, seed)
		q := testData(1, dim, seed+1)
		a := NewEngine(data, dim, vec.Euclidean, 1).Search(q, k)
		b := NewEngine(data, dim, vec.Euclidean, w).Search(q, k)
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i].Dist != b[i].Dist {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestSearchBatchOrder(t *testing.T) {
	data := testData(200, 8, 11)
	qs := [][]float32{testData(1, 8, 12), testData(1, 8, 13), testData(1, 8, 14)}
	e := NewEngine(data, 8, vec.Euclidean, 4)
	got := e.SearchBatch(qs, 3)
	if len(got) != 3 {
		t.Fatalf("batch len = %d", len(got))
	}
	for i, q := range qs {
		want := e.Search(q, 3)
		for j := range want {
			if got[i][j] != want[j] {
				t.Fatalf("query %d result %d mismatch", i, j)
			}
		}
	}
}

func TestEngineStats(t *testing.T) {
	data := testData(100, 8, 5)
	e := NewEngine(data, 8, vec.Euclidean, 1)
	_, st := e.SearchStats(testData(1, 8, 6), 5)
	if st.DistEvals != 100 {
		t.Errorf("DistEvals = %d, want 100", st.DistEvals)
	}
	if st.Dims != 800 {
		t.Errorf("Dims = %d, want 800", st.Dims)
	}
	if st.PQInserts != 100 || st.PQKept < 5 || st.PQKept > 100 {
		t.Errorf("PQ stats implausible: %+v", st)
	}
}

func TestStatsAdd(t *testing.T) {
	a := Stats{DistEvals: 1, Dims: 2, PQInserts: 3, PQKept: 4, TableBuilds: 5, CodeEvals: 6, Seq: 9}
	a.Add(Stats{DistEvals: 10, Dims: 20, PQInserts: 30, PQKept: 40, TableBuilds: 50, CodeEvals: 60, Seq: 7})
	if a != (Stats{DistEvals: 11, Dims: 22, PQInserts: 33, PQKept: 44, TableBuilds: 55, CodeEvals: 66, Seq: 9}) {
		t.Fatalf("Add = %+v", a)
	}
	// Seq is a generation marker, not a work counter: Add keeps the
	// newest value seen rather than summing.
	a.Add(Stats{Seq: 12})
	if a.Seq != 12 {
		t.Fatalf("Seq = %d, want 12", a.Seq)
	}
}

func TestEngineAccessors(t *testing.T) {
	data := testData(50, 4, 1)
	e := NewEngine(data, 4, vec.Manhattan, 2)
	if e.N() != 50 || e.Dim() != 4 || e.Metric() != vec.Manhattan {
		t.Fatalf("accessors: %d %d %v", e.N(), e.Dim(), e.Metric())
	}
	if &e.Row(3)[0] != &data[12] {
		t.Fatal("Row not a view")
	}
}

func TestNewEnginePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on ragged data")
		}
	}()
	NewEngine(make([]float32, 10), 3, vec.Euclidean, 1)
}

func TestFixedEngineMatchesFloat(t *testing.T) {
	// With well-separated data, fixed-point and float linear search
	// return the same ids (the II-D fixed-point claim).
	ds := dataset.Generate(dataset.Spec{
		Name: "t", N: 400, Dim: 16, NumQueries: 5, K: 5,
		Clusters: 8, ClusterStd: 0.3, Seed: 9,
	})
	fe := NewEngine(ds.Data, 16, vec.Euclidean, 1)
	xe := NewFixedEngine(ds.ToFixed(), 16, vec.Euclidean, 1)
	agree := 0
	total := 0
	for _, q := range ds.Queries {
		a := fe.Search(q, 5)
		b := xe.Search(vec.ToFixedVec(q), 5)
		for i := range a {
			total++
			if a[i].ID == b[i].ID {
				agree++
			}
		}
	}
	if float64(agree)/float64(total) < 0.95 {
		t.Fatalf("fixed/float agreement = %d/%d", agree, total)
	}
}

func TestFixedEngineParallel(t *testing.T) {
	data := testData(500, 8, 21)
	fx := vec.ToFixedVec(data)
	q := vec.ToFixedVec(testData(1, 8, 22))
	a := NewFixedEngine(fx, 8, vec.Euclidean, 1).Search(q, 7)
	b := NewFixedEngine(fx, 8, vec.Euclidean, 6).Search(q, 7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("parallel fixed mismatch at %d", i)
		}
	}
}

func TestFixedEngineManhattan(t *testing.T) {
	data := []float32{0, 0, 3, 3, 1, 1}
	fx := vec.ToFixedVec(data)
	e := NewFixedEngine(fx, 2, vec.Manhattan, 1)
	got := e.Search(vec.ToFixedVec([]float32{0.4, 0.4}), 2)
	if got[0].ID != 0 || got[1].ID != 2 {
		t.Fatalf("manhattan fixed order: %+v", got)
	}
}

func TestFixedEngineRejectsMetric(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for cosine fixed engine")
		}
	}()
	NewFixedEngine(make([]int32, 8), 2, vec.Cosine, 1)
}

func TestHammingEngine(t *testing.T) {
	mk := func(bits ...int) vec.Binary {
		b := vec.NewBinary(64)
		for _, i := range bits {
			b.Set(i, true)
		}
		return b
	}
	db := []vec.Binary{mk(1, 2, 3), mk(1), mk(40, 41, 42, 43)}
	e := NewHammingEngine(db, 1)
	got := e.Search(mk(1, 2), 2)
	if got[0].ID != 0 || got[0].Dist != 1 {
		t.Fatalf("nearest = %+v", got[0])
	}
	if got[1].ID != 1 || got[1].Dist != 1 {
		t.Fatalf("second = %+v", got[1])
	}
}

func TestHammingEngineParallel(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	db := make([]vec.Binary, 500)
	for i := range db {
		b := vec.NewBinary(128)
		for j := 0; j < 128; j++ {
			b.Set(j, rng.Intn(2) == 1)
		}
		db[i] = b
	}
	q := db[17]
	a := NewHammingEngine(db, 1).Search(q, 9)
	b := NewHammingEngine(db, 8).Search(q, 9)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("parallel hamming mismatch at %d", i)
		}
	}
	if a[0].ID != 17 || a[0].Dist != 0 {
		t.Fatalf("self not nearest: %+v", a[0])
	}
}

func TestGroundTruth(t *testing.T) {
	data := testData(100, 6, 2)
	qs := [][]float32{testData(1, 6, 3)}
	gt := GroundTruth(data, 6, qs, 4, 2)
	want := bruteForce(data, 6, qs[0], 4, vec.Euclidean)
	for i := range want {
		if gt[0][i] != want[i] {
			t.Fatalf("ground truth mismatch at %d", i)
		}
	}
}
