package knn

import (
	"math/rand"
	"os"
	"runtime"
	"testing"
	"time"

	"ssam/internal/vec"
)

// multiCoreGateEnv opts the vault-speedup gate in. The committed vault
// trajectories (BENCH_05/06_vaults.json) were produced on a one-core
// box where vault goroutines timeshare and speedups stay ~1x, so the
// wall-clock claim "vault parallelism beats the serial scan" cannot be
// asserted by default without failing on exactly the machines the
// repo has been grown on. Set the variable on a >=4-physical-core box
// to turn the claim into a hard assertion:
//
//	SSAM_MULTICORE_GATE=1 go test ./internal/knn -run VaultSpeedupMultiCore -v
const multiCoreGateEnv = "SSAM_MULTICORE_GATE"

// TestVaultSpeedupMultiCore is the honest version of ROADMAP item 3's
// vaults claim: on real parallel hardware (GOMAXPROCS >= 4), the
// vault-parallel scan of a GIST-shaped dataset must beat the serial
// scan by >= 1.5x wall-clock. Skipped unless SSAM_MULTICORE_GATE is
// set, and skipped (not failed) when the process has fewer than four
// schedulable cores — the gate tests the hardware claim, not the
// scheduler's ability to timeshare.
func TestVaultSpeedupMultiCore(t *testing.T) {
	if os.Getenv(multiCoreGateEnv) == "" {
		t.Skipf("set %s=1 on a multi-core machine to enforce the vault speedup gate", multiCoreGateEnv)
	}
	procs := runtime.GOMAXPROCS(0)
	if procs < 4 {
		t.Skipf("GOMAXPROCS=%d < 4: gate needs real parallel hardware (NumCPU=%d)", procs, runtime.NumCPU())
	}

	const (
		dim = 960 // GIST shape: enough per-row math to amortize fan-out
		n   = 16384
		k   = 10
	)
	rng := rand.New(rand.NewSource(7))
	data := make([]float32, n*dim)
	for i := range data {
		data[i] = rng.Float32()
	}
	queries := make([][]float32, 32)
	for i := range queries {
		q := make([]float32, dim)
		for j := range q {
			q[j] = rng.Float32()
		}
		queries[i] = q
	}

	serial := NewEngineVaults(data, dim, vec.Euclidean, 1, 1)
	vaults := procs
	if vaults > MaxVaults {
		vaults = MaxVaults
	}
	parallel := NewEngineVaults(data, dim, vec.Euclidean, 1, vaults)
	parallel.SetSerialThreshold(0)

	measure := func(e *Engine) float64 {
		// Warm once so page faults and scheduler ramp-up land outside
		// the timed window, then time three passes over the query set.
		for _, q := range queries {
			e.Search(q, k)
		}
		start := time.Now()
		for pass := 0; pass < 3; pass++ {
			for _, q := range queries {
				e.Search(q, k)
			}
		}
		return time.Since(start).Seconds()
	}

	serialSec := measure(serial)
	parallelSec := measure(parallel)
	speedup := serialSec / parallelSec
	t.Logf("GOMAXPROCS=%d NumCPU=%d vaults=%d: serial %.3fs, parallel %.3fs, speedup %.2fx",
		procs, runtime.NumCPU(), vaults, serialSec, parallelSec, speedup)
	if speedup < 1.5 {
		t.Errorf("vault-parallel speedup %.2fx < 1.5x on %d schedulable cores", speedup, procs)
	}
}
