// Package knn implements exact k-nearest-neighbor search by linear
// scan, the baseline every experiment in the SSAM paper builds on
// (Section II: "linear search performance is still valuable since
// higher accuracy targets reduce to linear search"). Engines exist for
// float32, 32-bit fixed-point, and binarized Hamming-space databases,
// each with a sequential and a multi-goroutine batched form.
package knn

import (
	"runtime"
	"sync"

	"ssam/internal/topk"
	"ssam/internal/vec"
)

// Searcher is the interface satisfied by every kNN engine and index in
// this repository: exact linear engines, kd-tree forests, hierarchical
// k-means trees, and multi-probe LSH.
type Searcher interface {
	// Search returns the k nearest database ids to q, closest first.
	Search(q []float32, k int) []topk.Result
}

// Stats records the work performed by a query, the raw material for
// the Table I instruction-mix characterization.
type Stats struct {
	DistEvals int // full distance computations
	Dims      int // total vector dimensions touched by distance math
	PQInserts int // candidate offers to the top-k structure
	PQKept    int // offers that were admitted
}

// Add accumulates other into s.
func (s *Stats) Add(other Stats) {
	s.DistEvals += other.DistEvals
	s.Dims += other.Dims
	s.PQInserts += other.PQInserts
	s.PQKept += other.PQKept
}

// Engine is an exact linear-scan kNN engine over float32 vectors.
type Engine struct {
	data    []float32
	dim     int
	n       int
	metric  vec.Metric
	workers int
}

// NewEngine creates a linear engine over a flattened row-major
// database. workers <= 0 selects GOMAXPROCS.
func NewEngine(data []float32, dim int, metric vec.Metric, workers int) *Engine {
	if dim <= 0 || len(data)%dim != 0 {
		panic("knn: data length not a multiple of dim")
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Engine{data: data, dim: dim, n: len(data) / dim, metric: metric, workers: workers}
}

// N returns the database size.
func (e *Engine) N() int { return e.n }

// Dim returns the vector dimensionality.
func (e *Engine) Dim() int { return e.dim }

// Metric returns the engine's distance metric.
func (e *Engine) Metric() vec.Metric { return e.metric }

// Row returns database vector i.
func (e *Engine) Row(i int) []float32 { return e.data[i*e.dim : (i+1)*e.dim] }

// Search scans the whole database for the k nearest neighbors of q,
// sharding the scan across the engine's workers.
func (e *Engine) Search(q []float32, k int) []topk.Result {
	res, _ := e.SearchStats(q, k)
	return res
}

// SearchStats is Search plus work accounting.
func (e *Engine) SearchStats(q []float32, k int) ([]topk.Result, Stats) {
	if e.workers == 1 || e.n < 4*e.workers {
		return e.scanRange(q, k, 0, e.n)
	}
	type part struct {
		res   []topk.Result
		stats Stats
	}
	parts := make([]part, e.workers)
	var wg sync.WaitGroup
	chunk := (e.n + e.workers - 1) / e.workers
	for w := 0; w < e.workers; w++ {
		lo := w * chunk
		hi := min(lo+chunk, e.n)
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			parts[w].res, parts[w].stats = e.scanRange(q, k, lo, hi)
		}(w, lo, hi)
	}
	wg.Wait()
	var stats Stats
	lists := make([][]topk.Result, 0, e.workers)
	for _, p := range parts {
		lists = append(lists, p.res)
		stats.Add(p.stats)
	}
	return topk.Merge(k, lists...), stats
}

func (e *Engine) scanRange(q []float32, k, lo, hi int) ([]topk.Result, Stats) {
	sel := topk.New(k)
	var st Stats
	for i := lo; i < hi; i++ {
		d := vec.Distance(e.metric, q, e.Row(i))
		st.DistEvals++
		st.Dims += e.dim
		st.PQInserts++
		if sel.Push(i, d) {
			st.PQKept++
		}
	}
	return sel.Results(), st
}

// SearchBatch runs one Search per query, parallelized across queries.
func (e *Engine) SearchBatch(qs [][]float32, k int) [][]topk.Result {
	return batch(qs, k, e.workers, func(q []float32, k int) []topk.Result {
		res, _ := e.scanRangeAll(q, k)
		return res
	})
}

func (e *Engine) scanRangeAll(q []float32, k int) ([]topk.Result, Stats) {
	return e.scanRange(q, k, 0, e.n)
}

// batch fans queries out over workers goroutines, preserving order.
func batch(qs [][]float32, k, workers int, search func([]float32, int) []topk.Result) [][]topk.Result {
	out := make([][]topk.Result, len(qs))
	if workers <= 1 || len(qs) == 1 {
		for i, q := range qs {
			out[i] = search(q, k)
		}
		return out
	}
	var wg sync.WaitGroup
	idx := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				out[i] = search(qs[i], k)
			}
		}()
	}
	for i := range qs {
		idx <- i
	}
	close(idx)
	wg.Wait()
	return out
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
