// Package knn implements exact k-nearest-neighbor search by linear
// scan, the baseline every experiment in the SSAM paper builds on
// (Section II: "linear search performance is still valuable since
// higher accuracy targets reduce to linear search"). Engines exist for
// float32, 32-bit fixed-point, and binarized Hamming-space databases.
// Each engine scans vault-parallel within a query (see vault.go) and
// fans out across queries in batched form.
package knn

import (
	"runtime"
	"sync"

	"ssam/internal/obs"
	"ssam/internal/topk"
	"ssam/internal/vec"
)

// Searcher is the interface satisfied by every kNN engine and index in
// this repository: exact linear engines, kd-tree forests, hierarchical
// k-means trees, and multi-probe LSH.
type Searcher interface {
	// Search returns the k nearest database ids to q, closest first.
	Search(q []float32, k int) []topk.Result
}

// Stats records the work performed by a query, the raw material for
// the Table I instruction-mix characterization. All counters except
// PQKept are partition-independent: a vault-parallel scan reports the
// same DistEvals, Dims, and PQInserts as a serial scan of the same
// database. PQKept may exceed the serial value under vault parallelism
// because each vault-local selector bounds against only its own slice.
type Stats struct {
	DistEvals int // full distance computations
	Dims      int // total vector dimensions touched by distance math
	PQInserts int // candidate offers to the top-k structure
	PQKept    int // offers that were admitted
	// TableBuilds and CodeEvals account for the product-quantized
	// engine (pq.go): ADC lookup-table constructions and code-word
	// distance evaluations. A code eval reads M bytes and does M table
	// adds instead of a full distance computation, so it is counted
	// here rather than in DistEvals.
	TableBuilds int
	CodeEvals   int
	// Seq is the mutation sequence number of the snapshot the query
	// executed against (internal/mutate); 0 for the immutable engines,
	// whose datasets have no generations.
	Seq uint64
}

// Add accumulates other into s. Seq, a generation marker rather than a
// work counter, keeps the newest value seen.
func (s *Stats) Add(other Stats) {
	s.DistEvals += other.DistEvals
	s.Dims += other.Dims
	s.PQInserts += other.PQInserts
	s.PQKept += other.PQKept
	s.TableBuilds += other.TableBuilds
	s.CodeEvals += other.CodeEvals
	if other.Seq > s.Seq {
		s.Seq = other.Seq
	}
}

// Engine is an exact linear-scan kNN engine over float32 vectors.
type Engine struct {
	data        []float32
	dim         int
	n           int
	metric      vec.Metric
	workers     int // cross-query fan-out width
	vaults      int // intra-query scan partitions
	serialBelow int // scan serially when n is below this
}

// NewEngine creates a linear engine over a flattened row-major
// database. workers <= 0 selects GOMAXPROCS. The intra-query vault
// count follows workers (capped at MaxVaults); use NewEngineVaults to
// set it independently.
func NewEngine(data []float32, dim int, metric vec.Metric, workers int) *Engine {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	v := workers
	if v > MaxVaults {
		v = MaxVaults
	}
	return NewEngineVaults(data, dim, metric, workers, v)
}

// NewEngineVaults is NewEngine with an explicit intra-query vault
// count: the database is split into vaults contiguous slices scanned
// concurrently within each query (vaults <= 0 selects DefaultVaults,
// values above MaxVaults clamp to it). workers <= 0 selects GOMAXPROCS.
func NewEngineVaults(data []float32, dim int, metric vec.Metric, workers, vaults int) *Engine {
	if dim <= 0 || len(data)%dim != 0 {
		panic("knn: data length not a multiple of dim")
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Engine{
		data:        data,
		dim:         dim,
		n:           len(data) / dim,
		metric:      metric,
		workers:     workers,
		vaults:      resolveVaults(vaults),
		serialBelow: DefaultSerialThreshold,
	}
}

// N returns the database size.
func (e *Engine) N() int { return e.n }

// Dim returns the vector dimensionality.
func (e *Engine) Dim() int { return e.dim }

// Metric returns the engine's distance metric.
func (e *Engine) Metric() vec.Metric { return e.metric }

// Vaults returns the intra-query vault count.
func (e *Engine) Vaults() int { return e.vaults }

// SetSerialThreshold overrides the dataset size below which queries
// scan serially regardless of the vault count (default
// DefaultSerialThreshold). Zero forces the vault path for any size;
// tests use it to exercise vault parallelism on small datasets.
func (e *Engine) SetSerialThreshold(n int) { e.serialBelow = n }

// Row returns database vector i.
func (e *Engine) Row(i int) []float32 { return e.data[i*e.dim : (i+1)*e.dim] }

// Search scans the whole database for the k nearest neighbors of q,
// partitioning the scan across the engine's vaults.
func (e *Engine) Search(q []float32, k int) []topk.Result {
	res, _ := e.SearchStats(q, k)
	return res
}

// SearchStats is Search plus work accounting.
func (e *Engine) SearchStats(q []float32, k int) ([]topk.Result, Stats) {
	return e.SearchStatsSpan(q, k, nil)
}

// SearchStatsSpan is SearchStats recording one "vault" child span of sp
// per scanned slice (sp may be nil). Results are bit-identical to a
// serial scan at any vault count: ids, order, and distances.
func (e *Engine) SearchStatsSpan(q []float32, k int, sp *obs.Span) ([]topk.Result, Stats) {
	if e.vaults == 1 || e.n < e.serialBelow {
		return e.scanRange(q, k, 0, e.n)
	}
	return scanVaults(e.n, e.vaults, k, sp, func(lo, hi int) ([]topk.Result, Stats) {
		return e.scanRange(q, k, lo, hi)
	})
}

func (e *Engine) scanRange(q []float32, k, lo, hi int) ([]topk.Result, Stats) {
	sel := topk.New(k)
	var st Stats
	for i := lo; i < hi; i++ {
		d := vec.Distance(e.metric, q, e.Row(i))
		st.DistEvals++
		st.Dims += e.dim
		st.PQInserts++
		if sel.Push(i, d) {
			st.PQKept++
		}
	}
	return sel.Results(), st
}

// SearchBatch runs one Search per query. A single query, or fewer
// queries than workers, runs them in turn with vault-parallel scans so
// a short batch still uses the machine; longer batches fan out across
// workers with serial scans, which keeps total parallelism at the
// worker count instead of workers × vaults.
func (e *Engine) SearchBatch(qs [][]float32, k int) [][]topk.Result {
	return e.SearchBatchSpan(qs, k, nil)
}

// SearchBatchSpan is SearchBatch recording "vault" child spans of sp
// for queries that take the vault-parallel path (sp may be nil).
// Queries on the cross-query fan-out path scan serially and record no
// vault spans — per-query parallelism is genuinely absent there.
func (e *Engine) SearchBatchSpan(qs [][]float32, k int, sp *obs.Span) [][]topk.Result {
	if e.vaults > 1 && (len(qs) == 1 || len(qs) < e.workers) {
		out := make([][]topk.Result, len(qs))
		for i, q := range qs {
			out[i], _ = e.SearchStatsSpan(q, k, sp)
		}
		return out
	}
	return batch(qs, k, e.workers, func(q []float32, k int) []topk.Result {
		res, _ := e.scanRange(q, k, 0, e.n)
		return res
	})
}

// batch fans queries out over workers goroutines, preserving order.
func batch(qs [][]float32, k, workers int, search func([]float32, int) []topk.Result) [][]topk.Result {
	out := make([][]topk.Result, len(qs))
	if workers <= 1 || len(qs) == 1 {
		for i, q := range qs {
			out[i] = search(q, k)
		}
		return out
	}
	var wg sync.WaitGroup
	idx := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				out[i] = search(qs[i], k)
			}
		}()
	}
	for i := range qs {
		idx <- i
	}
	close(idx)
	wg.Wait()
	return out
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
