package knn

import (
	"ssam/internal/obs"
	"ssam/internal/topk"
	"ssam/internal/vec"
)

// FixedEngine is an exact linear-scan engine over Q16.16 fixed-point
// vectors (Section II-D: fixed-point arithmetic is much cheaper in
// hardware and loses negligible accuracy). Only Euclidean and
// Manhattan have fixed-point kernels.
type FixedEngine struct {
	data        []int32
	dim         int
	n           int
	metric      vec.Metric
	vaults      int
	serialBelow int
}

// NewFixedEngine creates a fixed-point linear engine. metric must be
// vec.Euclidean or vec.Manhattan. vaults is the intra-query scan
// partition count (<= 0 selects DefaultVaults, above MaxVaults clamps).
func NewFixedEngine(data []int32, dim int, metric vec.Metric, vaults int) *FixedEngine {
	if dim <= 0 || len(data)%dim != 0 {
		panic("knn: data length not a multiple of dim")
	}
	if metric != vec.Euclidean && metric != vec.Manhattan {
		panic("knn: fixed-point engine supports euclidean and manhattan only")
	}
	return &FixedEngine{
		data:        data,
		dim:         dim,
		n:           len(data) / dim,
		metric:      metric,
		vaults:      resolveVaults(vaults),
		serialBelow: DefaultSerialThreshold,
	}
}

// N returns the database size.
func (e *FixedEngine) N() int { return e.n }

// Vaults returns the intra-query vault count.
func (e *FixedEngine) Vaults() int { return e.vaults }

// SetSerialThreshold overrides the dataset size below which queries
// scan serially regardless of the vault count.
func (e *FixedEngine) SetSerialThreshold(n int) { e.serialBelow = n }

// Row returns fixed-point database vector i.
func (e *FixedEngine) Row(i int) []int32 { return e.data[i*e.dim : (i+1)*e.dim] }

// Search returns the k nearest neighbors of the fixed-point query q.
// Distances in the results are raw fixed-point units.
func (e *FixedEngine) Search(q []int32, k int) []topk.Result {
	res, _ := e.SearchStatsSpan(q, k, nil)
	return res
}

// SearchStats is Search plus work accounting.
func (e *FixedEngine) SearchStats(q []int32, k int) ([]topk.Result, Stats) {
	return e.SearchStatsSpan(q, k, nil)
}

// SearchStatsSpan is SearchStats recording one "vault" child span of sp
// per scanned slice (sp may be nil). Results are bit-identical to a
// serial scan at any vault count.
func (e *FixedEngine) SearchStatsSpan(q []int32, k int, sp *obs.Span) ([]topk.Result, Stats) {
	dist := vec.SquaredL2Fixed
	if e.metric == vec.Manhattan {
		dist = vec.L1Fixed
	}
	scan := func(lo, hi int) ([]topk.Result, Stats) {
		sel := topk.New(k)
		var st Stats
		for i := lo; i < hi; i++ {
			d := float64(dist(q, e.Row(i)))
			st.DistEvals++
			st.Dims += e.dim
			st.PQInserts++
			if sel.Push(i, d) {
				st.PQKept++
			}
		}
		return sel.Results(), st
	}
	if e.vaults == 1 || e.n < e.serialBelow {
		return scan(0, e.n)
	}
	return scanVaults(e.n, e.vaults, k, sp, scan)
}

// HammingEngine is an exact linear-scan engine over binarized vectors
// using Hamming distance, the workload of Table V's Hamming row and
// the Table VI SSAM-vs-AP comparison.
type HammingEngine struct {
	data        []vec.Binary
	vaults      int
	serialBelow int
}

// NewHammingEngine creates a Hamming-space linear engine. vaults is
// the intra-query scan partition count (<= 0 selects DefaultVaults,
// above MaxVaults clamps).
func NewHammingEngine(data []vec.Binary, vaults int) *HammingEngine {
	return &HammingEngine{
		data:        data,
		vaults:      resolveVaults(vaults),
		serialBelow: DefaultSerialThreshold,
	}
}

// N returns the database size.
func (e *HammingEngine) N() int { return len(e.data) }

// Vaults returns the intra-query vault count.
func (e *HammingEngine) Vaults() int { return e.vaults }

// SetSerialThreshold overrides the dataset size below which queries
// scan serially regardless of the vault count.
func (e *HammingEngine) SetSerialThreshold(n int) { e.serialBelow = n }

// Search returns the k nearest codes to q by Hamming distance.
func (e *HammingEngine) Search(q vec.Binary, k int) []topk.Result {
	res, _ := e.SearchStatsSpan(q, k, nil)
	return res
}

// SearchStats is Search plus work accounting; Dims counts code bits.
func (e *HammingEngine) SearchStats(q vec.Binary, k int) ([]topk.Result, Stats) {
	return e.SearchStatsSpan(q, k, nil)
}

// SearchStatsSpan is SearchStats recording one "vault" child span of sp
// per scanned slice (sp may be nil). Results are bit-identical to a
// serial scan at any vault count.
func (e *HammingEngine) SearchStatsSpan(q vec.Binary, k int, sp *obs.Span) ([]topk.Result, Stats) {
	scan := func(lo, hi int) ([]topk.Result, Stats) {
		sel := topk.New(k)
		var st Stats
		for i := lo; i < hi; i++ {
			d := float64(vec.Hamming(q, e.data[i]))
			st.DistEvals++
			st.Dims += q.Dim
			st.PQInserts++
			if sel.Push(i, d) {
				st.PQKept++
			}
		}
		return sel.Results(), st
	}
	n := len(e.data)
	if e.vaults == 1 || n < e.serialBelow {
		return scan(0, n)
	}
	return scanVaults(n, e.vaults, k, sp, scan)
}
