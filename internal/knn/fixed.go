package knn

import (
	"sync"

	"ssam/internal/topk"
	"ssam/internal/vec"
)

// FixedEngine is an exact linear-scan engine over Q16.16 fixed-point
// vectors (Section II-D: fixed-point arithmetic is much cheaper in
// hardware and loses negligible accuracy). Only Euclidean and
// Manhattan have fixed-point kernels.
type FixedEngine struct {
	data    []int32
	dim     int
	n       int
	metric  vec.Metric
	workers int
}

// NewFixedEngine creates a fixed-point linear engine. metric must be
// vec.Euclidean or vec.Manhattan.
func NewFixedEngine(data []int32, dim int, metric vec.Metric, workers int) *FixedEngine {
	if dim <= 0 || len(data)%dim != 0 {
		panic("knn: data length not a multiple of dim")
	}
	if metric != vec.Euclidean && metric != vec.Manhattan {
		panic("knn: fixed-point engine supports euclidean and manhattan only")
	}
	if workers <= 0 {
		workers = 1
	}
	return &FixedEngine{data: data, dim: dim, n: len(data) / dim, metric: metric, workers: workers}
}

// N returns the database size.
func (e *FixedEngine) N() int { return e.n }

// Row returns fixed-point database vector i.
func (e *FixedEngine) Row(i int) []int32 { return e.data[i*e.dim : (i+1)*e.dim] }

// Search returns the k nearest neighbors of the fixed-point query q.
// Distances in the results are raw fixed-point units.
func (e *FixedEngine) Search(q []int32, k int) []topk.Result {
	dist := vec.SquaredL2Fixed
	if e.metric == vec.Manhattan {
		dist = vec.L1Fixed
	}
	scan := func(lo, hi int) []topk.Result {
		sel := topk.New(k)
		for i := lo; i < hi; i++ {
			sel.Push(i, float64(dist(q, e.Row(i))))
		}
		return sel.Results()
	}
	if e.workers == 1 || e.n < 4*e.workers {
		return scan(0, e.n)
	}
	lists := make([][]topk.Result, e.workers)
	var wg sync.WaitGroup
	chunk := (e.n + e.workers - 1) / e.workers
	for w := 0; w < e.workers; w++ {
		lo, hi := w*chunk, min((w+1)*chunk, e.n)
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			lists[w] = scan(lo, hi)
		}(w, lo, hi)
	}
	wg.Wait()
	return topk.Merge(k, lists...)
}

// HammingEngine is an exact linear-scan engine over binarized vectors
// using Hamming distance, the workload of Table V's Hamming row and
// the Table VI SSAM-vs-AP comparison.
type HammingEngine struct {
	data    []vec.Binary
	workers int
}

// NewHammingEngine creates a Hamming-space linear engine.
func NewHammingEngine(data []vec.Binary, workers int) *HammingEngine {
	if workers <= 0 {
		workers = 1
	}
	return &HammingEngine{data: data, workers: workers}
}

// N returns the database size.
func (e *HammingEngine) N() int { return len(e.data) }

// Search returns the k nearest codes to q by Hamming distance.
func (e *HammingEngine) Search(q vec.Binary, k int) []topk.Result {
	scan := func(lo, hi int) []topk.Result {
		sel := topk.New(k)
		for i := lo; i < hi; i++ {
			sel.Push(i, float64(vec.Hamming(q, e.data[i])))
		}
		return sel.Results()
	}
	n := len(e.data)
	if e.workers == 1 || n < 4*e.workers {
		return scan(0, n)
	}
	lists := make([][]topk.Result, e.workers)
	var wg sync.WaitGroup
	chunk := (n + e.workers - 1) / e.workers
	for w := 0; w < e.workers; w++ {
		lo, hi := w*chunk, min((w+1)*chunk, n)
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			lists[w] = scan(lo, hi)
		}(w, lo, hi)
	}
	wg.Wait()
	return topk.Merge(k, lists...)
}
