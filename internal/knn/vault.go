package knn

// Vault-parallel intra-query execution. The SSAM module partitions its
// dataset across the HMC's 32 vaults and scans them concurrently, with
// a global top-k reduction on the host (PAPER §IV, Fig. 4). The host
// engines reproduce that topology inside one region: the database is
// split into up to Vaults contiguous slices, one goroutine per slice
// runs the scan kernel into a vault-local topk.Selector, and the
// vault-local lists are reduced with topk.MergeSorted.
//
// The result is bit-for-bit identical to a serial scan — ids, order,
// and distances — because both sides follow one total order (ascending
// distance, ties by ascending id): the Selector admits and evicts
// under it, and MergeSorted reduces under it, so any candidate in the
// global top-k is necessarily in its vault's local top-k and survives
// the merge at the same rank. Vault-local selectors deliberately do
// NOT share a global distance bound: sharing one would prune more
// candidates but make PQKept accounting (and the admission sequence)
// depend on goroutine scheduling, losing deterministic stats.

import (
	"runtime"
	"sync"

	"ssam/internal/obs"
	"ssam/internal/topk"
)

// MaxVaults caps intra-query parallelism at the paper's per-module
// vault count: one scan unit per HMC vault, 32 per module.
const MaxVaults = 32

// DefaultSerialThreshold is the dataset size below which the engines
// scan serially even when vault parallelism is configured. Measured on
// the synthetic GloVe/GIST shapes: spawning and joining a vault worker
// costs a few microseconds, which a scan amortizes only once each
// vault has on the order of a hundred rows of distance math; below
// ~2k rows the serial scan wins at every vault count.
const DefaultSerialThreshold = 2048

// DefaultVaults returns the default intra-query vault count:
// min(MaxVaults, GOMAXPROCS). More vaults than cores only adds
// scheduling overhead on the host, and the paper's module tops out at
// 32 vaults.
func DefaultVaults() int {
	if p := runtime.GOMAXPROCS(0); p < MaxVaults {
		return p
	}
	return MaxVaults
}

// ResolveVaults normalizes a configured vault count the same way the
// engines do: values <= 0 select DefaultVaults, values above MaxVaults
// clamp to it. Exported so out-of-core stores can be partitioned with
// exactly the chunking the in-RAM scan would use.
func ResolveVaults(v int) int { return resolveVaults(v) }

// resolveVaults normalizes a configured vault count: values <= 0
// select the default, values above MaxVaults clamp to it.
func resolveVaults(v int) int {
	if v <= 0 {
		return DefaultVaults()
	}
	if v > MaxVaults {
		return MaxVaults
	}
	return v
}

// scanVaults partitions rows [0, n) into vaults contiguous slices, runs
// scan on each from its own goroutine, and merges the vault-local
// top-k lists under the total order. Each slice is recorded as a
// "vault" child span of sp (nil-safe) tagged with its index and row
// count, so a sampled trace shows per-vault skew. The returned Stats
// sum the per-vault accounting; because every row is scanned by
// exactly one vault, DistEvals, Dims and PQInserts are identical to a
// serial scan's (PQKept may exceed it — vault-local selectors bound
// against fewer competitors).
func scanVaults(n, vaults, k int, sp *obs.Span, scan func(lo, hi int) ([]topk.Result, Stats)) ([]topk.Result, Stats) {
	type part struct {
		res   []topk.Result
		stats Stats
	}
	chunk := (n + vaults - 1) / vaults
	parts := make([]part, vaults)
	active := 0
	var wg sync.WaitGroup
	for v := 0; v < vaults; v++ {
		lo := v * chunk
		hi := min(lo+chunk, n)
		if lo >= hi {
			break
		}
		active++
		// The span starts before the goroutine launches so its duration
		// covers scheduling delay — exactly the skew a trace should show.
		vsp := sp.Start("vault",
			obs.Tag{Key: "vault", Value: v},
			obs.Tag{Key: "rows", Value: hi - lo})
		wg.Add(1)
		go func(v, lo, hi int, vsp *obs.Span) {
			defer wg.Done()
			parts[v].res, parts[v].stats = scan(lo, hi)
			vsp.End()
		}(v, lo, hi, vsp)
	}
	wg.Wait()
	var st Stats
	lists := make([][]topk.Result, 0, active)
	for _, p := range parts[:active] {
		lists = append(lists, p.res)
		st.Add(p.stats)
	}
	return topk.MergeSorted(k, lists...), st
}
