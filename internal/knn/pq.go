package knn

// Product-quantized approximate linear scan. The engine trades exact
// distances for bandwidth: rows are stored as M-byte PQ codes in
// vault-local, cache-blocked slabs (internal/pq), each query builds
// one M×256 ADC lookup table, and the scan does M table adds per row
// instead of dim float ops. Recall is a configuration knob, not a
// surprise: with Rerank = R the top-R ADC candidates are re-scored
// against the retained float32 vectors under the true metric, and
// R >= n degenerates to the exact linear scan bit-for-bit.

import (
	"fmt"
	"runtime"
	"sync/atomic"

	"ssam/internal/obs"
	"ssam/internal/pq"
	"ssam/internal/topk"
	"ssam/internal/vec"
)

// PQParams configures a product-quantized engine.
type PQParams struct {
	// M is the subquantizer count (code bytes per row); 0 selects
	// pq.DefaultM. Any 1 <= M <= dim is valid.
	M int
	// Sample is the codebook training sample size; 0 selects
	// pq.DefaultSample.
	Sample int
	// Rerank re-scores the top-Rerank ADC candidates against the
	// retained float32 vectors under the true metric and returns exact
	// distances. 0 disables re-ranking: results then carry ADC
	// (approximate) distances. Values >= n make results identical to
	// the exact linear scan.
	Rerank int
	// Seed makes training deterministic: same data, params, and seed
	// give bit-identical codebooks, codes, and results.
	Seed int64
}

// PQCounters are cumulative per-engine work counters, safe to read
// concurrently with searches; the server exports them as /metrics
// series.
type PQCounters struct {
	TableBuilds uint64 // ADC lookup tables built (one per query)
	CodeEvals   uint64 // code words scanned
	RerankEvals uint64 // full-precision re-rank distance computations
}

// PQEngine is an approximate linear-scan engine over product-quantized
// codes, with optional exact re-ranking. It mirrors Engine's execution
// shape: vault-parallel within a query, worker fan-out across queries,
// and results merged under the (distance, id) total order so serial
// and vault-parallel scans are bit-identical.
type PQEngine struct {
	data        []float32 // retained full-precision rows (re-rank)
	dim         int
	n           int
	metric      vec.Metric
	tableMetric vec.Metric // metric the ADC tables are built under
	scale       float64    // ADC distance scale (0.5 for cosine)
	encodeData  []float32  // rows as encoded (normalized for cosine)
	cb          *pq.Codebook
	slabs       []*pq.Codes // vault-local cache-blocked code groups
	starts      []int       // first row of each slab; len(slabs)+1
	rerank      int
	workers     int
	vaults      int
	serialBelow int
	counters    struct{ tableBuilds, codeEvals, rerankEvals atomic.Uint64 }
}

// NewPQEngine trains a codebook over data and encodes it, with the
// vault count following workers as NewEngine does.
func NewPQEngine(data []float32, dim int, metric vec.Metric, p PQParams, workers int) (*PQEngine, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	v := workers
	if v > MaxVaults {
		v = MaxVaults
	}
	return NewPQEngineVaults(data, dim, metric, p, workers, v)
}

// NewPQEngineVaults is NewPQEngine with an explicit vault count. The
// code bytes are laid out in one cache-blocked slab per vault, sliced
// with the same chunking the scan uses, so each vault's scan touches
// only its own slab. Supported metrics: Euclidean and Manhattan
// natively; Cosine via normalize-at-encode (vectors are normalized to
// unit length before training and coding, ADC then scans squared-L2
// tables and halves the result, since ||a-b||²/2 = 1-cos(a,b) on unit
// vectors). Re-rank always reports true-metric distances over the
// original, un-normalized vectors.
func NewPQEngineVaults(data []float32, dim int, metric vec.Metric, p PQParams, workers, vaults int) (*PQEngine, error) {
	if dim <= 0 || len(data)%dim != 0 {
		return nil, fmt.Errorf("knn: data length %d not a positive multiple of dim %d", len(data), dim)
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if p.Rerank < 0 {
		return nil, fmt.Errorf("knn: negative rerank %d", p.Rerank)
	}
	e := &PQEngine{
		data:        data,
		dim:         dim,
		n:           len(data) / dim,
		metric:      metric,
		tableMetric: metric,
		scale:       1,
		encodeData:  data,
		rerank:      p.Rerank,
		workers:     workers,
		vaults:      resolveVaults(vaults),
		serialBelow: DefaultSerialThreshold,
	}
	switch metric {
	case vec.Euclidean, vec.Manhattan:
	case vec.Cosine:
		norm := make([]float32, len(data))
		for i := 0; i < e.n; i++ {
			normalizeInto(norm[i*dim:(i+1)*dim], data[i*dim:(i+1)*dim])
		}
		e.encodeData = norm
		e.tableMetric = vec.Euclidean
		e.scale = 0.5
	default:
		return nil, fmt.Errorf("knn: pq engine does not support metric %s", metric)
	}
	cb, err := pq.Train(e.encodeData, dim, pq.Params{M: p.M, Sample: p.Sample, Seed: p.Seed})
	if err != nil {
		return nil, err
	}
	e.cb = cb
	codes := cb.Encode(e.encodeData)
	m := cb.M()
	chunk := (e.n + e.vaults - 1) / e.vaults
	e.starts = []int{0}
	for lo := 0; lo < e.n; lo += chunk {
		hi := min(lo+chunk, e.n)
		e.slabs = append(e.slabs, pq.Pack(codes[lo*m:hi*m], m))
		e.starts = append(e.starts, hi)
	}
	return e, nil
}

// normalizeInto writes src scaled to unit L2 norm into dst; a zero
// vector stays zero (its cosine distance is 1 to everything by
// convention, which only the exact re-rank reproduces).
func normalizeInto(dst, src []float32) {
	n := vec.Norm(src)
	if n == 0 {
		copy(dst, src)
		return
	}
	inv := 1 / n
	for i, v := range src {
		dst[i] = float32(float64(v) * inv)
	}
}

// N returns the database size.
func (e *PQEngine) N() int { return e.n }

// Dim returns the vector dimensionality.
func (e *PQEngine) Dim() int { return e.dim }

// Metric returns the engine's distance metric.
func (e *PQEngine) Metric() vec.Metric { return e.metric }

// Vaults returns the intra-query vault count.
func (e *PQEngine) Vaults() int { return e.vaults }

// M returns the code width in bytes per row.
func (e *PQEngine) M() int { return e.cb.M() }

// Codebook exposes the trained codebook (read-only by convention);
// the device model uses it to size vault-resident tables.
func (e *PQEngine) Codebook() *pq.Codebook { return e.cb }

// CodeBytes returns the total size of the packed code slabs.
func (e *PQEngine) CodeBytes() int {
	total := 0
	for _, s := range e.slabs {
		total += s.Bytes()
	}
	return total
}

// Rerank returns the current re-rank depth (0 = ADC only).
func (e *PQEngine) Rerank() int { return e.rerank }

// SetRerank adjusts the re-rank depth, the engine's accuracy knob.
// It must not be called concurrently with searches.
func (e *PQEngine) SetRerank(r int) {
	if r < 0 {
		r = 0
	}
	e.rerank = r
}

// SetSerialThreshold overrides the dataset size below which queries
// scan serially regardless of the vault count.
func (e *PQEngine) SetSerialThreshold(n int) { e.serialBelow = n }

// Row returns full-precision database vector i.
func (e *PQEngine) Row(i int) []float32 { return e.data[i*e.dim : (i+1)*e.dim] }

// Counters returns a snapshot of the cumulative work counters.
func (e *PQEngine) Counters() PQCounters {
	return PQCounters{
		TableBuilds: e.counters.tableBuilds.Load(),
		CodeEvals:   e.counters.codeEvals.Load(),
		RerankEvals: e.counters.rerankEvals.Load(),
	}
}

// Search returns the k approximate nearest neighbors of q.
func (e *PQEngine) Search(q []float32, k int) []topk.Result {
	res, _ := e.SearchStats(q, k)
	return res
}

// SearchStats is Search plus work accounting.
func (e *PQEngine) SearchStats(q []float32, k int) ([]topk.Result, Stats) {
	return e.SearchStatsSpan(q, k, nil)
}

// SearchStatsSpan is SearchStats recording one "vault" child span of
// sp per scanned slab (sp may be nil). Results are bit-identical to a
// serial scan at any vault count.
func (e *PQEngine) SearchStatsSpan(q []float32, k int, sp *obs.Span) ([]topk.Result, Stats) {
	return e.search(q, k, sp, false)
}

func (e *PQEngine) search(q []float32, k int, sp *obs.Span, forceSerial bool) ([]topk.Result, Stats) {
	cands, st := e.adcCandidates(q, k, sp, forceSerial)
	if e.rerank == 0 {
		return cands, st
	}
	// Exact re-rank: re-score every ADC candidate under the true
	// metric over the retained float32 rows. Selector admission is
	// push-order independent, so the result is a pure function of the
	// candidate set — and with rerank >= n the candidate set is the
	// whole database, making results bit-identical to the exact scan.
	sel := topk.New(k)
	for _, c := range cands {
		d := vec.Distance(e.metric, q, e.Row(c.ID))
		st.DistEvals++
		st.Dims += e.dim
		st.PQInserts++
		if sel.Push(c.ID, d) {
			st.PQKept++
		}
	}
	e.counters.rerankEvals.Add(uint64(len(cands)))
	return sel.Results(), st
}

// adcCandidates runs the query's table build and ADC scan, returning
// the top-R candidates under ADC distance, R = max(k, rerank). It is
// the shared front half of both the in-RAM search (re-rank against the
// retained rows) and the tiered search (re-rank through the out-of-core
// store): the candidate set depends only on the in-RAM codes, so the
// two paths diverge strictly after this point.
func (e *PQEngine) adcCandidates(q []float32, k int, sp *obs.Span, forceSerial bool) ([]topk.Result, Stats) {
	if len(q) != e.dim {
		panic("knn: query dimension mismatch")
	}
	qt := q
	if e.metric == vec.Cosine {
		qt = make([]float32, e.dim)
		normalizeInto(qt, q)
	}
	lut := e.cb.Table(e.tableMetric, qt, nil)
	var st Stats
	st.TableBuilds = 1
	// Building the table evaluates all M×256 query-to-centroid partial
	// distances, which together touch Ks full vector widths.
	st.Dims += pq.Ks * e.dim

	// ADC pass: top-R candidates, R = max(k, rerank) when re-ranking.
	r := k
	if e.rerank > 0 && e.rerank > k {
		r = e.rerank
	}
	var cands []topk.Result
	var scanStats Stats
	if forceSerial || e.vaults == 1 || e.n < e.serialBelow {
		cands, scanStats = e.scanRange(lut, r, 0, e.n)
	} else {
		cands, scanStats = scanVaults(e.n, e.vaults, r, sp, func(lo, hi int) ([]topk.Result, Stats) {
			return e.scanRange(lut, r, lo, hi)
		})
	}
	st.Add(scanStats)
	e.counters.tableBuilds.Add(1)
	e.counters.codeEvals.Add(uint64(st.CodeEvals))
	return cands, st
}

// scanRange runs the ADC kernel over global rows [lo, hi), walking the
// vault slabs that overlap the range. Distances are float32 table sums
// in fixed subquantizer order scaled by e.scale, so a row's distance
// is independent of the partitioning.
func (e *PQEngine) scanRange(lut []float32, k, lo, hi int) ([]topk.Result, Stats) {
	sel := topk.New(k)
	var st Stats
	for v, slab := range e.slabs {
		start := e.starts[v]
		l := max(lo, start) - start
		h := min(hi, e.starts[v+1]) - start
		if l >= h {
			continue
		}
		slab.Scan(lut, l, h, func(base int, dists []float32) {
			for i, d := range dists {
				st.PQInserts++
				if sel.Push(start+base+i, float64(d)*e.scale) {
					st.PQKept++
				}
			}
		})
		st.CodeEvals += h - l
	}
	return sel.Results(), st
}

// SearchBatch runs one Search per query with Engine's batch policy:
// short batches take the vault-parallel path per query, longer batches
// fan out across workers with serial scans.
func (e *PQEngine) SearchBatch(qs [][]float32, k int) [][]topk.Result {
	return e.SearchBatchSpan(qs, k, nil)
}

// SearchBatchSpan is SearchBatch recording "vault" child spans of sp
// for queries that take the vault-parallel path (sp may be nil).
func (e *PQEngine) SearchBatchSpan(qs [][]float32, k int, sp *obs.Span) [][]topk.Result {
	if e.vaults > 1 && (len(qs) == 1 || len(qs) < e.workers) {
		out := make([][]topk.Result, len(qs))
		for i, q := range qs {
			out[i], _ = e.search(q, k, sp, false)
		}
		return out
	}
	return batch(qs, k, e.workers, func(q []float32, k int) []topk.Result {
		res, _ := e.search(q, k, nil, true)
		return res
	})
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
