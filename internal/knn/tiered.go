package knn

// Out-of-core engines over the tier store (internal/tier): the dataset
// lives in a backing file partitioned into the same contiguous vault
// pages the in-RAM vault-parallel scan uses, and queries stream pages
// through the store's budgeted cache — prefetching the next cold vault
// while the current one scans.
//
// The bit-exactness contract: every tiered engine returns ids, order,
// and distances identical to its in-RAM counterpart on the same data.
// It holds because (1) the store serves byte-identical copies of the
// file's pages, (2) each page is scanned with the same distance kernel
// over the same rows, into a vault-local topk.Selector, and (3) the
// vault lists are reduced with topk.MergeSorted under the
// (distance, id) total order — the same reduction that already makes
// the in-RAM vault-parallel scan bit-identical to a serial one
// (vault.go). Storage faults surface as errors, never as partial or
// wrong neighbor lists.

import (
	"fmt"

	"ssam/internal/obs"
	"ssam/internal/tier"
	"ssam/internal/topk"
	"ssam/internal/vec"
)

// TieredEngine is the out-of-core counterpart of Engine: an exact
// linear scan over float32 vectors resident in a tier store.
type TieredEngine struct {
	store  *tier.Store
	metric vec.Metric
	dim    int
	n      int
}

// NewTieredEngine creates a tiered linear engine over an opened store.
func NewTieredEngine(store *tier.Store, metric vec.Metric) *TieredEngine {
	return &TieredEngine{store: store, metric: metric, dim: store.Dim(), n: store.Rows()}
}

// N returns the database size.
func (e *TieredEngine) N() int { return e.n }

// Dim returns the vector dimensionality.
func (e *TieredEngine) Dim() int { return e.dim }

// Metric returns the engine's distance metric.
func (e *TieredEngine) Metric() vec.Metric { return e.metric }

// Vaults returns the store's page count (the scan's partition count).
func (e *TieredEngine) Vaults() int { return e.store.Vaults() }

// Store exposes the backing store (counters, budget).
func (e *TieredEngine) Store() *tier.Store { return e.store }

// Search returns the k nearest database ids to q, closest first —
// bit-identical to Engine.Search over the same data.
func (e *TieredEngine) Search(q []float32, k int) ([]topk.Result, error) {
	res, _, err := e.SearchStatsSpan(q, k, nil)
	return res, err
}

// SearchStats is Search plus work accounting.
func (e *TieredEngine) SearchStats(q []float32, k int) ([]topk.Result, Stats, error) {
	return e.SearchStatsSpan(q, k, nil)
}

// SearchStatsSpan scans the store's vault pages in order, prefetching
// the next page while the current one scans, and merges the vault-local
// top-k lists under the total order. Each page is recorded as a "vault"
// child span of sp (nil-safe) tagged with its cache outcome.
func (e *TieredEngine) SearchStatsSpan(q []float32, k int, sp *obs.Span) ([]topk.Result, Stats, error) {
	if len(q) != e.dim {
		return nil, Stats{}, fmt.Errorf("knn: query dim %d, want %d", len(q), e.dim)
	}
	var st Stats
	vaults := e.store.Vaults()
	lists := make([][]topk.Result, 0, vaults)
	for v := 0; v < vaults; v++ {
		if v+1 < vaults {
			e.store.Prefetch(v + 1)
		}
		res, vst, err := e.scanPage(q, k, v, sp)
		if err != nil {
			return nil, st, err
		}
		st.Add(vst)
		lists = append(lists, res)
	}
	return topk.MergeSorted(k, lists...), st, nil
}

// scanPage pins vault page v and runs Engine's scan kernel over it.
func (e *TieredEngine) scanPage(q []float32, k, v int, sp *obs.Span) ([]topk.Result, Stats, error) {
	pg, err := e.store.Acquire(v)
	if err != nil {
		return nil, Stats{}, fmt.Errorf("knn: tiered scan: %w", err)
	}
	defer pg.Release()
	lo, hi := pg.Rows()
	vsp := sp.Start("vault",
		obs.Tag{Key: "vault", Value: v},
		obs.Tag{Key: "rows", Value: hi - lo},
		obs.Tag{Key: "tier_hit", Value: pg.CacheHit()})
	defer vsp.End()
	sel := topk.New(k)
	var st Stats
	data := pg.Data()
	for i := lo; i < hi; i++ {
		row := data[(i-lo)*e.dim : (i-lo+1)*e.dim]
		d := vec.Distance(e.metric, q, row)
		st.DistEvals++
		st.Dims += e.dim
		st.PQInserts++
		if sel.Push(i, d) {
			st.PQKept++
		}
	}
	return sel.Results(), st, nil
}

// SearchBatch runs one Search per query, sequentially: the vault
// pipeline (scan overlapped with the next page's read) is the
// parallelism, and sequential queries reuse the hot cache instead of
// thrashing it. On error, results before failedAt are valid and
// failedAt names the query that failed (-1 on success).
func (e *TieredEngine) SearchBatch(qs [][]float32, k int) (out [][]topk.Result, failedAt int, err error) {
	return e.SearchBatchSpan(qs, k, nil)
}

// SearchBatchSpan is SearchBatch recording "vault" child spans of sp.
func (e *TieredEngine) SearchBatchSpan(qs [][]float32, k int, sp *obs.Span) ([][]topk.Result, int, error) {
	out := make([][]topk.Result, len(qs))
	for i, q := range qs {
		res, _, err := e.SearchStatsSpan(q, k, sp)
		if err != nil {
			return out, i, err
		}
		out[i] = res
	}
	return out, -1, nil
}

// TieredFixedEngine is the out-of-core counterpart of FixedEngine: the
// store holds float32 rows (the only on-disk format) and each page is
// converted to Q16.16 with the same deterministic vec.ToFixed the
// in-RAM engine's caller uses, so distances are bit-identical to a
// FixedEngine over a whole-dataset conversion.
type TieredFixedEngine struct {
	store  *tier.Store
	metric vec.Metric
	dim    int
	n      int
}

// NewTieredFixedEngine creates a tiered fixed-point engine. metric must
// be vec.Euclidean or vec.Manhattan (the metrics with fixed kernels).
func NewTieredFixedEngine(store *tier.Store, metric vec.Metric) *TieredFixedEngine {
	if metric != vec.Euclidean && metric != vec.Manhattan {
		panic("knn: fixed-point engine supports euclidean and manhattan only")
	}
	return &TieredFixedEngine{store: store, metric: metric, dim: store.Dim(), n: store.Rows()}
}

// N returns the database size.
func (e *TieredFixedEngine) N() int { return e.n }

// Vaults returns the store's page count.
func (e *TieredFixedEngine) Vaults() int { return e.store.Vaults() }

// Search returns the k nearest neighbors of the fixed-point query q,
// distances in raw fixed-point units.
func (e *TieredFixedEngine) Search(q []int32, k int) ([]topk.Result, error) {
	res, _, err := e.SearchStatsSpan(q, k, nil)
	return res, err
}

// SearchStatsSpan is Search plus work accounting and per-page "vault"
// spans.
func (e *TieredFixedEngine) SearchStatsSpan(q []int32, k int, sp *obs.Span) ([]topk.Result, Stats, error) {
	if len(q) != e.dim {
		return nil, Stats{}, fmt.Errorf("knn: query dim %d, want %d", len(q), e.dim)
	}
	dist := vec.SquaredL2Fixed
	if e.metric == vec.Manhattan {
		dist = vec.L1Fixed
	}
	var st Stats
	vaults := e.store.Vaults()
	lists := make([][]topk.Result, 0, vaults)
	fixed := make([]int32, 0)
	for v := 0; v < vaults; v++ {
		if v+1 < vaults {
			e.store.Prefetch(v + 1)
		}
		pg, err := e.store.Acquire(v)
		if err != nil {
			return nil, st, fmt.Errorf("knn: tiered scan: %w", err)
		}
		lo, hi := pg.Rows()
		vsp := sp.Start("vault",
			obs.Tag{Key: "vault", Value: v},
			obs.Tag{Key: "rows", Value: hi - lo},
			obs.Tag{Key: "tier_hit", Value: pg.CacheHit()})
		data := pg.Data()
		if cap(fixed) < len(data) {
			fixed = make([]int32, len(data))
		}
		fixed = fixed[:len(data)]
		for i, f := range data {
			fixed[i] = vec.ToFixed(f)
		}
		sel := topk.New(k)
		for i := lo; i < hi; i++ {
			row := fixed[(i-lo)*e.dim : (i-lo+1)*e.dim]
			d := float64(dist(q, row))
			st.DistEvals++
			st.Dims += e.dim
			st.PQInserts++
			if sel.Push(i, d) {
				st.PQKept++
			}
		}
		pg.Release()
		vsp.End()
		lists = append(lists, sel.Results())
	}
	return topk.MergeSorted(k, lists...), st, nil
}

// TieredPQEngine is the out-of-core counterpart of PQEngine, split the
// way a PQ-on-storage system actually deploys: the packed code slabs
// (n·M bytes) stay in RAM where the ADC scan needs them, and the
// full-precision float32 rows — the 4·dim/M-times-larger half — live in
// the tier store, read back only for the exact re-rank of the top ADC
// candidates. Candidates are re-ranked page by page (Selector admission
// is push-order independent, so grouping by vault cannot change the
// result), with the next candidate page prefetched while the current
// one scores.
type TieredPQEngine struct {
	pq    *PQEngine
	store *tier.Store
}

// NewTieredPQEngine trains and encodes like NewPQEngineVaults, then
// drops the retained full-precision rows in favor of the store. The
// store must hold exactly the training data (same rows, same order) —
// it is the re-rank's source of truth, and the bit-exactness contract
// is against an in-RAM engine over that same data.
func NewTieredPQEngine(data []float32, dim int, metric vec.Metric, p PQParams, workers, vaults int, store *tier.Store) (*TieredPQEngine, error) {
	if store.Dim() != dim || store.Rows()*dim != len(data) {
		return nil, fmt.Errorf("knn: store shape %dx%d does not match data %dx%d",
			store.Rows(), store.Dim(), len(data)/dim, dim)
	}
	e, err := NewPQEngineVaults(data, dim, metric, p, workers, vaults)
	if err != nil {
		return nil, err
	}
	// The whole point: the full-precision rows do not stay resident.
	// encodeData is construction-only; data is replaced by the store.
	e.data = nil
	e.encodeData = nil
	return &TieredPQEngine{pq: e, store: store}, nil
}

// N returns the database size.
func (e *TieredPQEngine) N() int { return e.pq.n }

// Dim returns the vector dimensionality.
func (e *TieredPQEngine) Dim() int { return e.pq.dim }

// Metric returns the engine's distance metric.
func (e *TieredPQEngine) Metric() vec.Metric { return e.pq.metric }

// Vaults returns the ADC scan's intra-query vault count.
func (e *TieredPQEngine) Vaults() int { return e.pq.vaults }

// M returns the code width in bytes per row.
func (e *TieredPQEngine) M() int { return e.pq.M() }

// CodeBytes returns the resident packed-code size — the engine's whole
// in-RAM footprint for the dataset.
func (e *TieredPQEngine) CodeBytes() int { return e.pq.CodeBytes() }

// Rerank returns the current re-rank depth (0 = ADC only).
func (e *TieredPQEngine) Rerank() int { return e.pq.Rerank() }

// SetRerank adjusts the re-rank depth. Not concurrent with searches.
func (e *TieredPQEngine) SetRerank(r int) { e.pq.SetRerank(r) }

// SetSerialThreshold overrides the ADC scan's serial threshold.
func (e *TieredPQEngine) SetSerialThreshold(n int) { e.pq.SetSerialThreshold(n) }

// Counters returns the cumulative work counters.
func (e *TieredPQEngine) Counters() PQCounters { return e.pq.Counters() }

// Store exposes the backing store (counters, budget).
func (e *TieredPQEngine) Store() *tier.Store { return e.store }

// Search returns the k approximate nearest neighbors of q —
// bit-identical to PQEngine.Search with the same params and seed.
func (e *TieredPQEngine) Search(q []float32, k int) ([]topk.Result, error) {
	res, _, err := e.SearchStatsSpan(q, k, nil)
	return res, err
}

// SearchStats is Search plus work accounting.
func (e *TieredPQEngine) SearchStats(q []float32, k int) ([]topk.Result, Stats, error) {
	return e.SearchStatsSpan(q, k, nil)
}

// SearchStatsSpan runs the in-RAM ADC scan (recording "vault" child
// spans like PQEngine), then re-ranks the candidates through the store
// page by page, each page a "rerank" child span tagged with its cache
// outcome.
func (e *TieredPQEngine) SearchStatsSpan(q []float32, k int, sp *obs.Span) ([]topk.Result, Stats, error) {
	if len(q) != e.pq.dim {
		return nil, Stats{}, fmt.Errorf("knn: query dim %d, want %d", len(q), e.pq.dim)
	}
	cands, st := e.pq.adcCandidates(q, k, sp, false)
	if e.pq.rerank == 0 {
		return cands, st, nil
	}
	// Bucket candidates by vault page so each page is pinned exactly
	// once; ascending vault order makes the prefetch overlap useful.
	buckets := make([][]topk.Result, e.store.Vaults())
	order := make([]int, 0, e.store.Vaults())
	for _, c := range cands {
		v := e.store.PageOf(c.ID)
		if buckets[v] == nil {
			order = append(order, v)
		}
		buckets[v] = append(buckets[v], c)
	}
	// Buckets fill in candidate (ADC rank) order; sort the page visit
	// order ascending for sequential IO.
	for i := 1; i < len(order); i++ {
		for j := i; j > 0 && order[j] < order[j-1]; j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}
	sel := topk.New(k)
	for oi, v := range order {
		if oi+1 < len(order) {
			e.store.Prefetch(order[oi+1])
		}
		pg, err := e.store.Acquire(v)
		if err != nil {
			return nil, st, fmt.Errorf("knn: tiered rerank: %w", err)
		}
		rsp := sp.Start("rerank",
			obs.Tag{Key: "vault", Value: v},
			obs.Tag{Key: "cands", Value: len(buckets[v])},
			obs.Tag{Key: "tier_hit", Value: pg.CacheHit()})
		for _, c := range buckets[v] {
			d := vec.Distance(e.pq.metric, q, pg.Row(c.ID))
			st.DistEvals++
			st.Dims += e.pq.dim
			st.PQInserts++
			if sel.Push(c.ID, d) {
				st.PQKept++
			}
		}
		pg.Release()
		rsp.End()
	}
	e.pq.counters.rerankEvals.Add(uint64(len(cands)))
	return sel.Results(), st, nil
}

// SearchBatch runs one Search per query sequentially (see
// TieredEngine.SearchBatch for why). failedAt is -1 on success.
func (e *TieredPQEngine) SearchBatch(qs [][]float32, k int) ([][]topk.Result, int, error) {
	return e.SearchBatchSpan(qs, k, nil)
}

// SearchBatchSpan is SearchBatch recording child spans of sp.
func (e *TieredPQEngine) SearchBatchSpan(qs [][]float32, k int, sp *obs.Span) ([][]topk.Result, int, error) {
	out := make([][]topk.Result, len(qs))
	for i, q := range qs {
		res, _, err := e.SearchStatsSpan(q, k, sp)
		if err != nil {
			return out, i, err
		}
		out[i] = res
	}
	return out, -1, nil
}
