package knn

// The out-of-core equivalence suite: tiered search must be
// bit-identical to in-RAM search — ids, order, and distances — across
// metrics × engine families (float32, fixed, PQ) × budget fractions
// (0.1, 0.5, 1.0, unlimited) × vault counts × k, on smooth and
// tie-heavy data alike. ci.sh runs this under -race, so the suite also
// exercises the store's concurrency discipline.

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"path/filepath"
	"sync"
	"testing"

	"ssam/internal/tier"
	"ssam/internal/topk"
	"ssam/internal/vec"
)

// tieredDataset builds the two data shapes the suite sweeps: "smooth"
// (generic random) and "ties" (coordinates from {0, 0.5, 1}, so many
// rows collide at identical distances and only the (distance, id)
// total order disambiguates).
func tieredDataset(kind string, n, dim int, seed int64) []float32 {
	rng := rand.New(rand.NewSource(seed))
	data := make([]float32, n*dim)
	for i := range data {
		switch kind {
		case "ties":
			data[i] = float32(rng.Intn(3)) / 2
		default:
			data[i] = rng.Float32()
		}
	}
	if kind == "ties" {
		// Make ties certain, not probable: clone rows wholesale.
		for i := n / 2; i < n; i++ {
			copy(data[i*dim:(i+1)*dim], data[(i-n/2)*dim:(i-n/2+1)*dim])
		}
	}
	return data
}

var tieredBudgetFractions = []float64{0.1, 0.5, 1.0, 0 /* unlimited */}

func tieredStore(t *testing.T, data []float32, dim, vaults int, frac float64, prefetch bool) *tier.Store {
	t.Helper()
	budget := int64(0)
	if frac > 0 {
		budget = int64(frac * float64(len(data)*4))
	}
	path := filepath.Join(t.TempDir(), "tier.dat")
	s, err := tier.Create(path, data, dim, vaults, tier.Options{BudgetBytes: budget, Prefetch: prefetch})
	if err != nil {
		t.Fatalf("tier.Create: %v", err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func TestTieredFloatEquivalence(t *testing.T) {
	const n, dim, queries = 300, 16, 3
	for _, kind := range []string{"smooth", "ties"} {
		data := tieredDataset(kind, n, dim, 31)
		qs := tieredDataset(kind, queries, dim, 32)
		for _, metric := range []vec.Metric{vec.Euclidean, vec.Manhattan, vec.Cosine} {
			for _, vaults := range []int{1, 3, 8} {
				base := NewEngineVaults(data, dim, metric, 1, vaults)
				base.SetSerialThreshold(0)
				for _, frac := range tieredBudgetFractions {
					st := tieredStore(t, data, dim, vaults, frac, true)
					eng := NewTieredEngine(st, metric)
					for _, k := range []int{1, 5, 40} {
						for qi := 0; qi < queries; qi++ {
							q := qs[qi*dim : (qi+1)*dim]
							want, _ := base.SearchStatsSpan(q, k, nil)
							got, _, err := eng.SearchStats(q, k)
							label := fmt.Sprintf("%s/%v/vaults=%d/frac=%v/k=%d/q=%d",
								kind, metric, vaults, frac, k, qi)
							if err != nil {
								t.Fatalf("%s: %v", label, err)
							}
							sameResults(t, label, got, want)
						}
					}
				}
			}
		}
	}
}

func TestTieredFixedEquivalence(t *testing.T) {
	const n, dim, queries = 300, 16, 3
	for _, kind := range []string{"smooth", "ties"} {
		data := tieredDataset(kind, n, dim, 33)
		qs := tieredDataset(kind, queries, dim, 34)
		fixedData := vec.ToFixedVec(data)
		for _, metric := range []vec.Metric{vec.Euclidean, vec.Manhattan} {
			for _, vaults := range []int{1, 3, 8} {
				base := NewFixedEngine(fixedData, dim, metric, vaults)
				base.SetSerialThreshold(0)
				for _, frac := range tieredBudgetFractions {
					st := tieredStore(t, data, dim, vaults, frac, true)
					eng := NewTieredFixedEngine(st, metric)
					for _, k := range []int{1, 5, 40} {
						for qi := 0; qi < queries; qi++ {
							q := vec.ToFixedVec(qs[qi*dim : (qi+1)*dim])
							want, _ := base.SearchStatsSpan(q, k, nil)
							got, _, err := eng.SearchStatsSpan(q, k, nil)
							label := fmt.Sprintf("%s/%v/vaults=%d/frac=%v/k=%d/q=%d",
								kind, metric, vaults, frac, k, qi)
							if err != nil {
								t.Fatalf("%s: %v", label, err)
							}
							sameResults(t, label, got, want)
						}
					}
				}
			}
		}
	}
}

func TestTieredPQEquivalence(t *testing.T) {
	const n, dim, queries = 300, 16, 3
	for _, kind := range []string{"smooth", "ties"} {
		data := tieredDataset(kind, n, dim, 35)
		qs := tieredDataset(kind, queries, dim, 36)
		for _, metric := range []vec.Metric{vec.Euclidean, vec.Manhattan, vec.Cosine} {
			for _, vaults := range []int{1, 3} {
				for _, rerank := range []int{0, 7, n} {
					p := PQParams{M: 4, Rerank: rerank, Seed: 10}
					base, err := NewPQEngineVaults(data, dim, metric, p, 1, vaults)
					if err != nil {
						t.Fatal(err)
					}
					base.SetSerialThreshold(0)
					for _, frac := range tieredBudgetFractions {
						st := tieredStore(t, data, dim, vaults, frac, true)
						eng, err := NewTieredPQEngine(data, dim, metric, p, 1, vaults, st)
						if err != nil {
							t.Fatal(err)
						}
						eng.SetSerialThreshold(0)
						for _, k := range []int{1, 5} {
							for qi := 0; qi < queries; qi++ {
								q := qs[qi*dim : (qi+1)*dim]
								want, _ := base.SearchStats(q, k)
								got, _, err := eng.SearchStats(q, k)
								label := fmt.Sprintf("%s/%v/vaults=%d/rerank=%d/frac=%v/k=%d/q=%d",
									kind, metric, vaults, rerank, frac, k, qi)
								if err != nil {
									t.Fatalf("%s: %v", label, err)
								}
								sameResults(t, label, got, want)
							}
						}
					}
				}
			}
		}
	}
}

func TestTieredPQDropsResidentRows(t *testing.T) {
	const n, dim = 100, 8
	data := tieredDataset("smooth", n, dim, 37)
	st := tieredStore(t, data, dim, 2, 0.5, false)
	eng, err := NewTieredPQEngine(data, dim, vec.Euclidean, PQParams{M: 4, Rerank: 10, Seed: 1}, 1, 2, st)
	if err != nil {
		t.Fatal(err)
	}
	if eng.pq.data != nil || eng.pq.encodeData != nil {
		t.Fatal("tiered PQ engine retained the full-precision rows in RAM")
	}
	if eng.CodeBytes() == 0 {
		t.Fatal("tiered PQ engine has no resident codes")
	}
}

func TestTieredPQShapeMismatch(t *testing.T) {
	data := tieredDataset("smooth", 100, 8, 38)
	st := tieredStore(t, data, 8, 2, 0, false)
	if _, err := NewTieredPQEngine(data[:50*8], 8, vec.Euclidean, PQParams{M: 4}, 1, 2, st); err == nil {
		t.Fatal("NewTieredPQEngine accepted a store/data shape mismatch")
	}
}

func TestTieredSearchSurfacesReadErrors(t *testing.T) {
	const n, dim = 200, 8
	data := tieredDataset("smooth", n, dim, 39)
	q := data[:dim]
	boom := errors.New("injected fault")

	// Budget below one page forces a backing read for every vault, so a
	// fault on vault 2 is hit on every query.
	st := tieredStore(t, data, dim, 4, 0.1, false)
	st.SetReadHook(func(v int) error {
		if v == 2 {
			return boom
		}
		return nil
	})
	eng := NewTieredEngine(st, vec.Euclidean)
	_, err := eng.Search(q, 3)
	var re *tier.ReadError
	if !errors.As(err, &re) || re.Vault != 2 {
		t.Fatalf("tiered search error = %v, want *tier.ReadError for vault 2", err)
	}

	// Batch: queries before the failure stand, failedAt names it.
	out, failedAt, err := eng.SearchBatch([][]float32{q, q}, 3)
	if err == nil || failedAt != 0 {
		t.Fatalf("batch: failedAt=%d err=%v, want failure at 0", failedAt, err)
	}
	_ = out

	// Fixed engine path.
	stf := tieredStore(t, data, dim, 4, 0.1, false)
	stf.SetReadHook(func(v int) error { return boom })
	feng := NewTieredFixedEngine(stf, vec.Euclidean)
	if _, err := feng.Search(vec.ToFixedVec(q), 3); !errors.As(err, &re) {
		t.Fatalf("fixed tiered search error = %v, want *tier.ReadError", err)
	}

	// PQ path: the ADC scan is in-RAM, so only the re-rank touches the
	// store — a faulted store must fail the query, not degrade recall.
	stp := tieredStore(t, data, dim, 4, 0.1, false)
	peng, err := NewTieredPQEngine(data, dim, vec.Euclidean, PQParams{M: 4, Rerank: 50, Seed: 2}, 1, 4, stp)
	if err != nil {
		t.Fatal(err)
	}
	stp.SetReadHook(func(v int) error { return boom })
	if _, err := peng.Search(q, 3); !errors.As(err, &re) {
		t.Fatalf("pq tiered search error = %v, want *tier.ReadError", err)
	}
	// ADC-only config never reads the store: the same fault is invisible.
	peng.SetRerank(0)
	if _, err := peng.Search(q, 3); err != nil {
		t.Fatalf("ADC-only tiered search hit the store: %v", err)
	}
}

func TestTieredQueryDimMismatch(t *testing.T) {
	data := tieredDataset("smooth", 50, 8, 40)
	st := tieredStore(t, data, 8, 2, 0, false)
	if _, err := NewTieredEngine(st, vec.Euclidean).Search(make([]float32, 4), 3); err == nil {
		t.Fatal("tiered search accepted a mis-sized query")
	}
	if _, err := NewTieredFixedEngine(st, vec.Euclidean).Search(make([]int32, 4), 3); err == nil {
		t.Fatal("tiered fixed search accepted a mis-sized query")
	}
}

// TestTieredConcurrentEvictionSoak runs concurrent tiered queries
// against a one-page budget while every evicted page is poisoned with
// NaN. Any scan still holding an evicted page would push a NaN distance
// or a wrong neighbor; instead every result must stay bit-identical to
// the in-RAM engine.
func TestTieredConcurrentEvictionSoak(t *testing.T) {
	const n, dim, vaults = 256, 8, 4
	data := tieredDataset("smooth", n, dim, 41)
	st := tieredStore(t, data, dim, vaults, 1.0/vaults, true)
	nan := float32(math.NaN())
	st.SetEvictHook(func(v int, page []float32) {
		for i := range page {
			page[i] = nan
		}
	})
	base := NewEngineVaults(data, dim, vec.Euclidean, 1, vaults)
	base.SetSerialThreshold(0)
	eng := NewTieredEngine(st, vec.Euclidean)

	const goroutines, iters, k = 8, 40, 5
	qs := tieredDataset("smooth", goroutines, dim, 42)
	want := make([][]topk.Result, goroutines)
	for g := 0; g < goroutines; g++ {
		want[g], _ = base.SearchStatsSpan(qs[g*dim:(g+1)*dim], k, nil)
	}
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			q := qs[g*dim : (g+1)*dim]
			for it := 0; it < iters; it++ {
				got, err := eng.Search(q, k)
				if err != nil {
					errs <- err
					return
				}
				for i := range want[g] {
					if got[i] != want[g][i] {
						errs <- fmt.Errorf("goroutine %d iter %d: result %d = %+v, want %+v",
							g, it, i, got[i], want[g][i])
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if c := st.Counters(); c.Evictions == 0 {
		t.Fatal("soak produced no evictions; the budget is not forcing turnover")
	}
}

// TestTieredAccessors pins the shape accessors every engine exposes:
// they must report the store's geometry, not stale construction-time
// copies, and the PQ batch path must answer like its single-query
// path.
func TestTieredAccessors(t *testing.T) {
	const n, dim = 120, 8
	data := tieredDataset("smooth", n, dim, 91)
	qs := tieredDataset("smooth", 2, dim, 92)

	st := tieredStore(t, data, dim, 4, 1.0, true)
	e := NewTieredEngine(st, vec.Cosine)
	if e.N() != n || e.Dim() != dim || e.Vaults() != 4 || e.Metric() != vec.Cosine || e.Store() != st {
		t.Fatalf("tiered accessors: n=%d dim=%d vaults=%d metric=%v", e.N(), e.Dim(), e.Vaults(), e.Metric())
	}

	fst := tieredStore(t, data, dim, 3, 1.0, true)
	fe := NewTieredFixedEngine(fst, vec.Manhattan)
	if fe.N() != n || fe.Vaults() != 3 {
		t.Fatalf("fixed accessors: n=%d vaults=%d", fe.N(), fe.Vaults())
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("NewTieredFixedEngine accepted cosine")
			}
		}()
		NewTieredFixedEngine(fst, vec.Cosine)
	}()

	pst := tieredStore(t, data, dim, 2, 1.0, true)
	pe, err := NewTieredPQEngine(data, dim, vec.Euclidean, PQParams{M: 4, Rerank: 9, Seed: 7}, 1, 2, pst)
	if err != nil {
		t.Fatal(err)
	}
	if pe.N() != n || pe.Dim() != dim || pe.Metric() != vec.Euclidean || pe.Vaults() != 2 ||
		pe.M() != 4 || pe.Rerank() != 9 || pe.Store() != pst {
		t.Fatalf("pq accessors: n=%d dim=%d vaults=%d m=%d rerank=%d", pe.N(), pe.Dim(), pe.Vaults(), pe.M(), pe.Rerank())
	}
	batch, failedAt, err := pe.SearchBatch([][]float32{qs[:dim], qs[dim:]}, 3)
	if err != nil || failedAt != -1 {
		t.Fatalf("SearchBatch: failedAt=%d err=%v", failedAt, err)
	}
	for i := range batch {
		want, err := pe.Search(qs[i*dim:(i+1)*dim], 3)
		if err != nil {
			t.Fatal(err)
		}
		sameResults(t, "pq batch", batch[i], want)
	}
	if c := pe.Counters(); c.RerankEvals == 0 {
		t.Errorf("counters after rerank searches: %+v", c)
	}
}
