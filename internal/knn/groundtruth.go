package knn

import (
	"ssam/internal/topk"
	"ssam/internal/vec"
)

// GroundTruth computes the exact Euclidean neighbor sets for a batch
// of queries — the S_E reference sets of the paper's accuracy metric.
func GroundTruth(data []float32, dim int, queries [][]float32, k, workers int) [][]topk.Result {
	e := NewEngine(data, dim, vec.Euclidean, workers)
	return e.SearchBatch(queries, k)
}
