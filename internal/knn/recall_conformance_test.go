package knn_test

// Cross-engine recall conformance: every approximate engine in the
// repo — kd-tree forest, hierarchical k-means, hyperplane MPLSH, the
// HNSW-style graph, and the product-quantized scan — is scored against
// ONE shared exact linear oracle on one shared dataset. Each engine
// declares a recall floor for its configured accuracy knob; the suite
// fails if any engine regresses below its floor. Floors are set ~0.05
// below observed recall on the pinned seed so genuine regressions trip
// them while k-means-initialization noise does not.
//
// This is the conformance analogue of the paper's Fig. 2 sweep: all
// engines answer the same queries against the same ground truth, so
// their accuracy knobs are directly comparable.

import (
	"fmt"
	"testing"

	"ssam/internal/dataset"
	"ssam/internal/graph"
	"ssam/internal/kdtree"
	"ssam/internal/kmeans"
	"ssam/internal/knn"
	"ssam/internal/lsh"
	"ssam/internal/topk"
	"ssam/internal/vec"
)

// conformanceCase is one engine under test: a builder over the shared
// dataset and the minimum mean recall@k it must sustain against the
// shared oracle.
type conformanceCase struct {
	name   string
	floor  float64
	search func(q []float32, k int) []topk.Result
}

func TestRecallConformance(t *testing.T) {
	ds := dataset.Generate(dataset.Spec{
		Name: "conformance", N: 4000, Dim: 48, NumQueries: 64, K: 10,
		Clusters: 24, ClusterStd: 0.3, Seed: 0xc0f0,
	})
	k := ds.Spec.K
	dim := ds.Dim()

	// The single shared oracle every engine is scored against.
	oracle := knn.GroundTruth(ds.Data, dim, ds.Queries, k, 0)

	pqEng, err := knn.NewPQEngine(ds.Data, dim, vec.Euclidean,
		knn.PQParams{M: 8, Rerank: 120, Seed: 5}, 1)
	if err != nil {
		t.Fatal(err)
	}

	forest := kdtree.Build(ds.Data, dim, kdtree.DefaultParams())
	forest.Checks = 400
	tree := kmeans.Build(ds.Data, dim, kmeans.DefaultParams())
	tree.Checks = 400
	mplsh := lsh.Build(ds.Data, dim, lsh.Params{Tables: 8, Bits: 12, Seed: 2})
	mplsh.Probes = 16
	hnsw := graph.Build(ds.Data, dim, graph.DefaultParams())
	hnsw.EfSearch = 96

	cases := []conformanceCase{
		{"kdtree/checks=400", 0.90, forest.Search},
		{"kmeans/checks=400", 0.85, tree.Search},
		{"lsh/tables=8,probes=16", 0.60, mplsh.Search},
		{"graph/ef=96", 0.95, hnsw.Search},
		{"pq/m=8,rerank=120", 0.90, pqEng.Search},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			total := 0.0
			worst := 1.0
			for i, q := range ds.Queries {
				r := dataset.Recall(oracle[i], tc.search(q, k))
				total += r
				if r < worst {
					worst = r
				}
			}
			mean := total / float64(len(ds.Queries))
			t.Logf("mean recall@%d = %.3f (worst query %.2f, floor %.2f)", k, mean, worst, tc.floor)
			if mean < tc.floor {
				t.Errorf("mean recall@%d = %.3f below conformance floor %.2f", k, mean, tc.floor)
			}
		})
	}
}

// TestRecallConformanceOracleIsExact pins the oracle itself: the
// shared ground truth must equal a fresh serial linear scan
// bit-for-bit, so every floor above is anchored to exact search and
// not to another approximation.
func TestRecallConformanceOracleIsExact(t *testing.T) {
	ds := dataset.Generate(dataset.Spec{
		Name: "oracle", N: 700, Dim: 24, NumQueries: 12, K: 8,
		Clusters: 8, ClusterStd: 0.3, Seed: 0x0a1e,
	})
	oracle := knn.GroundTruth(ds.Data, ds.Dim(), ds.Queries, ds.Spec.K, 0)
	lin := knn.NewEngine(ds.Data, ds.Dim(), vec.Euclidean, 1)
	for i, q := range ds.Queries {
		want := lin.Search(q, ds.Spec.K)
		if fmt.Sprint(oracle[i]) != fmt.Sprint(want) {
			t.Fatalf("query %d: oracle %v != linear scan %v", i, oracle[i], want)
		}
	}
}
