package knn

// Oracle harness for the product-quantized engine. PQ is the repo's
// first approximate *linear* engine, so the pins here are the contract
// the rest of the stack builds on: recall floors against the exact
// oracle across metrics × M × k, bit-identical determinism under one
// seed, serial ≡ vault-parallel equivalence, and the degenerate case
// where re-ranking the whole database IS the exact scan.

import (
	"reflect"
	"testing"

	"ssam/internal/dataset"
	"ssam/internal/topk"
	"ssam/internal/vec"
)

func pqClustered(n, dim, queries int, seed int64) *dataset.Dataset {
	return dataset.Generate(dataset.Spec{
		Name: "pqtest", N: n, Dim: dim, NumQueries: queries, K: 10,
		Clusters: 16, ClusterStd: 0.25, Seed: seed,
	})
}

func sameResults(t *testing.T, tag string, got, want []topk.Result) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: len %d != %d", tag, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: result %d: %+v != %+v", tag, i, got[i], want[i])
		}
	}
}

// Re-ranking at least n candidates must reproduce the exact linear
// scan bit-for-bit — ids, order, and distances — for every supported
// metric, including ties and a zero row under cosine.
func TestPQRerankAtLeastNEqualsExact(t *testing.T) {
	const n, dim = 600, 16
	ds := pqClustered(n, dim, 8, 41)
	// Duplicate a row (distance ties) and zero a row (cosine edge).
	copy(ds.Data[5*dim:6*dim], ds.Data[6*dim:7*dim])
	for d := 0; d < dim; d++ {
		ds.Data[9*dim+d] = 0
	}
	for _, m := range []vec.Metric{vec.Euclidean, vec.Manhattan, vec.Cosine} {
		exact := NewEngine(ds.Data, dim, m, 1)
		for _, rerank := range []int{n, n + 100} {
			e, err := NewPQEngineVaults(ds.Data, dim, m, PQParams{M: 4, Sample: 256, Rerank: rerank, Seed: 3}, 1, 2)
			if err != nil {
				t.Fatal(err)
			}
			for _, k := range []int{1, 7, n, n + 5} {
				for qi, q := range ds.Queries {
					got := e.Search(q, k)
					want := exact.Search(q, k)
					sameResults(t, m.String(), got, want)
					_ = qi
				}
			}
		}
	}
}

// Same data, params, and seed must give bit-identical codebooks,
// codes, and search results on repeated builds.
func TestPQDeterministicAcrossBuilds(t *testing.T) {
	ds := pqClustered(800, 12, 6, 42)
	p := PQParams{M: 3, Sample: 400, Rerank: 20, Seed: 99}
	a, err := NewPQEngineVaults(ds.Data, 12, vec.Euclidean, p, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewPQEngineVaults(ds.Data, 12, vec.Euclidean, p, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.cb, b.cb) {
		t.Fatal("same seed produced different codebooks")
	}
	if !reflect.DeepEqual(a.slabs, b.slabs) {
		t.Fatal("same seed produced different code slabs")
	}
	for _, q := range ds.Queries {
		sameResults(t, "rebuild", a.Search(q, 10), b.Search(q, 10))
	}
}

// Serial and vault-parallel scans must agree bit-for-bit at every
// vault count, with and without re-ranking. SetSerialThreshold(0)
// forces the vault path even on this small dataset.
func TestPQSerialParallelBitEquivalence(t *testing.T) {
	const n, dim = 3000, 16
	ds := pqClustered(n, dim, 10, 43)
	for _, m := range []vec.Metric{vec.Euclidean, vec.Cosine} {
		for _, rerank := range []int{0, 50} {
			p := PQParams{M: 4, Sample: 512, Rerank: rerank, Seed: 7}
			serial, err := NewPQEngineVaults(ds.Data, dim, m, p, 1, 1)
			if err != nil {
				t.Fatal(err)
			}
			for _, vaults := range []int{2, 3, 7, 32} {
				par, err := NewPQEngineVaults(ds.Data, dim, m, p, 1, vaults)
				if err != nil {
					t.Fatal(err)
				}
				par.SetSerialThreshold(0)
				if par.Vaults() != vaults {
					t.Fatalf("vaults = %d, want %d", par.Vaults(), vaults)
				}
				for _, q := range ds.Queries {
					sameResults(t, m.String(), par.Search(q, 10), serial.Search(q, 10))
				}
			}
		}
	}
}

// Recall against the exact oracle across metrics × M × k. Floors are
// deliberately conservative; the bench trajectory (BENCH_09_pq.json)
// records the operating-point numbers. Re-ranking 4k candidates is the
// documented way to buy recall back, and the floor reflects it.
func TestPQRecallAcrossMetricsMK(t *testing.T) {
	const n, dim = 2000, 16
	ds := pqClustered(n, dim, 20, 44)
	for _, m := range []vec.Metric{vec.Euclidean, vec.Manhattan, vec.Cosine} {
		exact := NewEngine(ds.Data, dim, m, 1)
		for _, M := range []int{2, 4, 8, 5} { // 5 exercises uneven subspace widths
			// One training per (metric, M); SetRerank sweeps the
			// accuracy knob over the same codebook.
			e, err := NewPQEngineVaults(ds.Data, dim, m, PQParams{M: M, Sample: 1024, Seed: 11}, 1, 1)
			if err != nil {
				t.Fatal(err)
			}
			for _, k := range []int{1, 10} {
				var adcSum, midSum, deepSum float64
				for _, q := range ds.Queries {
					want := exact.Search(q, k)
					e.SetRerank(0)
					adcSum += dataset.Recall(want, e.Search(q, k))
					e.SetRerank(4 * k)
					midSum += dataset.Recall(want, e.Search(q, k))
					e.SetRerank(100)
					deepSum += dataset.Recall(want, e.Search(q, k))
				}
				nq := float64(len(ds.Queries))
				adcRecall, midRecall, deepRecall := adcSum/nq, midSum/nq, deepSum/nq
				// Re-ranking 5% of the database recovers near-exact
				// recall at every operating point (measured >= 0.99 on
				// this seed; 0.95 leaves headroom for codebook-quality
				// drift, which is what this pin is meant to catch).
				if deepRecall < 0.95 {
					t.Errorf("%v M=%d k=%d: rerank-100 recall %.3f below floor 0.95", m, M, k, deepRecall)
				}
				// Recall is monotone in re-rank depth: the ADC top-k is
				// a subset of the candidate set, and exact re-scoring
				// never ranks a true neighbor below an impostor.
				if midRecall < adcRecall-1e-9 || deepRecall < midRecall-1e-9 {
					t.Errorf("%v M=%d k=%d: recall not monotone in rerank: %.3f → %.3f → %.3f",
						m, M, k, adcRecall, midRecall, deepRecall)
				}
				// Pure ADC floors only where the quantizer is fine
				// enough to rank usefully (measured >= 0.51 here).
				if M >= 4 && k == 10 && adcRecall < 0.35 {
					t.Errorf("%v M=%d k=%d: ADC recall %.3f below floor 0.35", m, M, k, adcRecall)
				}
			}
		}
	}
}

func TestPQStatsAccounting(t *testing.T) {
	const n, dim, k, rerank = 500, 8, 5, 40
	data := testData(n, dim, 45)
	e, err := NewPQEngineVaults(data, dim, vec.Euclidean, PQParams{M: 4, Sample: 256, Rerank: rerank, Seed: 1}, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	q := testData(1, dim, 46)
	_, st := e.SearchStats(q, k)
	if st.TableBuilds != 1 {
		t.Errorf("TableBuilds = %d, want 1", st.TableBuilds)
	}
	if st.CodeEvals != n {
		t.Errorf("CodeEvals = %d, want %d", st.CodeEvals, n)
	}
	if st.DistEvals != rerank {
		t.Errorf("DistEvals = %d, want %d (rerank only)", st.DistEvals, rerank)
	}
	wantDims := 256*dim + rerank*dim
	if st.Dims != wantDims {
		t.Errorf("Dims = %d, want %d", st.Dims, wantDims)
	}
	if st.PQInserts != n+rerank {
		t.Errorf("PQInserts = %d, want %d", st.PQInserts, n+rerank)
	}
	// Cumulative counters across a second query.
	e.Search(q, k)
	c := e.Counters()
	if c.TableBuilds != 2 || c.CodeEvals != 2*n || c.RerankEvals != 2*rerank {
		t.Errorf("Counters = %+v", c)
	}
}

func TestPQBatchMatchesSingle(t *testing.T) {
	const n, dim, k = 2600, 12, 8
	ds := pqClustered(n, dim, 12, 47)
	e, err := NewPQEngineVaults(ds.Data, dim, vec.Euclidean, PQParams{M: 4, Sample: 512, Rerank: 30, Seed: 5}, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	e.SetSerialThreshold(0)
	want := make([][]topk.Result, len(ds.Queries))
	for i, q := range ds.Queries {
		want[i] = e.Search(q, k)
	}
	// Long batch: cross-query fan-out with serial scans.
	got := e.SearchBatch(ds.Queries, k)
	for i := range want {
		sameResults(t, "fanout", got[i], want[i])
	}
	// Short batch: vault-parallel path.
	got = e.SearchBatch(ds.Queries[:1], k)
	sameResults(t, "vault-path", got[0], want[0])
}

func TestPQEngineErrors(t *testing.T) {
	data := testData(100, 8, 48)
	cases := []struct {
		name   string
		data   []float32
		dim    int
		metric vec.Metric
		p      PQParams
	}{
		{"ragged", data[:3], 8, vec.Euclidean, PQParams{}},
		{"zero dim", data, 0, vec.Euclidean, PQParams{}},
		{"hamming", data, 8, vec.HammingMetric, PQParams{}},
		{"chi2", data, 8, vec.ChiSquared, PQParams{}},
		{"jaccard", data, 8, vec.JaccardMetric, PQParams{}},
		{"M too large", data, 8, vec.Euclidean, PQParams{M: 9}},
		{"negative rerank", data, 8, vec.Euclidean, PQParams{Rerank: -1}},
	}
	for _, c := range cases {
		if _, err := NewPQEngine(c.data, c.dim, c.metric, c.p, 1); err == nil {
			t.Errorf("%s: accepted invalid config", c.name)
		}
	}
}

func TestPQAccessorsAndSetRerank(t *testing.T) {
	const n, dim = 300, 8
	data := testData(n, dim, 49)
	e, err := NewPQEngine(data, dim, vec.Euclidean, PQParams{M: 2, Sample: 128, Seed: 2}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if e.N() != n || e.Dim() != dim || e.Metric() != vec.Euclidean || e.M() != 2 {
		t.Fatalf("accessors: N=%d Dim=%d Metric=%v M=%d", e.N(), e.Dim(), e.Metric(), e.M())
	}
	if e.CodeBytes() != n*2 {
		t.Fatalf("CodeBytes = %d, want %d", e.CodeBytes(), n*2)
	}
	if e.Codebook() == nil {
		t.Fatal("nil codebook")
	}
	for i := 0; i < n; i++ {
		if &e.Row(i)[0] != &data[i*dim] {
			t.Fatal("Row is not a view of the retained vectors")
		}
	}
	if e.Rerank() != 0 {
		t.Fatalf("Rerank = %d", e.Rerank())
	}
	e.SetRerank(-5)
	if e.Rerank() != 0 {
		t.Fatalf("SetRerank(-5) → %d, want 0", e.Rerank())
	}
	// Raising rerank to n turns the engine exact.
	e.SetRerank(n)
	exact := NewEngine(data, dim, vec.Euclidean, 1)
	q := testData(1, dim, 50)
	sameResults(t, "set-rerank-exact", e.Search(q, 7), exact.Search(q, 7))
}

func TestPQKEdgeCases(t *testing.T) {
	data := testData(50, 6, 51)
	e, err := NewPQEngine(data, 6, vec.Euclidean, PQParams{M: 3, Sample: 50, Seed: 1}, 1)
	if err != nil {
		t.Fatal(err)
	}
	q := testData(1, 6, 52)
	if got := e.Search(q, 100); len(got) != 50 {
		t.Fatalf("k>n returned %d results, want 50", len(got))
	}
	// k <= 0 panics, same as the exact engines (the region layer
	// rejects it before any engine sees it).
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("k=0 did not panic")
			}
		}()
		e.Search(q, 0)
	}()
}
