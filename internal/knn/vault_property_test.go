package knn

// Property tests pinning the vault-parallel contract: at every vault
// count, every engine returns results bit-identical to its serial scan
// — ids, order, and distances — and partition-independent work
// accounting. Datasets are tie-heavy (few distinct vectors, heavily
// duplicated) so boundary ties across vault edges are the common case,
// in the oracle style of internal/topk/property_test.go.

import (
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"ssam/internal/obs"
	"ssam/internal/topk"
	"ssam/internal/vec"
)

// vaultCountsUnderTest includes 1 (serial reference), odd counts that
// split rows unevenly, counts above GOMAXPROCS, and the 32-vault cap.
var vaultCountsUnderTest = []int{1, 2, 3, 8, 32}

// tieKValues covers k = 1, k just below N, k = N, and k > N; with the
// larger vault counts every one of these also exceeds the per-vault
// slice size.
func tieKValues(n int) []int {
	ks := []int{1, n + 4}
	if n > 1 {
		ks = append(ks, n-1, n)
	}
	return ks
}

// tieHeavyFloats builds n rows drawn from a pool of at most 5 distinct
// vectors, so duplicate distances dominate and ties must resolve by id.
// Components stay in [0.5, 1.5) so Cosine never sees a zero vector.
func tieHeavyFloats(rng *rand.Rand, n, dim int) []float32 {
	pool := make([][]float32, 1+rng.Intn(5))
	for p := range pool {
		v := make([]float32, dim)
		for i := range v {
			v[i] = 0.5 + rng.Float32()
		}
		pool[p] = v
	}
	data := make([]float32, 0, n*dim)
	for r := 0; r < n; r++ {
		data = append(data, pool[rng.Intn(len(pool))]...)
	}
	return data
}

// checkVaultStats enforces the accounting contract: DistEvals, Dims
// and PQInserts are partition-independent; PQKept may only grow under
// vault parallelism (vault-local selectors bound against fewer
// competitors).
func checkVaultStats(t *testing.T, label string, serial, par Stats) {
	t.Helper()
	if par.DistEvals != serial.DistEvals || par.Dims != serial.Dims || par.PQInserts != serial.PQInserts {
		t.Fatalf("%s: stats diverge from serial:\nserial %+v\nvaults %+v", label, serial, par)
	}
	if par.PQKept < serial.PQKept {
		t.Fatalf("%s: vault PQKept %d below serial %d", label, par.PQKept, serial.PQKept)
	}
}

func TestEngineVaultsMatchSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	metrics := []vec.Metric{vec.Euclidean, vec.Manhattan, vec.Cosine}
	for trial := 0; trial < 60; trial++ {
		n := 1 + rng.Intn(60)
		dim := 2 + rng.Intn(6)
		data := tieHeavyFloats(rng, n, dim)
		q := tieHeavyFloats(rng, 1, dim)
		for _, m := range metrics {
			serial := NewEngineVaults(data, dim, m, 1, 1)
			for _, k := range tieKValues(n) {
				want, wantSt := serial.SearchStats(q, k)
				for _, v := range vaultCountsUnderTest {
					e := NewEngineVaults(data, dim, m, 1, v)
					e.SetSerialThreshold(0)
					got, gotSt := e.SearchStats(q, k)
					label := fmt.Sprintf("metric=%v n=%d dim=%d k=%d vaults=%d", m, n, dim, k, v)
					if !reflect.DeepEqual(got, want) {
						t.Fatalf("%s:\ngot  %v\nwant %v", label, got, want)
					}
					checkVaultStats(t, label, wantSt, gotSt)
				}
			}
		}
	}
}

func TestFixedEngineVaultsMatchSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	metrics := []vec.Metric{vec.Euclidean, vec.Manhattan}
	for trial := 0; trial < 60; trial++ {
		n := 1 + rng.Intn(60)
		dim := 2 + rng.Intn(6)
		// Q16.16 pool values; small magnitudes keep the fixed kernels
		// far from overflow.
		pool := make([][]int32, 1+rng.Intn(5))
		for p := range pool {
			v := make([]int32, dim)
			for i := range v {
				v[i] = int32(rng.Intn(1 << 18))
			}
			pool[p] = v
		}
		data := make([]int32, 0, n*dim)
		for r := 0; r < n; r++ {
			data = append(data, pool[rng.Intn(len(pool))]...)
		}
		q := make([]int32, dim)
		for i := range q {
			q[i] = int32(rng.Intn(1 << 18))
		}
		for _, m := range metrics {
			serial := NewFixedEngine(data, dim, m, 1)
			for _, k := range tieKValues(n) {
				want, wantSt := serial.SearchStats(q, k)
				for _, v := range vaultCountsUnderTest {
					e := NewFixedEngine(data, dim, m, v)
					e.SetSerialThreshold(0)
					got, gotSt := e.SearchStats(q, k)
					label := fmt.Sprintf("fixed metric=%v n=%d dim=%d k=%d vaults=%d", m, n, dim, k, v)
					if !reflect.DeepEqual(got, want) {
						t.Fatalf("%s:\ngot  %v\nwant %v", label, got, want)
					}
					checkVaultStats(t, label, wantSt, gotSt)
				}
			}
		}
	}
}

func TestHammingEngineVaultsMatchSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	const bits = 96
	for trial := 0; trial < 60; trial++ {
		n := 1 + rng.Intn(60)
		pool := make([]vec.Binary, 1+rng.Intn(5))
		for p := range pool {
			b := vec.NewBinary(bits)
			for i := range b.Words {
				b.Words[i] = rng.Uint64()
			}
			// Mask tail bits beyond Dim like SignBinarize would.
			if rem := bits % 64; rem != 0 {
				b.Words[len(b.Words)-1] &= (1 << rem) - 1
			}
			pool[p] = b
		}
		codes := make([]vec.Binary, n)
		for r := range codes {
			codes[r] = pool[rng.Intn(len(pool))]
		}
		q := pool[rng.Intn(len(pool))]
		serial := NewHammingEngine(codes, 1)
		for _, k := range tieKValues(n) {
			want, wantSt := serial.SearchStats(q, k)
			for _, v := range vaultCountsUnderTest {
				e := NewHammingEngine(codes, v)
				e.SetSerialThreshold(0)
				got, gotSt := e.SearchStats(q, k)
				label := fmt.Sprintf("hamming n=%d k=%d vaults=%d", n, k, v)
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("%s:\ngot  %v\nwant %v", label, got, want)
				}
				checkVaultStats(t, label, wantSt, gotSt)
			}
		}
	}
}

// TestEngineVaultBatchMatchesSerial pins the batch policy's output:
// whichever side of the short-batch/long-batch split a call lands on,
// results match the serial engine bit for bit.
func TestEngineVaultBatchMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	const n, dim, k = 48, 4, 7
	data := tieHeavyFloats(rng, n, dim)
	serial := NewEngineVaults(data, dim, vec.Euclidean, 1, 1)
	for _, batchLen := range []int{1, 2, 5, 9} {
		qs := make([][]float32, batchLen)
		for i := range qs {
			qs[i] = tieHeavyFloats(rng, 1, dim)
		}
		want := serial.SearchBatch(qs, k)
		for _, workers := range []int{1, 4} {
			for _, v := range []int{1, 3, 8} {
				e := NewEngineVaults(data, dim, vec.Euclidean, workers, v)
				e.SetSerialThreshold(0)
				got := e.SearchBatch(qs, k)
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("batch=%d workers=%d vaults=%d:\ngot  %v\nwant %v", batchLen, workers, v, got, want)
				}
			}
		}
	}
}

// TestEngineVaultSpans checks the per-vault trace shape: one "vault"
// child per non-empty slice, row tags summing to the database size.
func TestEngineVaultSpans(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	const n, dim, vaults = 37, 4, 8
	e := NewEngineVaults(tieHeavyFloats(rng, n, dim), dim, vec.Euclidean, 1, vaults)
	e.SetSerialThreshold(0)
	tracer := obs.NewTracer(0, 4)
	tr := tracer.Trace("vaults", true)
	e.SearchStatsSpan(tieHeavyFloats(rng, 1, dim), 5, tr.Root())
	data := tracer.Finish(tr)
	spans := data.Root.FindAll("vault")
	if len(spans) != vaults {
		t.Fatalf("got %d vault spans, want %d", len(spans), vaults)
	}
	rows := 0
	for _, sp := range spans {
		r, ok := sp.Tags["rows"].(int)
		if !ok {
			t.Fatalf("vault span missing rows tag: %+v", sp.Tags)
		}
		rows += r
	}
	if rows != n {
		t.Fatalf("vault row tags sum to %d, want %d", rows, n)
	}
}

// TestEngineVaultsConcurrent hammers one vault-parallel engine from
// many goroutines (run under -race by ci.sh) and checks every call
// still returns serial-exact results and accounting — vault workers
// must not share or double-count anything across queries.
func TestEngineVaultsConcurrent(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	const n, dim, k, goroutines, iters = 64, 6, 9, 8, 25
	data := tieHeavyFloats(rng, n, dim)
	serial := NewEngineVaults(data, dim, vec.Euclidean, 1, 1)
	e := NewEngineVaults(data, dim, vec.Euclidean, 1, 8)
	e.SetSerialThreshold(0)

	queries := make([][]float32, goroutines)
	wants := make([][]topk.Result, goroutines)
	wantSts := make([]Stats, goroutines)
	for i := range queries {
		queries[i] = tieHeavyFloats(rng, 1, dim)
		wants[i], wantSts[i] = serial.SearchStats(queries[i], k)
	}

	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for it := 0; it < iters; it++ {
				got, st := e.SearchStats(queries[g], k)
				if !reflect.DeepEqual(got, wants[g]) {
					errs <- fmt.Errorf("goroutine %d iter %d: results diverged", g, it)
					return
				}
				if st.DistEvals != wantSts[g].DistEvals || st.Dims != wantSts[g].Dims ||
					st.PQInserts != wantSts[g].PQInserts || st.PQKept < wantSts[g].PQKept {
					errs <- fmt.Errorf("goroutine %d iter %d: stats %+v vs serial %+v", g, it, st, wantSts[g])
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
