package knn

import (
	"fmt"
	"math/rand"
	"testing"

	"ssam/internal/vec"
)

// BenchmarkSearchVaults times one GIST-shaped query (960-d, the
// paper's widest float workload) at fixed vault counts, serial
// threshold forced to zero so every count takes its configured path.
// Compare the sub-benchmarks to read the intra-query scaling on this
// machine; BENCH_05_vaults.json records the same sweep via
// ssam-bench -exp vaults.
func BenchmarkSearchVaults(b *testing.B) {
	const (
		dim = 960
		n   = 4096
		k   = 10
	)
	rng := rand.New(rand.NewSource(42))
	data := make([]float32, n*dim)
	for i := range data {
		data[i] = rng.Float32()
	}
	q := make([]float32, dim)
	for i := range q {
		q[i] = rng.Float32()
	}
	for _, vaults := range []int{1, 4, 32} {
		b.Run(fmt.Sprintf("%d", vaults), func(b *testing.B) {
			e := NewEngineVaults(data, dim, vec.Euclidean, 1, vaults)
			e.SetSerialThreshold(0)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e.Search(q, k)
			}
		})
	}
}
