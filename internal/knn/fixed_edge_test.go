package knn

// Boundary pins for the fixed-point engine, the satellite of the PQ
// harness: the quantization edges themselves (saturation, NaN/Inf
// images, zero range) are pinned at the kernel level in
// internal/vec/fixed_test.go; these tests pin what the FixedEngine
// built on those kernels does with edge-case *databases* — the
// pre-strict-decode path that never had boundary coverage.

import (
	"math"
	"testing"

	"ssam/internal/vec"
)

// TestFixedEngineSaturatedRows pins ranking over rows that sit at the
// Q16.16 saturation boundaries: saturated values compare like the
// finite extremes they clamp to, and the engine's ordering is exact
// over the clamped images.
func TestFixedEngineSaturatedRows(t *testing.T) {
	rows := [][]float32{
		{0, 0},      // id 0: at the query
		{127, -128}, // id 1: the int8 corners, exactly representable
		{32767, 0},  // id 2: the last exact int16-scale integer
		{1e9, 0},    // id 3: saturates to MaxInt32, a hair beyond id 2
	}
	data := make([]int32, 0, len(rows)*2)
	for _, r := range rows {
		data = append(data, vec.ToFixedVec(r)...)
	}
	e := NewFixedEngine(data, 2, vec.Euclidean, 1)
	got := e.Search(vec.ToFixedVec([]float32{0, 0}), 4)
	// The saturated row must rank strictly after the exact 32767 row:
	// MaxInt32 is 32768 - 2^-16 in Q16.16, and one saturated coordinate
	// squared (~2^62) still fits the int64 accumulator. (Both corners
	// saturated in both dimensions would overflow it — the engine's
	// documented domain is ±128-magnitude feature vectors.)
	wantOrder := []int{0, 1, 2, 3}
	for i, w := range wantOrder {
		if got[i].ID != w {
			t.Fatalf("rank %d: got id %d, want %d (results %v)", i, got[i].ID, w, got)
		}
	}
	if got[0].Dist != 0 {
		t.Errorf("self-distance = %v, want 0", got[0].Dist)
	}
}

// TestFixedEngineZeroRangeDatabase pins the all-equal-dimension edge
// at the engine level: every row identical means every distance is
// exactly zero and ranking degenerates to ascending id — the total
// order's tie-break, same as the float engines.
func TestFixedEngineZeroRangeDatabase(t *testing.T) {
	const n, dim = 9, 3
	row := vec.ToFixedVec([]float32{1.5, 1.5, 1.5})
	data := make([]int32, 0, n*dim)
	for i := 0; i < n; i++ {
		data = append(data, row...)
	}
	for _, metric := range []vec.Metric{vec.Euclidean, vec.Manhattan} {
		e := NewFixedEngine(data, dim, metric, 4)
		e.SetSerialThreshold(0)
		got := e.Search(row, 5)
		for i, r := range got {
			if r.ID != i || r.Dist != 0 {
				t.Fatalf("%v: result %d = {id %d, dist %v}, want {id %d, dist 0}",
					metric, i, r.ID, r.Dist, i)
			}
		}
	}
}

// TestFixedEngineNonFiniteQuery pins that a query containing NaN or
// Inf, once quantized, behaves as its deterministic fixed-point image
// (NaN -> 0, Inf -> saturation) rather than poisoning the scan: every
// distance stays finite and the result is bit-identical to querying
// with the image directly.
func TestFixedEngineNonFiniteQuery(t *testing.T) {
	data := vec.ToFixedVec([]float32{
		0, 0,
		1, 1,
		-2, 3,
	})
	e := NewFixedEngine(data, 2, vec.Euclidean, 1)
	nanQ := vec.ToFixedVec([]float32{float32(math.NaN()), 1})
	imgQ := vec.ToFixedVec([]float32{0, 1})
	got, want := e.Search(nanQ, 3), e.Search(imgQ, 3)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("NaN query result %d = %v, want image-query result %v", i, got[i], want[i])
		}
		if math.IsNaN(got[i].Dist) || math.IsInf(got[i].Dist, 0) {
			t.Fatalf("result %d distance %v not finite", i, got[i].Dist)
		}
	}
	infQ := vec.ToFixedVec([]float32{float32(math.Inf(1)), 0})
	for _, r := range e.Search(infQ, 3) {
		if math.IsNaN(r.Dist) || math.IsInf(r.Dist, 0) {
			t.Fatalf("Inf-query distance %v not finite (saturation must keep int64 math exact)", r.Dist)
		}
	}
}
