package knn

import (
	"math/rand"
	"testing"

	"ssam/internal/vec"
)

// Histogram-like non-negative data for the Chi-squared and Jaccard
// metrics.
func histData(n, dim int, seed int64) []float32 {
	rng := rand.New(rand.NewSource(seed))
	data := make([]float32, n*dim)
	for i := range data {
		data[i] = rng.Float32()
	}
	return data
}

func TestEngineChiSquared(t *testing.T) {
	data := histData(400, 12, 3)
	e := NewEngine(data, 12, vec.ChiSquared, 1)
	q := data[24 : 24+12] // row 2
	res := e.Search(q, 3)
	if res[0].ID != 2 || res[0].Dist != 0 {
		t.Fatalf("chi2 self query = %+v", res[0])
	}
	want := bruteForce(data, 12, q, 3, vec.ChiSquared)
	for i := range want {
		if res[i] != want[i] {
			t.Fatalf("chi2 result %d: %+v != %+v", i, res[i], want[i])
		}
	}
}

func TestEngineJaccard(t *testing.T) {
	data := histData(400, 12, 5)
	e := NewEngine(data, 12, vec.JaccardMetric, 4)
	q := data[120 : 120+12] // row 10
	res := e.Search(q, 5)
	if res[0].ID != 10 || res[0].Dist != 0 {
		t.Fatalf("jaccard self query = %+v", res[0])
	}
	want := bruteForce(data, 12, q, 5, vec.JaccardMetric)
	for i := range want {
		if res[i].Dist != want[i].Dist {
			t.Fatalf("jaccard result %d: %+v != %+v", i, res[i], want[i])
		}
	}
}

func TestEngineCosineParallelAgreement(t *testing.T) {
	data := testData(800, 10, 8)
	q := testData(1, 10, 9)
	a := NewEngine(data, 10, vec.Cosine, 1).Search(q, 6)
	b := NewEngine(data, 10, vec.Cosine, 6).Search(q, 6)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("cosine parallel mismatch at %d", i)
		}
	}
}
