package dataset

import "ssam/internal/topk"

// Recall implements the paper's accuracy definition (Section II-C):
// |S_E ∩ S_A| / |S_E|, where S_E is the exact neighbor set from
// floating-point linear search and S_A is the approximate result set.
func Recall(exact, approx []topk.Result) float64 {
	if len(exact) == 0 {
		return 1
	}
	in := make(map[int]struct{}, len(exact))
	for _, r := range exact {
		in[r.ID] = struct{}{}
	}
	hit := 0
	for _, r := range approx {
		if _, ok := in[r.ID]; ok {
			hit++
		}
	}
	return float64(hit) / float64(len(exact))
}

// MeanRecall averages Recall over parallel slices of per-query results.
func MeanRecall(exact, approx [][]topk.Result) float64 {
	if len(exact) != len(approx) {
		panic("dataset: result set length mismatch")
	}
	if len(exact) == 0 {
		return 1
	}
	var acc float64
	for i := range exact {
		acc += Recall(exact[i], approx[i])
	}
	return acc / float64(len(exact))
}
