package dataset

import (
	"testing"

	"ssam/internal/topk"
	"ssam/internal/vec"
)

func smallSpec() Spec {
	return Spec{Name: "test", N: 500, Dim: 16, NumQueries: 10, K: 5,
		Clusters: 8, ClusterStd: 0.3, Seed: 42}
}

func TestGenerateShape(t *testing.T) {
	ds := Generate(smallSpec())
	if got := len(ds.Data); got != 500*16 {
		t.Fatalf("data len = %d, want %d", got, 500*16)
	}
	if got := len(ds.Queries); got != 10 {
		t.Fatalf("queries = %d, want 10", got)
	}
	for _, q := range ds.Queries {
		if len(q) != 16 {
			t.Fatalf("query dim = %d", len(q))
		}
	}
	if ds.N() != 500 || ds.Dim() != 16 {
		t.Fatalf("N/Dim accessors wrong: %d %d", ds.N(), ds.Dim())
	}
	if ds.Bytes() != 500*16*4 {
		t.Fatalf("Bytes = %d", ds.Bytes())
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(smallSpec())
	b := Generate(smallSpec())
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			t.Fatalf("data differs at %d", i)
		}
	}
	for i := range a.Queries {
		for j := range a.Queries[i] {
			if a.Queries[i][j] != b.Queries[i][j] {
				t.Fatalf("query %d differs", i)
			}
		}
	}
}

func TestGenerateSeedSensitivity(t *testing.T) {
	s := smallSpec()
	a := Generate(s)
	s.Seed++
	b := Generate(s)
	same := true
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical data")
	}
}

func TestRowView(t *testing.T) {
	ds := Generate(smallSpec())
	r := ds.Row(3)
	if len(r) != 16 {
		t.Fatalf("row len = %d", len(r))
	}
	if &r[0] != &ds.Data[3*16] {
		t.Fatal("Row is not a view into Data")
	}
}

func TestSpecPresets(t *testing.T) {
	cases := []struct {
		spec Spec
		dim  int
		k    int
	}{
		{GloVeSpec(0.001), 100, 6},
		{GISTSpec(0.001), 960, 10},
		{AlexNetSpec(0.001), 4096, 16},
	}
	for _, c := range cases {
		if c.spec.Dim != c.dim || c.spec.K != c.k {
			t.Errorf("%s: dim/k = %d/%d, want %d/%d",
				c.spec.Name, c.spec.Dim, c.spec.K, c.dim, c.k)
		}
		if c.spec.N <= 0 || c.spec.NumQueries <= 0 {
			t.Errorf("%s: empty spec", c.spec.Name)
		}
	}
	if got := len(AllSpecs(0.001)); got != 3 {
		t.Fatalf("AllSpecs = %d entries", got)
	}
}

func TestScaleFullSize(t *testing.T) {
	if got := GloVeSpec(1.0).N; got != GloVeN {
		t.Fatalf("full GloVe N = %d, want %d", got, GloVeN)
	}
}

func TestScalePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on scale 0")
		}
	}()
	GloVeSpec(0)
}

func TestMeans(t *testing.T) {
	ds := &Dataset{
		Spec: Spec{N: 2, Dim: 2},
		Data: []float32{1, 10, 3, 20},
	}
	m := ds.Means()
	if m[0] != 2 || m[1] != 15 {
		t.Fatalf("Means = %v, want [2 15]", m)
	}
}

func TestToFixed(t *testing.T) {
	ds := Generate(smallSpec())
	fx := ds.ToFixed()
	if len(fx) != len(ds.Data) {
		t.Fatalf("fixed len = %d", len(fx))
	}
	for i := 0; i < 50; i++ {
		if fx[i] != vec.ToFixed(ds.Data[i]) {
			t.Fatalf("fixed value mismatch at %d", i)
		}
	}
}

func TestToBinary(t *testing.T) {
	ds := Generate(smallSpec())
	bin := ds.ToBinary()
	if len(bin) != ds.N() {
		t.Fatalf("binary rows = %d", len(bin))
	}
	if bin[0].Dim != ds.Dim() {
		t.Fatalf("binary dim = %d", bin[0].Dim)
	}
	// Sign binarization against means: roughly half the bits set across
	// the whole dataset.
	total, set := 0, 0
	for _, b := range bin {
		total += b.Dim
		set += b.PopCount()
	}
	frac := float64(set) / float64(total)
	if frac < 0.3 || frac > 0.7 {
		t.Fatalf("set-bit fraction = %v, expected near 0.5", frac)
	}
}

func TestRecall(t *testing.T) {
	e := []topk.Result{{ID: 1}, {ID: 2}, {ID: 3}, {ID: 4}}
	a := []topk.Result{{ID: 2}, {ID: 4}, {ID: 9}, {ID: 10}}
	if got := Recall(e, a); got != 0.5 {
		t.Fatalf("Recall = %v, want 0.5", got)
	}
	if got := Recall(nil, a); got != 1 {
		t.Fatalf("empty exact Recall = %v, want 1", got)
	}
	if got := Recall(e, e); got != 1 {
		t.Fatalf("identical Recall = %v, want 1", got)
	}
	if got := Recall(e, nil); got != 0 {
		t.Fatalf("empty approx Recall = %v, want 0", got)
	}
}

func TestMeanRecall(t *testing.T) {
	e := [][]topk.Result{{{ID: 1}, {ID: 2}}, {{ID: 3}, {ID: 4}}}
	a := [][]topk.Result{{{ID: 1}, {ID: 2}}, {{ID: 9}, {ID: 4}}}
	if got := MeanRecall(e, a); got != 0.75 {
		t.Fatalf("MeanRecall = %v, want 0.75", got)
	}
	if got := MeanRecall(nil, nil); got != 1 {
		t.Fatalf("empty MeanRecall = %v", got)
	}
}

func TestMeanRecallMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on mismatched lengths")
		}
	}()
	MeanRecall(make([][]topk.Result, 1), nil)
}

func TestClusteredStructure(t *testing.T) {
	// Points should be closer to their cluster peers than random pairs:
	// check the mean pairwise distance of the dataset is larger than
	// the mean nearest-neighbor distance by a comfortable factor.
	ds := Generate(smallSpec())
	nn := 0.0
	pair := 0.0
	n := 60
	for i := 0; i < n; i++ {
		best := -1.0
		for j := 0; j < ds.N(); j++ {
			if i == j {
				continue
			}
			d := vec.SquaredL2(ds.Row(i), ds.Row(j))
			if best < 0 || d < best {
				best = d
			}
		}
		nn += best
		pair += vec.SquaredL2(ds.Row(i), ds.Row((i+ds.N()/2)%ds.N()))
	}
	if nn >= pair {
		t.Fatalf("no cluster structure: nn=%v pair=%v", nn/float64(n), pair/float64(n))
	}
}
